(** Source locations for IDL and template sources. *)

type t = {
  file : string;  (** Source file name, or a pseudo-name such as ["<string>"]. *)
  line : int;  (** 1-based line number. *)
  col : int;  (** 1-based column number. *)
}

val dummy : t
(** A placeholder location for synthesized nodes. *)

val make : file:string -> line:int -> col:int -> t

val pp : Format.formatter -> t -> unit
(** Prints as ["file:line:col"]. *)

val to_string : t -> string
