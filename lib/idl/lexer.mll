{
(* Lexer for the OMG IDL subset (plus HeidiRMI extensions). Produces
   Token.t values tagged with Loc.t positions via the standard
   Lexing.lexbuf position tracking. *)

let loc_of_lexbuf lexbuf =
  let p = Lexing.lexeme_start_p lexbuf in
  Loc.make ~file:p.Lexing.pos_fname ~line:p.Lexing.pos_lnum
    ~col:(p.Lexing.pos_cnum - p.Lexing.pos_bol + 1)

let lex_error lexbuf fmt =
  Diag.error ~code:"E001" ~loc:(loc_of_lexbuf lexbuf) fmt

let char_of_escape lexbuf = function
  | 'n' -> '\n'
  | 't' -> '\t'
  | 'r' -> '\r'
  | 'v' -> '\011'
  | 'b' -> '\b'
  | 'f' -> '\012'
  | 'a' -> '\007'
  | '0' -> '\000'
  | '\\' -> '\\'
  | '\'' -> '\''
  | '"' -> '"'
  | c -> lex_error lexbuf "invalid escape sequence '\\%c'" c

let buf = Buffer.create 64
}

let digit = ['0'-'9']
let hex_digit = ['0'-'9' 'a'-'f' 'A'-'F']
let oct_digit = ['0'-'7']
let letter = ['a'-'z' 'A'-'Z' '_']
let ident = letter (letter | digit)*
let ws = [' ' '\t' '\r']

let float_lit =
  digit+ '.' digit* (['e' 'E'] ['+' '-']? digit+)?
  | '.' digit+ (['e' 'E'] ['+' '-']? digit+)?
  | digit+ ['e' 'E'] ['+' '-']? digit+

rule token = parse
  | ws+                { token lexbuf }
  | '\n'               { Lexing.new_line lexbuf; token lexbuf }
  | "//" [^ '\n']*     { token lexbuf }
  | "/*"               { comment lexbuf; token lexbuf }
  | "#" ws* "pragma" ws+ "prefix" ws+ '"' ([^ '"' '\n']* as p) '"' [^ '\n']*
                       { Token.PRAGMA_PREFIX p }
  | "#" [^ '\n']*      { token lexbuf }   (* other preprocessor lines are skipped *)
  | float_lit as s     { Token.FLOAT_LIT (float_of_string s) }
  | "0" ['x' 'X'] (hex_digit+ as s)
                       { Token.INT_LIT (Int64.of_string ("0x" ^ s)) }
  | "0" (oct_digit+ as s)
                       { Token.INT_LIT (Int64.of_string ("0o" ^ s)) }
  | digit+ as s        { match Int64.of_string_opt s with
                         | Some i -> Token.INT_LIT i
                         | None -> lex_error lexbuf "integer literal %s overflows" s }
  | ident as s         { Token.of_ident s }
  | "'" ([^ '\\' '\''] as c) "'" { Token.CHAR_LIT c }
  | "'" '\\' (_ as c) "'"        { Token.CHAR_LIT (char_of_escape lexbuf c) }
  | '"'                { Buffer.clear buf; string_lit lexbuf }
  | "::"               { Token.COLONCOLON }
  | "<<"               { Token.SHL }
  | ">>"               { Token.SHR }
  | '{'                { Token.LBRACE }
  | '}'                { Token.RBRACE }
  | '('                { Token.LPAREN }
  | ')'                { Token.RPAREN }
  | '['                { Token.LBRACKET }
  | ']'                { Token.RBRACKET }
  | '<'                { Token.LT }
  | '>'                { Token.GT }
  | ';'                { Token.SEMI }
  | ':'                { Token.COLON }
  | ','                { Token.COMMA }
  | '='                { Token.EQ }
  | '+'                { Token.PLUS }
  | '-'                { Token.MINUS }
  | '*'                { Token.STAR }
  | '/'                { Token.SLASH }
  | '%'                { Token.PERCENT }
  | '|'                { Token.PIPE }
  | '^'                { Token.CARET }
  | '&'                { Token.AMP }
  | '~'                { Token.TILDE }
  | eof                { Token.EOF }
  | _ as c             { lex_error lexbuf "unexpected character %C" c }

and comment = parse
  | "*/"               { () }
  | '\n'               { Lexing.new_line lexbuf; comment lexbuf }
  | eof                { lex_error lexbuf "unterminated comment" }
  | _                  { comment lexbuf }

and string_lit = parse
  | '"'                { Token.STRING_LIT (Buffer.contents buf) }
  | '\\' (_ as c)      { Buffer.add_char buf (char_of_escape lexbuf c);
                         string_lit lexbuf }
  | '\n'               { lex_error lexbuf "newline in string literal" }
  | eof                { lex_error lexbuf "unterminated string literal" }
  | _ as c             { Buffer.add_char buf c; string_lit lexbuf }
