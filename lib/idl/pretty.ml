open Ast

let pp_scoped_name ppf sn =
  Format.pp_print_string ppf (scoped_name_to_string sn)

let rec pp_type_spec ppf = function
  | Void -> Format.pp_print_string ppf "void"
  | Short -> Format.pp_print_string ppf "short"
  | Long -> Format.pp_print_string ppf "long"
  | Long_long -> Format.pp_print_string ppf "long long"
  | Unsigned_short -> Format.pp_print_string ppf "unsigned short"
  | Unsigned_long -> Format.pp_print_string ppf "unsigned long"
  | Unsigned_long_long -> Format.pp_print_string ppf "unsigned long long"
  | Float -> Format.pp_print_string ppf "float"
  | Double -> Format.pp_print_string ppf "double"
  | Boolean -> Format.pp_print_string ppf "boolean"
  | Char -> Format.pp_print_string ppf "char"
  | Octet -> Format.pp_print_string ppf "octet"
  | Any -> Format.pp_print_string ppf "any"
  | String None -> Format.pp_print_string ppf "string"
  | String (Some n) -> Format.fprintf ppf "string<%d>" n
  | Sequence (t, None) -> Format.fprintf ppf "sequence<%a>" pp_type_spec t
  | Sequence (t, Some n) -> Format.fprintf ppf "sequence<%a, %d>" pp_type_spec t n
  | Named sn -> pp_scoped_name ppf sn

(* Constant expressions are printed fully parenthesized below the top
   level, which keeps the printer independent of precedence while still
   re-parsing to the same tree. *)
let rec pp_const_expr ppf = function
  | Int_lit i -> Format.fprintf ppf "%Ld" i
  | Float_lit f ->
      (* Ensure the literal re-lexes as a float (needs '.', 'e' or 'E'). *)
      let s = Format.asprintf "%.17g" f in
      if String.contains s '.' || String.contains s 'e' || String.contains s 'E'
      then Format.pp_print_string ppf s
      else Format.fprintf ppf "%s.0" s
  | Bool_lit true -> Format.pp_print_string ppf "TRUE"
  | Bool_lit false -> Format.pp_print_string ppf "FALSE"
  | Char_lit c -> Format.fprintf ppf "%C" c
  | String_lit s -> Format.fprintf ppf "%S" s
  | Name_ref sn -> pp_scoped_name ppf sn
  | Unary (op, e) ->
      let s = match op with Neg -> "-" | Pos -> "+" | Bit_not -> "~" in
      Format.fprintf ppf "%s(%a)" s pp_const_expr e
  | Binary (op, a, b) ->
      let s =
        match op with
        | Or -> "|"
        | Xor -> "^"
        | And -> "&"
        | Shift_left -> "<<"
        | Shift_right -> ">>"
        | Add -> "+"
        | Sub -> "-"
        | Mul -> "*"
        | Div -> "/"
        | Mod -> "%"
      in
      Format.fprintf ppf "(%a %s %a)" pp_const_expr a s pp_const_expr b

let pp_mode ppf = function
  | In -> Format.pp_print_string ppf "in"
  | Out -> Format.pp_print_string ppf "out"
  | Inout -> Format.pp_print_string ppf "inout"
  | Incopy -> Format.pp_print_string ppf "incopy"

let pp_param ppf p =
  Format.fprintf ppf "%a %a %s" pp_mode p.p_mode pp_type_spec p.p_type p.p_name;
  match p.p_default with
  | None -> ()
  | Some e -> Format.fprintf ppf " = %a" pp_const_expr e

let pp_sep_list sep pp ppf xs =
  Format.pp_print_list ~pp_sep:(fun ppf () -> Format.pp_print_string ppf sep) pp
    ppf xs

let pp_struct_member ind ppf m =
  Format.fprintf ppf "%s%a %s;" ind pp_type_spec m.sm_type
    (String.concat ", " m.sm_names)

let pp_operation ind ppf op =
  Format.fprintf ppf "%s%s%a %s(%a)" ind
    (if op.op_oneway then "oneway " else "")
    pp_type_spec op.op_return op.op_name (pp_sep_list ", " pp_param) op.op_params;
  if op.op_raises <> [] then
    Format.fprintf ppf " raises (%a)" (pp_sep_list ", " pp_scoped_name) op.op_raises;
  Format.pp_print_string ppf ";"

let pp_attribute ind ppf at =
  Format.fprintf ppf "%s%sattribute %a %s;" ind
    (if at.at_readonly then "readonly " else "")
    pp_type_spec at.at_type
    (String.concat ", " at.at_names)

let rec pp_definition_ind ind ppf def =
  let sub = ind ^ "  " in
  match def with
  | D_pragma_prefix (p, _) -> Format.fprintf ppf "%s#pragma prefix \"%s\"" ind p
  | D_module (name, defs, _) ->
      Format.fprintf ppf "%smodule %s {@\n" ind name;
      List.iter (fun d -> Format.fprintf ppf "%a@\n" (pp_definition_ind sub) d) defs;
      Format.fprintf ppf "%s};" ind
  | D_forward (name, _) -> Format.fprintf ppf "%sinterface %s;" ind name
  | D_interface i ->
      Format.fprintf ppf "%sinterface %s" ind i.if_name;
      if i.if_inherits <> [] then
        Format.fprintf ppf " : %a" (pp_sep_list ", " pp_scoped_name) i.if_inherits;
      Format.fprintf ppf " {@\n";
      List.iter
        (fun e -> Format.fprintf ppf "%a@\n" (pp_export_ind sub) e)
        i.if_exports;
      Format.fprintf ppf "%s};" ind
  | D_typedef t ->
      Format.fprintf ppf "%stypedef %a %s;" ind pp_type_spec t.td_type
        (String.concat ", " t.td_names)
  | D_struct s ->
      Format.fprintf ppf "%sstruct %s {@\n" ind s.st_name;
      List.iter
        (fun m -> Format.fprintf ppf "%a@\n" (pp_struct_member sub) m)
        s.st_members;
      Format.fprintf ppf "%s};" ind
  | D_union u ->
      Format.fprintf ppf "%sunion %s switch (%a) {@\n" ind u.un_name pp_type_spec
        u.un_disc;
      List.iter
        (fun c ->
          List.iter
            (function
              | Case_value e -> Format.fprintf ppf "%scase %a:@\n" sub pp_const_expr e
              | Case_default -> Format.fprintf ppf "%sdefault:@\n" sub)
            c.uc_labels;
          Format.fprintf ppf "%s  %a %s;@\n" sub pp_type_spec c.uc_type c.uc_name)
        u.un_cases;
      Format.fprintf ppf "%s};" ind
  | D_enum e ->
      Format.fprintf ppf "%senum %s { %s };" ind e.en_name
        (String.concat ", " e.en_members)
  | D_const c ->
      Format.fprintf ppf "%sconst %a %s = %a;" ind pp_type_spec c.cn_type c.cn_name
        pp_const_expr c.cn_value
  | D_except e ->
      Format.fprintf ppf "%sexception %s {@\n" ind e.ex_name;
      List.iter
        (fun m -> Format.fprintf ppf "%a@\n" (pp_struct_member (ind ^ "  ")) m)
        e.ex_members;
      Format.fprintf ppf "%s};" ind

and pp_export_ind ind ppf = function
  | Ex_op op -> pp_operation ind ppf op
  | Ex_attr at -> pp_attribute ind ppf at
  | Ex_typedef t -> pp_definition_ind ind ppf (D_typedef t)
  | Ex_struct s -> pp_definition_ind ind ppf (D_struct s)
  | Ex_union u -> pp_definition_ind ind ppf (D_union u)
  | Ex_enum e -> pp_definition_ind ind ppf (D_enum e)
  | Ex_const c -> pp_definition_ind ind ppf (D_const c)
  | Ex_except e -> pp_definition_ind ind ppf (D_except e)

let pp_definition ppf d = pp_definition_ind "" ppf d

let pp_spec ppf spec =
  List.iter (fun d -> Format.fprintf ppf "%a@\n@\n" pp_definition d) spec

let type_spec_to_string t = Format.asprintf "%a" pp_type_spec t
let const_expr_to_string e = Format.asprintf "%a" pp_const_expr e
let to_string spec = Format.asprintf "%a" pp_spec spec
