open Ast

(* A token stream with one-token lookahead over the ocamllex lexer. *)
module Stream_ = struct
  type t = {
    lexbuf : Lexing.lexbuf;
    mutable tok : Token.t;
    mutable loc : Loc.t;
  }

  let current_loc lexbuf =
    let p = Lexing.lexeme_start_p lexbuf in
    Loc.make ~file:p.Lexing.pos_fname ~line:p.Lexing.pos_lnum
      ~col:(p.Lexing.pos_cnum - p.Lexing.pos_bol + 1)

  let make ~filename src =
    let lexbuf = Lexing.from_string src in
    Lexing.set_filename lexbuf filename;
    let tok = Lexer.token lexbuf in
    { lexbuf; tok; loc = current_loc lexbuf }

  let peek t = t.tok
  let loc t = t.loc

  let advance t =
    t.tok <- Lexer.token t.lexbuf;
    t.loc <- current_loc t.lexbuf

  let error t fmt = Diag.error ~code:"E001" ~loc:t.loc fmt

  let expect t want =
    if t.tok = want then advance t
    else
      error t "expected %s but found %s" (Token.to_string want)
        (Token.to_string t.tok)

  (* '>>' closes two nested type brackets (sequence<sequence<long>>):
     consume one '>' and leave a '>' as the current token. *)
  let expect_gt t =
    match t.tok with
    | Token.GT -> advance t
    | Token.SHR -> t.tok <- Token.GT
    | other ->
        error t "expected %s but found %s" (Token.to_string Token.GT)
          (Token.to_string other)

  let ident t =
    match t.tok with
    | Token.IDENT s ->
        advance t;
        s
    | other -> error t "expected an identifier but found %s" (Token.to_string other)
end

open Stream_

(* ---------------- scoped names ---------------- *)

let parse_scoped_name st =
  let loc = Stream_.loc st in
  let absolute =
    if peek st = Token.COLONCOLON then (
      advance st;
      true)
    else false
  in
  let first = ident st in
  let rec more acc =
    if peek st = Token.COLONCOLON then (
      advance st;
      let next = ident st in
      more (next :: acc))
    else List.rev acc
  in
  { absolute; parts = more [ first ]; sn_loc = loc }

(* ---------------- constant expressions ----------------

   Precedence (lowest to highest), as in CORBA IDL:
     |  ^  &  <<,>>  +,-  *,/,%  unary  primary *)

let rec parse_const_expr st = parse_or_expr st

and parse_or_expr st =
  let lhs = parse_xor_expr st in
  if peek st = Token.PIPE then (
    advance st;
    Binary (Or, lhs, parse_or_expr st))
  else lhs

and parse_xor_expr st =
  let lhs = parse_and_expr st in
  if peek st = Token.CARET then (
    advance st;
    Binary (Xor, lhs, parse_xor_expr st))
  else lhs

and parse_and_expr st =
  let lhs = parse_shift_expr st in
  if peek st = Token.AMP then (
    advance st;
    Binary (And, lhs, parse_and_expr st))
  else lhs

and parse_shift_expr st =
  let lhs = parse_add_expr st in
  match peek st with
  | Token.SHL ->
      advance st;
      Binary (Shift_left, lhs, parse_shift_expr st)
  | Token.SHR ->
      advance st;
      Binary (Shift_right, lhs, parse_shift_expr st)
  | _ -> lhs

and parse_add_expr st =
  let rec go lhs =
    match peek st with
    | Token.PLUS ->
        advance st;
        go (Binary (Add, lhs, parse_mul_expr st))
    | Token.MINUS ->
        advance st;
        go (Binary (Sub, lhs, parse_mul_expr st))
    | _ -> lhs
  in
  go (parse_mul_expr st)

and parse_mul_expr st =
  let rec go lhs =
    match peek st with
    | Token.STAR ->
        advance st;
        go (Binary (Mul, lhs, parse_unary_expr st))
    | Token.SLASH ->
        advance st;
        go (Binary (Div, lhs, parse_unary_expr st))
    | Token.PERCENT ->
        advance st;
        go (Binary (Mod, lhs, parse_unary_expr st))
    | _ -> lhs
  in
  go (parse_unary_expr st)

and parse_unary_expr st =
  match peek st with
  | Token.MINUS ->
      advance st;
      Unary (Neg, parse_unary_expr st)
  | Token.PLUS ->
      advance st;
      Unary (Pos, parse_unary_expr st)
  | Token.TILDE ->
      advance st;
      Unary (Bit_not, parse_unary_expr st)
  | _ -> parse_primary_expr st

and parse_primary_expr st =
  match peek st with
  | Token.INT_LIT i ->
      advance st;
      Int_lit i
  | Token.FLOAT_LIT f ->
      advance st;
      Float_lit f
  | Token.CHAR_LIT c ->
      advance st;
      Char_lit c
  | Token.STRING_LIT s ->
      advance st;
      String_lit s
  | Token.KW_true ->
      advance st;
      Bool_lit true
  | Token.KW_false ->
      advance st;
      Bool_lit false
  | Token.LPAREN ->
      advance st;
      let e = parse_const_expr st in
      expect st Token.RPAREN;
      e
  | Token.IDENT _ | Token.COLONCOLON -> Name_ref (parse_scoped_name st)
  | other ->
      Stream_.error st "expected a constant expression but found %s"
        (Token.to_string other)

(* ---------------- type specifications ---------------- *)

let rec parse_type_spec st =
  match peek st with
  | Token.KW_void ->
      advance st;
      Void
  | Token.KW_short ->
      advance st;
      Short
  | Token.KW_long ->
      advance st;
      if peek st = Token.KW_long then (
        advance st;
        Long_long)
      else Long
  | Token.KW_unsigned -> (
      advance st;
      match peek st with
      | Token.KW_short ->
          advance st;
          Unsigned_short
      | Token.KW_long ->
          advance st;
          if peek st = Token.KW_long then (
            advance st;
            Unsigned_long_long)
          else Unsigned_long
      | other ->
          Stream_.error st "expected 'short' or 'long' after 'unsigned', found %s"
            (Token.to_string other))
  | Token.KW_float ->
      advance st;
      Float
  | Token.KW_double ->
      advance st;
      Double
  | Token.KW_boolean ->
      advance st;
      Boolean
  | Token.KW_char ->
      advance st;
      Char
  | Token.KW_octet ->
      advance st;
      Octet
  | Token.KW_any ->
      advance st;
      Any
  | Token.KW_string ->
      advance st;
      if peek st = Token.LT then (
        advance st;
        let bound = parse_positive_int st in
        Stream_.expect_gt st;
        String (Some bound))
      else String None
  | Token.KW_sequence ->
      advance st;
      expect st Token.LT;
      let elem = parse_type_spec st in
      let bound =
        if peek st = Token.COMMA then (
          advance st;
          Some (parse_positive_int st))
        else None
      in
      Stream_.expect_gt st;
      Sequence (elem, bound)
  | Token.IDENT _ | Token.COLONCOLON -> Named (parse_scoped_name st)
  | other ->
      Stream_.error st "expected a type specification but found %s"
        (Token.to_string other)

and parse_positive_int st =
  match peek st with
  | Token.INT_LIT i when i > 0L && i <= Int64.of_int max_int ->
      advance st;
      Int64.to_int i
  | other ->
      Stream_.error st "expected a positive integer bound but found %s"
        (Token.to_string other)

(* ---------------- declarations ---------------- *)

let parse_declarators st =
  let first = ident st in
  let rec more acc =
    if peek st = Token.COMMA then (
      advance st;
      more (ident st :: acc))
    else List.rev acc
  in
  more [ first ]

let parse_struct_members st =
  (* Members until the closing brace: [type declarators ';']* *)
  let rec go acc =
    if peek st = Token.RBRACE then List.rev acc
    else
      let loc = Stream_.loc st in
      let ty = parse_type_spec st in
      let names = parse_declarators st in
      expect st Token.SEMI;
      go ({ sm_type = ty; sm_names = names; sm_loc = loc } :: acc)
  in
  go []

let parse_struct st =
  let loc = Stream_.loc st in
  expect st Token.KW_struct;
  let name = ident st in
  expect st Token.LBRACE;
  let members = parse_struct_members st in
  expect st Token.RBRACE;
  { st_name = name; st_members = members; st_loc = loc }

let parse_enum st =
  let loc = Stream_.loc st in
  expect st Token.KW_enum;
  let name = ident st in
  expect st Token.LBRACE;
  let first = ident st in
  let rec more acc =
    if peek st = Token.COMMA then (
      advance st;
      (* Allow a trailing comma before '}'. *)
      if peek st = Token.RBRACE then List.rev acc else more (ident st :: acc))
    else List.rev acc
  in
  let members = more [ first ] in
  expect st Token.RBRACE;
  { en_name = name; en_members = members; en_loc = loc }

let parse_union st =
  let loc = Stream_.loc st in
  expect st Token.KW_union;
  let name = ident st in
  expect st Token.KW_switch;
  expect st Token.LPAREN;
  let disc = parse_type_spec st in
  expect st Token.RPAREN;
  expect st Token.LBRACE;
  let parse_case () =
    let cloc = Stream_.loc st in
    let rec labels acc =
      match peek st with
      | Token.KW_case ->
          advance st;
          let v = parse_const_expr st in
          expect st Token.COLON;
          labels (Case_value v :: acc)
      | Token.KW_default ->
          advance st;
          expect st Token.COLON;
          labels (Case_default :: acc)
      | _ -> List.rev acc
    in
    let ls = labels [] in
    if ls = [] then
      Stream_.error st "expected 'case' or 'default' in union %s" name;
    let ty = parse_type_spec st in
    let n = ident st in
    expect st Token.SEMI;
    { uc_labels = ls; uc_type = ty; uc_name = n; uc_loc = cloc }
  in
  let rec cases acc =
    if peek st = Token.RBRACE then List.rev acc else cases (parse_case () :: acc)
  in
  let cs = cases [] in
  expect st Token.RBRACE;
  { un_name = name; un_disc = disc; un_cases = cs; un_loc = loc }

let parse_typedef st =
  let loc = Stream_.loc st in
  expect st Token.KW_typedef;
  let ty = parse_type_spec st in
  let names = parse_declarators st in
  { td_type = ty; td_names = names; td_loc = loc }

let parse_const st =
  let loc = Stream_.loc st in
  expect st Token.KW_const;
  let ty = parse_type_spec st in
  let name = ident st in
  expect st Token.EQ;
  let value = parse_const_expr st in
  { cn_type = ty; cn_name = name; cn_value = value; cn_loc = loc }

let parse_exception st =
  let loc = Stream_.loc st in
  expect st Token.KW_exception;
  let name = ident st in
  expect st Token.LBRACE;
  let members = parse_struct_members st in
  expect st Token.RBRACE;
  { ex_name = name; ex_members = members; ex_loc = loc }

let parse_attribute st =
  let loc = Stream_.loc st in
  let readonly =
    if peek st = Token.KW_readonly then (
      advance st;
      true)
    else false
  in
  expect st Token.KW_attribute;
  let ty = parse_type_spec st in
  let names = parse_declarators st in
  expect st Token.SEMI;
  { at_readonly = readonly; at_type = ty; at_names = names; at_loc = loc }

let parse_param st =
  let loc = Stream_.loc st in
  let mode =
    match peek st with
    | Token.KW_in ->
        advance st;
        In
    | Token.KW_out ->
        advance st;
        Out
    | Token.KW_inout ->
        advance st;
        Inout
    | Token.KW_incopy ->
        advance st;
        Incopy
    | other ->
        Stream_.error st
          "expected a parameter mode ('in', 'out', 'inout' or 'incopy') but \
           found %s"
          (Token.to_string other)
  in
  let ty = parse_type_spec st in
  let name = ident st in
  let default =
    if peek st = Token.EQ then (
      advance st;
      Some (parse_const_expr st))
    else None
  in
  (match (mode, default) with
  | (Out | Inout), Some _ ->
      Diag.emit ~code:"E012" ~loc
        "default values are only allowed on 'in' and 'incopy' parameters"
  | _ -> ());
  { p_mode = mode; p_type = ty; p_name = name; p_default = default; p_loc = loc }

let parse_operation st =
  let loc = Stream_.loc st in
  let oneway =
    if peek st = Token.KW_oneway then (
      advance st;
      true)
    else false
  in
  let ret = parse_type_spec st in
  let name = ident st in
  expect st Token.LPAREN;
  let params =
    if peek st = Token.RPAREN then []
    else
      let first = parse_param st in
      let rec more acc =
        if peek st = Token.COMMA then (
          advance st;
          more (parse_param st :: acc))
        else List.rev acc
      in
      more [ first ]
  in
  expect st Token.RPAREN;
  let raises =
    if peek st = Token.KW_raises then (
      advance st;
      expect st Token.LPAREN;
      let first = parse_scoped_name st in
      let rec more acc =
        if peek st = Token.COMMA then (
          advance st;
          more (parse_scoped_name st :: acc))
        else List.rev acc
      in
      let names = more [ first ] in
      expect st Token.RPAREN;
      names)
    else []
  in
  expect st Token.SEMI;
  (* Default parameters must be trailing, as in C++. *)
  let seen_default = ref false in
  List.iter
    (fun p ->
      match p.p_default with
      | Some _ -> seen_default := true
      | None ->
          if !seen_default then
            Diag.emit ~code:"E012" ~loc:p.p_loc
              "parameter %S without a default value follows a parameter with one"
              p.p_name)
    params;
  if oneway && ret <> Void then
    Diag.emit ~code:"E005" ~loc
      "oneway operation %S must have a 'void' return type" name;
  {
    op_oneway = oneway;
    op_return = ret;
    op_name = name;
    op_params = params;
    op_raises = raises;
    op_loc = loc;
  }

let parse_export st =
  match peek st with
  | Token.KW_typedef ->
      let d = parse_typedef st in
      expect st Token.SEMI;
      Ex_typedef d
  | Token.KW_struct ->
      let d = parse_struct st in
      expect st Token.SEMI;
      Ex_struct d
  | Token.KW_union ->
      let d = parse_union st in
      expect st Token.SEMI;
      Ex_union d
  | Token.KW_enum ->
      let d = parse_enum st in
      expect st Token.SEMI;
      Ex_enum d
  | Token.KW_const ->
      let d = parse_const st in
      expect st Token.SEMI;
      Ex_const d
  | Token.KW_exception ->
      let d = parse_exception st in
      expect st Token.SEMI;
      Ex_except d
  | Token.KW_readonly | Token.KW_attribute -> Ex_attr (parse_attribute st)
  | _ -> Ex_op (parse_operation st)

let parse_interface st =
  let loc = Stream_.loc st in
  expect st Token.KW_interface;
  let name = ident st in
  match peek st with
  | Token.SEMI ->
      advance st;
      D_forward (name, loc)
  | _ ->
      let inherits =
        if peek st = Token.COLON then (
          advance st;
          let first = parse_scoped_name st in
          let rec more acc =
            if peek st = Token.COMMA then (
              advance st;
              more (parse_scoped_name st :: acc))
            else List.rev acc
          in
          more [ first ])
        else []
      in
      expect st Token.LBRACE;
      let rec exports acc =
        if peek st = Token.RBRACE then List.rev acc
        else exports (parse_export st :: acc)
      in
      let body = exports [] in
      expect st Token.RBRACE;
      expect st Token.SEMI;
      D_interface
        { if_name = name; if_inherits = inherits; if_exports = body; if_loc = loc }

let rec parse_definition st =
  match peek st with
  | Token.PRAGMA_PREFIX p ->
      let loc = Stream_.loc st in
      advance st;
      D_pragma_prefix (p, loc)
  | Token.KW_module ->
      let loc = Stream_.loc st in
      advance st;
      let name = ident st in
      expect st Token.LBRACE;
      let rec defs acc =
        if peek st = Token.RBRACE then List.rev acc
        else defs (parse_definition st :: acc)
      in
      let body = defs [] in
      expect st Token.RBRACE;
      expect st Token.SEMI;
      D_module (name, body, loc)
  | Token.KW_interface -> parse_interface st
  | Token.KW_typedef ->
      let d = parse_typedef st in
      expect st Token.SEMI;
      D_typedef d
  | Token.KW_struct ->
      let d = parse_struct st in
      expect st Token.SEMI;
      D_struct d
  | Token.KW_union ->
      let d = parse_union st in
      expect st Token.SEMI;
      D_union d
  | Token.KW_enum ->
      let d = parse_enum st in
      expect st Token.SEMI;
      D_enum d
  | Token.KW_const ->
      let d = parse_const st in
      expect st Token.SEMI;
      D_const d
  | Token.KW_exception ->
      let d = parse_exception st in
      expect st Token.SEMI;
      D_except d
  | other ->
      Stream_.error st "expected a definition but found %s" (Token.to_string other)

let parse_string ?(filename = "<string>") src =
  let st = Stream_.make ~filename src in
  let rec defs acc =
    if peek st = Token.EOF then List.rev acc else defs (parse_definition st :: acc)
  in
  defs []

let parse_file path =
  let ic = open_in_bin path in
  let content =
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  parse_string ~filename:path content
