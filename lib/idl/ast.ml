(** Abstract syntax tree for the OMG IDL subset accepted by the compiler.

    The subset covers the constructs used throughout the paper — modules,
    interfaces (with multiple inheritance and forward declarations),
    typedefs, structs, unions, enums, constants, exceptions, attributes and
    operations — plus the two HeidiRMI syntax extensions of Section 3.1:

    - default parameter values ([void p(in long l = 0)]), and
    - the [incopy] parameter-passing mode (pass-by-value for object
      references). *)

type ident = string

(** A possibly-qualified name such as [Heidi::A] or [::Heidi::Start].
    [absolute] is true when the name starts with [::]. *)
type scoped_name = { absolute : bool; parts : ident list; sn_loc : Loc.t }

(** Primitive and constructed type specifications. Named user types appear
    as [Named] and are resolved during semantic analysis. *)
type type_spec =
  | Void
  | Short
  | Long
  | Long_long
  | Unsigned_short
  | Unsigned_long
  | Unsigned_long_long
  | Float
  | Double
  | Boolean
  | Char
  | Octet
  | String of int option  (** Optional bound: [string<16>]. *)
  | Any
  | Sequence of type_spec * int option  (** Optional bound. *)
  | Named of scoped_name

(** Literals and constant expressions, used for [const] declarations and
    default parameter values. *)
type const_expr =
  | Int_lit of int64
  | Float_lit of float
  | Bool_lit of bool
  | Char_lit of char
  | String_lit of string
  | Name_ref of scoped_name  (** Reference to a constant or enumerator. *)
  | Unary of unary_op * const_expr
  | Binary of binary_op * const_expr * const_expr

and unary_op = Neg | Pos | Bit_not

and binary_op =
  | Or
  | Xor
  | And
  | Shift_left
  | Shift_right
  | Add
  | Sub
  | Mul
  | Div
  | Mod

(** Parameter-passing modes. [Incopy] is the paper's extension: identical to
    [In] for value types, pass-by-value for object references. *)
type param_mode = In | Out | Inout | Incopy

type param = {
  p_mode : param_mode;
  p_type : type_spec;
  p_name : ident;
  p_default : const_expr option;  (** Paper extension: default value. *)
  p_loc : Loc.t;
}

type operation = {
  op_oneway : bool;
  op_return : type_spec;
  op_name : ident;
  op_params : param list;
  op_raises : scoped_name list;
  op_loc : Loc.t;
}

type attribute = {
  at_readonly : bool;
  at_type : type_spec;
  at_names : ident list;  (** IDL allows [attribute long a, b;]. *)
  at_loc : Loc.t;
}

type struct_member = { sm_type : type_spec; sm_names : ident list; sm_loc : Loc.t }

type case_label = Case_value of const_expr | Case_default

type union_case = {
  uc_labels : case_label list;
  uc_type : type_spec;
  uc_name : ident;
  uc_loc : Loc.t;
}

type enum_decl = { en_name : ident; en_members : ident list; en_loc : Loc.t }

type struct_decl = {
  st_name : ident;
  st_members : struct_member list;
  st_loc : Loc.t;
}

type union_decl = {
  un_name : ident;
  un_disc : type_spec;
  un_cases : union_case list;
  un_loc : Loc.t;
}

type typedef_decl = {
  td_type : type_spec;
  td_names : ident list;
  td_loc : Loc.t;
}

type const_decl = {
  cn_type : type_spec;
  cn_name : ident;
  cn_value : const_expr;
  cn_loc : Loc.t;
}

type except_decl = {
  ex_name : ident;
  ex_members : struct_member list;
  ex_loc : Loc.t;
}

(** Entries allowed inside an interface body. *)
type export =
  | Ex_op of operation
  | Ex_attr of attribute
  | Ex_typedef of typedef_decl
  | Ex_struct of struct_decl
  | Ex_union of union_decl
  | Ex_enum of enum_decl
  | Ex_const of const_decl
  | Ex_except of except_decl

type interface_decl = {
  if_name : ident;
  if_inherits : scoped_name list;
  if_exports : export list;
  if_loc : Loc.t;
}

(** Top-level (or module-level) definitions. *)
type definition =
  | D_pragma_prefix of string * Loc.t
      (** [#pragma prefix "nec.com"]: prefixes the repository IDs of the
          definitions that follow it in the same scope. *)
  | D_module of ident * definition list * Loc.t
  | D_interface of interface_decl
  | D_forward of ident * Loc.t  (** Forward interface declaration. *)
  | D_typedef of typedef_decl
  | D_struct of struct_decl
  | D_union of union_decl
  | D_enum of enum_decl
  | D_const of const_decl
  | D_except of except_decl

type spec = definition list

(* ------------------------------------------------------------------ *)
(* Convenience constructors and accessors                              *)
(* ------------------------------------------------------------------ *)

let scoped ?(absolute = false) ?(loc = Loc.dummy) parts =
  { absolute; parts; sn_loc = loc }

let scoped_name_to_string sn =
  (if sn.absolute then "::" else "") ^ String.concat "::" sn.parts

let definition_name = function
  | D_pragma_prefix (p, _) -> "#pragma prefix " ^ p
  | D_module (n, _, _) -> n
  | D_interface i -> i.if_name
  | D_forward (n, _) -> n
  | D_typedef t -> String.concat "," t.td_names
  | D_struct s -> s.st_name
  | D_union u -> u.un_name
  | D_enum e -> e.en_name
  | D_const c -> c.cn_name
  | D_except e -> e.ex_name

let definition_loc = function
  | D_pragma_prefix (_, l) | D_module (_, _, l) | D_forward (_, l) -> l
  | D_interface i -> i.if_loc
  | D_typedef t -> t.td_loc
  | D_struct s -> s.st_loc
  | D_union u -> u.un_loc
  | D_enum e -> e.en_loc
  | D_const c -> c.cn_loc
  | D_except e -> e.ex_loc

(** Structural equality that ignores source locations; used by the
    parser/pretty-printer round-trip tests. *)
let rec equal_type_spec a b =
  match (a, b) with
  | Sequence (t1, b1), Sequence (t2, b2) -> equal_type_spec t1 t2 && b1 = b2
  | Named n1, Named n2 -> n1.absolute = n2.absolute && n1.parts = n2.parts
  | a, b -> a = b

let rec equal_const_expr a b =
  match (a, b) with
  | Name_ref n1, Name_ref n2 -> n1.absolute = n2.absolute && n1.parts = n2.parts
  | Unary (o1, e1), Unary (o2, e2) -> o1 = o2 && equal_const_expr e1 e2
  | Binary (o1, a1, b1), Binary (o2, a2, b2) ->
      o1 = o2 && equal_const_expr a1 a2 && equal_const_expr b1 b2
  | a, b -> a = b

let equal_param a b =
  a.p_mode = b.p_mode
  && equal_type_spec a.p_type b.p_type
  && a.p_name = b.p_name
  &&
  match (a.p_default, b.p_default) with
  | None, None -> true
  | Some x, Some y -> equal_const_expr x y
  | _ -> false

let equal_operation a b =
  a.op_oneway = b.op_oneway
  && equal_type_spec a.op_return b.op_return
  && a.op_name = b.op_name
  && List.length a.op_params = List.length b.op_params
  && List.for_all2 equal_param a.op_params b.op_params
  && List.length a.op_raises = List.length b.op_raises
  && List.for_all2
       (fun (x : scoped_name) (y : scoped_name) ->
         x.absolute = y.absolute && x.parts = y.parts)
       a.op_raises b.op_raises

let equal_attribute a b =
  a.at_readonly = b.at_readonly
  && equal_type_spec a.at_type b.at_type
  && a.at_names = b.at_names

let equal_struct_member a b =
  equal_type_spec a.sm_type b.sm_type && a.sm_names = b.sm_names

let equal_case_label a b =
  match (a, b) with
  | Case_default, Case_default -> true
  | Case_value x, Case_value y -> equal_const_expr x y
  | _ -> false

let equal_union_case a b =
  List.length a.uc_labels = List.length b.uc_labels
  && List.for_all2 equal_case_label a.uc_labels b.uc_labels
  && equal_type_spec a.uc_type b.uc_type
  && a.uc_name = b.uc_name

let rec equal_definition a b =
  match (a, b) with
  | D_pragma_prefix (p1, _), D_pragma_prefix (p2, _) -> p1 = p2
  | D_module (n1, ds1, _), D_module (n2, ds2, _) ->
      n1 = n2
      && List.length ds1 = List.length ds2
      && List.for_all2 equal_definition ds1 ds2
  | D_interface i1, D_interface i2 ->
      i1.if_name = i2.if_name
      && List.length i1.if_inherits = List.length i2.if_inherits
      && List.for_all2
           (fun (x : scoped_name) (y : scoped_name) ->
             x.absolute = y.absolute && x.parts = y.parts)
           i1.if_inherits i2.if_inherits
      && List.length i1.if_exports = List.length i2.if_exports
      && List.for_all2 equal_export i1.if_exports i2.if_exports
  | D_forward (n1, _), D_forward (n2, _) -> n1 = n2
  | D_typedef t1, D_typedef t2 ->
      equal_type_spec t1.td_type t2.td_type && t1.td_names = t2.td_names
  | D_struct s1, D_struct s2 ->
      s1.st_name = s2.st_name
      && List.length s1.st_members = List.length s2.st_members
      && List.for_all2 equal_struct_member s1.st_members s2.st_members
  | D_union u1, D_union u2 ->
      u1.un_name = u2.un_name
      && equal_type_spec u1.un_disc u2.un_disc
      && List.length u1.un_cases = List.length u2.un_cases
      && List.for_all2 equal_union_case u1.un_cases u2.un_cases
  | D_enum e1, D_enum e2 -> e1.en_name = e2.en_name && e1.en_members = e2.en_members
  | D_const c1, D_const c2 ->
      equal_type_spec c1.cn_type c2.cn_type
      && c1.cn_name = c2.cn_name
      && equal_const_expr c1.cn_value c2.cn_value
  | D_except e1, D_except e2 ->
      e1.ex_name = e2.ex_name
      && List.length e1.ex_members = List.length e2.ex_members
      && List.for_all2 equal_struct_member e1.ex_members e2.ex_members
  | _ -> false

and equal_export a b =
  match (a, b) with
  | Ex_op o1, Ex_op o2 -> equal_operation o1 o2
  | Ex_attr a1, Ex_attr a2 -> equal_attribute a1 a2
  | Ex_typedef t1, Ex_typedef t2 -> equal_definition (D_typedef t1) (D_typedef t2)
  | Ex_struct s1, Ex_struct s2 -> equal_definition (D_struct s1) (D_struct s2)
  | Ex_union u1, Ex_union u2 -> equal_definition (D_union u1) (D_union u2)
  | Ex_enum e1, Ex_enum e2 -> equal_definition (D_enum e1) (D_enum e2)
  | Ex_const c1, Ex_const c2 -> equal_definition (D_const c1) (D_const c2)
  | Ex_except e1, Ex_except e2 -> equal_definition (D_except e1) (D_except e2)
  | _ -> false

let equal_spec a b =
  List.length a = List.length b && List.for_all2 equal_definition a b
