type severity = Error | Warning

type t = {
  severity : severity;
  code : string;
  loc : Loc.t;
  message : string;
  notes : (Loc.t * string) list;
}

exception Idl_error of t

let make ?(code = "") ?(notes = []) ~severity ~loc message =
  { severity; code; loc; message; notes }

let error ?code ?notes ~loc fmt =
  Format.kasprintf
    (fun message ->
      raise (Idl_error (make ?code ?notes ~severity:Error ~loc message)))
    fmt

let warning ?code ?notes ~loc fmt =
  Format.kasprintf (fun message -> make ?code ?notes ~severity:Warning ~loc message) fmt

let severity_tag = function Error -> "error" | Warning -> "warning"

let pp ppf t =
  let tag = severity_tag t.severity in
  if t.code = "" then Format.fprintf ppf "%a: %s: %s" Loc.pp t.loc tag t.message
  else Format.fprintf ppf "%a: %s[%s]: %s" Loc.pp t.loc tag t.code t.message;
  List.iter
    (fun (loc, note) -> Format.fprintf ppf "@\n%a: note: %s" Loc.pp loc note)
    t.notes

let to_string t = Format.asprintf "%a" pp t

(* ---------------- JSON rendering ---------------- *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json t =
  let note_json (loc, msg) =
    Printf.sprintf
      "{\"file\":\"%s\",\"line\":%d,\"col\":%d,\"message\":\"%s\"}"
      (json_escape loc.Loc.file) loc.Loc.line loc.Loc.col (json_escape msg)
  in
  Printf.sprintf
    "{\"severity\":\"%s\",\"code\":\"%s\",\"file\":\"%s\",\"line\":%d,\"col\":%d,\"message\":\"%s\",\"notes\":[%s]}"
    (severity_tag t.severity) (json_escape t.code) (json_escape t.loc.Loc.file)
    t.loc.Loc.line t.loc.Loc.col (json_escape t.message)
    (String.concat "," (List.map note_json t.notes))

(* ---------------- accumulating reporter ---------------- *)

type reporter = {
  mutable diags : t list;  (* reverse emission order *)
  mutable seen : (string * Loc.t * string) list;  (* dedup keys *)
  disabled : (string, unit) Hashtbl.t;
  mutable werror : bool;
  mutable max_errors : int;  (* 0 = unlimited *)
}

exception Too_many_errors

let reporter ?(werror = false) ?(max_errors = 0) () =
  { diags = []; seen = []; disabled = Hashtbl.create 8; werror; max_errors }

let set_werror r b = r.werror <- b

let set_enabled r code enabled =
  if enabled then Hashtbl.remove r.disabled code
  else Hashtbl.replace r.disabled code ()

let effective_severity r t =
  match t.severity with
  | Warning when r.werror -> Error
  | s -> s

let report r t =
  let key = (t.code, t.loc, t.message) in
  if Hashtbl.mem r.disabled t.code && t.severity = Warning then ()
  else if List.mem key r.seen then ()
  else begin
    r.seen <- key :: r.seen;
    r.diags <- t :: r.diags;
    if
      r.max_errors > 0
      && List.length (List.filter (fun d -> d.severity = Error) r.diags)
         >= r.max_errors
    then raise Too_many_errors
  end

let diagnostics r =
  let by_loc a b =
    match compare a.loc.Loc.file b.loc.Loc.file with
    | 0 -> (
        match compare a.loc.Loc.line b.loc.Loc.line with
        | 0 -> compare a.loc.Loc.col b.loc.Loc.col
        | c -> c)
    | c -> c
  in
  List.stable_sort by_loc (List.rev r.diags)

let error_count r =
  List.length (List.filter (fun d -> effective_severity r d = Error) r.diags)

let warning_count r =
  List.length (List.filter (fun d -> effective_severity r d = Warning) r.diags)

let has_errors r = error_count r > 0

(* Render with the effective severity, so --werror'd warnings read as the
   errors they are counted as. *)
let promote r d = { d with severity = effective_severity r d }

let render_text r =
  String.concat ""
    (List.map (fun d -> to_string (promote r d) ^ "\n") (diagnostics r))

let render_json r =
  "["
  ^ String.concat ",\n " (List.map (fun d -> to_json (promote r d)) (diagnostics r))
  ^ "]\n"

(* ---------------- recovery hooks ----------------

   When a reporter is installed, code paths that would normally abort on
   the first [Idl_error] can instead accumulate the diagnostic and keep
   going, so one run surfaces every problem (the lint mode contract).
   Without a reporter, behaviour is exactly the historic raise-on-first-
   error semantics. *)

let installed : reporter option ref = ref None

let current_reporter () = !installed

let with_reporter r f =
  let prev = !installed in
  installed := Some r;
  Fun.protect ~finally:(fun () -> installed := prev) f

let recover ~default f =
  match !installed with
  | None -> f ()
  | Some r -> (
      try f ()
      with Idl_error d ->
        report r d;
        default)

(* Accumulate an error when a reporter is installed; raise otherwise. *)
let emit ?code ?notes ~loc fmt =
  Format.kasprintf
    (fun message ->
      let d = make ?code ?notes ~severity:Error ~loc message in
      match !installed with
      | Some r -> report r d
      | None -> raise (Idl_error d))
    fmt

let emit_warning ?code ?notes ~loc fmt =
  Format.kasprintf
    (fun message ->
      let d = make ?code ?notes ~severity:Warning ~loc message in
      match !installed with Some r -> report r d | None -> ())
    fmt

let () =
  Printexc.register_printer (function
    | Idl_error d -> Some (to_string d)
    | _ -> None)
