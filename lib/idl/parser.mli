(** Recursive-descent parser for the OMG IDL subset (plus HeidiRMI
    extensions). The grammar follows CORBA 2.0 chapter 3, restricted to the
    constructs listed in {!Ast}, and extended with default parameter values
    and the [incopy] parameter mode. *)

val parse_string : ?filename:string -> string -> Ast.spec
(** [parse_string ~filename src] parses IDL source text. [filename] is used
    in diagnostics (default ["<string>"]).
    @raise Diag.Idl_error on lexical or syntax errors. *)

val parse_file : string -> Ast.spec
(** [parse_file path] reads and parses an IDL file.
    @raise Diag.Idl_error on lexical or syntax errors.
    @raise Sys_error if the file cannot be read. *)
