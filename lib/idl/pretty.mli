(** Pretty-printer producing valid IDL source from an {!Ast.spec}.

    Round-trip guarantee (checked by the property tests):
    [Parser.parse_string (to_string spec)] is structurally equal to [spec]
    (locations excepted). *)

val pp_type_spec : Format.formatter -> Ast.type_spec -> unit
val pp_const_expr : Format.formatter -> Ast.const_expr -> unit
val pp_definition : Format.formatter -> Ast.definition -> unit
val pp_spec : Format.formatter -> Ast.spec -> unit

val type_spec_to_string : Ast.type_spec -> string
val const_expr_to_string : Ast.const_expr -> string
val to_string : Ast.spec -> string
