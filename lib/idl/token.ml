(** Lexical tokens produced by {!Lexer}. *)

type t =
  | IDENT of string
  | INT_LIT of int64
  | FLOAT_LIT of float
  | CHAR_LIT of char
  | STRING_LIT of string
  | PRAGMA_PREFIX of string
      (** [#pragma prefix "..."] — scopes subsequent repository IDs. *)
  (* Keywords *)
  | KW_module
  | KW_interface
  | KW_const
  | KW_typedef
  | KW_struct
  | KW_union
  | KW_switch
  | KW_case
  | KW_default
  | KW_enum
  | KW_sequence
  | KW_string
  | KW_boolean
  | KW_char
  | KW_octet
  | KW_short
  | KW_long
  | KW_float
  | KW_double
  | KW_unsigned
  | KW_void
  | KW_any
  | KW_readonly
  | KW_attribute
  | KW_oneway
  | KW_in
  | KW_out
  | KW_inout
  | KW_incopy  (** HeidiRMI extension: pass-by-value qualifier. *)
  | KW_raises
  | KW_exception
  | KW_true
  | KW_false
  (* Punctuation *)
  | LBRACE
  | RBRACE
  | LPAREN
  | RPAREN
  | LBRACKET
  | RBRACKET
  | LT
  | GT
  | SEMI
  | COLON
  | COLONCOLON
  | COMMA
  | EQ
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | PERCENT
  | PIPE
  | CARET
  | AMP
  | TILDE
  | SHL
  | SHR
  | EOF

let keyword_table : (string * t) list =
  [
    ("module", KW_module);
    ("interface", KW_interface);
    ("const", KW_const);
    ("typedef", KW_typedef);
    ("struct", KW_struct);
    ("union", KW_union);
    ("switch", KW_switch);
    ("case", KW_case);
    ("default", KW_default);
    ("enum", KW_enum);
    ("sequence", KW_sequence);
    ("string", KW_string);
    ("boolean", KW_boolean);
    ("char", KW_char);
    ("octet", KW_octet);
    ("short", KW_short);
    ("long", KW_long);
    ("float", KW_float);
    ("double", KW_double);
    ("unsigned", KW_unsigned);
    ("void", KW_void);
    ("any", KW_any);
    ("readonly", KW_readonly);
    ("attribute", KW_attribute);
    ("oneway", KW_oneway);
    ("in", KW_in);
    ("out", KW_out);
    ("inout", KW_inout);
    ("incopy", KW_incopy);
    ("raises", KW_raises);
    ("exception", KW_exception);
    ("TRUE", KW_true);
    ("FALSE", KW_false);
  ]

let of_ident s =
  match List.assoc_opt s keyword_table with Some kw -> kw | None -> IDENT s

let to_string = function
  | IDENT s -> Printf.sprintf "identifier %S" s
  | INT_LIT i -> Printf.sprintf "integer literal %Ld" i
  | FLOAT_LIT f -> Printf.sprintf "float literal %g" f
  | CHAR_LIT c -> Printf.sprintf "character literal %C" c
  | STRING_LIT s -> Printf.sprintf "string literal %S" s
  | PRAGMA_PREFIX p -> Printf.sprintf "#pragma prefix %S" p
  | LBRACE -> "'{'"
  | RBRACE -> "'}'"
  | LPAREN -> "'('"
  | RPAREN -> "')'"
  | LBRACKET -> "'['"
  | RBRACKET -> "']'"
  | LT -> "'<'"
  | GT -> "'>'"
  | SEMI -> "';'"
  | COLON -> "':'"
  | COLONCOLON -> "'::'"
  | COMMA -> "','"
  | EQ -> "'='"
  | PLUS -> "'+'"
  | MINUS -> "'-'"
  | STAR -> "'*'"
  | SLASH -> "'/'"
  | PERCENT -> "'%'"
  | PIPE -> "'|'"
  | CARET -> "'^'"
  | AMP -> "'&'"
  | TILDE -> "'~'"
  | SHL -> "'<<'"
  | SHR -> "'>>'"
  | EOF -> "end of input"
  | kw -> (
      (* Reverse lookup through the keyword table. *)
      match List.find_opt (fun (_, t) -> t = kw) keyword_table with
      | Some (name, _) -> Printf.sprintf "keyword %S" name
      | None -> "<token>")
