(** Diagnostics: compile-time errors and warnings with source locations,
    stable codes, and an accumulating reporter for lint mode.

    Two regimes coexist:

    - {b Abort-on-first-error} (the historic compiler behaviour): {!error}
      raises {!Idl_error}; callers catch it at the driver and render one
      diagnostic. This is still the default whenever no reporter is
      installed.
    - {b Accumulate-and-continue} (lint mode): install a {!reporter} with
      {!with_reporter}; recovery points wrapped in {!recover} then catch
      {!Idl_error}, add the diagnostic to the reporter, and continue, so a
      single run surfaces every independent problem.

    Codes are stable strings: [E0xx] front-end errors, [W1xx] lint
    warnings, [T2xx] template-checker findings, [V3xx] interface-evolution
    findings (see [Analysis.Codes] for the table). *)

type severity = Error | Warning

type t = {
  severity : severity;
  code : string;  (** Stable code such as ["E003"]; [""] when uncoded. *)
  loc : Loc.t;
  message : string;
  notes : (Loc.t * string) list;
      (** Related source locations, e.g. the previous definition. *)
}

exception Idl_error of t
(** Raised by the lexer, parser, and semantic analysis on fatal errors. *)

val make :
  ?code:string ->
  ?notes:(Loc.t * string) list ->
  severity:severity ->
  loc:Loc.t ->
  string ->
  t

val error :
  ?code:string ->
  ?notes:(Loc.t * string) list ->
  loc:Loc.t ->
  ('a, Format.formatter, unit, 'b) format4 ->
  'a
(** [error ~loc fmt ...] raises {!Idl_error} with a formatted message. *)

val warning :
  ?code:string ->
  ?notes:(Loc.t * string) list ->
  loc:Loc.t ->
  ('a, Format.formatter, unit, t) format4 ->
  'a
(** [warning ~loc fmt ...] builds a warning diagnostic (not raised). *)

val pp : Format.formatter -> t -> unit
(** [file:line:col: error[E003]: message], one extra [note:] line per note. *)

val to_string : t -> string

val to_json : t -> string
(** One diagnostic as a JSON object (the [--lint-json] element shape). *)

(** {1 Accumulating reporter} *)

type reporter

exception Too_many_errors
(** Raised by {!report} once [max_errors] errors have accumulated. *)

val reporter : ?werror:bool -> ?max_errors:int -> unit -> reporter
(** A fresh reporter. [werror] promotes warnings to errors for counting
    and rendering purposes; [max_errors = 0] (default) means unlimited. *)

val set_werror : reporter -> bool -> unit

val set_enabled : reporter -> string -> bool -> unit
(** Enable or disable a warning code. Disabled codes are dropped at
    {!report} time; error-severity diagnostics are never dropped. *)

val report : reporter -> t -> unit
(** Add a diagnostic. Duplicates (same code, location and message) and
    disabled warning codes are dropped silently. *)

val diagnostics : reporter -> t list
(** All retained diagnostics, sorted by file, line and column (stable for
    equal positions). *)

val error_count : reporter -> int
(** Number of error-severity diagnostics; under [werror] warnings count. *)

val warning_count : reporter -> int
val has_errors : reporter -> bool

val render_text : reporter -> string
(** Every diagnostic through {!pp}, one per line, location-sorted. *)

val render_json : reporter -> string
(** The [--lint-json] document: a JSON array of diagnostic objects. *)

(** {1 Error-recovery hooks} *)

val with_reporter : reporter -> (unit -> 'a) -> 'a
(** [with_reporter r f] runs [f] with [r] installed as the ambient
    reporter (restored afterwards, exception-safe). While installed,
    {!recover} and {!emit} accumulate instead of aborting. *)

val current_reporter : unit -> reporter option

val recover : default:'a -> (unit -> 'a) -> 'a
(** [recover ~default f]: with a reporter installed, catch {!Idl_error}
    from [f], report it, and return [default]; with none, run [f] bare. *)

val emit :
  ?code:string ->
  ?notes:(Loc.t * string) list ->
  loc:Loc.t ->
  ('a, Format.formatter, unit, unit) format4 ->
  'a
(** Accumulate an error when a reporter is installed; raise otherwise. *)

val emit_warning :
  ?code:string ->
  ?notes:(Loc.t * string) list ->
  loc:Loc.t ->
  ('a, Format.formatter, unit, unit) format4 ->
  'a
(** Accumulate a warning when a reporter is installed; drop otherwise. *)
