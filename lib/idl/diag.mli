(** Diagnostics: compile-time errors and warnings with source locations. *)

type severity = Error | Warning

type t = { severity : severity; loc : Loc.t; message : string }

exception Idl_error of t
(** Raised by the lexer, parser, and semantic analysis on fatal errors. *)

val error : loc:Loc.t -> ('a, Format.formatter, unit, 'b) format4 -> 'a
(** [error ~loc fmt ...] raises {!Idl_error} with a formatted message. *)

val warning : loc:Loc.t -> ('a, Format.formatter, unit, t) format4 -> 'a
(** [warning ~loc fmt ...] builds a warning diagnostic (not raised). *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
