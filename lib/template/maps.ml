type fn = string -> string
type t = (string, fn) Hashtbl.t

let create () : t = Hashtbl.create 32
let register t name fn = Hashtbl.replace t name fn
let find t name = Hashtbl.find_opt t name
let names t = List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) t [])

let of_list l =
  let t = create () in
  List.iter (fun (name, fn) -> register t name fn) l;
  t

let union a b =
  let t = create () in
  Hashtbl.iter (fun k v -> Hashtbl.replace t k v) a;
  Hashtbl.iter (fun k v -> Hashtbl.replace t k v) b;
  t

let empty : t = Hashtbl.create 1
