exception Eval_error of { template : string; line : int; message : string }

let () =
  Printexc.register_printer (function
    | Eval_error { template; line; message } ->
        Some (Printf.sprintf "%s:%d: evaluation error: %s" template line message)
    | _ -> None)

type output = { files : (string * string) list; stdout : string }

type frame = {
  node : Est.Node.t;
  bindings : (string * string) list;
  maps : (string * string) list;
}

type state = {
  template : string;
  registry : Maps.t;
  mutable stack : frame list;  (* innermost first *)
  mutable current : Buffer.t;
  stdout_buf : Buffer.t;
  mutable files : (string * Buffer.t) list;  (* reverse order of opening *)
}

let error st ~line fmt =
  Printf.ksprintf
    (fun message -> raise (Eval_error { template = st.template; line; message }))
    fmt

(* Resolve a variable to its raw (unmapped) value. *)
let resolve_raw st ~line var =
  let rec go = function
    | [] ->
        error st ~line "unresolved variable ${%s} (node stack: %s)" var
          (String.concat " > "
             (List.rev_map (fun f -> Est.Node.kind f.node) st.stack))
    | frame :: rest -> (
        match List.assoc_opt var frame.bindings with
        | Some v -> v
        | None -> (
            match Est.Node.prop frame.node var with
            | Some v -> v
            | None -> go rest))
  in
  go st.stack

(* The innermost -map declaration for [var], if any. *)
let map_for st var =
  List.find_map (fun frame -> List.assoc_opt var frame.maps) st.stack

let resolve_mapped st ~line var =
  let raw = resolve_raw st ~line var in
  match map_for st var with
  | None -> raw
  | Some fn_name -> (
      match Maps.find st.registry fn_name with
      | Some fn -> fn raw
      | None -> error st ~line "unknown map function %S for ${%s}" fn_name var)

let apply_named_map st ~line fn_name raw =
  match Maps.find st.registry fn_name with
  | Some fn -> fn raw
  | None -> error st ~line "unknown map function %S" fn_name

let subst st ~line segments =
  let buf = Buffer.create 64 in
  List.iter
    (function
      | Ast.Lit s -> Buffer.add_string buf s
      | Ast.Var v -> Buffer.add_string buf (resolve_mapped st ~line v)
      | Ast.Mapped (v, fn) ->
          (* Inline maps override any -map declaration in scope. *)
          Buffer.add_string buf (apply_named_map st ~line fn (resolve_raw st ~line v)))
    segments;
  Buffer.contents buf

let eval_operand st ~line = function
  | Ast.O_lit s -> s
  | Ast.O_var v -> resolve_raw st ~line v

let eval_cond st ~line = function
  | Ast.Nonempty v -> resolve_raw st ~line v <> ""
  | Ast.Eq (v, rhs) -> resolve_raw st ~line v = eval_operand st ~line rhs
  | Ast.Neq (v, rhs) -> resolve_raw st ~line v <> eval_operand st ~line rhs

let rec eval_items st items = List.iter (eval_item st) items

and eval_item st = function
  | Ast.Text { segments; newline; line } ->
      Buffer.add_string st.current (subst st ~line segments);
      if newline then Buffer.add_char st.current '\n'
  | Ast.Openfile { segments; line } ->
      let filename = subst st ~line segments in
      let buf =
        match List.assoc_opt filename st.files with
        | Some buf -> buf
        | None ->
            let buf = Buffer.create 1024 in
            st.files <- (filename, buf) :: st.files;
            buf
      in
      st.current <- buf
  | Ast.If { cond; then_; else_; line } ->
      if eval_cond st ~line cond then eval_items st then_ else eval_items st else_
  | Ast.Foreach { group; if_more; maps; body; line = _ } -> (
      match st.stack with
      | [] -> assert false
      | { node; _ } :: _ ->
          let children = Est.Node.group node group in
          let count = List.length children in
          List.iteri
            (fun idx child ->
              let bindings =
                [
                  ("ifMore",
                   if idx < count - 1 then Option.value ~default:"" if_more else "");
                  ("index", string_of_int idx);
                  ("count", string_of_int count);
                  ("isFirst", if idx = 0 then "true" else "");
                  ("isLast", if idx = count - 1 then "true" else "");
                ]
              in
              st.stack <- { node = child; bindings; maps } :: st.stack;
              Fun.protect
                ~finally:(fun () -> st.stack <- List.tl st.stack)
                (fun () -> eval_items st body))
            children)

let run ?(maps = Maps.empty) (tmpl : Ast.t) (root : Est.Node.t) : output =
  let stdout_buf = Buffer.create 1024 in
  let st =
    {
      template = tmpl.Ast.name;
      registry = maps;
      stack = [ { node = root; bindings = []; maps = [] } ];
      current = stdout_buf;
      stdout_buf;
      files = [];
    }
  in
  eval_items st tmpl.Ast.items;
  {
    files = List.rev_map (fun (name, buf) -> (name, Buffer.contents buf)) st.files;
    stdout = Buffer.contents st.stdout_buf;
  }

let render ?maps ~name src root = run ?maps (Parse.parse ~name src) root

let concat_output out =
  String.concat "" (out.stdout :: List.map snd out.files)
