(** Abstract syntax of the template language (the paper's Fig. 9 dialect).

    A template is line-oriented. Lines whose first non-blank character is
    ['@'] are directives; all other lines are text emitted with
    [${var}] substitutions. The dialect:

    {v
    @foreach <group> [-ifMore '<sep>'] [-map <var> <MapFn>]...
      <body>
    @end <group>

    @if <test>          @if ${x} == "lit" | @if ${x} != "lit" | @if ${x}
      <then>
    @else
      <else>
    @fi

    @openfile <name-with-substitutions>
    @# comment
    v}

    Escapes: a text line ending in [\ ] suppresses its newline (for
    joining); [$\{] emits a literal [${] (a plain [$] needs no escape, so
    tcl's [$var] syntax passes through); [@@] at the start of a directive
    position emits a literal [@] line.

    Extension beyond Fig. 9: [${var:Map::Fn}] applies a named map function
    inline, overriding any [-map] declaration for [var] in scope. This
    lets one property be rendered under two spellings in the same loop
    body (e.g. a return type as a C++ type and as an extract call). *)

type segment =
  | Lit of string
  | Var of string
  | Mapped of string * string  (** variable, map-function name *)

(** Right-hand side of a comparison: a literal or another variable. *)
type operand = O_lit of string | O_var of string

type cond =
  | Nonempty of string  (** [@if ${x}] — true when [x] is non-empty. *)
  | Eq of string * operand
  | Neq of string * operand

type item =
  | Text of { segments : segment list; newline : bool; line : int }
  | Foreach of {
      group : string;
      if_more : string option;
      maps : (string * string) list;  (** variable name → map-function name *)
      body : item list;
      line : int;
    }
  | If of { cond : cond; then_ : item list; else_ : item list; line : int }
  | Openfile of { segments : segment list; line : int }

type t = { name : string; items : item list }
