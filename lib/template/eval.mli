(** Template evaluator: runs a compiled template over an EST.

    This is the second of the paper's two code-generation steps. Together
    with {!Parse.parse} it also provides the merged single-step generation
    that Section 4.1 describes as planned future work — see {!render}.

    {2 Evaluation semantics}

    - [${v}] resolves [v] against the current frame stack, innermost
      first: loop bindings ([ifMore], [index], [count], [isFirst],
      [isLast]) take precedence over the current node's properties. The
      resolved value is passed through the innermost [-map v Fn]
      declaration in scope, if any.
    - [@foreach g] iterates over group [g] of the {e current} node only
      (no outward search), pushing each child as a new frame. An absent
      group iterates zero times.
    - [@if] conditions compare {e unmapped} values: they test EST state,
      while substitutions produce target-language spellings.
    - [@openfile] redirects subsequent output to the named file buffer;
      reopening a name appends. Output produced before any [@openfile]
      is collected separately (see {!output}). *)

exception Eval_error of { template : string; line : int; message : string }

type output = {
  files : (string * string) list;  (** \@openfile targets, in order opened. *)
  stdout : string;  (** Output produced outside any \@openfile. *)
}

val run : ?maps:Maps.t -> Ast.t -> Est.Node.t -> output
(** Evaluate a compiled template against an EST root (or any subtree).
    @raise Eval_error on unresolved variables or unknown map functions. *)

val render : ?maps:Maps.t -> name:string -> string -> Est.Node.t -> output
(** One-step convenience: [parse] then [run].
    @raise Parse.Template_error / Eval_error accordingly. *)

val concat_output : output -> string
(** All output concatenated: [stdout] followed by each file's content in
    order — convenient for golden tests. *)
