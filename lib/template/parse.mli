(** Parser for the template language: text → {!Ast.t}.

    Parsing a template corresponds to the first of the paper's two
    code-generation steps (Section 4.1): it "need only be performed once
    for a particular code-generation template" — the resulting {!Ast.t} is
    the compiled form that {!Eval.run} executes repeatedly. *)

exception Template_error of { name : string; line : int; message : string }

val parse : name:string -> string -> Ast.t
(** [parse ~name src] compiles template source text. [name] is used in
    error messages.
    @raise Template_error on malformed directives or unbalanced blocks. *)

val parse_file : string -> Ast.t
(** Read and compile a template file.
    @raise Template_error on malformed input.
    @raise Sys_error if the file cannot be read. *)
