(** Registry of named map functions.

    A map function converts an EST property value into a spelling suitable
    for the generated code — [CPP::MapClassName] turns [Heidi::A] into
    [HdA] in the paper's Fig. 9. Map functions are declared next to a
    mapping (see the [Mappings] library) and referenced by name from
    [-map] options in templates.

    Property encodings ({!Est.Ctype}, {!Est.Value}) are self-contained, so
    a map function is simply [string -> string]. *)

type fn = string -> string

type t
(** A registry of named map functions. *)

val create : unit -> t
val register : t -> string -> fn -> unit
(** Replaces any previous binding of the same name. *)

val find : t -> string -> fn option
val names : t -> string list
(** Registered names, sorted. *)

val of_list : (string * fn) list -> t
val union : t -> t -> t
(** [union a b] — bindings of [b] shadow those of [a]. *)

val empty : t
(** A shared empty registry (do not register into it). *)
