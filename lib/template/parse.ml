exception Template_error of { name : string; line : int; message : string }

let () =
  Printexc.register_printer (function
    | Template_error { name; line; message } ->
        Some (Printf.sprintf "%s:%d: template error: %s" name line message)
    | _ -> None)

let error ~name ~line fmt =
  Printf.ksprintf (fun message -> raise (Template_error { name; line; message })) fmt

(* ---------------- segment scanning (${var} substitution) ------------- *)

let scan_segments ~name ~line s : Ast.segment list =
  let len = String.length s in
  let segs = ref [] in
  let lit = Buffer.create 32 in
  let flush_lit () =
    if Buffer.length lit > 0 then (
      segs := Ast.Lit (Buffer.contents lit) :: !segs;
      Buffer.clear lit)
  in
  let i = ref 0 in
  while !i < len do
    if !i + 2 < len && s.[!i] = '$' && s.[!i + 1] = '\\' && s.[!i + 2] = '{' then (
      (* Escaped literal "${" (written "$\{"); a plain "$" needs no escape. *)
      Buffer.add_string lit "${";
      i := !i + 3)
    else if !i + 1 < len && s.[!i] = '$' && s.[!i + 1] = '{' then (
      match String.index_from_opt s (!i + 2) '}' with
      | None -> error ~name ~line "unterminated ${...} substitution"
      | Some close ->
          flush_lit ();
          let var = String.sub s (!i + 2) (close - !i - 2) in
          if var = "" then error ~name ~line "empty ${} substitution";
          (* ${var:Map::Fn} applies a map function inline. The variable
             name never contains ':', so split at the first one. *)
          (match String.index_opt var ':' with
          | Some j when j > 0 && j < String.length var - 1 ->
              let v = String.sub var 0 j in
              let fn = String.sub var (j + 1) (String.length var - j - 1) in
              segs := Ast.Mapped (v, fn) :: !segs
          | Some _ -> error ~name ~line "malformed inline map in ${%s}" var
          | None -> segs := Ast.Var var :: !segs);
          i := close + 1)
    else (
      Buffer.add_char lit s.[!i];
      incr i)
  done;
  flush_lit ();
  List.rev !segs

(* ---------------- directive-line tokenizer ---------------- *)

(* Words separated by blanks; quoted strings may use single or double
   quotes (Fig. 9 writes -ifMore ','). *)
let tokenize_directive ~name ~line s =
  let len = String.length s in
  let toks = ref [] in
  let i = ref 0 in
  while !i < len do
    match s.[!i] with
    | ' ' | '\t' -> incr i
    | ('\'' | '"') as q ->
        let buf = Buffer.create 8 in
        incr i;
        while !i < len && s.[!i] <> q do
          Buffer.add_char buf s.[!i];
          incr i
        done;
        if !i >= len then error ~name ~line "unterminated quoted string in directive";
        incr i;
        toks := Buffer.contents buf :: !toks
    | _ ->
        let start = !i in
        while !i < len && s.[!i] <> ' ' && s.[!i] <> '\t' do
          incr i
        done;
        toks := String.sub s start (!i - start) :: !toks
  done;
  List.rev !toks

(* ---------------- condition parsing ---------------- *)

let parse_operand tok : Ast.operand =
  if String.length tok > 3 && String.sub tok 0 2 = "${" && tok.[String.length tok - 1] = '}'
  then Ast.O_var (String.sub tok 2 (String.length tok - 3))
  else Ast.O_lit tok

let parse_var ~name ~line tok =
  if
    String.length tok > 3
    && String.sub tok 0 2 = "${"
    && tok.[String.length tok - 1] = '}'
  then String.sub tok 2 (String.length tok - 3)
  else error ~name ~line "expected a ${variable}, found %S" tok

let parse_cond ~name ~line toks : Ast.cond =
  match toks with
  | [ v ] -> Ast.Nonempty (parse_var ~name ~line v)
  | [ v; "=="; rhs ] -> Ast.Eq (parse_var ~name ~line v, parse_operand rhs)
  | [ v; "!="; rhs ] -> Ast.Neq (parse_var ~name ~line v, parse_operand rhs)
  (* The paper's Fig. 9 also writes the mathematical ≠; accept it. *)
  | [ v; "\xe2\x89\xa0"; rhs ] -> Ast.Neq (parse_var ~name ~line v, parse_operand rhs)
  | _ -> error ~name ~line "malformed @if condition"

(* ---------------- foreach option parsing ---------------- *)

let parse_foreach_opts ~name ~line toks =
  let rec go if_more maps = function
    | [] -> (if_more, List.rev maps)
    | "-ifMore" :: sep :: rest -> go (Some sep) maps rest
    | "-map" :: var :: fn :: rest -> go if_more ((var, fn) :: maps) rest
    | tok :: _ -> error ~name ~line "unknown @foreach option %S" tok
  in
  go None [] toks

(* ---------------- line classification ---------------- *)

type line =
  | L_text of string
  | L_foreach of string * string option * (string * string) list
  | L_end of string
  | L_if of Ast.cond
  | L_else
  | L_fi
  | L_openfile of string
  | L_comment

let classify ~name ~line raw =
  let stripped = String.trim raw in
  let is_directive =
    String.length stripped > 1
    && stripped.[0] = '@'
    && stripped.[1] <> '@' (* @@ escapes a literal @ *)
  in
  if not is_directive then
    if String.length stripped > 1 && stripped.[0] = '@' && stripped.[1] = '@' then
      (* Replace the leading @@ with @ in the raw line. *)
      let idx = String.index raw '@' in
      L_text (String.sub raw 0 idx ^ String.sub raw (idx + 1) (String.length raw - idx - 1))
    else L_text raw
  else
    let body = String.sub stripped 1 (String.length stripped - 1) in
    match String.index_opt body ' ' with
    | None -> (
        match body with
        | "else" -> L_else
        | "fi" -> L_fi
        | "end" -> L_end ""
        | "#" -> L_comment
        | d when String.length d > 0 && d.[0] = '#' -> L_comment
        | d -> error ~name ~line "unknown directive @%s" d)
    | Some sp -> (
        let keyword = String.sub body 0 sp in
        let rest = String.sub body (sp + 1) (String.length body - sp - 1) in
        match keyword with
        | "foreach" -> (
            match tokenize_directive ~name ~line rest with
            | group :: opts ->
                let if_more, maps = parse_foreach_opts ~name ~line opts in
                L_foreach (group, if_more, maps)
            | [] -> error ~name ~line "@foreach requires a group name")
        | "end" -> L_end (String.trim rest)
        | "if" -> L_if (parse_cond ~name ~line (tokenize_directive ~name ~line rest))
        | "openfile" -> L_openfile (String.trim rest)
        | "#" -> L_comment
        | d -> error ~name ~line "unknown directive @%s" d)

(* ---------------- block structure ---------------- *)

let parse ~name src : Ast.t =
  let raw_lines = String.split_on_char '\n' src in
  (* Drop a single trailing empty line produced by a final '\n'. *)
  let raw_lines =
    match List.rev raw_lines with "" :: rest -> List.rev rest | _ -> raw_lines
  in
  let lines =
    List.mapi (fun i raw -> (i + 1, classify ~name ~line:(i + 1) raw)) raw_lines
  in
  (* Recursive-descent over the classified lines. *)
  let rec items acc = function
    | [] -> (List.rev acc, [])
    | ((line, l) :: rest : (int * line) list) -> (
        match l with
        | L_comment -> items acc rest
        | L_text raw ->
            let newline = not (String.length raw > 0 && raw.[String.length raw - 1] = '\\') in
            let raw = if newline then raw else String.sub raw 0 (String.length raw - 1) in
            let segments = scan_segments ~name ~line raw in
            items (Ast.Text { segments; newline; line } :: acc) rest
        | L_openfile spec ->
            let segments = scan_segments ~name ~line spec in
            items (Ast.Openfile { segments; line } :: acc) rest
        | L_foreach (group, if_more, maps) -> (
            let body, rest' = items [] rest in
            match rest' with
            | (line2, L_end g) :: rest'' ->
                if g <> "" && g <> group then
                  error ~name ~line:line2 "@end %s does not match @foreach %s" g group;
                items (Ast.Foreach { group; if_more; maps; body; line } :: acc) rest''
            | _ -> error ~name ~line "@foreach %s is missing its @end" group)
        | L_if cond -> (
            let then_, rest' = items [] rest in
            match rest' with
            | (_, L_else) :: rest'' -> (
                let else_, rest''' = items [] rest'' in
                match rest''' with
                | (_, L_fi) :: rest'''' ->
                    items (Ast.If { cond; then_; else_; line } :: acc) rest''''
                | _ -> error ~name ~line "@if is missing its @fi")
            | (_, L_fi) :: rest'' ->
                items (Ast.If { cond; then_; else_ = []; line } :: acc) rest''
            | _ -> error ~name ~line "@if is missing its @fi")
        | L_end _ | L_else | L_fi -> (List.rev acc, (line, l) :: rest))
  in
  let parsed, leftover = items [] lines in
  (match leftover with
  | [] -> ()
  | (line, L_end g) :: _ -> error ~name ~line "@end %s without a matching @foreach" g
  | (line, L_else) :: _ -> error ~name ~line "@else without a matching @if"
  | (line, L_fi) :: _ -> error ~name ~line "@fi without a matching @if"
  | (line, _) :: _ -> error ~name ~line "unexpected input")
  ;
  { Ast.name; items = parsed }

let parse_file path =
  let ic = open_in_bin path in
  let content =
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  parse ~name:path content
