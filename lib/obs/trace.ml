(* Call tracing: one span per invocation side, correlated across address
   spaces by a trace context carried in the wire protocol's
   service-context slot (see Protocol.request.trace_ctx in the ORB). *)

type kind = Client | Server

type outcome =
  | Ok
  | User_exception of string
  | System_error of string
  | Failed of string

type span = {
  trace_id : string;
  span_id : string;
  parent_id : string option;
  kind : kind;
  operation : string;
  endpoint : string;
  started_at : float;
  mutable req_id : int;
  mutable finished_at : float;  (* nan until finished *)
  mutable marshal_s : float;  (* client phase timings; nan = not timed *)
  mutable send_s : float;
  mutable wait_s : float;
  mutable unmarshal_s : float;
  mutable retries : int;
  mutable breaker : string option;
  mutable outcome : outcome option;
  mutable notes : (string * string) list;
}

(* Monotonic-enough clock: the repo standardizes on gettimeofday for
   deadlines and bench loops, so spans use the same time base and their
   timestamps are directly comparable with channel deadlines. *)
let now () = Unix.gettimeofday ()

(* ---------------- id generation ---------------- *)

(* Ids must be unique across address spaces (a trace spans processes),
   so the generator is seeded from wall clock + pid, not deterministic.
   Random.State is not thread-safe; one global lock used to guard one
   global state, which worker domains would turn into a cross-domain
   serialization point on the traced-call hot path. So each domain gets
   its own state via DLS, with the domain id folded into the seed so
   sibling domains (which may initialize within the same microsecond)
   draw from distinct streams. The state still travels with a lock —
   per-domain, so never contended across domains — because systhreads
   of one domain share their domain's cell, and a thread switch at an
   allocation point mid-draw could otherwise hand two threads the same
   generator position (duplicate ids). *)
let id_state =
  Locked.new_domain_local (fun () ->
      ( Locked.create ~name:"trace.ids" ~rank:Locked.Rank.trace_ids,
        Random.State.make
          [|
            Unix.getpid ();
            int_of_float (Unix.gettimeofday () *. 1e6) land 0x3FFFFFFF;
            Locked.domain_id ();
          |] ))

(* One 64-bit draw yields 16 hex digits by nibble slicing — ids are on
   the traced-call hot path, so this beats drawing one random int per
   digit by an order of magnitude. *)
let hex_of_bits bits digits =
  let out = Bytes.create digits in
  let n = ref bits in
  for i = 0 to digits - 1 do
    Bytes.unsafe_set out i
      "0123456789abcdef".[Int64.to_int (Int64.logand !n 0xFL)];
    n := Int64.shift_right_logical !n 4
  done;
  Bytes.unsafe_to_string out

let hex_id digits =
  let id_lock, st = Locked.domain_local_get id_state in
  let bits =
    Locked.with_lock id_lock (fun () -> Random.State.int64 st Int64.max_int)
  in
  hex_of_bits bits digits

let new_trace_id () = hex_id 16
let new_span_id () = hex_id 8

(* Client spans need both ids; fuse the draws under one acquisition. *)
let new_trace_and_span_ids () =
  let id_lock, st = Locked.domain_local_get id_state in
  let b1, b2 =
    Locked.with_lock id_lock (fun () ->
        let b1 = Random.State.int64 st Int64.max_int in
        let b2 = Random.State.int64 st Int64.max_int in
        (b1, b2))
  in
  (hex_of_bits b1 16, hex_of_bits b2 8)

(* ---------------- wire context ---------------- *)

let encode_context span = span.trace_id ^ "-" ^ span.span_id

(* Lowercase only: it is what {!hex_id} emits, and rejecting anything
   else keeps junk that merely resembles a context out. *)
let is_hex s =
  s <> ""
  && String.for_all (function '0' .. '9' | 'a' .. 'f' -> true | _ -> false) s

(* Tolerant by design: a malformed context from a peer must never fail
   the call — the server just starts a fresh root span. *)
let decode_context s =
  match String.index_opt s '-' with
  | None -> None
  | Some i ->
      let trace_id = String.sub s 0 i in
      let span_id = String.sub s (i + 1) (String.length s - i - 1) in
      if is_hex trace_id && is_hex span_id then Some (trace_id, span_id)
      else None

(* ---------------- span lifecycle ---------------- *)

let make ~kind ~trace_id ?span_id ~parent_id ~operation ~endpoint () =
  {
    trace_id;
    span_id = (match span_id with Some id -> id | None -> new_span_id ());
    parent_id;
    kind;
    operation;
    endpoint;
    started_at = now ();
    req_id = 0;
    finished_at = nan;
    marshal_s = nan;
    send_s = nan;
    wait_s = nan;
    unmarshal_s = nan;
    retries = 0;
    breaker = None;
    outcome = None;
    notes = [];
  }

let start_client ~operation ~endpoint () =
  let trace_id, span_id = new_trace_and_span_ids () in
  make ~kind:Client ~trace_id ~span_id ~parent_id:None ~operation ~endpoint ()

let start_server ?context ~operation ~endpoint () =
  match context with
  | Some (trace_id, parent_span) ->
      make ~kind:Server ~trace_id ~parent_id:(Some parent_span) ~operation
        ~endpoint ()
  | None ->
      make ~kind:Server ~trace_id:(new_trace_id ()) ~parent_id:None ~operation
        ~endpoint ()

let finish span outcome =
  span.outcome <- Some outcome;
  span.finished_at <- now ()

let finished span = not (Float.is_nan span.finished_at)

let duration span =
  if finished span then span.finished_at -. span.started_at else nan

let note span key value = span.notes <- (key, value) :: span.notes

let kind_to_string = function Client -> "client" | Server -> "server"

let outcome_to_string = function
  | Ok -> "ok"
  | User_exception id -> "user_exception:" ^ id
  | System_error m -> "system_error:" ^ m
  | Failed m -> "failed:" ^ m

let to_json span =
  Jout.obj
    ([
       ("trace_id", Jout.str span.trace_id);
       ("span_id", Jout.str span.span_id);
       ( "parent_id",
         match span.parent_id with Some p -> Jout.str p | None -> Jout.null );
       ("kind", Jout.str (kind_to_string span.kind));
       ("operation", Jout.str span.operation);
       ("endpoint", Jout.str span.endpoint);
       ("req_id", Jout.int span.req_id);
       ("started_at", Jout.num span.started_at);
       ("duration_s", Jout.num (duration span));
       ("marshal_s", Jout.num span.marshal_s);
       ("send_s", Jout.num span.send_s);
       ("wait_s", Jout.num span.wait_s);
       ("unmarshal_s", Jout.num span.unmarshal_s);
       ("retries", Jout.int span.retries);
       ( "breaker",
         match span.breaker with Some b -> Jout.str b | None -> Jout.null );
       ( "outcome",
         match span.outcome with
         | Some o -> Jout.str (outcome_to_string o)
         | None -> Jout.null );
     ]
    @
    match span.notes with
    | [] -> []
    | notes ->
        [
          ( "notes",
            Jout.obj (List.rev_map (fun (k, v) -> (k, Jout.str v)) notes) );
        ])
