(** Call tracing: one {!span} per invocation side (client and server),
    correlated across address spaces by a trace context propagated in
    the wire protocol's service-context slot.

    The span model is deliberately small — TAO-style per-request
    instrumentation (see PAPERS.md) rather than a full OpenTelemetry:
    a span records who called what where, the four client-side phase
    timings (marshal / send / wait / unmarshal), the retry count and
    breaker state of the fault-tolerance layer, and an outcome. *)

type kind = Client | Server

type outcome =
  | Ok
  | User_exception of string  (** Declared IDL exception (repository id). *)
  | System_error of string  (** Peer-reported infrastructure failure. *)
  | Failed of string  (** Local failure: transport error, timeout, ... *)

type span = {
  trace_id : string;  (** Shared by every span of one logical call. *)
  span_id : string;
  parent_id : string option;  (** The client span's id, on server spans. *)
  kind : kind;
  operation : string;
  endpoint : string;
  started_at : float;
  mutable req_id : int;  (** 0 until the ORB assigns one. *)
  mutable finished_at : float;  (** NaN until {!finish}. *)
  mutable marshal_s : float;
      (** Client phase timings, seconds; NaN = this phase was not timed
          (e.g. payload-level [invoke_raw], or server spans). *)
  mutable send_s : float;
  mutable wait_s : float;
  mutable unmarshal_s : float;
  mutable retries : int;  (** Attempts beyond the first, this call. *)
  mutable breaker : string option;  (** Circuit state at call entry. *)
  mutable outcome : outcome option;
  mutable notes : (string * string) list;
}

val now : unit -> float
(** The spans' time base ([Unix.gettimeofday], matching the transport's
    deadline clock). *)

(** {2 Wire context}

    The context travels as one opaque string ["<trace-id>-<span-id>"] in
    the protocol's service-context slot. Decoding is tolerant: peers
    that predate the slot send nothing, and malformed contexts are
    treated as absent — propagation must never fail a call. *)

val encode_context : span -> string
val decode_context : string -> (string * string) option
(** [Some (trace_id, parent_span_id)] when well-formed. *)

val new_trace_id : unit -> string
val new_span_id : unit -> string

(** {2 Lifecycle} *)

val start_client : operation:string -> endpoint:string -> unit -> span
(** A fresh root span (new trace id). *)

val start_server :
  ?context:string * string -> operation:string -> endpoint:string -> unit -> span
(** A server span joined to [context] (from {!decode_context}) when
    present, else a fresh root. *)

val finish : span -> outcome -> unit
val finished : span -> bool
val duration : span -> float
(** Seconds from start to finish; NaN while unfinished. *)

val note : span -> string -> string -> unit
(** Attach a free-form key/value annotation. *)

val kind_to_string : kind -> string
val outcome_to_string : outcome -> string

val to_json : span -> string
(** One-line JSON object (the JSONL sink format). Untimed phases render
    as [null]. *)
