(* Wire-level and call-level metrics: fixed-bucket latency histograms,
   per-endpoint byte counters, and named event counters.

   Concurrency: the registry tables (name -> histogram/counter) sit
   behind a [Locked.t] at rank [metrics], but every *cell* is atomic —
   bucket counts, totals, byte counters and event counters are
   [Atomic.t], float accumulators use compare-and-set loops. The lock
   is only taken to find-or-create a cell, so the hot recording paths
   are lock-free after first touch — the first concrete step of the
   ROADMAP's domain-safe Obs (the remaining systhread assumption is
   the unlocked table probe in [find_or_create]). *)

(* Log-spaced 1-2-5 bucket upper bounds, in seconds: 1µs .. 5s, then an
   overflow bucket. Fixed buckets keep observation O(#buckets) with no
   allocation, and make snapshots directly comparable across runs. *)
let default_bounds =
  [|
    1e-6; 2e-6; 5e-6; 1e-5; 2e-5; 5e-5; 1e-4; 2e-4; 5e-4; 1e-3; 2e-3; 5e-3;
    1e-2; 2e-2; 5e-2; 0.1; 0.2; 0.5; 1.0; 2.0; 5.0;
  |]

type hist = {
  bounds : float array;
  counts : int Atomic.t array;  (* length bounds + 1; last = overflow *)
  total : int Atomic.t;
  sum_s : float Atomic.t;
  max_s : float Atomic.t;
}

type bytes_counter = {
  bytes_in : int Atomic.t;
  bytes_out : int Atomic.t;
  reads : int Atomic.t;
  writes : int Atomic.t;
}

type t = {
  lock : Locked.t;  (* guards table *structure* only, never cell values *)
  hists : (string, hist) Hashtbl.t;
  bytes : (string, bytes_counter) Hashtbl.t;
  counters : (string, int Atomic.t) Hashtbl.t;
  gauges : (string, float Atomic.t) Hashtbl.t;  (* last-written-wins *)
}

let create () =
  {
    lock = Locked.create ~name:"metrics" ~rank:Locked.Rank.metrics;
    hists = Hashtbl.create 16;
    bytes = Hashtbl.create 8;
    counters = Hashtbl.create 16;
    gauges = Hashtbl.create 8;
  }

(* Accumulate a float into an atomic cell. Retry on collision; the
   compare-and-set loop is the sanctioned read-modify-write shape
   (expressing this as Atomic.get + Atomic.set is a C405). *)
let rec atomic_add_float a x =
  let cur = Atomic.get a in
  if not (Atomic.compare_and_set a cur (cur +. x)) then atomic_add_float a x

let rec atomic_max_float a x =
  let cur = Atomic.get a in
  if x > cur && not (Atomic.compare_and_set a cur x) then atomic_max_float a x

(* Find-or-create goes through the lock; the returned cell is then
   updated atomically outside it, so two racing creators both end up
   incrementing the same surviving cell. *)
let find_or_create lock tbl key make =
  match Hashtbl.find_opt tbl key with
  | Some v -> v  (* benign unlocked probe: keys are never removed *)
  | None ->
      Locked.with_lock lock (fun () ->
          match Hashtbl.find_opt tbl key with
          | Some v -> v
          | None ->
              let v = make () in
              Hashtbl.replace tbl key v;
              v)

let new_hist () =
  {
    bounds = default_bounds;
    counts = Array.init (Array.length default_bounds + 1) (fun _ -> Atomic.make 0);
    total = Atomic.make 0;
    sum_s = Atomic.make 0.;
    max_s = Atomic.make 0.;
  }

let bucket_index bounds v =
  (* First bound >= v; linear scan — 22 comparisons max, cache-friendly. *)
  let n = Array.length bounds in
  let rec go i = if i >= n then n else if v <= bounds.(i) then i else go (i + 1) in
  go 0

let observe t ~name seconds =
  if not (Float.is_nan seconds) then begin
    let h = find_or_create t.lock t.hists name new_hist in
    Atomic.incr h.counts.(bucket_index h.bounds seconds);
    Atomic.incr h.total;
    atomic_add_float h.sum_s seconds;
    atomic_max_float h.max_s seconds
  end

let new_bytes () =
  {
    bytes_in = Atomic.make 0;
    bytes_out = Atomic.make 0;
    reads = Atomic.make 0;
    writes = Atomic.make 0;
  }

let add_bytes t ~endpoint ~dir n =
  let c = find_or_create t.lock t.bytes endpoint new_bytes in
  match dir with
  | `In ->
      ignore (Atomic.fetch_and_add c.bytes_in n);
      Atomic.incr c.reads
  | `Out ->
      ignore (Atomic.fetch_and_add c.bytes_out n);
      Atomic.incr c.writes

let incr t ~name =
  Atomic.incr (find_or_create t.lock t.counters name (fun () -> Atomic.make 0))

let set_gauge t ~name v =
  Atomic.set (find_or_create t.lock t.gauges name (fun () -> Atomic.make 0.)) v

(* ---------------- snapshots ---------------- *)

type hist_view = {
  name : string;
  total : int;
  sum_s : float;
  max_s : float;
  mean_s : float;
  buckets : (float * int) list;  (* (upper bound, count); last bound = inf *)
}

type bytes_view = {
  endpoint : string;
  bytes_in : int;
  bytes_out : int;
  reads : int;
  writes : int;
}

type snapshot = {
  latencies : hist_view list;
  endpoints : bytes_view list;
  counters : (string * int) list;
  gauges : (string * float) list;
}

let snapshot t =
  Locked.with_lock t.lock (fun () ->
      let latencies =
        Hashtbl.fold
          (fun name (h : hist) acc ->
            let total = Atomic.get h.total in
            let sum_s = Atomic.get h.sum_s in
            let buckets =
              List.init (Array.length h.counts) (fun i ->
                  ( (if i < Array.length h.bounds then h.bounds.(i) else infinity),
                    Atomic.get h.counts.(i) ))
            in
            {
              name;
              total;
              sum_s;
              max_s = Atomic.get h.max_s;
              mean_s = (if total = 0 then nan else sum_s /. float_of_int total);
              buckets;
            }
            :: acc)
          t.hists []
        |> List.sort (fun a b -> compare a.name b.name)
      in
      let endpoints =
        Hashtbl.fold
          (fun endpoint (c : bytes_counter) acc ->
            {
              endpoint;
              bytes_in = Atomic.get c.bytes_in;
              bytes_out = Atomic.get c.bytes_out;
              reads = Atomic.get c.reads;
              writes = Atomic.get c.writes;
            }
            :: acc)
          t.bytes []
        |> List.sort (fun a b -> compare a.endpoint b.endpoint)
      in
      let counters =
        Hashtbl.fold (fun k r acc -> (k, Atomic.get r) :: acc) t.counters []
        |> List.sort compare
      in
      let gauges =
        Hashtbl.fold (fun k v acc -> (k, Atomic.get v) :: acc) t.gauges []
        |> List.sort compare
      in
      { latencies; endpoints; counters; gauges })

let hist_view_to_json (h : hist_view) =
  Jout.obj
    [
      ("name", Jout.str h.name);
      ("total", Jout.int h.total);
      ("sum_s", Jout.num h.sum_s);
      ("max_s", Jout.num h.max_s);
      ("mean_s", Jout.num h.mean_s);
      ( "buckets",
        Jout.arr
          (List.filter_map
             (fun (le, count) ->
               if count = 0 then None
               else
                 Some
                   (Jout.obj
                      [
                        ( "le_s",
                          if le = infinity then Jout.str "inf" else Jout.num le );
                        ("count", Jout.int count);
                      ]))
             h.buckets) );
    ]

let bytes_view_to_json (b : bytes_view) =
  Jout.obj
    [
      ("endpoint", Jout.str b.endpoint);
      ("bytes_in", Jout.int b.bytes_in);
      ("bytes_out", Jout.int b.bytes_out);
      ("reads", Jout.int b.reads);
      ("writes", Jout.int b.writes);
    ]

let snapshot_to_json (s : snapshot) =
  Jout.obj
    [
      ("latencies", Jout.arr (List.map hist_view_to_json s.latencies));
      ("endpoints", Jout.arr (List.map bytes_view_to_json s.endpoints));
      ( "counters",
        Jout.obj (List.map (fun (k, v) -> (k, Jout.int v)) s.counters) );
      ("gauges", Jout.obj (List.map (fun (k, v) -> (k, Jout.num v)) s.gauges));
    ]
