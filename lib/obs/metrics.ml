(* Wire-level and call-level metrics: fixed-bucket latency histograms,
   per-endpoint byte counters, and named event counters.

   Concurrency: fully lock-free and domain-safe. Every *cell* is
   atomic — bucket counts, totals, byte counters and event counters
   are [Atomic.t], float accumulators use compare-and-set loops — and
   the registries (name -> cell) are immutable maps behind an
   [Atomic.t], updated by a compare-and-set loop on insert. A probe is
   one atomic load plus a map lookup, valid from any domain.

   This replaced the PR-7 shape (Hashtbl + lock, with an *unlocked*
   fast-path probe). That probe was benign under systhreads — the
   runtime lock made [Hashtbl.find_opt] observe the table either
   before or after a resize — but once observers run on worker
   domains, a concurrent [Hashtbl.replace]-triggered resize during the
   probe is a real data race (torn bucket array reads). An immutable
   snapshot can never be observed mid-resize, which is the whole
   point of the structure. *)

module Smap = Map.Make (String)

(* A grow-only, domain-safe registry. [find_or_create] publishes a new
   cell with compare-and-set and re-probes on collision, so two racing
   creators both end up updating the single surviving cell. *)
type 'a registry = 'a Smap.t Atomic.t

let registry () : 'a registry = Atomic.make Smap.empty

let rec find_or_create (reg : 'a registry) key make =
  let cur = Atomic.get reg in
  match Smap.find_opt key cur with
  | Some v -> v
  | None ->
      let v = make () in
      if Atomic.compare_and_set reg cur (Smap.add key v cur) then v
      else find_or_create reg key make  (* lost the race: take the winner's *)

(* Log-spaced 1-2-5 bucket upper bounds, in seconds: 1µs .. 5s, then an
   overflow bucket. Fixed buckets keep observation O(#buckets) with no
   allocation, and make snapshots directly comparable across runs. *)
let default_bounds =
  [|
    1e-6; 2e-6; 5e-6; 1e-5; 2e-5; 5e-5; 1e-4; 2e-4; 5e-4; 1e-3; 2e-3; 5e-3;
    1e-2; 2e-2; 5e-2; 0.1; 0.2; 0.5; 1.0; 2.0; 5.0;
  |]

type hist = {
  bounds : float array;
  counts : int Atomic.t array;  (* length bounds + 1; last = overflow *)
  total : int Atomic.t;
  sum_s : float Atomic.t;
  max_s : float Atomic.t;
}

type bytes_counter = {
  bytes_in : int Atomic.t;
  bytes_out : int Atomic.t;
  reads : int Atomic.t;
  writes : int Atomic.t;
}

type t = {
  hists : hist registry;
  bytes : bytes_counter registry;
  counters : int Atomic.t registry;
  gauges : float Atomic.t registry;  (* last-written-wins *)
}

let create () =
  {
    hists = registry ();
    bytes = registry ();
    counters = registry ();
    gauges = registry ();
  }

(* Accumulate a float into an atomic cell. Retry on collision; the
   compare-and-set loop is the sanctioned read-modify-write shape
   (expressing this as Atomic.get + Atomic.set is a C405). *)
let rec atomic_add_float a x =
  let cur = Atomic.get a in
  if not (Atomic.compare_and_set a cur (cur +. x)) then atomic_add_float a x

let rec atomic_max_float a x =
  let cur = Atomic.get a in
  if x > cur && not (Atomic.compare_and_set a cur x) then atomic_max_float a x

let new_hist () =
  {
    bounds = default_bounds;
    counts = Array.init (Array.length default_bounds + 1) (fun _ -> Atomic.make 0);
    total = Atomic.make 0;
    sum_s = Atomic.make 0.;
    max_s = Atomic.make 0.;
  }

let bucket_index bounds v =
  (* First bound >= v; linear scan — 22 comparisons max, cache-friendly. *)
  let n = Array.length bounds in
  let rec go i = if i >= n then n else if v <= bounds.(i) then i else go (i + 1) in
  go 0

let observe t ~name seconds =
  if not (Float.is_nan seconds) then begin
    let h = find_or_create t.hists name new_hist in
    Atomic.incr h.counts.(bucket_index h.bounds seconds);
    Atomic.incr h.total;
    atomic_add_float h.sum_s seconds;
    atomic_max_float h.max_s seconds
  end

let new_bytes () =
  {
    bytes_in = Atomic.make 0;
    bytes_out = Atomic.make 0;
    reads = Atomic.make 0;
    writes = Atomic.make 0;
  }

let add_bytes t ~endpoint ~dir n =
  let c = find_or_create t.bytes endpoint new_bytes in
  match dir with
  | `In ->
      ignore (Atomic.fetch_and_add c.bytes_in n);
      Atomic.incr c.reads
  | `Out ->
      ignore (Atomic.fetch_and_add c.bytes_out n);
      Atomic.incr c.writes

let incr t ~name =
  Atomic.incr (find_or_create t.counters name (fun () -> Atomic.make 0))

let set_gauge t ~name v =
  Atomic.set (find_or_create t.gauges name (fun () -> Atomic.make 0.)) v

(* ---------------- snapshots ---------------- *)

type hist_view = {
  name : string;
  total : int;
  sum_s : float;
  max_s : float;
  mean_s : float;
  buckets : (float * int) list;  (* (upper bound, count); last bound = inf *)
}

type bytes_view = {
  endpoint : string;
  bytes_in : int;
  bytes_out : int;
  reads : int;
  writes : int;
}

type snapshot = {
  latencies : hist_view list;
  endpoints : bytes_view list;
  counters : (string * int) list;
  gauges : (string * float) list;
}

(* Lock-free: one [Atomic.get] per registry yields an immutable map
   that cannot change under the fold. Cell values read during the fold
   are each individually atomic; the snapshot is a consistent map of
   per-cell instants, which is all the Hashtbl+lock version gave —
   observers never took the lock for the cells themselves. Smap folds
   ascending by key, so the views come out already sorted. *)
let snapshot t =
  let latencies =
    Smap.fold
      (fun name (h : hist) acc ->
        let total = Atomic.get h.total in
        let sum_s = Atomic.get h.sum_s in
        let buckets =
          List.init (Array.length h.counts) (fun i ->
              ( (if i < Array.length h.bounds then h.bounds.(i) else infinity),
                Atomic.get h.counts.(i) ))
        in
        {
          name;
          total;
          sum_s;
          max_s = Atomic.get h.max_s;
          mean_s = (if total = 0 then nan else sum_s /. float_of_int total);
          buckets;
        }
        :: acc)
      (Atomic.get t.hists) []
    |> List.rev
  in
  let endpoints =
    Smap.fold
      (fun endpoint (c : bytes_counter) acc ->
        {
          endpoint;
          bytes_in = Atomic.get c.bytes_in;
          bytes_out = Atomic.get c.bytes_out;
          reads = Atomic.get c.reads;
          writes = Atomic.get c.writes;
        }
        :: acc)
      (Atomic.get t.bytes) []
    |> List.rev
  in
  let counters =
    Smap.fold (fun k r acc -> (k, Atomic.get r) :: acc) (Atomic.get t.counters) []
    |> List.rev
  in
  let gauges =
    Smap.fold (fun k v acc -> (k, Atomic.get v) :: acc) (Atomic.get t.gauges) []
    |> List.rev
  in
  { latencies; endpoints; counters; gauges }

let hist_view_to_json (h : hist_view) =
  Jout.obj
    [
      ("name", Jout.str h.name);
      ("total", Jout.int h.total);
      ("sum_s", Jout.num h.sum_s);
      ("max_s", Jout.num h.max_s);
      ("mean_s", Jout.num h.mean_s);
      ( "buckets",
        Jout.arr
          (List.filter_map
             (fun (le, count) ->
               if count = 0 then None
               else
                 Some
                   (Jout.obj
                      [
                        ( "le_s",
                          if le = infinity then Jout.str "inf" else Jout.num le );
                        ("count", Jout.int count);
                      ]))
             h.buckets) );
    ]

let bytes_view_to_json (b : bytes_view) =
  Jout.obj
    [
      ("endpoint", Jout.str b.endpoint);
      ("bytes_in", Jout.int b.bytes_in);
      ("bytes_out", Jout.int b.bytes_out);
      ("reads", Jout.int b.reads);
      ("writes", Jout.int b.writes);
    ]

let snapshot_to_json (s : snapshot) =
  Jout.obj
    [
      ("latencies", Jout.arr (List.map hist_view_to_json s.latencies));
      ("endpoints", Jout.arr (List.map bytes_view_to_json s.endpoints));
      ( "counters",
        Jout.obj (List.map (fun (k, v) -> (k, Jout.int v)) s.counters) );
      ("gauges", Jout.obj (List.map (fun (k, v) -> (k, Jout.num v)) s.gauges));
    ]
