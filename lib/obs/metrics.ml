(* Wire-level and call-level metrics: fixed-bucket latency histograms,
   per-endpoint byte counters, and named event counters. One mutex per
   registry — every operation is a few array/hashtable touches, so
   contention is not a concern at the call rates the mem/tcp transports
   reach. *)

(* Log-spaced 1-2-5 bucket upper bounds, in seconds: 1µs .. 5s, then an
   overflow bucket. Fixed buckets keep observation O(#buckets) with no
   allocation, and make snapshots directly comparable across runs. *)
let default_bounds =
  [|
    1e-6; 2e-6; 5e-6; 1e-5; 2e-5; 5e-5; 1e-4; 2e-4; 5e-4; 1e-3; 2e-3; 5e-3;
    1e-2; 2e-2; 5e-2; 0.1; 0.2; 0.5; 1.0; 2.0; 5.0;
  |]

type hist = {
  bounds : float array;
  counts : int array;  (* length bounds + 1; last = overflow *)
  mutable total : int;
  mutable sum_s : float;
  mutable max_s : float;
}

type bytes_counter = {
  mutable bytes_in : int;
  mutable bytes_out : int;
  mutable reads : int;
  mutable writes : int;
}

type t = {
  mutex : Mutex.t;
  hists : (string, hist) Hashtbl.t;
  bytes : (string, bytes_counter) Hashtbl.t;
  counters : (string, int ref) Hashtbl.t;
  gauges : (string, float) Hashtbl.t;  (* last-written-wins level values *)
}

let create () =
  {
    mutex = Mutex.create ();
    hists = Hashtbl.create 16;
    bytes = Hashtbl.create 8;
    counters = Hashtbl.create 16;
    gauges = Hashtbl.create 8;
  }

let with_lock t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

(* The recording paths below lock/unlock directly instead of going
   through {!with_lock}: they are on the traced-call hot path (several
   calls per invocation) and their bodies cannot raise, so the closure
   allocation and Fun.protect frame would be pure overhead. *)

let new_hist () =
  {
    bounds = default_bounds;
    counts = Array.make (Array.length default_bounds + 1) 0;
    total = 0;
    sum_s = 0.;
    max_s = 0.;
  }

let bucket_index bounds v =
  (* First bound >= v; linear scan — 22 comparisons max, cache-friendly. *)
  let n = Array.length bounds in
  let rec go i = if i >= n then n else if v <= bounds.(i) then i else go (i + 1) in
  go 0

let observe t ~name seconds =
  if not (Float.is_nan seconds) then begin
    Mutex.lock t.mutex;
    let h =
      match Hashtbl.find_opt t.hists name with
      | Some h -> h
      | None ->
          let h = new_hist () in
          Hashtbl.replace t.hists name h;
          h
    in
    let i = bucket_index h.bounds seconds in
    h.counts.(i) <- h.counts.(i) + 1;
    h.total <- h.total + 1;
    h.sum_s <- h.sum_s +. seconds;
    if seconds > h.max_s then h.max_s <- seconds;
    Mutex.unlock t.mutex
  end

let add_bytes t ~endpoint ~dir n =
  Mutex.lock t.mutex;
  let c =
    match Hashtbl.find_opt t.bytes endpoint with
    | Some c -> c
    | None ->
        let c = { bytes_in = 0; bytes_out = 0; reads = 0; writes = 0 } in
        Hashtbl.replace t.bytes endpoint c;
        c
  in
  (match dir with
  | `In ->
      c.bytes_in <- c.bytes_in + n;
      c.reads <- c.reads + 1
  | `Out ->
      c.bytes_out <- c.bytes_out + n;
      c.writes <- c.writes + 1);
  Mutex.unlock t.mutex

let incr t ~name =
  Mutex.lock t.mutex;
  (match Hashtbl.find_opt t.counters name with
  | Some r -> incr r
  | None -> Hashtbl.replace t.counters name (ref 1));
  Mutex.unlock t.mutex

let set_gauge t ~name v =
  Mutex.lock t.mutex;
  Hashtbl.replace t.gauges name v;
  Mutex.unlock t.mutex

(* ---------------- snapshots ---------------- *)

type hist_view = {
  name : string;
  total : int;
  sum_s : float;
  max_s : float;
  mean_s : float;
  buckets : (float * int) list;  (* (upper bound, count); last bound = inf *)
}

type bytes_view = {
  endpoint : string;
  bytes_in : int;
  bytes_out : int;
  reads : int;
  writes : int;
}

type snapshot = {
  latencies : hist_view list;
  endpoints : bytes_view list;
  counters : (string * int) list;
  gauges : (string * float) list;
}

let snapshot t =
  with_lock t (fun () ->
      let latencies =
        Hashtbl.fold
          (fun name h acc ->
            let buckets =
              List.init (Array.length h.counts) (fun i ->
                  ( (if i < Array.length h.bounds then h.bounds.(i) else infinity),
                    h.counts.(i) ))
            in
            {
              name;
              total = h.total;
              sum_s = h.sum_s;
              max_s = h.max_s;
              mean_s = (if h.total = 0 then nan else h.sum_s /. float_of_int h.total);
              buckets;
            }
            :: acc)
          t.hists []
        |> List.sort (fun a b -> compare a.name b.name)
      in
      let endpoints =
        Hashtbl.fold
          (fun endpoint (c : bytes_counter) acc ->
            {
              endpoint;
              bytes_in = c.bytes_in;
              bytes_out = c.bytes_out;
              reads = c.reads;
              writes = c.writes;
            }
            :: acc)
          t.bytes []
        |> List.sort (fun a b -> compare a.endpoint b.endpoint)
      in
      let counters =
        Hashtbl.fold (fun k r acc -> (k, !r) :: acc) t.counters []
        |> List.sort compare
      in
      let gauges =
        Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.gauges []
        |> List.sort compare
      in
      { latencies; endpoints; counters; gauges })

let hist_view_to_json (h : hist_view) =
  Jout.obj
    [
      ("name", Jout.str h.name);
      ("total", Jout.int h.total);
      ("sum_s", Jout.num h.sum_s);
      ("max_s", Jout.num h.max_s);
      ("mean_s", Jout.num h.mean_s);
      ( "buckets",
        Jout.arr
          (List.filter_map
             (fun (le, count) ->
               if count = 0 then None
               else
                 Some
                   (Jout.obj
                      [
                        ( "le_s",
                          if le = infinity then Jout.str "inf" else Jout.num le );
                        ("count", Jout.int count);
                      ]))
             h.buckets) );
    ]

let bytes_view_to_json (b : bytes_view) =
  Jout.obj
    [
      ("endpoint", Jout.str b.endpoint);
      ("bytes_in", Jout.int b.bytes_in);
      ("bytes_out", Jout.int b.bytes_out);
      ("reads", Jout.int b.reads);
      ("writes", Jout.int b.writes);
    ]

let snapshot_to_json (s : snapshot) =
  Jout.obj
    [
      ("latencies", Jout.arr (List.map hist_view_to_json s.latencies));
      ("endpoints", Jout.arr (List.map bytes_view_to_json s.endpoints));
      ( "counters",
        Jout.obj (List.map (fun (k, v) -> (k, Jout.int v)) s.counters) );
      ("gauges", Jout.obj (List.map (fun (k, v) -> (k, Jout.num v)) s.gauges));
    ]
