(** Wire-level and call-level metrics for one ORB: fixed-bucket latency
    histograms (log-spaced 1-2-5 bounds, 1µs–5s plus overflow),
    per-endpoint byte counters, and named event counters. All
    operations are thread-safe and allocation-free on the hot path. *)

type t

val create : unit -> t

val observe : t -> name:string -> float -> unit
(** Record a latency (seconds) into the named histogram, creating it on
    first use. NaN observations are dropped (an untimed phase). *)

val add_bytes : t -> endpoint:string -> dir:[ `In | `Out ] -> int -> unit
(** Account [n] wire bytes to the endpoint's counter, plus one
    read/write operation. *)

val incr : t -> name:string -> unit
(** Bump a named event counter. *)

val set_gauge : t -> name:string -> float -> unit
(** Set a named level gauge (last write wins) — e.g. the server worker
    pool's queue depth. *)

(** {2 Snapshots} *)

type hist_view = {
  name : string;
  total : int;
  sum_s : float;
  max_s : float;
  mean_s : float;  (** NaN when empty. *)
  buckets : (float * int) list;
      (** (upper bound in seconds, count); the final bound is
          [infinity] (overflow). *)
}

type bytes_view = {
  endpoint : string;
  bytes_in : int;
  bytes_out : int;
  reads : int;
  writes : int;
}

type snapshot = {
  latencies : hist_view list;  (** Sorted by name. *)
  endpoints : bytes_view list;  (** Sorted by endpoint. *)
  counters : (string * int) list;  (** Sorted by name. *)
  gauges : (string * float) list;  (** Sorted by name. *)
}

val snapshot : t -> snapshot
(** A consistent copy; the live registry keeps accumulating. *)

val snapshot_to_json : snapshot -> string
(** Render as a JSON object ([latencies] / [endpoints] / [counters]).
    Empty histogram buckets are omitted. *)
