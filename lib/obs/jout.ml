(* Minimal JSON output combinators: every value is already-rendered
   JSON text, so composition is plain string concatenation. Output only
   — the observability layer emits JSON (JSONL sinks, BENCH artifacts)
   but never parses it. *)

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let str s = "\"" ^ escape s ^ "\""
let int i = string_of_int i
let bool b = if b then "true" else "false"
let null = "null"

(* %.17g keeps doubles round-trippable; NaN and infinities have no JSON
   spelling, so they render as null (a phase that never ran). *)
let num f =
  if Float.is_nan f || Float.abs f = Float.infinity then null
  else if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%.17g" f

let obj fields =
  "{"
  ^ String.concat ", " (List.map (fun (k, v) -> str k ^ ": " ^ v) fields)
  ^ "}"

let arr items = "[" ^ String.concat ", " items ^ "]"
