(* Span sinks: where finished spans go. A sink is just a named callback
   so applications can plug exporters without the ORB knowing about
   them; the stock sinks cover the two common needs — a bounded
   in-memory buffer for tests/benches and JSONL on stderr for ad-hoc
   inspection of a live process. Sink locks sit at the bottom of the
   lock lattice (rank [sinks]): a sink may be invoked from any ORB
   context and must never need another lock. *)

type t = { name : string; emit : Trace.span -> unit }

let make ~name emit = { name; emit }

(* Bounded ring buffer, newest-wins: when full, the oldest span is
   dropped. [contents] returns spans oldest-first. *)
let ring ?(capacity = 1024) () =
  let capacity = max 1 capacity in
  let lock = Locked.create ~name:"sink.ring" ~rank:Locked.Rank.sinks in
  let buf = Array.make capacity None in
  let next = ref 0 in
  let count = ref 0 in
  let emit span =
    Locked.with_lock lock (fun () ->
        buf.(!next) <- Some span;
        next := (!next + 1) mod capacity;
        if !count < capacity then incr count)
  in
  let contents () =
    Locked.with_lock lock (fun () ->
        let n = !count in
        let start = (!next - n + capacity) mod capacity in
        List.init n (fun i ->
            match buf.((start + i) mod capacity) with
            | Some s -> s
            | None -> assert false (* slots below [count] are always filled *)))
  in
  ({ name = "ring"; emit }, contents)

let stderr_jsonl () =
  let lock = Locked.create ~name:"sink.stderr" ~rank:Locked.Rank.sinks in
  {
    name = "stderr-jsonl";
    emit =
      (fun span ->
        let line = Trace.to_json span ^ "\n" in
        (* One locked write per span keeps lines intact across threads. *)
        Locked.with_lock lock (fun () ->
            output_string stderr line;
            flush stderr));
  }
