(** Observability for the ORB runtime: call tracing ({!Trace}),
    wire-level metrics ({!Metrics}) and pluggable span export
    ({!Sink}), bundled behind one per-ORB switchable instance.

    The ORB consults {!enabled} at every probe point, so a disabled
    instance costs one boolean load per call — bench E9 measures the
    enabled ("trace-on") overhead against that baseline. *)

module Jout = Jout
module Trace = Trace
module Metrics = Metrics
module Sink = Sink

type t

val create : ?enabled:bool -> unit -> t
(** A fresh instance; [enabled] defaults to [true]. (The ORB creates a
    disabled one when none is supplied, so observability is strictly
    opt-in per address space.) *)

val enabled : t -> bool
val set_enabled : t -> bool -> unit
(** Flip tracing at runtime; connections already open pick the change
    up on their next read/write. *)

val metrics : t -> Metrics.t

val add_sink : t -> Sink.t -> unit
val sink_names : t -> string list

val emit : t -> Trace.span -> unit
(** Deliver a finished span to every sink, registration order. No-op
    when disabled; sink exceptions are swallowed (losing a span beats
    failing a call). *)

val observe : t -> name:string -> float -> unit
(** {!Metrics.observe}, gated on {!enabled}. *)

val add_bytes : t -> endpoint:string -> dir:[ `In | `Out ] -> int -> unit
(** {!Metrics.add_bytes}, gated on {!enabled}. *)

val incr : t -> name:string -> unit
(** {!Metrics.incr}, gated on {!enabled}. *)

val set_gauge : t -> name:string -> float -> unit
(** {!Metrics.set_gauge}, gated on {!enabled}. *)

(** {2 Snapshot} *)

type snapshot = { spans_emitted : int; metrics : Metrics.snapshot }

val snapshot : t -> snapshot
val snapshot_to_json : snapshot -> string
