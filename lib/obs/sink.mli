(** Span sinks: pluggable consumers of finished spans. The ORB emits
    every finished span to all registered sinks; a sink must be fast
    and must not raise (exceptions are swallowed by the emitter). *)

type t = {
  name : string;
  emit : Trace.span -> unit;  (** Called once per finished span. *)
}

val make : name:string -> (Trace.span -> unit) -> t

val ring : ?capacity:int -> unit -> t * (unit -> Trace.span list)
(** A bounded in-memory ring buffer (default 1024 spans; oldest are
    dropped when full) plus its reader, oldest-first. The stock sink
    for tests and benches. *)

val stderr_jsonl : unit -> t
(** One JSON line per span on stderr ({!Trace.to_json}), atomically per
    line across threads. *)
