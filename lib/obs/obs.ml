(* The observability facade: one [Obs.t] per ORB bundles an on/off
   switch, a metrics registry and the registered span sinks. The ORB's
   invocation and dispatch paths consult [enabled] before doing any
   tracing work, so a disabled instance costs one boolean load per
   probe point (the "trace-off" side of bench E9). *)

module Jout = Jout
module Trace = Trace
module Metrics = Metrics
module Sink = Sink

type t = {
  on : bool Atomic.t;  (* read from every domain; a plain mutable bool
                          would be an unsynchronized cross-domain read *)
  lock : Locked.t;  (* guards [sinks]; rank [obs] *)
  mutable sinks : Sink.t list;  (* registration order; emit iterates as-is *)
  spans_emitted : int Atomic.t;
  metrics : Metrics.t;
}

let create ?(enabled = true) () =
  {
    on = Atomic.make enabled;
    lock = Locked.create ~name:"obs" ~rank:Locked.Rank.obs;
    sinks = [];
    spans_emitted = Atomic.make 0;
    metrics = Metrics.create ();
  }

let enabled t = Atomic.get t.on
let set_enabled t on = Atomic.set t.on on
let metrics t = t.metrics

let add_sink t sink =
  Locked.with_lock t.lock (fun () ->
      (* Append: registration is rare, emit is per-span — keeping the
         list in registration order saves a List.rev on every emit. *)
      t.sinks <- t.sinks @ [ sink ])

let sink_names t =
  Locked.with_lock t.lock (fun () ->
      List.map (fun (s : Sink.t) -> s.Sink.name) t.sinks)

let emit t span =
  if Atomic.get t.on then begin
    let sinks = Locked.with_lock t.lock (fun () -> t.sinks) in
    Atomic.incr t.spans_emitted;
    (* Sinks run outside the lock (a slow sink must not serialize the
       ORB) and never propagate: losing a span beats failing a call. *)
    List.iter (fun (s : Sink.t) -> try s.Sink.emit span with _ -> ()) sinks
  end

let observe t ~name seconds =
  if Atomic.get t.on then Metrics.observe t.metrics ~name seconds

let add_bytes t ~endpoint ~dir n =
  if Atomic.get t.on then Metrics.add_bytes t.metrics ~endpoint ~dir n

let incr t ~name = if Atomic.get t.on then Metrics.incr t.metrics ~name

let set_gauge t ~name v =
  if Atomic.get t.on then Metrics.set_gauge t.metrics ~name v

(* ---------------- snapshots ---------------- *)

type snapshot = { spans_emitted : int; metrics : Metrics.snapshot }

let snapshot (t : t) =
  {
    spans_emitted = Atomic.get t.spans_emitted;
    metrics = Metrics.snapshot t.metrics;
  }

let snapshot_to_json s =
  Jout.obj
    [
      ("spans_emitted", Jout.int s.spans_emitted);
      ("metrics", Metrics.snapshot_to_json s.metrics);
    ]
