(** Minimal JSON output combinators. Every function returns rendered
    JSON text; nest by concatenating through {!obj} and {!arr}. The
    observability layer only ever {e writes} JSON (JSONL span sinks,
    [BENCH_obs.json]); parsing lives with the consumers. *)

val escape : string -> string
(** JSON string-body escaping (no surrounding quotes). *)

val str : string -> string
val int : int -> string
val bool : bool -> string
val null : string

val num : float -> string
(** Doubles via [%.17g]; NaN/infinities render as [null] — the encoding
    of "this phase was never timed". *)

val obj : (string * string) list -> string
(** [obj fields] where each value is already-rendered JSON. *)

val arr : string list -> string
