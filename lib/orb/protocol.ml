type framing =
  | Line
  | Length_prefixed of { header : string }
  | Varint_prefixed of { magic : char }

type request = {
  req_id : int;
  target : Objref.t;
  operation : string;
  oneway : bool;
  payload : string;
  trace_ctx : string;  (* service context; "" = absent *)
  budget_us : int option;  (* remaining deadline budget, microseconds *)
  nego_offer : string;  (* codec-negotiation offer; "" = absent *)
}

type reply_status =
  | Status_ok
  | Status_user_exception of string
  | Status_system_error of string

type reply = {
  rep_id : int;
  status : reply_status;
  payload : string;
  nego_answer : string;  (* codec-negotiation answer; "" = absent *)
}

type message =
  | Request of request
  | Reply of reply
  | Locate_request of { req_id : int; target : Objref.t }
  | Locate_reply of { rep_id : int; found : bool; forward : Objref.t option }
  | Locate_forward of { rep_id : int; target : Objref.t }

type t = {
  name : string;
  version : int;
  codec : Wire.Codec.t;
  framing : framing;
  encode_message : message -> string;
  decode_message : string -> message;
  decode_limited : Wire.Codec.limits -> string -> message;
}

exception Protocol_error of string

let () =
  Printexc.register_printer (function
    | Protocol_error m -> Some (Printf.sprintf "Orb.Protocol_error: %s" m)
    | _ -> None)

let tag_request = 0
let tag_reply = 1
let tag_locate_request = 2
let tag_locate_reply = 3
let tag_locate_forward = 4

let status_to_int = function
  | Status_ok -> 0
  | Status_user_exception _ -> 1
  | Status_system_error _ -> 2

let status_to_string = function
  | Status_ok -> "ok"
  | Status_user_exception id -> "exception " ^ id
  | Status_system_error m -> "error " ^ m

(* Negotiation slots are untrusted wire data with a tiny grammar
   (comma-separated [name/version] tokens): bound and charset-check them
   at decode so a hostile slot fails as a recoverable protocol error
   before any token is interpreted. *)
let validate_nego_slot what s =
  let ok_char c =
    (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9')
    || c = '/' || c = ',' || c = '.' || c = '-' || c = '_'
  in
  if String.length s > 256 then
    raise
      (Protocol_error
         (Printf.sprintf "%s slot of %d bytes exceeds the 256-byte bound" what
            (String.length s)));
  String.iter
    (fun c ->
      if not (ok_char c) then
        raise
          (Protocol_error
             (Printf.sprintf "%s slot contains invalid byte 0x%02x" what
                (Char.code c))))
    s;
  s

let generic ~name ?(version = 1) ~framing (codec : Wire.Codec.t) : t =
  let encode_message msg =
    let e = codec.Wire.Codec.encoder () in
    (match msg with
    | Request r ->
        e.put_octet tag_request;
        e.put_ulong r.req_id;
        e.put_bool r.oneway;
        e.put_string (Objref.to_string r.target);
        e.put_string r.operation;
        e.put_string r.payload;
        (* Two trailing slots, appended AFTER the payload so pre-slot
           peers — which stop decoding at the payload — skip them as
           trailing bytes: the service context (the trace context), then
           the deadline budget (remaining call budget in microseconds,
           as a decimal string; relative, so no clock sync is assumed).
           Each is omitted when absent, which keeps no-context/no-budget
           messages byte-identical to the pre-slot encoding in every
           codec. Because the slots are positional, a present budget
           forces the context slot to be written even when empty — a
           budget-only message is still readable by context-era peers,
           which decode the empty context and skip the budget.

           Slot 3 is the codec-negotiation offer. A present offer forces
           both earlier slots; an absent budget is then encoded as the
           empty string, which negotiation-era decoders read as
           "no budget". Budget-era peers reject an empty budget slot as
           malformed — recoverably, without dispatching — and the
           client's negotiation layer treats exactly that error reply as
           "peer pre-dates negotiation" and re-sends without the offer
           (see DESIGN.md, "Wire protocols"). *)
        (match (r.budget_us, r.nego_offer) with
        | None, "" -> if r.trace_ctx <> "" then e.put_string r.trace_ctx
        | Some b, "" ->
            e.put_string r.trace_ctx;
            e.put_string (string_of_int (max 0 b))
        | b, offer ->
            e.put_string r.trace_ctx;
            e.put_string
              (match b with Some x -> string_of_int (max 0 x) | None -> "");
            e.put_string offer)
    | Reply r ->
        e.put_octet tag_reply;
        e.put_ulong r.rep_id;
        e.put_octet (status_to_int r.status);
        e.put_string
          (match r.status with
          | Status_ok -> ""
          | Status_user_exception repo_id -> repo_id
          | Status_system_error message -> message);
        e.put_string r.payload;
        (* Trailing codec-negotiation answer slot, same interop contract
           as the request's trailing slots: omitted when absent (the
           encoding stays byte-identical to the pre-negotiation one),
           skipped as trailing bytes by peers that predate it — though
           in practice only clients that offered ever receive one. *)
        if r.nego_answer <> "" then e.put_string r.nego_answer
    | Locate_request { req_id; target } ->
        e.put_octet tag_locate_request;
        e.put_ulong req_id;
        e.put_string (Objref.to_string target)
    | Locate_reply { rep_id; found; forward } -> (
        e.put_octet tag_locate_reply;
        e.put_ulong rep_id;
        e.put_bool found;
        (* The forward slot (a GIOP OBJECT_FORWARD-style redirect) is
           appended AFTER the historical fields and omitted when absent,
           exactly like the request's service-context slot: a no-forward
           locate reply stays byte-identical to the pre-slot encoding,
           and pre-slot peers skip a present slot as trailing bytes. *)
        match forward with
        | None -> ()
        | Some target -> e.put_string (Objref.to_string target))
    | Locate_forward { rep_id; target } ->
        e.put_octet tag_locate_forward;
        e.put_ulong rep_id;
        e.put_string (Objref.to_string target));
    e.finish ()
  in
  let decode_limited limits bytes =
    let d =
      try codec.Wire.Codec.decoder_limited limits bytes
      with Wire.Codec.Type_error m -> raise (Protocol_error m)
    in
    try
      let tag = d.get_octet () in
      if tag = tag_request then (
        let req_id = d.get_ulong () in
        let oneway = d.get_bool () in
        let target_s = d.get_string () in
        let operation = d.get_string () in
        let payload = d.get_string () in
        (* Old peers never send the service-context slot; its absence is
           the empty context. A second trailing string, when present, is
           the deadline-budget slot — untrusted wire data, validated
           here so a hostile slot (negative, overflowing, non-numeric)
           fails as a recoverable protocol error, never an unchecked
           exception deeper in the server. *)
        let trace_ctx = if d.at_end () then "" else d.get_string () in
        let budget_us =
          if d.at_end () then None
          else
            let s = d.get_string () in
            (* An empty budget slot means "no budget": it is written only
               when a later slot (the negotiation offer) forces this
               position. Anything else non-numeric or negative stays a
               recoverable decode error. *)
            if s = "" then None
            else
              match int_of_string_opt s with
              | Some b when b >= 0 -> Some b
              | Some _ | None ->
                  raise
                    (Protocol_error
                       (Printf.sprintf "malformed deadline slot %S" s))
        in
        let nego_offer =
          if d.at_end () then ""
          else validate_nego_slot "negotiation offer" (d.get_string ())
        in
        let target =
          match Objref.of_string_opt target_s with
          | Some r -> r
          | None ->
              raise (Protocol_error (Printf.sprintf "malformed target reference %S" target_s))
        in
        Request
          { req_id; target; operation; oneway; payload; trace_ctx; budget_us;
            nego_offer })
      else if tag = tag_reply then (
        let rep_id = d.get_ulong () in
        let status_code = d.get_octet () in
        let detail = d.get_string () in
        let payload = d.get_string () in
        let status =
          match status_code with
          | 0 -> Status_ok
          | 1 -> Status_user_exception detail
          | 2 -> Status_system_error detail
          | n -> raise (Protocol_error (Printf.sprintf "unknown reply status %d" n))
        in
        let nego_answer =
          if d.at_end () then ""
          else validate_nego_slot "negotiation answer" (d.get_string ())
        in
        Reply { rep_id; status; payload; nego_answer })
      else if tag = tag_locate_request then (
        let req_id = d.get_ulong () in
        let target_s = d.get_string () in
        match Objref.of_string_opt target_s with
        | Some target -> Locate_request { req_id; target }
        | None ->
            raise
              (Protocol_error
                 (Printf.sprintf "malformed locate target %S" target_s)))
      else if tag = tag_locate_reply then (
        (* Decode strictly in wire order (record-field evaluation order
           is unspecified in OCaml). *)
        let rep_id = d.get_ulong () in
        let found = d.get_bool () in
        (* Old peers never send the forward slot; its absence decodes as
           no-forward. *)
        let forward =
          if d.at_end () then None
          else
            let s = d.get_string () in
            match Objref.of_string_opt s with
            | Some r -> Some r
            | None ->
                raise
                  (Protocol_error
                     (Printf.sprintf "malformed forward reference %S" s))
        in
        Locate_reply { rep_id; found; forward })
      else if tag = tag_locate_forward then (
        let rep_id = d.get_ulong () in
        let target_s = d.get_string () in
        match Objref.of_string_opt target_s with
        | Some target -> Locate_forward { rep_id; target }
        | None ->
            raise
              (Protocol_error
                 (Printf.sprintf "malformed forward target %S" target_s)))
      else raise (Protocol_error (Printf.sprintf "unknown message tag %d" tag))
    with Wire.Codec.Type_error m -> raise (Protocol_error m)
  in
  let decode_message bytes = decode_limited Wire.Codec.default_limits bytes in
  { name; version; codec; framing; encode_message; decode_message; decode_limited }

(* Best-effort request id of a frame that failed to decode: the tag and
   request id are the first two fields of every envelope, so they often
   survive a mutation further in. Lets the server's error reply carry
   the id the client is waiting on instead of 0. *)
let request_id_hint t bytes =
  match
    let d = t.codec.Wire.Codec.decoder bytes in
    let tag = d.Wire.Codec.get_octet () in
    if tag = tag_request || tag = tag_locate_request then
      Some (d.Wire.Codec.get_ulong ())
    else None
  with
  | v -> v
  | exception _ -> None

let text = generic ~name:"heidi-text" ~framing:Line Wire.Text_codec.codec

(* HCX: the compact binary codec over varint framing — one magic byte
   plus a varint body length, so the total framing overhead on a small
   message is 2-3 bytes. The 0xC8 magic is outside both printable ASCII
   (the text protocol) and "GIOP"'s first byte, so a protocol mix-up
   fails at the first frame, not mid-stream. *)
let hcx_magic = '\xC8'

let hcx =
  generic ~name:"hcx" ~version:Wire.Hcx_codec.version
    ~framing:(Varint_prefixed { magic = hcx_magic })
    Wire.Hcx_codec.codec

(* ---------------- codec negotiation grammar ---------------- *)

(* The offer/answer slot payloads: comma-separated [name/version]
   tokens, client's preference order. The base protocol the offer rides
   on is the implicit last resort and is never listed. *)
module Nego = struct
  let token p = Printf.sprintf "%s/%d" p.name p.version

  let parse_token s =
    match String.index_opt s '/' with
    | None -> None
    | Some i -> (
        let name = String.sub s 0 i in
        let v = String.sub s (i + 1) (String.length s - i - 1) in
        match int_of_string_opt v with
        | Some v when v >= 0 && name <> "" -> Some (name, v)
        | _ -> None)

  let offer_of supported = String.concat "," (List.map token supported)

  let split_tokens s = String.split_on_char ',' s |> List.filter (( <> ) "")

  (* Server side: pick the first client-offered codec we also speak and
     whose offered version our compatibility predicate accepts — the
     client's preference order decides, so both sides converge on the
     client's best mutually-compatible encoding. Returns the chosen
     protocol and the answer token (which echoes OUR version of the
     chosen codec; the offer's name, not its version, is the agreement —
     the predicate has already vouched for the version pair). *)
  let choose ~offer ~supported ~compatible =
    let rec first = function
      | [] -> None
      | tok :: rest -> (
          match parse_token tok with
          | None -> first rest
          | Some (name, offered_v) -> (
              match List.find_opt (fun p -> p.name = name) supported with
              | Some p when compatible ~name ~offered:offered_v ~local:p.version
                ->
                  Some (p, token p)
              | Some _ | None -> first rest))
    in
    first (split_tokens offer)

  (* Default version-compatibility predicate: exact version match. The
     analysis layer's IDL-evolution verdict (V301-V304) can be wired in
     instead via [Orb.create ?codec_compat] — a wire-breaking verdict
     between two versions of the codec's payload schema then vetoes the
     pair at negotiation time. *)
  let exact ~name:_ ~offered ~local = offered = local
end
