(** Retry policies for remote invocation.

    Distribution policy — including failure handling — belongs in a
    configurable layer, not hardcoded at call sites (cf. RAFDA). A
    {!policy} bundles how many times to try, how long to back off, and
    how much deterministic jitter to apply; {!classify} is the error
    taxonomy that decides {e whether} trying again can help at all.

    Which failures are safe to retry is the caller's judgment: the ORB
    only retries connection setup and sends that failed before any
    reply bytes were read, so a dispatched request is never duplicated
    (see the "Failure model" section of DESIGN.md). *)

(** Where an exception falls in the taxonomy:
    - [Transient] — connection-level failures ({!Transport.Transport_error}:
      connect refused, stale/closed connection). Another attempt may
      succeed.
    - [Deadline] — {!Transport.Timeout}. Never retried by the ORB: the
      request may be executing on the peer right now.
    - [Permanent] — everything else (decoded system errors, protocol
      errors, user exceptions). Retrying cannot help. *)
type error_class = Transient | Deadline | Permanent

val classify : exn -> error_class

exception Budget_exhausted of string
(** The client-wide retry budget refused a withdrawal: the aggregate
    retry ratio is at its bound. {!classify}d as [Permanent] — by
    design, a budget-exhausted call fails fast and loudly instead of
    joining a retry storm. *)

(** A client-wide retry budget (cf. Finagle's RetryBudget): a token
    bucket replenished by successes and drained by retries. The
    per-call [max_attempts] bounds one call's worst case; the budget
    bounds the {e aggregate} retry-to-success ratio, so correlated
    replica failures cannot amplify every in-flight call into a
    synchronized retry storm. Lock-free (one atomic, CAS updates);
    safe from any thread or domain. *)
module Budget : sig
  type t

  type config = {
    ratio : float;
        (** Steady-state retry credits earned per success (clamped to
            [0..1]). 0.1 = at most ~10% retries long-run. *)
    reserve : int;  (** Initial balance, in retries. *)
    cap : int;  (** Bucket bound, in retries (min 1). *)
  }

  val default_config : config
  (** 10% ratio, 100 retries of reserve, capped at 250. *)

  val create : ?config:config -> unit -> t

  val deposit : t -> unit
  (** Record a success: credits [ratio] of a retry, up to [cap]. *)

  val try_withdraw : t -> bool
  (** Take one retry credit. [false] (and counts an exhaustion) when
      the balance is under one whole credit. *)

  val balance : t -> int
  (** Whole retry credits currently banked. *)

  val exhaustions : t -> int
  (** Withdrawals refused so far — the retry-storm-suppressed count. *)
end

type policy = {
  max_attempts : int;  (** Total attempts, including the first (>= 1). *)
  base_delay : float;  (** Backoff before attempt 2, in seconds. *)
  multiplier : float;  (** Exponential growth factor per attempt. *)
  max_delay : float;  (** Backoff cap, in seconds. *)
  jitter : float;
      (** Fractional jitter in [0..1]: the delay is scaled by a factor
          drawn uniformly from [1-jitter .. 1+jitter]. *)
  seed : int;  (** Seeds the jitter draw — the schedule is deterministic. *)
}

val default : policy
(** 3 attempts, 2ms base, x2 growth, 250ms cap, 20% jitter. *)

val none : policy
(** A single attempt — retries disabled. *)

val delay_for : policy -> attempt:int -> float
(** Backoff to sleep after failed attempt [attempt] (1-based). Pure:
    the same policy and attempt always give the same delay. *)

val retryable : policy -> attempt:int -> exn -> bool
(** [true] iff the exception is {!Transient} and attempts remain. *)

val run :
  ?sleep:(float -> unit) ->
  ?on_retry:(attempt:int -> exn -> unit) ->
  ?budget:Budget.t ->
  ?deadline:float ->
  policy ->
  (attempt:int -> 'a) ->
  'a
(** Generic retry driver: calls [f ~attempt:1], retrying with backoff
    while {!retryable}. [on_retry] observes each failed attempt. With
    [budget], each retry first withdraws a credit — an empty bucket
    raises {!Budget_exhausted} instead of retrying. With [deadline]
    (absolute, [Unix.gettimeofday] domain), backoff sleeps are clamped
    to the remaining budget and a retry is never started past it — the
    original error propagates instead. The ORB's invocation path uses
    its own loop (it must also reason about whether any reply bytes
    were read); [run] is for simpler cases. *)
