type t = {
  invoker : Orb_intf.raw_invoker;
  codec : Wire.Codec.t;
  target : Objref.t;
  capacity : int;
  invalidate_on : string list;
  lock : Locked.t;
  memo : (string * string, string) Hashtbl.t;  (* (op, args) -> reply payload *)
  mutable order : (string * string) list;  (* newest first *)
  mutable hits : int;
  mutable misses : int;
}

let create ?(capacity = 64) ?(invalidate_on = []) ~codec invoker target =
  {
    invoker;
    codec;
    target;
    capacity = max 1 capacity;
    invalidate_on;
    lock = Locked.create ~name:"smart" ~rank:Locked.Rank.smart;
    memo = Hashtbl.create 32;
    order = [];
    hits = 0;
    misses = 0;
  }

let with_lock t f = Locked.with_lock t.lock f

let invalidate t =
  with_lock t (fun () ->
      Hashtbl.reset t.memo;
      t.order <- [])

let remember t key payload =
  with_lock t (fun () ->
      if not (Hashtbl.mem t.memo key) then (
        Hashtbl.replace t.memo key payload;
        t.order <- key :: t.order;
        if List.length t.order > t.capacity then
          match List.rev t.order with
          | oldest :: rest ->
              Hashtbl.remove t.memo oldest;
              t.order <- List.rev rest
          | [] -> ()))

let lookup t key =
  with_lock t (fun () ->
      match Hashtbl.find_opt t.memo key with
      | Some payload ->
          t.hits <- t.hits + 1;
          Some payload
      | None ->
          t.misses <- t.misses + 1;
          None)

let call t ~op marshal =
  let args =
    let e = t.codec.Wire.Codec.encoder () in
    marshal e;
    e.Wire.Codec.finish ()
  in
  if List.mem op t.invalidate_on then (
    invalidate t;
    t.codec.Wire.Codec.decoder (t.invoker t.target ~op args))
  else
    let key = (op, args) in
    match lookup t key with
    | Some payload -> t.codec.Wire.Codec.decoder payload
    | None ->
        let payload = t.invoker t.target ~op args in
        remember t key payload;
        t.codec.Wire.Codec.decoder payload

let hits t = with_lock t (fun () -> t.hits)
let misses t = with_lock t (fun () -> t.misses)
let target t = t.target
