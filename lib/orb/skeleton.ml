type handler = Wire.Codec.decoder -> Wire.Codec.encoder -> unit

exception User_exception of {
  repo_id : string;
  encode : Wire.Codec.encoder -> unit;
}

type t = {
  sk_type_id : string;
  table : handler Dispatch.table;
  parents : t list;
  local_names : string list;
}

let create ?(strategy = Dispatch.Linear) ?(parents = []) ~type_id handlers =
  {
    sk_type_id = type_id;
    table = Dispatch.compile strategy handlers;
    parents;
    local_names = List.map fst handlers;
  }

let type_id t = t.sk_type_id

let rec dispatch t op =
  match Dispatch.lookup t.table op with
  | Some h -> Some h
  | None -> List.find_map (fun parent -> dispatch parent op) t.parents

let operation_names t =
  let seen = Hashtbl.create 16 in
  let rec collect t acc =
    let acc =
      List.fold_left
        (fun acc name ->
          if Hashtbl.mem seen name then acc
          else (
            Hashtbl.add seen name ();
            name :: acc))
        acc t.local_names
    in
    List.fold_left (fun acc p -> collect p acc) acc t.parents
  in
  List.rev (collect t [])
