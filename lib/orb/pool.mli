(** A bounded worker pool with explicit admission control — the server's
    overload policy (see DESIGN.md "Server model and overload policy").

    Connection reader threads decode requests and {!submit} them; a
    fixed set of worker threads executes them. The pending queue is
    bounded; the {!admission} policy decides what happens at the bound. *)

type admission =
  | Reject
      (** Shed load: a submit against a full queue fails immediately —
          the server answers ["overloaded"] and stays responsive. *)
  | Block of float option
      (** Backpressure: the submitting reader blocks until queue space
          frees, at most the given seconds ([None] = indefinitely).
          Blocking the reader stops that connection's intake, pushing
          the overload back through the transport to the client. *)

type config = {
  workers : int;  (** Worker thread count (min 1). *)
  queue_capacity : int;  (** Pending-request bound (min 1). *)
  admission : admission;
}

val default_config : config
(** 8 workers, 64 queued requests, [Reject] admission. *)

type t

val create : config -> t
(** Create the pool and start its worker threads. *)

val submit : t -> (unit -> unit) -> [ `Accepted | `Rejected of string ]
(** Enqueue a job, subject to admission control. [`Rejected reason]
    when the queue is full (under [Reject], or past the [Block]
    deadline) or the pool is draining/stopped. The job must not raise;
    residual exceptions are swallowed to protect the worker. *)

val depth : t -> int
(** Currently queued (not yet started) jobs. *)

val active : t -> int
(** Jobs currently executing. *)

type stats = { submitted : int; completed : int; rejected : int }

val stats : t -> stats

val drain : t -> deadline:float option -> [ `Drained | `Aborted of int ]
(** Stop admitting (subsequent submits are rejected) and wait until the
    queue and all in-flight jobs are finished. [deadline] is an
    absolute [Unix.gettimeofday] instant; past it, [`Aborted n] reports
    the queued + running jobs abandoned. [~deadline:None] waits
    indefinitely. *)

val stop : t -> int
(** Stop immediately: discard queued jobs (returning how many), let
    running jobs finish, and shut the workers down. Does not join the
    worker threads — a running job may be blocked on I/O the caller is
    about to unblock (e.g. by closing connections). Idempotent. *)
