(** A bounded worker pool with explicit admission control — the server's
    overload policy (see DESIGN.md "Server model and overload policy").

    Connection reader threads decode requests and {!submit} them; a
    fixed set of workers executes them. The pending queue is bounded;
    the {!admission} policy decides what happens at the bound, and the
    {!backend} decides what a worker is: an OCaml domain (parallel
    dispatch, the default) or a systhread (one shared runtime lock,
    kept as the E13 control and for I/O-bound workloads that want more
    workers than cores). *)

type admission =
  | Reject
      (** Shed load: a submit against a full queue fails immediately —
          the server answers ["overloaded"] and stays responsive. *)
  | Block of float option
      (** Backpressure: the submitting reader blocks until queue space
          frees, at most the given seconds ([None] = indefinitely).
          Blocking the reader stops that connection's intake, pushing
          the overload back through the transport to the client. *)

type backend =
  | Systhreads
      (** One systhread per worker: workers share the spawning domain's
          runtime lock, so they overlap waiting but not compute. *)
  | Domains
      (** One domain per worker: CPU-bound jobs run in parallel on
          separate cores. Worker domains are joined by a detached
          reaper after {!stop}; keep [workers] within the same order
          as the machine's cores — the runtime caps live domains. *)

type config = {
  workers : int;  (** Worker count (min 1). *)
  queue_capacity : int;  (** Pending-request bound (min 1). *)
  admission : admission;
  backend : backend;
}

val default_config : config
(** 8 workers, 64 queued requests, [Reject] admission, [Domains]. *)

type t

val create : config -> t
(** Create the pool and start its workers. *)

val submit :
  t ->
  ?cancel:(unit -> unit) ->
  ?expire:float ->
  (unit -> unit) ->
  [ `Accepted | `Rejected of string | `Expired ]
(** Enqueue a job, subject to admission control. [`Rejected reason]
    when the queue is full (under [Reject], or past the [Block]
    deadline) or the pool is draining/stopped. The job must not raise;
    residual exceptions are swallowed to protect the worker.

    [expire] is the request's own remaining-budget instant (absolute,
    [Unix.gettimeofday] domain): no [Block] admission wait ever parks
    past it — the effective wait bound is the min of the admission
    deadline and [expire] — and a lapsed budget returns [`Expired]
    (counted as a rejection in {!stats}), distinct from an overload
    [`Rejected], so the server can answer "expired" rather than
    "overloaded".

    [cancel] runs (at most once, never together with the job) if the
    pool is stopped while the job is still queued: the submitter's
    chance to answer the peer — e.g. a system-error reply — instead of
    silently discarding an admitted request. It is called outside the
    pool lock and may perform I/O. *)

val depth : t -> int
(** Currently queued (not yet started) jobs. *)

val active : t -> int
(** Jobs currently executing. *)

type stats = { submitted : int; completed : int; rejected : int }

val stats : t -> stats

val drain : t -> deadline:float option -> [ `Drained | `Aborted of int ]
(** Stop admitting (subsequent submits are rejected) and wait until the
    queue and all in-flight jobs are finished. [deadline] is an
    absolute [Unix.gettimeofday] instant; past it, [`Aborted n] reports
    the queued + running jobs abandoned. [~deadline:None] waits
    indefinitely. *)

val stop : t -> int
(** Stop immediately: discard queued jobs — running each one's [cancel]
    callback first, in submission order — and return how many were
    dropped. Running jobs finish; workers then shut down (domain
    workers are joined by a detached reaper so their runtime slots are
    reclaimed). Does not block on the workers — a running job may be
    blocked on I/O the caller is about to unblock (e.g. by closing
    connections). Idempotent. *)
