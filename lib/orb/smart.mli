(** Smart proxies: client-side result caching in the stub layer.

    Section 5 surveys Orbix's "smart proxies that can cache object state"
    and Visibroker's "smart stubs" as fixed customization hooks. This
    module is the runtime support a generated (or hand-written) smart
    stub needs: a per-proxy memo of reply payloads keyed by
    (operation, argument payload), with explicit and operation-triggered
    invalidation.

    The cache works at the payload level, beneath argument/result types,
    so one implementation serves every interface. Typical use (see
    [test_smart.ml] and bench §E7): wrap an attribute getter so repeated
    reads cost no remote call, and list the corresponding setter in
    [invalidate_on] so writes flush the cached state.

    Construct through {!Orb.smart_proxy}, which binds the ORB's invoker
    and protocol codec. *)

type t

val create :
  ?capacity:int ->
  ?invalidate_on:string list ->
  codec:Wire.Codec.t ->
  Orb_intf.raw_invoker ->
  Objref.t ->
  t
(** [capacity] bounds the memo (default 64, oldest evicted first).
    Operations listed in [invalidate_on] flush the whole memo before
    being invoked and are never cached themselves. *)

val call : t -> op:string -> (Wire.Codec.encoder -> unit) -> Wire.Codec.decoder
(** Like a two-way [Orb.invoke], but repeated calls with identical
    operation and arguments are served from the memo without touching
    the network. Exceptions from the underlying invoker pass through
    (and are never cached). *)

val invalidate : t -> unit
(** Flush the memo. *)

val hits : t -> int
val misses : t -> int
val target : t -> Objref.t
