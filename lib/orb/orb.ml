(* Re-export the runtime's submodules: [Orb] is the library's facade. *)
module Objref = Objref
module Dispatch = Dispatch
module Protocol = Protocol
module Transport = Transport
module Communicator = Communicator
module Skeleton = Skeleton
module Object_adapter = Object_adapter
module Serial = Serial
module Interceptor = Interceptor
module Smart = Smart
module Retry = Retry
module Breaker = Breaker
module Pool = Pool

let src = Logs.Src.create "orb" ~doc:"HeidiRMI ORB runtime"

module Log = (val Logs.src_log src : Logs.LOG)

exception Remote_exception of {
  repo_id : string;
  payload : string;
  codec : Wire.Codec.t;
}

exception System_exception of string

let () =
  Printexc.register_printer (function
    | Remote_exception { repo_id; _ } ->
        Some (Printf.sprintf "Orb.Remote_exception(%s)" repo_id)
    | System_exception m -> Some (Printf.sprintf "Orb.System_exception: %s" m)
    | _ -> None)

(* The server's overload policy — how much concurrent work, queued
   work, and connection state one address space will hold, and what to
   do at each bound. A policy value, not code, in the spirit of the
   paper's configurable ORB (and RAFDA's distribution-policy
   separation). *)
type server_policy = {
  pool : Pool.config option;
      (* Some: bounded worker pool (the default). None: the unbounded
         thread-per-connection model the paper describes, kept for the
         overload comparison (bench E10). *)
  max_connections : int;  (* 0 = unlimited; beyond it, idle-LRU evict *)
  max_pipelined : int;  (* per-connection in-flight cap; 0 = unlimited *)
  limits : Wire.Codec.limits;  (* decode budget for inbound frames *)
  accept_backoff : float;  (* initial transient accept-failure sleep *)
}

let default_server_policy =
  {
    pool = Some Pool.default_config;
    max_connections = 0;
    max_pipelined = 64;
    limits = Wire.Codec.default_limits;
    accept_backoff = 0.01;
  }

(* The client's connection-sharing policy. With [max_in_flight > 1] each
   cached outbound connection runs a reply demultiplexer: a reader
   thread correlates replies to waiting callers by request id, so many
   calls from many threads pipeline over one connection (the server has
   decoded pipelined requests and replied out of order since the worker
   pool landed — this unlocks the client half). [max_in_flight = 1]
   reproduces the historical serialized behaviour: the connection mutex
   is held across the whole roundtrip. *)
type mux = { max_in_flight : int }

let default_mux = { max_in_flight = 32 }
(* Below the default server policy's [max_pipelined] (64), so a default
   client never trips a default server's pipelining cap. *)

(* Client-side negotiation state of one connection, guarded by its
   [nego_lock]. [Nego_offering] is the hold-until-answer gate: while an
   offer's roundtrip is in flight every other send on the connection
   waits, so the encoding switch lands on a quiet stream — no frame of
   the old encoding can be in flight when either side re-points its
   communicator. *)
type nego_state =
  | Nego_idle  (* negotiation off, already resolved, or fallen back *)
  | Nego_fresh  (* no offer sent yet on this connection *)
  | Nego_offering  (* offer in flight: all other sends hold *)

type t = {
  proto : Protocol.t;
  codecs : Protocol.t list;
      (* negotiable codecs, preference-ordered; [] = negotiation off *)
  codec_compat : name:string -> offered:int -> local:int -> bool;
      (* version-compatibility predicate for negotiation (default
         [Protocol.Nego.exact]; the analysis layer's evolution verdict
         can be wired in) *)
  strat : Dispatch.strategy;
  transport : string;
  host : string;
  cfg_port : int;
  call_timeout : float option;  (* default per-call deadline, seconds *)
  propagate_deadlines : bool;  (* stamp remaining budget into requests *)
  retry : Retry.policy;
  retry_budget : Retry.Budget.t;  (* aggregate retry/failover gate *)
  breaker : Breaker.t option;
  obs : Obs.t;  (* tracing + metrics; disabled unless supplied *)
  policy : server_policy;
  mux_cfg : mux;  (* client connection-sharing policy *)
  oa : Object_adapter.t;
  lock : Locked.t;  (* guards the mutable fields below; rank [connection_cache] *)
  mutable listener : Transport.listener option;
  mutable bound_port : int;
  mutable running : bool;
  mutable draining : bool;  (* shutdown in its grace window *)
  mutable pool : Pool.t option;  (* workers; created at [start] *)
  conns : (string * string * int, conn) Hashtbl.t;  (* endpoint -> cached conn *)
  client_chain : Interceptor.chain;
  server_chain : Interceptor.chain;
  mutable accepted : sconn list;  (* server-side connections *)
  mutable next_req_id : int;
  mutable opened : int;  (* outbound connections ever opened *)
  (* Hot-path counters are [Atomic.t], not lock-guarded mutables: they
     are bumped from pool worker domains, demux reader threads, and
     callers concurrently, and several increment sites used to take the
     ORB lock for nothing but the counter (see the C404 fixture pinning
     the unlocked-mutable anti-pattern this replaces). Cold counters
     mutated only under [lock] alongside other state stay mutable. *)
  served : int Atomic.t;  (* requests dispatched *)
  retries : int Atomic.t;  (* attempts beyond the first, across all calls *)
  timeouts : int Atomic.t;  (* calls that hit their deadline *)
  rejected : int Atomic.t;  (* requests refused by admission control *)
  expired_pre_admission : int Atomic.t;
      (* requests shed at decode/admission: budget lapsed before queueing *)
  expired_in_queue : int Atomic.t;
      (* requests shed at execution: budget lapsed while queued, or
         remaining budget below the service-time estimate (doomed) *)
  service_ewma_us : int Atomic.t;
      (* EWMA of pool-dispatch service time in µs (0 until the first
         completion) — the doomed-request shed threshold *)
  mutable evicted : int;  (* connections evicted by the LRU limit *)
  mutable drains_clean : int;  (* graceful drains that finished in time *)
  mutable drain_aborted_jobs : int;  (* dispatches abandoned at force-close *)
  mux_peak : int Atomic.t;  (* highest in-flight count any connection saw *)
  codec_negotiations : int Atomic.t;  (* connections switched to a negotiated codec *)
  codec_fallbacks : int Atomic.t;  (* offers that fell back to the base protocol *)
  mutable bootstrap_registry : (string, Objref.t) Hashtbl.t option;
  fwd_cache : (string, Objref.t) Hashtbl.t;
      (* logical target (stringified) -> last Locate_forward redirect;
         invalidated when the forwarded target fails *)
  rng : Random.State.t;  (* replica selection; guarded by [mutex] *)
  failovers : int Atomic.t;  (* attempts rerouted away from a failed replica *)
  mutable forwards_followed : int;  (* Locate_forward redirects honoured *)
}

(* One cached outbound connection. [conn_mutex] serializes sends (each
   framed message must hit the wire whole). [mux = None]: the serialized
   model — the same mutex is then held across the entire roundtrip, so
   receives are serialized too. [mux = Some]: the reply demultiplexer
   below owns all receives and the mutex covers only the send. *)
and conn = {
  comm : Communicator.t;
  conn_lock : Locked.t;  (* send lock; rank [communicator] *)
  mux : mux_state option;
  nego_lock : Locked.t;  (* negotiation gate; rank [nego] *)
  mutable nego : nego_state;  (* guarded by [nego_lock] *)
  c_codec : string ref;
      (* current codec label for per-codec byte metering; re-pointed at
         the negotiated switch *)
}

(* Demultiplexer state, guarded by [mx_mutex]. Waiters register a cell
   in [mx_pending] keyed by request id before sending; the connection's
   reader thread fills the cell and signals [mx_cond]. [mx_dead] is the
   terminal state: set once by whoever observes the connection die
   (reader I/O failure, send failure, a waiter's deadline expiring),
   after which every current and future waiter fails with that error. *)
and mux_state = {
  mx_lock : Locked.t;  (* rank [mux]; intrinsic cond: delivery/death/slot free *)
  mx_pending : (int, Protocol.message option ref) Hashtbl.t;
  mutable mx_dead : exn option;
  mutable mx_inflight : int;  (* registered waiters = replies owed *)
  mx_limit : int;  (* admission bound: mux.max_in_flight *)
  mx_gauge : string;  (* obs gauge name, precomputed off the hot path *)
}

(* One accepted server-side connection: its reader thread decodes
   requests; replies (possibly from several pool workers at once) are
   serialized by [s_write]. *)
and sconn = {
  scomm : Communicator.t;
  s_write : Locked.t;  (* reply serialization; rank [communicator] *)
  mutable s_last_active : float;  (* for idle-LRU eviction *)
  mutable s_inflight : int;  (* requests read but not yet answered *)
  mutable s_nego : (string * Protocol.t) option;
      (* negotiation answer awaiting its reply, and the protocol the
         send side switches to once it is out; guarded by [s_write] *)
  mutable s_negotiated : bool;  (* an offer was processed; guarded by [s_write] *)
  s_codec : string ref;  (* current codec label for byte metering *)
}

let create ?(protocol = Protocol.text) ?(codecs = [])
    ?(codec_compat = Protocol.Nego.exact) ?(strategy = Dispatch.Linear)
    ?(transport = "mem") ?(host = "local") ?(port = 0) ?call_timeout
    ?(propagate_deadlines = true) ?(retry = Retry.default)
    ?(retry_budget = Retry.Budget.default_config) ?breaker ?obs
    ?(server_policy = default_server_policy) ?(mux = default_mux) () =
  {
    proto = protocol;
    codecs;
    codec_compat;
    strat = strategy;
    transport;
    host;
    cfg_port = port;
    call_timeout;
    propagate_deadlines;
    retry;
    retry_budget = Retry.Budget.create ~config:retry_budget ();
    breaker = Option.map (fun config -> Breaker.create ~config ()) breaker;
    obs = (match obs with Some o -> o | None -> Obs.create ~enabled:false ());
    policy = server_policy;
    mux_cfg = mux;
    oa = Object_adapter.create ();
    lock = Locked.create ~name:"orb" ~rank:Locked.Rank.connection_cache;
    listener = None;
    bound_port = 0;
    running = false;
    draining = false;
    pool = None;
    conns = Hashtbl.create 16;
    client_chain = Interceptor.empty_chain ();
    server_chain = Interceptor.empty_chain ();
    accepted = [];
    next_req_id = 1;
    opened = 0;
    served = Atomic.make 0;
    retries = Atomic.make 0;
    timeouts = Atomic.make 0;
    rejected = Atomic.make 0;
    expired_pre_admission = Atomic.make 0;
    expired_in_queue = Atomic.make 0;
    service_ewma_us = Atomic.make 0;
    evicted = 0;
    drains_clean = 0;
    drain_aborted_jobs = 0;
    mux_peak = Atomic.make 0;
    codec_negotiations = Atomic.make 0;
    codec_fallbacks = Atomic.make 0;
    bootstrap_registry = None;
    fwd_cache = Hashtbl.create 8;
    (* Fixed seed: replica selection only needs spread, not entropy, and
       determinism keeps test runs reproducible. *)
    rng = Random.State.make [| 0x9e3779b9 |];
    failovers = Atomic.make 0;
    forwards_followed = 0;
  }

let protocol t = t.proto
let strategy t = t.strat
let adapter t = t.oa
let obs t = t.obs
let client_interceptors t = t.client_chain
let server_interceptors t = t.server_chain

(* Hot path (span per traced call): plain concatenation, not sprintf. *)
let endpoint_key (proto, host, port) =
  proto ^ ":" ^ host ^ ":" ^ string_of_int port

(* Channels report their wire bytes (framing included) to the ORB's
   metrics under an endpoint label; [Obs.add_bytes] is a boolean load
   when observability is disabled. Each byte is also accounted to a
   per-codec label ([<codec>:<endpoint>]) through a mutable codec-name
   cell: a negotiated switch re-points the cell, so the split shows how
   much of an endpoint's traffic travelled in each encoding. *)
let meter_channel t label codec chan =
  let obs = t.obs in
  Transport.metered chan
    ~on_read:(fun n ->
      Obs.add_bytes obs ~endpoint:label ~dir:`In n;
      Obs.add_bytes obs ~endpoint:(!codec ^ ":" ^ label) ~dir:`In n)
    ~on_write:(fun n ->
      Obs.add_bytes obs ~endpoint:label ~dir:`Out n;
      Obs.add_bytes obs ~endpoint:(!codec ^ ":" ^ label) ~dir:`Out n)

let with_lock t f = Locked.with_lock t.lock f
let port t = with_lock t (fun () -> t.bound_port)

(* ---------------- server side ---------------- *)

let handle_request_inner t (req : Protocol.request) : Protocol.reply option =
  let codec = t.proto.Protocol.codec in
  let reply status payload =
    if req.Protocol.oneway then None
    else
      Some
        { Protocol.rep_id = req.Protocol.req_id; status; payload;
          nego_answer = "" }
  in
  Atomic.incr t.served;
  match Object_adapter.lookup t.oa req.Protocol.target.Objref.oid with
  | None ->
      reply
        (Protocol.Status_system_error
           (Printf.sprintf "no object with oid %S in this address space"
              req.Protocol.target.Objref.oid))
        ""
  | Some skel -> (
      match Skeleton.dispatch skel req.Protocol.operation with
      | None ->
          reply
            (Protocol.Status_system_error
               (Printf.sprintf "interface %s has no operation %S"
                  (Skeleton.type_id skel) req.Protocol.operation))
            ""
      | Some handler -> (
          (* The argument payload is untrusted wire data: decode it
             under the server policy's limits, like the envelope. *)
          let args =
            codec.Wire.Codec.decoder_limited t.policy.limits
              req.Protocol.payload
          in
          let results = codec.Wire.Codec.encoder () in
          match handler args results with
          | () -> reply Protocol.Status_ok (results.Wire.Codec.finish ())
          | exception Skeleton.User_exception { repo_id; encode } ->
              let e = codec.Wire.Codec.encoder () in
              encode e;
              reply (Protocol.Status_user_exception repo_id)
                (e.Wire.Codec.finish ())
          | exception Wire.Codec.Type_error m ->
              reply
                (Protocol.Status_system_error
                   (Printf.sprintf "marshal error in %S: %s" req.Protocol.operation m))
                ""
          | exception exn ->
              reply
                (Protocol.Status_system_error
                   (Printf.sprintf "implementation of %S failed: %s"
                      req.Protocol.operation (Printexc.to_string exn)))
                ""))

(* Dispatch with the server-side interceptor chain around it (Section 5:
   Orbix-style filters "triggered in the dispatch path"), and a server
   span around the whole thing. The span joins the caller's trace via
   the request's service-context slot; requests from peers that predate
   the slot (or carry a malformed context) start a fresh root trace. *)
let handle_request t (req : Protocol.request) : Protocol.reply option =
  let span =
    if Obs.enabled t.obs then begin
      let context = Obs.Trace.decode_context req.Protocol.trace_ctx in
      let s =
        Obs.Trace.start_server ?context ~operation:req.Protocol.operation
          ~endpoint:(endpoint_key (Objref.endpoint req.Protocol.target))
          ()
      in
      s.Obs.Trace.req_id <- req.Protocol.req_id;
      Some s
    end
    else None
  in
  let result =
    match Interceptor.apply_request t.server_chain req with
    | req -> (
        match handle_request_inner t req with
        | None -> None
        | Some rep -> Some (Interceptor.apply_reply t.server_chain req rep))
    | exception Interceptor.Reject reason ->
        if req.Protocol.oneway then None
        else
          Some
            {
              Protocol.rep_id = req.Protocol.req_id;
              status = Protocol.Status_system_error ("rejected: " ^ reason);
              payload = "";
              nego_answer = "";
            }
  in
  (match span with
  | None -> ()
  | Some s ->
      let outcome =
        match result with
        | None -> Obs.Trace.Ok (* oneway: dispatched, nothing to report *)
        | Some rep -> (
            match rep.Protocol.status with
            | Protocol.Status_ok -> Obs.Trace.Ok
            | Protocol.Status_user_exception id -> Obs.Trace.User_exception id
            | Protocol.Status_system_error m -> Obs.Trace.System_error m)
      in
      Obs.Trace.finish s outcome;
      Obs.observe t.obs
        ~name:("dispatch:" ^ req.Protocol.operation)
        (Obs.Trace.duration s);
      Obs.emit t.obs s);
  result

let serve_connection t sc =
  let comm = sc.scomm in
  (* Replies can come from several pool workers and the reader thread
     interleaved; the write mutex keeps each framed message whole. A
     pending negotiation answer rides the next reply out, after which
     the send side switches to the chosen protocol — the offering
     client holds all further sends until it has the answer, so no
     frame of the old encoding is in flight across the switch. *)
  let send_msg msg =
    Locked.with_lock sc.s_write (fun () ->
        match (msg, sc.s_nego) with
        | Protocol.Reply r, Some (tok, p) ->
            Communicator.send comm
              (Protocol.Reply { r with Protocol.nego_answer = tok });
            sc.s_nego <- None;
            Communicator.set_protocol ~dir:`Send comm p;
            sc.s_codec := p.Protocol.name
        | _ -> Communicator.send comm msg)
  in
  let error_reply rep_id reason =
    send_msg
      (Protocol.Reply
         { Protocol.rep_id; status = Protocol.Status_system_error reason;
           payload = ""; nego_answer = "" })
  in
  (* Server half of codec negotiation, run on the reader thread at
     offer-read time. The receive side switches immediately: the
     offering client sends nothing further until it has processed our
     answer, so the next inbound frame is already in the chosen
     encoding. The send side switches in [send_msg] when the answer
     goes out. Offers ride only two-way requests, and only the first
     one on a connection is honoured. *)
  let process_offer (req : Protocol.request) =
    if (not req.Protocol.oneway) && t.codecs <> [] then begin
      let decided =
        Locked.with_lock sc.s_write (fun () ->
            if sc.s_negotiated then None
            else begin
              sc.s_negotiated <- true;
              match
                Protocol.Nego.choose ~offer:req.Protocol.nego_offer
                  ~supported:t.codecs ~compatible:t.codec_compat
              with
              | Some (p, tok) ->
                  sc.s_nego <- Some (tok, p);
                  Some (Some p)
              | None -> Some None
            end)
      in
      match decided with
      | Some (Some p) ->
          Communicator.set_protocol ~dir:`Recv comm p;
          Atomic.incr t.codec_negotiations;
          Obs.incr t.obs ~name:"server:codec_negotiated"
      | Some None ->
          Atomic.incr t.codec_fallbacks;
          Obs.incr t.obs ~name:"server:codec_fallback"
      | None -> ()
    end
  in
  (* Admission refusal: a diagnosable System_exception reply, never a
     dropped connection. *)
  let reject_request (req : Protocol.request) reason =
    Atomic.incr t.rejected;
    Obs.incr t.obs ~name:"server:rejected";
    if not req.Protocol.oneway then error_reply req.Protocol.req_id reason
  in
  (* Budget-expiry shedding: like an admission refusal, but counted and
     worded as the Timeout-class outcome it is — the client's budget
     lapsed, nobody is waiting for the result anymore. *)
  let expire_request (req : Protocol.request) ~counter ~obs_name reason =
    Atomic.incr counter;
    Obs.incr t.obs ~name:obs_name;
    if not req.Protocol.oneway then error_reply req.Protocol.req_id reason
  in
  let finish_dispatch req =
    match handle_request t req with
    | Some rep -> send_msg (Protocol.Reply rep)
    | None -> ()
  in
  let dec_inflight () =
    with_lock t (fun () -> sc.s_inflight <- sc.s_inflight - 1)
  in
  let dispatch (req : Protocol.request) =
    let received_at = Unix.gettimeofday () in
    sc.s_last_active <- received_at;
    (* The wire budget is relative (no clock sync with the peer): anchor
       it to our own receive time. Everything downstream — admission
       waits, the pre-execution check — compares against this absolute
       instant on the server's clock. Conservative by the network
       transit time: we may execute work the client has just given up
       on, never shed work it is still waiting for. *)
    let expiry =
      Option.map
        (fun b -> received_at +. (float_of_int b /. 1e6))
        req.Protocol.budget_us
    in
    let expired_now () =
      match expiry with
      | Some x -> Unix.gettimeofday () >= x
      | None -> false
    in
    if with_lock t (fun () -> t.draining) then
      reject_request req "draining: not accepting new requests"
    else if
      t.policy.max_pipelined > 0 && sc.s_inflight >= t.policy.max_pipelined
    then
      reject_request req
        (Printf.sprintf "too many pipelined requests (limit %d)"
           t.policy.max_pipelined)
    else if expired_now () then
      (* Shed point 1 (decode): the budget lapsed in transit — drop
         before enqueueing anything. *)
      expire_request req ~counter:t.expired_pre_admission
        ~obs_name:"server:expired_pre_admission"
        "expired before admission: request deadline budget lapsed"
    else begin
      with_lock t (fun () -> sc.s_inflight <- sc.s_inflight + 1);
      match with_lock t (fun () -> t.pool) with
      | None ->
          (* Thread-per-connection mode: dispatch inline on the reader
             thread, exactly the paper's Fig. 5 loop. No queue, so the
             decode-point check above is the only shed point. *)
          Fun.protect ~finally:dec_inflight (fun () -> finish_dispatch req)
      | Some pool -> (
          let job () =
            Fun.protect ~finally:dec_inflight (fun () ->
                (* Shed point 3 (pre-execution): a queued request whose
                   budget lapsed while waiting is answered without ever
                   running the servant — the zombie-work kill. A request
                   that has not lapsed yet but whose remaining budget is
                   below the learned service time is equally dead: it
                   would be guaranteed to complete after its deadline,
                   so executing it burns a worker on a reply nobody can
                   use. Under FIFO saturation the oldest not-yet-expired
                   request always has near-zero budget left, so without
                   the doomed check expiry shedding alone recovers no
                   goodput at all. *)
                let doomed_now () =
                  match expiry with
                  | None -> false
                  | Some x ->
                      let ewma = Atomic.get t.service_ewma_us in
                      ewma > 0
                      && x -. Unix.gettimeofday ()
                         < 1.25 *. float_of_int ewma /. 1e6
                in
                if expired_now () then
                  try
                    expire_request req ~counter:t.expired_in_queue
                      ~obs_name:"server:expired_in_queue"
                      "expired in queue: request deadline budget lapsed \
                       before execution"
                  with _ -> (try Communicator.close comm with _ -> ())
                else if doomed_now () then
                  try
                    expire_request req ~counter:t.expired_in_queue
                      ~obs_name:"server:doomed_in_queue"
                      "doomed in queue: remaining deadline budget below \
                       the service-time estimate"
                  with _ -> (try Communicator.close comm with _ -> ())
                else begin
                  let run_started = Unix.gettimeofday () in
                  (try finish_dispatch req
                   with _ ->
                     (* The connection died under the reply: close it so
                        the reader thread unwinds and reaps it. *)
                     (try Communicator.close comm with _ -> ()));
                  let sample_us =
                    int_of_float ((Unix.gettimeofday () -. run_started) *. 1e6)
                  in
                  (* EWMA (alpha = 1/8) via CAS so concurrent workers
                     never lose each other's updates. *)
                  let rec ewma_update () =
                    let cur = Atomic.get t.service_ewma_us in
                    let next =
                      if cur = 0 then sample_us
                      else cur + ((sample_us - cur) / 8)
                    in
                    if not (Atomic.compare_and_set t.service_ewma_us cur next)
                    then ewma_update ()
                  in
                  ewma_update ()
                end)
          in
          (* Runs iff the pool is stopped while this request is still
             queued (immediate shutdown): answer it like an admission
             refusal so a pipelined client fails fast instead of
             waiting out its call deadline on a silently dropped job. *)
          let cancel () =
            dec_inflight ();
            reject_request req "shutting down: request dropped before execution"
          in
          (* Shed point 2 (admission): [?expire] caps any Block parking
             at the request's own remaining budget. *)
          match Pool.submit pool ~cancel ?expire:expiry job with
          | `Accepted ->
              Obs.set_gauge t.obs ~name:"server:pool_depth"
                (float_of_int (Pool.depth pool))
          | `Rejected reason ->
              dec_inflight ();
              reject_request req reason
          | `Expired ->
              dec_inflight ();
              expire_request req ~counter:t.expired_pre_admission
                ~obs_name:"server:expired_pre_admission"
                "expired before admission: request deadline budget lapsed \
                 while awaiting queue space")
    end
  in
  let rec loop () =
    match Communicator.recv_opt comm with
    | Ok (Protocol.Request req) ->
        (match Object_adapter.forward t.oa req.Protocol.target.Objref.oid with
        | Some target ->
            (* The object has moved: answer with a GIOP-style
               LOCATION_FORWARD instead of dispatching. Answered inline
               like locate — it is control-plane traffic, never queued. *)
            sc.s_last_active <- Unix.gettimeofday ();
            (* A carried offer is deliberately NOT honoured here: the
               answer slot only exists on [Reply], and the client treats
               a forward (like any answerless response) as fallback. *)
            if not req.Protocol.oneway then
              send_msg
                (Protocol.Locate_forward
                   { rep_id = req.Protocol.req_id; target })
        | None ->
            if req.Protocol.nego_offer <> "" then process_offer req;
            dispatch req);
        loop ()
    | Ok (Protocol.Locate_request { req_id; target }) ->
        (* GIOP-style locate: answered by the adapter, never dispatched
           (and never queued — it is the liveness probe). A registered
           forward counts as found — the peer knows where the object
           lives — and rides in the reply's version-safe forward slot. *)
        sc.s_last_active <- Unix.gettimeofday ();
        let forward = Object_adapter.forward t.oa target.Objref.oid in
        let found =
          forward <> None || Object_adapter.lookup t.oa target.Objref.oid <> None
        in
        send_msg (Protocol.Locate_reply { rep_id = req_id; found; forward });
        loop ()
    | Ok (Protocol.Reply _ | Protocol.Locate_reply _ | Protocol.Locate_forward _)
      ->
        Log.warn (fun m -> m "unexpected reply on server connection from %s"
                     (Communicator.peer comm));
        loop ()
    | Error { Communicator.reason; req_id_hint } ->
        (* Decodable-but-invalid frame, fully consumed: the stream is
           still synchronized, so answer with a diagnosable error
           instead of silently dropping the connection. *)
        Obs.incr t.obs ~name:"server:malformed";
        Log.warn (fun m ->
            m "malformed frame from %s: %s" (Communicator.peer comm) reason);
        error_reply
          (Option.value req_id_hint ~default:0)
          ("malformed request: " ^ reason);
        loop ()
  in
  (* Whatever ends the connection — EOF or I/O failure on either recv or
     send, a damaged frame header, even a servant-thread bug — close it
     and drop it from the accepted list, so a long-lived server does not
     accumulate dead communicators. The close lives in the [finally] so
     that exit paths outside the explicit handlers below (e.g. a raising
     interceptor hook) also mark the communicator dead for the
     [server_connections] gauge. *)
  Fun.protect
    ~finally:(fun () ->
      (try Communicator.close comm with _ -> ());
      with_lock t (fun () ->
          t.accepted <- List.filter (fun c -> c != sc) t.accepted))
    (fun () ->
      try loop () with
      | Transport.Transport_error _ | Transport.Timeout _ ->
          Communicator.close comm
      | Protocol.Protocol_error m ->
          Log.warn (fun m' ->
              m' "protocol error from %s: %s" (Communicator.peer comm) m);
          Communicator.close comm)

(* Admit a freshly accepted connection under [max_connections]. Past
   the bound the idle-longest connection is evicted (idle-LRU): prefer
   one with nothing in flight, fall back to the stalest overall. The
   evicted peer sees a clean close; a well-behaved client's connection
   cache transparently reopens on its next call. *)
let admit_connection t sc =
  let victim =
    with_lock t (fun () ->
        t.accepted <- sc :: t.accepted;
        let limit = t.policy.max_connections in
        if limit > 0 && List.length t.accepted > limit then begin
          let candidates = List.filter (fun c -> c != sc) t.accepted in
          let idle = List.filter (fun c -> c.s_inflight = 0) candidates in
          let stalest l =
            List.fold_left
              (fun best c ->
                match best with
                | Some b when b.s_last_active <= c.s_last_active -> best
                | _ -> Some c)
              None l
          in
          match stalest (if idle <> [] then idle else candidates) with
          | None -> None
          | Some v ->
              t.accepted <- List.filter (fun c -> c != v) t.accepted;
              t.evicted <- t.evicted + 1;
              Some v
        end
        else None)
  in
  match victim with
  | None -> ()
  | Some v ->
      Obs.incr t.obs ~name:"server:evicted";
      (try Communicator.close v.scomm with _ -> ())

let start t =
  let listener =
    with_lock t (fun () ->
        if t.running then None
        else begin
          let l = Transport.listen ~proto:t.transport ~host:t.host ~port:t.cfg_port in
          t.listener <- Some l;
          t.bound_port <- l.Transport.bound_port;
          t.running <- true;
          t.draining <- false;
          Some l
        end)
  in
  match listener with
  | None -> ()
  | Some l ->
      (* Worker creation happens outside the ORB lock: spawning a
         domain per worker is not instant, and nothing about it needs
         ORB state. [running] is already true, so a concurrent start
         cannot race another pool into existence. *)
      (match with_lock t (fun () -> (t.policy.pool, t.pool)) with
      | Some cfg, None ->
          let p = Pool.create cfg in
          with_lock t (fun () -> t.pool <- Some p)
      | _ -> ());
      let accept_loop () =
        (* Inbound bytes are accounted to the listening endpoint (one
           bounded label per server), not per remote peer. *)
        let label =
          Printf.sprintf "%s:%s:%d" t.transport t.host l.Transport.bound_port
        in
        let rec loop backoff =
          match l.Transport.accept () with
          | chan ->
              let s_codec = ref t.proto.Protocol.name in
              let comm =
                Communicator.wrap ~limits:t.policy.limits t.proto
                  (meter_channel t label s_codec chan)
              in
              let sc =
                {
                  scomm = comm;
                  s_write =
                    Locked.create ~name:"sconn.write"
                      ~rank:Locked.Rank.communicator;
                  s_last_active = Unix.gettimeofday ();
                  s_inflight = 0;
                  s_nego = None;
                  s_negotiated = false;
                  s_codec;
                }
              in
              admit_connection t sc;
              ignore (Locked.spawn "orb.serve" (fun () -> serve_connection t sc));
              loop t.policy.accept_backoff
          | exception Transport.Transport_error msg ->
              (* Two very different failures share this exception: the
                 listener closing under us (shutdown — exit quietly) and
                 a transient resource failure such as fd exhaustion
                 under a connection flood (EMFILE). The latter must not
                 kill the accept loop: sleep — which also gives the
                 connection reaper time to return fds — and retry with
                 the backoff doubling up to a bound. *)
              if with_lock t (fun () -> t.running) then begin
                Log.warn (fun m ->
                    m "transient accept failure: %s (retrying in %.0f ms)" msg
                      (backoff *. 1000.));
                Thread.delay backoff;
                loop (Float.min 1.0 (backoff *. 2.))
              end
        in
        loop t.policy.accept_backoff
      in
      ignore (Locked.spawn "orb.accept" accept_loop)

(* ---------------- client connection teardown ---------------- *)

let mux_gauge t mx n = Obs.set_gauge t.obs ~name:mx.mx_gauge (float_of_int n)

(* Declare the connection dead and wake every waiter. First caller wins
   (later deaths keep the original error); the close also unblocks a
   reader parked inside a transport read. The connection is NOT removed
   from the cache here: the next caller that picks it up fails fast in
   send phase, burns one retry-classified attempt, and reconnects —
   exactly the stale-cached-connection semantics the serialized path
   always had. *)
let mux_kill conn mx err =
  let first =
    Locked.with_lock mx.mx_lock (fun () ->
        let first = mx.mx_dead = None in
        if first then mx.mx_dead <- Some err;
        Locked.broadcast mx.mx_lock;
        first)
  in
  if first then try Communicator.close conn.comm with _ -> ()

(* Closing a muxed connection must go through [mux_kill]: besides
   closing the channel it wakes the waiters AND the reader thread, which
   may be parked on the demux condvar (idle, nothing in flight) where a
   plain close would never reach it. *)
let close_connection c err =
  match c.mux with
  | Some mx -> mux_kill c mx err
  | None -> ( try Communicator.close c.comm with _ -> ())

(* Shutdown in three phases. Phase 1 stops intake: the listener closes
   and [draining] makes every connection reject new requests with a
   diagnosable error. Phase 2 — only with [?drain_deadline] — is the
   grace window: wait up to that many seconds for requests already
   admitted to finish dispatching. Phase 3 force-closes whatever
   remains. Without [drain_deadline] phase 2 is skipped entirely
   (immediate shutdown, the historical behavior). *)
let shutdown ?drain_deadline t =
  let listener, pool, was_running =
    with_lock t (fun () ->
        let l = t.listener in
        t.listener <- None;
        let was = t.running in
        t.running <- false;
        t.draining <- true;
        (l, t.pool, was))
  in
  (match listener with Some l -> l.Transport.shutdown () | None -> ());
  (match (drain_deadline, was_running) with
  | None, _ | _, false -> ()
  | Some grace, true ->
      let deadline = Some (Unix.gettimeofday () +. grace) in
      let span =
        if Obs.enabled t.obs then
          Some
            (Obs.Trace.start_server ~operation:"orb.drain"
               ~endpoint:(endpoint_key (t.transport, t.host, t.bound_port))
               ())
        else None
      in
      let result =
        match pool with
        | Some pool -> Pool.drain pool ~deadline
        | None ->
            (* Thread-per-connection mode: no queue to drain, only the
               per-connection in-flight counts to poll. *)
            let inflight () =
              with_lock t (fun () ->
                  List.fold_left (fun acc c -> acc + c.s_inflight) 0 t.accepted)
            in
            let d = Unix.gettimeofday () +. grace in
            let rec wait () =
              let n = inflight () in
              if n = 0 then `Drained
              else
                let remaining = d -. Unix.gettimeofday () in
                if remaining <= 0. then `Aborted n
                else begin
                  (* Tick bounded by the actual deadline, not a fixed
                     interval: a near deadline fires promptly. *)
                  Thread.delay (Float.min 0.005 remaining);
                  wait ()
                end
            in
            wait ()
      in
      (match result with
      | `Drained ->
          with_lock t (fun () -> t.drains_clean <- t.drains_clean + 1);
          Obs.incr t.obs ~name:"server:drained"
      | `Aborted n ->
          with_lock t (fun () ->
              t.drain_aborted_jobs <- t.drain_aborted_jobs + n);
          Obs.incr t.obs ~name:"server:drain_aborted");
      (match span with
      | None -> ()
      | Some s ->
          let outcome =
            match result with
            | `Drained -> Obs.Trace.Ok
            | `Aborted n ->
                Obs.Trace.System_error
                  (Printf.sprintf "drain aborted: %d dispatches abandoned" n)
          in
          Obs.Trace.finish s outcome;
          Obs.emit t.obs s));
  let conns, accepted, pool =
    with_lock t (fun () ->
        let cs = Hashtbl.fold (fun _ c acc -> c :: acc) t.conns [] in
        Hashtbl.reset t.conns;
        let acc = t.accepted in
        t.accepted <- [];
        let p = t.pool in
        t.pool <- None;
        (cs, acc, p))
  in
  (* Stop the pool before closing connections: abandoned jobs counted by
     the aborted drain must not start executing against half-closed
     channels. Workers stuck inside a job blocked on I/O are unblocked
     by the closes below (Pool.stop does not join them). *)
  (match pool with Some p -> ignore (Pool.stop p) | None -> ());
  List.iter
    (fun c ->
      close_connection c (Transport.Transport_error "ORB shut down"))
    conns;
  (* Also close server-side connections so peers observe the shutdown and
     their connection caches reopen against a replacement. *)
  List.iter (fun sc -> try Communicator.close sc.scomm with _ -> ()) accepted

(* ---------------- exporting ---------------- *)

let objref_of t ~oid ~type_id =
  Objref.make ~proto:t.transport ~host:t.host ~port:(port t) ~oid ~type_id

let export t skel =
  let oid = Object_adapter.register t.oa skel in
  objref_of t ~oid ~type_id:(Skeleton.type_id skel)

let export_named t ~oid skel =
  Object_adapter.register_named t.oa ~oid skel;
  objref_of t ~oid ~type_id:(Skeleton.type_id skel)

let export_cached t ~key ~type_id build =
  let oid = Object_adapter.register_cached t.oa ~key build in
  objref_of t ~oid ~type_id

(* ---------------- client side: reply demultiplexer ---------------- *)

(* The per-connection reader thread: the only receiver this connection
   ever has. It runs with NO channel deadline — a deadline firing
   between the frame header and body would desynchronize the stream for
   every in-flight call; per-call deadlines are enforced at the waiter's
   condition variable instead, and an expired waiter kills the whole
   connection (below). *)
let mux_reader t conn mx =
  (* Park until the connection owes us a reply. Issuing the blocking
     transport read only while a call is registered keeps idle
     connections read-free — exactly the serialized client's behavior,
     which both the fault-injection plans (a [Stall_read] drawn at
     read-call time must land on the read for the call under test, not
     on a reader that has been parked inside the transport since the
     previous call) and the thread accounting at shutdown depend on.
     Returns [false] when the connection dies while idle. *)
  let await_work () =
    Locked.with_lock mx.mx_lock (fun () ->
        let rec wait () =
          if mx.mx_dead <> None then false
          else if Hashtbl.length mx.mx_pending > 0 then true
          else begin
            Locked.wait mx.mx_lock;
            wait ()
          end
        in
        wait ())
  in
  let deliver rep_id reply =
    let delivered =
      Locked.with_lock mx.mx_lock (fun () ->
          match Hashtbl.find_opt mx.mx_pending rep_id with
          | Some cell ->
              cell := Some reply;
              Hashtbl.remove mx.mx_pending rep_id;
              mx.mx_inflight <- mx.mx_inflight - 1;
              Locked.broadcast mx.mx_lock;
              Some mx.mx_inflight
          | None -> None)
    in
    match delivered with
    | Some n ->
        mux_gauge t mx n;
        true
    | None -> false
  in
  let rec loop () =
    if not (await_work ()) then ()
    else
    match Communicator.recv conn.comm with
    | (Protocol.Reply { Protocol.rep_id; _ }
      | Protocol.Locate_reply { rep_id; _ }
      | Protocol.Locate_forward { rep_id; _ }) as reply ->
        if deliver rep_id reply then loop ()
        else begin
          (* No waiter for this id. Deadline expiry kills the whole
             connection, so a live demux owes a reply to every id it is
             still reading — an unknown id means the stream no longer
             corresponds to what we sent (a corrupted or rewritten id).
             Poisoned: kill, so no later call can be handed the wrong
             payload. *)
          Obs.incr t.obs ~name:"client:orphan_replies";
          mux_kill conn mx
            (System_exception
               (Printf.sprintf
                  "reply id %d does not match any in-flight request \
                   (connection dropped)"
                  rep_id))
        end
    | Protocol.Request _ | Protocol.Locate_request _ ->
        mux_kill conn mx
          (System_exception "peer sent a non-reply where a reply was expected")
    | exception e -> mux_kill conn mx e
  in
  loop ()

(* ---------------- client side ---------------- *)

(* Get the cached connection to an endpoint, opening one if needed
   (paper: "Connections are cached and reused in HeidiRMI, and only if
   there is no available connection is a new connection opened").

   The blocking [Transport.connect] happens OUTSIDE the ORB mutex — a
   slow or hung connect must not stall every concurrent call and the
   stats counters. Losing a connect race is resolved first-wins: the
   cache entry that got there first is kept, ours is closed.

   Returns the connection plus whether WE opened it just now: a fresh
   connection that then fails on receive means the request most likely
   reached a live server, so it is never retried (duplicate-dispatch
   risk); only a cached (possibly stale) connection justifies the
   reconnect-and-retry path. *)
let get_connection t endpoint =
  match with_lock t (fun () -> Hashtbl.find_opt t.conns endpoint) with
  | Some c -> (c, false)
  | None -> (
      let proto_name, host, port = endpoint in
      let chan = Transport.connect ~proto:proto_name ~host ~port in
      let c_codec = ref t.proto.Protocol.name in
      let chan = meter_channel t (endpoint_key endpoint) c_codec chan in
      let mux =
        if t.mux_cfg.max_in_flight <= 1 then None
        else
          Some
            {
              mx_lock = Locked.create ~name:"mux" ~rank:Locked.Rank.mux;
              mx_pending = Hashtbl.create 16;
              mx_dead = None;
              mx_inflight = 0;
              mx_limit = t.mux_cfg.max_in_flight;
              mx_gauge = "client:in_flight:" ^ endpoint_key endpoint;
            }
      in
      let c =
        { comm = Communicator.wrap t.proto chan;
          conn_lock =
            Locked.create ~name:"conn.send" ~rank:Locked.Rank.communicator;
          mux;
          nego_lock = Locked.create ~name:"conn.nego" ~rank:Locked.Rank.nego;
          nego = (if t.codecs = [] then Nego_idle else Nego_fresh);
          c_codec }
      in
      let outcome =
        with_lock t (fun () ->
            match Hashtbl.find_opt t.conns endpoint with
            | Some winner -> `Lost winner
            | None ->
                Hashtbl.replace t.conns endpoint c;
                t.opened <- t.opened + 1;
                `Won)
      in
      match outcome with
      | `Won ->
          (* The reader starts only for the connection that actually
             enters the cache — a race loser is closed before any
             request can be sent on it. *)
          (match c.mux with
          | Some mx ->
              ignore (Locked.spawn "orb.mux_reader" (fun () -> mux_reader t c mx))
          | None -> ());
          (c, true)
      | `Lost winner ->
          (try Communicator.close c.comm with _ -> ());
          (winner, false))

let drop_connection t endpoint =
  (* The close (channel shutdown + demux teardown) runs outside the ORB
     lock, like [drop_this_connection] and [shutdown] already do: a
     lock-held close would stall every concurrent call behind this
     endpoint's teardown syscalls. *)
  let victim =
    with_lock t (fun () ->
        match Hashtbl.find_opt t.conns endpoint with
        | Some c ->
            Hashtbl.remove t.conns endpoint;
            Some c
        | None -> None)
  in
  match victim with
  | None -> ()
  | Some c ->
      close_connection c (Transport.Transport_error "connection closed locally")

(* Identity-aware drop for failure paths that hold the failed connection:
   with many waiters waking from one connection death at once, the first
   may drop-and-reconnect before the second reaches its handler — a
   blind [drop_connection] would then tear down the healthy replacement. *)
let drop_this_connection t endpoint c =
  with_lock t (fun () ->
      match Hashtbl.find_opt t.conns endpoint with
      | Some cur when cur == c -> Hashtbl.remove t.conns endpoint
      | _ -> ());
  close_connection c (Transport.Transport_error "connection closed locally")

let next_req_id t =
  with_lock t (fun () ->
      let id = t.next_req_id in
      t.next_req_id <- t.next_req_id + 1;
      id)

(* Tags a transport failure with the exchange phase it struck in.
   [`Send] means no reply bytes were read — retry-safe territory;
   [`Recv] means the request went out and anything may have happened.
   [fatal] tells the caller whether the connection itself is tainted and
   must leave the cache (every serialized failure is; a multiplexed call
   that timed out before even sending is not). *)
exception
  Exchange_failed of { phase : [ `Send | `Recv ]; fatal : bool; err : exn }

(* The historical exchange: the connection mutex held across the whole
   roundtrip, the per-call deadline installed on the channel itself.
   Still the entire story for [mux.max_in_flight <= 1] connections. *)
let exchange_serialized conn msg ~oneway ~deadline
    ~(span : Obs.Trace.span option) =
  Locked.with_lock conn.conn_lock @@ fun () ->
  Fun.protect
    ~finally:(fun () ->
      try Communicator.set_deadline conn.comm None with _ -> ())
    (fun () ->
      Communicator.set_deadline conn.comm deadline;
      let t0 = match span with Some _ -> Obs.Trace.now () | None -> 0. in
      (try Communicator.send conn.comm msg
       with e -> raise (Exchange_failed { phase = `Send; fatal = true; err = e }));
      let t1 =
        match span with
        | Some s ->
            let t1 = Obs.Trace.now () in
            s.Obs.Trace.send_s <- t1 -. t0;
            t1
        | None -> 0.
      in
      if oneway then None
      else
        match Communicator.recv conn.comm with
        | reply ->
            (match span with
            | Some s -> s.Obs.Trace.wait_s <- Obs.Trace.now () -. t1
            | None -> ());
            Some reply
        | exception e ->
            raise (Exchange_failed { phase = `Recv; fatal = true; err = e }))

(* The multiplexed exchange: register a waiter cell under the demux
   lock, send under the (short) connection write lock, then block on the
   condition variable until the reader delivers the reply, the
   connection dies, or the per-call deadline passes. OCaml's [Condition]
   has no timed wait, so deadline waits poll at [Transport.poll_interval]
   like the rest of the runtime; deadline-free waits park properly. *)
let exchange_mux t conn mx msg ~oneway ~deadline
    ~(span : Obs.Trace.span option) =
  let fail_ phase ~fatal err = raise (Exchange_failed { phase; fatal; err }) in
  let msg_id =
    match msg with
    | Protocol.Request r -> r.Protocol.req_id
    | Protocol.Locate_request { req_id; _ } -> req_id
    | Protocol.Reply _ | Protocol.Locate_reply _ | Protocol.Locate_forward _ ->
        0
  in
  let cell = ref None in
  (* Admission + registration, atomically with the death check: [mux_kill]
     wakes exactly the waiters registered at that instant, so a waiter
     that got in under the same lock section can never be missed.
     Registration happens BEFORE the send — the reply can overtake the
     sender's return. A dead connection fails fast as a send-phase error:
     nothing was sent, the retry engine treats it exactly like the stale
     cached connection it is. *)
  let admit_step () =
    Locked.with_lock mx.mx_lock (fun () ->
        let rec admit () =
          match mx.mx_dead with
          | Some err -> `Dead err
          | None ->
              if oneway || mx.mx_inflight < mx.mx_limit then begin
                let registered = not oneway in
                if registered then begin
                  Hashtbl.replace mx.mx_pending msg_id cell;
                  mx.mx_inflight <- mx.mx_inflight + 1;
                  (* Wake the reader: it parks on this condvar while
                     nothing is in flight and only enters the transport
                     read once it owes a reply. *)
                  Locked.broadcast mx.mx_lock
                end;
                `Admitted (registered, mx.mx_inflight)
              end
              else
                match deadline with
                | None ->
                    Locked.wait mx.mx_lock;
                    admit ()
                | Some d ->
                    let remaining = d -. Unix.gettimeofday () in
                    if remaining <= 0. then `Saturated else `Poll remaining
        in
        admit ())
  in
  let rec admit_loop () =
    match admit_step () with
    | `Poll remaining ->
        Thread.delay (Float.min Transport.poll_interval remaining);
        admit_loop ()
    | `Dead err -> fail_ `Send ~fatal:true err
    | `Saturated ->
        (* Never sent: the connection is healthy, just saturated.
           Not fatal — the cache entry stays. *)
        fail_ `Send ~fatal:false
          (Transport.Timeout
             (Printf.sprintf "timed out waiting for an in-flight slot to %s"
                (Communicator.peer conn.comm)))
    | `Admitted (registered, inflight_now) -> (registered, inflight_now)
  in
  let registered, inflight_now = admit_loop () in
  if registered then begin
    mux_gauge t mx inflight_now;
    (* Monotone max via CAS: losing a race means someone recorded an
       even higher peak, so losing is winning. *)
    let rec bump () =
      let cur = Atomic.get t.mux_peak in
      if
        inflight_now > cur
        && not (Atomic.compare_and_set t.mux_peak cur inflight_now)
      then bump ()
    in
    bump ()
  end;
  let unregister () =
    let n =
      Locked.with_lock mx.mx_lock (fun () ->
          if Hashtbl.mem mx.mx_pending msg_id then begin
            Hashtbl.remove mx.mx_pending msg_id;
            mx.mx_inflight <- mx.mx_inflight - 1;
            Locked.broadcast mx.mx_lock
          end;
          mx.mx_inflight)
    in
    mux_gauge t mx n
  in
  let t0 = match span with Some _ -> Obs.Trace.now () | None -> 0. in
  (try Locked.with_lock conn.conn_lock (fun () -> Communicator.send conn.comm msg)
   with e ->
     (* A failed send may have left a partial frame on the wire: the
        stream is desynchronized for every in-flight call. Kill. *)
     unregister ();
     mux_kill conn mx e;
     fail_ `Send ~fatal:true e);
  let t1 =
    match span with
    | Some s ->
        let t1 = Obs.Trace.now () in
        s.Obs.Trace.send_s <- t1 -. t0;
        t1
    | None -> 0.
  in
  if oneway then None
  else begin
    let await_step () =
      Locked.with_lock mx.mx_lock (fun () ->
          let rec await () =
            match !cell with
            | Some reply -> `Got reply
            | None -> (
                match mx.mx_dead with
                | Some err -> `Dead err
                | None -> (
                    match deadline with
                    | None ->
                        Locked.wait mx.mx_lock;
                        await ()
                    | Some d ->
                        let remaining = d -. Unix.gettimeofday () in
                        if remaining <= 0. then `Expired else `Poll remaining))
          in
          await ())
    in
    let rec await_loop () =
      match await_step () with
      | `Poll remaining ->
          Thread.delay (Float.min Transport.poll_interval remaining);
          await_loop ()
      | `Got reply ->
          (match span with
          | Some s -> s.Obs.Trace.wait_s <- Obs.Trace.now () -. t1
          | None -> ());
          Some reply
      | `Dead err ->
          unregister ();
          fail_ `Recv ~fatal:true err
      | `Expired ->
          unregister ();
          (* The stream still owes us a reply we will never consume;
             leaving the connection alive would hand that reply to some
             later call. Kill it — which is also what heals an endpoint
             whose reads stall: the cache entry goes, the next attempt
             dials fresh. Collateral waiters see a transport error
             (retry-classifiable), not our timeout. *)
          mux_kill conn mx
            (Transport.Transport_error
               (Printf.sprintf
                  "connection to %s closed: a call deadline expired \
                   mid-stream"
                  (Communicator.peer conn.comm)));
          fail_ `Recv ~fatal:true
            (Transport.Timeout
               (Printf.sprintf "reply %d from %s timed out" msg_id
                  (Communicator.peer conn.comm)))
    in
    await_loop ()
  end

let exchange_core t conn msg ~oneway ~deadline ~(span : Obs.Trace.span option)
    =
  match conn.mux with
  | None -> exchange_serialized conn msg ~oneway ~deadline ~span
  | Some mx -> exchange_mux t conn mx msg ~oneway ~deadline ~span

(* ---------------- client side: codec negotiation ---------------- *)

let nego_resolve conn state =
  Locked.with_lock conn.nego_lock (fun () ->
      conn.nego <- state;
      Locked.broadcast conn.nego_lock)

(* Substring search, for classifying a peer's error reply. Error path
   only — allocation is fine. *)
let contains_sub ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

(* Nothing registered on the demultiplexer: the offer's encoding switch
   will land on a quiet reply stream. Serialized connections are always
   quiet here — the roundtrip is atomic under the connection lock. *)
let conn_quiet conn =
  match conn.mux with
  | None -> true
  | Some mx -> Locked.with_lock mx.mx_lock (fun () -> mx.mx_inflight = 0)

(* The negotiation gate every send passes through. [`Plain]: proceed in
   the current encoding. [`Offer]: this call owns the connection's one
   offer. While an offer is in flight all other calls hold here — the
   hold-until-answer discipline both communicator re-pointings rely
   on. An offering call additionally waits for in-flight replies to
   drain, so an out-of-order earlier reply cannot arrive after the
   switch in the wrong encoding. *)
let nego_gate conn ~deadline ~can_offer =
  let step () =
    Locked.with_lock conn.nego_lock (fun () ->
        match conn.nego with
        | Nego_idle -> `Plain
        | Nego_fresh ->
            if not can_offer then `Plain
            else if conn_quiet conn then begin
              conn.nego <- Nego_offering;
              `Offer
            end
            else `Busy
        | Nego_offering -> (
            match deadline with
            | None ->
                Locked.wait conn.nego_lock;
                `Again
            | Some d ->
                let remaining = d -. Unix.gettimeofday () in
                if remaining <= 0. then `Expired else `Poll remaining))
  in
  let rec loop () =
    match step () with
    | `Plain -> `Plain
    | `Offer -> `Offer
    | `Again -> loop ()
    | `Busy ->
        (* Wait for the demux to drain; replies arrive on the reader
           thread, which does not signal our gate — poll. *)
        Thread.delay Transport.poll_interval;
        loop ()
    | `Poll remaining ->
        Thread.delay (Float.min Transport.poll_interval remaining);
        loop ()
    | `Expired ->
        (* Never sent; the connection is healthy, just mid-offer. *)
        raise
          (Exchange_failed
             {
               phase = `Send;
               fatal = false;
               err =
                 Transport.Timeout
                   (Printf.sprintf
                      "timed out behind a codec negotiation to %s"
                      (Communicator.peer conn.comm));
             })
  in
  loop ()

(* Run the connection's one offer: send [msg] with the offer slot
   attached, then act on what comes back. An answer re-points both
   directions of the communicator; no answer means the peer is older
   (or found nothing compatible) — stay on the base protocol. A
   deadline-era peer that predates negotiation rejects the offer's
   empty forced budget slot with a recoverable error reply and never
   dispatches, so that one shape is detected and the request re-sent
   once without the offer. *)
let exchange_offer t conn msg ~oneway ~deadline ~span =
  let offered =
    match msg with
    | Protocol.Request r ->
        Protocol.Request
          { r with Protocol.nego_offer = Protocol.Nego.offer_of t.codecs }
    | other -> other
  in
  let fallback () =
    Atomic.incr t.codec_fallbacks;
    Obs.incr t.obs ~name:"client:codec_fallback";
    nego_resolve conn Nego_idle
  in
  match exchange_core t conn offered ~oneway ~deadline ~span with
  | exception e ->
      (* Resolve without counting a fallback: the connection is failing,
         not declining — unblock any held callers and re-raise. *)
      nego_resolve conn Nego_idle;
      raise e
  | Some (Protocol.Reply r) when r.Protocol.nego_answer <> "" -> (
      let tok = r.Protocol.nego_answer in
      let chosen =
        (* Match the answer by name, then vet the version pair with the
           same predicate the server used: an old client and a new
           server (or vice versa) converge as long as [codec_compat]
           vouches that the two wire versions interoperate — each side
           then speaks its own implementation of the codec. *)
        match Protocol.Nego.parse_token tok with
        | Some (nm, ver) -> (
            match
              List.find_opt (fun p -> p.Protocol.name = nm) t.codecs
            with
            | Some p
              when ver = p.Protocol.version
                   || t.codec_compat ~name:nm ~offered:ver
                        ~local:p.Protocol.version ->
                Some p
            | Some _ | None -> None)
        | None -> None
      in
      match chosen with
      | Some p ->
          Communicator.set_protocol conn.comm p;
          conn.c_codec := p.Protocol.name;
          Atomic.incr t.codec_negotiations;
          Obs.incr t.obs ~name:"client:codec_negotiated";
          nego_resolve conn Nego_idle;
          Some (Protocol.Reply r)
      | None ->
          (* The peer answered a codec we never offered and has already
             switched its stream: we cannot follow. Poison the
             connection before anything is misread. *)
          nego_resolve conn Nego_idle;
          raise
            (Exchange_failed
               {
                 phase = `Recv;
                 fatal = true;
                 err =
                   System_exception
                     (Printf.sprintf
                        "peer answered unknown codec %S in negotiation" tok);
               }))
  | Some
      (Protocol.Reply { Protocol.status = Protocol.Status_system_error m; _ })
    when (match msg with
         | Protocol.Request { Protocol.budget_us = None; _ } -> true
         | _ -> false)
         && contains_sub ~sub:"malformed deadline slot" m ->
      (* The pre-negotiation deadline-era peer: it rejected the empty
         forced budget slot recoverably, without dispatching anything —
         re-sending the plain request is duplicate-safe. *)
      fallback ();
      exchange_core t conn msg ~oneway ~deadline ~span
  | resp ->
      (* A reply with no answer slot, or a non-reply (e.g. a forward):
         the peer did not negotiate. *)
      fallback ();
      resp

let exchange t conn msg ~oneway ~deadline ~(span : Obs.Trace.span option) =
  let can_offer =
    t.codecs <> []
    &&
    match msg with
    | Protocol.Request r -> not r.Protocol.oneway
    | _ -> false
  in
  match nego_gate conn ~deadline ~can_offer with
  | `Plain -> exchange_core t conn msg ~oneway ~deadline ~span
  | `Offer -> exchange_offer t conn msg ~oneway ~deadline ~span

(* Counted atomically, NOT under the ORB lock: this runs on the exchange
   failure path from arbitrary caller threads and pool domains, and the
   lock guarded nothing about it (the C404 pattern). *)
let count_failure t e =
  match e with Transport.Timeout _ -> Atomic.incr t.timeouts | _ -> ()

let breaker_failure t key e =
  match (t.breaker, Retry.classify e) with
  | Some br, (Retry.Transient | Retry.Deadline) -> Breaker.failure br key
  | _ -> ()

let breaker_success t key =
  match t.breaker with Some br -> Breaker.success br key | None -> ()

(* Absolute deadline for one call: the per-call timeout, else the ORB
   default, else none. *)
let call_deadline t timeout =
  match (timeout, t.call_timeout) with
  | Some s, _ | None, Some s -> Some (Unix.gettimeofday () +. s)
  | None, None -> None

(* ---------------- replica selection ---------------- *)

(* In-flight hint for one endpoint: the cached connection's demux
   counter. Caller holds the ORB mutex (for the connection table); the
   counter itself is written under its demux lock, so this is a hint,
   not an invariant — exactly what load balancing needs. No cached
   connection, or a serialized one, counts as idle. *)
let inflight_hint t ep =
  match Hashtbl.find_opt t.conns ep with
  | Some { mux = Some mx; _ } -> mx.mx_inflight
  | Some _ | None -> 0

(* Power-of-two-choices over per-endpoint in-flight counts: draw two
   candidates, keep the less loaded — near-optimal load spread for a
   fraction of least-loaded's bookkeeping (the classic balls-into-bins
   result). Draws happen under the ORB mutex together with the
   in-flight reads so the two hints are coherent. *)
let pick_endpoint t = function
  | [] -> None
  | [ ep ] -> Some ep
  | candidates ->
      let arr = Array.of_list candidates in
      let n = Array.length arr in
      Some
        (with_lock t (fun () ->
             let a = arr.(Random.State.int t.rng n) in
             let b = arr.(Random.State.int t.rng n) in
             if inflight_hint t b < inflight_hint t a then b else a))

(* The fault-tolerant request/reply engine shared by [invoke_raw] and
   [locate]: replica selection (power-of-two-choices, breaker-open
   endpoints skipped), per-endpoint circuit-breaker gate, then attempts
   under the retry policy — a failure on one replica fails over to the
   next under the SAME retry budget, and the duplicate-safety taxonomy
   still decides what may be re-sent at all. [make_msg] builds the wire
   message for the chosen endpoint's single-endpoint view, so every
   envelope target stays parseable by pre-replication peers. [notify]
   feeds each failure to the client interceptor chain.
   [maybe_dispatched] is called on any failure after which the request
   may be executing on a server (fresh-connection receive failures) —
   callers with a duplicate-safe fallback of their own (forward-cache
   invalidation, naming re-resolve) must not re-send after it fires. *)
let rec request_reply t target ~make_msg ~oneway ~timeout ~notify ~span
    ?(maybe_dispatched = fun () -> ()) () =
  let eps = Objref.endpoints target in
  let multi = match eps with _ :: _ :: _ -> true | _ -> false in
  let deadline = call_deadline t timeout in
  (* The wire budget for ONE attempt: the remaining slice of the call
     deadline, re-read at each (re)send so a retry or failover carries
     what is actually left, not the original allowance. Relative µs —
     no clock synchronization with the server is assumed. *)
  let budget_now () =
    match deadline with
    | Some d when t.propagate_deadlines ->
        Some (max 0 (int_of_float ((d -. Unix.gettimeofday ()) *. 1e6)))
    | Some _ | None -> None
  in
  let available ep =
    match t.breaker with
    | None -> true
    | Some br -> Breaker.available br (endpoint_key ep)
  in
  (* Endpoints that already failed during THIS call. Once every
     available endpoint has been tried the set clears: a long retry
     budget may revisit (the per-endpoint breakers decide whether it
     should). *)
  let tried = ref [] in
  let candidates () =
    let avail = List.filter available eps in
    match List.filter (fun ep -> not (List.mem ep !tried)) avail with
    | [] ->
        tried := [];
        avail
    | untried -> untried
  in
  let count_failover () =
    if multi then begin
      Atomic.incr t.failovers;
      Obs.incr t.obs ~name:"client:failover"
    end
  in
  (* [gate_spins] bounds the selection/gate race: an endpoint can trip
     between the read-only availability check and [before_call]. *)
  let rec attempt n gate_spins =
    let fail e =
      notify e;
      raise e
    in
    let retry_after ~failed_ep e =
      (* The aggregate retry budget gates every re-attempt — plain
         retries, failovers, and probe-failure failovers alike. An empty
         bucket means the client fleet is already retrying at its bound:
         fail fast (Permanent class) instead of joining the storm. *)
      if not (Retry.Budget.try_withdraw t.retry_budget) then begin
        Obs.incr t.obs ~name:"client:retry_budget_exhausted";
        fail
          (Retry.Budget_exhausted
             (Printf.sprintf "retry budget exhausted (last error: %s)"
                (Printexc.to_string e)))
      end;
      Atomic.incr t.retries;
      (match span with
      | Some s -> s.Obs.Trace.retries <- s.Obs.Trace.retries + 1
      | None -> ());
      if not (List.mem failed_ep !tried) then tried := failed_ep :: !tried;
      count_failover ();
      notify e;
      (* Backoff clamped to the remaining call budget: never sleep past
         the deadline only to fail on wakeup. *)
      let nap = Retry.delay_for t.retry ~attempt:n in
      let nap =
        match deadline with
        | Some d -> Float.max 0. (Float.min nap (d -. Unix.gettimeofday ()))
        | None -> nap
      in
      Thread.delay nap;
      attempt (n + 1) 0
    in
    (* Fail fast when the deadline has already passed: an attempt that
       cannot possibly answer in time must not be sent (the server
       would shed it as expired anyway — with propagation off it would
       even execute, pure zombie work). *)
    (match deadline with
    | Some d when Unix.gettimeofday () >= d ->
        let e =
          Transport.Timeout
            (Printf.sprintf "call deadline expired before attempt %d" n)
        in
        count_failure t e;
        fail e
    | _ -> ());
    (* When every replica's breaker is open, gate on the primary anyway:
       [before_call] then either fast-fails (advancing the breaker's
       accounting exactly as in the single-endpoint case) or grants a
       probe slot that opened this instant. *)
    let ep =
      match pick_endpoint t (candidates ()) with
      | Some ep -> ep
      | None -> Objref.endpoint target
    in
    let key = endpoint_key ep in
    let go () =
      match get_connection t ep with
      | exception e ->
          (* Connect failure: nothing was sent, always safe to retry —
             on this replica or the next. *)
          breaker_failure t key e;
          count_failure t e;
          if Retry.retryable t.retry ~attempt:n e then retry_after ~failed_ep:ep e
          else fail e
      | conn, fresh -> (
          match
            exchange t conn
              (make_msg (Objref.at_endpoint target ep) (budget_now ()))
              ~oneway ~deadline ~span
          with
          | resp ->
              breaker_success t key;
              (* Successes replenish the retry budget — the ~10% ratio
                 that keeps the aggregate retry rate bounded. *)
              Retry.Budget.deposit t.retry_budget;
              resp
          | exception Exchange_failed { phase; fatal; err = e } ->
              (* Never leave a failed connection poisoning the cache —
                 unless the failure says the connection itself is fine
                 (e.g. an admission timeout on a saturated demux). *)
              if fatal then drop_this_connection t ep conn;
              breaker_failure t key e;
              count_failure t e;
              let retry_safe =
                match phase with
                | `Send -> true
                | `Recv ->
                    (* Only the stale-cached-connection case: the peer
                       closed a connection we reused, before our request
                       can have been dispatched against a live server. A
                       fresh connection failing mid-receive, or a
                       deadline timeout, may mean the call is executing —
                       never re-sent, not even to another replica. *)
                    not fresh
              in
              if not retry_safe then maybe_dispatched ();
              if retry_safe && Retry.retryable t.retry ~attempt:n e then
                retry_after ~failed_ep:ep e
              else fail e)
    in
    match t.breaker with
    | None -> go ()
    | Some br -> (
        match Breaker.before_call br key with
        | Breaker.Proceed -> go ()
        | Breaker.Fast_fail ->
            (* Tripped (or tripped between selection and gate). Another
               available replica: fail over without burning a retry
               attempt. None left: fast-fail the call. *)
            if not (List.mem ep !tried) then tried := ep :: !tried;
            let alternatives =
              List.filter (fun e' -> e' <> ep && available e') eps
            in
            if alternatives <> [] && gate_spins < 2 * List.length eps then begin
              count_failover ();
              attempt n (gate_spins + 1)
            end
            else
              fail
                (Breaker.Circuit_open
                   (Printf.sprintf "circuit open for endpoint %s" key))
        | Breaker.Probe -> (
            (* Half-open: one lightweight Locate_request ping decides
               whether this replica is back before real traffic flows. *)
            match probe t target ~endpoint:ep ~timeout with
            | () ->
                Breaker.success br key;
                go ()
            | exception e ->
                Breaker.failure br key;
                count_failure t e;
                (* The probe never dispatches anything, so failing over
                   is duplicate-safe — under the same retry budget. *)
                if multi && Retry.retryable t.retry ~attempt:n e then
                  retry_after ~failed_ep:ep e
                else fail e))
  in
  attempt 1 0

(* The half-open probe: a single-attempt Locate_request on a fresh
   connection to one specific replica. Any decoded locate answer (found
   or not, forwarded or not) proves the endpoint is serving again. *)
and probe t target ~endpoint ~timeout =
  let req_id = next_req_id t in
  let msg =
    Protocol.Locate_request
      { req_id; target = Objref.at_endpoint target endpoint }
  in
  let deadline = call_deadline t timeout in
  let conn, _ = get_connection t endpoint in
  match exchange t conn msg ~oneway:false ~deadline ~span:None with
  | Some (Protocol.Locate_reply _ | Protocol.Locate_forward _) -> ()
  | Some _ | None ->
      drop_this_connection t endpoint conn;
      raise (System_exception "unexpected message in reply to breaker probe")
  | exception Exchange_failed { fatal; err = e; _ } ->
      if fatal then drop_this_connection t endpoint conn;
      raise e

(* ---------------- client spans ---------------- *)

let start_client_span t target ~op =
  if Obs.enabled t.obs then begin
    let s =
      Obs.Trace.start_client ~operation:op
        ~endpoint:(endpoint_key (Objref.endpoint target))
        ()
    in
    (match t.breaker with
    | Some br ->
        s.Obs.Trace.breaker <-
          Some
            (Breaker.state_to_string
               (Breaker.state br (endpoint_key (Objref.endpoint target))))
    | None -> ());
    Some s
  end
  else None

let outcome_of_exn = function
  | Remote_exception { repo_id; _ } -> Obs.Trace.User_exception repo_id
  | System_exception m -> Obs.Trace.System_error m
  | e -> Obs.Trace.Failed (Printexc.to_string e)

let finish_client_span t span outcome =
  match span with
  | None -> ()
  | Some s ->
      Obs.Trace.finish s outcome;
      Obs.observe t.obs
        ~name:("invoke:" ^ s.Obs.Trace.operation)
        (Obs.Trace.duration s);
      Obs.emit t.obs s

(* Desynchronized-stream teardown when the call went through replica
   selection: the failing envelope may have travelled over any of the
   target's endpoints, so drop them all (rare, and correctness beats
   keeping a possibly-poisoned connection warm). *)
let drop_target_connections t target =
  List.iter (drop_connection t) (Objref.endpoints target)

(* The forward cache is keyed by the logical target's printed form —
   the same identity the application holds. *)
let forward_key target = Objref.to_string target

let cached_forward t target =
  with_lock t (fun () -> Hashtbl.find_opt t.fwd_cache (forward_key target))

let note_forward t target fwd =
  with_lock t (fun () ->
      Hashtbl.replace t.fwd_cache (forward_key target) fwd;
      t.forwards_followed <- t.forwards_followed + 1);
  Obs.incr t.obs ~name:"client:forwards"

let invalidate_forward t target =
  with_lock t (fun () -> Hashtbl.remove t.fwd_cache (forward_key target))

(* Redirect chains are honoured up to this depth per call; past it the
   servers are pointing at each other and the call fails loudly. *)
let max_forward_hops = 4

(* The invocation core, shared by [invoke_raw] (which owns a bare span)
   and [invoke] (which also times the marshal/unmarshal phases around
   it). The caller's trace context rides in the request's
   service-context slot; disabled tracing sends the empty context,
   which encodes to bytes identical to the pre-slot protocol.

   [dispatched] is set as soon as any attempt may have reached a
   servant; callers that re-resolve and re-send on failure (the naming
   client) must check it to stay duplicate-safe. *)
let invoke_raw_spanned t target ~op ~oneway ~timeout ~span ~dispatched payload
    =
  let req_id = next_req_id t in
  (match span with Some s -> s.Obs.Trace.req_id <- req_id | None -> ());
  let trace_ctx =
    match span with Some s -> Obs.Trace.encode_context s | None -> ""
  in
  let req =
    Interceptor.apply_request t.client_chain
      {
        Protocol.req_id;
        target;
        operation = op;
        oneway;
        payload;
        trace_ctx;
        budget_us = None;
        nego_offer = "";
      }
  in
  (* Honour interceptor rewrites of the oneway flag: the wire message
     carries [req.oneway], so the reply-wait decision must follow it —
     waiting for a reply the server will never send would hang until
     the deadline. *)
  let oneway = req.Protocol.oneway in
  let logical = req.Protocol.target in
  let notify e = Interceptor.apply_error t.client_chain req e in
  let maybe_dispatched () = dispatched := true in
  (* [actual] is where the call goes this hop: the logical target, a
     cached redirect, or a Locate_forward received mid-call.
     [via_forward] marks hops whose failure should invalidate the cache
     and — when duplicate-safe — fall back to the logical target. *)
  let rec call ~hops ~via_forward actual =
    (* [budget] is stamped by [request_reply] per attempt: each retry or
       failover re-reads the remaining call deadline, so the wire slot
       always carries what is actually left, not the original timeout. *)
    let make_msg tgt budget =
      Protocol.Request { req with Protocol.target = tgt; budget_us = budget }
    in
    match
      request_reply t actual ~make_msg ~oneway ~timeout ~notify ~span
        ~maybe_dispatched ()
    with
    | exception e when via_forward ->
        (* The forwarded placement failed. Whatever the failure, stop
           trusting the cached redirect; re-send against the logical
           target only when nothing can have dispatched (fast-fail or a
           send-phase-class transient) — the duplicate-safety taxonomy
           outranks the redirect. *)
        invalidate_forward t logical;
        let duplicate_safe =
          (not !dispatched)
          &&
          match e with
          | Breaker.Circuit_open _ -> true
          | e -> Retry.classify e = Retry.Transient
        in
        if duplicate_safe then call ~hops ~via_forward:false logical
        else raise e
    | None -> None
    | Some (Protocol.Reply reply) -> (
        let { Protocol.rep_id; status; payload; _ } =
          Interceptor.apply_reply t.client_chain req reply
        in
        if rep_id <> req_id then begin
          (* The stream is desynchronized: whatever reply belongs to
             this request is still in flight, and a later caller reusing
             the cached connection would be handed it. Never reuse the
             connection. *)
          drop_target_connections t actual;
          raise
            (System_exception
               (Printf.sprintf
                  "reply id %d does not match request id %d (connection \
                   dropped)"
                  rep_id req_id))
        end;
        match status with
        | Protocol.Status_ok -> Some payload
        | Protocol.Status_user_exception repo_id ->
            raise
              (Remote_exception
                 { repo_id; payload; codec = t.proto.Protocol.codec })
        | Protocol.Status_system_error m -> raise (System_exception m))
    | Some (Protocol.Locate_forward { rep_id; target = fwd }) ->
        if rep_id <> req_id then begin
          drop_target_connections t actual;
          raise
            (System_exception
               "forward reply id mismatch (connection dropped)")
        end;
        if hops >= max_forward_hops then
          raise
            (System_exception
               (Printf.sprintf
                  "location-forward chain exceeded %d hops for %s"
                  max_forward_hops (Objref.to_string logical)));
        (* A GIOP-style redirect: remember it for every later call on
           this logical target, then re-issue this one transparently.
           Nothing dispatched — re-sending is duplicate-safe. *)
        note_forward t logical fwd;
        call ~hops:(hops + 1) ~via_forward:true fwd
    | Some
        (Protocol.Request _ | Protocol.Locate_request _
        | Protocol.Locate_reply _) ->
        (* Equally desynchronized: a non-reply where a reply belongs. *)
        drop_target_connections t actual;
        raise
          (System_exception "peer sent a non-reply where a reply was expected")
  in
  match cached_forward t logical with
  | Some fwd -> call ~hops:1 ~via_forward:true fwd
  | None -> call ~hops:0 ~via_forward:false logical

let invoke_raw t target ~op ?(oneway = false) ?timeout payload =
  let span = start_client_span t target ~op in
  match
    invoke_raw_spanned t target ~op ~oneway ~timeout ~span
      ~dispatched:(ref false) payload
  with
  | result ->
      finish_client_span t span Obs.Trace.Ok;
      result
  | exception e ->
      finish_client_span t span (outcome_of_exn e);
      raise e

(* GIOP-style LocateRequest: does the peer's adapter know this oid?
   Locate (like the breaker's half-open probe) is control-plane traffic:
   it carries no trace context and opens no span. A reply carrying a
   forward — in either encoding — counts as found: the peer knows where
   the object lives. *)
let locate t ?timeout target =
  let req_id = next_req_id t in
  (* Locate carries no deadline slot: it is control-plane traffic, like
     the breaker's half-open probe, and pre-budget peers must keep
     parsing it unchanged. *)
  let make_msg tgt _budget = Protocol.Locate_request { req_id; target = tgt } in
  match
    request_reply t target ~make_msg ~oneway:false ~timeout
      ~notify:(fun _ -> ())
      ~span:None ()
  with
  | Some (Protocol.Locate_reply { rep_id; found; forward = _ }) ->
      if rep_id <> req_id then begin
        drop_target_connections t target;
        raise (System_exception "locate reply id mismatch (connection dropped)")
      end
      else found
  | Some (Protocol.Locate_forward { rep_id; _ }) ->
      if rep_id <> req_id then begin
        drop_target_connections t target;
        raise (System_exception "locate reply id mismatch (connection dropped)")
      end
      else true
  | Some _ ->
      drop_target_connections t target;
      raise (System_exception "unexpected message in reply to locate")
  | None -> raise (System_exception "no reply to locate")

let invoke_with t target ~op ~oneway ~timeout ~dispatched marshal =
  let codec = t.proto.Protocol.codec in
  let span = start_client_span t target ~op in
  match
    let e = codec.Wire.Codec.encoder () in
    marshal e;
    let payload = e.Wire.Codec.finish () in
    (* Marshalling starts right at span creation, so the span's own
       start timestamp doubles as the phase origin — one clock read
       saved per traced call. *)
    (match span with
    | Some s -> s.Obs.Trace.marshal_s <- Obs.Trace.now () -. s.Obs.Trace.started_at
    | None -> ());
    match
      invoke_raw_spanned t target ~op ~oneway ~timeout ~span ~dispatched
        payload
    with
    | Some payload ->
        let t1 = match span with Some _ -> Obs.Trace.now () | None -> 0. in
        let d = codec.Wire.Codec.decoder payload in
        (match span with
        | Some s -> s.Obs.Trace.unmarshal_s <- Obs.Trace.now () -. t1
        | None -> ());
        Some d
    | None -> None
  with
  | result ->
      finish_client_span t span Obs.Trace.Ok;
      result
  | exception e ->
      finish_client_span t span (outcome_of_exn e);
      raise e

let invoke t target ~op ?(oneway = false) ?timeout marshal =
  invoke_with t target ~op ~oneway ~timeout ~dispatched:(ref false) marshal

(* A smart proxy (Section 5: Orbix smart proxies / Visibroker smart
   stubs) bound to this ORB's protocol codec. *)
let smart_proxy t ?capacity ?invalidate_on target =
  let raw target ~op payload =
    match invoke_raw t target ~op payload with
    | Some reply -> reply
    | None ->
        (* Reachable when an interceptor rewrites the call to oneway:
           there is no reply payload to cache or decode. Diagnosable
           failure, not a dead proxy thread. *)
        raise
          (System_exception
             (Printf.sprintf
                "smart proxy: operation %S completed as oneway, no reply to cache"
                op))
  in
  Smart.create ?capacity ?invalidate_on ~codec:t.proto.Protocol.codec raw target

let connections_opened t = with_lock t (fun () -> t.opened)
let requests_served t = Atomic.get t.served

type stats = {
  opened : int;
  served : int;
  retries : int;
  timeouts : int;
  failovers : int;
  forwards : int;
  breaker_trips : int;
  breaker_fast_fails : int;
  breaker_states : (string * string) list;
  server_connections : int;
  rejected : int;
  expired_pre_admission : int;
  expired_in_queue : int;
  retry_budget_balance : int;
  retry_budget_exhaustions : int;
  evicted : int;
  drains_clean : int;
  drain_aborted_jobs : int;
  pool_depth : int;
  pool_active : int;
  mux_in_flight : int;
  mux_peak_in_flight : int;
  codec_negotiations : int;
  codec_fallbacks : int;
}

let stats t =
  let ( opened,
        forwards,
        evicted,
        drains_clean,
        drain_aborted_jobs,
        server_connections,
        mux_in_flight,
        pool ) =
    with_lock t (fun () ->
        (* Count only live connections: a closed communicator may linger
           in [t.accepted] until its serving thread finishes unwinding,
           and must not inflate the gauge. *)
        ( t.opened,
          t.forwards_followed,
          t.evicted,
          t.drains_clean,
          t.drain_aborted_jobs,
          List.length
            (List.filter
               (fun c -> not (Communicator.is_closed c.scomm))
               t.accepted),
          (* Racy-by-design snapshot of the per-connection counters:
             each is written under its own demux lock; the sum is a
             point-in-time gauge, not an invariant. *)
          Hashtbl.fold
            (fun _ c acc ->
              match c.mux with Some mx -> acc + mx.mx_inflight | None -> acc)
            t.conns 0,
          t.pool ))
  in
  let breaker_trips, breaker_fast_fails, breaker_states =
    match t.breaker with
    | Some br ->
        ( Breaker.trips br,
          Breaker.fast_fails br,
          List.map
            (fun (key, st) -> (key, Breaker.state_to_string st))
            (Breaker.states br) )
    | None -> (0, 0, [])
  in
  (* Pool introspection outside the ORB lock: the pool has its own. *)
  let pool_depth, pool_active =
    match pool with Some p -> (Pool.depth p, Pool.active p) | None -> (0, 0)
  in
  {
    opened;
    served = Atomic.get t.served;
    retries = Atomic.get t.retries;
    timeouts = Atomic.get t.timeouts;
    failovers = Atomic.get t.failovers;
    forwards;
    breaker_trips;
    breaker_fast_fails;
    breaker_states;
    server_connections;
    rejected = Atomic.get t.rejected;
    expired_pre_admission = Atomic.get t.expired_pre_admission;
    expired_in_queue = Atomic.get t.expired_in_queue;
    retry_budget_balance = Retry.Budget.balance t.retry_budget;
    retry_budget_exhaustions = Retry.Budget.exhaustions t.retry_budget;
    evicted;
    drains_clean;
    drain_aborted_jobs;
    pool_depth;
    pool_active;
    mux_in_flight;
    mux_peak_in_flight = Atomic.get t.mux_peak;
    codec_negotiations = Atomic.get t.codec_negotiations;
    codec_fallbacks = Atomic.get t.codec_fallbacks;
  }

(* The stats snapshot as one JSON object — what an operator scrapes to
   debug a failover decision after the fact. *)
let stats_to_json (s : stats) =
  Obs.Jout.(
    obj
      [
        ("opened", int s.opened);
        ("served", int s.served);
        ("retries", int s.retries);
        ("timeouts", int s.timeouts);
        ("failovers", int s.failovers);
        ("forwards", int s.forwards);
        ("breaker_trips", int s.breaker_trips);
        ("breaker_fast_fails", int s.breaker_fast_fails);
        ( "breaker_states",
          obj (List.map (fun (k, st) -> (k, str st)) s.breaker_states) );
        ("server_connections", int s.server_connections);
        ("rejected", int s.rejected);
        ("expired_pre_admission", int s.expired_pre_admission);
        ("expired_in_queue", int s.expired_in_queue);
        ("retry_budget_balance", int s.retry_budget_balance);
        ("retry_budget_exhaustions", int s.retry_budget_exhaustions);
        ("evicted", int s.evicted);
        ("drains_clean", int s.drains_clean);
        ("drain_aborted_jobs", int s.drain_aborted_jobs);
        ("pool_depth", int s.pool_depth);
        ("pool_active", int s.pool_active);
        ("mux_in_flight", int s.mux_in_flight);
        ("mux_peak_in_flight", int s.mux_peak_in_flight);
        ("codec_negotiations", int s.codec_negotiations);
        ("codec_fallbacks", int s.codec_fallbacks);
      ])

let breaker_state t target =
  match t.breaker with
  | None -> None
  | Some br -> Some (Breaker.state br (endpoint_key (Objref.endpoint target)))

(* Server-side location forwarding: after [set_forward], requests and
   locates naming [oid] on this ORB are answered with a GIOP-style
   redirect to [target] instead of being dispatched. *)
let set_forward t ~oid target = Object_adapter.set_forward t.oa ~oid target
let clear_forward t ~oid = Object_adapter.clear_forward t.oa ~oid

(* Client-side introspection of the redirect cache (tests). *)
let cached_forward_for t target = cached_forward t target
let drop_cached_forward t target = invalidate_forward t target

let key_counter = Atomic.make 1
let servant_key () = Atomic.fetch_and_add key_counter 1

(* ------------------------------------------------------------------ *)
(* Bootstrap naming                                                    *)
(* ------------------------------------------------------------------ *)

(* The paper's object references are self-contained, but something must
   hand out the *first* one. HeidiRMI's answer is the bootstrap port
   (Section 3.1); this puts a name registry behind it at a well-known
   oid, so a client that knows only host:port can resolve its way in. *)
module Bootstrap = struct
  let type_id = "IDL:Heidi/Bootstrap:1.0"
  let oid = "bootstrap"


  let skeleton registry =
    Skeleton.create ~type_id
      [
        ( "bind",
          fun args _res ->
            let name = args.Wire.Codec.get_string () in
            match Serial.get_byref args with
            | Some r -> Hashtbl.replace registry name r
            | None -> Hashtbl.remove registry name );
        ( "resolve",
          fun args res ->
            let name = args.Wire.Codec.get_string () in
            match Hashtbl.find_opt registry name with
            | Some r -> Serial.put_byref res (Some r)
            | None -> failwith (Printf.sprintf "bootstrap: name %S is not bound" name)
        );
        ( "unbind",
          fun args _res ->
            Hashtbl.remove registry (args.Wire.Codec.get_string ()) );
        ( "list",
          fun _args res ->
            let names =
              List.sort compare
                (Hashtbl.fold (fun k _ acc -> k :: acc) registry [])
            in
            res.Wire.Codec.put_len (List.length names);
            List.iter res.Wire.Codec.put_string names );
      ]

  let serve t =
    let registry = Hashtbl.create 16 in
    let r = export_named t ~oid (skeleton registry) in
    t.bootstrap_registry <- Some registry;
    r

  let reference ~proto ~host ~port =
    Objref.make ~proto ~host ~port ~oid ~type_id

  let bind t ~name objref =
    match t.bootstrap_registry with
    | Some registry -> Hashtbl.replace registry name objref
    | None -> invalid_arg "Bootstrap.bind: serve this ORB first"

  let resolve t boot ~name =
    match
      invoke t boot ~op:"resolve" (fun e -> e.Wire.Codec.put_string name)
    with
    | Some d -> (
        match Serial.get_byref d with
        | Some r -> r
        | None -> raise (System_exception "bootstrap returned a nil reference"))
    | None -> assert false

  let unbind t boot ~name =
    ignore
      (invoke t boot ~op:"bind" (fun e ->
           e.Wire.Codec.put_string name;
           Serial.put_byref e None))

  let list_names t boot =
    match invoke t boot ~op:"list" (fun _ -> ()) with
    | Some d ->
        let n = d.Wire.Codec.get_len () in
        List.init n (fun _ -> d.Wire.Codec.get_string ())
    | None -> assert false
end

(* ------------------------------------------------------------------ *)
(* Lease-based naming facade                                           *)
(* ------------------------------------------------------------------ *)

(* [Naming] (the compilation unit) is ORB-independent; this facade binds
   its two halves to a live ORB: [serve] exports the servant, the client
   calls go through [invoke], and [call] adds the refresh loop the lease
   protocol implies — re-resolve on lease expiry (inside [current]) or
   when every replica of the cached set is unreachable. *)
module Naming = struct
  include Naming

  let serve ?config ?(oid = Naming.default_oid) t =
    let registry = Naming.create ?config () in
    let nref = export_named t ~oid (Naming.skeleton registry) in
    (registry, nref)

  let invoker ?timeout t : Naming.invoker =
   fun target ~op marshal -> invoke t target ~op ?timeout marshal

  let register ?timeout t nref ~name provider ~ttl =
    Naming.register_via (invoker ?timeout t) nref ~name provider ~ttl

  let unregister ?timeout t nref ~name provider =
    Naming.unregister_via (invoker ?timeout t) nref ~name provider

  let resolve ?timeout t nref ~name =
    Naming.resolve_via (invoker ?timeout t) nref ~name

  let list ?timeout t nref = Naming.list_via (invoker ?timeout t) nref

  let resolver ?timeout t nref ~name =
    Naming.resolver_via (invoker ?timeout t) nref ~name

  (* One call through a resolver. On a failure that proves the cached
     placement dead WITHOUT the request possibly executing (circuit
     open, or a transient failure with no dispatch risk), the lease
     cache is dropped and the call re-resolved and re-sent exactly once
     — the duplicate-safety taxonomy outranks freshness, so an
     ambiguous failure (deadline, fresh-connection receive error)
     propagates instead of re-sending. *)
  let call t rs ~op ?(oneway = false) ?timeout marshal =
    let attempt () =
      let dispatched = ref false in
      let target = Naming.current rs in
      match invoke_with t target ~op ~oneway ~timeout ~dispatched marshal with
      | result -> Ok result
      | exception e -> Error (e, !dispatched)
    in
    match attempt () with
    | Ok r -> r
    | Error (e, dispatched) ->
        let refresh_safe =
          (not dispatched)
          &&
          match e with
          | Breaker.Circuit_open _ -> true
          | Remote_exception _ | System_exception _ -> false
          | e -> Retry.classify e = Retry.Transient
        in
        if not refresh_safe then raise e
        else begin
          Naming.invalidate rs;
          match attempt () with Ok r -> r | Error (e, _) -> raise e
        end
end

(* ------------------------------------------------------------------ *)
(* Observability facade                                                *)
(* ------------------------------------------------------------------ *)

(* Re-export the obs library under the ORB's namespace and add the one
   piece that needs ORB types: a stock interceptor feeding the event
   counters, composable with user chains on either side. *)
module Obs = struct
  include Obs

  let interceptor obs =
    Interceptor.make "obs-metrics"
      ~on_request:(fun req ->
        incr obs ~name:("req:" ^ req.Protocol.operation);
        req)
      ~on_reply:(fun req rep ->
        (match rep.Protocol.status with
        | Protocol.Status_ok -> incr obs ~name:("ok:" ^ req.Protocol.operation)
        | Protocol.Status_user_exception _ ->
            incr obs ~name:("uexn:" ^ req.Protocol.operation)
        | Protocol.Status_system_error _ ->
            incr obs ~name:("serr:" ^ req.Protocol.operation));
        rep)
      ~on_error:(fun req _e ->
        incr obs ~name:("err:" ^ req.Protocol.operation))
end
