(* Re-export the runtime's submodules: [Orb] is the library's facade. *)
module Objref = Objref
module Dispatch = Dispatch
module Protocol = Protocol
module Transport = Transport
module Communicator = Communicator
module Skeleton = Skeleton
module Object_adapter = Object_adapter
module Serial = Serial
module Interceptor = Interceptor
module Smart = Smart
module Retry = Retry
module Breaker = Breaker

let src = Logs.Src.create "orb" ~doc:"HeidiRMI ORB runtime"

module Log = (val Logs.src_log src : Logs.LOG)

exception Remote_exception of {
  repo_id : string;
  payload : string;
  codec : Wire.Codec.t;
}

exception System_exception of string

let () =
  Printexc.register_printer (function
    | Remote_exception { repo_id; _ } ->
        Some (Printf.sprintf "Orb.Remote_exception(%s)" repo_id)
    | System_exception m -> Some (Printf.sprintf "Orb.System_exception: %s" m)
    | _ -> None)

type t = {
  proto : Protocol.t;
  strat : Dispatch.strategy;
  transport : string;
  host : string;
  cfg_port : int;
  call_timeout : float option;  (* default per-call deadline, seconds *)
  retry : Retry.policy;
  breaker : Breaker.t option;
  oa : Object_adapter.t;
  mutex : Mutex.t;  (* guards the mutable fields below *)
  mutable listener : Transport.listener option;
  mutable bound_port : int;
  mutable running : bool;
  conns : (string * string * int, conn) Hashtbl.t;  (* endpoint -> cached conn *)
  client_chain : Interceptor.chain;
  server_chain : Interceptor.chain;
  mutable accepted : Communicator.t list;  (* server-side connections *)
  mutable next_req_id : int;
  mutable opened : int;  (* outbound connections ever opened *)
  mutable served : int;  (* requests dispatched *)
  mutable retries : int;  (* attempts beyond the first, across all calls *)
  mutable timeouts : int;  (* calls that hit their deadline *)
  mutable bootstrap_registry : (string, Objref.t) Hashtbl.t option;
}

and conn = { comm : Communicator.t; conn_mutex : Mutex.t }

let create ?(protocol = Protocol.text) ?(strategy = Dispatch.Linear)
    ?(transport = "mem") ?(host = "local") ?(port = 0) ?call_timeout
    ?(retry = Retry.default) ?breaker () =
  {
    proto = protocol;
    strat = strategy;
    transport;
    host;
    cfg_port = port;
    call_timeout;
    retry;
    breaker = Option.map (fun config -> Breaker.create ~config ()) breaker;
    oa = Object_adapter.create ();
    mutex = Mutex.create ();
    listener = None;
    bound_port = 0;
    running = false;
    conns = Hashtbl.create 16;
    client_chain = Interceptor.empty_chain ();
    server_chain = Interceptor.empty_chain ();
    accepted = [];
    next_req_id = 1;
    opened = 0;
    served = 0;
    retries = 0;
    timeouts = 0;
    bootstrap_registry = None;
  }

let protocol t = t.proto
let strategy t = t.strat
let adapter t = t.oa
let client_interceptors t = t.client_chain
let server_interceptors t = t.server_chain

let port t =
  Mutex.lock t.mutex;
  let p = t.bound_port in
  Mutex.unlock t.mutex;
  p

let with_lock t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

(* ---------------- server side ---------------- *)

let handle_request_inner t (req : Protocol.request) : Protocol.reply option =
  let codec = t.proto.Protocol.codec in
  let reply status payload =
    if req.Protocol.oneway then None
    else Some { Protocol.rep_id = req.Protocol.req_id; status; payload }
  in
  with_lock t (fun () -> t.served <- t.served + 1);
  match Object_adapter.lookup t.oa req.Protocol.target.Objref.oid with
  | None ->
      reply
        (Protocol.Status_system_error
           (Printf.sprintf "no object with oid %S in this address space"
              req.Protocol.target.Objref.oid))
        ""
  | Some skel -> (
      match Skeleton.dispatch skel req.Protocol.operation with
      | None ->
          reply
            (Protocol.Status_system_error
               (Printf.sprintf "interface %s has no operation %S"
                  (Skeleton.type_id skel) req.Protocol.operation))
            ""
      | Some handler -> (
          let args = codec.Wire.Codec.decoder req.Protocol.payload in
          let results = codec.Wire.Codec.encoder () in
          match handler args results with
          | () -> reply Protocol.Status_ok (results.Wire.Codec.finish ())
          | exception Skeleton.User_exception { repo_id; encode } ->
              let e = codec.Wire.Codec.encoder () in
              encode e;
              reply (Protocol.Status_user_exception repo_id)
                (e.Wire.Codec.finish ())
          | exception Wire.Codec.Type_error m ->
              reply
                (Protocol.Status_system_error
                   (Printf.sprintf "marshal error in %S: %s" req.Protocol.operation m))
                ""
          | exception exn ->
              reply
                (Protocol.Status_system_error
                   (Printf.sprintf "implementation of %S failed: %s"
                      req.Protocol.operation (Printexc.to_string exn)))
                ""))

(* Dispatch with the server-side interceptor chain around it (Section 5:
   Orbix-style filters "triggered in the dispatch path"). *)
let handle_request t (req : Protocol.request) : Protocol.reply option =
  match Interceptor.apply_request t.server_chain req with
  | req -> (
      match handle_request_inner t req with
      | None -> None
      | Some rep -> Some (Interceptor.apply_reply t.server_chain req rep))
  | exception Interceptor.Reject reason ->
      if req.Protocol.oneway then None
      else
        Some
          {
            Protocol.rep_id = req.Protocol.req_id;
            status = Protocol.Status_system_error ("rejected: " ^ reason);
            payload = "";
          }

let serve_connection t comm =
  let rec loop () =
    match Communicator.recv comm with
    | Protocol.Request req ->
        (match handle_request t req with
        | Some rep -> Communicator.send comm (Protocol.Reply rep)
        | None -> ());
        loop ()
    | Protocol.Locate_request { req_id; target } ->
        (* GIOP-style locate: answered by the adapter, never dispatched. *)
        let found = Object_adapter.lookup t.oa target.Objref.oid <> None in
        Communicator.send comm
          (Protocol.Locate_reply { rep_id = req_id; found });
        loop ()
    | Protocol.Reply _ | Protocol.Locate_reply _ ->
        Log.warn (fun m -> m "unexpected reply on server connection from %s"
                     (Communicator.peer comm));
        loop ()
  in
  (* Whatever ends the connection — EOF or I/O failure on either recv or
     send, a malformed message, even a servant-thread bug — close it and
     drop it from the accepted list, so a long-lived server does not
     accumulate dead communicators. *)
  Fun.protect
    ~finally:(fun () ->
      with_lock t (fun () ->
          t.accepted <- List.filter (fun c -> c != comm) t.accepted))
    (fun () ->
      try loop () with
      | Transport.Transport_error _ | Transport.Timeout _ ->
          Communicator.close comm
      | Protocol.Protocol_error m ->
          Log.warn (fun m' ->
              m' "protocol error from %s: %s" (Communicator.peer comm) m);
          Communicator.close comm)

let start t =
  let listener =
    with_lock t (fun () ->
        if t.running then None
        else begin
          let l = Transport.listen ~proto:t.transport ~host:t.host ~port:t.cfg_port in
          t.listener <- Some l;
          t.bound_port <- l.Transport.bound_port;
          t.running <- true;
          Some l
        end)
  in
  match listener with
  | None -> ()
  | Some l ->
      let accept_loop () =
        let rec loop () =
          match l.Transport.accept () with
          | chan ->
              let comm = Communicator.wrap t.proto chan in
              with_lock t (fun () -> t.accepted <- comm :: t.accepted);
              ignore (Thread.create (fun () -> serve_connection t comm) ());
              loop ()
          | exception Transport.Transport_error _ -> () (* shut down *)
        in
        loop ()
      in
      ignore (Thread.create accept_loop ())

let shutdown t =
  let listener, conns, accepted =
    with_lock t (fun () ->
        let l = t.listener in
        t.listener <- None;
        t.running <- false;
        let cs = Hashtbl.fold (fun _ c acc -> c :: acc) t.conns [] in
        Hashtbl.reset t.conns;
        let acc = t.accepted in
        t.accepted <- [];
        (l, cs, acc))
  in
  (match listener with Some l -> l.Transport.shutdown () | None -> ());
  List.iter (fun c -> try Communicator.close c.comm with _ -> ()) conns;
  (* Also close server-side connections so peers observe the shutdown and
     their connection caches reopen against a replacement. *)
  List.iter (fun comm -> try Communicator.close comm with _ -> ()) accepted

(* ---------------- exporting ---------------- *)

let objref_of t ~oid ~type_id =
  Objref.make ~proto:t.transport ~host:t.host ~port:(port t) ~oid ~type_id

let export t skel =
  let oid = Object_adapter.register t.oa skel in
  objref_of t ~oid ~type_id:(Skeleton.type_id skel)

let export_named t ~oid skel =
  Object_adapter.register_named t.oa ~oid skel;
  objref_of t ~oid ~type_id:(Skeleton.type_id skel)

let export_cached t ~key ~type_id build =
  let oid = Object_adapter.register_cached t.oa ~key build in
  objref_of t ~oid ~type_id

(* ---------------- client side ---------------- *)

(* Get the cached connection to an endpoint, opening one if needed
   (paper: "Connections are cached and reused in HeidiRMI, and only if
   there is no available connection is a new connection opened").

   The blocking [Transport.connect] happens OUTSIDE the ORB mutex — a
   slow or hung connect must not stall every concurrent call and the
   stats counters. Losing a connect race is resolved first-wins: the
   cache entry that got there first is kept, ours is closed.

   Returns the connection plus whether WE opened it just now: a fresh
   connection that then fails on receive means the request most likely
   reached a live server, so it is never retried (duplicate-dispatch
   risk); only a cached (possibly stale) connection justifies the
   reconnect-and-retry path. *)
let get_connection t endpoint =
  match with_lock t (fun () -> Hashtbl.find_opt t.conns endpoint) with
  | Some c -> (c, false)
  | None -> (
      let proto_name, host, port = endpoint in
      let chan = Transport.connect ~proto:proto_name ~host ~port in
      let c =
        { comm = Communicator.wrap t.proto chan; conn_mutex = Mutex.create () }
      in
      let outcome =
        with_lock t (fun () ->
            match Hashtbl.find_opt t.conns endpoint with
            | Some winner -> `Lost winner
            | None ->
                Hashtbl.replace t.conns endpoint c;
                t.opened <- t.opened + 1;
                `Won)
      in
      match outcome with
      | `Won -> (c, true)
      | `Lost winner ->
          (try Communicator.close c.comm with _ -> ());
          (winner, false))

let drop_connection t endpoint =
  with_lock t (fun () ->
      match Hashtbl.find_opt t.conns endpoint with
      | Some c ->
          Hashtbl.remove t.conns endpoint;
          (try Communicator.close c.comm with _ -> ())
      | None -> ())

let next_req_id t =
  with_lock t (fun () ->
      let id = t.next_req_id in
      t.next_req_id <- t.next_req_id + 1;
      id)

(* Tags a transport failure with the exchange phase it struck in.
   [`Send] means no reply bytes were read — retry-safe territory;
   [`Recv] means the request went out and anything may have happened. *)
exception Exchange_failed of [ `Send | `Recv ] * exn

let exchange conn msg ~oneway ~deadline =
  Mutex.lock conn.conn_mutex;
  Fun.protect
    ~finally:(fun () ->
      (try Communicator.set_deadline conn.comm None with _ -> ());
      Mutex.unlock conn.conn_mutex)
    (fun () ->
      Communicator.set_deadline conn.comm deadline;
      (try Communicator.send conn.comm msg
       with e -> raise (Exchange_failed (`Send, e)));
      if oneway then None
      else
        try Some (Communicator.recv conn.comm)
        with e -> raise (Exchange_failed (`Recv, e)))

let endpoint_key (proto, host, port) = Printf.sprintf "%s:%s:%d" proto host port

let count_failure t e =
  with_lock t (fun () ->
      match e with Transport.Timeout _ -> t.timeouts <- t.timeouts + 1 | _ -> ())

let breaker_failure t key e =
  match (t.breaker, Retry.classify e) with
  | Some br, (Retry.Transient | Retry.Deadline) -> Breaker.failure br key
  | _ -> ()

let breaker_success t key =
  match t.breaker with Some br -> Breaker.success br key | None -> ()

(* Absolute deadline for one call: the per-call timeout, else the ORB
   default, else none. *)
let call_deadline t timeout =
  match (timeout, t.call_timeout) with
  | Some s, _ | None, Some s -> Some (Unix.gettimeofday () +. s)
  | None, None -> None

(* The fault-tolerant request/reply engine shared by [invoke_raw] and
   [locate]: circuit-breaker gate, then attempts under the retry policy.
   [notify] feeds each failure to the client interceptor chain. *)
let rec request_reply t target msg ~oneway ~timeout ~notify =
  let endpoint = Objref.endpoint target in
  let key = endpoint_key endpoint in
  (match t.breaker with
  | None -> ()
  | Some br -> (
      match Breaker.before_call br key with
      | Breaker.Proceed -> ()
      | Breaker.Fast_fail ->
          let e =
            Breaker.Circuit_open
              (Printf.sprintf "circuit open for endpoint %s" key)
          in
          notify e;
          raise e
      | Breaker.Probe -> (
          (* Half-open: one lightweight Locate_request ping decides
             whether the endpoint is back before real traffic flows. *)
          match probe t target ~timeout with
          | () -> Breaker.success br key
          | exception e ->
              Breaker.failure br key;
              count_failure t e;
              notify e;
              raise e)));
  let deadline = call_deadline t timeout in
  let rec attempt n =
    let retry_after e =
      with_lock t (fun () -> t.retries <- t.retries + 1);
      notify e;
      Thread.delay (Retry.delay_for t.retry ~attempt:n);
      attempt (n + 1)
    in
    match get_connection t endpoint with
    | exception e ->
        (* Connect failure: nothing was sent, always safe to retry. *)
        breaker_failure t key e;
        count_failure t e;
        if Retry.retryable t.retry ~attempt:n e then retry_after e
        else begin
          notify e;
          raise e
        end
    | conn, fresh -> (
        match exchange conn msg ~oneway ~deadline with
        | resp ->
            breaker_success t key;
            resp
        | exception Exchange_failed (phase, e) ->
            (* Never leave a failed connection poisoning the cache. *)
            drop_connection t endpoint;
            breaker_failure t key e;
            count_failure t e;
            let retry_safe =
              match phase with
              | `Send -> true
              | `Recv ->
                  (* Only the stale-cached-connection case: the peer
                     closed a connection we reused, before our request
                     can have been dispatched against a live server. A
                     fresh connection failing mid-receive, or a
                     deadline timeout, may mean the call is executing —
                     never retried. *)
                  not fresh
            in
            if retry_safe && Retry.retryable t.retry ~attempt:n e then
              retry_after e
            else begin
              notify e;
              raise e
            end)
  in
  attempt 1

(* The half-open probe: a single-attempt Locate_request on a fresh
   connection. Any decoded locate reply (found or not) proves the
   endpoint is serving again. *)
and probe t target ~timeout =
  let req_id = next_req_id t in
  let msg = Protocol.Locate_request { req_id; target } in
  let endpoint = Objref.endpoint target in
  let deadline = call_deadline t timeout in
  let conn, _ = get_connection t endpoint in
  match exchange conn msg ~oneway:false ~deadline with
  | Some (Protocol.Locate_reply _) -> ()
  | Some _ | None ->
      drop_connection t endpoint;
      raise (System_exception "unexpected message in reply to breaker probe")
  | exception Exchange_failed (_, e) ->
      drop_connection t endpoint;
      raise e

let invoke_raw t target ~op ?(oneway = false) ?timeout payload =
  let req_id = next_req_id t in
  let req =
    Interceptor.apply_request t.client_chain
      { Protocol.req_id; target; operation = op; oneway; payload }
  in
  let msg = Protocol.Request req in
  let notify e = Interceptor.apply_error t.client_chain req e in
  match
    request_reply t req.Protocol.target msg ~oneway ~timeout ~notify
  with
  | None -> None
  | Some (Protocol.Reply reply) -> (
      let { Protocol.rep_id; status; payload } =
        Interceptor.apply_reply t.client_chain req reply
      in
      if rep_id <> req_id then
        raise
          (System_exception
             (Printf.sprintf "reply id %d does not match request id %d" rep_id req_id));
      match status with
      | Protocol.Status_ok -> Some payload
      | Protocol.Status_user_exception repo_id ->
          raise
            (Remote_exception { repo_id; payload; codec = t.proto.Protocol.codec })
      | Protocol.Status_system_error m -> raise (System_exception m))
  | Some (Protocol.Request _ | Protocol.Locate_request _ | Protocol.Locate_reply _)
    ->
      raise (System_exception "peer sent a non-reply where a reply was expected")

(* GIOP-style LocateRequest: does the peer's adapter know this oid? *)
let locate t ?timeout target =
  let req_id = next_req_id t in
  let msg = Protocol.Locate_request { req_id; target } in
  match
    request_reply t target msg ~oneway:false ~timeout ~notify:(fun _ -> ())
  with
  | Some (Protocol.Locate_reply { rep_id; found }) ->
      if rep_id <> req_id then
        raise (System_exception "locate reply id mismatch")
      else found
  | Some _ -> raise (System_exception "unexpected message in reply to locate")
  | None -> raise (System_exception "no reply to locate")

let invoke t target ~op ?oneway ?timeout marshal =
  let codec = t.proto.Protocol.codec in
  let e = codec.Wire.Codec.encoder () in
  marshal e;
  match invoke_raw t target ~op ?oneway ?timeout (e.Wire.Codec.finish ()) with
  | Some payload -> Some (codec.Wire.Codec.decoder payload)
  | None -> None

(* A smart proxy (Section 5: Orbix smart proxies / Visibroker smart
   stubs) bound to this ORB's protocol codec. *)
let smart_proxy t ?capacity ?invalidate_on target =
  let raw target ~op payload =
    match invoke_raw t target ~op payload with
    | Some reply -> reply
    | None -> assert false (* oneway never used by Smart *)
  in
  Smart.create ?capacity ?invalidate_on ~codec:t.proto.Protocol.codec raw target

let connections_opened t = with_lock t (fun () -> t.opened)
let requests_served t = with_lock t (fun () -> t.served)

type stats = {
  opened : int;
  served : int;
  retries : int;
  timeouts : int;
  breaker_trips : int;
  breaker_fast_fails : int;
  server_connections : int;
}

let stats t =
  let opened, served, retries, timeouts, server_connections =
    with_lock t (fun () ->
        (t.opened, t.served, t.retries, t.timeouts, List.length t.accepted))
  in
  let breaker_trips, breaker_fast_fails =
    match t.breaker with
    | Some br -> (Breaker.trips br, Breaker.fast_fails br)
    | None -> (0, 0)
  in
  { opened; served; retries; timeouts; breaker_trips; breaker_fast_fails;
    server_connections }

let breaker_state t target =
  match t.breaker with
  | None -> None
  | Some br -> Some (Breaker.state br (endpoint_key (Objref.endpoint target)))

let key_counter = Atomic.make 1
let servant_key () = Atomic.fetch_and_add key_counter 1

(* ------------------------------------------------------------------ *)
(* Bootstrap naming                                                    *)
(* ------------------------------------------------------------------ *)

(* The paper's object references are self-contained, but something must
   hand out the *first* one. HeidiRMI's answer is the bootstrap port
   (Section 3.1); this puts a name registry behind it at a well-known
   oid, so a client that knows only host:port can resolve its way in. *)
module Bootstrap = struct
  let type_id = "IDL:Heidi/Bootstrap:1.0"
  let oid = "bootstrap"


  let skeleton registry =
    Skeleton.create ~type_id
      [
        ( "bind",
          fun args _res ->
            let name = args.Wire.Codec.get_string () in
            match Serial.get_byref args with
            | Some r -> Hashtbl.replace registry name r
            | None -> Hashtbl.remove registry name );
        ( "resolve",
          fun args res ->
            let name = args.Wire.Codec.get_string () in
            match Hashtbl.find_opt registry name with
            | Some r -> Serial.put_byref res (Some r)
            | None -> failwith (Printf.sprintf "bootstrap: name %S is not bound" name)
        );
        ( "unbind",
          fun args _res ->
            Hashtbl.remove registry (args.Wire.Codec.get_string ()) );
        ( "list",
          fun _args res ->
            let names =
              List.sort compare
                (Hashtbl.fold (fun k _ acc -> k :: acc) registry [])
            in
            res.Wire.Codec.put_len (List.length names);
            List.iter res.Wire.Codec.put_string names );
      ]

  let serve t =
    let registry = Hashtbl.create 16 in
    let r = export_named t ~oid (skeleton registry) in
    t.bootstrap_registry <- Some registry;
    r

  let reference ~proto ~host ~port =
    Objref.make ~proto ~host ~port ~oid ~type_id

  let bind t ~name objref =
    match t.bootstrap_registry with
    | Some registry -> Hashtbl.replace registry name objref
    | None -> invalid_arg "Bootstrap.bind: serve this ORB first"

  let resolve t boot ~name =
    match
      invoke t boot ~op:"resolve" (fun e -> e.Wire.Codec.put_string name)
    with
    | Some d -> (
        match Serial.get_byref d with
        | Some r -> r
        | None -> raise (System_exception "bootstrap returned a nil reference"))
    | None -> assert false

  let unbind t boot ~name =
    ignore
      (invoke t boot ~op:"bind" (fun e ->
           e.Wire.Codec.put_string name;
           Serial.put_byref e None))

  let list_names t boot =
    match invoke t boot ~op:"list" (fun _ -> ()) with
    | Some d ->
        let n = d.Wire.Codec.get_len () in
        List.init n (fun _ -> d.Wire.Codec.get_string ())
    | None -> assert false
end
