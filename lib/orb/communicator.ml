type t = { proto : Protocol.t; chan : Transport.channel; mutable closed : bool }

let wrap proto chan = { proto; chan; closed = false }

(* Length-prefixed framing: magic header, 8 hex digits of body length,
   newline (for telnet-friendliness of the header even in binary
   protocols), then the body bytes. *)

let send t msg =
  let body = t.proto.Protocol.encode_message msg in
  match t.proto.Protocol.framing with
  | Protocol.Line ->
      if String.contains body '\n' then
        raise
          (Protocol.Protocol_error
             "line-framed message bodies must not contain newlines");
      t.chan.Transport.write (body ^ "\n")
  | Protocol.Length_prefixed { header } ->
      t.chan.Transport.write
        (Printf.sprintf "%s%08x\n%s" header (String.length body) body)

let recv t =
  match t.proto.Protocol.framing with
  | Protocol.Line ->
      let line = t.chan.Transport.read_line () in
      t.proto.Protocol.decode_message line
  | Protocol.Length_prefixed { header } ->
      let hline = t.chan.Transport.read_line () in
      let hlen = String.length header in
      if String.length hline <> hlen + 8 || String.sub hline 0 hlen <> header then
        raise
          (Protocol.Protocol_error
             (Printf.sprintf "bad frame header %S (expected %S + length)" hline header));
      let len_hex = String.sub hline hlen 8 in
      let len =
        match int_of_string_opt ("0x" ^ len_hex) with
        | Some n when n >= 0 -> n
        | _ ->
            raise
              (Protocol.Protocol_error
                 (Printf.sprintf "bad frame length %S" len_hex))
      in
      let body = t.chan.Transport.read_exact len in
      t.proto.Protocol.decode_message body

let close t =
  (* Mark first: even if the underlying close raises, the communicator
     must never again count as live (the server_connections gauge). *)
  t.closed <- true;
  t.chan.Transport.close ()

let is_closed t = t.closed
let peer t = t.chan.Transport.peer
let protocol t = t.proto
let set_deadline t d = t.chan.Transport.set_deadline d
