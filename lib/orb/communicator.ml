type t = {
  (* Separate send and receive protocols: a negotiated codec switch
     takes effect at different frame boundaries in each direction (the
     server answers the offering request in the old encoding but must
     already read the next request in the new one; mirrored on the
     client), so the two sides of the stream are re-pointed
     independently by [set_protocol]. *)
  mutable sproto : Protocol.t;
  mutable rproto : Protocol.t;
  chan : Transport.channel;
  limits : Wire.Codec.limits;
  mutable closed : bool;
}

(* Bound memory while a frame is still in flight: for line framing the
   line IS the frame, so the channel receive limit is the frame
   limit; for length-prefixed framing only the short fixed-size
   header travels on a line; varint framing never reads lines at all. *)
let install_recv_limit proto limits chan =
  let line_limit =
    match proto.Protocol.framing with
    | Protocol.Line -> limits.Wire.Codec.max_frame_bytes
    | Protocol.Length_prefixed { header } -> String.length header + 64
    | Protocol.Varint_prefixed _ -> 64
  in
  chan.Transport.set_recv_limit (Some line_limit)

let wrap ?(limits = Wire.Codec.default_limits) proto chan =
  install_recv_limit proto limits chan;
  { sproto = proto; rproto = proto; chan; limits; closed = false }

let set_protocol ?(dir = `Both) t proto =
  (match dir with
  | `Both | `Send -> t.sproto <- proto
  | `Recv -> ());
  match dir with
  | `Both | `Recv ->
      t.rproto <- proto;
      install_recv_limit proto t.limits t.chan
  | `Send -> ()

(* Length-prefixed framing: magic header, 8 hex digits of body length,
   newline (for telnet-friendliness of the header even in binary
   protocols), then the body bytes. *)

(* Fixed-width lowercase hex, written without Printf: the length prefix
   is on the per-message send path. *)
let add_hex8 buf n =
  for shift = 28 downto 0 do
    if shift mod 4 = 0 then begin
      let d = (n lsr shift) land 0xf in
      Buffer.add_char buf
        (if d < 10 then Char.chr (Char.code '0' + d)
         else Char.chr (Char.code 'a' + d - 10))
    end
  done

(* Varint framing: one magic byte, then the body length as an unsigned
   LEB128 varint — 2-3 bytes of framing on ordinary messages. *)
let add_uvarint buf n =
  let n = ref n in
  while !n >= 0x80 do
    Buffer.add_char buf (Char.unsafe_chr (!n land 0x7f lor 0x80));
    n := !n lsr 7
  done;
  Buffer.add_char buf (Char.unsafe_chr !n)

(* Bodies up to this size are concatenated with their frame header and
   written in one syscall; larger bodies go through the channel's
   [writev] as header + body slices — no coalescing copy of the
   payload. The threshold keeps the common small-frame case a single
   packet under TCP_NODELAY (a tiny header-only segment would otherwise
   go out on its own). *)
let coalesce_limit = 4096

(* Frame header + body, with the large-body zero-copy split. *)
let send_framed t ~mk_header body =
  let blen = String.length body in
  let buf = Buffer.create (16 + min blen coalesce_limit) in
  mk_header buf blen;
  if blen <= coalesce_limit then begin
    Buffer.add_string buf body;
    t.chan.Transport.write (Buffer.contents buf)
  end
  else
    (* The caller already serializes sends per connection, so the
       header and body slices stay adjacent on the wire. *)
    t.chan.Transport.writev [ Buffer.contents buf; body ]

let send t msg =
  let body = t.sproto.Protocol.encode_message msg in
  match t.sproto.Protocol.framing with
  | Protocol.Line ->
      if String.contains body '\n' then
        raise
          (Protocol.Protocol_error
             "line-framed message bodies must not contain newlines");
      t.chan.Transport.write (body ^ "\n")
  | Protocol.Length_prefixed { header } ->
      send_framed t body ~mk_header:(fun buf blen ->
          Buffer.add_string buf header;
          add_hex8 buf blen;
          Buffer.add_char buf '\n')
  | Protocol.Varint_prefixed { magic } ->
      send_framed t body ~mk_header:(fun buf blen ->
          Buffer.add_char buf magic;
          add_uvarint buf blen)

type recv_error = { reason : string; req_id_hint : int option }

(* The recoverable/fatal split a hardened server needs: [Error] means
   the frame was malformed or over-limit but fully consumed — the byte
   stream is still synchronized, so the caller can answer with an error
   reply and keep serving the connection. Exceptions mean the stream
   state is unknown (bad header, I/O failure): close the connection. *)
let recv_opt t =
  let decode body =
    match t.rproto.Protocol.decode_limited t.limits body with
    | msg -> Ok msg
    | exception Protocol.Protocol_error reason ->
        Error { reason; req_id_hint = Protocol.request_id_hint t.rproto body }
  in
  (* Consume the advertised body in bounded chunks — the peer declared
     it honestly, so after the discard the stream is synchronized and an
     error reply can be delivered. *)
  let discard_body len =
    let remaining = ref len in
    while !remaining > 0 do
      let n = min !remaining 65536 in
      ignore (t.chan.Transport.read_exact n);
      remaining := !remaining - n
    done;
    Error
      {
        reason =
          Printf.sprintf "frame of %d bytes exceeds limit %d" len
            t.limits.Wire.Codec.max_frame_bytes;
        req_id_hint = None;
      }
  in
  match t.rproto.Protocol.framing with
  | Protocol.Line -> (
      match t.chan.Transport.read_line () with
      | line -> decode line
      | exception Transport.Frame_limit reason ->
          (* The transport discarded the oversized line through its
             newline: synchronized, recoverable. *)
          Error { reason; req_id_hint = None })
  | Protocol.Length_prefixed { header } ->
      let hline =
        try t.chan.Transport.read_line ()
        with Transport.Frame_limit m ->
          (* Binary stream: resynchronizing on a newline is meaningless
             when the header itself is damaged. Fatal. *)
          raise (Protocol.Protocol_error m)
      in
      let hlen = String.length header in
      if String.length hline <> hlen + 8 || String.sub hline 0 hlen <> header then
        raise
          (Protocol.Protocol_error
             (Printf.sprintf "bad frame header %S (expected %S + length)" hline header));
      let len_hex = String.sub hline hlen 8 in
      let len =
        match int_of_string_opt ("0x" ^ len_hex) with
        | Some n when n >= 0 -> n
        | _ ->
            raise
              (Protocol.Protocol_error
                 (Printf.sprintf "bad frame length %S" len_hex))
      in
      if len > t.limits.Wire.Codec.max_frame_bytes then discard_body len
      else decode (t.chan.Transport.read_exact len)
  | Protocol.Varint_prefixed { magic } ->
      let m = (t.chan.Transport.read_exact 1).[0] in
      if m <> magic then
        (* The stream is positioned who-knows-where in a frame we cannot
           delimit: fatal. *)
        raise
          (Protocol.Protocol_error
             (Printf.sprintf "bad frame magic 0x%02x (expected 0x%02x)"
                (Char.code m) (Char.code magic)));
      (* Body length as LEB128, read byte-at-a-time (the transport
         buffers). More than 9 groups cannot be a length any encoder
         produced — and with the continuation bit's position unknown the
         stream cannot be resynchronized: fatal. *)
      let len =
        let v = ref 0 and shift = ref 0 and continue = ref true in
        while !continue do
          if !shift > 56 then
            raise (Protocol.Protocol_error "over-long frame length varint");
          let b = Char.code (t.chan.Transport.read_exact 1).[0] in
          v := !v lor ((b land 0x7f) lsl !shift);
          shift := !shift + 7;
          continue := b land 0x80 <> 0
        done;
        !v
      in
      if len > t.limits.Wire.Codec.max_frame_bytes then discard_body len
      else decode (t.chan.Transport.read_exact len)

let recv t =
  match recv_opt t with
  | Ok msg -> msg
  | Error { reason; _ } -> raise (Protocol.Protocol_error reason)

let close t =
  (* Mark first: even if the underlying close raises, the communicator
     must never again count as live (the server_connections gauge). *)
  t.closed <- true;
  t.chan.Transport.close ()

let is_closed t = t.closed
let peer t = t.chan.Transport.peer
let protocol t = t.sproto
let set_deadline t d = t.chan.Transport.set_deadline d
