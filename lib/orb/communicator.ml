type t = {
  proto : Protocol.t;
  chan : Transport.channel;
  limits : Wire.Codec.limits;
  mutable closed : bool;
}

let wrap ?(limits = Wire.Codec.default_limits) proto chan =
  (* Bound memory while a frame is still in flight: for line framing the
     line IS the frame, so the channel receive limit is the frame
     limit; for length-prefixed framing only the short fixed-size
     header travels on a line. *)
  let line_limit =
    match proto.Protocol.framing with
    | Protocol.Line -> limits.Wire.Codec.max_frame_bytes
    | Protocol.Length_prefixed { header } -> String.length header + 64
  in
  chan.Transport.set_recv_limit (Some line_limit);
  { proto; chan; limits; closed = false }

(* Length-prefixed framing: magic header, 8 hex digits of body length,
   newline (for telnet-friendliness of the header even in binary
   protocols), then the body bytes. *)

(* Fixed-width lowercase hex, written without Printf: the length prefix
   is on the per-message send path. *)
let add_hex8 buf n =
  for shift = 28 downto 0 do
    if shift mod 4 = 0 then begin
      let d = (n lsr shift) land 0xf in
      Buffer.add_char buf
        (if d < 10 then Char.chr (Char.code '0' + d)
         else Char.chr (Char.code 'a' + d - 10))
    end
  done

(* Bodies up to this size are concatenated with their frame header and
   written in one syscall; larger bodies are written in two parts to
   avoid copying the payload. The threshold keeps the common small-frame
   case a single packet under TCP_NODELAY (a tiny header-only segment
   would otherwise go out on its own). *)
let coalesce_limit = 4096

let send t msg =
  let body = t.proto.Protocol.encode_message msg in
  match t.proto.Protocol.framing with
  | Protocol.Line ->
      if String.contains body '\n' then
        raise
          (Protocol.Protocol_error
             "line-framed message bodies must not contain newlines");
      t.chan.Transport.write (body ^ "\n")
  | Protocol.Length_prefixed { header } ->
      let buf =
        Buffer.create
          (String.length header + 9 + min (String.length body) coalesce_limit)
      in
      Buffer.add_string buf header;
      add_hex8 buf (String.length body);
      Buffer.add_char buf '\n';
      if String.length body <= coalesce_limit then begin
        Buffer.add_string buf body;
        t.chan.Transport.write (Buffer.contents buf)
      end
      else begin
        (* Two-part write: the caller already serializes sends per
           connection, so the header and body stay adjacent on the wire. *)
        t.chan.Transport.write (Buffer.contents buf);
        t.chan.Transport.write body
      end

type recv_error = { reason : string; req_id_hint : int option }

(* The recoverable/fatal split a hardened server needs: [Error] means
   the frame was malformed or over-limit but fully consumed — the byte
   stream is still synchronized, so the caller can answer with an error
   reply and keep serving the connection. Exceptions mean the stream
   state is unknown (bad header, I/O failure): close the connection. *)
let recv_opt t =
  let decode body =
    match t.proto.Protocol.decode_limited t.limits body with
    | msg -> Ok msg
    | exception Protocol.Protocol_error reason ->
        Error { reason; req_id_hint = Protocol.request_id_hint t.proto body }
  in
  match t.proto.Protocol.framing with
  | Protocol.Line -> (
      match t.chan.Transport.read_line () with
      | line -> decode line
      | exception Transport.Frame_limit reason ->
          (* The transport discarded the oversized line through its
             newline: synchronized, recoverable. *)
          Error { reason; req_id_hint = None })
  | Protocol.Length_prefixed { header } ->
      let hline =
        try t.chan.Transport.read_line ()
        with Transport.Frame_limit m ->
          (* Binary stream: resynchronizing on a newline is meaningless
             when the header itself is damaged. Fatal. *)
          raise (Protocol.Protocol_error m)
      in
      let hlen = String.length header in
      if String.length hline <> hlen + 8 || String.sub hline 0 hlen <> header then
        raise
          (Protocol.Protocol_error
             (Printf.sprintf "bad frame header %S (expected %S + length)" hline header));
      let len_hex = String.sub hline hlen 8 in
      let len =
        match int_of_string_opt ("0x" ^ len_hex) with
        | Some n when n >= 0 -> n
        | _ ->
            raise
              (Protocol.Protocol_error
                 (Printf.sprintf "bad frame length %S" len_hex))
      in
      if len > t.limits.Wire.Codec.max_frame_bytes then begin
        (* Consume the advertised body in bounded chunks — the peer
           declared it honestly, so after the discard the stream is
           synchronized and an error reply can be delivered. *)
        let remaining = ref len in
        while !remaining > 0 do
          let n = min !remaining 65536 in
          ignore (t.chan.Transport.read_exact n);
          remaining := !remaining - n
        done;
        Error
          {
            reason =
              Printf.sprintf "frame of %d bytes exceeds limit %d" len
                t.limits.Wire.Codec.max_frame_bytes;
            req_id_hint = None;
          }
      end
      else decode (t.chan.Transport.read_exact len)

let recv t =
  match recv_opt t with
  | Ok msg -> msg
  | Error { reason; _ } -> raise (Protocol.Protocol_error reason)

let close t =
  (* Mark first: even if the underlying close raises, the communicator
     must never again count as live (the server_connections gauge). *)
  t.closed <- true;
  t.chan.Transport.close ()

let is_closed t = t.closed
let peer t = t.chan.Transport.peer
let protocol t = t.proto
let set_deadline t d = t.chan.Transport.set_deadline d
