(** Pass-by-value support: the [incopy] extension and the HdSerializable
    protocol (paper Section 3.1).

    An object reference passed [incopy] is "copied across the IDL
    interface, if possible": if the implementation provides marshaling
    primitives (is {e serializable}), its state travels by value and the
    receiver reconstructs a local object — no skeleton is ever created
    for it. Otherwise it silently falls back to pass-by-reference,
    mirroring Java RMI's treatment of [Serializable] vs [Remote]
    arguments.

    On the wire an [incopy] argument is
    [bool is_value; (string type_id; group state) | string objref].

    Factories are registered per interface in a typed {!registry} — the
    analogue of Heidi's dynamic type checking determining whether an
    object implements [HdSerializable]. *)

type 'impl registry
(** Maps type IDs to unmarshal factories producing ['impl] values. *)

val create_registry : unit -> 'impl registry
val register_factory : 'impl registry -> type_id:string -> (Wire.Codec.decoder -> 'impl) -> unit
val find_factory : 'impl registry -> type_id:string -> (Wire.Codec.decoder -> 'impl) option

(** {2 By-reference helpers} *)

val put_byref : Wire.Codec.encoder -> Objref.t option -> unit
(** A nil reference is the empty string. *)

val get_byref : Wire.Codec.decoder -> Objref.t option
(** @raise Wire.Codec.Type_error on a malformed reference. *)

(** {2 incopy helpers} *)

val put_incopy :
  Wire.Codec.encoder ->
  serializer:(Wire.Codec.encoder -> unit) option ->
  type_id:string ->
  byref:(unit -> Objref.t) ->
  unit
(** [put_incopy e ~serializer ~type_id ~byref] — when [serializer] is
    [Some f], the object travels by value ([f] marshals its state);
    otherwise [byref ()] is called to obtain (usually lazily export) a
    reference, which travels instead. *)

val get_incopy :
  Wire.Codec.decoder ->
  registry:'impl registry ->
  of_ref:(Objref.t -> 'impl) ->
  'impl
(** Decode an [incopy] argument: a by-value payload is reconstructed via
    the registered factory for its type ID; a by-reference payload is
    turned into a stub by [of_ref].
    @raise Wire.Codec.Type_error when no factory is registered for a
    by-value payload's type ID, or on malformed input. *)
