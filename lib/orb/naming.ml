(* Lease-based naming (DESIGN.md "Replication and naming").

   A naming servant maps service names to *sets* of provider references
   under time-bounded leases: each replica registers its own reference
   with a TTL and must re-register before the lease lapses; [resolve]
   merges the live providers into one multi-endpoint reference, so the
   client-side failover and load-balancing machinery sees every replica
   behind a single logical target. Replica death needs no deregistration
   protocol — a dead replica simply stops renewing.

   This module is ORB-independent: the server half is a plain skeleton
   over a lease registry, the client half is parameterized over an
   invoker function. [Orb.Naming] binds both to a live ORB. *)

let type_id = "IDL:Heidi/Naming:1.0"
let default_oid = "naming"

(* ---------------- server half: the lease registry ---------------- *)

type config = {
  default_ttl : float;  (* granted when the caller requests ttl <= 0 *)
  max_ttl : float;  (* requested TTLs are clamped to this *)
}

let default_config = { default_ttl = 30.; max_ttl = 3600. }

type lease = { provider : Objref.t; mutable expires_at : float }

type registry = {
  cfg : config;
  lock : Locked.t;
  entries : (string, lease list) Hashtbl.t;  (* name -> live-ish leases *)
  mutable grants : int;  (* registrations + renewals *)
  mutable expiries : int;  (* leases dropped because they lapsed *)
}

let create ?(config = default_config) () =
  {
    cfg = config;
    lock = Locked.create ~name:"naming.registry" ~rank:Locked.Rank.naming_registry;
    entries = Hashtbl.create 16;
    grants = 0;
    expiries = 0;
  }

(* Expiry is lazy: leases are pruned whenever their name is touched.
   Call with [r.lock] held. *)
let prune_locked r name now =
  match Hashtbl.find_opt r.entries name with
  | None -> []
  | Some leases ->
      let live, dead = List.partition (fun l -> l.expires_at > now) leases in
      r.expiries <- r.expiries + List.length dead;
      if live = [] then Hashtbl.remove r.entries name
      else if dead <> [] then Hashtbl.replace r.entries name live;
      live

let granted_ttl r ttl =
  if ttl <= 0. then r.cfg.default_ttl else Float.min ttl r.cfg.max_ttl

let grant r ~name provider ~ttl =
  let now = Unix.gettimeofday () in
  let granted = granted_ttl r ttl in
  Locked.with_lock r.lock (fun () ->
      let live = prune_locked r name now in
      (match List.find_opt (fun l -> Objref.equal l.provider provider) live with
      | Some l -> l.expires_at <- now +. granted  (* renewal *)
      | None ->
          Hashtbl.replace r.entries name
            (live @ [ { provider; expires_at = now +. granted } ]));
      r.grants <- r.grants + 1);
  granted

let revoke r ~name provider =
  let now = Unix.gettimeofday () in
  Locked.with_lock r.lock (fun () ->
      match
        List.filter
          (fun l -> not (Objref.equal l.provider provider))
          (prune_locked r name now)
      with
      | [] -> Hashtbl.remove r.entries name
      | live -> Hashtbl.replace r.entries name live)

(* Merge the live providers of [name] into one reference: the earliest
   surviving registration is the base; every provider sharing its oid
   and type (i.e. a genuine replica of the same object) contributes its
   endpoints, first-registered first, duplicates dropped. The returned
   TTL is the time until the soonest merged lease lapses — refreshing
   then keeps the client ahead of every expiry. *)
let lookup r ~name =
  let now = Unix.gettimeofday () in
  Locked.with_lock r.lock (fun () ->
      match prune_locked r name now with
      | [] -> None
      | first :: _ as live ->
          let base = first.provider in
          let replicas =
            List.filter
              (fun l ->
                l.provider.Objref.oid = base.Objref.oid
                && l.provider.Objref.type_id = base.Objref.type_id)
              live
          in
          let eps =
            List.fold_left
              (fun acc l ->
                List.fold_left
                  (fun acc ep -> if List.mem ep acc then acc else ep :: acc)
                  acc
                  (Objref.endpoints l.provider))
              [] replicas
          in
          let merged = Objref.with_endpoints base (List.rev eps) in
          let ttl =
            List.fold_left
              (fun acc l -> Float.min acc (l.expires_at -. now))
              infinity replicas
          in
          Some (merged, ttl))

let names r =
  let now = Unix.gettimeofday () in
  Locked.with_lock r.lock (fun () ->
      let ns = Hashtbl.fold (fun k _ acc -> k :: acc) r.entries [] in
      List.sort compare
        (List.filter (fun n -> prune_locked r n now <> []) ns))

let grants r = Locked.with_lock r.lock (fun () -> r.grants)
let expiries r = Locked.with_lock r.lock (fun () -> r.expiries)

(* The wire surface. TTLs travel as seconds in a double; a nil byref
   answers a failed resolve. *)
let skeleton r =
  Skeleton.create ~type_id
    [
      ( "register",
        fun args res ->
          let name = args.Wire.Codec.get_string () in
          match Serial.get_byref args with
          | None -> failwith "naming.register: nil provider reference"
          | Some provider ->
              let ttl = args.Wire.Codec.get_double () in
              res.Wire.Codec.put_double (grant r ~name provider ~ttl) );
      ( "unregister",
        fun args _res ->
          let name = args.Wire.Codec.get_string () in
          match Serial.get_byref args with
          | None -> ()
          | Some provider -> revoke r ~name provider );
      ( "resolve",
        fun args res ->
          let name = args.Wire.Codec.get_string () in
          match lookup r ~name with
          | Some (merged, ttl) ->
              Serial.put_byref res (Some merged);
              res.Wire.Codec.put_double ttl
          | None ->
              Serial.put_byref res None;
              res.Wire.Codec.put_double 0. );
      ( "list",
        fun _args res ->
          let ns = names r in
          res.Wire.Codec.put_len (List.length ns);
          List.iter res.Wire.Codec.put_string ns );
    ]

(* ---------------- client half ---------------- *)

type invoker =
  Objref.t -> op:string -> (Wire.Codec.encoder -> unit) ->
  Wire.Codec.decoder option

exception Unresolved of string

let () =
  Printexc.register_printer (function
    | Unresolved m -> Some (Printf.sprintf "Orb.Naming.Unresolved: %s" m)
    | _ -> None)

let register_via (call : invoker) nref ~name provider ~ttl =
  match
    call nref ~op:"register" (fun e ->
        e.Wire.Codec.put_string name;
        Serial.put_byref e (Some provider);
        e.Wire.Codec.put_double ttl)
  with
  | Some d -> d.Wire.Codec.get_double ()
  | None -> raise (Unresolved "naming.register: no reply")

let unregister_via (call : invoker) nref ~name provider =
  ignore
    (call nref ~op:"unregister" (fun e ->
         e.Wire.Codec.put_string name;
         Serial.put_byref e (Some provider)))

let resolve_via (call : invoker) nref ~name =
  match call nref ~op:"resolve" (fun e -> e.Wire.Codec.put_string name) with
  | Some d -> (
      let target = Serial.get_byref d in
      let ttl = d.Wire.Codec.get_double () in
      match target with
      | Some target when ttl > 0. -> Some (target, ttl)
      | _ -> None)
  | None -> None

let list_via (call : invoker) nref =
  match call nref ~op:"list" (fun _ -> ()) with
  | Some d ->
      let n = d.Wire.Codec.get_len () in
      List.init n (fun _ -> d.Wire.Codec.get_string ())
  | None -> []

(* A resolver caches the resolved endpoint set until its lease lapses —
   the client goes back to the naming service only on expiry or when
   told the cached placement is dead ([invalidate]). *)
type resolver = {
  rs_call : invoker;
  rs_nref : Objref.t;
  rs_name : string;
  rs_lock : Locked.t;
  mutable rs_cached : (Objref.t * float) option;  (* target, lease deadline *)
  mutable rs_resolves : int;  (* trips to the naming service *)
}

let resolver_via (call : invoker) nref ~name =
  {
    rs_call = call;
    rs_nref = nref;
    rs_name = name;
    rs_lock =
      Locked.create ~name:"naming.resolver" ~rank:Locked.Rank.naming_resolver;
    rs_cached = None;
    rs_resolves = 0;
  }

let invalidate rs = Locked.with_lock rs.rs_lock (fun () -> rs.rs_cached <- None)
let resolves rs = Locked.with_lock rs.rs_lock (fun () -> rs.rs_resolves)

let current rs =
  let now = Unix.gettimeofday () in
  let cached =
    Locked.with_lock rs.rs_lock (fun () ->
        match rs.rs_cached with
        | Some (target, deadline) when deadline > now -> Some target
        | _ -> None)
  in
  match cached with
  | Some target -> target
  | None -> (
      (* The resolve RPC runs outside the resolver lock; concurrent
         expirers may resolve twice, which is merely redundant. *)
      match resolve_via rs.rs_call rs.rs_nref ~name:rs.rs_name with
      | Some (target, ttl) ->
          Locked.with_lock rs.rs_lock (fun () ->
              rs.rs_cached <- Some (target, now +. ttl);
              rs.rs_resolves <- rs.rs_resolves + 1);
          target
      | None ->
          Locked.with_lock rs.rs_lock (fun () ->
              rs.rs_cached <- None;
              rs.rs_resolves <- rs.rs_resolves + 1);
          raise
            (Unresolved (Printf.sprintf "name %S is not bound" rs.rs_name)))
