(** Server-side skeletons.

    A skeleton binds operation names to handlers that unmarshal
    parameters, call the target implementation and marshal results
    (paper Fig. 5). Skeletons mirror the IDL inheritance structure: if
    dispatch on the local operations fails, it is delegated to each
    parent skeleton in order, "continuing recursively up the skeleton
    class hierarchy" (Section 3.1).

    The operation-name lookup within one skeleton uses a pluggable
    {!Dispatch.strategy}. *)

type handler = Wire.Codec.decoder -> Wire.Codec.encoder -> unit
(** [handler args results] — decode arguments, invoke the servant,
    encode results. May raise {!User_exception} for declared IDL
    exceptions; any other exception becomes a system error reply. *)

exception User_exception of {
  repo_id : string;  (** The exception's repository ID. *)
  encode : Wire.Codec.encoder -> unit;  (** Marshals the exception members. *)
}

type t

val create :
  ?strategy:Dispatch.strategy ->
  ?parents:t list ->
  type_id:string ->
  (string * handler) list ->
  t
(** [create ~type_id handlers] — [strategy] defaults to [Linear] (the
    baseline most IDL compilers emit). [parents] are the skeletons of the
    directly inherited interfaces, in declaration order. *)

val type_id : t -> string

val dispatch : t -> string -> handler option
(** Look up locally, then delegate to parents depth-first in order. *)

val operation_names : t -> string list
(** All dispatchable operations (local first, then inherited ones not
    shadowed), in dispatch-resolution order. *)
