(** The ObjectCommunicator (paper Figs. 4–5): wraps a byte channel and
    demarcates individual protocol messages on it, applying the
    protocol's framing. *)

type t

val wrap : Protocol.t -> Transport.channel -> t
(** Wrap an accepted or connected channel. *)

val send : t -> Protocol.message -> unit
(** Encode, frame and write one message.
    @raise Transport.Transport_error on I/O failure. *)

val recv : t -> Protocol.message
(** Read and decode the next message.
    @raise Transport.Transport_error on EOF / I/O failure.
    @raise Transport.Timeout past the channel deadline.
    @raise Protocol.Protocol_error on malformed messages. *)

val close : t -> unit
(** Close the underlying channel; marks the communicator closed first,
    so it never again counts as live even if the close itself fails. *)

val is_closed : t -> bool
(** Whether {!close} has been called on this communicator. Used by the
    ORB's [server_connections] gauge to exclude connections that are
    closed but not yet reaped by their serving thread. *)

val peer : t -> string
val protocol : t -> Protocol.t

val set_deadline : t -> float option -> unit
(** Install or clear the underlying channel's read deadline (an absolute
    [Unix.gettimeofday] instant); it spans all reads of a framed
    message. *)
