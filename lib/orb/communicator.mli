(** The ObjectCommunicator (paper Figs. 4–5): wraps a byte channel and
    demarcates individual protocol messages on it, applying the
    protocol's framing. *)

type t

val wrap : ?limits:Wire.Codec.limits -> Protocol.t -> Transport.channel -> t
(** Wrap an accepted or connected channel. [limits] (default
    {!Wire.Codec.default_limits}) bounds what {!recv}/{!recv_opt} will
    decode: the frame limit is installed on the channel as its line
    receive limit, and payload decoding runs through the protocol's
    [decode_limited]. *)

val send : t -> Protocol.message -> unit
(** Encode, frame and write one message.
    @raise Transport.Transport_error on I/O failure. *)

val recv : t -> Protocol.message
(** Read and decode the next message.
    @raise Transport.Transport_error on EOF / I/O failure.
    @raise Transport.Timeout past the channel deadline.
    @raise Protocol.Protocol_error on malformed messages. *)

type recv_error = {
  reason : string;
  req_id_hint : int option;
      (** Best-effort id of the damaged request ({!Protocol.request_id_hint}),
          so the error reply can carry the id the client waits on. *)
}

val recv_opt : t -> (Protocol.message, recv_error) result
(** Like {!recv}, but separates recoverable malformation from fatal
    stream damage: [Error] means the offending frame was fully consumed
    and the byte stream is still synchronized — the server can answer
    with a protocol-level error reply and keep serving the connection
    (oversized frames are discarded in bounded chunks). Exceptions
    ({!Transport.Transport_error}, {!Transport.Timeout},
    {!Protocol.Protocol_error} on a damaged frame {e header}) mean the
    stream state is unknown and the connection should be closed. *)

val close : t -> unit
(** Close the underlying channel; marks the communicator closed first,
    so it never again counts as live even if the close itself fails. *)

val is_closed : t -> bool
(** Whether {!close} has been called on this communicator. Used by the
    ORB's [server_connections] gauge to exclude connections that are
    closed but not yet reaped by their serving thread. *)

val peer : t -> string

val protocol : t -> Protocol.t
(** The current {e send}-side protocol (send and receive agree except
    inside a negotiated codec switch). *)

val set_protocol : ?dir:[ `Both | `Send | `Recv ] -> t -> Protocol.t -> unit
(** Re-point the communicator at another protocol — the mechanism of a
    negotiated codec switch. A switch takes effect at different frame
    boundaries in each direction (the offering request's reply is still
    sent in the old encoding while the next incoming request is already
    read in the new one), so [dir] (default [`Both]) selects which side
    of the stream moves. Callers must guarantee no frame of the old
    encoding is still in flight in the re-pointed direction — the
    negotiation layer's hold-until-answer discipline does. *)

val set_deadline : t -> float option -> unit
(** Install or clear the underlying channel's read deadline (an absolute
    [Unix.gettimeofday] instant); it spans all reads of a framed
    message. *)
