(** Shared function types, defined outside the [Orb] facade so helper
    modules (e.g. {!Smart}) can reference the invoke shape without a
    dependency cycle. *)

type raw_invoker = Objref.t -> op:string -> string -> string
(** Two-way invocation at the payload level: request payload in, reply
    payload out. Raises the ORB's exceptions on failure. The [Orb]
    facade's [invoke_raw] has this shape once partially applied. *)
