(** Byte transports.

    Three transports ship with the runtime:
    - ["tcp"] — real TCP sockets (Unix), one thread per accepted
      connection on the server side;
    - ["mem"] — an in-process loopback with the same interface, used by
      the tests and single-process examples. "Ports" are slots in a
      process-global registry, so several in-memory ORBs (address spaces)
      can coexist and call each other deterministically;
    - ["faulty:<inner>"] (e.g. ["faulty:mem"]) — a wrapper around either
      of the above that injects failures according to the process-global
      {!Fault} plan, for deterministic robustness testing.

    Channels carry raw bytes; message demarcation is the communicator's
    job (paper: the [ObjectCommunicator] "provides the abstraction of a
    communication channel on which individual requests can be
    demarcated"). *)

exception Transport_error of string
(** Connection-level failure: refused connect, peer closed, I/O error.
    Distinct from {!Timeout} — callers that retry treat the two very
    differently (see [Orb.Retry]). *)

exception Timeout of string
(** A read exceeded the channel deadline set via [set_deadline]. Never
    raised when no deadline is installed. *)

exception Frame_limit of string
(** An incoming line exceeded the receive limit set via
    [set_recv_limit]. The oversized line has already been discarded
    through its terminating newline with bounded memory, so the byte
    stream is still synchronized: the caller may answer with a
    protocol-level error and keep using the channel. Never raised when
    no limit is installed. *)

type channel = {
  write : string -> unit;  (** Write all bytes. *)
  writev : string list -> unit;
      (** Write the slices back-to-back, iovec-style: no coalescing copy
          is taken — each slice goes to the underlying stream as-is (on
          TCP via [Unix.write_substring], straight from the string with
          no intermediate [Bytes]). Callers serialize sends per
          connection, so the slices stay adjacent on the wire. *)
  read_line : unit -> string;
      (** Read up to (and excluding) the next ['\n'].
          @raise Transport_error on EOF.
          @raise Timeout past the channel deadline.
          @raise Frame_limit past the receive limit (stream stays
          synchronized). *)
  read_exact : int -> string;
      (** Read exactly [n] bytes.
          @raise Transport_error on EOF.
          @raise Timeout past the channel deadline. *)
  close : unit -> unit;
  set_deadline : float option -> unit;
      (** Install ([Some abs_time], a [Unix.gettimeofday] instant) or
          clear ([None]) the read deadline. Absolute so that one
          deadline spans the multiple reads of a framed message. *)
  set_recv_limit : int option -> unit;
      (** Install or clear the maximum accepted [read_line] length in
          bytes (the decode-hardening frame limit). Oversized lines are
          discarded with bounded memory and raise {!Frame_limit} with
          the stream left synchronized at the next line. *)
  peer : string;  (** Peer description for logs. *)
}

val poll_interval : float
(** Granularity (seconds) of the timed waits used where the OS gives no
    native timed primitive — in-memory pipe reads, injected read stalls,
    and the client demultiplexer's deadline waits (OCaml's [Condition]
    has no timed wait). Coarse enough to stay cheap, fine enough that
    deadlines are honoured well within what the tests assert. *)

type listener = {
  accept : unit -> channel;  (** Blocks until a client connects. *)
  shutdown : unit -> unit;  (** Stop accepting; wakes blocked accepts. *)
  bound_host : string;
  bound_port : int;  (** Actual port (useful when asked for port 0). *)
}

val listen : proto:string -> host:string -> port:int -> listener
(** Create a listening endpoint. For ["tcp"], [port = 0] picks a free
    port. For ["mem"], [port = 0] allocates a fresh slot.
    @raise Transport_error on unknown protocol or bind failure. *)

val connect : proto:string -> host:string -> port:int -> channel
(** Open a channel to a listening endpoint.
    @raise Transport_error on unknown protocol or connection failure. *)

val mem_reset : unit -> unit
(** Drop all in-memory listeners (test isolation). *)

val metered :
  on_read:(int -> unit) -> on_write:(int -> unit) -> channel -> channel
(** Wrap a channel so every wire byte (framing included) is reported to
    the callbacks after the underlying operation succeeds — the feed
    for the observability layer's per-endpoint byte counters.
    [read_line] counts the consumed newline terminator, so a loopback
    pair's in/out totals match. Callbacks run on the I/O path: they
    must be cheap and must not raise. *)

(** Deterministic fault injection for the ["faulty:<inner>"] transport.

    A {e plan} is a pure function from an operation point (connect /
    read / write, its global sequence number, and the channel's peer
    description) to an optional fault. The plan is process-global:
    {!set_plan} installs it and resets the sequence counters, so a test
    that sets a plan, runs a scenario and {!clear}s gets a reproducible
    fault schedule every time. *)
module Fault : sig
  type fault =
    | Refuse_connect  (** The connect attempt fails outright. *)
    | Stall_read
        (** The read hangs like a dead peer; it returns only by raising
            {!Timeout} when the channel deadline passes, or
            {!Transport_error} if the connection dies. *)
    | Drop_read  (** The connection dies instead of delivering data. *)
    | Truncate_write of int
        (** Only the first [n] bytes are written; then the connection
            dies, so the peer sees a mid-message EOF. *)
    | Corrupt_write of int  (** Byte at offset [n mod length] is flipped. *)
    | Delay_write of float  (** The write is delayed by [seconds]. *)

  type point = {
    op : [ `Connect | `Read | `Write ];
    nth : int;  (** Global per-[op] sequence number since {!set_plan}. *)
    peer : string;
        (** The channel's peer description — lets a plan target one side
            of a connection (e.g. only channels talking {e to} the
            server). *)
  }

  type plan = point -> fault option

  val none : plan

  val seeded :
    seed:int ->
    ?refuse_connect:float ->
    ?stall_read:float ->
    ?drop_read:float ->
    ?truncate_write:float ->
    ?corrupt_write:float ->
    ?delay_write:float ->
    ?side:(string -> bool) ->
    unit ->
    plan
  (** A random plan with the given per-operation fault rates (each in
      [0..1]), fully determined by [seed]: the decision at each point is
      a pure function of the seed and the point, so replaying the same
      scenario reproduces the same faults. [side] filters by peer
      description (default: inject everywhere). *)

  val set_plan : plan -> unit
  (** Install a plan and reset the sequence counters and statistics. *)

  val clear : unit -> unit
  (** Back to {!none} (also resets counters). *)

  val injected : unit -> (string * int) list
  (** Injected-fault counts by fault name, since the last {!set_plan}. *)

  val injected_total : unit -> int
end
