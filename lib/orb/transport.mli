(** Byte transports.

    Two transports ship with the runtime:
    - ["tcp"] — real TCP sockets (Unix), one thread per accepted
      connection on the server side;
    - ["mem"] — an in-process loopback with the same interface, used by
      the tests and single-process examples. "Ports" are slots in a
      process-global registry, so several in-memory ORBs (address spaces)
      can coexist and call each other deterministically.

    Channels carry raw bytes; message demarcation is the communicator's
    job (paper: the [ObjectCommunicator] "provides the abstraction of a
    communication channel on which individual requests can be
    demarcated"). *)

exception Transport_error of string

type channel = {
  write : string -> unit;  (** Write all bytes. *)
  read_line : unit -> string;
      (** Read up to (and excluding) the next ['\n'].
          @raise Transport_error on EOF. *)
  read_exact : int -> string;
      (** Read exactly [n] bytes.
          @raise Transport_error on EOF. *)
  close : unit -> unit;
  peer : string;  (** Peer description for logs. *)
}

type listener = {
  accept : unit -> channel;  (** Blocks until a client connects. *)
  shutdown : unit -> unit;  (** Stop accepting; wakes blocked accepts. *)
  bound_host : string;
  bound_port : int;  (** Actual port (useful when asked for port 0). *)
}

val listen : proto:string -> host:string -> port:int -> listener
(** Create a listening endpoint. For ["tcp"], [port = 0] picks a free
    port. For ["mem"], [port = 0] allocates a fresh slot.
    @raise Transport_error on unknown protocol or bind failure. *)

val connect : proto:string -> host:string -> port:int -> channel
(** Open a channel to a listening endpoint.
    @raise Transport_error on unknown protocol or connection failure. *)

val mem_reset : unit -> unit
(** Drop all in-memory listeners (test isolation). *)
