(** Request/reply interceptors: the "filters ... triggered in the
    dispatch path" of Orbix and the "interceptors" of Visibroker that the
    paper surveys in Section 5 as the {e expose-a-hook} school of ORB
    customization (versus its own template approach).

    An interceptor sees every request and reply crossing its side of the
    ORB. Client-side interceptors wrap outgoing invocations; server-side
    interceptors wrap the dispatch path. Both may rewrite messages or
    abort a call by raising {!Reject}. Interceptors run in registration
    order on requests and in reverse order on replies (onion layering). *)

exception Reject of string
(** Abort the intercepted call; the initiator sees a system exception
    carrying the message. *)

type t = {
  name : string;
  on_request : Protocol.request -> Protocol.request;
      (** May rewrite the request (e.g. stamp a context token into the
          payload is not possible — payloads are opaque — but operation,
          target and oneway flag are fair game) or raise {!Reject}. *)
  on_reply : Protocol.request -> Protocol.reply -> Protocol.reply;
      (** Observes/rewrites the reply paired with its request. *)
  on_error : Protocol.request -> exn -> unit;
      (** Observes invocation failures that produced no reply: transport
          errors (each failed attempt, including ones about to be
          retried), deadline timeouts, and circuit-breaker fast-fails.
          Observation only — it cannot suppress the exception. *)
}

val make :
  ?on_request:(Protocol.request -> Protocol.request) ->
  ?on_reply:(Protocol.request -> Protocol.reply -> Protocol.reply) ->
  ?on_error:(Protocol.request -> exn -> unit) ->
  string ->
  t
(** Identity behaviour for omitted hooks. *)

(** A chain of interceptors. *)
type chain

val empty_chain : unit -> chain
val add : chain -> t -> unit
val names : chain -> string list

val apply_request : chain -> Protocol.request -> Protocol.request
(** Registration order. @raise Reject if any interceptor rejects. *)

val apply_reply : chain -> Protocol.request -> Protocol.reply -> Protocol.reply
(** Reverse registration order. *)

val apply_error : chain -> Protocol.request -> exn -> unit
(** Registration order; exceptions from hooks propagate. *)

(** {2 Stock interceptors} *)

val logger : (string -> unit) -> t
(** Logs one line per request and reply. *)

val call_counter : unit -> t * (unit -> int)
(** Counts requests; returns the interceptor and a reader. *)

val failure_counter : unit -> t * (unit -> int)
(** Counts invocation failures seen by [on_error]; returns the
    interceptor and a reader. *)

val deny : (op:string -> type_id:string -> bool) -> reason:string -> t
(** Rejects requests for which the predicate returns true — a minimal
    authorization filter. *)
