exception Transport_error of string
exception Timeout of string

exception Frame_limit of string
(* An incoming line exceeded the channel's receive limit. The oversized
   line has been discarded through its terminating newline with bounded
   memory, so the byte stream is still synchronized: the caller may
   answer with an error and keep reading. *)

let () =
  Printexc.register_printer (function
    | Transport_error m -> Some (Printf.sprintf "Orb.Transport_error: %s" m)
    | Timeout m -> Some (Printf.sprintf "Orb.Transport.Timeout: %s" m)
    | Frame_limit m -> Some (Printf.sprintf "Orb.Transport.Frame_limit: %s" m)
    | _ -> None)

let fail fmt = Printf.ksprintf (fun m -> raise (Transport_error m)) fmt
let timeout_fail fmt = Printf.ksprintf (fun m -> raise (Timeout m)) fmt
let frame_fail fmt = Printf.ksprintf (fun m -> raise (Frame_limit m)) fmt

type channel = {
  write : string -> unit;
  writev : string list -> unit;
  read_line : unit -> string;
  read_exact : int -> string;
  close : unit -> unit;
  set_deadline : float option -> unit;
  set_recv_limit : int option -> unit;
  peer : string;
}

(* Granularity of the timed waits used where the OS gives us no native
   timed primitive (in-memory pipes, injected read stalls). Coarse
   enough to stay cheap, fine enough that deadlines are honoured well
   within the +-100ms the tests assert. *)
let poll_interval = 0.005

type listener = {
  accept : unit -> channel;
  shutdown : unit -> unit;
  bound_host : string;
  bound_port : int;
}

(* ---------------- TCP ---------------- *)

let tcp_channel fd ~peer =
  (* [buf] holds bytes read from the socket but not yet consumed; [pos]
     is the consumption offset. Consuming advances [pos]; the buffer is
     compacted only when the dead prefix grows large, keeping reads
     amortized linear in the bytes transferred. *)
  let buf = Buffer.create 4096 in
  let pos = ref 0 in
  let deadline = ref None in
  (* Never [Unix.close] an fd another thread may still hand to a
     syscall: the kernel recycles fd numbers immediately, so a stale
     read/write would land on whatever connection got the number next —
     a cross-connection hijack (observed as a text server answering a
     GIOP client after a test torn one down). [close] therefore only
     marks the channel closing and shuts the socket down (which wakes a
     reader blocked in select/read with EOF); the real [Unix.close] is
     done by the last thread to leave a syscall, or by [close] itself
     when no syscall is in flight. *)
  let guard = Locked.create ~name:"tcp.channel" ~rank:Locked.Rank.tcp_channel in
  let users = ref 0 in
  let closing = ref false in
  let fd_closed = ref false in
  let really_close () =
    if not !fd_closed then begin
      fd_closed := true;
      try Unix.close fd with Unix.Unix_error (_, _, _) -> ()
    end
  in
  let enter () =
    Locked.with_lock guard (fun () ->
        if !closing then fail "connection to %s is closed" peer;
        incr users)
  in
  let leave () =
    Locked.with_lock guard (fun () ->
        decr users;
        if !closing && !users = 0 then really_close ())
  in
  let guarded f =
    enter ();
    Fun.protect ~finally:leave f
  in
  let available () = Buffer.length buf - !pos in
  let compact () =
    if !pos > 65536 && !pos > Buffer.length buf / 2 then begin
      let rest = Buffer.sub buf !pos (available ()) in
      Buffer.clear buf;
      Buffer.add_string buf rest;
      pos := 0
    end
  in
  (* Wait (select) until the socket is readable or the channel deadline
     passes. A deadline is an absolute [Unix.gettimeofday] instant, so
     it naturally spans the several reads one framed message needs. *)
  let await_readable () =
    match !deadline with
    | None -> ()
    | Some d ->
        let rec wait () =
          let remaining = d -. Unix.gettimeofday () in
          if remaining <= 0. then
            timeout_fail "read from %s timed out" peer
          else
            match Unix.select [ fd ] [] [] remaining with
            | [], _, _ -> timeout_fail "read from %s timed out" peer
            | _ -> ()
            | exception Unix.Unix_error (Unix.EINTR, _, _) -> wait ()
            | exception Unix.Unix_error (e, _, _) ->
                fail "read from %s failed: %s" peer (Unix.error_message e)
        in
        wait ()
  in
  let refill () =
    guarded (fun () ->
        await_readable ();
        let chunk = Bytes.create 65536 in
        let n =
          try Unix.read fd chunk 0 (Bytes.length chunk)
          with Unix.Unix_error (e, _, _) ->
            fail "read from %s failed: %s" peer (Unix.error_message e)
        in
        if n = 0 then fail "connection to %s closed by peer" peer;
        Buffer.add_subbytes buf chunk 0 n)
  in
  let take n =
    let head = Buffer.sub buf !pos n in
    pos := !pos + n;
    compact ();
    head
  in
  let find_newline () =
    let len = Buffer.length buf in
    let rec scan i =
      if i >= len then None
      else if Buffer.nth buf i = '\n' then Some i
      else scan (i + 1)
    in
    scan !pos
  in
  let recv_limit = ref None in
  let over lim = frame_fail "line from %s exceeds %d-byte receive limit" peer lim in
  (* Discard an oversized line through its terminating newline with
     bounded memory: whole buffered chunks are dropped until the newline
     arrives, so the stream ends up synchronized at the next line. *)
  let rec discard_line lim =
    match find_newline () with
    | Some i ->
        pos := i + 1;
        compact ();
        over lim
    | None ->
        Buffer.clear buf;
        pos := 0;
        refill ();
        discard_line lim
  in
  let rec read_line () =
    match find_newline () with
    | Some i -> (
        let linelen = i - !pos in
        match !recv_limit with
        | Some lim when linelen > lim ->
            pos := i + 1;
            compact ();
            over lim
        | _ ->
            let line = take (linelen + 1) in
            String.sub line 0 (String.length line - 1))
    | None -> (
        match !recv_limit with
        | Some lim when available () > lim -> discard_line lim
        | _ ->
            refill ();
            read_line ())
  in
  let rec read_exact n =
    if available () >= n then take n
    else (
      refill ();
      read_exact n)
  in
  (* [Unix.write_substring] writes straight from the immutable string —
     no [Bytes.of_string] copy of the payload — so a multi-slice send
     (frame header + body) moves each slice from where it was encoded to
     the socket with zero intermediate copies. *)
  let write_slice s =
    let len = String.length s in
    let rec go off =
      if off < len then
        let n =
          try Unix.write_substring fd s off (len - off)
          with Unix.Unix_error (e, _, _) ->
            fail "write to %s failed: %s" peer (Unix.error_message e)
        in
        go (off + n)
    in
    go 0
  in
  let writev parts = guarded (fun () -> List.iter write_slice parts) in
  let write s = writev [ s ] in
  let close () =
    Locked.with_lock guard (fun () ->
        if not !closing then begin
          closing := true;
          (* Wake any thread blocked in select/read on this socket; their
             next step observes [closing] and fails cleanly. shutdown(2)
             never blocks, so holding the guard across it is safe. *)
          (try Unix.shutdown fd Unix.SHUTDOWN_ALL
           with Unix.Unix_error (_, _, _) -> ());
          if !users = 0 then really_close ()
        end)
  in
  let set_deadline d = deadline := d in
  let set_recv_limit l = recv_limit := l in
  { write; writev; read_line; read_exact; close; set_deadline; set_recv_limit; peer }

let resolve_host host =
  if host = "localhost" || host = "" then Unix.inet_addr_loopback
  else
    try Unix.inet_addr_of_string host
    with Failure _ -> (
      match Unix.gethostbyname host with
      | { Unix.h_addr_list = [||]; _ } -> fail "host %s has no address" host
      | { Unix.h_addr_list; _ } -> h_addr_list.(0)
      | exception Not_found -> fail "unknown host %s" host)

let tcp_listen ~host ~port =
  let addr = Unix.ADDR_INET (resolve_host host, port) in
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt sock Unix.SO_REUSEADDR true;
  (try Unix.bind sock addr
   with Unix.Unix_error (e, _, _) ->
     fail "bind to %s:%d failed: %s" host port (Unix.error_message e));
  Unix.listen sock 64;
  let bound_port =
    match Unix.getsockname sock with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> port
  in
  let stopped = ref false in
  (* Same deferred-close discipline as [tcp_channel]: [Unix.close]-ing
     the listening socket while another thread is (or is about to be)
     inside [Unix.accept] on it lets the kernel recycle the fd number;
     the stale accept would then serve connections meant for whoever
     got the recycled fd. The accepting thread holds a use count; the
     real close happens only when the last user leaves. *)
  let guard = Locked.create ~name:"tcp.listener" ~rank:Locked.Rank.tcp_channel in
  let users = ref 0 in
  let sock_closed = ref false in
  let really_close () =
    if not !sock_closed then begin
      sock_closed := true;
      try Unix.close sock with Unix.Unix_error (_, _, _) -> ()
    end
  in
  let accept () =
    Locked.with_lock guard (fun () ->
        if !stopped then fail "listener on port %d is shut down" bound_port;
        incr users);
    let leave () =
      Locked.with_lock guard (fun () ->
          decr users;
          if !stopped && !users = 0 then really_close ())
    in
    match Fun.protect ~finally:leave (fun () -> Unix.accept sock) with
    | fd, addr ->
        if !stopped then begin
          (* Shutdown raced the accept: the fd number of the closed
             listener may already have been recycled for a NEW listener,
             in which case this thread just stole a connection meant for
             the new server. Hand it back by closing; the client sees a
             reset and (if configured) retries against the real owner. *)
          (try Unix.close fd with Unix.Unix_error (_, _, _) -> ());
          fail "listener on port %d is shut down" bound_port
        end;
        (* Request/reply frames are small; without TCP_NODELAY each reply
           can sit in Nagle's buffer waiting for the previous segment's
           ACK, adding up to an RTT of idle latency per call. *)
        (try Unix.setsockopt fd Unix.TCP_NODELAY true
         with Unix.Unix_error (_, _, _) -> ());
        let peer =
          match addr with
          | Unix.ADDR_INET (peer_addr, peer_port) ->
              Printf.sprintf "%s:%d" (Unix.string_of_inet_addr peer_addr) peer_port
          | _ -> "<unknown>"
        in
        tcp_channel fd ~peer
    | exception Unix.Unix_error (e, _, _) ->
        fail "accept on port %d failed: %s" bound_port (Unix.error_message e)
  in
  let shutdown () =
    let need_wake =
      Locked.with_lock guard (fun () ->
          if !stopped then None
          else begin
            stopped := true;
            let need_wake = !users > 0 in
            if not need_wake then really_close ();
            Some need_wake
          end)
    in
    match need_wake with
    | None -> ()
    | Some need_wake ->
      (* Wake any thread blocked in [accept]. Closing alone does not
         interrupt a blocked accept on Linux (and [Unix.shutdown] on a
         listening socket is ENOTCONN): the thread would sleep on until
         the fd number is recycled — possibly for the NEXT listener,
         whose connections the old accept loop (still speaking the OLD
         protocol) would then steal. A throwaway self-connection pops
         the blocked accept out of the kernel; the post-accept
         [stopped] re-check makes it discard the dummy and bail out,
         and its [leave] performs the deferred close. *)
        if need_wake then
          try
            let wake = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
            (try
               Unix.connect wake (Unix.ADDR_INET (resolve_host host, bound_port))
             with Unix.Unix_error (_, _, _) -> ());
            try Unix.close wake with Unix.Unix_error (_, _, _) -> ()
          with Unix.Unix_error (_, _, _) -> ()
  in
  { accept; shutdown; bound_host = host; bound_port }

let tcp_connect ~host ~port =
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try Unix.connect sock (Unix.ADDR_INET (resolve_host host, port))
   with Unix.Unix_error (e, _, _) ->
     (try Unix.close sock with Unix.Unix_error (_, _, _) -> ());
     fail "connect to %s:%d failed: %s" host port (Unix.error_message e));
  (* See the accept path: requests are small, so disable Nagle. *)
  (try Unix.setsockopt sock Unix.TCP_NODELAY true
   with Unix.Unix_error (_, _, _) -> ());
  tcp_channel sock ~peer:(Printf.sprintf "%s:%d" host port)

(* ---------------- in-memory loopback ---------------- *)

(* A unidirectional byte pipe with blocking reads. The consumption
   offset [pos] advances on reads; compaction is amortized so large
   messages do not cause quadratic copying. *)
module Pipe = struct
  type t = {
    lock : Locked.t;  (* rank [pipe]; intrinsic condition = data/close *)
    buf : Buffer.t;
    mutable pos : int;  (* consumed prefix *)
    mutable closed : bool;
  }

  let create () =
    { lock = Locked.create ~name:"mem.pipe" ~rank:Locked.Rank.pipe;
      buf = Buffer.create 1024; pos = 0; closed = false }

  let write t s =
    Locked.with_lock t.lock (fun () ->
        if t.closed then fail "write to closed in-memory channel";
        Buffer.add_string t.buf s;
        Locked.broadcast t.lock)

  let close t =
    Locked.with_lock t.lock (fun () ->
        t.closed <- true;
        Locked.broadcast t.lock)

  let compact t =
    if t.pos > 65536 && t.pos > Buffer.length t.buf / 2 then begin
      let rest = Buffer.sub t.buf t.pos (Buffer.length t.buf - t.pos) in
      Buffer.clear t.buf;
      Buffer.add_string t.buf rest;
      t.pos <- 0
    end

  (* Blocks until [check buf pos len] returns (consume, result), where
     [consume] counts from [pos]. [deadline] is re-read on every wakeup
     so a deadline installed mid-wait still takes effect. Without a
     deadline we park on the lock's condition; with one we poll, since
     OCaml's [Condition] has no timed wait — each locked step either
     decides or hands [`Poll] to the unlocked delay loop below. *)
  let read_with t ?(deadline = fun () -> None) check ~what =
    let step () =
      Locked.with_lock t.lock (fun () ->
          let rec wait () =
            match check t.buf t.pos (Buffer.length t.buf) with
            | Some (consume, result) ->
                t.pos <- t.pos + consume;
                compact t;
                `Done result
            | None ->
                if t.closed then `Closed
                else
                  match deadline () with
                  | None ->
                      Locked.wait t.lock;
                      wait ()
                  | Some d ->
                      let remaining = d -. Unix.gettimeofday () in
                      if remaining <= 0. then `Timeout else `Poll remaining
          in
          wait ())
    in
    let rec loop () =
      match step () with
      | `Done result -> result
      | `Closed -> fail "in-memory channel closed while reading %s" what
      | `Timeout -> timeout_fail "in-memory read of %s timed out" what
      | `Poll remaining ->
          Thread.delay (Float.min poll_interval remaining);
          loop ()
    in
    loop ()
end

let mem_channel_pair ~peer_a ~peer_b =
  let a_to_b = Pipe.create () and b_to_a = Pipe.create () in
  let mk ~incoming ~outgoing ~peer =
    let deadline = ref None in
    let get_deadline () = !deadline in
    let recv_limit = ref None in
    {
      write = (fun s -> Pipe.write outgoing s);
      (* The pipe buffer is the "wire": appending slice-by-slice is
         already copy-free on the sender side, and callers serialize
         sends per connection so the slices stay adjacent. *)
      writev = (fun parts -> List.iter (Pipe.write outgoing) parts);
      read_line =
        (fun () ->
          (* Mirror of the TCP discard-resync: once a line is known to
             exceed the limit, consume-and-drop chunks until its newline
             arrives, then fail with the stream synchronized. *)
          let discarding = ref false in
          let rec go () =
            match
              Pipe.read_with incoming ~deadline:get_deadline ~what:"line"
                (fun buf pos len ->
                  let rec scan i =
                    if i >= len then None
                    else if Buffer.nth buf i = '\n' then Some i
                    else scan (i + 1)
                  in
                  match scan pos with
                  | Some i -> (
                      let n = i - pos in
                      if !discarding then Some (n + 1, `Overflow)
                      else
                        match !recv_limit with
                        | Some lim when n > lim -> Some (n + 1, `Overflow)
                        | _ -> Some (n + 1, `Line (Buffer.sub buf pos n)))
                  | None -> (
                      if !discarding && len > pos then Some (len - pos, `More)
                      else
                        match !recv_limit with
                        | Some lim when len - pos > lim ->
                            discarding := true;
                            Some (len - pos, `More)
                        | _ -> None))
            with
            | `Line s -> s
            | `More -> go ()
            | `Overflow ->
                frame_fail "line from %s exceeds %d-byte receive limit" peer
                  (Option.value ~default:0 !recv_limit)
          in
          go ());
      read_exact =
        (fun n ->
          Pipe.read_with incoming ~deadline:get_deadline ~what:"bytes"
            (fun buf pos len ->
              if len - pos >= n then Some (n, Buffer.sub buf pos n) else None));
      close =
        (fun () ->
          Pipe.close outgoing;
          Pipe.close incoming);
      set_deadline = (fun d -> deadline := d);
      set_recv_limit = (fun l -> recv_limit := l);
      peer;
    }
  in
  ( mk ~incoming:b_to_a ~outgoing:a_to_b ~peer:peer_a,
    mk ~incoming:a_to_b ~outgoing:b_to_a ~peer:peer_b )

(* Registry of in-memory listeners: port -> pending-connection queue. *)
type mem_listener_state = {
  ml_lock : Locked.t;  (* rank [mem_listener]; intrinsic cond = pending *)
  mutable ml_pending : channel list;  (* server-side ends awaiting accept *)
  mutable ml_closed : bool;
}

let mem_registry : (int, mem_listener_state) Hashtbl.t = Hashtbl.create 16

let mem_registry_lock =
  Locked.create ~name:"mem.registry" ~rank:Locked.Rank.mem_registry

let mem_next_port = ref 1

let mem_reset () =
  (* registry (28) > listener (26): this nesting is the reason the two
     ranks are distinct. *)
  Locked.with_lock mem_registry_lock (fun () ->
      Hashtbl.iter
        (fun _ st ->
          Locked.with_lock st.ml_lock (fun () ->
              st.ml_closed <- true;
              Locked.broadcast st.ml_lock))
        mem_registry;
      Hashtbl.reset mem_registry)

let mem_listen ~port =
  let port, st =
    Locked.with_lock mem_registry_lock (fun () ->
        let port =
          if port <> 0 then port
          else (
            while Hashtbl.mem mem_registry !mem_next_port do
              incr mem_next_port
            done;
            !mem_next_port)
        in
        if Hashtbl.mem mem_registry port then
          fail "in-memory port %d is already bound" port;
        let st =
          { ml_lock =
              Locked.create ~name:"mem.listener" ~rank:Locked.Rank.mem_listener;
            ml_pending = []; ml_closed = false }
        in
        Hashtbl.replace mem_registry port st;
        (port, st))
  in
  let accept () =
    Locked.with_lock st.ml_lock (fun () ->
        let rec wait () =
          match st.ml_pending with
          | ch :: rest ->
              st.ml_pending <- rest;
              ch
          | [] ->
              if st.ml_closed then
                fail "in-memory listener on port %d is shut down" port
              else (
                Locked.wait st.ml_lock;
                wait ())
        in
        wait ())
  in
  let shutdown () =
    Locked.with_lock mem_registry_lock (fun () ->
        Hashtbl.remove mem_registry port);
    Locked.with_lock st.ml_lock (fun () ->
        st.ml_closed <- true;
        Locked.broadcast st.ml_lock)
  in
  { accept; shutdown; bound_host = "local"; bound_port = port }

let mem_connect ~port =
  let st =
    Locked.with_lock mem_registry_lock (fun () ->
        Hashtbl.find_opt mem_registry port)
  in
  match st with
  | None -> fail "no in-memory listener on port %d" port
  | Some st ->
      let client_end, server_end =
        mem_channel_pair
          ~peer_a:(Printf.sprintf "mem:%d(server)" port)
          ~peer_b:(Printf.sprintf "mem:%d(client)" port)
      in
      Locked.with_lock st.ml_lock (fun () ->
          if st.ml_closed then
            fail "in-memory listener on port %d is shut down" port;
          st.ml_pending <- st.ml_pending @ [ server_end ];
          Locked.broadcast st.ml_lock);
      client_end

(* ---------------- fault injection ---------------- *)

(* A ["faulty:<inner>"] transport wraps ["tcp"] or ["mem"] and injects
   failures according to a process-global, deterministically seeded
   plan, so every robustness behaviour of the runtime (timeouts,
   retries, circuit breakers) is testable without a flaky network. *)
module Fault = struct
  type fault =
    | Refuse_connect  (** The connect attempt fails outright. *)
    | Stall_read  (** The read hangs like a dead peer (until deadline). *)
    | Drop_read  (** The connection dies instead of delivering data. *)
    | Truncate_write of int  (** Only the first [n] bytes go out, then death. *)
    | Corrupt_write of int  (** Byte at offset [n mod len] is flipped. *)
    | Delay_write of float  (** The write is delayed by [seconds]. *)

  type point = { op : [ `Connect | `Read | `Write ]; nth : int; peer : string }
  type plan = point -> fault option

  let none : plan = fun _ -> None

  let fault_name = function
    | Refuse_connect -> "refuse_connect"
    | Stall_read -> "stall_read"
    | Drop_read -> "drop_read"
    | Truncate_write _ -> "truncate_write"
    | Corrupt_write _ -> "corrupt_write"
    | Delay_write _ -> "delay_write"

  (* Global plan + deterministic per-op counters. One lock guards all
     of it; fault decisions are cheap. *)
  let lock = Locked.create ~name:"fault" ~rank:Locked.Rank.fault
  let active : plan ref = ref none
  let n_connect = ref 0
  let n_read = ref 0
  let n_write = ref 0
  let injected_counts : (string, int) Hashtbl.t = Hashtbl.create 8

  let with_mutex f = Locked.with_lock lock f

  let set_plan p =
    with_mutex (fun () ->
        active := p;
        n_connect := 0;
        n_read := 0;
        n_write := 0;
        Hashtbl.reset injected_counts)

  let clear () = set_plan none

  let injected () =
    with_mutex (fun () ->
        List.sort compare
          (Hashtbl.fold (fun k v acc -> (k, v) :: acc) injected_counts []))

  let injected_total () =
    List.fold_left (fun acc (_, n) -> acc + n) 0 (injected ())

  (* Consult the plan at one operation point; counts the injection. *)
  let draw op ~peer =
    with_mutex (fun () ->
        let counter =
          match op with `Connect -> n_connect | `Read -> n_read | `Write -> n_write
        in
        let nth = !counter in
        incr counter;
        match !active { op; nth; peer } with
        | None -> None
        | Some f ->
            let name = fault_name f in
            Hashtbl.replace injected_counts name
              (1 + Option.value ~default:0 (Hashtbl.find_opt injected_counts name));
            Some f)

  (* A derived, deterministic random plan: the decision at each point is
     a pure function of [seed] and the point's (op, nth), so the same
     seed always produces the same fault schedule. [side] restricts
     injection to channels whose peer description matches. *)
  let seeded ~seed ?(refuse_connect = 0.) ?(stall_read = 0.) ?(drop_read = 0.)
      ?(truncate_write = 0.) ?(corrupt_write = 0.) ?(delay_write = 0.)
      ?(side = fun (_ : string) -> true) () : plan =
   fun { op; nth; peer } ->
    if not (side peer) then None
    else
      let tag = match op with `Connect -> 1 | `Read -> 2 | `Write -> 3 in
      let st = Random.State.make [| seed; tag; nth |] in
      let d = Random.State.float st 1.0 in
      match op with
      | `Connect -> if d < refuse_connect then Some Refuse_connect else None
      | `Read ->
          if d < stall_read then Some Stall_read
          else if d < stall_read +. drop_read then Some Drop_read
          else None
      | `Write ->
          if d < truncate_write then Some (Truncate_write (Random.State.int st 8))
          else if d < truncate_write +. corrupt_write then
            Some (Corrupt_write (Random.State.int st 64))
          else if d < truncate_write +. corrupt_write +. delay_write then
            Some (Delay_write (0.001 +. Random.State.float st 0.004))
          else None
end

let faulty_channel inner =
  (* [broken] marks a connection killed by an injected fault; every
     later operation fails like a dead socket would. *)
  let broken = ref false in
  let deadline = ref None in
  let guard () =
    if !broken then fail "connection to %s broken by injected fault" inner.peer
  in
  let kill () =
    broken := true;
    inner.close ()
  in
  let on_read read =
    guard ();
    match Fault.draw `Read ~peer:inner.peer with
    | Some Fault.Stall_read ->
        (* Hang exactly like a peer that stopped responding: wake only
           when the channel deadline passes or the channel dies. *)
        let rec stall () =
          (match !deadline with
          | Some d when Unix.gettimeofday () >= d ->
              timeout_fail "read from %s timed out (injected stall)" inner.peer
          | _ -> ());
          guard ();
          (* Sleep to the actual deadline, not a fixed tick: a stalled
             read with 1ms of budget left must wake in ~1ms, not after
             a full poll interval — lapsed deadlines are load-shedding
             signals and every extra tick is latency the caller pays. *)
          let nap =
            match !deadline with
            | Some d ->
                Float.min poll_interval
                  (Float.max 0.0005 (d -. Unix.gettimeofday ()))
            | None -> poll_interval
          in
          Thread.delay nap;
          stall ()
        in
        stall ()
    | Some Fault.Drop_read ->
        kill ();
        fail "connection to %s dropped by injected fault" inner.peer
    | _ -> read ()
  in
  let write s =
    guard ();
    match Fault.draw `Write ~peer:inner.peer with
    | Some (Fault.Truncate_write n) ->
        inner.write (String.sub s 0 (min n (String.length s)));
        kill ();
        fail "write to %s truncated by injected fault" inner.peer
    | Some (Fault.Corrupt_write n) ->
        if String.length s = 0 then inner.write s
        else begin
          let b = Bytes.of_string s in
          let i = n mod Bytes.length b in
          Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x20));
          inner.write (Bytes.to_string b)
        end
    | Some (Fault.Delay_write d) ->
        Thread.delay d;
        inner.write s
    | _ -> inner.write s
  in
  {
    write;
    (* One fault draw per logical frame, as for [write]: the fault model
       describes what the network does to a send, not to each slice. *)
    writev = (fun parts -> write (String.concat "" parts));
    read_line = (fun () -> on_read inner.read_line);
    read_exact = (fun n -> on_read (fun () -> inner.read_exact n));
    (* Closing marks the channel broken so a concurrently stalled read
       (Stall_read) wakes with a transport error instead of spinning on a
       channel nobody will use again — the client demux relies on this
       when it kills a timed-out connection under a reader thread. *)
    close = (fun () -> kill ());
    set_deadline =
      (fun d ->
        deadline := d;
        inner.set_deadline d);
    set_recv_limit = inner.set_recv_limit;
    peer = inner.peer;
  }

let faulty_prefix = "faulty:"

let faulty_inner proto =
  let n = String.length faulty_prefix in
  if
    String.length proto > n && String.sub proto 0 n = faulty_prefix
  then Some (String.sub proto n (String.length proto - n))
  else None

(* ---------------- byte metering ---------------- *)

(* Wrap a channel so every wire byte is reported to the callbacks — the
   feed for the observability layer's per-endpoint byte counters. The
   callbacks run on the I/O thread after the operation succeeds; they
   must be cheap and must not raise. read_line counts the consumed
   newline terminator, so in+out totals match across a loopback pair. *)
let metered ~on_read ~on_write chan =
  {
    chan with
    write =
      (fun s ->
        chan.write s;
        on_write (String.length s));
    writev =
      (fun parts ->
        chan.writev parts;
        on_write (List.fold_left (fun acc s -> acc + String.length s) 0 parts));
    read_line =
      (fun () ->
        let line = chan.read_line () in
        on_read (String.length line + 1);
        line);
    read_exact =
      (fun n ->
        let s = chan.read_exact n in
        on_read (String.length s);
        s);
  }

(* ---------------- dispatch by protocol name ---------------- *)

let rec listen ~proto ~host ~port =
  match proto with
  | "tcp" -> tcp_listen ~host ~port
  | "mem" -> mem_listen ~port
  | p -> (
      match faulty_inner p with
      | Some inner ->
          let l = listen ~proto:inner ~host ~port in
          { l with accept = (fun () -> faulty_channel (l.accept ())) }
      | None -> fail "unknown transport protocol %S" p)

let rec connect ~proto ~host ~port =
  match proto with
  | "tcp" -> tcp_connect ~host ~port
  | "mem" -> mem_connect ~port
  | p -> (
      match faulty_inner p with
      | Some inner -> (
          let peer = Printf.sprintf "%s:%s:%d" inner host port in
          match Fault.draw `Connect ~peer with
          | Some Fault.Refuse_connect ->
              fail "connect to %s refused by injected fault" peer
          | _ -> faulty_channel (connect ~proto:inner ~host ~port))
      | None -> fail "unknown transport protocol %S" p)
