exception Transport_error of string

let () =
  Printexc.register_printer (function
    | Transport_error m -> Some (Printf.sprintf "Orb.Transport_error: %s" m)
    | _ -> None)

let fail fmt = Printf.ksprintf (fun m -> raise (Transport_error m)) fmt

type channel = {
  write : string -> unit;
  read_line : unit -> string;
  read_exact : int -> string;
  close : unit -> unit;
  peer : string;
}

type listener = {
  accept : unit -> channel;
  shutdown : unit -> unit;
  bound_host : string;
  bound_port : int;
}

(* ---------------- TCP ---------------- *)

let tcp_channel fd ~peer =
  (* [buf] holds bytes read from the socket but not yet consumed; [pos]
     is the consumption offset. Consuming advances [pos]; the buffer is
     compacted only when the dead prefix grows large, keeping reads
     amortized linear in the bytes transferred. *)
  let buf = Buffer.create 4096 in
  let pos = ref 0 in
  let closed = ref false in
  let available () = Buffer.length buf - !pos in
  let compact () =
    if !pos > 65536 && !pos > Buffer.length buf / 2 then begin
      let rest = Buffer.sub buf !pos (available ()) in
      Buffer.clear buf;
      Buffer.add_string buf rest;
      pos := 0
    end
  in
  let refill () =
    let chunk = Bytes.create 65536 in
    let n =
      try Unix.read fd chunk 0 (Bytes.length chunk)
      with Unix.Unix_error (e, _, _) ->
        fail "read from %s failed: %s" peer (Unix.error_message e)
    in
    if n = 0 then fail "connection to %s closed by peer" peer;
    Buffer.add_subbytes buf chunk 0 n
  in
  let take n =
    let head = Buffer.sub buf !pos n in
    pos := !pos + n;
    compact ();
    head
  in
  let find_newline () =
    let len = Buffer.length buf in
    let rec scan i =
      if i >= len then None
      else if Buffer.nth buf i = '\n' then Some i
      else scan (i + 1)
    in
    scan !pos
  in
  let rec read_line () =
    match find_newline () with
    | Some i ->
        let line = take (i - !pos + 1) in
        String.sub line 0 (String.length line - 1)
    | None ->
        refill ();
        read_line ()
  in
  let rec read_exact n =
    if available () >= n then take n
    else (
      refill ();
      read_exact n)
  in
  let write s =
    let bytes = Bytes.of_string s in
    let len = Bytes.length bytes in
    let rec go off =
      if off < len then
        let n =
          try Unix.write fd bytes off (len - off)
          with Unix.Unix_error (e, _, _) ->
            fail "write to %s failed: %s" peer (Unix.error_message e)
        in
        go (off + n)
    in
    go 0
  in
  let close () =
    if not !closed then (
      closed := true;
      try Unix.close fd with Unix.Unix_error (_, _, _) -> ())
  in
  { write; read_line; read_exact; close; peer }

let resolve_host host =
  if host = "localhost" || host = "" then Unix.inet_addr_loopback
  else
    try Unix.inet_addr_of_string host
    with Failure _ -> (
      match Unix.gethostbyname host with
      | { Unix.h_addr_list = [||]; _ } -> fail "host %s has no address" host
      | { Unix.h_addr_list; _ } -> h_addr_list.(0)
      | exception Not_found -> fail "unknown host %s" host)

let tcp_listen ~host ~port =
  let addr = Unix.ADDR_INET (resolve_host host, port) in
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt sock Unix.SO_REUSEADDR true;
  (try Unix.bind sock addr
   with Unix.Unix_error (e, _, _) ->
     fail "bind to %s:%d failed: %s" host port (Unix.error_message e));
  Unix.listen sock 64;
  let bound_port =
    match Unix.getsockname sock with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> port
  in
  let stopped = ref false in
  let accept () =
    if !stopped then fail "listener on port %d is shut down" bound_port;
    match Unix.accept sock with
    | fd, Unix.ADDR_INET (peer_addr, peer_port) ->
        tcp_channel fd
          ~peer:(Printf.sprintf "%s:%d" (Unix.string_of_inet_addr peer_addr) peer_port)
    | fd, _ -> tcp_channel fd ~peer:"<unknown>"
    | exception Unix.Unix_error (e, _, _) ->
        fail "accept on port %d failed: %s" bound_port (Unix.error_message e)
  in
  let shutdown () =
    if not !stopped then (
      stopped := true;
      (* Closing the socket wakes any accept with an error. *)
      try Unix.close sock with Unix.Unix_error (_, _, _) -> ())
  in
  { accept; shutdown; bound_host = host; bound_port }

let tcp_connect ~host ~port =
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try Unix.connect sock (Unix.ADDR_INET (resolve_host host, port))
   with Unix.Unix_error (e, _, _) ->
     (try Unix.close sock with Unix.Unix_error (_, _, _) -> ());
     fail "connect to %s:%d failed: %s" host port (Unix.error_message e));
  tcp_channel sock ~peer:(Printf.sprintf "%s:%d" host port)

(* ---------------- in-memory loopback ---------------- *)

(* A unidirectional byte pipe with blocking reads. The consumption
   offset [pos] advances on reads; compaction is amortized so large
   messages do not cause quadratic copying. *)
module Pipe = struct
  type t = {
    mutex : Mutex.t;
    cond : Condition.t;
    buf : Buffer.t;
    mutable pos : int;  (* consumed prefix *)
    mutable closed : bool;
  }

  let create () =
    { mutex = Mutex.create (); cond = Condition.create (); buf = Buffer.create 1024;
      pos = 0; closed = false }

  let write t s =
    Mutex.lock t.mutex;
    if t.closed then (
      Mutex.unlock t.mutex;
      fail "write to closed in-memory channel")
    else (
      Buffer.add_string t.buf s;
      Condition.broadcast t.cond;
      Mutex.unlock t.mutex)

  let close t =
    Mutex.lock t.mutex;
    t.closed <- true;
    Condition.broadcast t.cond;
    Mutex.unlock t.mutex

  let compact t =
    if t.pos > 65536 && t.pos > Buffer.length t.buf / 2 then begin
      let rest = Buffer.sub t.buf t.pos (Buffer.length t.buf - t.pos) in
      Buffer.clear t.buf;
      Buffer.add_string t.buf rest;
      t.pos <- 0
    end

  (* Blocks until [check buf pos len] returns (consume, result), where
     [consume] counts from [pos]. *)
  let read_with t check ~what =
    Mutex.lock t.mutex;
    let rec wait () =
      match check t.buf t.pos (Buffer.length t.buf) with
      | Some (consume, result) ->
          t.pos <- t.pos + consume;
          compact t;
          Mutex.unlock t.mutex;
          result
      | None ->
          if t.closed then (
            Mutex.unlock t.mutex;
            fail "in-memory channel closed while reading %s" what)
          else (
            Condition.wait t.cond t.mutex;
            wait ())
    in
    wait ()
end

let mem_channel_pair ~peer_a ~peer_b =
  let a_to_b = Pipe.create () and b_to_a = Pipe.create () in
  let mk ~incoming ~outgoing ~peer =
    {
      write = (fun s -> Pipe.write outgoing s);
      read_line =
        (fun () ->
          Pipe.read_with incoming ~what:"line" (fun buf pos len ->
              let rec scan i =
                if i >= len then None
                else if Buffer.nth buf i = '\n' then
                  Some (i - pos + 1, Buffer.sub buf pos (i - pos))
                else scan (i + 1)
              in
              scan pos));
      read_exact =
        (fun n ->
          Pipe.read_with incoming ~what:"bytes" (fun buf pos len ->
              if len - pos >= n then Some (n, Buffer.sub buf pos n) else None));
      close =
        (fun () ->
          Pipe.close outgoing;
          Pipe.close incoming);
      peer;
    }
  in
  ( mk ~incoming:b_to_a ~outgoing:a_to_b ~peer:peer_a,
    mk ~incoming:a_to_b ~outgoing:b_to_a ~peer:peer_b )

(* Registry of in-memory listeners: port -> pending-connection queue. *)
type mem_listener_state = {
  ml_mutex : Mutex.t;
  ml_cond : Condition.t;
  mutable ml_pending : channel list;  (* server-side ends awaiting accept *)
  mutable ml_closed : bool;
}

let mem_registry : (int, mem_listener_state) Hashtbl.t = Hashtbl.create 16
let mem_registry_mutex = Mutex.create ()
let mem_next_port = ref 1

let mem_reset () =
  Mutex.lock mem_registry_mutex;
  Hashtbl.iter
    (fun _ st ->
      Mutex.lock st.ml_mutex;
      st.ml_closed <- true;
      Condition.broadcast st.ml_cond;
      Mutex.unlock st.ml_mutex)
    mem_registry;
  Hashtbl.reset mem_registry;
  Mutex.unlock mem_registry_mutex

let mem_listen ~port =
  Mutex.lock mem_registry_mutex;
  let port =
    if port <> 0 then port
    else (
      while Hashtbl.mem mem_registry !mem_next_port do
        incr mem_next_port
      done;
      !mem_next_port)
  in
  if Hashtbl.mem mem_registry port then (
    Mutex.unlock mem_registry_mutex;
    fail "in-memory port %d is already bound" port);
  let st =
    { ml_mutex = Mutex.create (); ml_cond = Condition.create (); ml_pending = [];
      ml_closed = false }
  in
  Hashtbl.replace mem_registry port st;
  Mutex.unlock mem_registry_mutex;
  let accept () =
    Mutex.lock st.ml_mutex;
    let rec wait () =
      match st.ml_pending with
      | ch :: rest ->
          st.ml_pending <- rest;
          Mutex.unlock st.ml_mutex;
          ch
      | [] ->
          if st.ml_closed then (
            Mutex.unlock st.ml_mutex;
            fail "in-memory listener on port %d is shut down" port)
          else (
            Condition.wait st.ml_cond st.ml_mutex;
            wait ())
    in
    wait ()
  in
  let shutdown () =
    Mutex.lock mem_registry_mutex;
    Hashtbl.remove mem_registry port;
    Mutex.unlock mem_registry_mutex;
    Mutex.lock st.ml_mutex;
    st.ml_closed <- true;
    Condition.broadcast st.ml_cond;
    Mutex.unlock st.ml_mutex
  in
  { accept; shutdown; bound_host = "local"; bound_port = port }

let mem_connect ~port =
  Mutex.lock mem_registry_mutex;
  let st = Hashtbl.find_opt mem_registry port in
  Mutex.unlock mem_registry_mutex;
  match st with
  | None -> fail "no in-memory listener on port %d" port
  | Some st ->
      let client_end, server_end =
        mem_channel_pair
          ~peer_a:(Printf.sprintf "mem:%d(server)" port)
          ~peer_b:(Printf.sprintf "mem:%d(client)" port)
      in
      Mutex.lock st.ml_mutex;
      if st.ml_closed then (
        Mutex.unlock st.ml_mutex;
        fail "in-memory listener on port %d is shut down" port);
      st.ml_pending <- st.ml_pending @ [ server_end ];
      Condition.broadcast st.ml_cond;
      Mutex.unlock st.ml_mutex;
      client_end

(* ---------------- dispatch by protocol name ---------------- *)

let listen ~proto ~host ~port =
  match proto with
  | "tcp" -> tcp_listen ~host ~port
  | "mem" -> mem_listen ~port
  | p -> fail "unknown transport protocol %S" p

let connect ~proto ~host ~port =
  match proto with
  | "tcp" -> tcp_connect ~host ~port
  | "mem" -> mem_connect ~port
  | p -> fail "unknown transport protocol %S" p
