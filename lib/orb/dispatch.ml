type strategy = Linear | Binary | Hashed

type 'a table =
  | T_linear of (string * 'a) list
  | T_binary of (string * 'a) array  (** sorted by name *)
  | T_hashed of (string, 'a) Hashtbl.t

let strategy_of_string = function
  | "linear" -> Some Linear
  | "binary" -> Some Binary
  | "hash" | "hashed" -> Some Hashed
  | _ -> None

let strategy_to_string = function
  | Linear -> "linear"
  | Binary -> "binary"
  | Hashed -> "hashed"

let all_strategies = [ Linear; Binary; Hashed ]

(* First binding for a name wins, like a comparison chain. *)
let dedup handlers =
  let seen = Hashtbl.create 16 in
  List.filter
    (fun (name, _) ->
      if Hashtbl.mem seen name then false
      else (
        Hashtbl.add seen name ();
        true))
    handlers

let compile strategy handlers =
  let handlers = dedup handlers in
  match strategy with
  | Linear -> T_linear handlers
  | Binary ->
      let arr = Array.of_list handlers in
      Array.sort (fun (a, _) (b, _) -> String.compare a b) arr;
      T_binary arr
  | Hashed ->
      let tbl = Hashtbl.create (2 * List.length handlers) in
      List.iter (fun (name, h) -> Hashtbl.replace tbl name h) handlers;
      T_hashed tbl

let lookup table op =
  match table with
  | T_linear handlers ->
      (* The baseline: one string comparison per declared operation. *)
      let rec scan = function
        | [] -> None
        | (name, h) :: rest -> if String.equal name op then Some h else scan rest
      in
      scan handlers
  | T_binary arr ->
      let rec search lo hi =
        if lo >= hi then None
        else
          let mid = (lo + hi) / 2 in
          let name, h = arr.(mid) in
          let c = String.compare op name in
          if c = 0 then Some h
          else if c < 0 then search lo mid
          else search (mid + 1) hi
      in
      search 0 (Array.length arr)
  | T_hashed tbl -> Hashtbl.find_opt tbl op

let strategy_of = function
  | T_linear _ -> Linear
  | T_binary _ -> Binary
  | T_hashed _ -> Hashed

let size = function
  | T_linear l -> List.length l
  | T_binary a -> Array.length a
  | T_hashed t -> Hashtbl.length t
