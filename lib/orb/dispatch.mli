(** Pluggable operation-dispatch strategies (paper Section 2,
    "Incorporating Custom Optimizations").

    Most IDL compilers emit a chain of string comparisons in the skeleton's
    dispatch method; the paper notes this "can be very expensive for
    interfaces with a large number of methods with long names" and points
    to nested comparisons (Flick) or a hash table as faster alternatives.
    All three are implemented here behind one interface, and bench §E1
    reproduces the comparison. All strategies are observationally
    equivalent (a property test checks this). *)

type strategy =
  | Linear  (** Chain of [strcmp]s in declaration order — the baseline. *)
  | Binary  (** Binary search over a sorted name array — "nested comparison". *)
  | Hashed  (** Hash table lookup. *)

type 'a table
(** A compiled dispatch table for handlers of type ['a]. *)

val strategy_of_string : string -> strategy option
val strategy_to_string : strategy -> string
val all_strategies : strategy list

val compile : strategy -> (string * 'a) list -> 'a table
(** [compile strategy handlers] builds a lookup structure. Duplicate
    names: the first binding wins, matching a comparison chain's
    behaviour. *)

val lookup : 'a table -> string -> 'a option
val strategy_of : 'a table -> strategy
val size : 'a table -> int
(** Number of distinct operation names. *)
