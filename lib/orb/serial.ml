type 'impl registry = (string, Wire.Codec.decoder -> 'impl) Hashtbl.t

let create_registry () = Hashtbl.create 16
let register_factory reg ~type_id factory = Hashtbl.replace reg type_id factory
let find_factory reg ~type_id = Hashtbl.find_opt reg type_id

let put_byref (e : Wire.Codec.encoder) = function
  | None -> e.put_string ""
  | Some r -> e.put_string (Objref.to_string r)

let get_byref (d : Wire.Codec.decoder) =
  match d.get_string () with
  | "" -> None
  | s -> (
      match Objref.of_string_opt s with
      | Some r -> Some r
      | None ->
          raise (Wire.Codec.Type_error (Printf.sprintf "malformed object reference %S" s)))

let put_incopy (e : Wire.Codec.encoder) ~serializer ~type_id ~byref =
  match serializer with
  | Some marshal_state ->
      e.put_bool true;
      e.put_string type_id;
      e.put_begin ();
      marshal_state e;
      e.put_end ()
  | None ->
      e.put_bool false;
      e.put_string (Objref.to_string (byref ()))

let get_incopy (d : Wire.Codec.decoder) ~registry ~of_ref =
  if d.get_bool () then (
    let type_id = d.get_string () in
    match find_factory registry ~type_id with
    | None ->
        raise
          (Wire.Codec.Type_error
             (Printf.sprintf "no unmarshal factory registered for %S" type_id))
    | Some factory ->
        d.get_begin ();
        let impl = factory d in
        d.get_end ();
        impl)
  else
    let s = d.get_string () in
    match Objref.of_string_opt s with
    | Some r -> of_ref r
    | None ->
        raise (Wire.Codec.Type_error (Printf.sprintf "malformed object reference %S" s))
