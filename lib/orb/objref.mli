(** Stringified object references (paper Section 3.1), extended with
    replicated endpoint sets.

    A HeidiRMI object reference has three parts: the bootstrap URL (a
    protocol–hostname–port tuple that tells the client how to open a
    communication channel), the object identifier (unique within its
    address space), and the object type (the repository ID, which selects
    the stub and skeleton). The printed form is exactly the paper's:

    {v @tcp:galaxy.nec.com:1234#9876#IDL:Heidi/A:1.0 v}

    A reference may name a {e set} of endpoints — replicas all serving
    the same oid — as a comma-separated URL list (DESIGN.md
    "Replication and naming"):

    {v @tcp:h1:1234,tcp:h2:1234,tcp:h3:1234#9876#IDL:Heidi/A:1.0 v}

    The single-endpoint grammar parses and prints unchanged, so
    references written by older peers interoperate both ways. Hosts and
    protocols therefore must not contain [','] or ['#']. *)

type t = {
  proto : string;  (** Primary endpoint's transport, e.g. ["tcp"] or ["mem"]. *)
  host : string;
  port : int;
  extra : (string * string * int) list;
      (** Replica endpoints beyond the primary, in registration order.
          [[]] for the historical single-endpoint reference. *)
  oid : string;  (** Object identifier within the address space. *)
  type_id : string;  (** Repository ID, e.g. ["IDL:Heidi/A:1.0"]. *)
}

val make : proto:string -> host:string -> port:int -> oid:string -> type_id:string -> t
(** A single-endpoint reference (the historical constructor). *)

val make_multi :
  endpoints:(string * string * int) list -> oid:string -> type_id:string -> t
(** A reference over an endpoint set; the first endpoint is the primary.
    @raise Invalid_argument on an empty set, an empty proto/host, an
    out-of-range port, a host or proto containing [','] or ['#'], or
    duplicate endpoints. *)

val endpoints : t -> (string * string * int) list
(** All [(proto, host, port)] endpoints, primary first. Never empty. *)

val endpoint : t -> string * string * int
(** The primary [(proto, host, port)] connection tuple. *)

val is_multi : t -> bool
(** True when the reference carries more than one endpoint. *)

val with_endpoints : t -> (string * string * int) list -> t
(** Same object, different endpoint set (same validation as
    {!make_multi}). *)

val at_endpoint : t -> string * string * int -> t
(** The single-endpoint view of a reference at one of its replicas —
    what the client puts on the wire once it has picked an endpoint, so
    peers that predate the multi-endpoint grammar keep parsing every
    envelope target. *)

val to_string : t -> string
(** [@proto:host:port[,proto:host:port...]#oid#type_id] *)

val of_string : string -> t
(** @raise Invalid_argument on a malformed reference (including empty or
    duplicate endpoints in a set). *)

val of_string_opt : string -> t option

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
