(** Stringified object references (paper Section 3.1).

    A HeidiRMI object reference has three parts: the bootstrap URL (a
    protocol–hostname–port tuple that tells the client how to open a
    communication channel), the object identifier (unique within its
    address space), and the object type (the repository ID, which selects
    the stub and skeleton). The printed form is exactly the paper's:

    {v @tcp:galaxy.nec.com:1234#9876#IDL:Heidi/A:1.0 v} *)

type t = {
  proto : string;  (** Transport protocol, e.g. ["tcp"] or ["mem"]. *)
  host : string;
  port : int;
  oid : string;  (** Object identifier within the address space. *)
  type_id : string;  (** Repository ID, e.g. ["IDL:Heidi/A:1.0"]. *)
}

val make : proto:string -> host:string -> port:int -> oid:string -> type_id:string -> t

val to_string : t -> string
(** [@proto:host:port#oid#type_id] *)

val of_string : string -> t
(** @raise Invalid_argument on a malformed reference. *)

val of_string_opt : string -> t option

val endpoint : t -> string * string * int
(** The [(proto, host, port)] connection tuple. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
