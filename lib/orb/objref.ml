type t = {
  proto : string;
  host : string;
  port : int;
  extra : (string * string * int) list;  (* replica endpoints beyond the primary *)
  oid : string;
  type_id : string;
}

let check_endpoint (proto, host, port) =
  if proto = "" then invalid_arg "Objref: endpoint protocol must not be empty";
  if host = "" then invalid_arg "Objref: endpoint host must not be empty";
  if port < 0 || port >= 65536 then
    invalid_arg (Printf.sprintf "Objref: endpoint port %d out of range" port);
  if String.contains host ',' || String.contains host '#' then
    invalid_arg
      (Printf.sprintf "Objref: endpoint host %S contains a reserved character"
         host);
  if String.contains proto ',' || String.contains proto '#' then
    invalid_arg
      (Printf.sprintf "Objref: endpoint proto %S contains a reserved character"
         proto)

let make ~proto ~host ~port ~oid ~type_id =
  { proto; host; port; extra = []; oid; type_id }

let rec check_no_dup = function
  | [] -> ()
  | ep :: rest ->
      if List.mem ep rest then
        let p, h, n = ep in
        invalid_arg
          (Printf.sprintf "Objref: duplicate endpoint %s:%s:%d in endpoint set"
             p h n)
      else check_no_dup rest

let make_multi ~endpoints ~oid ~type_id =
  match endpoints with
  | [] -> invalid_arg "Objref.make_multi: endpoint set must not be empty"
  | (proto, host, port) :: rest ->
      List.iter check_endpoint endpoints;
      check_no_dup endpoints;
      { proto; host; port; extra = rest; oid; type_id }

let endpoints r = (r.proto, r.host, r.port) :: r.extra
let endpoint r = (r.proto, r.host, r.port)
let is_multi r = r.extra <> []

let with_endpoints r endpoints =
  make_multi ~endpoints ~oid:r.oid ~type_id:r.type_id

(* The single-endpoint view of [r] at one of its endpoints: what goes on
   the wire when the client has picked a replica — peers that predate the
   multi-endpoint grammar must keep parsing every envelope target. *)
let at_endpoint r (proto, host, port) =
  if r.extra = [] && r.proto = proto && r.host = host && r.port = port then r
  else { r with proto; host; port; extra = [] }

(* Memoized stringification: the client stringifies the target reference
   into every request it encodes, and an application typically holds a
   handful of distinct references. Keyed structurally (references are
   immutable records — the endpoint list included — and derived refs
   built with [{ r with ... }] are distinct keys), guarded by a mutex
   because encoding happens on concurrent client threads, and bounded so
   a workload that synthesizes references (one per call) cannot grow the
   table without limit. *)
let to_string_cache : (t, string) Hashtbl.t = Hashtbl.create 64

let to_string_lock =
  Locked.create ~name:"objref.to_string" ~rank:Locked.Rank.objref_cache

let to_string_cache_max = 1024

let add_endpoint buf (proto, host, port) =
  Buffer.add_string buf proto;
  Buffer.add_char buf ':';
  Buffer.add_string buf host;
  Buffer.add_char buf ':';
  Buffer.add_string buf (string_of_int port)

let to_string r =
  Locked.with_lock to_string_lock @@ fun () ->
  match Hashtbl.find_opt to_string_cache r with
  | Some s -> s
  | None ->
      let s =
        match r.extra with
        | [] ->
            Printf.sprintf "@%s:%s:%d#%s#%s" r.proto r.host r.port r.oid
              r.type_id
        | extra ->
            let buf = Buffer.create 64 in
            Buffer.add_char buf '@';
            add_endpoint buf (r.proto, r.host, r.port);
            List.iter
              (fun ep ->
                Buffer.add_char buf ',';
                add_endpoint buf ep)
              extra;
            Buffer.add_char buf '#';
            Buffer.add_string buf r.oid;
            Buffer.add_char buf '#';
            Buffer.add_string buf r.type_id;
            Buffer.contents buf
      in
      if Hashtbl.length to_string_cache >= to_string_cache_max then
        Hashtbl.reset to_string_cache;
      Hashtbl.replace to_string_cache r s;
      s

(* One endpoint segment: proto:host:port — host may not contain ':',
   ',' or '#'; the proto may itself contain ':' (e.g. "faulty:mem"), so
   the segment is parsed from the right: last piece is the port, the one
   before it the host, everything earlier the proto. *)
let parse_endpoint seg =
  match List.rev (String.split_on_char ':' seg) with
  | port_s :: host :: proto_rev when proto_rev <> [] -> (
      let proto = String.concat ":" (List.rev proto_rev) in
      match int_of_string_opt port_s with
      | Some port when port >= 0 && port < 65536 && proto <> "" && host <> ""
        ->
          Some (proto, host, port)
      | _ -> None)
  | _ -> None

let of_string_opt s =
  (* @proto:host:port[,proto:host:port...]#oid#type_id — the url part is
     a comma-separated endpoint set (one endpoint in the historical
     grammar, which this parser accepts unchanged); the type id may
     contain ':' (IDL:...:1.0) but not '#'. Empty or duplicate endpoint
     segments make the whole reference malformed. *)
  if String.length s < 2 || s.[0] <> '@' then None
  else
    match String.split_on_char '#' (String.sub s 1 (String.length s - 1)) with
    | [ url; oid; type_id ] -> (
        let segs = String.split_on_char ',' url in
        let rec parse_all acc = function
          | [] -> Some (List.rev acc)
          | seg :: rest -> (
              match parse_endpoint seg with
              | Some ep when not (List.mem ep acc) -> parse_all (ep :: acc) rest
              | _ -> None (* malformed, empty, or duplicate endpoint *))
        in
        match parse_all [] segs with
        | Some ((proto, host, port) :: extra) ->
            Some { proto; host; port; extra; oid; type_id }
        | _ -> None)
    | _ -> None

let of_string s =
  match of_string_opt s with
  | Some r -> r
  | None -> invalid_arg (Printf.sprintf "Objref.of_string: malformed reference %S" s)

let equal (a : t) b = a = b
let pp ppf r = Format.pp_print_string ppf (to_string r)
