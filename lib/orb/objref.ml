type t = {
  proto : string;
  host : string;
  port : int;
  oid : string;
  type_id : string;
}

let make ~proto ~host ~port ~oid ~type_id = { proto; host; port; oid; type_id }

(* Memoized stringification: the client stringifies the target reference
   into every request it encodes, and an application typically holds a
   handful of distinct references. Keyed structurally (references are
   immutable records, and derived refs built with [{ r with ... }] are
   distinct keys), guarded by a mutex because encoding happens on
   concurrent client threads, and bounded so a workload that synthesizes
   references (one per call) cannot grow the table without limit. *)
let to_string_cache : (t, string) Hashtbl.t = Hashtbl.create 64
let to_string_mutex = Mutex.create ()
let to_string_cache_max = 1024

let to_string r =
  Mutex.lock to_string_mutex;
  let s =
    match Hashtbl.find_opt to_string_cache r with
    | Some s -> s
    | None ->
        let s =
          Printf.sprintf "@%s:%s:%d#%s#%s" r.proto r.host r.port r.oid r.type_id
        in
        if Hashtbl.length to_string_cache >= to_string_cache_max then
          Hashtbl.reset to_string_cache;
        Hashtbl.replace to_string_cache r s;
        s
  in
  Mutex.unlock to_string_mutex;
  s

let of_string_opt s =
  (* @proto:host:port#oid#type_id — host may not contain ':' or '#';
     the type id may contain ':' (IDL:...:1.0) but not '#'. The proto
     may itself contain ':' (e.g. "faulty:mem"), so the url is parsed
     from the right: last segment is the port, the one before it the
     host, everything earlier the proto. *)
  if String.length s < 2 || s.[0] <> '@' then None
  else
    match String.split_on_char '#' (String.sub s 1 (String.length s - 1)) with
    | [ url; oid; type_id ] -> (
        match List.rev (String.split_on_char ':' url) with
        | port_s :: host :: proto_rev when proto_rev <> [] -> (
            let proto = String.concat ":" (List.rev proto_rev) in
            match int_of_string_opt port_s with
            | Some port when port >= 0 && port < 65536 && proto <> "" && host <> ""
              ->
                Some { proto; host; port; oid; type_id }
            | _ -> None)
        | _ -> None)
    | _ -> None

let of_string s =
  match of_string_opt s with
  | Some r -> r
  | None -> invalid_arg (Printf.sprintf "Objref.of_string: malformed reference %S" s)

let endpoint r = (r.proto, r.host, r.port)
let equal (a : t) b = a = b
let pp ppf r = Format.pp_print_string ppf (to_string r)
