type t = {
  proto : string;
  host : string;
  port : int;
  oid : string;
  type_id : string;
}

let make ~proto ~host ~port ~oid ~type_id = { proto; host; port; oid; type_id }

let to_string r =
  Printf.sprintf "@%s:%s:%d#%s#%s" r.proto r.host r.port r.oid r.type_id

let of_string_opt s =
  (* @proto:host:port#oid#type_id — host may not contain ':' or '#';
     the type id may contain ':' (IDL:...:1.0) but not '#'. The proto
     may itself contain ':' (e.g. "faulty:mem"), so the url is parsed
     from the right: last segment is the port, the one before it the
     host, everything earlier the proto. *)
  if String.length s < 2 || s.[0] <> '@' then None
  else
    match String.split_on_char '#' (String.sub s 1 (String.length s - 1)) with
    | [ url; oid; type_id ] -> (
        match List.rev (String.split_on_char ':' url) with
        | port_s :: host :: proto_rev when proto_rev <> [] -> (
            let proto = String.concat ":" (List.rev proto_rev) in
            match int_of_string_opt port_s with
            | Some port when port >= 0 && port < 65536 && proto <> "" && host <> ""
              ->
                Some { proto; host; port; oid; type_id }
            | _ -> None)
        | _ -> None)
    | _ -> None

let of_string s =
  match of_string_opt s with
  | Some r -> r
  | None -> invalid_arg (Printf.sprintf "Objref.of_string: malformed reference %S" s)

let endpoint r = (r.proto, r.host, r.port)
let equal (a : t) b = a = b
let pp ppf r = Format.pp_print_string ppf (to_string r)
