(** ORB protocols: a marshaling codec plus a message framing and a
    request/reply envelope.

    Stubs and skeletons only ever see {!Wire.Codec} encoders/decoders, so
    "utilizing a particular protocol involves choosing the appropriate ORB
    run-time library" (paper Section 2) — here, passing a different
    [Protocol.t] to {!Orb.create}. Two protocols ship with the system: the
    HeidiRMI newline-terminated text protocol ({!text}) and the GIOP-like
    binary protocol (in the [Giop] library). *)

type framing =
  | Line  (** One message per newline-terminated line. *)
  | Length_prefixed of { header : string }
      (** [header ^ 8-hex-digit big-endian length ^ body] — the shape of a
          GIOP-style fixed header carrying a body length. The [header]
          magic identifies the protocol on the wire. *)

type request = {
  req_id : int;
  target : Objref.t;
  operation : string;
  oneway : bool;
  payload : string;  (** Codec-encoded arguments. *)
  trace_ctx : string;
      (** Service-context slot, carrying the trace context of the
          observability layer (see [Obs.Trace]). Encoded after the
          payload and omitted when empty, so peers that predate the slot
          interoperate in both directions: they ignore it as trailing
          bytes on receive, and its absence decodes as [""]. *)
  budget_us : int option;
      (** Deadline-budget slot: the caller's remaining call budget in
          microseconds, {e relative} (no clock synchronization assumed
          between peers — the receiver anchors it to its own receive
          time). Encoded after the service-context slot and omitted when
          [None]; a present budget forces the context slot to be written
          even when empty, keeping the slots positional. Same interop
          contract as the context slot: pre-slot peers skip a present
          budget as trailing bytes, and its absence decodes as [None].
          Decoding rejects negative, overflowing, or non-numeric slots
          with {!Protocol_error} — a recoverable malformed-frame error,
          never a crash. *)
}

type reply_status =
  | Status_ok
  | Status_user_exception of string  (** Exception repository ID. *)
  | Status_system_error of string  (** Human-readable error. *)

type reply = { rep_id : int; status : reply_status; payload : string }

val status_to_string : reply_status -> string
(** Human-readable status for logs and interceptors. *)

type message =
  | Request of request
  | Reply of reply
  | Locate_request of { req_id : int; target : Objref.t }
      (** GIOP's LocateRequest: "is this object here?" — answered without
          dispatching anything. *)
  | Locate_reply of { rep_id : int; found : bool; forward : Objref.t option }
      (** [forward] is the GIOP OBJECT_FORWARD answer — "it lives there
          now". Encoded after the historical fields and omitted when
          [None], so peers that predate the slot interoperate in both
          directions: they ignore a present slot as trailing bytes, and
          its absence decodes as no-forward. *)
  | Locate_forward of { rep_id : int; target : Objref.t }
      (** GIOP's LOCATION_FORWARD reply status: sent instead of a
          {!Reply} when the requested object has moved; the client
          should re-issue the request against [target]. *)

type t = {
  name : string;
  codec : Wire.Codec.t;
  framing : framing;
  encode_message : message -> string;
  decode_message : string -> message;
      (** Equivalent to [decode_limited Wire.Codec.default_limits]. *)
  decode_limited : Wire.Codec.limits -> string -> message;
      (** Decode under explicit resource limits (see
          {!Wire.Codec.limits}) — the server side decodes untrusted
          frames through this. *)
}

val generic : name:string -> framing:framing -> Wire.Codec.t -> t
(** Build a protocol with the standard envelope over any codec: messages
    are encoded as [octet tag, ulong request-id, ...header fields...,
    string payload]. The payload is embedded as a counted string — the
    CDR-encapsulation trick — so its internal alignment is relative to its
    own start regardless of header size. Requests append the
    service-context slot (the trace context) and the deadline-budget
    slot after the payload when present; decoding tolerates the absence
    of either. *)

val text : t
(** The HeidiRMI protocol: {!Wire.Text_codec} over {!Line} framing.
    Requests are single ASCII lines, so a human can telnet to the
    bootstrap port and type one in (Section 4.2). *)

exception Protocol_error of string
(** Raised by [decode_message] on malformed messages. *)

val request_id_hint : t -> string -> int option
(** Best-effort request id of a frame that failed to decode: the tag
    and request id lead every envelope, so they often survive damage
    further into the frame. [Some id] when the frame starts like a
    request or locate-request; [None] otherwise. Never raises — used to
    address error replies for malformed frames. *)
