(** ORB protocols: a marshaling codec plus a message framing and a
    request/reply envelope.

    Stubs and skeletons only ever see {!Wire.Codec} encoders/decoders, so
    "utilizing a particular protocol involves choosing the appropriate ORB
    run-time library" (paper Section 2) — here, passing a different
    [Protocol.t] to {!Orb.create}. Two protocols ship with the system: the
    HeidiRMI newline-terminated text protocol ({!text}) and the GIOP-like
    binary protocol (in the [Giop] library). *)

type framing =
  | Line  (** One message per newline-terminated line. *)
  | Length_prefixed of { header : string }
      (** [header ^ 8-hex-digit big-endian length ^ body] — the shape of a
          GIOP-style fixed header carrying a body length. The [header]
          magic identifies the protocol on the wire. *)
  | Varint_prefixed of { magic : char }
      (** [magic ^ LEB128 body length ^ body] — compact binary framing:
          2-3 bytes of overhead on ordinary messages instead of the
          fixed header's ~14. Large bodies are sent as header + body
          slices through the transport's [writev] with no coalescing
          copy. *)

type request = {
  req_id : int;
  target : Objref.t;
  operation : string;
  oneway : bool;
  payload : string;  (** Codec-encoded arguments. *)
  trace_ctx : string;
      (** Service-context slot, carrying the trace context of the
          observability layer (see [Obs.Trace]). Encoded after the
          payload and omitted when empty, so peers that predate the slot
          interoperate in both directions: they ignore it as trailing
          bytes on receive, and its absence decodes as [""]. *)
  budget_us : int option;
      (** Deadline-budget slot: the caller's remaining call budget in
          microseconds, {e relative} (no clock synchronization assumed
          between peers — the receiver anchors it to its own receive
          time). Encoded after the service-context slot and omitted when
          [None]; a present budget forces the context slot to be written
          even when empty, keeping the slots positional. Same interop
          contract as the context slot: pre-slot peers skip a present
          budget as trailing bytes, and its absence decodes as [None].
          Decoding rejects negative, overflowing, or non-numeric slots
          with {!Protocol_error} — a recoverable malformed-frame error,
          never a crash. An {e empty} budget slot decodes as [None]: it
          is written only when the negotiation-offer slot forces this
          position (peers that predate negotiation reject it,
          recoverably — see [nego_offer]). *)
  nego_offer : string;
      (** Codec-negotiation offer slot (see {!Nego} for the token
          grammar), carried by the first request on a connection.
          Encoded after the deadline-budget slot and omitted when empty,
          so no-offer messages stay byte-identical to the
          pre-negotiation encoding; a present offer forces both earlier
          slots (an absent budget is then the empty string). Peers with
          a budget but no notion of negotiation skip a present offer as
          trailing bytes; peers receiving the empty forced budget slot
          answer with a recoverable malformed-frame error reply, which
          the client's negotiation layer converts into fallback +
          re-send (DESIGN.md, "Wire protocols"). Decoding bounds the
          slot to 256 bytes of token charset, rejecting hostile slots
          with {!Protocol_error}. *)
}

type reply_status =
  | Status_ok
  | Status_user_exception of string  (** Exception repository ID. *)
  | Status_system_error of string  (** Human-readable error. *)

type reply = {
  rep_id : int;
  status : reply_status;
  payload : string;
  nego_answer : string;
      (** Codec-negotiation answer slot: the server's chosen codec token
          (see {!Nego}), carried by the reply to an offering request.
          Trailing and omitted when empty — same interop contract as
          the request's slots. Only clients that offered ever receive
          one. *)
}

val status_to_string : reply_status -> string
(** Human-readable status for logs and interceptors. *)

type message =
  | Request of request
  | Reply of reply
  | Locate_request of { req_id : int; target : Objref.t }
      (** GIOP's LocateRequest: "is this object here?" — answered without
          dispatching anything. *)
  | Locate_reply of { rep_id : int; found : bool; forward : Objref.t option }
      (** [forward] is the GIOP OBJECT_FORWARD answer — "it lives there
          now". Encoded after the historical fields and omitted when
          [None], so peers that predate the slot interoperate in both
          directions: they ignore a present slot as trailing bytes, and
          its absence decodes as no-forward. *)
  | Locate_forward of { rep_id : int; target : Objref.t }
      (** GIOP's LOCATION_FORWARD reply status: sent instead of a
          {!Reply} when the requested object has moved; the client
          should re-issue the request against [target]. *)

type t = {
  name : string;
  version : int;
      (** Wire-format version of this protocol's encoding, as used in
          negotiation tokens ({!Nego.token}). Codecs with an explicit
          on-the-wire version byte (HCX) report it here; others are 1. *)
  codec : Wire.Codec.t;
  framing : framing;
  encode_message : message -> string;
  decode_message : string -> message;
      (** Equivalent to [decode_limited Wire.Codec.default_limits]. *)
  decode_limited : Wire.Codec.limits -> string -> message;
      (** Decode under explicit resource limits (see
          {!Wire.Codec.limits}) — the server side decodes untrusted
          frames through this. *)
}

val generic : name:string -> ?version:int -> framing:framing -> Wire.Codec.t -> t
(** Build a protocol with the standard envelope over any codec: messages
    are encoded as [octet tag, ulong request-id, ...header fields...,
    string payload]. The payload is embedded as a counted string — the
    CDR-encapsulation trick — so its internal alignment is relative to its
    own start regardless of header size. Requests append the
    service-context slot (the trace context) and the deadline-budget
    slot after the payload when present; decoding tolerates the absence
    of either. *)

val text : t
(** The HeidiRMI protocol: {!Wire.Text_codec} over {!Line} framing.
    Requests are single ASCII lines, so a human can telnet to the
    bootstrap port and type one in (Section 4.2). *)

val hcx : t
(** HCX ("heidi-compact"): {!Wire.Hcx_codec} over {!Varint_prefixed}
    framing — the compact zero-copy binary protocol. Usually reached
    via codec negotiation ([Orb.create ~codecs:[Protocol.hcx]]) rather
    than configured as the base protocol, so mixed-version peers
    converge without manual configuration. *)

val hcx_magic : char
(** The {!Varint_prefixed} frame magic of {!hcx} (0xC8 — outside both
    printable ASCII and ["GIOP"], so a protocol mix-up fails at the
    first frame). *)

(** Codec-negotiation token grammar: an offer or answer slot holds
    comma-separated [name/version] tokens in the sender's preference
    order, e.g. ["hcx/1,giop-be/1"]. *)
module Nego : sig
  val token : t -> string
  (** [name/version] of one protocol. *)

  val offer_of : t list -> string
  (** The offer slot for a preference-ordered supported set. *)

  val parse_token : string -> (string * int) option
  (** [Some (name, version)], or [None] on syntax errors. *)

  val choose :
    offer:string ->
    supported:t list ->
    compatible:(name:string -> offered:int -> local:int -> bool) ->
    (t * string) option
  (** Server-side choice: the first token of [offer] (client preference
      order) naming a protocol in [supported] whose version pair passes
      [compatible]. Returns the chosen protocol and the answer token to
      send back. [None] means no mutually-compatible codec: stay on the
      base protocol. *)

  val exact : name:string -> offered:int -> local:int -> bool
  (** Default compatibility predicate: exact version equality. The
      IDL-evolution verdict (analysis layer, V301-V304) can replace it
      via [Orb.create ?codec_compat], making wire-breaking-ness a
      runtime property of negotiation. *)
end

exception Protocol_error of string
(** Raised by [decode_message] on malformed messages. *)

val request_id_hint : t -> string -> int option
(** Best-effort request id of a frame that failed to decode: the tag
    and request id lead every envelope, so they often survive damage
    further into the frame. [Some id] when the frame starts like a
    request or locate-request; [None] otherwise. Never raises — used to
    address error replies for malformed frames. *)
