type t = {
  lock : Locked.t;
  skeletons : (string, Skeleton.t) Hashtbl.t;
  by_key : (int, string) Hashtbl.t;  (* servant identity -> oid *)
  forwards : (string, Objref.t) Hashtbl.t;  (* oid -> redirect target *)
  mutable next_oid : int;
  mutable hits : int;
}

let create () =
  { lock = Locked.create ~name:"adapter" ~rank:Locked.Rank.adapter;
    skeletons = Hashtbl.create 64;
    by_key = Hashtbl.create 64; forwards = Hashtbl.create 8; next_oid = 1;
    hits = 0 }

let with_lock t f = Locked.with_lock t.lock f

let register t skel =
  with_lock t (fun () ->
      let oid = string_of_int t.next_oid in
      t.next_oid <- t.next_oid + 1;
      Hashtbl.replace t.skeletons oid skel;
      oid)

let register_named t ~oid skel =
  if String.contains oid '#' then
    invalid_arg "Object_adapter.register_named: oid must not contain '#'";
  with_lock t (fun () ->
      if Hashtbl.mem t.skeletons oid then
        invalid_arg
          (Printf.sprintf "Object_adapter.register_named: oid %S is taken" oid);
      Hashtbl.replace t.skeletons oid skel)

let register_cached t ~key build =
  with_lock t (fun () ->
      match Hashtbl.find_opt t.by_key key with
      | Some oid ->
          t.hits <- t.hits + 1;
          oid
      | None ->
          let skel = build () in
          let oid = string_of_int t.next_oid in
          t.next_oid <- t.next_oid + 1;
          Hashtbl.replace t.skeletons oid skel;
          Hashtbl.replace t.by_key key oid;
          oid)

let cache_hits t = with_lock t (fun () -> t.hits)
let lookup t oid = with_lock t (fun () -> Hashtbl.find_opt t.skeletons oid)

let set_forward t ~oid target =
  with_lock t (fun () -> Hashtbl.replace t.forwards oid target)

let clear_forward t ~oid =
  with_lock t (fun () -> Hashtbl.remove t.forwards oid)

let forward t oid = with_lock t (fun () -> Hashtbl.find_opt t.forwards oid)

let unregister t oid =
  with_lock t (fun () ->
      Hashtbl.remove t.skeletons oid;
      (* Drop any identity-cache entry pointing at this oid. *)
      let stale =
        Hashtbl.fold (fun k o acc -> if o = oid then k :: acc else acc) t.by_key []
      in
      List.iter (Hashtbl.remove t.by_key) stale)

let count t = with_lock t (fun () -> Hashtbl.length t.skeletons)
