(* Per-endpoint circuit breakers: trip after consecutive connection
   failures, fast-fail while open, probe once after a cool-down. *)

exception Circuit_open of string

let () =
  Printexc.register_printer (function
    | Circuit_open m -> Some (Printf.sprintf "Orb.Breaker.Circuit_open: %s" m)
    | _ -> None)

type state = Closed | Open | Half_open

let state_to_string = function
  | Closed -> "closed"
  | Open -> "open"
  | Half_open -> "half-open"

type config = { failure_threshold : int; reset_timeout : float }

let default_config = { failure_threshold = 5; reset_timeout = 1.0 }

type entry = {
  mutable st : state;
  mutable failures : int;  (* consecutive, since the last success *)
  mutable opened_at : float;
  mutable probing : bool;  (* a half-open probe is in flight *)
}

type t = {
  cfg : config;
  lock : Locked.t;
  entries : (string, entry) Hashtbl.t;
  mutable trips : int;
  mutable fast_fails : int;
}

let create ?(config = default_config) () =
  {
    cfg = config;
    lock = Locked.create ~name:"breaker" ~rank:Locked.Rank.breaker;
    entries = Hashtbl.create 8;
    trips = 0;
    fast_fails = 0;
  }

let with_mutex t f = Locked.with_lock t.lock f

let entry t key =
  match Hashtbl.find_opt t.entries key with
  | Some e -> e
  | None ->
      let e = { st = Closed; failures = 0; opened_at = 0.; probing = false } in
      Hashtbl.replace t.entries key e;
      e

type decision = Proceed | Probe | Fast_fail

let before_call t key =
  with_mutex t (fun () ->
      let e = entry t key in
      match e.st with
      | Closed -> Proceed
      | Open ->
          if
            Unix.gettimeofday () -. e.opened_at >= t.cfg.reset_timeout
            && not e.probing
          then begin
            e.st <- Half_open;
            e.probing <- true;
            Probe
          end
          else begin
            t.fast_fails <- t.fast_fails + 1;
            Fast_fail
          end
      | Half_open ->
          if e.probing then begin
            t.fast_fails <- t.fast_fails + 1;
            Fast_fail
          end
          else begin
            e.probing <- true;
            Probe
          end)

let success t key =
  with_mutex t (fun () ->
      let e = entry t key in
      e.st <- Closed;
      e.failures <- 0;
      e.probing <- false)

let failure t key =
  with_mutex t (fun () ->
      let e = entry t key in
      e.failures <- e.failures + 1;
      let should_trip =
        e.st = Half_open || e.failures >= t.cfg.failure_threshold
      in
      e.probing <- false;
      if should_trip then begin
        if e.st <> Open then t.trips <- t.trips + 1;
        e.st <- Open;
        e.opened_at <- Unix.gettimeofday ()
      end)

let state t key = with_mutex t (fun () -> (entry t key).st)

(* Read-only view of [before_call]: would a call to [key] be allowed to
   touch the network right now (Proceed or Probe), or fast-failed? Used
   by replica selection to skip tripped endpoints without consuming the
   half-open probe slot. *)
let available t key =
  with_mutex t (fun () ->
      match Hashtbl.find_opt t.entries key with
      | None -> true
      | Some e -> (
          match e.st with
          | Closed -> true
          | Half_open -> not e.probing
          | Open ->
              (not e.probing)
              && Unix.gettimeofday () -. e.opened_at >= t.cfg.reset_timeout))

let states t =
  with_mutex t (fun () ->
      List.sort compare
        (Hashtbl.fold (fun key e acc -> (key, e.st) :: acc) t.entries []))

let trips t = with_mutex t (fun () -> t.trips)
let fast_fails t = with_mutex t (fun () -> t.fast_fails)

let reset t =
  with_mutex t (fun () ->
      Hashtbl.reset t.entries;
      t.trips <- 0;
      t.fast_fails <- 0)
