(** The ORB facade: one value of type {!t} is one HeidiRMI address space.

    Configurable along the three axes the paper argues for (Section 2):
    the {e wire protocol} (a {!Protocol.t}: text or GIOP-like binary),
    the {e transport} (["tcp"] or the in-process ["mem"] loopback), and
    the skeletons' {e dispatch strategy}.

    Server side: {!start} binds the bootstrap port and spawns one thread
    per accepted connection (Fig. 5). Client side: {!invoke} implements
    Fig. 4 — it builds a [Call], marshals via the caller's closure, sends
    the request on a cached connection, and returns a decoder positioned
    at the reply payload. *)

(** {1 Submodules} *)

module Objref : module type of Objref
module Dispatch : module type of Dispatch
module Protocol : module type of Protocol
module Transport : module type of Transport
module Communicator : module type of Communicator
module Skeleton : module type of Skeleton
module Object_adapter : module type of Object_adapter
module Serial : module type of Serial
module Interceptor : module type of Interceptor
module Smart : module type of Smart
module Retry : module type of Retry
module Breaker : module type of Breaker
module Pool : module type of Pool

(** The observability layer (library [Obs]) plus the one piece that
    needs ORB types: a stock metrics-feeding interceptor. See
    DESIGN.md "Observability". *)
module Obs : sig
  include module type of struct
    include Obs
  end

  val interceptor : t -> Interceptor.t
  (** A stock interceptor feeding the event counters of [t]: per
      operation, [req:<op>] on every request, one of [ok:]/[uexn:]/
      [serr:] per reply status, and [err:<op>] on invocation failures
      that produced no reply. Add it to either side's chain; it
      composes with user interceptors. *)
end


type t

exception Remote_exception of {
  repo_id : string;  (** Repository ID of the raised IDL exception. *)
  payload : string;  (** Encoded exception members. *)
  codec : Wire.Codec.t;  (** Codec to decode [payload] with. *)
}
(** A declared (IDL) exception raised by the remote implementation. *)

exception System_exception of string
(** Infrastructure failure reported by the peer (unknown object, unknown
    operation, marshal error in the skeleton, ...). *)

(** The server's overload policy: how much concurrent work, queued work
    and connection state one address space will hold, and what happens
    at each bound. A policy {e value}, not code — swap it at {!create}
    without touching dispatch (DESIGN.md "Server model and overload
    policy"). *)
type server_policy = {
  pool : Pool.config option;
      (** [Some cfg]: requests decoded by connection reader threads are
          executed by a bounded worker pool under [cfg]'s admission
          policy (the default). [None]: unbounded thread-per-connection
          inline dispatch — the paper's Fig. 5 model, kept for the
          overload comparison (bench §E10). *)
  max_connections : int;
      (** Accepted-connection bound; past it the idle-longest connection
          is evicted (idle-LRU). [0] = unlimited (default). *)
  max_pipelined : int;
      (** Per-connection in-flight request cap; further pipelined
          requests are rejected with a system exception until replies
          drain. [0] = unlimited. *)
  limits : Wire.Codec.limits;
      (** Decode budget for inbound frames: frame size, string size,
          sequence length, nesting depth (see {!Wire.Codec.limits}).
          Violations are answered with a system-exception reply when the
          stream can be resynchronized, else the connection closes. *)
  accept_backoff : float;
      (** Initial sleep (seconds) after a transient accept failure, e.g.
          fd exhaustion; doubles per consecutive failure, capped at 1s. *)
}

val default_server_policy : server_policy
(** [Pool.default_config] workers, unlimited connections, 64 pipelined
    requests per connection, {!Wire.Codec.default_limits}, 10 ms initial
    accept backoff. *)

(** The client's connection-sharing policy (DESIGN.md "Client connection
    model"). With [max_in_flight > 1] (the default) each cached outbound
    connection runs a reply demultiplexer: a dedicated reader thread
    correlates replies to blocked callers by request id, so up to
    [max_in_flight] calls from concurrent threads pipeline over one
    shared connection. [max_in_flight = 1] reproduces the historical
    serialized client — the connection is locked across the whole
    roundtrip — kept for interop comparison (bench §E11). *)
type mux = { max_in_flight : int }

val default_mux : mux
(** [{ max_in_flight = 32 }] — half the default server policy's
    per-connection pipelining cap, so a default client never trips a
    default server. *)

val create :
  ?protocol:Protocol.t ->
  ?codecs:Protocol.t list ->
  ?codec_compat:(name:string -> offered:int -> local:int -> bool) ->
  ?strategy:Dispatch.strategy ->
  ?transport:string ->
  ?host:string ->
  ?port:int ->
  ?call_timeout:float ->
  ?propagate_deadlines:bool ->
  ?retry:Retry.policy ->
  ?retry_budget:Retry.Budget.config ->
  ?breaker:Breaker.config ->
  ?obs:Obs.t ->
  ?server_policy:server_policy ->
  ?mux:mux ->
  unit ->
  t
(** Defaults: the text protocol, [Linear] dispatch, the ["mem"] transport
    on a fresh port. For TCP use [~transport:"tcp" ~host:"127.0.0.1"]
    (with [port = 0] picking a free port at {!start}).

    [codecs] — wire-level codec negotiation (empty and off by default).
    A non-empty, preference-ordered list (e.g. [[Protocol.hcx]]) makes
    this ORB negotiate per connection: as a client it attaches its
    supported set to the first two-way request on each connection (a
    backward-compatible trailing slot — no-offer messages stay
    byte-identical); as a server it answers an offer with the first
    mutually-compatible codec and both sides switch the connection's
    encoding. Peers that predate negotiation, or share no compatible
    codec, converge on the base [protocol] — mixed-version pairs need
    no manual configuration. Outcomes are counted in {!stats}
    ([codec_negotiations] / [codec_fallbacks]).

    [codec_compat] — the version-compatibility predicate used when an
    offered codec's version differs from the local one (default
    {!Protocol.Nego.exact}: equality). Wire in the IDL-evolution
    verdict of the analysis layer to make wire-compatibility (V301–
    V304) a runtime property of negotiation.

    [obs] — attach an observability context (see {!Obs}): every
    {!invoke} then opens a client span with per-phase timings, every
    dispatch opens a server span joined to the caller's trace via the
    wire protocol's service-context slot, and the transport feeds
    per-endpoint byte counters. Omitted: a disabled context — no spans,
    no measurable overhead, and the empty trace context keeps wire
    messages byte-identical to pre-slot peers.

    Fault-tolerance knobs (see DESIGN.md "Failure model"):
    - [call_timeout] — default per-call deadline in seconds; a call whose
      reply does not arrive in time raises {!Transport.Timeout}. No
      deadline by default.
    - [propagate_deadlines] (default [true]) — stamp each outgoing
      request's remaining call-deadline budget into the envelope's
      deadline slot (microseconds, relative), re-read at every retry
      and failover so the wire always carries what is actually left.
      A receiving ORB sheds work whose budget has lapsed — at decode,
      at pool admission, and again just before execution — instead of
      computing replies no caller is waiting for. [false] sends no
      slot (bytes identical to pre-deadline peers); calls without a
      deadline never send one either way.
    - [retry] — the {!Retry.policy} for transient connection failures
      (default {!Retry.default}: 3 attempts with exponential backoff).
      Retries fire only for connection setup and sends that failed
      before any reply bytes were read — a dispatched request is never
      duplicated.
    - [retry_budget] — config for the client-wide {!Retry.Budget}
      (default {!Retry.Budget.default_config}). Every retry and
      failover first withdraws a credit; successes deposit [ratio] of
      one back. An empty bucket fails the call with
      {!Retry.Budget_exhausted} ([Permanent] — never retried), visible
      in {!stats} as [retry_budget_exhaustions], so correlated failures
      cannot amplify into a synchronized retry storm.
    - [breaker] — enable a per-endpoint circuit {!Breaker} with this
      config; repeated connection failures then fast-fail with
      {!Breaker.Circuit_open} until a half-open [Locate_request] probe
      succeeds. Disabled by default.

    [server_policy] — the overload policy (see {!server_policy});
    defaults to {!default_server_policy}: a bounded worker pool with
    reject admission and default decode limits.

    [mux] — the client connection-sharing policy (see {!mux}); defaults
    to {!default_mux} (multiplexed, 32 calls in flight per connection). *)

val start : t -> unit
(** Bind the bootstrap port and start accepting connections (creating
    the worker pool when the policy asks for one). Idempotent. *)

val shutdown : ?drain_deadline:float -> t -> unit
(** Stop the server. Phase 1 always: close the listener and flip the
    ORB into draining, so connections still open answer new requests
    with ["draining: ..."] system exceptions. With [drain_deadline]
    (seconds), phase 2 waits up to that long for requests already
    admitted — queued or executing — to finish dispatching before
    phase 3 force-closes every connection and stops the pool; the
    outcome lands in {!stats} ([drains_clean] / [drain_aborted_jobs])
    and, when tracing, in an ["orb.drain"] server span. Without it,
    shutdown is immediate. Idempotent. *)

val protocol : t -> Protocol.t
val strategy : t -> Dispatch.strategy
(** The configured dispatch strategy. The ORB cannot retrofit strategies
    into skeletons built elsewhere, so this is the advertised default:
    skeleton builders (e.g. the generated [skeleton ?strategy] functions)
    should pass [~strategy:(Orb.strategy orb)] to honour it. *)

val port : t -> int
(** Bound port (after {!start}). *)

val adapter : t -> Object_adapter.t

val obs : t -> Obs.t
(** The ORB's observability context (a disabled one when [create] was
    not given [~obs]). [Obs.snapshot] on it reads the metrics;
    [Obs.add_sink] attaches span consumers. *)

val client_interceptors : t -> Interceptor.chain
(** The chain applied around every outgoing {!invoke}. Client-side
    {!Interceptor.Reject} propagates to the caller. *)

val server_interceptors : t -> Interceptor.chain
(** The chain applied around the dispatch path (Section 5's Orbix-style
    filters). A server-side reject is reported to the peer as a system
    exception. *)

(** {2 Server side} *)

val export : t -> Skeleton.t -> Objref.t
(** Register a skeleton under a fresh oid and return its reference. *)

val export_named : t -> oid:string -> Skeleton.t -> Objref.t
(** Register under a well-known oid (e.g. ["bootstrap"]). *)

val export_cached : t -> key:int -> type_id:string -> (unit -> Skeleton.t) -> Objref.t
(** Lazy cached export by servant identity (Section 3.1: skeletons are
    created only when a reference is first passed, then cached). *)

(** {2 Client side} *)

val invoke :
  t ->
  Objref.t ->
  op:string ->
  ?oneway:bool ->
  ?timeout:float ->
  (Wire.Codec.encoder -> unit) ->
  Wire.Codec.decoder option
(** [invoke orb target ~op marshal] performs a remote call. Returns
    [Some decoder] positioned at the reply payload, or [None] for oneway
    calls. [timeout] (seconds) overrides the ORB's [call_timeout] for
    this call.

    A multi-endpoint [target] (see {!Objref.make_multi}) is one logical
    object behind several replicas: each call picks a replica by
    power-of-two-choices over the per-endpoint in-flight counts,
    skipping breaker-open endpoints, and fails over to another replica
    on duplicate-safe failures under the same retry budget. The wire
    envelope always carries the chosen endpoint's single-endpoint view,
    so pre-replication peers interoperate unchanged. A server may answer
    with a GIOP-style location forward; the client follows it
    transparently and caches the redirect per logical target.
    @raise Remote_exception for declared IDL exceptions.
    @raise System_exception for infrastructure failures.
    @raise Transport.Transport_error when the peer is unreachable (after
    the retry policy is exhausted).
    @raise Transport.Timeout when the deadline passes first.
    @raise Breaker.Circuit_open when the endpoint's circuit is tripped. *)

val locate : t -> ?timeout:float -> Objref.t -> bool
(** GIOP-style LocateRequest (the message real IIOP uses before or
    instead of dispatching): asks the target's address space whether the
    oid is currently exported, without invoking anything.
    @raise Transport.Transport_error when the peer is unreachable. *)

val invoke_raw :
  t ->
  Objref.t ->
  op:string ->
  ?oneway:bool ->
  ?timeout:float ->
  string ->
  string option
(** Payload-level {!invoke}: already-encoded request payload in, reply
    payload out ([None] for oneway). Same exceptions as {!invoke}. *)

val smart_proxy :
  t -> ?capacity:int -> ?invalidate_on:string list -> Objref.t -> Smart.t
(** A client-side caching proxy for [target], bound to this ORB's
    protocol codec (see {!Smart}). *)

val connections_opened : t -> int
(** Total outbound connections ever opened — with the connection cache
    working, repeated calls to one peer keep this at 1 (bench §E6). *)

val requests_served : t -> int
(** Total requests this address space has dispatched. *)

(** Observability counters for one ORB (address space). *)
type stats = {
  opened : int;  (** Outbound connections ever opened. *)
  served : int;  (** Requests dispatched by this address space. *)
  retries : int;  (** Invocation attempts beyond the first. *)
  timeouts : int;  (** Calls that hit their deadline. *)
  failovers : int;
      (** Attempts rerouted away from a failed or breaker-open replica
          of a multi-endpoint target. *)
  forwards : int;  (** [Locate_forward] redirects honoured. *)
  breaker_trips : int;  (** Circuit transitions to [Open] (0 if disabled). *)
  breaker_fast_fails : int;
      (** Calls rejected without touching the network (0 if disabled). *)
  breaker_states : (string * string) list;
      (** Per-endpoint circuit state, [(endpoint-key, "closed" | "open"
          | "half-open")], sorted by endpoint — the post-hoc view of why
          selection skipped a replica. Empty without a breaker. *)
  server_connections : int;
      (** Currently live accepted server-side connections. Closed
          communicators still awaiting reaping by their serving thread
          are excluded. *)
  rejected : int;
      (** Requests refused by admission control (overload, draining, or
          the pipelining cap) — each one answered with a system
          exception, none silently dropped. *)
  expired_pre_admission : int;
      (** Requests shed before entering the pool queue: their deadline
          budget had already lapsed at decode time, or lapsed while the
          reader was blocked awaiting queue space. Answered with an
          ["expired before admission"] system exception. *)
  expired_in_queue : int;
      (** Requests admitted to the queue but shed at worker pickup — the
          servant never ran (the zombie-work kill). Two flavours, both
          counted here: the budget had already lapsed (["expired in
          queue"]), or the remaining budget was below the pool's learned
          service-time estimate, so execution was guaranteed to finish
          past the deadline (["doomed in queue"]). *)
  retry_budget_balance : int;
      (** Whole retry credits currently banked in the client-wide
          {!Retry.Budget}. *)
  retry_budget_exhaustions : int;
      (** Retries/failovers refused by the budget — each one failed the
          call with {!Retry.Budget_exhausted}. *)
  evicted : int;  (** Connections evicted by the idle-LRU limit. *)
  drains_clean : int;  (** Graceful drains that finished in time. *)
  drain_aborted_jobs : int;
      (** Admitted dispatches abandoned because a drain deadline passed
          before they completed. *)
  pool_depth : int;  (** Requests queued in the pool right now (0 without a pool). *)
  pool_active : int;  (** Pool workers currently executing (0 without a pool). *)
  mux_in_flight : int;
      (** Client calls currently awaiting replies, summed over cached
          multiplexed connections (0 with [max_in_flight = 1]). *)
  mux_peak_in_flight : int;
      (** Highest in-flight count any single client connection reached —
          [> 1] is the proof that calls actually pipelined. *)
  codec_negotiations : int;
      (** Connections switched to a negotiated codec, counted in both
          roles: as the offering client (the answer arrived and both
          directions re-pointed) and as the answering server. *)
  codec_fallbacks : int;
      (** Offers that ended on the base protocol instead: the peer
          answered nothing (it predates negotiation, or found no
          compatible codec), or this server found no compatible codec
          in an offer it received. *)
}

val stats : t -> stats

val stats_to_json : stats -> string
(** The snapshot as one JSON object (breaker states as a nested
    object) — scrape-ready, like the bench outputs. *)

val breaker_state : t -> Objref.t -> Breaker.state option
(** Circuit state for the target's primary endpoint; [None] when no
    breaker is configured. *)

(** {2 Location forwarding} *)

val set_forward : t -> oid:string -> Objref.t -> unit
(** Register a GIOP-style location forward on the {e server}: requests
    and locates naming [oid] on this ORB are answered with a redirect to
    the given reference instead of being dispatched. Clients follow the
    redirect transparently (up to 4 hops), cache it per logical target,
    and invalidate the cache when the forwarded placement fails. *)

val clear_forward : t -> oid:string -> unit

val cached_forward_for : t -> Objref.t -> Objref.t option
(** This {e client's} cached redirect for a logical target, if any. *)

val drop_cached_forward : t -> Objref.t -> unit

val servant_key : unit -> int
(** A process-unique servant identity, for {!export_cached} and stub
    caches. *)

(** The bootstrap object: a tiny naming service behind the well-known
    oid ["bootstrap"] (Section 3.1: "The bootstrap port in each address
    space serves as means to initiate a communication channel"). A
    client that knows only a server's endpoint can resolve its way in:

    {[
      (* server *)                          (* client *)
      let _ = Bootstrap.serve orb in        let boot = Bootstrap.reference
      Bootstrap.bind orb ~name:"mixer" r;     ~proto:"tcp" ~host ~port in
                                            Bootstrap.resolve client boot ~name:"mixer"
    ]}

    The wire interface is an ordinary skeleton, callable from any
    mapping: [bind(name, obj)], [resolve(name)], [unbind(name)],
    [list()]. *)
module Bootstrap : sig
  val type_id : string
  val oid : string

  val serve : t -> Objref.t
  (** Export the bootstrap skeleton under the well-known oid.
      @raise Invalid_argument if this ORB already serves one. *)

  val reference : proto:string -> host:string -> port:int -> Objref.t
  (** The bootstrap reference of a remote address space, from its
      endpoint alone. *)

  val bind : t -> name:string -> Objref.t -> unit
  (** Bind (or rebind) in the local registry; requires {!serve} first.
      @raise Invalid_argument before {!serve}. *)

  val resolve : t -> Objref.t -> name:string -> Objref.t
  (** Remote resolve via a bootstrap reference.
      @raise System_exception when unbound. *)

  val unbind : t -> Objref.t -> name:string -> unit
  val list_names : t -> Objref.t -> string list
end

(** The ORB bindings of the lease-based naming service (see {!Naming}
    for the protocol and the invoker-parameterized primitives). [serve]
    exports the servant; the client calls go through this ORB's
    {!invoke}, inheriting its retry, breaker, failover, and timeout
    machinery. *)
module Naming : sig
  include module type of struct
    include Naming
  end

  val serve : ?config:config -> ?oid:string -> t -> registry * Objref.t
  (** Export a naming servant (default oid ["naming"]); returns the
      registry (for in-process registration) and the servant's
      reference. *)

  val invoker : ?timeout:float -> t -> invoker

  val register :
    ?timeout:float -> t -> Objref.t -> name:string -> Objref.t ->
    ttl:float -> float
  (** Register (or renew) a provider of [name] at the naming servant;
      returns the granted TTL in seconds. [ttl <= 0.] requests the
      server's default lease. *)

  val unregister :
    ?timeout:float -> t -> Objref.t -> name:string -> Objref.t -> unit

  val resolve :
    ?timeout:float -> t -> Objref.t -> name:string -> (Objref.t * float) option
  (** The merged multi-endpoint reference over the live replicas of
      [name], with the remaining lease time in seconds. *)

  val list : ?timeout:float -> t -> Objref.t -> string list

  val resolver : ?timeout:float -> t -> Objref.t -> name:string -> resolver
  (** A caching resolve handle bound to this ORB (see {!type-resolver}). *)

  val call :
    t -> resolver -> op:string -> ?oneway:bool -> ?timeout:float ->
    (Wire.Codec.encoder -> unit) ->
    Wire.Codec.decoder option
  (** {!invoke} through a resolver: resolves (from cache while the lease
      lasts), invokes, and on a failure that proves the cached placement
      dead without any dispatch risk (circuit open, transient connection
      failure) re-resolves and re-sends exactly once. Ambiguous failures
      (deadline, fresh-connection receive errors) propagate without a
      re-send — at-most-once is preserved.
      @raise Unresolved when no provider is live. *)
end
