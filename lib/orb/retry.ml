(* Retry policies: configurable attempts, exponential backoff with
   deterministic jitter, and the error taxonomy that decides what is
   safe to try again. *)

type error_class = Transient | Deadline | Permanent

exception Budget_exhausted of string

let () =
  Printexc.register_printer (function
    | Budget_exhausted m -> Some (Printf.sprintf "Retry.Budget_exhausted: %s" m)
    | _ -> None)

let classify = function
  | Transport.Timeout _ -> Deadline
  | Transport.Transport_error _ -> Transient
  | _ -> Permanent

(* A client-wide retry budget: a token bucket replenished by successes,
   drained by retries. Per-call [max_attempts] bounds one call's worst
   case; the budget bounds the *aggregate* retry ratio, so correlated
   failures (a replica set dying at once, a network partition) cannot
   amplify every in-flight call into a synchronized retry storm — the
   metastable feedback loop admission control alone cannot see. The
   initial reserve lets a cold client ride out a startup blip; in steady
   state the ratio dominates: ~[ratio] retries per success.

   State is one Atomic int of milli-tokens, updated by CAS loops only
   (the C405 rule: no split read-modify-write), so any thread or domain
   may deposit/withdraw without a lock. *)
module Budget = struct
  type t = {
    tokens : int Atomic.t;  (* milli-tokens: 1000 = one retry credit *)
    deposit_mt : int;  (* milli-tokens credited per recorded success *)
    cap_mt : int;  (* bucket bound: old successes must not bank forever *)
    exhaustions : int Atomic.t;  (* withdrawals refused *)
  }

  type config = { ratio : float; reserve : int; cap : int }

  (* 10% steady-state retry ratio, 100 retries of initial reserve, the
     bucket capped at 250 banked retries. *)
  let default_config = { ratio = 0.1; reserve = 100; cap = 250 }

  let create ?(config = default_config) () =
    {
      tokens = Atomic.make (max 0 config.reserve * 1000);
      deposit_mt =
        max 0 (int_of_float (Float.min 1.0 (Float.max 0. config.ratio) *. 1000.));
      cap_mt = max 1000 (config.cap * 1000);
      exhaustions = Atomic.make 0;
    }

  let rec deposit t =
    let cur = Atomic.get t.tokens in
    let next = min t.cap_mt (cur + t.deposit_mt) in
    if next <> cur && not (Atomic.compare_and_set t.tokens cur next) then
      deposit t

  let rec try_withdraw t =
    let cur = Atomic.get t.tokens in
    if cur < 1000 then begin
      ignore (Atomic.fetch_and_add t.exhaustions 1);
      false
    end
    else if Atomic.compare_and_set t.tokens cur (cur - 1000) then true
    else try_withdraw t

  let balance t = Atomic.get t.tokens / 1000
  let exhaustions t = Atomic.get t.exhaustions
end

type policy = {
  max_attempts : int;
  base_delay : float;
  multiplier : float;
  max_delay : float;
  jitter : float;
  seed : int;
}

let default =
  {
    max_attempts = 3;
    base_delay = 0.002;
    multiplier = 2.0;
    max_delay = 0.25;
    jitter = 0.2;
    seed = 0;
  }

let none = { default with max_attempts = 1 }

let delay_for p ~attempt =
  let attempt = max 1 attempt in
  let exp = p.base_delay *. (p.multiplier ** float_of_int (attempt - 1)) in
  let capped = Float.min exp p.max_delay in
  if p.jitter <= 0. || capped <= 0. then capped
  else
    (* Jitter drawn from a state keyed by (seed, attempt): the schedule
       is fully determined by the policy, so tests can assert it. *)
    let st = Random.State.make [| p.seed; attempt |] in
    let factor = 1. -. p.jitter +. (2. *. p.jitter *. Random.State.float st 1.0) in
    Float.max 0. (capped *. factor)

let retryable p ~attempt exn =
  attempt < p.max_attempts && classify exn = Transient

let run ?(sleep = Thread.delay) ?(on_retry = fun ~attempt:_ _ -> ()) ?budget
    ?deadline p f =
  let remaining () =
    match deadline with
    | None -> infinity
    | Some d -> d -. Unix.gettimeofday ()
  in
  let rec go attempt =
    try f ~attempt
    with e when retryable p ~attempt e ->
      (* Out of deadline: another attempt cannot finish in time, so the
         backoff would only delay the failure. Propagate now. *)
      if remaining () <= 0. then raise e;
      (match budget with
      | Some b when not (Budget.try_withdraw b) ->
          raise
            (Budget_exhausted
               (Printf.sprintf
                  "retry budget exhausted after attempt %d (last error: %s)"
                  attempt (Printexc.to_string e)))
      | _ -> ());
      on_retry ~attempt e;
      (* Never sleep past the deadline only to fail on wakeup. *)
      sleep (Float.max 0. (Float.min (delay_for p ~attempt) (remaining ())));
      go (attempt + 1)
  in
  go 1
