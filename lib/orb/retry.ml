(* Retry policies: configurable attempts, exponential backoff with
   deterministic jitter, and the error taxonomy that decides what is
   safe to try again. *)

type error_class = Transient | Deadline | Permanent

let classify = function
  | Transport.Timeout _ -> Deadline
  | Transport.Transport_error _ -> Transient
  | _ -> Permanent

type policy = {
  max_attempts : int;
  base_delay : float;
  multiplier : float;
  max_delay : float;
  jitter : float;
  seed : int;
}

let default =
  {
    max_attempts = 3;
    base_delay = 0.002;
    multiplier = 2.0;
    max_delay = 0.25;
    jitter = 0.2;
    seed = 0;
  }

let none = { default with max_attempts = 1 }

let delay_for p ~attempt =
  let attempt = max 1 attempt in
  let exp = p.base_delay *. (p.multiplier ** float_of_int (attempt - 1)) in
  let capped = Float.min exp p.max_delay in
  if p.jitter <= 0. || capped <= 0. then capped
  else
    (* Jitter drawn from a state keyed by (seed, attempt): the schedule
       is fully determined by the policy, so tests can assert it. *)
    let st = Random.State.make [| p.seed; attempt |] in
    let factor = 1. -. p.jitter +. (2. *. p.jitter *. Random.State.float st 1.0) in
    Float.max 0. (capped *. factor)

let retryable p ~attempt exn =
  attempt < p.max_attempts && classify exn = Transient

let run ?(sleep = Thread.delay) ?(on_retry = fun ~attempt:_ _ -> ()) p f =
  let rec go attempt =
    try f ~attempt
    with e when retryable p ~attempt e ->
      on_retry ~attempt e;
      sleep (delay_for p ~attempt);
      go (attempt + 1)
  in
  go 1
