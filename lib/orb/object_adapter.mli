(** The object adapter: the per-address-space registry mapping object
    identifiers to skeletons (paper Fig. 5 — the oid and type information
    in the [Call] header "permit the selection of the appropriate
    Skeleton").

    Also implements the skeleton cache of Section 3.1: "The skeleton for
    a particular object is only created when a reference to it is being
    passed"; repeated exports of the same servant (identified by a caller
    supplied key) reuse the existing registration. Thread-safe. *)

type t

val create : unit -> t

val register : t -> Skeleton.t -> string
(** Register a skeleton under a fresh numeric oid; returns the oid. *)

val register_named : t -> oid:string -> Skeleton.t -> unit
(** Register under a caller-chosen oid (e.g. ["bootstrap"]).
    @raise Invalid_argument if the oid is taken or contains ['#']. *)

val register_cached : t -> key:int -> (unit -> Skeleton.t) -> string
(** Lazy, cached registration keyed by a servant identity: the skeleton
    is only built on the first call for a given [key]; later calls return
    the same oid. [key] is typically the servant's unique id. *)

val cache_hits : t -> int
(** Number of [register_cached] calls served from the cache (bench §E6). *)

val lookup : t -> string -> Skeleton.t option
val unregister : t -> string -> unit
val count : t -> int

val set_forward : t -> oid:string -> Objref.t -> unit
(** Register a GIOP-style location forward: requests and locates naming
    [oid] are answered with a redirect to [target] instead of being
    dispatched (even while a local skeleton is still registered — a
    migrated object keeps forwarding until unregistered). *)

val clear_forward : t -> oid:string -> unit
val forward : t -> string -> Objref.t option
