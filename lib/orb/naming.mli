(** Lease-based naming: names bound to {e sets} of provider references
    under TTL leases (DESIGN.md "Replication and naming").

    Each replica registers its own reference with a TTL and must
    re-register before the lease lapses; [resolve] merges the live
    providers into one multi-endpoint {!Objref.t}, so client-side
    failover and load balancing see every replica behind a single
    logical target. A dead replica simply stops renewing.

    The module is ORB-independent: the server half is a skeleton over a
    lease registry; the client half is parameterized over an {!invoker}.
    [Orb.Naming] binds both to a live ORB. *)

val type_id : string  (** ["IDL:Heidi/Naming:1.0"] *)

val default_oid : string  (** ["naming"] — the well-known oid. *)

(** {2 Server half} *)

type config = {
  default_ttl : float;  (** Granted when the caller requests [ttl <= 0]. *)
  max_ttl : float;  (** Requested TTLs are clamped to this. *)
}

val default_config : config
(** 30 s default lease, 1 h cap. *)

type registry
(** The lease table. Thread-safe; expiry is lazy (pruned on touch). *)

val create : ?config:config -> unit -> registry

val skeleton : registry -> Skeleton.t
(** The naming servant: operations [register] (name, provider byref,
    requested-ttl double → granted-ttl double), [unregister] (name,
    provider byref), [resolve] (name → merged byref + remaining-ttl
    double; nil byref + 0 when unbound), [list] (→ name sequence). *)

val grant : registry -> name:string -> Objref.t -> ttl:float -> float
(** Local (in-process) registration or renewal; returns the granted
    TTL in seconds. *)

val revoke : registry -> name:string -> Objref.t -> unit

val lookup : registry -> name:string -> (Objref.t * float) option
(** The merged multi-endpoint reference over the live replicas of
    [name] (providers sharing the first registration's oid and type),
    with seconds until the soonest merged lease lapses. *)

val names : registry -> string list
val grants : registry -> int  (** Registrations + renewals served. *)

val expiries : registry -> int
(** Leases dropped because they lapsed without renewal. *)

(** {2 Client half} *)

type invoker =
  Objref.t -> op:string -> (Wire.Codec.encoder -> unit) ->
  Wire.Codec.decoder option
(** How the client half calls the naming servant — [Orb.invoke]
    partially applied, in practice. *)

exception Unresolved of string
(** A name with no live providers. *)

val register_via :
  invoker -> Objref.t -> name:string -> Objref.t -> ttl:float -> float

val unregister_via : invoker -> Objref.t -> name:string -> Objref.t -> unit

val resolve_via : invoker -> Objref.t -> name:string -> (Objref.t * float) option

val list_via : invoker -> Objref.t -> string list

type resolver
(** A caching resolve handle for one name: remembers the resolved
    endpoint set until its lease lapses, so the naming service is only
    consulted on expiry or {!invalidate}. Thread-safe. *)

val resolver_via : invoker -> Objref.t -> name:string -> resolver

val current : resolver -> Objref.t
(** The cached reference, re-resolving if the lease has lapsed or the
    cache was invalidated. @raise Unresolved when no provider is live. *)

val invalidate : resolver -> unit
(** Drop the cache — the next {!current} re-resolves. Called when every
    replica of the cached set is unreachable. *)

val resolves : resolver -> int
(** Trips made to the naming service (cache misses). *)
