(** Per-endpoint circuit breakers.

    A breaker tracks consecutive connection-level failures per endpoint
    (the connection-cache key). After [failure_threshold] consecutive
    failures the circuit {e trips} to [Open]: calls fast-fail with
    {!Circuit_open} without touching the network, protecting both the
    caller (no pile-up behind a dead peer) and the peer (no reconnect
    storm). After [reset_timeout] seconds one caller is let through as a
    {e half-open} probe — the ORB uses a [Locate_request] ping — and its
    outcome closes or re-trips the circuit.

    State machine: [Closed] --(threshold failures)--> [Open]
    --(reset_timeout elapses; one probe)--> [Half_open]
    --(probe ok)--> [Closed] / --(probe fails)--> [Open]. *)

exception Circuit_open of string
(** Raised (by the ORB) instead of attempting a call on a tripped
    endpoint. *)

type state = Closed | Open | Half_open

val state_to_string : state -> string

type config = {
  failure_threshold : int;
      (** Consecutive failures that trip the circuit. *)
  reset_timeout : float;
      (** Seconds the circuit stays open before allowing a probe. *)
}

val default_config : config
(** 5 consecutive failures; 1s cool-down. *)

type t

val create : ?config:config -> unit -> t

(** What a caller should do right now. *)
type decision =
  | Proceed  (** Circuit closed: call normally. *)
  | Probe
      (** Half-open and this caller won the probe slot: make one
          lightweight attempt and report {!success} or {!failure}. *)
  | Fast_fail  (** Tripped: do not touch the network. *)

val before_call : t -> string -> decision
(** Gate one call to endpoint [key]. [Probe] is granted to exactly one
    caller at a time; concurrent callers get [Fast_fail] until the
    probe's outcome is reported. *)

val success : t -> string -> unit
(** Any decoded reply — including system errors — closes the circuit:
    the peer is responsive. *)

val failure : t -> string -> unit
(** A connection-level failure (transport error / timeout). *)

val state : t -> string -> state

val available : t -> string -> bool
(** Read-only: would a call to this endpoint be allowed to touch the
    network right now (i.e. {!before_call} would not return [Fast_fail])?
    Never consumes the half-open probe slot — replica selection uses this
    to skip tripped endpoints. *)

val states : t -> (string * state) list
(** Every endpoint the breaker has seen, with its current state, sorted
    by endpoint key. *)

val trips : t -> int  (** Times any circuit transitioned to [Open]. *)

val fast_fails : t -> int
(** Calls rejected without touching the network. *)

val reset : t -> unit
(** Forget all endpoints and statistics. *)
