exception Reject of string

let () =
  Printexc.register_printer (function
    | Reject m -> Some (Printf.sprintf "Orb.Interceptor.Reject: %s" m)
    | _ -> None)

type t = {
  name : string;
  on_request : Protocol.request -> Protocol.request;
  on_reply : Protocol.request -> Protocol.reply -> Protocol.reply;
  on_error : Protocol.request -> exn -> unit;
}

let make ?(on_request = Fun.id) ?(on_reply = fun _ r -> r)
    ?(on_error = fun _ _ -> ()) name =
  { name; on_request; on_reply; on_error }

type chain = { mutex : Mutex.t; mutable items : t list (* reversed *) }

let empty_chain () = { mutex = Mutex.create (); items = [] }

let add chain i =
  Mutex.lock chain.mutex;
  chain.items <- i :: chain.items;
  Mutex.unlock chain.mutex

let snapshot chain =
  Mutex.lock chain.mutex;
  let items = List.rev chain.items in
  Mutex.unlock chain.mutex;
  items

let names chain = List.map (fun i -> i.name) (snapshot chain)

let apply_request chain req =
  List.fold_left (fun req i -> i.on_request req) req (snapshot chain)

let apply_reply chain req rep =
  List.fold_left (fun rep i -> i.on_reply req rep) rep (List.rev (snapshot chain))

let apply_error chain req exn =
  List.iter (fun i -> i.on_error req exn) (snapshot chain)

(* ---------------- stock interceptors ---------------- *)

let logger emit =
  {
    name = "logger";
    on_request =
      (fun req ->
        emit
          (Printf.sprintf "-> %s %s(#%d)%s" req.Protocol.operation
             (Objref.to_string req.Protocol.target)
             req.Protocol.req_id
             (if req.Protocol.oneway then " oneway" else ""));
        req);
    on_reply =
      (fun req rep ->
        emit
          (Printf.sprintf "<- %s(#%d) %s" req.Protocol.operation
             rep.Protocol.rep_id
             (Protocol.status_to_string rep.Protocol.status));
        rep);
    on_error =
      (fun req exn ->
        emit
          (Printf.sprintf "!! %s(#%d) %s" req.Protocol.operation
             req.Protocol.req_id (Printexc.to_string exn)));
  }

let call_counter () =
  let count = ref 0 in
  let mutex = Mutex.create () in
  ( {
      name = "call-counter";
      on_request =
        (fun req ->
          Mutex.lock mutex;
          incr count;
          Mutex.unlock mutex;
          req);
      on_reply = (fun _ rep -> rep);
      on_error = (fun _ _ -> ());
    },
    fun () ->
      Mutex.lock mutex;
      let n = !count in
      Mutex.unlock mutex;
      n )

let failure_counter () =
  let count = ref 0 in
  let mutex = Mutex.create () in
  ( {
      name = "failure-counter";
      on_request = Fun.id;
      on_reply = (fun _ rep -> rep);
      on_error =
        (fun _ _ ->
          Mutex.lock mutex;
          incr count;
          Mutex.unlock mutex);
    },
    fun () ->
      Mutex.lock mutex;
      let n = !count in
      Mutex.unlock mutex;
      n )

let deny pred ~reason =
  {
    name = "deny";
    on_request =
      (fun req ->
        if
          pred ~op:req.Protocol.operation
            ~type_id:req.Protocol.target.Objref.type_id
        then raise (Reject reason)
        else req);
    on_reply = (fun _ rep -> rep);
    on_error = (fun _ _ -> ());
  }
