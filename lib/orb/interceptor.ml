exception Reject of string

let () =
  Printexc.register_printer (function
    | Reject m -> Some (Printf.sprintf "Orb.Interceptor.Reject: %s" m)
    | _ -> None)

type t = {
  name : string;
  on_request : Protocol.request -> Protocol.request;
  on_reply : Protocol.request -> Protocol.reply -> Protocol.reply;
  on_error : Protocol.request -> exn -> unit;
}

let make ?(on_request = Fun.id) ?(on_reply = fun _ r -> r)
    ?(on_error = fun _ _ -> ()) name =
  { name; on_request; on_reply; on_error }

type chain = { lock : Locked.t; mutable items : t list (* reversed *) }

let empty_chain () =
  { lock = Locked.create ~name:"interceptor" ~rank:Locked.Rank.interceptor;
    items = [] }

let add chain i = Locked.with_lock chain.lock (fun () -> chain.items <- i :: chain.items)

let snapshot chain = Locked.with_lock chain.lock (fun () -> List.rev chain.items)

let names chain = List.map (fun i -> i.name) (snapshot chain)

let apply_request chain req =
  List.fold_left (fun req i -> i.on_request req) req (snapshot chain)

let apply_reply chain req rep =
  List.fold_left (fun rep i -> i.on_reply req rep) rep (List.rev (snapshot chain))

let apply_error chain req exn =
  List.iter (fun i -> i.on_error req exn) (snapshot chain)

(* ---------------- stock interceptors ---------------- *)

let logger emit =
  {
    name = "logger";
    on_request =
      (fun req ->
        emit
          (Printf.sprintf "-> %s %s(#%d)%s" req.Protocol.operation
             (Objref.to_string req.Protocol.target)
             req.Protocol.req_id
             (if req.Protocol.oneway then " oneway" else ""));
        req);
    on_reply =
      (fun req rep ->
        emit
          (Printf.sprintf "<- %s(#%d) %s" req.Protocol.operation
             rep.Protocol.rep_id
             (Protocol.status_to_string rep.Protocol.status));
        rep);
    on_error =
      (fun req exn ->
        emit
          (Printf.sprintf "!! %s(#%d) %s" req.Protocol.operation
             req.Protocol.req_id (Printexc.to_string exn)));
  }

let call_counter () =
  let count = Atomic.make 0 in
  ( {
      name = "call-counter";
      on_request =
        (fun req ->
          Atomic.incr count;
          req);
      on_reply = (fun _ rep -> rep);
      on_error = (fun _ _ -> ());
    },
    fun () -> Atomic.get count )

let failure_counter () =
  let count = Atomic.make 0 in
  ( {
      name = "failure-counter";
      on_request = Fun.id;
      on_reply = (fun _ rep -> rep);
      on_error = (fun _ _ -> Atomic.incr count);
    },
    fun () -> Atomic.get count )

let deny pred ~reason =
  {
    name = "deny";
    on_request =
      (fun req ->
        if
          pred ~op:req.Protocol.operation
            ~type_id:req.Protocol.target.Objref.type_id
        then raise (Reject reason)
        else req);
    on_reply = (fun _ rep -> rep);
    on_error = (fun _ _ -> ());
  }
