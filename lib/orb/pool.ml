(* A bounded worker pool with explicit admission control — the server's
   overload policy, separated from dispatch logic in the spirit of the
   paper's "policy is configuration, not code". Connection reader
   threads decode requests and [submit] them here; a fixed set of
   workers executes them. The queue is bounded, and what happens at the
   bound is the admission policy: reject immediately (shed load, keep
   latency) or block the submitting reader (backpressure through the
   transport) up to a deadline.

   Workers come in two shapes. [Domains] (the default) runs one OCaml
   domain per worker: CPU-bound dispatches execute in parallel on
   separate cores instead of time-slicing one runtime lock — the model
   bench E13 measures. [Systhreads] keeps the historical
   one-runtime-lock pool, retained as the flatline control and for
   configurations that want many more workers than cores (e.g. purely
   I/O-bound servants). The queue between reader threads and workers is
   the same either way: OCaml 5's [Mutex]/[Condition] (via [Locked])
   synchronize threads and domains alike, so admission semantics are
   identical across backends.

   OCaml's [Condition] has no timed wait, so deadline-bounded waits poll
   at the transport layer's granularity — the same compromise
   [Transport.Pipe.read_with] makes: each locked step either decides or
   returns [`Poll], and the delay happens with the lock released. *)

type admission = Reject | Block of float option
type backend = Systhreads | Domains

type config = {
  workers : int;
  queue_capacity : int;
  admission : admission;
  backend : backend;
}

let default_config =
  { workers = 8; queue_capacity = 64; admission = Reject; backend = Domains }

(* A queued job and what to do with it if the pool is stopped before a
   worker picks it up. The cancel callback must answer the peer (a
   system-error reply) so a pipelined client is not left waiting out
   its call deadline on a request that silently evaporated. *)
type job = { run : unit -> unit; cancel : unit -> unit }

type t = {
  config : config;
  lock : Locked.t;  (* rank [pool] *)
  nonempty : Locked.cond;  (* workers park here waiting for jobs *)
  change : Locked.cond;  (* space freed / job finished / state flipped *)
  queue : job Queue.t;
  mutable accepting : bool;
  mutable stopping : bool;
  mutable active : int;  (* jobs currently executing *)
  mutable submitted : int;
  mutable completed : int;
  mutable rejected : int;
  mutable domains : unit Domain.t list;  (* worker handles; Domains only *)
}

let poll_interval = 0.005

let rec worker_loop t =
  let job =
    Locked.with_lock t.lock (fun () ->
        let rec next () =
          if not (Queue.is_empty t.queue) then begin
            let job = Queue.pop t.queue in
            t.active <- t.active + 1;
            (* Queue space freed: wake blocked submitters. *)
            Locked.broadcast_c t.change;
            Some job
          end
          else if t.stopping then None
          else begin
            Locked.wait_c t.nonempty;
            next ()
          end
        in
        next ())
  in
  match job with
  | None -> ()  (* stopped and drained: the worker exits *)
  | Some job ->
      (* A job failing must never kill its worker: the job itself is
         responsible for error replies; residual exceptions here mean
         the connection died under it. *)
      (try job.run () with _ -> ());
      Locked.with_lock t.lock (fun () ->
          t.active <- t.active - 1;
          t.completed <- t.completed + 1;
          Locked.broadcast_c t.change);
      worker_loop t

let create config =
  let config =
    {
      config with
      workers = max 1 config.workers;
      queue_capacity = max 1 config.queue_capacity;
    }
  in
  let lock = Locked.create ~name:"pool" ~rank:Locked.Rank.pool in
  let t =
    {
      config;
      lock;
      nonempty = Locked.new_cond lock;
      change = Locked.new_cond lock;
      queue = Queue.create ();
      accepting = true;
      stopping = false;
      active = 0;
      submitted = 0;
      completed = 0;
      rejected = 0;
      domains = [];
    }
  in
  (match config.backend with
  | Systhreads ->
      for _ = 1 to config.workers do
        ignore (Locked.spawn "pool.worker" (fun () -> worker_loop t))
      done
  | Domains ->
      t.domains <-
        List.init config.workers (fun _ ->
            Locked.spawn_domain "pool.worker" (fun () -> worker_loop t)));
  t

let submit t ?(cancel = fun () -> ()) ?expire run =
  let job = { run; cancel } in
  (* One locked step: accept, reject, park on [change] (no deadline), or
     hand a [`Poll] back to the unlocked retry loop below. [expire] — the
     request's own remaining-budget instant — bounds EVERY blocking wait:
     an admission policy must never park a reader past the moment the
     caller gives up, so the effective wait deadline is the min of the
     admission deadline and the expiry, and a lapsed expiry is reported
     as [`Expired], distinct from an overload rejection. *)
  let step deadline =
    Locked.with_lock t.lock (fun () ->
        let accept () =
          Queue.push job t.queue;
          t.submitted <- t.submitted + 1;
          Locked.signal_c t.nonempty;
          `Accepted
        in
        let reject reason =
          t.rejected <- t.rejected + 1;
          `Rejected reason
        in
        let expired () =
          t.rejected <- t.rejected + 1;
          `Expired
        in
        let has_space () = Queue.length t.queue < t.config.queue_capacity in
        let rec attempt () =
          if (match expire with Some x -> Unix.gettimeofday () >= x | None -> false)
          then expired ()
          else if not t.accepting then
            reject "draining: not accepting new requests"
          else if has_space () then accept ()
          else
            match t.config.admission with
            | Reject -> reject "overloaded: request queue is full"
            | Block None -> (
                match expire with
                | None ->
                    Locked.wait_c t.change;
                    attempt ()
                | Some x ->
                    (* No admission deadline, but the request itself has
                       one: poll so the wait wakes when it lapses. *)
                    `Poll (x -. Unix.gettimeofday ()))
            | Block (Some _) -> (
                match deadline with
                | None -> assert false  (* deadline set below for Block Some *)
                | Some d ->
                    let remaining = d -. Unix.gettimeofday () in
                    if remaining <= 0. then
                      reject "overloaded: queue full past admission deadline"
                    else `Poll remaining)
        in
        attempt ())
  in
  let deadline =
    match t.config.admission with
    | Block (Some s) ->
        let d = Unix.gettimeofday () +. s in
        Some (match expire with Some x -> Float.min d x | None -> d)
    | _ -> None
  in
  let rec loop () =
    match step deadline with
    | `Poll remaining ->
        Thread.delay (Float.min poll_interval (Float.max 0.0005 remaining));
        loop ()
    | (`Accepted | `Rejected _ | `Expired) as decision -> decision
  in
  loop ()

let depth t = Locked.with_lock t.lock (fun () -> Queue.length t.queue)
let active t = Locked.with_lock t.lock (fun () -> t.active)

type stats = { submitted : int; completed : int; rejected : int }

let stats t =
  Locked.with_lock t.lock (fun () ->
      { submitted = t.submitted; completed = t.completed; rejected = t.rejected })

let drain t ~deadline =
  Locked.with_lock t.lock (fun () ->
      t.accepting <- false;
      (* Wake submitters blocked on admission so they observe the drain
         and reject instead of waiting on space that may never free. *)
      Locked.broadcast_c t.change);
  let step () =
    Locked.with_lock t.lock (fun () ->
        let rec wait () =
          if Queue.is_empty t.queue && t.active = 0 then `Drained
          else
            match deadline with
            | None ->
                Locked.wait_c t.change;
                wait ()
            | Some d ->
                let remaining = d -. Unix.gettimeofday () in
                if remaining <= 0. then
                  `Aborted (Queue.length t.queue + t.active)
                else `Poll remaining
        in
        wait ())
  in
  let rec loop () =
    match step () with
    | `Poll remaining ->
        Thread.delay (Float.min poll_interval remaining);
        loop ()
    | (`Drained | `Aborted _) as outcome -> outcome
  in
  loop ()

let stop t =
  let dropped, handles =
    Locked.with_lock t.lock (fun () ->
        t.accepting <- false;
        t.stopping <- true;
        let dropped = List.rev (Queue.fold (fun acc j -> j :: acc) [] t.queue) in
        Queue.clear t.queue;
        Locked.broadcast_c t.nonempty;
        Locked.broadcast_c t.change;
        let hs = t.domains in
        t.domains <- [];
        (dropped, hs))
  in
  (* Cancel dropped jobs OUTSIDE the pool lock, in submission order: a
     cancel sends an error reply, which takes the connection's write
     lock (rank communicator, above pool) and may block on the
     transport — both forbidden under the pool lock. *)
  List.iter (fun j -> try j.cancel () with _ -> ()) dropped;
  (* Workers are not joined here: one may be executing a job blocked on
     I/O that only the caller's next step (closing the connections)
     unblocks. Idle workers exit immediately; busy ones exit after
     their current job. Domain workers still need a join eventually —
     the runtime caps live domains — so a detached reaper joins the
     handles as the workers wind down. *)
  (match handles with
  | [] -> ()
  | handles ->
      ignore
        (Locked.spawn "pool.reaper" (fun () -> List.iter Domain.join handles)));
  List.length dropped
