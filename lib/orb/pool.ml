(* A bounded worker pool with explicit admission control — the server's
   overload policy, separated from dispatch logic in the spirit of the
   paper's "policy is configuration, not code". Connection reader
   threads decode requests and [submit] them here; a fixed set of
   workers executes them. The queue is bounded, and what happens at the
   bound is the admission policy: reject immediately (shed load, keep
   latency) or block the submitting reader (backpressure through the
   transport) up to a deadline.

   OCaml's [Condition] has no timed wait, so deadline-bounded waits poll
   at the transport layer's granularity — the same compromise
   [Transport.Pipe.read_with] makes. *)

type admission = Reject | Block of float option

type config = {
  workers : int;
  queue_capacity : int;
  admission : admission;
}

let default_config = { workers = 8; queue_capacity = 64; admission = Reject }

type t = {
  config : config;
  mutex : Mutex.t;
  nonempty : Condition.t;  (* workers park here waiting for jobs *)
  change : Condition.t;  (* space freed / job finished / state flipped *)
  queue : (unit -> unit) Queue.t;
  mutable accepting : bool;
  mutable stopping : bool;
  mutable active : int;  (* jobs currently executing *)
  mutable submitted : int;
  mutable completed : int;
  mutable rejected : int;
}

let poll_interval = 0.005

let rec worker_loop t =
  Mutex.lock t.mutex;
  let job =
    let rec next () =
      if not (Queue.is_empty t.queue) then begin
        let job = Queue.pop t.queue in
        t.active <- t.active + 1;
        (* Queue space freed: wake blocked submitters. *)
        Condition.broadcast t.change;
        Some job
      end
      else if t.stopping then None
      else begin
        Condition.wait t.nonempty t.mutex;
        next ()
      end
    in
    next ()
  in
  Mutex.unlock t.mutex;
  match job with
  | None -> ()  (* stopped and drained: the worker thread exits *)
  | Some job ->
      (* A job failing must never kill its worker: the job itself is
         responsible for error replies; residual exceptions here mean
         the connection died under it. *)
      (try job () with _ -> ());
      Mutex.lock t.mutex;
      t.active <- t.active - 1;
      t.completed <- t.completed + 1;
      Condition.broadcast t.change;
      Mutex.unlock t.mutex;
      worker_loop t

let create config =
  let config =
    {
      config with
      workers = max 1 config.workers;
      queue_capacity = max 1 config.queue_capacity;
    }
  in
  let t =
    {
      config;
      mutex = Mutex.create ();
      nonempty = Condition.create ();
      change = Condition.create ();
      queue = Queue.create ();
      accepting = true;
      stopping = false;
      active = 0;
      submitted = 0;
      completed = 0;
      rejected = 0;
    }
  in
  for _ = 1 to config.workers do
    ignore (Thread.create worker_loop t)
  done;
  t

let submit t job =
  Mutex.lock t.mutex;
  let accept () =
    Queue.push job t.queue;
    t.submitted <- t.submitted + 1;
    Condition.signal t.nonempty;
    Mutex.unlock t.mutex;
    `Accepted
  in
  let reject reason =
    t.rejected <- t.rejected + 1;
    Mutex.unlock t.mutex;
    `Rejected reason
  in
  let has_space () = Queue.length t.queue < t.config.queue_capacity in
  if not t.accepting then reject "draining: not accepting new requests"
  else if has_space () then accept ()
  else
    match t.config.admission with
    | Reject -> reject "overloaded: request queue is full"
    | Block rel_deadline ->
        let deadline =
          Option.map (fun s -> Unix.gettimeofday () +. s) rel_deadline
        in
        let rec wait () =
          if not t.accepting then reject "draining: not accepting new requests"
          else if has_space () then accept ()
          else
            match deadline with
            | None ->
                Condition.wait t.change t.mutex;
                wait ()
            | Some d ->
                let remaining = d -. Unix.gettimeofday () in
                if remaining <= 0. then
                  reject "overloaded: queue full past admission deadline"
                else begin
                  Mutex.unlock t.mutex;
                  Thread.delay (Float.min poll_interval remaining);
                  Mutex.lock t.mutex;
                  wait ()
                end
        in
        wait ()

let depth t =
  Mutex.lock t.mutex;
  let n = Queue.length t.queue in
  Mutex.unlock t.mutex;
  n

let active t =
  Mutex.lock t.mutex;
  let n = t.active in
  Mutex.unlock t.mutex;
  n

type stats = { submitted : int; completed : int; rejected : int }

let stats t =
  Mutex.lock t.mutex;
  let s = { submitted = t.submitted; completed = t.completed; rejected = t.rejected } in
  Mutex.unlock t.mutex;
  s

let drain t ~deadline =
  Mutex.lock t.mutex;
  t.accepting <- false;
  (* Wake submitters blocked on admission so they observe the drain and
     reject instead of waiting on space that may never free. *)
  Condition.broadcast t.change;
  let rec wait () =
    if Queue.is_empty t.queue && t.active = 0 then begin
      Mutex.unlock t.mutex;
      `Drained
    end
    else
      match deadline with
      | None ->
          Condition.wait t.change t.mutex;
          wait ()
      | Some d ->
          let remaining = d -. Unix.gettimeofday () in
          if remaining <= 0. then begin
            let abandoned = Queue.length t.queue + t.active in
            Mutex.unlock t.mutex;
            `Aborted abandoned
          end
          else begin
            Mutex.unlock t.mutex;
            Thread.delay (Float.min poll_interval remaining);
            Mutex.lock t.mutex;
            wait ()
          end
  in
  wait ()

let stop t =
  Mutex.lock t.mutex;
  t.accepting <- false;
  t.stopping <- true;
  let dropped = Queue.length t.queue in
  Queue.clear t.queue;
  Condition.broadcast t.nonempty;
  Condition.broadcast t.change;
  Mutex.unlock t.mutex;
  (* Workers are not joined: one may be executing a job blocked on I/O
     that only the caller's next step (closing the connections)
     unblocks. Idle workers exit immediately; busy ones exit after
     their current job. *)
  dropped
