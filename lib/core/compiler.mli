(** The template-driven IDL compiler (paper Fig. 6).

    Two stages, exactly as in the architecture diagram: a generic parser
    producing the enhanced syntax tree, and a template-driven
    code-generator. Nothing about any particular mapping is hard-coded
    here — "the generated code now depends only on the template that is
    provided to the code-generator". *)

type result = {
  files : (string * string) list;
      (** Generated files ([@openfile] targets), in generation order.
          Later templates writing the same name append. *)
  stdout : string;  (** Output produced outside any [@openfile]. *)
}

val est_of_string :
  ?warn:(Idl.Diag.t -> unit) ->
  ?filename:string ->
  ?file_base:string ->
  string ->
  Est.Node.t
(** Stage 1 alone: parse + resolve + build the EST. The root node carries
    a [fileBase] property (derived from [filename] unless [file_base] is
    given) that templates use to name output files. [warn] receives each
    resolver warning (e.g. W107) in source order; default: dropped.
    @raise Idl.Diag.Idl_error on parse or semantic errors. *)

val est_of_file : ?warn:(Idl.Diag.t -> unit) -> string -> Est.Node.t

val generate :
  ?maps:Template.Maps.t -> templates:(string * string) list -> Est.Node.t -> result
(** Stage 2 alone: run each (named) template over the EST, with the given
    map functions, merging outputs.
    @raise Template.Parse.Template_error / Template.Eval.Eval_error. *)

val compile_string :
  ?warn:(Idl.Diag.t -> unit) ->
  ?filename:string ->
  ?file_base:string ->
  mapping:Mappings.Mapping.t ->
  string ->
  result
(** The full pipeline for one mapping.
    @raise Idl.Diag.Idl_error on IDL errors, template exceptions on
    template errors. *)

val compile_file :
  ?warn:(Idl.Diag.t -> unit) -> mapping:Mappings.Mapping.t -> string -> result

val write_result : dir:string -> result -> string list
(** Write every generated file under [dir] (created if missing); returns
    the paths written. *)
