(** Named, ranked locks — the ORB's declared locking policy.

    Every runtime lock in [lib/orb/] and [lib/obs/] is a [Locked.t]
    created with a name and a rank from the central {!Rank} table.
    Acquisition order must strictly *descend* ranks: while holding a
    lock of rank [r], a thread may only acquire locks of rank [< r].
    The table below is the single source of truth; the static analyzer
    ([idlc analyze-conc], C401–C406) and the optional runtime checker
    both enforce it.

    The runtime checker (per-thread held-rank stack) is off by default
    and costs one atomic boolean load per acquisition when disabled.
    Enable it with {!set_checking} or the [ORB_LOCK_CHECK=1]
    environment variable; the test suite and the [@fuzz] alias run
    with it on. *)

module Rank : sig
  (* Higher rank = acquired first (outermost). While holding rank [r],
     only locks of rank [< r] may be taken. *)

  val nego : int (* 72 — per-connection codec-negotiation gate *)
  val communicator : int (* 70 — per-connection send/exchange locks *)
  val pool : int (* 60 — server worker pool queue *)
  val connection_cache : int (* 50 — ORB state: conns, counters, rng *)
  val interceptor : int (* 47 — interceptor chains and counters *)
  val smart : int (* 46 — smart-proxy memo tables *)
  val adapter : int (* 45 — object adapter servant table *)
  val naming_registry : int (* 44 — naming lease registry *)
  val naming_resolver : int (* 43 — client-side resolve cache *)
  val mux : int (* 40 — per-connection reply demultiplexer *)
  val breaker : int (* 30 — per-endpoint circuit breakers *)
  val mem_registry : int (* 28 — in-memory transport port table *)
  val mem_listener : int (* 26 — in-memory listener accept queue *)
  val tcp_channel : int (* 25 — tcp channel/listener close guards *)
  val pipe : int (* 24 — in-memory byte pipes *)
  val fault : int (* 23 — fault-injection plans and counters *)
  val metrics : int (* 20 — Obs histogram/counter tables *)
  val trace_ids : int (* 15 — trace/span id generator *)
  val objref_cache : int (* 12 — memoized Objref.to_string cache *)
  val obs : int (* 11 — Obs facade: sink list, span counter *)
  val sinks : int (* 10 — individual sink buffers (innermost) *)

  val all : (string * int) list
  (** Every registered rank, [(name, rank)], outermost first. The
      analyzer resolves [~rank:Rank.x] against this table; a rank not
      listed here is a C406. *)
end

type t
(** A mutex with an intrinsic condition variable, a name, and a rank. *)

val create : name:string -> rank:int -> t
val name : t -> string
val rank : t -> int

val with_lock : t -> (unit -> 'a) -> 'a
(** Acquire, run, release (exception-safe). When checking is on,
    raises {!Rank_violation} if the calling thread already holds a
    lock of rank [<=] this one. *)

val wait : t -> unit
(** Wait on the lock's intrinsic condition. Must be called from within
    {!with_lock} on the same lock. *)

val signal : t -> unit
val broadcast : t -> unit

type cond
(** An extra condition variable bound to a [t], for locks that need
    more than one wait-set (e.g. the pool's [nonempty]/[change]). *)

val new_cond : t -> cond
val wait_c : cond -> unit
val signal_c : cond -> unit
val broadcast_c : cond -> unit

val spawn : string -> (unit -> unit) -> Thread.t
(** [spawn name f] starts a thread running [f]. The sanctioned
    thread-creation point — raw [Thread.create] outside this module is
    a C403. Exceptions escaping [f] are swallowed (thread bodies own
    their error handling); the checker's per-thread rank stack is
    discarded when the thread exits. *)

val spawn_domain : string -> (unit -> unit) -> unit Domain.t
(** [spawn_domain name f] starts a domain running [f] — the sanctioned
    domain-creation point (raw [Domain.spawn] outside this module is a
    C407). Same exception and rank-stack contract as {!spawn}. The
    checker keys held-rank stacks by [(domain, thread)], so locks taken
    on a worker domain are tracked independently of same-id threads on
    other domains. Join the returned handle (or hand it to a reaper)
    so the runtime's domain slot is reclaimed. *)

val domain_id : unit -> int
(** Numeric id of the calling domain (0 = the main domain). Exposed so
    domain-aware seeding (e.g. trace-id RNGs) need not touch [Domain]
    directly. *)

type 'a domain_local
(** A per-domain cell: each domain sees its own value, created lazily
    by the init function on first access from that domain. The
    sanctioned [Domain.DLS] access point — raw DLS outside locked.ml
    is a C407. *)

val new_domain_local : (unit -> 'a) -> 'a domain_local
(** [new_domain_local init] registers a new per-domain cell. [init]
    runs once per domain, in that domain, on first {!domain_local_get};
    it may call {!domain_id} to vary the value per domain. *)

val domain_local_get : 'a domain_local -> 'a

exception Rank_violation of string

val set_checking : bool -> unit
(** Turn the runtime lock-order checker on/off (default: off, or on if
    [ORB_LOCK_CHECK=1] in the environment). *)

val checking : unit -> bool

val violations : unit -> string list
(** Violations recorded so far (newest first). [Rank_violation] is
    raised at the offending acquisition *and* recorded here, so tests
    can assert emptiness after a run even when an intervening handler
    swallowed the exception. *)

val reset_violations : unit -> unit
