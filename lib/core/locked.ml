(* Named, ranked locks — the ORB's locking policy as an artifact.

   Acquisition order must strictly descend ranks: while holding a lock
   of rank [r], only locks of rank [< r] may be taken. [Rank.all] is
   the single source of truth; [lib/analysis/conc.ml] resolves
   [~rank:Rank.x] annotations against it statically, and the runtime
   checker below enforces the same lattice per thread when enabled.

   The checker costs one atomic load per acquisition when off. When
   on, each thread carries a stack of (rank, name) pairs for the locks
   it holds; pushing a rank that is not strictly below the current top
   raises [Rank_violation] and records the event so a test harness can
   assert zero violations after the fact even if an intervening
   handler swallowed the exception. *)

module Rank = struct
  let nego = 72
  let communicator = 70
  let pool = 60
  let connection_cache = 50
  let interceptor = 47
  let smart = 46
  let adapter = 45
  let naming_registry = 44
  let naming_resolver = 43
  let mux = 40
  let breaker = 30
  let mem_registry = 28
  let mem_listener = 26
  let tcp_channel = 25
  let pipe = 24
  let fault = 23
  let metrics = 20
  let trace_ids = 15
  let objref_cache = 12
  let obs = 11
  let sinks = 10

  let all =
    [
      ("nego", nego);
      ("communicator", communicator);
      ("pool", pool);
      ("connection_cache", connection_cache);
      ("interceptor", interceptor);
      ("smart", smart);
      ("adapter", adapter);
      ("naming_registry", naming_registry);
      ("naming_resolver", naming_resolver);
      ("mux", mux);
      ("breaker", breaker);
      ("mem_registry", mem_registry);
      ("mem_listener", mem_listener);
      ("tcp_channel", tcp_channel);
      ("pipe", pipe);
      ("fault", fault);
      ("metrics", metrics);
      ("trace_ids", trace_ids);
      ("objref_cache", objref_cache);
      ("obs", obs);
      ("sinks", sinks);
    ]
end

type t = {
  l_name : string;
  l_rank : int;
  l_mutex : Mutex.t;
  l_cond : Condition.t;
}

type cond = { c_owner : t; c_cond : Condition.t }

exception Rank_violation of string

let () =
  Printexc.register_printer (function
    | Rank_violation m -> Some (Printf.sprintf "Locked.Rank_violation: %s" m)
    | _ -> None)

(* ---------------- the runtime checker ---------------- *)

let checking_flag =
  Atomic.make
    (match Sys.getenv_opt "ORB_LOCK_CHECK" with
    | Some ("1" | "true" | "yes") -> true
    | _ -> false)

let set_checking b = Atomic.set checking_flag b
let checking () = Atomic.get checking_flag

(* Internal bookkeeping state. These are deliberately raw primitives —
   the checker cannot be built on top of itself — and this module is
   the one place C403/C407 exempts.

   Held-rank stacks are keyed by (domain, thread), not by thread id
   alone: each domain runs its own threads library instance, so a
   worker domain's threads can report ids that collide with the main
   domain's readers. Under a thread-only key two innocent threads on
   different domains would share one stack and the checker would
   report phantom inversions. *)
let reg_mutex = Mutex.create ()
let held : (int * int, (int * string) list) Hashtbl.t = Hashtbl.create 64
let violation_log : string list ref = ref []

let violations () = Mutex.protect reg_mutex (fun () -> !violation_log)
let reset_violations () =
  Mutex.protect reg_mutex (fun () -> violation_log := [])

let domain_id () = (Domain.self () :> int)
let self_id () = (domain_id (), Thread.id (Thread.self ()))

let stack_of id =
  Mutex.protect reg_mutex (fun () ->
      Option.value (Hashtbl.find_opt held id) ~default:[])

let set_stack id st =
  Mutex.protect reg_mutex (fun () ->
      if st = [] then Hashtbl.remove held id else Hashtbl.replace held id st)

let record_violation msg =
  Mutex.protect reg_mutex (fun () ->
      violation_log := msg :: !violation_log);
  raise (Rank_violation msg)

(* Called before blocking on [l.l_mutex]: the would-be acquisition must
   sit strictly below the newest lock this thread already holds. *)
let check_push l =
  let ((d, th) as id) = self_id () in
  let st = stack_of id in
  (match st with
  | (top_rank, top_name) :: _ when l.l_rank >= top_rank ->
      record_violation
        (Printf.sprintf
           "domain %d thread %d acquiring %S (rank %d) while holding %S \
            (rank %d): acquisition order must strictly descend ranks"
           d th l.l_name l.l_rank top_name top_rank)
  | _ -> ());
  set_stack id ((l.l_rank, l.l_name) :: st)

let check_pop l =
  let id = self_id () in
  match stack_of id with
  | (r, n) :: rest when r = l.l_rank && n = l.l_name -> set_stack id rest
  | st ->
      (* Release out of acquisition order (or stack lost to a checking
         toggle mid-hold): drop the first matching entry, quietly. *)
      let rec drop = function
        | [] -> []
        | (r, n) :: rest when r = l.l_rank && n = l.l_name -> rest
        | e :: rest -> e :: drop rest
      in
      set_stack id (drop st)

(* Waiting on a condition releases its lock; the lock must be the
   newest one held (waiting with a *nested* inner lock still held
   would block the whole lattice below us). *)
let check_wait l what =
  let ((d, th) as id) = self_id () in
  match stack_of id with
  | (r, n) :: _ when r = l.l_rank && n = l.l_name -> ()
  | (_, top_name) :: _ ->
      record_violation
        (Printf.sprintf
           "domain %d thread %d waiting on %s of %S while %S is the newest \
            held lock"
           d th what l.l_name top_name)
  | [] ->
      record_violation
        (Printf.sprintf
           "domain %d thread %d waiting on %s of %S without holding it" d th
           what l.l_name)

(* ---------------- the lock itself ---------------- *)

let create ~name ~rank =
  { l_name = name; l_rank = rank; l_mutex = Mutex.create ();
    l_cond = Condition.create () }

let name l = l.l_name
let rank l = l.l_rank

let with_lock l f =
  if Atomic.get checking_flag then begin
    check_push l;
    match
      Mutex.lock l.l_mutex;
      Fun.protect ~finally:(fun () -> Mutex.unlock l.l_mutex) f
    with
    | v -> check_pop l; v
    | exception e -> check_pop l; raise e
  end
  else begin
    Mutex.lock l.l_mutex;
    Fun.protect ~finally:(fun () -> Mutex.unlock l.l_mutex) f
  end

let wait l =
  if Atomic.get checking_flag then check_wait l "intrinsic condition";
  Condition.wait l.l_cond l.l_mutex

let signal l = Condition.signal l.l_cond
let broadcast l = Condition.broadcast l.l_cond

let new_cond l = { c_owner = l; c_cond = Condition.create () }

let wait_c c =
  if Atomic.get checking_flag then check_wait c.c_owner "condition";
  Condition.wait c.c_cond c.c_owner.l_mutex

let signal_c c = Condition.signal c.c_cond
let broadcast_c c = Condition.broadcast c.c_cond

(* ---------------- threads and domains ---------------- *)

let spawn _name f =
  Thread.create
    (fun () ->
      (try f () with _ -> ());
      if Atomic.get checking_flag then set_stack (self_id ()) [])
    ()

let spawn_domain _name f =
  Domain.spawn (fun () ->
      (try f () with _ -> ());
      (* The checker's stack entry for this (domain, thread) key would
         otherwise outlive the domain; domain ids are recycled, so a
         stale entry could frame an unrelated future domain. *)
      if Atomic.get checking_flag then set_stack (self_id ()) [])

(* ---------------- domain-local storage ---------------- *)

(* The sanctioned Domain.DLS access point (raw Domain.DLS outside this
   module is a C407): per-domain state such as the trace-id RNG lives
   behind these, so the analyzer has one place to trust and callers
   never touch split-orphan DLS keys directly. *)

type 'a domain_local = 'a Domain.DLS.key

let new_domain_local init = Domain.DLS.new_key init
let domain_local_get k = Domain.DLS.get k
