(** A persistent Interface Repository.

    Section 5 compares the two-stage compiler with OmniBroker's own: its
    parser "stores an abstract representation of the IDL source in a
    possibly persistent global Interface Repository (IR) in support of a
    distributed development environment", and the paper suggests the
    template code-generator "would integrate well ... the IR could [be]
    modified to store the EST instead of the parse tree". This module is
    exactly that integration: a directory of serialized ESTs, keyed by
    compilation unit, that stage 2 can generate from without re-parsing
    any IDL (see [idlc --ir]). *)

type t

val open_ : dir:string -> t
(** Open (creating the directory if needed). *)

val dir : t -> string

val store : t -> Est.Node.t -> string
(** Store an EST under its [fileBase] root property; returns the unit
    name. Overwrites any previous version.
    @raise Invalid_argument if the root lacks a [fileBase]. *)

val load : t -> string -> Est.Node.t option
(** Load a unit's EST by name. *)

val units : t -> string list
(** Stored unit names, sorted. *)

val remove : t -> string -> unit

val find_interface : t -> repo_id:string -> (string * Est.Node.t) option
(** Search every stored unit for an interface node with the given
    repository ID; returns (unit name, interface node). This is the
    query a distributed development environment runs ("details of each
    required IDL interface", Section 5). *)
