type result = { files : (string * string) list; stdout : string }

let base_of_filename filename =
  let base = Filename.basename filename in
  match Filename.chop_suffix_opt ~suffix:".idl" base with
  | Some b -> b
  | None -> ( match base with "<string>" | "" -> "out" | b -> b)

let est_of_string ?(warn = fun (_ : Idl.Diag.t) -> ()) ?(filename = "<string>")
    ?file_base src =
  let ast = Idl.Parser.parse_string ~filename src in
  let sem = Est.Resolve.spec ast in
  (* Resolver warnings (W107 ...) accumulate newest-first; surface them in
     source order. *)
  List.iter warn (List.rev sem.Est.Sem.warnings);
  let root = Est.Build.of_spec sem in
  let file_base =
    match file_base with Some b -> b | None -> base_of_filename filename
  in
  Est.Node.add_prop root "fileBase" file_base;
  Est.Node.add_prop root "fileName" filename;
  root

let est_of_file ?warn path =
  let ic = open_in_bin path in
  let src =
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  est_of_string ?warn ~filename:path src

let generate ?(maps = Template.Maps.empty) ~templates root =
  let outputs =
    List.map
      (fun (name, src) ->
        let tmpl = Template.Parse.parse ~name src in
        Template.Eval.run ~maps tmpl root)
      templates
  in
  (* Merge: concatenate stdout; append same-named files in order. *)
  let stdout = String.concat "" (List.map (fun o -> o.Template.Eval.stdout) outputs) in
  let files = Hashtbl.create 8 in
  let order = ref [] in
  List.iter
    (fun o ->
      List.iter
        (fun (name, content) ->
          match Hashtbl.find_opt files name with
          | Some prev -> Hashtbl.replace files name (prev ^ content)
          | None ->
              Hashtbl.replace files name content;
              order := name :: !order)
        o.Template.Eval.files)
    outputs;
  {
    files = List.rev_map (fun name -> (name, Hashtbl.find files name)) !order;
    stdout;
  }

let compile_string ?warn ?filename ?file_base ~mapping src =
  let root = est_of_string ?warn ?filename ?file_base src in
  generate ~maps:mapping.Mappings.Mapping.maps
    ~templates:mapping.Mappings.Mapping.templates root

let compile_file ?warn ~mapping path =
  let root = est_of_file ?warn path in
  generate ~maps:mapping.Mappings.Mapping.maps
    ~templates:mapping.Mappings.Mapping.templates root

let rec mkdir_p dir =
  if dir <> "" && dir <> "/" && dir <> "." && not (Sys.file_exists dir) then (
    mkdir_p (Filename.dirname dir);
    try Sys.mkdir dir 0o755 with Sys_error _ -> ())

let write_result ~dir result =
  mkdir_p dir;
  List.map
    (fun (name, content) ->
      let path = Filename.concat dir name in
      mkdir_p (Filename.dirname path);
      let oc = open_out_bin path in
      Fun.protect
        ~finally:(fun () -> close_out_noerr oc)
        (fun () -> output_string oc content);
      path)
    result.files
