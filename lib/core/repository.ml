type t = { dir : string }

let extension = ".est"

let rec mkdir_p dir =
  if dir <> "" && dir <> "/" && dir <> "." && not (Sys.file_exists dir) then (
    mkdir_p (Filename.dirname dir);
    try Sys.mkdir dir 0o755 with Sys_error _ -> ())

let open_ ~dir =
  mkdir_p dir;
  { dir }

let dir t = t.dir
let path t name = Filename.concat t.dir (name ^ extension)

let store t est =
  match Est.Node.prop est "fileBase" with
  | None | Some "" ->
      invalid_arg "Repository.store: EST root has no fileBase property"
  | Some name ->
      let oc = open_out_bin (path t name) in
      Fun.protect
        ~finally:(fun () -> close_out_noerr oc)
        (fun () -> output_string oc (Est.Dump.to_text est));
      name

let load t name =
  let file = path t name in
  if not (Sys.file_exists file) then None
  else
    let ic = open_in_bin file in
    let text =
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    Some (Est.Dump.of_text text)

let units t =
  Sys.readdir t.dir |> Array.to_list
  |> List.filter_map (fun f -> Filename.chop_suffix_opt ~suffix:extension f)
  |> List.sort compare

let remove t name =
  let file = path t name in
  if Sys.file_exists file then Sys.remove file

let find_interface t ~repo_id =
  let matches est =
    List.find_opt
      (fun node -> Est.Node.prop node "repoId" = Some repo_id)
      (Est.Node.group est "interfaceList")
  in
  List.find_map
    (fun name ->
      match load t name with
      | None -> None
      | Some est -> Option.map (fun iface -> (name, iface)) (matches est))
    (units t)
