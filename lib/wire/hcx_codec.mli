(** HCX ("heidi-compact") — compact binary codec: varint integers,
    length-prefixed strings, no alignment padding, explicit leading
    version byte. See the "Wire protocols" section of DESIGN.md for the
    full format table.

    Integers use LEB128 varints (signed types zigzag-mapped first), so
    small values — the overwhelming majority of ids, lengths and enum
    tags — cost one byte. Floats are fixed-width little-endian. Because
    nothing is aligned, a decoder can start at any offset of a larger
    buffer: {!make_decoder_view} decodes a sub-view without copying the
    framed bytes out first. *)

val version : int
(** Wire-format version this implementation encodes (currently 1); the
    first byte of every HCX payload. A decoder rejects any other value
    with {!Codec.Type_error} before interpreting the rest of the frame. *)

val codec : Codec.t
(** Codec name ["hcx"]. *)

val make_decoder_view :
  Codec.limits -> string -> off:int -> len:int -> Codec.decoder
(** [make_decoder_view limits buf ~off ~len] decodes the HCX payload
    occupying [buf.[off .. off+len-1]] in place — the zero-copy receive
    path; no [String.sub] of the frame is taken. Raises
    [Invalid_argument] if the range is out of bounds and
    {!Codec.Type_error} if the version byte is not {!version}. *)
