(* HCX ("heidi-compact") — the third wire encoding.

   Layout, in wire order:

     version   1 byte, currently 0x01; a decoder seeing any other value
               fails immediately, before touching the rest of the frame
     bool      1 byte, 0x00 / 0x01
     char      1 raw byte
     octet     1 raw byte
     ushort    unsigned LEB128 varint (1-3 bytes)
     ulong     unsigned LEB128 varint (1-5 bytes)
     short     zigzag + unsigned LEB128 varint
     long      zigzag + unsigned LEB128 varint
     ulonglong unsigned LEB128 varint (1-10 bytes)
     longlong  zigzag + unsigned LEB128 varint
     float     4 bytes, IEEE-754 single, little-endian, unaligned
     double    8 bytes, IEEE-754 double, little-endian, unaligned
     string    uvarint byte count, then the raw bytes (no terminator)
     len       uvarint element count
     begin/end byteless; nesting depth is tracked by the decoder against
               [Codec.limits.max_nesting_depth]

   Unlike CDR there is no alignment padding, so positions never depend
   on what came before — a decoder can start at any offset of a larger
   buffer, which is what {!decoder_view} does for the zero-copy receive
   path (the framing layer hands a sub-view of its read buffer instead
   of a [String.sub] copy).

   The encoder writes into a {!Buf} (bigarray-backed) so multi-megabyte
   payloads grow without the double-copy of [Stdlib.Buffer], and the
   completed frame can be exposed copy-free to the writev send path. *)

let version = 1

(* ---------------- varints ---------------- *)

let put_uvarint buf v =
  (* v >= 0 (callers range-check); 7 bits per byte, LSB group first. *)
  let v = ref v in
  while !v >= 0x80 do
    Buf.add_char buf (Char.unsafe_chr (!v land 0x7f lor 0x80));
    v := !v lsr 7
  done;
  Buf.add_char buf (Char.unsafe_chr !v)

let put_uvarint64 buf v =
  let v = ref v in
  while Int64.unsigned_compare !v 0x80L >= 0 do
    Buf.add_char buf
      (Char.unsafe_chr (Int64.to_int (Int64.logand !v 0x7fL) lor 0x80));
    v := Int64.shift_right_logical !v 7
  done;
  Buf.add_char buf (Char.unsafe_chr (Int64.to_int !v))

let zigzag v = (v lsl 1) lxor (v asr 62)
let unzigzag v = (v lsr 1) lxor (- (v land 1))
let zigzag64 v = Int64.logxor (Int64.shift_left v 1) (Int64.shift_right v 63)

let unzigzag64 v =
  Int64.logxor (Int64.shift_right_logical v 1) (Int64.neg (Int64.logand v 1L))

(* ---------------- encoding ---------------- *)

let make_encoder () : Codec.encoder =
  let buf = Buf.create ~initial:128 () in
  Buf.add_char buf (Char.chr version);
  let put_ulong v =
    put_uvarint buf (Codec.range_check "unsigned long" ~min:0 ~max:4294967295 v)
  in
  let add32_le v =
    let v = Int32.to_int v in
    Buf.add_char buf (Char.unsafe_chr (v land 0xff));
    Buf.add_char buf (Char.unsafe_chr ((v lsr 8) land 0xff));
    Buf.add_char buf (Char.unsafe_chr ((v lsr 16) land 0xff));
    Buf.add_char buf (Char.unsafe_chr ((v lsr 24) land 0xff))
  in
  let add64_le v =
    for i = 0 to 7 do
      Buf.add_char buf
        (Char.unsafe_chr
           (Int64.to_int (Int64.shift_right_logical v (8 * i)) land 0xff))
    done
  in
  {
    put_bool = (fun b -> Buf.add_char buf (if b then '\001' else '\000'));
    put_char = (fun c -> Buf.add_char buf c);
    put_octet =
      (fun v ->
        Buf.add_char buf (Char.chr (Codec.range_check "octet" ~min:0 ~max:255 v)));
    put_short =
      (fun v ->
        put_uvarint buf
          (zigzag (Codec.range_check "short" ~min:(-32768) ~max:32767 v)));
    put_ushort =
      (fun v ->
        put_uvarint buf
          (Codec.range_check "unsigned short" ~min:0 ~max:65535 v));
    put_long =
      (fun v ->
        put_uvarint buf
          (zigzag (Codec.range_check "long" ~min:(-2147483648) ~max:2147483647 v)));
    put_ulong;
    put_longlong = (fun v -> put_uvarint64 buf (zigzag64 v));
    put_ulonglong = (fun v -> put_uvarint64 buf v);
    put_float = (fun v -> add32_le (Int32.bits_of_float v));
    put_double = (fun v -> add64_le (Int64.bits_of_float v));
    put_string =
      (fun s ->
        put_uvarint buf (String.length s);
        Buf.add_string buf s);
    put_begin = (fun () -> ());
    put_end = (fun () -> ());
    put_len = put_ulong;
    finish = (fun () -> Buf.contents buf);
  }

(* ---------------- decoding ---------------- *)

(* Decode over a sub-view [off, off+len) of [payload] — no copy of the
   framed bytes is taken; every read is positional. *)
let make_decoder_view (limits : Codec.limits) payload ~off ~len : Codec.decoder =
  if off < 0 || len < 0 || off + len > String.length payload then
    invalid_arg "Hcx_codec.make_decoder_view";
  let pos = ref off in
  let stop = off + len in
  let depth = ref 0 in
  let need n what =
    if !pos + n > stop then
      raise
        (Codec.Type_error
           (Printf.sprintf "truncated HCX payload: need %d bytes for %s at offset %d"
              n what (!pos - off)))
  in
  let byte what =
    need 1 what;
    let c = String.unsafe_get payload !pos in
    incr pos;
    c
  in
  let get_uvarint what =
    (* 63-bit cap: more than 9 groups (or set bits past bit 62) is not a
       value any encoder produces — reject the frame rather than wrap. *)
    let v = ref 0 and shift = ref 0 and continue = ref true in
    while !continue do
      let b = Char.code (byte what) in
      if !shift > 56 && b lsr (63 - !shift) > 0 then
        raise
          (Codec.Type_error
             (Printf.sprintf "over-long varint for %s at offset %d" what
                (!pos - off)));
      v := !v lor ((b land 0x7f) lsl !shift);
      shift := !shift + 7;
      continue := b land 0x80 <> 0
    done;
    !v
  in
  let get_uvarint64 what =
    let v = ref 0L and shift = ref 0 and continue = ref true in
    while !continue do
      let b = Char.code (byte what) in
      if !shift = 63 && b > 1 then
        raise
          (Codec.Type_error
             (Printf.sprintf "over-long varint for %s at offset %d" what
                (!pos - off)))
      else if !shift > 63 then
        raise
          (Codec.Type_error
             (Printf.sprintf "over-long varint for %s at offset %d" what
                (!pos - off)));
      v := Int64.logor !v (Int64.shift_left (Int64.of_int (b land 0x7f)) !shift);
      shift := !shift + 7;
      continue := b land 0x80 <> 0
    done;
    !v
  in
  let get32_le what =
    need 4 what;
    let v = ref 0l in
    for i = 3 downto 0 do
      v :=
        Int32.logor
          (Int32.shift_left !v 8)
          (Int32.of_int (Char.code (String.unsafe_get payload (!pos + i))))
    done;
    pos := !pos + 4;
    !v
  in
  let get64_le what =
    need 8 what;
    let v = ref 0L in
    for i = 7 downto 0 do
      v :=
        Int64.logor
          (Int64.shift_left !v 8)
          (Int64.of_int (Char.code (String.unsafe_get payload (!pos + i))))
    done;
    pos := !pos + 8;
    !v
  in
  let ranged what max_v =
    let v = get_uvarint what in
    if v > max_v then
      raise
        (Codec.Type_error
           (Printf.sprintf "%s value %d out of range (max %d)" what v max_v));
    v
  in
  let get_ulong () = ranged "unsigned long" 4294967295 in
  let get_string () =
    let n = get_uvarint "string length" in
    if n > limits.Codec.max_string_bytes then
      raise
        (Codec.Type_error
           (Printf.sprintf "string of %d bytes exceeds limit %d" n
              limits.Codec.max_string_bytes));
    need n "string body";
    let s = String.sub payload !pos n in
    pos := !pos + n;
    s
  in
  (* The version byte is the very first check: a frame from a future
     encoder fails here, before any field is interpreted. *)
  (let v = Char.code (byte "version byte") in
   if v <> version then
     raise
       (Codec.Type_error
          (Printf.sprintf "unsupported HCX version %d (this decoder speaks %d)" v
             version)));
  {
    get_bool =
      (fun () ->
        match byte "boolean" with
        | '\000' -> false
        | '\001' -> true
        | c ->
            raise
              (Codec.Type_error
                 (Printf.sprintf "invalid boolean byte 0x%02x" (Char.code c))));
    get_char = (fun () -> byte "char");
    get_octet = (fun () -> Char.code (byte "octet"));
    get_short =
      (fun () ->
        let v = unzigzag (ranged "short" 131071) in
        if v < -32768 || v > 32767 then
          raise (Codec.Type_error (Printf.sprintf "short value %d out of range" v));
        v);
    get_ushort = (fun () -> ranged "unsigned short" 65535);
    get_long =
      (fun () ->
        let v = unzigzag (ranged "long" 8589934591) in
        if v < -2147483648 || v > 2147483647 then
          raise (Codec.Type_error (Printf.sprintf "long value %d out of range" v));
        v);
    get_ulong;
    get_longlong = (fun () -> unzigzag64 (get_uvarint64 "long long"));
    get_ulonglong = (fun () -> get_uvarint64 "unsigned long long");
    get_float = (fun () -> Int32.float_of_bits (get32_le "float"));
    get_double = (fun () -> Int64.float_of_bits (get64_le "double"));
    get_string;
    get_begin =
      (fun () ->
        incr depth;
        if !depth > limits.Codec.max_nesting_depth then
          raise
            (Codec.Type_error
               (Printf.sprintf "nesting depth %d exceeds limit %d" !depth
                  limits.Codec.max_nesting_depth)));
    get_end = (fun () -> if !depth > 0 then decr depth);
    get_len =
      (fun () ->
        let n = get_ulong () in
        if n > limits.Codec.max_sequence_length then
          raise
            (Codec.Type_error
               (Printf.sprintf "sequence length %d exceeds limit %d" n
                  limits.Codec.max_sequence_length));
        n);
    at_end = (fun () -> !pos >= stop);
  }

let make_decoder_limited limits payload =
  make_decoder_view limits payload ~off:0 ~len:(String.length payload)

let make_decoder payload = make_decoder_limited Codec.default_limits payload

let codec : Codec.t =
  {
    Codec.name = "hcx";
    encoder = make_encoder;
    decoder = make_decoder;
    decoder_limited = make_decoder_limited;
  }
