type byte_order = Big_endian | Little_endian

(* ---------------- encoding ---------------- *)

let make_encoder order () : Codec.encoder =
  let buf = Buffer.create 128 in
  let align n =
    let pos = Buffer.length buf in
    let pad = (n - (pos mod n)) mod n in
    for _ = 1 to pad do
      Buffer.add_char buf '\000'
    done
  in
  let add16 v =
    match order with
    | Big_endian -> Buffer.add_uint16_be buf (v land 0xffff)
    | Little_endian -> Buffer.add_uint16_le buf (v land 0xffff)
  in
  let add32 v =
    match order with
    | Big_endian -> Buffer.add_int32_be buf v
    | Little_endian -> Buffer.add_int32_le buf v
  in
  let add64 v =
    match order with
    | Big_endian -> Buffer.add_int64_be buf v
    | Little_endian -> Buffer.add_int64_le buf v
  in
  let put_ulong v =
    let v = Codec.range_check "unsigned long" ~min:0 ~max:4294967295 v in
    align 4;
    add32 (Int32.of_int v)
  in
  let put_string s =
    (* ulong length including NUL, then bytes, then NUL. *)
    put_ulong (String.length s + 1);
    Buffer.add_string buf s;
    Buffer.add_char buf '\000'
  in
  {
    put_bool = (fun b -> Buffer.add_char buf (if b then '\001' else '\000'));
    put_char = (fun c -> Buffer.add_char buf c);
    put_octet =
      (fun v ->
        Buffer.add_char buf (Char.chr (Codec.range_check "octet" ~min:0 ~max:255 v)));
    put_short =
      (fun v ->
        let v = Codec.range_check "short" ~min:(-32768) ~max:32767 v in
        align 2;
        add16 v);
    put_ushort =
      (fun v ->
        let v = Codec.range_check "unsigned short" ~min:0 ~max:65535 v in
        align 2;
        add16 v);
    put_long =
      (fun v ->
        let v = Codec.range_check "long" ~min:(-2147483648) ~max:2147483647 v in
        align 4;
        add32 (Int32.of_int v));
    put_ulong;
    put_longlong =
      (fun v ->
        align 8;
        add64 v);
    put_ulonglong =
      (fun v ->
        align 8;
        add64 v);
    put_float =
      (fun v ->
        align 4;
        add32 (Int32.bits_of_float v));
    put_double =
      (fun v ->
        align 8;
        add64 (Int64.bits_of_float v));
    put_string;
    put_begin = (fun () -> ());
    put_end = (fun () -> ());
    put_len = put_ulong;
    finish = (fun () -> Buffer.contents buf);
  }

(* ---------------- decoding ---------------- *)

let make_decoder_limited order (limits : Codec.limits) payload : Codec.decoder =
  let pos = ref 0 in
  let depth = ref 0 in
  let len = String.length payload in
  let need n what =
    if !pos + n > len then
      raise
        (Codec.Type_error
           (Printf.sprintf "truncated payload: need %d bytes for %s at offset %d"
              n what !pos))
  in
  let align n =
    let pad = (n - (!pos mod n)) mod n in
    pos := !pos + pad
  in
  let byte what =
    need 1 what;
    let c = payload.[!pos] in
    incr pos;
    c
  in
  let get16 what =
    align 2;
    need 2 what;
    let v =
      match order with
      | Big_endian -> String.get_uint16_be payload !pos
      | Little_endian -> String.get_uint16_le payload !pos
    in
    pos := !pos + 2;
    v
  in
  let get32 what =
    align 4;
    need 4 what;
    let v =
      match order with
      | Big_endian -> String.get_int32_be payload !pos
      | Little_endian -> String.get_int32_le payload !pos
    in
    pos := !pos + 4;
    v
  in
  let get64 what =
    align 8;
    need 8 what;
    let v =
      match order with
      | Big_endian -> String.get_int64_be payload !pos
      | Little_endian -> String.get_int64_le payload !pos
    in
    pos := !pos + 8;
    v
  in
  let get_ulong () =
    let v = Int32.to_int (get32 "unsigned long") in
    if v < 0 then v + 0x1_0000_0000 else v
  in
  let get_string () =
    let n = get_ulong () in
    if n = 0 then
      raise (Codec.Type_error "malformed CDR string: zero length (must include NUL)");
    if n - 1 > limits.Codec.max_string_bytes then
      raise
        (Codec.Type_error
           (Printf.sprintf "string of %d bytes exceeds limit %d" (n - 1)
              limits.Codec.max_string_bytes));
    need n "string body";
    let s = String.sub payload !pos (n - 1) in
    if payload.[!pos + n - 1] <> '\000' then
      raise (Codec.Type_error "malformed CDR string: missing NUL terminator");
    pos := !pos + n;
    s
  in
  {
    get_bool =
      (fun () ->
        match byte "boolean" with
        | '\000' -> false
        | '\001' -> true
        | c ->
            raise
              (Codec.Type_error
                 (Printf.sprintf "invalid boolean byte 0x%02x" (Char.code c))));
    get_char = (fun () -> byte "char");
    get_octet = (fun () -> Char.code (byte "octet"));
    get_short =
      (fun () ->
        let v = get16 "short" in
        if v >= 32768 then v - 65536 else v);
    get_ushort = (fun () -> get16 "unsigned short");
    get_long = (fun () -> Int32.to_int (get32 "long"));
    get_ulong;
    get_longlong = (fun () -> get64 "long long");
    get_ulonglong = (fun () -> get64 "unsigned long long");
    get_float = (fun () -> Int32.float_of_bits (get32 "float"));
    get_double = (fun () -> Int64.float_of_bits (get64 "double"));
    get_string;
    get_begin =
      (fun () ->
        incr depth;
        if !depth > limits.Codec.max_nesting_depth then
          raise
            (Codec.Type_error
               (Printf.sprintf "nesting depth %d exceeds limit %d" !depth
                  limits.Codec.max_nesting_depth)));
    get_end = (fun () -> if !depth > 0 then decr depth);
    get_len =
      (* CDR has no structural tokens, so a hostile length claim is the
         sole unbounded-allocation vector: cap it before any consumer
         sizes storage off it. *)
      (fun () ->
        let n = get_ulong () in
        if n > limits.Codec.max_sequence_length then
          raise
            (Codec.Type_error
               (Printf.sprintf "sequence length %d exceeds limit %d" n
                  limits.Codec.max_sequence_length));
        n);
    at_end = (fun () -> !pos >= len);
  }

let make_decoder order payload =
  make_decoder_limited order Codec.default_limits payload

let codec order : Codec.t =
  {
    Codec.name = (match order with Big_endian -> "cdr-be" | Little_endian -> "cdr-le");
    encoder = make_encoder order;
    decoder = make_decoder order;
    decoder_limited = make_decoder_limited order;
  }
