(** Pluggable marshaling codecs.

    A codec turns a sequence of typed primitive values into a payload
    string and back. The HeidiRMI text protocol ({!Text_codec}) and the
    CDR binary encoding ({!Cdr_codec}) both implement this interface;
    the {!Call} abstraction (paper Fig. 4) is built on top of it, so the
    on-the-wire protocol can be swapped without touching stubs or
    skeletons — the configurability argued for in Section 2.

    Integer widths: [short]/[ushort]/[long]/[ulong] use OCaml [int] with
    range checks on encode; [long long]/[unsigned long long] use [int64].
    [float] is encoded at 32-bit precision, [double] at 64-bit. *)

exception Type_error of string
(** Raised by decoders on type or format mismatches (the text codec tags
    every token with its type; CDR detects only truncation). *)

type encoder = {
  put_bool : bool -> unit;
  put_char : char -> unit;
  put_octet : int -> unit;
  put_short : int -> unit;
  put_ushort : int -> unit;
  put_long : int -> unit;
  put_ulong : int -> unit;
  put_longlong : int64 -> unit;
  put_ulonglong : int64 -> unit;
  put_float : float -> unit;
  put_double : float -> unit;
  put_string : string -> unit;
  put_begin : unit -> unit;
      (** Open a structuring group (paper: the [Call]'s [begin] function,
          used to delimit structs and sequences). *)
  put_end : unit -> unit;
  put_len : int -> unit;  (** Sequence length prefix. *)
  finish : unit -> string;  (** The completed payload. *)
}

type decoder = {
  get_bool : unit -> bool;
  get_char : unit -> char;
  get_octet : unit -> int;
  get_short : unit -> int;
  get_ushort : unit -> int;
  get_long : unit -> int;
  get_ulong : unit -> int;
  get_longlong : unit -> int64;
  get_ulonglong : unit -> int64;
  get_float : unit -> float;
  get_double : unit -> float;
  get_string : unit -> string;
  get_begin : unit -> unit;
  get_end : unit -> unit;
  get_len : unit -> int;
  at_end : unit -> bool;  (** True when the payload is exhausted. *)
}

(** {2 Decode-side resource limits}

    Decoders must not trust wire-supplied counts: a hostile
    [#4294967295] length prefix must fail with {!Type_error} at the
    point it is decoded, before any consumer allocates storage for the
    claimed elements. *)
type limits = {
  max_frame_bytes : int;
      (** Enforced by the framing layer ([Orb.Communicator]); carried
          here so one record describes the whole decode budget. *)
  max_string_bytes : int;  (** Longest decodable string, in bytes. *)
  max_sequence_length : int;  (** Largest [get_len] count. *)
  max_nesting_depth : int;  (** Deepest [get_begin] nesting. *)
}

val default_limits : limits
(** Generous but finite: 16 MiB frames, 4 MiB strings, 1M-element
    sequences, depth 128 — far beyond anything the runtime's own
    protocols produce, small enough that a hostile peer cannot cause
    unbounded allocation. *)

val unlimited : limits
(** Every field [max_int] — the pre-hardening behaviour, for tools that
    parse trusted local data. *)

type t = {
  name : string;  (** e.g. ["text"] or ["cdr-be"]. *)
  encoder : unit -> encoder;
  decoder : string -> decoder;
      (** Equivalent to [decoder_limited default_limits]. *)
  decoder_limited : limits -> string -> decoder;
}

val range_check : string -> min:int -> max:int -> int -> int
(** [range_check what ~min ~max v] returns [v] or raises {!Type_error}
    naming [what]. Shared by codec implementations. *)
