(** Generic wire values: a typed tree of marshalable primitives.

    CDR is positional — a decoder must already know the type layout — so
    decoding is schema-guided: {!decode_like} reads a value of the same
    shape as its witness argument. Used by the property tests (round-trip
    through every codec) and the marshaling benchmarks (§E2), and by the
    [any]-free parts of the runtime that need to copy values between
    codecs. *)

type t =
  | Bool of bool
  | Char of char
  | Octet of int
  | Short of int
  | Ushort of int
  | Long of int
  | Ulong of int
  | Longlong of int64
  | Ulonglong of int64
  | Float of float  (** 32-bit precision on the wire. *)
  | Double of float
  | String of string
  | Seq of t list  (** Length-prefixed sequence. *)
  | Group of t list  (** begin/end structuring (struct bodies). *)

val encode : Codec.encoder -> t -> unit

val decode_like : Codec.decoder -> t -> t
(** [decode_like dec witness] decodes a value with the same shape as
    [witness] (for [Seq], the witness's first element — or the empty
    sequence — defines the element shape).
    @raise Codec.Type_error on mismatch or truncation. *)

val equal : t -> t -> bool
(** Structural equality with float-bits comparison; [Float] values are
    compared after rounding through 32-bit precision, matching what a
    binary codec preserves. *)

val pp : Format.formatter -> t -> unit
