(** The HeidiRMI text codec (Section 3.1): values as space-separated ASCII
    tokens on a single line.

    Every token carries a one-character type sigil, which gives the text
    protocol full type checking on decode — and keeps payloads legible
    enough for the paper's "telnet into the bootstrap port" debugging
    scenario:

    {v
    bT bF          booleans          c65        char (code)
    o255           octet             h-3 H9     short / ushort
    l42 L7         long / ulong      q9 Q9      long long / unsigned
    e1.5 d2.25     float / double    #3         sequence length
    s"hi there"    string (escaped)  { }        group begin / end
    v}

    Payloads never contain a newline — strings escape [\n] — so a whole
    request fits the protocol's newline-terminated framing. *)

val codec : Codec.t
(** Codec named ["text"]. *)

val escape : string -> string
(** Escape a string for embedding in a token (backslash, double quote,
    newlines, CR). *)

val unescape : string -> string
(** Inverse of {!escape}.
    @raise Codec.Type_error on malformed escapes. *)
