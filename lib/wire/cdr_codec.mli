(** CDR-style binary codec: the "general-purpose standard protocol"
    counterpart to the HeidiRMI text codec, used by the GIOP-like binary
    ORB protocol ({!Giop}).

    Faithful to CORBA CDR in the properties that matter for the paper's
    protocol-cost comparison (bench §E2):
    - primitives are aligned to their natural boundary relative to the
      start of the payload (2 for short, 4 for long/float, 8 for
      long long/double);
    - both byte orders are supported; the decoder is told which to use
      (GIOP carries the flag in its message header);
    - strings are encoded as a ulong length including the terminating
      NUL, followed by the bytes and the NUL;
    - booleans/chars/octets are single bytes; [begin]/[end] structuring
      is a no-op (CDR is positional and untyped on the wire). *)

type byte_order = Big_endian | Little_endian

val codec : byte_order -> Codec.t
(** Codec named ["cdr-be"] or ["cdr-le"]. *)
