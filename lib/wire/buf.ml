(* Growable byte buffer backed by a Bigarray.

   [Buffer.t] from the stdlib copies its contents on every [grow] and again
   on [contents]; for multi-megabyte payloads that is two full copies per
   encode.  This buffer keeps the bytes in a [Bigarray.Array1] (off the
   OCaml heap, never moved by the GC) and hands the final frame out either
   as a string ([contents], one copy, for small frames) or as the raw
   bigarray plus length ([unsafe_raw], zero copies, for the writev path). *)

type bigstring =
  (char, Bigarray.int8_unsigned_elt, Bigarray.c_layout) Bigarray.Array1.t

type t = { mutable data : bigstring; mutable len : int }

let create ?(initial = 256) () =
  let initial = max 16 initial in
  { data = Bigarray.Array1.create Bigarray.char Bigarray.c_layout initial;
    len = 0 }

let length t = t.len

let clear t = t.len <- 0

let ensure t extra =
  let needed = t.len + extra in
  let cap = Bigarray.Array1.dim t.data in
  if needed > cap then begin
    let cap' = ref (max 16 cap) in
    while !cap' < needed do cap' := !cap' * 2 done;
    let data' = Bigarray.Array1.create Bigarray.char Bigarray.c_layout !cap' in
    Bigarray.Array1.blit
      (Bigarray.Array1.sub t.data 0 t.len)
      (Bigarray.Array1.sub data' 0 t.len);
    t.data <- data'
  end

let add_char t c =
  ensure t 1;
  Bigarray.Array1.unsafe_set t.data t.len c;
  t.len <- t.len + 1

let add_string t s =
  let n = String.length s in
  ensure t n;
  let data = t.data and base = t.len in
  for i = 0 to n - 1 do
    Bigarray.Array1.unsafe_set data (base + i) (String.unsafe_get s i)
  done;
  t.len <- base + n

let add_substring t s pos n =
  if pos < 0 || n < 0 || pos + n > String.length s then
    invalid_arg "Buf.add_substring";
  ensure t n;
  let data = t.data and base = t.len in
  for i = 0 to n - 1 do
    Bigarray.Array1.unsafe_set data (base + i) (String.unsafe_get s (pos + i))
  done;
  t.len <- base + n

(* [String.init] calls its closure once per byte; for multi-megabyte
   frames that is the whole cost of [contents].  A direct loop over a
   [Bytes.t] keeps the copy branch-free. *)
let contents t =
  let data = t.data and n = t.len in
  let b = Bytes.create n in
  for i = 0 to n - 1 do
    Bytes.unsafe_set b i (Bigarray.Array1.unsafe_get data i)
  done;
  Bytes.unsafe_to_string b

let unsafe_raw t = (t.data, t.len)
