let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let unescape s =
  let buf = Buffer.create (String.length s) in
  let len = String.length s in
  let i = ref 0 in
  while !i < len do
    (match s.[!i] with
    | '\\' ->
        if !i + 1 >= len then raise (Codec.Type_error "truncated escape in string");
        (match s.[!i + 1] with
        | '\\' -> Buffer.add_char buf '\\'
        | '"' -> Buffer.add_char buf '"'
        | 'n' -> Buffer.add_char buf '\n'
        | 'r' -> Buffer.add_char buf '\r'
        | c -> raise (Codec.Type_error (Printf.sprintf "unknown escape '\\%c'" c)));
        incr i
    | c -> Buffer.add_char buf c);
    incr i
  done;
  Buffer.contents buf

(* ---------------- encoding ---------------- *)

(* The encoder writes tokens straight into the output buffer: a sigil
   char plus [string_of_int]/[Int64.to_string] digits, with strings
   escaped directly into the buffer. The per-token [Printf.sprintf] this
   replaces dominated encode profiles — format-string interpretation and
   an intermediate string allocation per primitive put. Floats keep the
   lossless [%h] format, which has no cheap hand-rolled equivalent. *)
let make_encoder () : Codec.encoder =
  let buf = Buffer.create 128 in
  let sep () = if Buffer.length buf > 0 then Buffer.add_char buf ' ' in
  let token s =
    sep ();
    Buffer.add_string buf s
  in
  let sigil_int sigil v =
    sep ();
    Buffer.add_char buf sigil;
    Buffer.add_string buf (string_of_int v)
  in
  let int_token sigil what ~min ~max v =
    sigil_int sigil (Codec.range_check what ~min ~max v)
  in
  let sigil_int64 sigil v =
    sep ();
    Buffer.add_char buf sigil;
    Buffer.add_string buf (Int64.to_string v)
  in
  let escape_into s =
    String.iter
      (fun c ->
        match c with
        | '\\' -> Buffer.add_string buf "\\\\"
        | '"' -> Buffer.add_string buf "\\\""
        | '\n' -> Buffer.add_string buf "\\n"
        | '\r' -> Buffer.add_string buf "\\r"
        | c -> Buffer.add_char buf c)
      s
  in
  {
    put_bool = (fun b -> token (if b then "bT" else "bF"));
    put_char = (fun c -> sigil_int 'c' (Char.code c));
    put_octet = (fun v -> int_token 'o' "octet" ~min:0 ~max:255 v);
    put_short = (fun v -> int_token 'h' "short" ~min:(-32768) ~max:32767 v);
    put_ushort = (fun v -> int_token 'H' "unsigned short" ~min:0 ~max:65535 v);
    put_long =
      (fun v -> int_token 'l' "long" ~min:(-2147483648) ~max:2147483647 v);
    put_ulong = (fun v -> int_token 'L' "unsigned long" ~min:0 ~max:4294967295 v);
    put_longlong = (fun v -> sigil_int64 'q' v);
    (* Unsigned 64-bit values are transported as their signed bit pattern
       so the token re-parses with Int64.of_string. *)
    put_ulonglong = (fun v -> sigil_int64 'Q' v);
    put_float = (fun v -> token (Printf.sprintf "e%h" v));
    put_double = (fun v -> token (Printf.sprintf "d%h" v));
    put_string =
      (fun s ->
        sep ();
        Buffer.add_string buf "s\"";
        escape_into s;
        Buffer.add_char buf '"');
    put_begin = (fun () -> token "{");
    put_end = (fun () -> token "}");
    put_len =
      (fun v -> sigil_int '#' (Codec.range_check "length" ~min:0 ~max:max_int v));
    finish = (fun () -> Buffer.contents buf);
  }

(* ---------------- decoding ---------------- *)

(* Split the payload into tokens; quote-aware for string tokens. *)
let tokenize payload =
  let len = String.length payload in
  let toks = ref [] in
  let i = ref 0 in
  while !i < len do
    match payload.[!i] with
    | ' ' | '\t' -> incr i
    | 's' when !i + 1 < len && payload.[!i + 1] = '"' ->
        let start = !i in
        i := !i + 2;
        let rec scan () =
          if !i >= len then raise (Codec.Type_error "unterminated string token")
          else
            match payload.[!i] with
            | '"' -> incr i
            | '\\' ->
                i := !i + 2;
                scan ()
            | _ ->
                incr i;
                scan ()
        in
        scan ();
        toks := String.sub payload start (!i - start) :: !toks
    | _ ->
        let start = !i in
        while !i < len && payload.[!i] <> ' ' && payload.[!i] <> '\t' do
          incr i
        done;
        toks := String.sub payload start (!i - start) :: !toks
  done;
  List.rev !toks

let make_decoder_limited (limits : Codec.limits) payload : Codec.decoder =
  let toks = ref (tokenize payload) in
  let depth = ref 0 in
  let next what =
    match !toks with
    | [] -> raise (Codec.Type_error (Printf.sprintf "expected %s, found end of payload" what))
    | t :: rest ->
        toks := rest;
        t
  in
  let expect_sigil what sigil =
    let t = next what in
    if String.length t = 0 || t.[0] <> sigil then
      raise
        (Codec.Type_error (Printf.sprintf "expected %s, found token %S" what t));
    String.sub t 1 (String.length t - 1)
  in
  let int_of what s =
    match int_of_string_opt s with
    | Some v -> v
    | None -> raise (Codec.Type_error (Printf.sprintf "malformed %s token %S" what s))
  in
  let int64_of what s =
    match Int64.of_string_opt s with
    | Some v -> v
    | None -> raise (Codec.Type_error (Printf.sprintf "malformed %s token %S" what s))
  in
  let float_of what s =
    match float_of_string_opt s with
    | Some v -> v
    | None -> raise (Codec.Type_error (Printf.sprintf "malformed %s token %S" what s))
  in
  let get_int what sigil ~min ~max () =
    Codec.range_check what ~min ~max (int_of what (expect_sigil what sigil))
  in
  {
    get_bool =
      (fun () ->
        match next "boolean" with
        | "bT" -> true
        | "bF" -> false
        | t -> raise (Codec.Type_error (Printf.sprintf "expected boolean, found %S" t)));
    get_char =
      (fun () ->
        let code = int_of "char" (expect_sigil "char" 'c') in
        if code < 0 || code > 255 then
          raise (Codec.Type_error (Printf.sprintf "char code %d out of range" code));
        Char.chr code);
    get_octet = get_int "octet" 'o' ~min:0 ~max:255;
    get_short = get_int "short" 'h' ~min:(-32768) ~max:32767;
    get_ushort = get_int "unsigned short" 'H' ~min:0 ~max:65535;
    get_long = get_int "long" 'l' ~min:(-2147483648) ~max:2147483647;
    get_ulong = get_int "unsigned long" 'L' ~min:0 ~max:4294967295;
    get_longlong = (fun () -> int64_of "long long" (expect_sigil "long long" 'q'));
    get_ulonglong =
      (fun () -> int64_of "unsigned long long" (expect_sigil "unsigned long long" 'Q'));
    get_float = (fun () -> float_of "float" (expect_sigil "float" 'e'));
    get_double = (fun () -> float_of "double" (expect_sigil "double" 'd'));
    get_string =
      (fun () ->
        let t = next "string" in
        let len = String.length t in
        if len < 3 || t.[0] <> 's' || t.[1] <> '"' || t.[len - 1] <> '"' then
          raise (Codec.Type_error (Printf.sprintf "expected string, found %S" t));
        (* The escaped token is already in memory (bounded by the frame
           limit), so unescape first and limit-check the real length. *)
        let s = unescape (String.sub t 2 (len - 3)) in
        if String.length s > limits.Codec.max_string_bytes then
          raise
            (Codec.Type_error
               (Printf.sprintf "string of %d bytes exceeds limit %d"
                  (String.length s) limits.Codec.max_string_bytes));
        s);
    get_begin =
      (fun () ->
        match next "'{'" with
        | "{" ->
            incr depth;
            if !depth > limits.Codec.max_nesting_depth then
              raise
                (Codec.Type_error
                   (Printf.sprintf "nesting depth %d exceeds limit %d" !depth
                      limits.Codec.max_nesting_depth))
        | t -> raise (Codec.Type_error (Printf.sprintf "expected '{', found %S" t)));
    get_end =
      (fun () ->
        match next "'}'" with
        | "}" -> if !depth > 0 then decr depth
        | t -> raise (Codec.Type_error (Printf.sprintf "expected '}', found %S" t)));
    get_len =
      (* An untrusted length prefix: a hostile [#4294967295] must fail
         here, before any consumer allocates storage for the claim. *)
      get_int "length" '#' ~min:0 ~max:limits.Codec.max_sequence_length;
    at_end = (fun () -> !toks = []);
  }

let make_decoder payload = make_decoder_limited Codec.default_limits payload

let codec : Codec.t =
  {
    Codec.name = "text";
    encoder = make_encoder;
    decoder = make_decoder;
    decoder_limited = make_decoder_limited;
  }
