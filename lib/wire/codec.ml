exception Type_error of string

let () =
  Printexc.register_printer (function
    | Type_error m -> Some (Printf.sprintf "Wire.Codec.Type_error: %s" m)
    | _ -> None)

type encoder = {
  put_bool : bool -> unit;
  put_char : char -> unit;
  put_octet : int -> unit;
  put_short : int -> unit;
  put_ushort : int -> unit;
  put_long : int -> unit;
  put_ulong : int -> unit;
  put_longlong : int64 -> unit;
  put_ulonglong : int64 -> unit;
  put_float : float -> unit;
  put_double : float -> unit;
  put_string : string -> unit;
  put_begin : unit -> unit;
  put_end : unit -> unit;
  put_len : int -> unit;
  finish : unit -> string;
}

type decoder = {
  get_bool : unit -> bool;
  get_char : unit -> char;
  get_octet : unit -> int;
  get_short : unit -> int;
  get_ushort : unit -> int;
  get_long : unit -> int;
  get_ulong : unit -> int;
  get_longlong : unit -> int64;
  get_ulonglong : unit -> int64;
  get_float : unit -> float;
  get_double : unit -> float;
  get_string : unit -> string;
  get_begin : unit -> unit;
  get_end : unit -> unit;
  get_len : unit -> int;
  at_end : unit -> bool;
}

(* Decode-side resource limits. Decoders must not trust any count that
   arrives on the wire: a hostile [#4294967295] length prefix would
   otherwise make the first [List.init]-style consumer allocate
   unbounded memory before a single element fails to parse. Limits are
   checked where the count is *decoded*, so the failure is a clean
   [Type_error] with the payload position still defined. *)
type limits = {
  max_frame_bytes : int;
      (* enforced by the framing layer (communicator), recorded here so
         one record travels with the codec *)
  max_string_bytes : int;
  max_sequence_length : int;
  max_nesting_depth : int;
}

let default_limits =
  {
    max_frame_bytes = 16 * 1024 * 1024;
    max_string_bytes = 4 * 1024 * 1024;
    max_sequence_length = 1_000_000;
    max_nesting_depth = 128;
  }

let unlimited =
  {
    max_frame_bytes = max_int;
    max_string_bytes = max_int;
    max_sequence_length = max_int;
    max_nesting_depth = max_int;
  }

type t = {
  name : string;
  encoder : unit -> encoder;
  decoder : string -> decoder;  (* decoder_limited default_limits *)
  decoder_limited : limits -> string -> decoder;
}

let range_check what ~min ~max v =
  if v < min || v > max then
    raise
      (Type_error
         (Printf.sprintf "%s value %d out of range [%d, %d]" what v min max))
  else v
