exception Type_error of string

let () =
  Printexc.register_printer (function
    | Type_error m -> Some (Printf.sprintf "Wire.Codec.Type_error: %s" m)
    | _ -> None)

type encoder = {
  put_bool : bool -> unit;
  put_char : char -> unit;
  put_octet : int -> unit;
  put_short : int -> unit;
  put_ushort : int -> unit;
  put_long : int -> unit;
  put_ulong : int -> unit;
  put_longlong : int64 -> unit;
  put_ulonglong : int64 -> unit;
  put_float : float -> unit;
  put_double : float -> unit;
  put_string : string -> unit;
  put_begin : unit -> unit;
  put_end : unit -> unit;
  put_len : int -> unit;
  finish : unit -> string;
}

type decoder = {
  get_bool : unit -> bool;
  get_char : unit -> char;
  get_octet : unit -> int;
  get_short : unit -> int;
  get_ushort : unit -> int;
  get_long : unit -> int;
  get_ulong : unit -> int;
  get_longlong : unit -> int64;
  get_ulonglong : unit -> int64;
  get_float : unit -> float;
  get_double : unit -> float;
  get_string : unit -> string;
  get_begin : unit -> unit;
  get_end : unit -> unit;
  get_len : unit -> int;
  at_end : unit -> bool;
}

type t = {
  name : string;
  encoder : unit -> encoder;
  decoder : string -> decoder;
}

let range_check what ~min ~max v =
  if v < min || v > max then
    raise
      (Type_error
         (Printf.sprintf "%s value %d out of range [%d, %d]" what v min max))
  else v
