type t =
  | Bool of bool
  | Char of char
  | Octet of int
  | Short of int
  | Ushort of int
  | Long of int
  | Ulong of int
  | Longlong of int64
  | Ulonglong of int64
  | Float of float
  | Double of float
  | String of string
  | Seq of t list
  | Group of t list

let rec encode (e : Codec.encoder) = function
  | Bool b -> e.put_bool b
  | Char c -> e.put_char c
  | Octet v -> e.put_octet v
  | Short v -> e.put_short v
  | Ushort v -> e.put_ushort v
  | Long v -> e.put_long v
  | Ulong v -> e.put_ulong v
  | Longlong v -> e.put_longlong v
  | Ulonglong v -> e.put_ulonglong v
  | Float v -> e.put_float v
  | Double v -> e.put_double v
  | String s -> e.put_string s
  | Seq items ->
      e.put_len (List.length items);
      List.iter (encode e) items
  | Group items ->
      e.put_begin ();
      List.iter (encode e) items;
      e.put_end ()

let rec decode_like (d : Codec.decoder) witness =
  match witness with
  | Bool _ -> Bool (d.get_bool ())
  | Char _ -> Char (d.get_char ())
  | Octet _ -> Octet (d.get_octet ())
  | Short _ -> Short (d.get_short ())
  | Ushort _ -> Ushort (d.get_ushort ())
  | Long _ -> Long (d.get_long ())
  | Ulong _ -> Ulong (d.get_ulong ())
  | Longlong _ -> Longlong (d.get_longlong ())
  | Ulonglong _ -> Ulonglong (d.get_ulonglong ())
  | Float _ -> Float (d.get_float ())
  | Double _ -> Double (d.get_double ())
  | String _ -> String (d.get_string ())
  | Seq items ->
      let elem_witness = match items with w :: _ -> Some w | [] -> None in
      let n = d.get_len () in
      let rec read k acc =
        if k = 0 then List.rev acc
        else
          match elem_witness with
          | None -> raise (Codec.Type_error "sequence witness has no element shape")
          | Some w -> read (k - 1) (decode_like d w :: acc)
      in
      Seq (read n [])
  | Group items ->
      d.get_begin ();
      let vs = List.map (fun w -> decode_like d w) items in
      d.get_end ();
      Group vs

let round32 f = Int32.float_of_bits (Int32.bits_of_float f)

let rec equal a b =
  match (a, b) with
  | Float x, Float y ->
      Int64.equal (Int64.bits_of_float (round32 x)) (Int64.bits_of_float (round32 y))
  | Double x, Double y ->
      Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float y)
  | Seq xs, Seq ys | Group xs, Group ys ->
      List.length xs = List.length ys && List.for_all2 equal xs ys
  | a, b -> a = b

let rec pp ppf = function
  | Bool b -> Format.fprintf ppf "Bool %b" b
  | Char c -> Format.fprintf ppf "Char %C" c
  | Octet v -> Format.fprintf ppf "Octet %d" v
  | Short v -> Format.fprintf ppf "Short %d" v
  | Ushort v -> Format.fprintf ppf "Ushort %d" v
  | Long v -> Format.fprintf ppf "Long %d" v
  | Ulong v -> Format.fprintf ppf "Ulong %d" v
  | Longlong v -> Format.fprintf ppf "Longlong %Ld" v
  | Ulonglong v -> Format.fprintf ppf "Ulonglong %Ld" v
  | Float v -> Format.fprintf ppf "Float %h" v
  | Double v -> Format.fprintf ppf "Double %h" v
  | String s -> Format.fprintf ppf "String %S" s
  | Seq items ->
      Format.fprintf ppf "Seq [@[%a@]]"
        (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ";@ ") pp)
        items
  | Group items ->
      Format.fprintf ppf "Group [@[%a@]]"
        (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ";@ ") pp)
        items
