(** Growable byte buffer backed by a Bigarray.

    Unlike [Stdlib.Buffer], the storage lives off the OCaml heap and is
    never moved by the GC, so the encoded frame can be handed to the
    transport layer without an intermediate copy (see [unsafe_raw]). *)

type bigstring =
  (char, Bigarray.int8_unsigned_elt, Bigarray.c_layout) Bigarray.Array1.t

type t

val create : ?initial:int -> unit -> t
(** [create ?initial ()] allocates a buffer with [initial] bytes of
    capacity (default 256, minimum 16). *)

val length : t -> int
(** Number of bytes written so far. *)

val clear : t -> unit
(** Reset the write position to zero without shrinking the storage. *)

val add_char : t -> char -> unit
val add_string : t -> string -> unit

val add_substring : t -> string -> int -> int -> unit
(** [add_substring t s pos len] appends [len] bytes of [s] starting at
    [pos].  Raises [Invalid_argument] when the range is out of bounds. *)

val contents : t -> string
(** Copy the written bytes out as a fresh string. *)

val unsafe_raw : t -> bigstring * int
(** [unsafe_raw t] exposes the backing storage and the current length
    without copying.  The bigarray remains owned by the buffer: any
    subsequent [add_*] may reallocate it, so the caller must finish with
    the view before writing again. *)
