let split_flat s = String.split_on_char '_' s

let split_scoped s =
  (* Split on "::". *)
  let rec go acc s =
    match String.index_opt s ':' with
    | Some i when i + 1 < String.length s && s.[i + 1] = ':' ->
        go (String.sub s 0 i :: acc) (String.sub s (i + 2) (String.length s - i - 2))
    | _ -> List.rev (s :: acc)
  in
  go [] s

let contains_scoped_sep s =
  let rec scan i =
    if i + 1 >= String.length s then false
    else if s.[i] = ':' && s.[i + 1] = ':' then true
    else scan (i + 1)
  in
  scan 0

let split_name s = if contains_scoped_sep s then split_scoped s else split_flat s

let last_segment s =
  match List.rev (split_name s) with seg :: _ -> seg | [] -> s

let hd_name s =
  let segments =
    match split_name s with "Heidi" :: rest when rest <> [] -> rest | segs -> segs
  in
  "Hd" ^ String.concat "" segments

let cpp_scoped s = String.concat "::" (split_name s)
let java_name s = last_segment s
let ctype s = Est.Ctype.of_string s
let value s = Est.Value.of_string s
let capitalize = String.capitalize_ascii

let float_literal f =
  if Float.is_integer f && Float.abs f < 1e16 then Printf.sprintf "%.1f" f
  else
    let s = Printf.sprintf "%.17g" f in
    (* Use the shortest representation that round-trips. *)
    let shorter = Printf.sprintf "%g" f in
    if float_of_string shorter = f then shorter else s
