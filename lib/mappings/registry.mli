(** The registry of built-in mappings. *)

val all : Mapping.t list
(** Every built-in mapping: heidi-cpp, corba-cpp, java, tcl, ocaml. *)

val find : string -> Mapping.t option
(** Look up a mapping by CLI name. *)

val names : string list
