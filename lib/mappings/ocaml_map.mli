(** The IDL-to-OCaml mapping targeting the repro Orb runtime.

    See the implementation's header comment for the mapping rules; the
    public surface is the packaged {!Mapping.t} below — map functions
    and templates are deliberately reachable only through it, so
    customization happens by writing templates, not by calling into the
    mapping (the paper's position). *)

val mapping : Mapping.t
