(** A mapping bundles everything the template-driven compiler needs to
    target one language convention: the map functions its templates
    reference, and the template sources themselves.

    This is the paper's central artifact: "the generated code now depends
    only on the template that is provided to the code-generator"
    (Section 4). Each built-in mapping below corresponds to one of the
    mappings the paper describes or reports building. *)

type t = {
  name : string;  (** CLI name, e.g. ["heidi-cpp"]. *)
  description : string;
  language : string;  (** Target language, e.g. ["C++"]. *)
  maps : Template.Maps.t;  (** Map functions referenced by the templates. *)
  templates : (string * string) list;
      (** Logical template name (["header"], ["stubs"], ["skeletons"], ...)
          to template source. Run in list order. *)
  reserved : string list;
      (** Target-language keywords and predefined names an IDL identifier
          must not collide with: a mapping cannot emit them verbatim, so
          [idlc lint] flags such identifiers per mapping (W105). *)
}

let template t name = List.assoc_opt name t.templates
let template_names t = List.map fst t.templates
let is_reserved t ident = List.mem ident t.reserved
