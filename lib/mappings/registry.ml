let all : Mapping.t list =
  [
    Heidi_cpp.mapping;
    Corba_cpp.mapping;
    Java_map.mapping;
    Tcl_map.mapping;
    Ocaml_map.mapping;
  ]

let find name = List.find_opt (fun (m : Mapping.t) -> m.Mapping.name = name) all
let names = List.map (fun (m : Mapping.t) -> m.Mapping.name) all
