(** A mapping bundles everything the template-driven compiler needs to
    target one language convention: the map functions its templates
    reference, and the template sources themselves.

    This is the paper's central artifact: "the generated code now depends
    only on the template that is provided to the code-generator"
    (Section 4). Each built-in mapping corresponds to one of the mappings
    the paper describes or reports building. *)

type t = {
  name : string;  (** CLI name, e.g. ["heidi-cpp"]. *)
  description : string;
  language : string;  (** Target language, e.g. ["C++"]. *)
  maps : Template.Maps.t;  (** Map functions referenced by the templates. *)
  templates : (string * string) list;
      (** Logical template name (["header"], ["stubs"], ["skeletons"], ...)
          to template source. Run in list order. *)
  reserved : string list;
      (** Target-language keywords an IDL identifier must not collide
          with; consumed by the [idlc lint] W105 check. *)
}

val template : t -> string -> string option
(** Look up a template source by logical name. *)

val template_names : t -> string list

val is_reserved : t -> string -> bool
(** Whether an identifier collides with a reserved word of the mapping's
    target language (the lint W105 check). *)
