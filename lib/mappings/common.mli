(** Helpers shared by the built-in mappings' map functions. *)

val split_flat : string -> string list
(** Split a flat name on ['_']: ["Heidi_SSequence"] → [["Heidi";
    "SSequence"]]. Note the documented ambiguity: IDL identifiers
    containing underscores are indistinguishable from scope separators in
    flat names (the same limitation as any flat C-style mapping). *)

val split_scoped : string -> string list
(** Split a scoped name on ["::"]. *)

val split_name : string -> string list
(** Split either form: uses ["::"] when present, ['_'] otherwise. *)

val hd_name : string -> string
(** The Heidi class-naming convention (paper Fig. 3): drop a leading
    [Heidi] scope, join remaining segments, prefix ["Hd"] —
    ["Heidi::A"] → ["HdA"], ["Heidi_SSequence"] → ["HdSSequence"],
    ["Receiver"] → ["HdReceiver"]. *)

val cpp_scoped : string -> string
(** Flat or scoped name → C++ scoped spelling: ["Heidi_A"] → ["Heidi::A"]. *)

val java_name : string -> string
(** Flat or scoped name → Java spelling: last segment only. *)

val last_segment : string -> string

val ctype : string -> Est.Ctype.t
(** Parse a type-property encoding; raises [Failure] on garbage (a
    template bug). *)

val value : string -> Est.Value.t

val capitalize : string -> string

val float_literal : float -> string
(** A C-family float literal that round-trips ([1.5], [1e-09], ...). *)
