let magic = "GIOP1"

let protocol ?(order = Wire.Cdr_codec.Big_endian) () =
  let name =
    match order with
    | Wire.Cdr_codec.Big_endian -> "giop-be"
    | Wire.Cdr_codec.Little_endian -> "giop-le"
  in
  Orb.Protocol.generic ~name
    ~framing:(Orb.Protocol.Length_prefixed { header = magic })
    (Wire.Cdr_codec.codec order)
