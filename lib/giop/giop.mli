(** A GIOP/IIOP-like binary ORB protocol.

    This is the "standard inter-ORB protocol" counterpart to the HeidiRMI
    text protocol: CDR marshaling, a fixed magic header carrying the body
    length, and support for both byte orders. It exists to demonstrate the
    paper's protocol-configurability claim — the same stubs and skeletons
    run over either protocol because both implement {!Orb.Protocol.t} —
    and to give bench §E2/§E3 their "general-purpose protocol" baseline.

    Faithful simplifications versus real GIOP 1.0 (documented in
    DESIGN.md): object addressing uses the HeidiRMI stringified reference
    rather than an IOR profile, and the message set is reduced to
    Request/Reply (the only messages the runtime needs). The frame header
    is ["GIOP"] + version byte + 8 hex digits of body length. *)

val protocol : ?order:Wire.Cdr_codec.byte_order -> unit -> Orb.Protocol.t
(** The GIOP-like protocol; [order] defaults to {!Wire.Cdr_codec.Big_endian}
    (CORBA's canonical network order). *)

val magic : string
(** The frame-header magic, ["GIOP1"]. *)
