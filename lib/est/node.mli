(** The enhanced syntax tree (EST) node: a generic property tree whose
    children are grouped by kind (Section 4.1, Figs. 7–8 of the paper).

    Unlike a plain parse tree, an EST groups similar children: all of an
    interface's attributes live in one list ([attributeList]) and all of
    its operations in another ([methodList]), regardless of how they were
    interleaved in the source. This is what makes templates simple: a
    [@foreach methodList] exhaustively enumerates the operations.

    Nodes are stringly-typed on purpose — this is the contract between the
    compiler front-end and the template engine, mirroring the paper's
    [Ast::New(name, kind, parent)] / [AddProp(key, value)] interface. *)

type t

val create : name:string -> kind:string -> t
(** A fresh node with no properties or children. *)

val name : t -> string
val kind : t -> string

val add_prop : t -> string -> string -> unit
(** [add_prop n key value] sets property [key]; replaces an existing value
    while keeping the original insertion position. *)

val prop : t -> string -> string option
val prop_or : t -> string -> default:string -> string
val props : t -> (string * string) list
(** All properties in insertion order. *)

val add_child : t -> group:string -> t -> unit
(** Append a child to the named group, creating the group if needed. *)

val group : t -> string -> t list
(** The children of a group, in insertion order; [[]] if absent. *)

val groups : t -> (string * t list) list
(** All groups in insertion order. *)

val iter : (t -> unit) -> t -> unit
(** Pre-order traversal over the whole tree. *)

val size : t -> int
(** Total number of nodes in the tree. *)

val equal : t -> t -> bool
(** Deep structural equality (names, kinds, props, groups). *)
