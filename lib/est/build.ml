let bool_prop b = if b then "true" else ""

let type_name_of ty =
  match Ctype.flat_name ty with Some n -> n | None -> ""

let last qn = List.nth qn (List.length qn - 1)

let add_named_props node qn repo_id =
  Node.add_prop node "scopedName" (Sem.scoped_of_qname qn);
  Node.add_prop node "flatName" (Sem.flat_of_qname qn);
  Node.add_prop node "repoId" repo_id

(* The root kind of a type with aliases resolved: the value of the
   "typeKind" property templates branch on. *)
let kind_tag ty =
  match Ctype.resolve_alias ty with
  | Ctype.Void -> "void"
  | Ctype.Short -> "short"
  | Ctype.Long -> "long"
  | Ctype.Long_long -> "longlong"
  | Ctype.Unsigned_short -> "ushort"
  | Ctype.Unsigned_long -> "ulong"
  | Ctype.Unsigned_long_long -> "ulonglong"
  | Ctype.Float -> "float"
  | Ctype.Double -> "double"
  | Ctype.Boolean -> "boolean"
  | Ctype.Char -> "char"
  | Ctype.Octet -> "octet"
  | Ctype.Any -> "any"
  | Ctype.String _ -> "string"
  | Ctype.Sequence _ -> "sequence"
  | Ctype.Objref _ -> "objref"
  | Ctype.Struct _ -> "struct"
  | Ctype.Union _ -> "union"
  | Ctype.Enum _ -> "enum"
  | Ctype.Alias _ -> assert false

let add_type_props spec node ~prefix ty =
  let key base = if prefix = "" then base else prefix ^ String.capitalize_ascii base in
  Node.add_prop node (if prefix = "" then "type" else prefix ^ "Type") (Ctype.to_string ty);
  Node.add_prop node (key "typeName") (type_name_of ty);
  Node.add_prop node (key "typeKind") (kind_tag ty);
  Node.add_prop node (key "isVariable") (bool_prop (Sem.is_variable spec ty));
  (* For sequence-rooted types, expose the element type so templates can
     derive iterator/element spellings (Fig. 3's HdSSequenceIter). *)
  match Ctype.resolve_alias ty with
  | Ctype.Sequence (elem, _) ->
      Node.add_prop node (key "seqElemType") (Ctype.to_string elem)
  | _ -> ()

let param_node spec (p : Sem.param) =
  let n = Node.create ~name:p.p_name ~kind:"Param" in
  Node.add_prop n "paramName" p.p_name;
  Node.add_prop n "paramMode"
    (match p.p_mode with
    | Idl.Ast.In -> "in"
    | Idl.Ast.Out -> "out"
    | Idl.Ast.Inout -> "inout"
    | Idl.Ast.Incopy -> "incopy");
  add_type_props spec n ~prefix:"" p.p_type;
  (* Fig. 9 tests [@if ${defaultParam} == ""], so absence is the empty
     string rather than a missing property. *)
  Node.add_prop n "defaultParam"
    (match p.p_default with Some v -> Value.to_string v | None -> "");
  n

let operation_node spec (op : Sem.operation) =
  let n = Node.create ~name:op.op_name ~kind:"Operation" in
  Node.add_prop n "methodName" op.op_name;
  add_type_props spec n ~prefix:"return" op.op_return;
  Node.add_prop n "isOneway" (bool_prop op.op_oneway);
  List.iter (fun p -> Node.add_child n ~group:"paramList" (param_node spec p)) op.op_params;
  List.iter
    (fun xqn ->
      let r = Node.create ~name:(last xqn) ~kind:"Raise" in
      Node.add_prop r "exceptionName" (Sem.flat_of_qname xqn);
      add_named_props r xqn (Sem.repo_id spec xqn);
      Node.add_child n ~group:"raisesList" r)
    op.op_raises;
  n

let attribute_node spec (at : Sem.attribute) =
  let n = Node.create ~name:at.at_name ~kind:"Attribute" in
  Node.add_prop n "attributeName" at.at_name;
  add_type_props spec n ~prefix:"attribute" at.at_type;
  Node.add_prop n "attributeQualifier" (if at.at_readonly then "readonly" else "");
  n

let member_nodes spec fields =
  List.map
    (fun (f : Sem.field) ->
      let n = Node.create ~name:f.f_name ~kind:"Member" in
      Node.add_prop n "memberName" f.f_name;
      add_type_props spec n ~prefix:"" f.f_type;
      n)
    fields

(* Group name for an entity node inside its parent's kind groups. *)
let group_of_entity = function
  | Sem.E_module _ -> "moduleList"
  | Sem.E_interface _ -> "interfaceList"
  | Sem.E_struct _ -> "structList"
  | Sem.E_union _ -> "unionList"
  | Sem.E_enum _ -> "enumList"
  | Sem.E_alias _ -> "aliasList"
  | Sem.E_const _ -> "constList"
  | Sem.E_except _ -> "exceptionList"

let rec entity_node spec mk (e : Sem.entity) : Node.t =
  match e with
  | Sem.E_module (qn, members) ->
      let n = Node.create ~name:(last qn) ~kind:"Module" in
      Node.add_prop n "moduleName" (last qn);
      add_named_props n qn (Sem.repo_id spec qn);
      attach_members spec mk n members;
      n
  | Sem.E_interface i -> interface_node spec mk i
  | Sem.E_struct s ->
      let n = Node.create ~name:(last s.s_qname) ~kind:"Struct" in
      Node.add_prop n "structName" (last s.s_qname);
      add_named_props n s.s_qname s.s_repo_id;
      List.iter
        (fun m -> Node.add_child n ~group:"memberList" m)
        (member_nodes spec s.s_fields);
      n
  | Sem.E_union u ->
      let n = Node.create ~name:(last u.u_qname) ~kind:"Union" in
      Node.add_prop n "unionName" (last u.u_qname);
      add_named_props n u.u_qname u.u_repo_id;
      Node.add_prop n "discType" (Ctype.to_string u.u_disc);
      Node.add_prop n "discTypeName" (type_name_of u.u_disc);
      List.iter
        (fun (c : Sem.union_case) ->
          let cn = Node.create ~name:c.uc_name ~kind:"Case" in
          Node.add_prop cn "caseName" c.uc_name;
          add_type_props spec cn ~prefix:"" c.uc_type;
          List.iter
            (fun label ->
              let ln = Node.create ~name:"" ~kind:"Label" in
              (match label with
              | Some v ->
                  Node.add_prop ln "labelValue" (Value.to_string v);
                  Node.add_prop ln "isDefault" ""
              | None ->
                  Node.add_prop ln "labelValue" "";
                  Node.add_prop ln "isDefault" "true");
              Node.add_child cn ~group:"labelList" ln)
            c.uc_labels;
          Node.add_child n ~group:"caseList" cn)
        u.u_cases;
      n
  | Sem.E_enum en ->
      let n = Node.create ~name:(last en.e_qname) ~kind:"Enum" in
      Node.add_prop n "enumName" (last en.e_qname);
      add_named_props n en.e_qname en.e_repo_id;
      List.iteri
        (fun idx m ->
          let mn = Node.create ~name:m ~kind:"EnumMember" in
          Node.add_prop mn "memberName" m;
          Node.add_prop mn "memberIndex" (string_of_int idx);
          Node.add_child n ~group:"memberList" mn)
        en.e_members;
      n
  | Sem.E_alias a ->
      let n = Node.create ~name:(last a.a_qname) ~kind:"Alias" in
      Node.add_prop n "aliasName" (last a.a_qname);
      add_named_props n a.a_qname a.a_repo_id;
      add_type_props spec n ~prefix:"" a.a_target;
      n
  | Sem.E_const c ->
      let n = Node.create ~name:(last c.c_qname) ~kind:"Const" in
      Node.add_prop n "constName" (last c.c_qname);
      add_named_props n c.c_qname c.c_repo_id;
      add_type_props spec n ~prefix:"" c.c_type;
      Node.add_prop n "value" (Value.to_string c.c_value);
      n
  | Sem.E_except x ->
      let n = Node.create ~name:(last x.x_qname) ~kind:"Exception" in
      Node.add_prop n "exceptionName" (last x.x_qname);
      add_named_props n x.x_qname x.x_repo_id;
      List.iter
        (fun m -> Node.add_child n ~group:"memberList" m)
        (member_nodes spec x.x_fields);
      n

and interface_node spec mk (i : Sem.interface) =
  let n = Node.create ~name:(last i.i_qname) ~kind:"Interface" in
  Node.add_prop n "interfaceName" (last i.i_qname);
  add_named_props n i.i_qname i.i_repo_id;
  (* Fig. 8 stores the first base under "Parent". *)
  Node.add_prop n "Parent"
    (match i.i_inherits with [] -> "" | b :: _ -> Sem.flat_of_qname b);
  let inherit_node qn =
    let b = Node.create ~name:(last qn) ~kind:"Inherit" in
    Node.add_prop b "inheritedName" (Sem.flat_of_qname qn);
    add_named_props b qn (Sem.repo_id spec qn);
    b
  in
  List.iter
    (fun qn -> Node.add_child n ~group:"inheritedList" (inherit_node qn))
    i.i_inherits;
  List.iter
    (fun (b : Sem.interface) ->
      Node.add_child n ~group:"allInheritedList" (inherit_node b.i_qname))
    (Sem.ancestors spec i);
  List.iter
    (fun op -> Node.add_child n ~group:"methodList" (operation_node spec op))
    i.i_ops;
  List.iter
    (fun at -> Node.add_child n ~group:"attributeList" (attribute_node spec at))
    i.i_attrs;
  List.iter
    (fun op -> Node.add_child n ~group:"allMethodList" (operation_node spec op))
    (Sem.all_operations spec i);
  List.iter
    (fun at -> Node.add_child n ~group:"allAttributeList" (attribute_node spec at))
    (Sem.all_attributes spec i);
  attach_members spec mk n i.i_decls;
  n

(* Attach child entities to [parent], each in its per-kind group. Relative
   source order is preserved within each kind — the defining property of
   the EST (Fig. 7). *)
and attach_members spec mk parent member_qns =
  List.iter
    (fun qn ->
      match Sem.find spec qn with
      | None -> ()
      | Some e -> Node.add_child parent ~group:(group_of_entity e) (mk e))
    member_qns

(* Nodes are memoized by qualified name so that an entity declared inside a
   module is the *same* node in the module's local groups and in the root's
   flattened groups. *)
let of_spec (spec : Sem.spec) : Node.t =
  let memo : (Sem.qname, Node.t) Hashtbl.t = Hashtbl.create 64 in
  let rec memo_node e =
    let qn = Sem.entity_qname e in
    match Hashtbl.find_opt memo qn with
    | Some n -> n
    | None ->
        let n = entity_node spec memo_node e in
        Hashtbl.replace memo qn n;
        n
  in
  (* Build the module hierarchy first so memoized nodes carry their local
     groups... *)
  let root = Node.create ~name:"" ~kind:"Root" in
  List.iter
    (fun qn ->
      match Sem.find spec qn with
      | None -> ()
      | Some e -> ignore (memo_node e))
    spec.toplevel;
  (* ...then flatten every entity (document order, recursing into modules)
     into the root's per-kind groups. A template's [@foreach interfaceList]
     at the root therefore sees all interfaces, as in the paper's Fig. 9. *)
  List.iter
    (fun e -> Node.add_child root ~group:(group_of_entity e) (memo_node e))
    (Sem.all_entities spec);
  (* Direct top-level entities also get "top"-prefixed groups
     (topInterfaceList, topModuleList, ...) for mappings that must keep
     module members inside a namespace construct (corba-cpp). *)
  List.iter
    (fun qn ->
      match Sem.find spec qn with
      | None -> ()
      | Some e ->
          Node.add_child root
            ~group:("top" ^ String.capitalize_ascii (group_of_entity e))
            (memo_node e))
    spec.toplevel;
  root
