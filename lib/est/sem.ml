(** The semantic model: the output of name resolution and type checking.

    Entities are keyed by their qualified name (e.g. [["Heidi"; "A"]]).
    Every type reference has been reduced to a {!Ctype.t} and every
    constant expression folded to a {!Value.t}. Declaration order is
    preserved both at top level and within each container, because
    generated code (and the EST) must follow source order within each
    kind group. *)

type qname = string list

let flat_of_qname qn = String.concat "_" qn
let scoped_of_qname qn = String.concat "::" qn

(** Repository IDs follow the OMG format used throughout the paper:
    [IDL:Heidi/A:1.0]. A [#pragma prefix] in force at the declaration
    prepends its value: [IDL:nec.com/Heidi/A:1.0]. *)
let repo_id_of_qname ?(prefix = "") qn =
  let path = String.concat "/" qn in
  "IDL:" ^ (if prefix = "" then path else prefix ^ "/" ^ path) ^ ":1.0"



type param = {
  p_mode : Idl.Ast.param_mode;
  p_type : Ctype.t;
  p_name : string;
  p_default : Value.t option;
}

type operation = {
  op_oneway : bool;
  op_return : Ctype.t;
  op_name : string;
  op_params : param list;
  op_raises : qname list;  (** Resolved exception names. *)
}

type attribute = { at_readonly : bool; at_type : Ctype.t; at_name : string }

type field = { f_type : Ctype.t; f_name : string }

type union_case = {
  uc_labels : Value.t option list;  (** [None] is the [default] label. *)
  uc_type : Ctype.t;
  uc_name : string;
}

type interface = {
  i_qname : qname;
  i_repo_id : string;
  i_inherits : qname list;  (** Direct bases, in declaration order. *)
  i_ops : operation list;
  i_attrs : attribute list;
  i_decls : qname list;  (** Nested type/const/exception declarations. *)
}

type struct_t = { s_qname : qname; s_repo_id : string; s_fields : field list }

type union_t = {
  u_qname : qname;
  u_repo_id : string;
  u_disc : Ctype.t;
  u_cases : union_case list;
}

type enum_t = { e_qname : qname; e_repo_id : string; e_members : string list }

type alias_t = { a_qname : qname; a_repo_id : string; a_target : Ctype.t }

type const_t = {
  c_qname : qname;
  c_repo_id : string;
  c_type : Ctype.t;
  c_value : Value.t;
}

type except_t = { x_qname : qname; x_repo_id : string; x_fields : field list }

type entity =
  | E_module of qname * qname list  (** Name and ordered member qnames. *)
  | E_interface of interface
  | E_struct of struct_t
  | E_union of union_t
  | E_enum of enum_t
  | E_alias of alias_t
  | E_const of const_t
  | E_except of except_t

let entity_qname = function
  | E_module (qn, _) -> qn
  | E_interface i -> i.i_qname
  | E_struct s -> s.s_qname
  | E_union u -> u.u_qname
  | E_enum e -> e.e_qname
  | E_alias a -> a.a_qname
  | E_const c -> c.c_qname
  | E_except x -> x.x_qname

(** A fully analyzed IDL specification. *)
type spec = {
  entities : (qname, entity) Hashtbl.t;
  toplevel : qname list;  (** Top-level entities in declaration order. *)
  prefixes : (qname, string) Hashtbl.t;
      (** The [#pragma prefix] in force at each entity's declaration. *)
  warnings : Idl.Diag.t list;
}

let prefix_of spec qn =
  Option.value ~default:"" (Hashtbl.find_opt spec.prefixes qn)

(** The repository ID of any declared entity, honouring pragma prefixes. *)
let repo_id spec qn = repo_id_of_qname ~prefix:(prefix_of spec qn) qn

let find spec qn = Hashtbl.find_opt spec.entities qn

let find_interface spec qn =
  match find spec qn with Some (E_interface i) -> Some i | _ -> None

let find_exception spec qn =
  match find spec qn with Some (E_except x) -> Some x | _ -> None

(** [all_interfaces spec] lists every interface in declaration order
    (document order, recursing into modules). *)
let all_entities spec =
  let rec walk qn acc =
    match Hashtbl.find_opt spec.entities qn with
    | None -> acc
    | Some (E_module (_, members) as e) ->
        List.fold_left (fun acc m -> walk m acc) (e :: acc) members
    | Some e -> e :: acc
  in
  List.rev (List.fold_left (fun acc qn -> walk qn acc) [] spec.toplevel)

let all_interfaces spec =
  List.filter_map
    (function E_interface i -> Some i | _ -> None)
    (all_entities spec)

(** Transitive inheritance closure of an interface: all ancestors,
    depth-first in declaration order, each listed once, excluding the
    interface itself. *)
let ancestors spec (i : interface) =
  let seen = Hashtbl.create 8 in
  let rec walk acc qn =
    if Hashtbl.mem seen qn then acc
    else (
      Hashtbl.add seen qn ();
      match find_interface spec qn with
      | None -> acc
      | Some base ->
          let acc = List.fold_left walk acc base.i_inherits in
          base :: acc)
  in
  List.rev (List.fold_left walk [] i.i_inherits)

(** All operations visible on an interface, inherited ones first (base
    before derived, matching dispatch delegation order in the paper,
    Section 3.1). *)
let all_operations spec (i : interface) =
  let bases = ancestors spec i in
  List.concat_map (fun b -> b.i_ops) bases @ i.i_ops

let all_attributes spec (i : interface) =
  let bases = ancestors spec i in
  List.concat_map (fun b -> b.i_attrs) bases @ i.i_attrs

(** [is_variable spec t] — exact variable-length computation, consulting
    struct/union member types through the entity table (unlike the
    conservative {!Ctype.is_variable_length}). *)
let is_variable spec t =
  let rec go seen t =
    match Ctype.resolve_alias t with
    | Ctype.String _ | Ctype.Sequence _ | Ctype.Objref _ | Ctype.Any -> true
    | Ctype.Struct n | Ctype.Union n ->
        if List.mem n seen then false
        else
          let seen = n :: seen in
          let check_fields fields =
            List.exists (fun f -> go seen f.f_type) fields
          in
          Hashtbl.fold
            (fun _ e acc ->
              acc
              ||
              match e with
              | E_struct s when flat_of_qname s.s_qname = n -> check_fields s.s_fields
              | E_union u when flat_of_qname u.u_qname = n ->
                  List.exists (fun c -> go seen c.uc_type) u.u_cases
              | _ -> false)
            spec.entities false
    | _ -> false
  in
  go [] t
