(* ---------------- Fig. 8-style Perl rendering ---------------- *)

let to_perl root =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "#!/usr/bin/perl\nuse Ast;\nuse JeevesUtil;\n\n";
  let counter = ref 0 in
  let rec emit parent_var node =
    let var = Printf.sprintf "$n%d" !counter in
    incr counter;
    (match Node.prop node "repoId" with
    | Some id -> Buffer.add_string buf (Printf.sprintf "# %s\n" id)
    | None -> ());
    Buffer.add_string buf
      (Printf.sprintf "%s = Ast::New(%S, %S%s);\n" var (Node.name node)
         (Node.kind node)
         (match parent_var with Some p -> ", " ^ p | None -> ""));
    List.iter
      (fun (k, v) ->
        Buffer.add_string buf (Printf.sprintf "%s->AddProp(%S, %S);\n" var k v))
      (Node.props node);
    List.iter
      (fun (g, children) ->
        Buffer.add_string buf (Printf.sprintf "# group %s\n" g);
        List.iter (fun c -> emit (Some var) c) children)
      (Node.groups node)
  in
  emit None root;
  Buffer.contents buf

(* ---------------- machine format ---------------- *)

(* Line-based, fully parenthesized:
     node <kind> <name>
     prop <key> <value>
     group <g>
     endgroup
     endnode
   All operands are OCaml %S-quoted strings, so values may contain any
   characters including newlines. *)

let to_text root =
  let buf = Buffer.create 4096 in
  let rec emit node =
    Buffer.add_string buf
      (Printf.sprintf "node %S %S\n" (Node.kind node) (Node.name node));
    List.iter
      (fun (k, v) -> Buffer.add_string buf (Printf.sprintf "prop %S %S\n" k v))
      (Node.props node);
    List.iter
      (fun (g, children) ->
        Buffer.add_string buf (Printf.sprintf "group %S\n" g);
        List.iter emit children;
        Buffer.add_string buf "endgroup\n")
      (Node.groups node);
    Buffer.add_string buf "endnode\n"
  in
  emit root;
  Buffer.contents buf

(* Tokenizer: words and %S-quoted strings separated by whitespace. *)
type tok = Word of string | Str of string

let tokenize s =
  let len = String.length s in
  let toks = ref [] in
  let i = ref 0 in
  let fail fmt = Printf.ksprintf (fun m -> failwith ("Dump.of_text: " ^ m)) fmt in
  while !i < len do
    match s.[!i] with
    | ' ' | '\t' | '\n' | '\r' -> incr i
    | '"' ->
        let buf = Buffer.create 16 in
        incr i;
        let rec scan () =
          if !i >= len then fail "unterminated string"
          else
            match s.[!i] with
            | '"' -> incr i
            | '\\' ->
                if !i + 1 >= len then fail "truncated escape";
                (match s.[!i + 1] with
                | 'n' -> Buffer.add_char buf '\n'
                | 't' -> Buffer.add_char buf '\t'
                | 'r' -> Buffer.add_char buf '\r'
                | 'b' -> Buffer.add_char buf '\b'
                | '\\' -> Buffer.add_char buf '\\'
                | '"' -> Buffer.add_char buf '"'
                | '\'' -> Buffer.add_char buf '\''
                | '0' .. '9' ->
                    if !i + 3 >= len then fail "truncated numeric escape";
                    let code = int_of_string (String.sub s (!i + 1) 3) in
                    Buffer.add_char buf (Char.chr code);
                    i := !i + 2
                | c -> fail "unknown escape '\\%c'" c);
                i := !i + 2;
                scan ()
            | c ->
                Buffer.add_char buf c;
                incr i;
                scan ()
        in
        scan ();
        toks := Str (Buffer.contents buf) :: !toks
    | _ ->
        let start = !i in
        while
          !i < len
          && match s.[!i] with ' ' | '\t' | '\n' | '\r' | '"' -> false | _ -> true
        do
          incr i
        done;
        toks := Word (String.sub s start (!i - start)) :: !toks
  done;
  List.rev !toks

let of_text s =
  let fail fmt = Printf.ksprintf (fun m -> failwith ("Dump.of_text: " ^ m)) fmt in
  let toks = ref (tokenize s) in
  let next () =
    match !toks with
    | [] -> fail "unexpected end of input"
    | t :: rest ->
        toks := rest;
        t
  in
  let peek () = match !toks with [] -> None | t :: _ -> Some t in
  let str () =
    match next () with Str s -> s | Word w -> fail "expected a string, got %S" w
  in
  let rec parse_node () =
    (match next () with
    | Word "node" -> ()
    | Word w -> fail "expected 'node', got %S" w
    | Str s -> fail "expected 'node', got string %S" s);
    let kind = str () in
    let name = str () in
    let node = Node.create ~name ~kind in
    let rec body () =
      match peek () with
      | Some (Word "prop") ->
          ignore (next ());
          let k = str () in
          let v = str () in
          Node.add_prop node k v;
          body ()
      | Some (Word "group") ->
          ignore (next ());
          let g = str () in
          let rec children () =
            match peek () with
            | Some (Word "endgroup") -> ignore (next ())
            | Some (Word "node") ->
                Node.add_child node ~group:g (parse_node ());
                children ()
            | Some (Word w) -> fail "expected child node or 'endgroup', got %S" w
            | Some (Str s) -> fail "unexpected string %S in group" s
            | None -> fail "unterminated group %S" g
          in
          children ();
          body ()
      | Some (Word "endnode") -> ignore (next ())
      | Some (Word w) -> fail "unexpected %S in node body" w
      | Some (Str s) -> fail "unexpected string %S in node body" s
      | None -> fail "unterminated node"
    in
    body ();
    node
  in
  let root = parse_node () in
  (match !toks with [] -> () | _ -> fail "trailing tokens after root node");
  root
