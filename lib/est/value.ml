type t =
  | V_int of int64
  | V_float of float
  | V_bool of bool
  | V_char of char
  | V_string of string
  | V_enum of string * string

let to_string = function
  | V_int i -> Printf.sprintf "int:%Ld" i
  | V_float f -> Printf.sprintf "float:%h" f
  | V_bool b -> Printf.sprintf "bool:%b" b
  | V_char c -> Printf.sprintf "char:%d" (Char.code c)
  | V_string s -> Printf.sprintf "string:%s" s
  | V_enum (e, m) -> Printf.sprintf "enum:%s:%s" e m

let of_string s =
  let fail () = failwith (Printf.sprintf "Value.of_string: malformed %S" s) in
  match String.index_opt s ':' with
  | None -> fail ()
  | Some i -> (
      let tag = String.sub s 0 i in
      let rest = String.sub s (i + 1) (String.length s - i - 1) in
      match tag with
      | "int" -> ( match Int64.of_string_opt rest with Some v -> V_int v | None -> fail ())
      | "float" -> (
          match float_of_string_opt rest with Some v -> V_float v | None -> fail ())
      | "bool" -> (
          match bool_of_string_opt rest with Some v -> V_bool v | None -> fail ())
      | "char" -> (
          match int_of_string_opt rest with
          | Some v when v >= 0 && v < 256 -> V_char (Char.chr v)
          | _ -> fail ())
      | "string" -> V_string rest
      | "enum" -> (
          match String.index_opt rest ':' with
          | Some j ->
              V_enum
                ( String.sub rest 0 j,
                  String.sub rest (j + 1) (String.length rest - j - 1) )
          | None -> fail ())
      | _ -> fail ())

let pp ppf t = Format.pp_print_string ppf (to_string t)

let equal a b =
  match (a, b) with
  | V_float x, V_float y ->
      (* Distinguish by bit pattern so nan = nan and 0. <> -0. round-trip. *)
      Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float y)
  | a, b -> a = b
