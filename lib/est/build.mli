(** EST construction: flattens a {!Sem.spec} into the grouped property
    tree consumed by the template engine.

    The group and property vocabulary is the compiler/template contract —
    the same names the paper's templates use (Figs. 8–9):

    {2 Groups}

    At the root and inside each [Module] node: [moduleList],
    [interfaceList], [structList], [unionList], [enumList], [aliasList],
    [constList], [exceptionList]. Relative source order is preserved
    within each kind group (the defining property of the EST, Fig. 7).

    Inside an [Interface] node: [inheritedList] (direct bases),
    [allInheritedList] (transitive closure, base-first), [methodList],
    [attributeList], [allMethodList] / [allAttributeList] (including
    inherited, base-first — used by mappings that must flatten
    inheritance, such as the paper's IDL–Java mapping), plus the nested
    declaration groups above.

    Inside an [Operation] node: [paramList], [raisesList].
    Inside a [Struct]/[Exception] node: [memberList].
    Inside a [Union] node: [caseList]; each [Case] has [labelList].
    Inside an [Enum] node: [memberList].

    {2 Properties (selection)}

    Every named node carries [scopedName], [flatName] and [repoId].
    Type-bearing nodes carry [type] (the {!Ctype} encoding), [typeName]
    (flat name of a named type, or [""]) and [isVariable] ([^"true"] or
    [""]).  Parameters carry [paramName], [paramMode] and [defaultParam]
    (a {!Value} encoding, or [""] — compare [@if ${defaultParam} == ""]
    in Fig. 9). Attributes carry [attributeQualifier] ([^"readonly"] or
    [""]). Interfaces carry [Parent] (flat name of the first base, or
    [""]) exactly as in Fig. 8. *)

val of_spec : Sem.spec -> Node.t
(** Build the EST for an analyzed specification. The root node has kind
    ["Root"] and name [""]. *)
