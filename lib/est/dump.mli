(** External representations of the EST.

    [to_perl] mirrors the paper's Fig. 8: the prototype emitted a Perl
    program that rebuilt the EST inside the interpreter. We emit the same
    shape for inspection and golden tests.

    [to_text]/[of_text] are a round-tripping machine format. The paper
    (Section 4.1) notes that re-evaluating a program that rebuilds the EST
    in memory "is certainly more efficient than parsing an external
    representation" — bench §E4 quantifies exactly this by comparing
    [of_text] parsing against reusing the in-memory tree. *)

val to_perl : Node.t -> string
(** Render the EST as the Fig. 8-style Perl program. *)

val to_text : Node.t -> string
(** Serialize to the line-based machine format. *)

val of_text : string -> Node.t
(** Parse the machine format back into an EST.
    Guarantee: [of_text (to_text n)] is {!Node.equal} to [n].
    @raise Failure on malformed input. *)
