type t = {
  n_name : string;
  n_kind : string;
  mutable n_props : (string * string) list;  (* insertion order *)
  mutable n_groups : (string * t list ref) list;  (* insertion order *)
}

let create ~name ~kind = { n_name = name; n_kind = kind; n_props = []; n_groups = [] }
let name n = n.n_name
let kind n = n.n_kind

let add_prop n key value =
  if List.mem_assoc key n.n_props then
    n.n_props <- List.map (fun (k, v) -> if k = key then (k, value) else (k, v)) n.n_props
  else n.n_props <- n.n_props @ [ (key, value) ]

let prop n key = List.assoc_opt key n.n_props
let prop_or n key ~default = Option.value ~default (prop n key)
let props n = n.n_props

let add_child n ~group child =
  match List.assoc_opt group n.n_groups with
  | Some cell -> cell := !cell @ [ child ]
  | None -> n.n_groups <- n.n_groups @ [ (group, ref [ child ]) ]

let group n g =
  match List.assoc_opt g n.n_groups with Some cell -> !cell | None -> []

let groups n = List.map (fun (g, cell) -> (g, !cell)) n.n_groups

let rec iter f n =
  f n;
  List.iter (fun (_, cell) -> List.iter (iter f) !cell) n.n_groups

let size n =
  let count = ref 0 in
  iter (fun _ -> incr count) n;
  !count

let rec equal a b =
  a.n_name = b.n_name && a.n_kind = b.n_kind && a.n_props = b.n_props
  && List.length a.n_groups = List.length b.n_groups
  && List.for_all2
       (fun (g1, c1) (g2, c2) ->
         g1 = g2
         && List.length !c1 = List.length !c2
         && List.for_all2 equal !c1 !c2)
       a.n_groups b.n_groups
