(** Evaluated constant values: results of folding IDL constant
    expressions, used for [const] declarations and default parameter
    values.

    Like {!Ctype}, values have a self-contained textual encoding stored in
    EST properties (e.g. the [defaultParam] property of Fig. 9) and mapped
    into target-language literals by a template map function. *)

type t =
  | V_int of int64
  | V_float of float
  | V_bool of bool
  | V_char of char
  | V_string of string
  | V_enum of string * string  (** Enum flat name, member name. *)

val to_string : t -> string
val of_string : string -> t
(** @raise Failure on a malformed encoding. *)

val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool
