(** Name resolution and type checking: turns a parsed {!Idl.Ast.spec} into
    a {!Sem.spec}.

    Implements the CORBA scoping rules for the supported subset: names are
    searched in the current scope, then in inherited interface scopes, then
    in enclosing scopes; [::]-prefixed names are resolved from the root.
    Enum members are introduced into their enclosing scope. Modules may be
    re-opened. Forward-declared interfaces may be referenced as object
    reference types before their definition.

    Checks performed (errors raise {!Idl.Diag.Idl_error}):
    - duplicate definitions in a scope;
    - unresolved name references;
    - inheritance from something that is not a (defined) interface, and
      inheritance cycles;
    - duplicate operation/attribute names within an interface, including
      clashes with inherited ones;
    - [raises] clauses naming non-exceptions;
    - constant expression type errors, overflow and division by zero;
    - default parameter values incompatible with the parameter type
      (paper extension, Section 3.1);
    - [oneway] operations with [out]/[inout] parameters, a non-void
      return type, or a [raises] clause;
    - invalid union discriminator types, duplicate case labels, and more
      than one [default] case. *)

val spec : Idl.Ast.spec -> Sem.spec
(** @raise Idl.Diag.Idl_error on any semantic error.

    Error recovery: when an {!Idl.Diag.reporter} is installed (via
    [Idl.Diag.with_reporter], as [idlc lint] does), errors are accumulated
    at per-definition, per-entity, per-operation, per-attribute and
    per-field recovery points instead of raised, so one run reports every
    independent problem. Entities that failed to resolve are absent from
    the returned {!Sem.spec}. Without a reporter the first error raises,
    exactly the historic behaviour. *)
