type t =
  | Void
  | Short
  | Long
  | Long_long
  | Unsigned_short
  | Unsigned_long
  | Unsigned_long_long
  | Float
  | Double
  | Boolean
  | Char
  | Octet
  | Any
  | String of int option
  | Sequence of t * int option
  | Objref of string
  | Struct of string
  | Union of string
  | Enum of string
  | Alias of string * t

let rec resolve_alias = function Alias (_, t) -> resolve_alias t | t -> t

let flat_name = function
  | Objref n | Struct n | Union n | Enum n | Alias (n, _) -> Some n
  | _ -> None

let rec is_variable_length t =
  match resolve_alias t with
  | String _ | Sequence _ | Objref _ | Any -> true
  (* Without member information, aggregates are conservatively variable;
     Build.of_spec computes the exact answer from the semantic model. *)
  | Struct _ | Union _ -> true
  | Alias (_, t) -> is_variable_length t
  | _ -> false

let rec to_string = function
  | Void -> "void"
  | Short -> "short"
  | Long -> "long"
  | Long_long -> "longlong"
  | Unsigned_short -> "ushort"
  | Unsigned_long -> "ulong"
  | Unsigned_long_long -> "ulonglong"
  | Float -> "float"
  | Double -> "double"
  | Boolean -> "boolean"
  | Char -> "char"
  | Octet -> "octet"
  | Any -> "any"
  | String None -> "string"
  | String (Some n) -> Printf.sprintf "string(%d)" n
  | Sequence (t, None) -> Printf.sprintf "sequence(%s)" (to_string t)
  | Sequence (t, Some n) -> Printf.sprintf "sequence(%s,%d)" (to_string t) n
  | Objref n -> Printf.sprintf "objref(%s)" n
  | Struct n -> Printf.sprintf "struct(%s)" n
  | Union n -> Printf.sprintf "union(%s)" n
  | Enum n -> Printf.sprintf "enum(%s)" n
  | Alias (n, t) -> Printf.sprintf "alias(%s)=%s" n (to_string t)

(* Hand-written parser for the encoding above. The grammar is LL(1):
   a bare word, or word '(' args ')', optionally followed by '=' type
   for aliases. *)
let of_string s =
  let len = String.length s in
  let pos = ref 0 in
  let fail fmt = Printf.ksprintf (fun m -> failwith ("Ctype.of_string: " ^ m)) fmt in
  let peek () = if !pos < len then Some s.[!pos] else None in
  let advance () = incr pos in
  let word () =
    let start = !pos in
    while
      !pos < len
      && (match s.[!pos] with
         | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> true
         | _ -> false)
    do
      advance ()
    done;
    if !pos = start then fail "expected a word at offset %d in %S" start s;
    String.sub s start (!pos - start)
  in
  let expect c =
    match peek () with
    | Some x when x = c -> advance ()
    | _ -> fail "expected %C at offset %d in %S" c !pos s
  in
  let int_arg () =
    let start = !pos in
    while !pos < len && match s.[!pos] with '0' .. '9' -> true | _ -> false do
      advance ()
    done;
    if !pos = start then fail "expected an integer at offset %d in %S" start s;
    int_of_string (String.sub s start (!pos - start))
  in
  let rec ty () =
    let w = word () in
    match w with
    | "void" -> Void
    | "short" -> Short
    | "long" -> Long
    | "longlong" -> Long_long
    | "ushort" -> Unsigned_short
    | "ulong" -> Unsigned_long
    | "ulonglong" -> Unsigned_long_long
    | "float" -> Float
    | "double" -> Double
    | "boolean" -> Boolean
    | "char" -> Char
    | "octet" -> Octet
    | "any" -> Any
    | "string" ->
        if peek () = Some '(' then (
          advance ();
          let n = int_arg () in
          expect ')';
          String (Some n))
        else String None
    | "sequence" ->
        expect '(';
        let elem = ty () in
        let bound =
          if peek () = Some ',' then (
            advance ();
            Some (int_arg ()))
          else None
        in
        expect ')';
        Sequence (elem, bound)
    | "objref" | "struct" | "union" | "enum" | "alias" ->
        expect '(';
        let name = word () in
        expect ')';
        let named =
          match w with
          | "objref" -> Objref name
          | "struct" -> Struct name
          | "union" -> Union name
          | "enum" -> Enum name
          | _ ->
              expect '=';
              Alias (name, ty ())
        in
        named
    | other -> fail "unknown type constructor %S in %S" other s
  in
  let result = ty () in
  if !pos <> len then fail "trailing characters at offset %d in %S" !pos s;
  result

let pp ppf t = Format.pp_print_string ppf (to_string t)
let equal = ( = )
