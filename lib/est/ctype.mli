(** Canonical (fully resolved) IDL types.

    After semantic analysis every type reference is reduced to one of these
    constructors. Named user types carry their {e flat name} — the scoped
    name joined with ["_"], e.g. [Heidi::A] becomes ["Heidi_A"] — which is
    the spelling used in EST properties (compare Fig. 8 of the paper, where
    the parameter node carries [typeName = "Heidi_A"]).

    The [to_string]/[of_string] pair defines the self-contained textual
    encoding stored in EST properties and consumed by template map
    functions; it round-trips exactly. *)

type t =
  | Void
  | Short
  | Long
  | Long_long
  | Unsigned_short
  | Unsigned_long
  | Unsigned_long_long
  | Float
  | Double
  | Boolean
  | Char
  | Octet
  | Any
  | String of int option
  | Sequence of t * int option
  | Objref of string  (** Interface reference, by flat name. *)
  | Struct of string
  | Union of string
  | Enum of string
  | Alias of string * t  (** Typedef: alias flat name and resolved target. *)

val resolve_alias : t -> t
(** Strip [Alias] wrappers down to the underlying canonical type. *)

val flat_name : t -> string option
(** The flat name of a named type ([Objref], [Struct], [Union], [Enum],
    [Alias]), or [None] for anonymous/primitive types. *)

val is_variable_length : t -> bool
(** True for types whose marshaled size depends on the value (strings,
    sequences, object references, and aggregates containing them) —
    the EST's [IsVariable] property (Fig. 8). *)

val to_string : t -> string
val of_string : string -> t
(** @raise Failure on a malformed encoding. *)

val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool
