open Idl
module A = Ast

type kind =
  | K_module
  | K_interface
  | K_struct
  | K_union
  | K_enum
  | K_enum_member of Sem.qname  (** qname of the owning enum *)
  | K_alias
  | K_const
  | K_except

let with_article k =
  match k.[0] with
  | 'a' | 'e' | 'i' | 'o' | 'u' -> "an " ^ k
  | _ -> "a " ^ k

let kind_to_string = function
  | K_module -> "module"
  | K_interface -> "interface"
  | K_struct -> "struct"
  | K_union -> "union"
  | K_enum -> "enum"
  | K_enum_member _ -> "enum member"
  | K_alias -> "typedef"
  | K_const -> "constant"
  | K_except -> "exception"

type entry = {
  e_qname : Sem.qname;
  e_kind : kind;
  e_loc : Loc.t;
  mutable e_defined : bool;  (** false only for pending forward interfaces *)
}

type scope = {
  s_qname : Sem.qname;
  s_parent : scope option;
  s_table : (string, entry) Hashtbl.t;
  mutable s_bases : scope list;  (** inherited interface scopes *)
  mutable s_members : Sem.qname list;  (** declaration order, reversed *)
}

(* The AST definition behind a qname, together with the scope in which its
   own type references must be resolved. *)
type source =
  | S_interface of A.interface_decl * scope (* scope = the interface's own *)
  | S_struct of A.struct_decl * scope
  | S_union of A.union_decl * scope
  | S_enum of A.enum_decl * scope
  | S_alias of Ast.type_spec * string * Loc.t * scope
  | S_const of A.const_decl * scope
  | S_except of A.except_decl * scope

type env = {
  root : scope;
  sources : (Sem.qname, source) Hashtbl.t;
  entities : (Sem.qname, Sem.entity) Hashtbl.t;
  in_progress : (Sem.qname, unit) Hashtbl.t;
  prefixes : (Sem.qname, string) Hashtbl.t;
      (** #pragma prefix in force at each declaration. *)
  mutable warnings : Diag.t list;
}

let repo_id env qn =
  Sem.repo_id_of_qname
    ~prefix:(Option.value ~default:"" (Hashtbl.find_opt env.prefixes qn))
    qn

(* Module and interface scopes are kept in side tables for re-opening and
   base-scope linking. Reset at each [spec] invocation. *)
let module_scopes : (Sem.qname, scope) Hashtbl.t = Hashtbl.create 16
let interface_scopes : (Sem.qname, scope) Hashtbl.t = Hashtbl.create 16
let register_module_scope s = Hashtbl.replace module_scopes s.s_qname s
let register_interface_scope s = Hashtbl.replace interface_scopes s.s_qname s

let find_module_scope qn =
  match Hashtbl.find_opt module_scopes qn with
  | Some s -> s
  | None -> invalid_arg "find_module_scope"

let new_scope ?parent qname =
  { s_qname = qname; s_parent = parent; s_table = Hashtbl.create 16;
    s_bases = []; s_members = [] }

(* [member] is false for names that participate in lookup but are not
   standalone entities of the scope (enum members). *)
let scope_add ?(member = true) scope ~name ~kind ~loc =
  (match Hashtbl.find_opt scope.s_table name with
  | Some prev when not (prev.e_kind = K_interface && not prev.e_defined) ->
      Diag.error ~code:"E002"
        ~notes:[ (prev.e_loc, "previous declaration is here") ]
        ~loc "redefinition of %S (previously declared as %s)" name
        (with_article (kind_to_string prev.e_kind))
  | _ -> ());
  let qname = scope.s_qname @ [ name ] in
  let entry = { e_qname = qname; e_kind = kind; e_loc = loc; e_defined = true } in
  Hashtbl.replace scope.s_table name entry;
  if member then scope.s_members <- qname :: scope.s_members;
  entry

(* ---------------- pass 1: collect declarations ----------------

   [prefix] is the #pragma prefix in force; it flows left to right
   through a scope's definitions and does not escape the scope. Each
   declared entity records the prefix in force at its declaration. *)

let rec collect_definition env scope prefix (def : A.definition) : string =
  let record entry =
    if prefix <> "" then Hashtbl.replace env.prefixes entry.e_qname prefix
  in
  match def with
  | A.D_pragma_prefix (p, _) -> p
  | A.D_module (name, defs, loc) ->
      let sub =
        match Hashtbl.find_opt scope.s_table name with
        | Some { e_kind = K_module; e_qname; _ } ->
            (* Module re-opening: reuse the existing scope. *)
            find_module_scope e_qname
        | Some prev ->
            Diag.error ~code:"E002" ~loc
              "redefinition of %S as a module (previously %s)" name
              (with_article (kind_to_string prev.e_kind))
        | None ->
            let _ = scope_add scope ~name ~kind:K_module ~loc in
            let sub = new_scope ~parent:scope (scope.s_qname @ [ name ]) in
            register_module_scope sub;
            sub
      in
      (match Hashtbl.find_opt scope.s_table name with
      | Some entry when prefix <> "" -> Hashtbl.replace env.prefixes entry.e_qname prefix
      | _ -> ());
      ignore
        (List.fold_left
           (fun pfx d ->
             Diag.recover ~default:pfx (fun () ->
                 collect_definition env sub pfx d))
           prefix defs);
      prefix
  | A.D_forward (name, loc) -> (
      match Hashtbl.find_opt scope.s_table name with
      | Some { e_kind = K_interface; _ } -> () (* repeat forward decl: ok *)
      | Some prev ->
          Diag.error ~code:"E002" ~loc
            "forward declaration of %S conflicts with a %s" name
            (kind_to_string prev.e_kind)
      | None ->
          let entry = scope_add scope ~name ~kind:K_interface ~loc in
          record entry;
          entry.e_defined <- false);
      prefix
  | A.D_interface i ->
      let entry =
        match Hashtbl.find_opt scope.s_table i.A.if_name with
        | Some ({ e_kind = K_interface; e_defined = false; _ } as e) ->
            e.e_defined <- true;
            (* Move to its definition position in declaration order. *)
            scope.s_members <-
              e.e_qname :: List.filter (fun q -> q <> e.e_qname) scope.s_members;
            e
        | Some prev ->
            Diag.error ~code:"E002" ~loc:i.A.if_loc
              "redefinition of interface %S (previously %s)" i.A.if_name
              (with_article (kind_to_string prev.e_kind))
        | None -> scope_add scope ~name:i.A.if_name ~kind:K_interface ~loc:i.A.if_loc
      in
      record entry;
      let sub = new_scope ~parent:scope entry.e_qname in
      register_interface_scope sub;
      Hashtbl.replace env.sources entry.e_qname (S_interface (i, sub));
      List.iter (collect_export env sub prefix) i.A.if_exports;
      prefix
  | A.D_typedef t ->
      List.iter
        (fun name ->
          let entry = scope_add scope ~name ~kind:K_alias ~loc:t.A.td_loc in
          record entry;
          Hashtbl.replace env.sources entry.e_qname
            (S_alias (t.A.td_type, name, t.A.td_loc, scope)))
        t.A.td_names;
      prefix
  | A.D_struct s ->
      let entry = scope_add scope ~name:s.A.st_name ~kind:K_struct ~loc:s.A.st_loc in
      record entry;
      Hashtbl.replace env.sources entry.e_qname (S_struct (s, scope));
      prefix
  | A.D_union u ->
      let entry = scope_add scope ~name:u.A.un_name ~kind:K_union ~loc:u.A.un_loc in
      record entry;
      Hashtbl.replace env.sources entry.e_qname (S_union (u, scope));
      prefix
  | A.D_enum e ->
      let entry = scope_add scope ~name:e.A.en_name ~kind:K_enum ~loc:e.A.en_loc in
      record entry;
      Hashtbl.replace env.sources entry.e_qname (S_enum (e, scope));
      (* Enum members live in the enclosing scope (CORBA rule) but are not
         standalone entities of it. *)
      List.iter
        (fun m ->
          ignore
            (scope_add ~member:false scope ~name:m
               ~kind:(K_enum_member entry.e_qname) ~loc:e.A.en_loc))
        e.A.en_members;
      prefix
  | A.D_const c ->
      let entry = scope_add scope ~name:c.A.cn_name ~kind:K_const ~loc:c.A.cn_loc in
      record entry;
      Hashtbl.replace env.sources entry.e_qname (S_const (c, scope));
      prefix
  | A.D_except x ->
      let entry = scope_add scope ~name:x.A.ex_name ~kind:K_except ~loc:x.A.ex_loc in
      record entry;
      Hashtbl.replace env.sources entry.e_qname (S_except (x, scope));
      prefix

and collect_export env scope prefix (ex : A.export) =
  match ex with
  | A.Ex_op _ | A.Ex_attr _ -> () (* collected during interface resolution *)
  | A.Ex_typedef t -> ignore (collect_definition env scope prefix (A.D_typedef t))
  | A.Ex_struct s -> ignore (collect_definition env scope prefix (A.D_struct s))
  | A.Ex_union u -> ignore (collect_definition env scope prefix (A.D_union u))
  | A.Ex_enum e -> ignore (collect_definition env scope prefix (A.D_enum e))
  | A.Ex_const c -> ignore (collect_definition env scope prefix (A.D_const c))
  | A.Ex_except x -> ignore (collect_definition env scope prefix (A.D_except x))

(* ---------------- name lookup ---------------- *)

let rec lookup_in_scope scope name =
  match Hashtbl.find_opt scope.s_table name with
  | Some e -> Some e
  | None ->
      (* Inherited interface scopes. *)
      List.find_map (fun base -> lookup_in_scope base name) scope.s_bases

let rec lookup_upward scope name =
  match lookup_in_scope scope name with
  | Some e -> Some e
  | None -> (
      match scope.s_parent with
      | Some parent -> lookup_upward parent name
      | None -> None)

let scope_of_entry entry =
  match entry.e_kind with
  | K_module -> Hashtbl.find_opt module_scopes entry.e_qname
  | K_interface -> Hashtbl.find_opt interface_scopes entry.e_qname
  | _ -> None

(* Resolve a scoped name starting from [scope]; returns its entry. *)
let resolve_name env scope (sn : A.scoped_name) =
  ignore env;
  let fail () =
    Diag.error ~code:"E003" ~loc:sn.A.sn_loc "unresolved name %S"
      (A.scoped_name_to_string sn)
  in
  let first, rest =
    match sn.A.parts with [] -> fail () | p :: ps -> (p, ps)
  in
  let start =
    if sn.A.absolute then
      let rec root s = match s.s_parent with Some p -> root p | None -> s in
      lookup_in_scope (root scope) first
    else lookup_upward scope first
  in
  let rec navigate entry = function
    | [] -> entry
    | part :: parts -> (
        match scope_of_entry entry with
        | None ->
            Diag.error ~code:"E011" ~loc:sn.A.sn_loc "%S is not a scope"
              (Sem.scoped_of_qname entry.e_qname)
        | Some s -> (
            match lookup_in_scope s part with
            | Some e -> navigate e parts
            | None -> fail ()))
  in
  match start with None -> fail () | Some entry -> navigate entry rest

(* ---------------- pass 2: resolution proper ---------------- *)

let rec resolve_entity env qn : Sem.entity =
  match Hashtbl.find_opt env.entities qn with
  | Some e -> e
  | None ->
      if Hashtbl.mem env.in_progress qn then (
        (* Anchor the cycle report at the entity's own declaration. *)
        let loc =
          match Hashtbl.find_opt env.sources qn with
          | Some (S_interface (i, _)) -> i.A.if_loc
          | Some (S_struct (st, _)) -> st.A.st_loc
          | Some (S_union (u, _)) -> u.A.un_loc
          | Some (S_enum (e, _)) -> e.A.en_loc
          | Some (S_alias (_, _, loc, _)) -> loc
          | Some (S_const (c, _)) -> c.A.cn_loc
          | Some (S_except (x, _)) -> x.A.ex_loc
          | None -> Loc.dummy
        in
        Diag.error ~code:"E004" ~loc "definition cycle involving %S"
          (Sem.scoped_of_qname qn));
      Hashtbl.replace env.in_progress qn ();
      (* [Fun.protect] so that an error escaping mid-resolution (recovered
         one level up in lint mode) does not leave [qn] marked in-progress
         and turn every later reference into a spurious cycle report. *)
      let e =
        Fun.protect
          ~finally:(fun () -> Hashtbl.remove env.in_progress qn)
          (fun () ->
            match Hashtbl.find_opt env.sources qn with
            | Some src -> resolve_source env qn src
            | None -> (
                (* A module, or a forward interface that was never defined. *)
                match Hashtbl.find_opt module_scopes qn with
                | Some s -> Sem.E_module (qn, List.rev s.s_members)
                | None ->
                    Diag.error ~code:"E003" ~loc:Loc.dummy
                      "interface %S was forward-declared but never defined"
                      (Sem.scoped_of_qname qn)))
      in
      Hashtbl.replace env.entities qn e;
      e

and resolve_source env qn = function
  | S_interface (i, own_scope) -> resolve_interface env qn i own_scope
  | S_struct (s, scope) ->
      let fields = resolve_fields env scope s.A.st_members in
      check_distinct ~loc:s.A.st_loc ~what:"struct member"
        (List.map (fun (f : Sem.field) -> f.f_name) fields);
      Sem.E_struct { s_qname = qn; s_repo_id = repo_id env qn; s_fields = fields }
  | S_union (u, scope) -> resolve_union env qn u scope
  | S_enum (e, _) ->
      check_distinct ~loc:e.A.en_loc ~what:"enum member" e.A.en_members;
      Sem.E_enum
        { e_qname = qn; e_repo_id = repo_id env qn; e_members = e.A.en_members }
  | S_alias (ty, _, loc, scope) ->
      let target = resolve_type env scope ~loc ty in
      (match target with
      | Ctype.Void ->
          Diag.error ~code:"E008" ~loc "cannot typedef 'void'"
      | _ -> ());
      Sem.E_alias
        { a_qname = qn; a_repo_id = repo_id env qn; a_target = target }
  | S_const (c, scope) ->
      let ty = resolve_type env scope ~loc:c.A.cn_loc c.A.cn_type in
      let value = eval_const env scope c.A.cn_value ~loc:c.A.cn_loc in
      let value = coerce_value env ~loc:c.A.cn_loc ty value in
      Sem.E_const
        { c_qname = qn; c_repo_id = repo_id env qn; c_type = ty; c_value = value }
  | S_except (x, scope) ->
      let fields = resolve_fields env scope x.A.ex_members in
      check_distinct ~loc:x.A.ex_loc ~what:"exception member"
        (List.map (fun (f : Sem.field) -> f.f_name) fields);
      Sem.E_except
        { x_qname = qn; x_repo_id = repo_id env qn; x_fields = fields }

and check_distinct ~loc ~what names =
  let seen = Hashtbl.create 8 in
  List.iter
    (fun n ->
      if Hashtbl.mem seen n then
        Diag.error ~code:"E009" ~loc "duplicate %s %S" what n
      else Hashtbl.add seen n ())
    names

and resolve_fields env scope members =
  List.concat_map
    (fun (m : A.struct_member) ->
      Diag.recover ~default:[] (fun () ->
          let ty = resolve_type env scope ~loc:m.A.sm_loc m.A.sm_type in
          if ty = Ctype.Void then
            Diag.error ~code:"E008" ~loc:m.A.sm_loc
              "struct members cannot have type 'void'";
          List.map (fun name -> { Sem.f_type = ty; f_name = name }) m.A.sm_names))
    members

and resolve_interface env qn (i : A.interface_decl) own_scope =
  (* Resolve the inheritance list first and link base scopes so that body
     references can see inherited names. *)
  let bases =
    List.map
      (fun sn ->
        let entry = resolve_name env own_scope sn in
        (match entry.e_kind with
        | K_interface -> ()
        | k ->
            Diag.error ~code:"E004" ~loc:sn.A.sn_loc
              "interface %S cannot inherit from %s %S" i.A.if_name
              (kind_to_string k)
              (Sem.scoped_of_qname entry.e_qname));
        if not entry.e_defined then
          Diag.error ~code:"E004" ~loc:sn.A.sn_loc
            "interface %S inherits from forward-declared (undefined) interface %S"
            i.A.if_name
            (Sem.scoped_of_qname entry.e_qname);
        entry.e_qname)
      i.A.if_inherits
  in
  check_distinct ~loc:i.A.if_loc ~what:"inherited interface"
    (List.map Sem.scoped_of_qname bases);
  (* Force base resolution (detects inheritance cycles via in_progress). *)
  let base_entities =
    List.map
      (fun bqn ->
        match resolve_entity env bqn with
        | Sem.E_interface bi -> bi
        | _ ->
            Diag.error ~code:"E004" ~loc:i.A.if_loc "%S is not an interface"
              (Sem.scoped_of_qname bqn))
      bases
  in
  own_scope.s_bases <-
    List.filter_map (fun b -> Hashtbl.find_opt interface_scopes b) bases;
  (* Per-operation/per-attribute recovery: in lint mode a broken signature
     is reported and skipped, so the remaining exports are still checked. *)
  let ops =
    List.filter_map
      (function
        | A.Ex_op op ->
            Diag.recover ~default:None (fun () ->
                Some (resolve_operation env own_scope op))
        | _ -> None)
      i.A.if_exports
  in
  let attrs =
    List.concat_map
      (function
        | A.Ex_attr at ->
            Diag.recover ~default:[] (fun () ->
                let ty = resolve_type env own_scope ~loc:at.A.at_loc at.A.at_type in
                if ty = Ctype.Void then
                  Diag.error ~code:"E008" ~loc:at.A.at_loc
                    "attributes cannot have type 'void'";
                List.map
                  (fun name ->
                    { Sem.at_readonly = at.A.at_readonly; at_type = ty;
                      at_name = name })
                  at.A.at_names)
        | _ -> [])
      i.A.if_exports
  in
  (* Name clash checks: local ops/attrs vs each other and vs inherited. *)
  let local_names =
    List.map (fun (o : Sem.operation) -> o.op_name) ops
    @ List.map (fun (a : Sem.attribute) -> a.at_name) attrs
  in
  check_distinct ~loc:i.A.if_loc ~what:"operation or attribute" local_names;
  let mk_sem_interface () =
    {
      Sem.i_qname = qn;
      i_repo_id = repo_id env qn;
      i_inherits = bases;
      i_ops = ops;
      i_attrs = attrs;
      i_decls = List.rev own_scope.s_members;
    }
  in
  let self = mk_sem_interface () in
  let inherited_ops =
    List.concat_map (fun b -> Sem.all_operations (spec_view env) b) base_entities
  in
  let inherited_attrs =
    List.concat_map (fun b -> Sem.all_attributes (spec_view env) b) base_entities
  in
  let inherited_names =
    List.map (fun (o : Sem.operation) -> o.op_name) inherited_ops
    @ List.map (fun (a : Sem.attribute) -> a.at_name) inherited_attrs
  in
  List.iter
    (fun n ->
      if List.mem n inherited_names then
        Diag.error ~code:"E009" ~loc:i.A.if_loc
          "interface %S redefines inherited operation or attribute %S"
          i.A.if_name n)
    local_names;
  Sem.E_interface self

(* A read-only Sem.spec view over the entities resolved so far; used for
   inherited-name computations during resolution. *)
and spec_view env =
  { Sem.entities = env.entities; toplevel = []; prefixes = env.prefixes;
    warnings = [] }

and resolve_operation env scope (op : A.operation) : Sem.operation =
  let ret = resolve_type env scope ~loc:op.A.op_loc op.A.op_return in
  let params =
    List.map
      (fun (p : A.param) ->
        let ty = resolve_type env scope ~loc:p.A.p_loc p.A.p_type in
        if ty = Ctype.Void then
          Diag.error ~code:"E008" ~loc:p.A.p_loc
            "parameter %S cannot have type 'void'" p.A.p_name;
        if op.A.op_oneway && p.A.p_mode <> A.In && p.A.p_mode <> A.Incopy then
          Diag.error ~code:"E005" ~loc:p.A.p_loc
            "oneway operation %S cannot have 'out' or 'inout' parameters"
            op.A.op_name;
        let default =
          Option.map
            (fun e ->
              let v = eval_const env scope e ~loc:p.A.p_loc in
              coerce_value env ~loc:p.A.p_loc ty v)
            p.A.p_default
        in
        { Sem.p_mode = p.A.p_mode; p_type = ty; p_name = p.A.p_name;
          p_default = default })
      op.A.op_params
  in
  check_distinct ~loc:op.A.op_loc ~what:"parameter"
    (List.map (fun (p : Sem.param) -> p.p_name) params);
  if op.A.op_oneway && op.A.op_raises <> [] then
    Diag.error ~code:"E005" ~loc:op.A.op_loc
      "oneway operation %S cannot have a raises clause" op.A.op_name;
  let raises =
    List.map
      (fun sn ->
        let entry = resolve_name env scope sn in
        match entry.e_kind with
        | K_except -> entry.e_qname
        | k ->
            Diag.error ~code:"E011" ~loc:sn.A.sn_loc
              "raises clause of %S names %S which is a %s, not an exception"
              op.A.op_name
              (Sem.scoped_of_qname entry.e_qname)
              (kind_to_string k))
      op.A.op_raises
  in
  {
    Sem.op_oneway = op.A.op_oneway;
    op_return = ret;
    op_name = op.A.op_name;
    op_params = params;
    op_raises = raises;
  }

and resolve_union env qn (u : A.union_decl) scope =
  let disc = resolve_type env scope ~loc:u.A.un_loc u.A.un_disc in
  let disc_root = Ctype.resolve_alias disc in
  (match disc_root with
  | Ctype.Short | Ctype.Long | Ctype.Long_long | Ctype.Unsigned_short
  | Ctype.Unsigned_long | Ctype.Unsigned_long_long | Ctype.Char | Ctype.Boolean
  | Ctype.Enum _ ->
      ()
  | _ ->
      Diag.error ~code:"E007" ~loc:u.A.un_loc
        "union %S has an invalid discriminator type %s (must be an integer, \
         char, boolean or enum type)"
        u.A.un_name (Ctype.to_string disc));
  let seen_labels : (string, unit) Hashtbl.t = Hashtbl.create 8 in
  let seen_default = ref false in
  let cases =
    List.map
      (fun (c : A.union_case) ->
        let ty = resolve_type env scope ~loc:c.A.uc_loc c.A.uc_type in
        if ty = Ctype.Void then
          Diag.error ~code:"E008" ~loc:c.A.uc_loc
            "union case %S cannot have type 'void'" c.A.uc_name;
        let labels =
          List.map
            (function
              | A.Case_default ->
                  if !seen_default then
                    Diag.error ~code:"E007" ~loc:c.A.uc_loc
                      "union %S has more than one default case" u.A.un_name;
                  seen_default := true;
                  None
              | A.Case_value e ->
                  let v = eval_const env scope e ~loc:c.A.uc_loc in
                  let v = coerce_value env ~loc:c.A.uc_loc disc v in
                  let key = Value.to_string v in
                  if Hashtbl.mem seen_labels key then
                    Diag.error ~code:"E007" ~loc:c.A.uc_loc
                      "duplicate case label %s in union %S" key u.A.un_name;
                  Hashtbl.add seen_labels key ();
                  Some v)
            c.A.uc_labels
        in
        { Sem.uc_labels = labels; uc_type = ty; uc_name = c.A.uc_name })
      u.A.un_cases
  in
  check_distinct ~loc:u.A.un_loc ~what:"union case"
    (List.map (fun (c : Sem.union_case) -> c.uc_name) cases);
  Sem.E_union
    { u_qname = qn; u_repo_id = repo_id env qn; u_disc = disc; u_cases = cases }

(* ---------------- types ---------------- *)

and resolve_type env scope ~loc (ty : A.type_spec) : Ctype.t =
  match ty with
  | A.Void -> Ctype.Void
  | A.Short -> Ctype.Short
  | A.Long -> Ctype.Long
  | A.Long_long -> Ctype.Long_long
  | A.Unsigned_short -> Ctype.Unsigned_short
  | A.Unsigned_long -> Ctype.Unsigned_long
  | A.Unsigned_long_long -> Ctype.Unsigned_long_long
  | A.Float -> Ctype.Float
  | A.Double -> Ctype.Double
  | A.Boolean -> Ctype.Boolean
  | A.Char -> Ctype.Char
  | A.Octet -> Ctype.Octet
  | A.Any -> Ctype.Any
  | A.String b -> Ctype.String b
  | A.Sequence (elem, b) ->
      let e = resolve_type env scope ~loc elem in
      if e = Ctype.Void then
        Diag.error ~code:"E008" ~loc "sequences of 'void' are not allowed";
      Ctype.Sequence (e, b)
  | A.Named sn -> (
      let entry = resolve_name env scope sn in
      let flat = Sem.flat_of_qname entry.e_qname in
      match entry.e_kind with
      | K_interface -> Ctype.Objref flat
      | K_struct -> Ctype.Struct flat
      | K_union -> Ctype.Union flat
      | K_enum -> Ctype.Enum flat
      | K_alias -> (
          match resolve_entity env entry.e_qname with
          | Sem.E_alias a -> Ctype.Alias (flat, a.a_target)
          | _ -> assert false)
      | k ->
          Diag.error ~code:"E011" ~loc:sn.A.sn_loc "%S is a %s, not a type"
            (A.scoped_name_to_string sn) (kind_to_string k))

(* ---------------- constant expressions ---------------- *)

and eval_const env scope (e : A.const_expr) ~loc : Value.t =
  let module V = Value in
  let rec go (e : A.const_expr) : V.t =
    match e with
    | A.Int_lit i -> V.V_int i
    | A.Float_lit f -> V.V_float f
    | A.Bool_lit b -> V.V_bool b
    | A.Char_lit c -> V.V_char c
    | A.String_lit s -> V.V_string s
    | A.Name_ref sn -> (
        let entry = resolve_name env scope sn in
        match entry.e_kind with
        | K_enum_member enum_qn ->
            let member = List.nth entry.e_qname (List.length entry.e_qname - 1) in
            V.V_enum (Sem.flat_of_qname enum_qn, member)
        | K_const -> (
            match resolve_entity env entry.e_qname with
            | Sem.E_const c -> c.c_value
            | _ -> assert false)
        | k ->
            Diag.error ~code:"E011" ~loc:sn.A.sn_loc
              "%S is a %s and cannot appear in a constant expression"
              (A.scoped_name_to_string sn) (kind_to_string k))
    | A.Unary (op, x) -> (
        let v = go x in
        match (op, v) with
        | A.Pos, (V.V_int _ | V.V_float _) -> v
        | A.Neg, V.V_int i -> V.V_int (Int64.neg i)
        | A.Neg, V.V_float f -> V.V_float (-.f)
        | A.Bit_not, V.V_int i -> V.V_int (Int64.lognot i)
        | _ ->
            Diag.error ~code:"E006" ~loc "invalid operand %s for unary operator"
              (V.to_string v))
    | A.Binary (op, a, b) -> (
        let va = go a and vb = go b in
        match (op, va, vb) with
        | A.Add, V.V_int x, V.V_int y -> V.V_int (Int64.add x y)
        | A.Sub, V.V_int x, V.V_int y -> V.V_int (Int64.sub x y)
        | A.Mul, V.V_int x, V.V_int y -> V.V_int (Int64.mul x y)
        | A.Div, V.V_int _, V.V_int 0L ->
            Diag.error ~code:"E006" ~loc "division by zero"
        | A.Div, V.V_int x, V.V_int y -> V.V_int (Int64.div x y)
        | A.Mod, V.V_int _, V.V_int 0L ->
            Diag.error ~code:"E006" ~loc "modulo by zero"
        | A.Mod, V.V_int x, V.V_int y -> V.V_int (Int64.rem x y)
        | A.Or, V.V_int x, V.V_int y -> V.V_int (Int64.logor x y)
        | A.Xor, V.V_int x, V.V_int y -> V.V_int (Int64.logxor x y)
        | A.And, V.V_int x, V.V_int y -> V.V_int (Int64.logand x y)
        | A.Shift_left, V.V_int x, V.V_int y when y >= 0L && y < 64L ->
            V.V_int (Int64.shift_left x (Int64.to_int y))
        | A.Shift_right, V.V_int x, V.V_int y when y >= 0L && y < 64L ->
            V.V_int (Int64.shift_right_logical x (Int64.to_int y))
        | (A.Shift_left | A.Shift_right), V.V_int _, V.V_int y ->
            Diag.error ~code:"E006" ~loc "shift amount %Ld out of range [0, 63]" y
        | (A.Add | A.Sub | A.Mul | A.Div), _, _ -> (
            (* Promote mixed int/float arithmetic to float. *)
            let fl = function
              | V.V_float f -> f
              | V.V_int i -> Int64.to_float i
              | v ->
                  Diag.error ~code:"E006" ~loc
                    "invalid operand %s in arithmetic expression" (V.to_string v)
            in
            let x = fl va and y = fl vb in
            match op with
            | A.Add -> V.V_float (x +. y)
            | A.Sub -> V.V_float (x -. y)
            | A.Mul -> V.V_float (x *. y)
            | A.Div ->
                if y = 0. then Diag.error ~code:"E006" ~loc "division by zero"
                else V.V_float (x /. y)
            | _ -> assert false)
        | _ ->
            Diag.error ~code:"E006" ~loc
              "invalid operands %s and %s for binary operator" (V.to_string va)
              (V.to_string vb))
  in
  go e

(* Check that a value is compatible with a declared type and normalize it
   (e.g. int literal for a float constant). *)
and coerce_value env ~loc ty v =
  ignore env;
  let module V = Value in
  let fail () =
    Diag.error ~code:"E006" ~loc "value %s is not compatible with type %s"
      (V.to_string v) (Ctype.to_string ty)
  in
  let check_range lo hi i = if i < lo || i > hi then fail () else V.V_int i in
  match (Ctype.resolve_alias ty, v) with
  | Ctype.Short, V.V_int i -> check_range (-32768L) 32767L i
  | Ctype.Unsigned_short, V.V_int i -> check_range 0L 65535L i
  | Ctype.Long, V.V_int i -> check_range (-2147483648L) 2147483647L i
  | Ctype.Unsigned_long, V.V_int i -> check_range 0L 4294967295L i
  | Ctype.Long_long, V.V_int i -> V.V_int i
  | Ctype.Unsigned_long_long, V.V_int i ->
      if i < 0L then fail () else V.V_int i
  | Ctype.Octet, V.V_int i -> check_range 0L 255L i
  | Ctype.Float, V.V_float f -> V.V_float f
  | Ctype.Float, V.V_int i -> V.V_float (Int64.to_float i)
  | Ctype.Double, V.V_float f -> V.V_float f
  | Ctype.Double, V.V_int i -> V.V_float (Int64.to_float i)
  | Ctype.Boolean, V.V_bool b -> V.V_bool b
  | Ctype.Char, V.V_char c -> V.V_char c
  | Ctype.String bound, V.V_string s -> (
      match bound with
      | Some b when String.length s > b -> fail ()
      | _ -> V.V_string s)
  | Ctype.Enum ename, V.V_enum (e, _) -> if e = ename then v else fail ()
  | _ -> fail ()

(* ---------------- entry point ---------------- *)

let spec (ast : A.spec) : Sem.spec =
  Hashtbl.reset module_scopes;
  Hashtbl.reset interface_scopes;
  let root = new_scope [] in
  let env =
    {
      root;
      sources = Hashtbl.create 64;
      entities = Hashtbl.create 64;
      in_progress = Hashtbl.create 8;
      prefixes = Hashtbl.create 8;
      warnings = [];
    }
  in
  (* Each top-of-scope definition and each entity resolution is a recovery
     point: in lint mode (an installed Diag reporter) a failure there is
     accumulated and the remaining declarations still get checked; without
     a reporter [Diag.recover] is transparent and the first error aborts,
     exactly as before. *)
  ignore
    (List.fold_left
       (fun pfx d ->
         Diag.recover ~default:pfx (fun () -> collect_definition env root pfx d))
       "" ast);
  let toplevel = List.rev root.s_members in
  (* Resolve every declared entity (depth-first through modules). Forward
     declarations that were never completed have no source and are only
     warned about, never forced. *)
  let resolve qn = Diag.recover ~default:() (fun () -> ignore (resolve_entity env qn)) in
  let rec force qn =
    if Hashtbl.mem env.sources qn then resolve qn;
    match Hashtbl.find_opt module_scopes qn with
    | Some s ->
        resolve qn;
        List.iter force (List.rev s.s_members)
    | None -> ()
  in
  List.iter force toplevel;
  Hashtbl.iter (fun qn _ -> resolve qn) env.sources;
  (* Flag forward declarations that were never completed. *)
  let warn_undefined scope =
    Hashtbl.iter
      (fun name entry ->
        if (not entry.e_defined) && entry.e_kind = K_interface then
          env.warnings <-
            Diag.warning ~code:"W107" ~loc:entry.e_loc
              "interface %S was forward-declared but never defined" name
            :: env.warnings)
      scope.s_table
  in
  warn_undefined root;
  Hashtbl.iter (fun _ s -> warn_undefined s) module_scopes;
  (* Drop never-defined forwards from member lists so downstream passes see
     only resolvable entities. *)
  let resolvable qn = Hashtbl.mem env.entities qn in
  let toplevel = List.filter resolvable toplevel in
  Hashtbl.iter
    (fun qn e ->
      match e with
      | Sem.E_module (_, members) ->
          Hashtbl.replace env.entities qn
            (Sem.E_module (qn, List.filter resolvable members))
      | _ -> ())
    env.entities;
  { Sem.entities = env.entities; toplevel; prefixes = env.prefixes;
    warnings = env.warnings }
