(** IDL lint passes over the resolved semantic model.

    Each pass walks the {!Est.Sem.spec} produced by {!Est.Resolve.spec}
    and reports findings to an {!Idl.Diag.reporter}. The passes here check
    properties the compiler proper does not enforce — hygiene and
    portability rules that only matter once mappings and protocols are
    user-supplied data (the paper's setting): a colliding repository ID or
    a target-keyword clash produces generated code that fails far from its
    cause, which is exactly what [idlc lint] exists to prevent. *)

module Sem = Est.Sem
module Ctype = Est.Ctype
module Diag = Idl.Diag

let last qn = List.nth qn (List.length qn - 1)

(* Sem carries no per-entity locations (the EST is location-free by
   design, Fig. 8), so lint findings anchor to the file's origin. *)
let file_loc file = Idl.Loc.make ~file ~line:0 ~col:0

(* ---------------- W101: case-insensitive collisions ----------------

   CORBA identifier lookup is case-insensitive (IDL 3.2.3): two names in
   one scope that differ only in case collide. The resolver's tables are
   case-sensitive (historic behaviour kept for compatibility), so this is
   a lint finding. Scopes checked: each module's members, each interface's
   operations/attributes/nested declarations, struct/exception fields,
   union cases, enum members. *)

let check_case_collisions reporter ~file spec =
  let loc = file_loc file in
  let check_scope ~what names =
    let seen : (string, string) Hashtbl.t = Hashtbl.create 8 in
    List.iter
      (fun n ->
        let key = String.lowercase_ascii n in
        match Hashtbl.find_opt seen key with
        | Some prev when prev <> n ->
            Diag.report reporter
              (Diag.warning ~code:"W101" ~loc
                 "names %S and %S in %s differ only in case (CORBA lookup \
                  is case-insensitive)"
                 prev n what)
        | Some _ -> () (* exact duplicate: E002/E009 territory *)
        | None -> Hashtbl.add seen key n)
      names
  in
  check_scope ~what:"the global scope" (List.map last spec.Sem.toplevel);
  List.iter
    (fun e ->
      match e with
      | Sem.E_module (qn, members) ->
          check_scope
            ~what:(Printf.sprintf "module %S" (Sem.scoped_of_qname qn))
            (List.map last members)
      | Sem.E_interface i ->
          check_scope
            ~what:(Printf.sprintf "interface %S" (Sem.scoped_of_qname i.i_qname))
            (List.map (fun (o : Sem.operation) -> o.op_name) i.i_ops
            @ List.map (fun (a : Sem.attribute) -> a.at_name) i.i_attrs
            @ List.map last i.i_decls);
          List.iter
            (fun (op : Sem.operation) ->
              check_scope
                ~what:
                  (Printf.sprintf "the parameters of %s::%s"
                     (Sem.scoped_of_qname i.i_qname) op.op_name)
                (List.map (fun (p : Sem.param) -> p.p_name) op.op_params))
            i.i_ops
      | Sem.E_struct s ->
          check_scope
            ~what:(Printf.sprintf "struct %S" (Sem.scoped_of_qname s.s_qname))
            (List.map (fun (f : Sem.field) -> f.f_name) s.s_fields)
      | Sem.E_except x ->
          check_scope
            ~what:(Printf.sprintf "exception %S" (Sem.scoped_of_qname x.x_qname))
            (List.map (fun (f : Sem.field) -> f.f_name) x.x_fields)
      | Sem.E_union u ->
          check_scope
            ~what:(Printf.sprintf "union %S" (Sem.scoped_of_qname u.u_qname))
            (List.map (fun (c : Sem.union_case) -> c.uc_name) u.u_cases)
      | Sem.E_enum en ->
          check_scope
            ~what:(Printf.sprintf "enum %S" (Sem.scoped_of_qname en.e_qname))
            en.e_members
      | _ -> ())
    (Sem.all_entities spec)

(* ---------------- W103: incopy on non-interface types ---------------- *)

let check_incopy reporter ~file spec =
  let loc = file_loc file in
  List.iter
    (fun (i : Sem.interface) ->
      List.iter
        (fun (op : Sem.operation) ->
          List.iter
            (fun (p : Sem.param) ->
              match (p.p_mode, Ctype.resolve_alias p.p_type) with
              | Idl.Ast.Incopy, Ctype.Objref _ -> ()
              | Idl.Ast.Incopy, _ ->
                  Diag.report reporter
                    (Diag.warning ~code:"W103" ~loc
                       "parameter %S of %s::%s is 'incopy' but its type %s \
                        is not an interface ('incopy' only differs from \
                        'in' for object references)"
                       p.p_name
                       (Sem.scoped_of_qname i.i_qname)
                       op.op_name (Ctype.to_string p.p_type))
              | _ -> ())
            op.op_params)
        i.i_ops)
    (Sem.all_interfaces spec)

(* ---------------- W104: unused declarations ----------------

   Reference graph: every Ctype mentioned by operations, attributes,
   fields, cases, discriminators, alias targets and const types marks its
   named root (and nested names) as used; enum references from folded
   constant/default values count too. Interfaces and modules are entry
   points and never flagged. Conservative by construction: consts cannot
   be tracked through folding, so consts are exempt unless nothing at all
   refers to their type's enum... keep it simple: consts are never flagged
   either (their uses are folded away by the resolver). *)

let check_unused reporter ~file spec =
  let loc = file_loc file in
  let used : (string, unit) Hashtbl.t = Hashtbl.create 32 in
  let rec mark_type t =
    (match Ctype.flat_name t with Some f -> Hashtbl.replace used f () | None -> ());
    match t with
    | Ctype.Sequence (e, _) -> mark_type e
    | Ctype.Alias (_, target) -> mark_type target
    | _ -> ()
  in
  let mark_value = function
    | Est.Value.V_enum (e, _) -> Hashtbl.replace used e ()
    | _ -> ()
  in
  let mark_fields = List.iter (fun (f : Sem.field) -> mark_type f.f_type) in
  Hashtbl.iter
    (fun _ e ->
      match e with
      | Sem.E_interface i ->
          List.iter
            (fun (op : Sem.operation) ->
              mark_type op.op_return;
              List.iter
                (fun (p : Sem.param) ->
                  mark_type p.p_type;
                  Option.iter mark_value p.p_default)
                op.op_params;
              List.iter
                (fun xqn -> Hashtbl.replace used (Sem.flat_of_qname xqn) ())
                op.op_raises)
            i.i_ops;
          List.iter (fun (a : Sem.attribute) -> mark_type a.at_type) i.i_attrs
      | Sem.E_struct s -> mark_fields s.s_fields
      | Sem.E_except x -> mark_fields x.x_fields
      | Sem.E_union u ->
          mark_type u.u_disc;
          List.iter
            (fun (c : Sem.union_case) ->
              mark_type c.uc_type;
              List.iter (function Some v -> mark_value v | None -> ()) c.uc_labels)
            u.u_cases
      | Sem.E_alias a -> mark_type a.a_target
      | Sem.E_const c ->
          mark_type c.c_type;
          mark_value c.c_value
      | _ -> ())
    spec.Sem.entities;
  List.iter
    (fun e ->
      let flag what qn =
        if not (Hashtbl.mem used (Sem.flat_of_qname qn)) then
          Diag.report reporter
            (Diag.warning ~code:"W104" ~loc "%s %S is never used" what
               (Sem.scoped_of_qname qn))
      in
      match e with
      | Sem.E_struct s -> flag "struct" s.s_qname
      | Sem.E_union u -> flag "union" u.u_qname
      | Sem.E_enum en -> flag "enum" en.e_qname
      | Sem.E_alias a -> flag "typedef" a.a_qname
      | Sem.E_except x -> flag "exception" x.x_qname
      | Sem.E_module _ | Sem.E_interface _ | Sem.E_const _ -> ())
    (Sem.all_entities spec)

(* ---------------- W105: target-keyword collisions ---------------- *)

let check_keywords reporter ~file ~mappings spec =
  let loc = file_loc file in
  let offenders ident =
    List.filter_map
      (fun (m : Mappings.Mapping.t) ->
        if Mappings.Mapping.is_reserved m ident then Some m.Mappings.Mapping.name
        else None)
      mappings
  in
  let check ~what ident =
    match offenders ident with
    | [] -> ()
    | ms ->
        Diag.report reporter
          (Diag.warning ~code:"W105" ~loc
             "%s %S is a reserved word in the target language of mapping%s %s"
             what ident
             (if List.length ms > 1 then "s" else "")
             (String.concat ", " ms))
  in
  List.iter
    (fun e ->
      match e with
      | Sem.E_module (qn, _) -> check ~what:"module name" (last qn)
      | Sem.E_interface i ->
          check ~what:"interface name" (last i.i_qname);
          List.iter
            (fun (op : Sem.operation) ->
              check ~what:"operation name" op.op_name;
              List.iter
                (fun (p : Sem.param) -> check ~what:"parameter name" p.p_name)
                op.op_params)
            i.i_ops;
          List.iter
            (fun (a : Sem.attribute) -> check ~what:"attribute name" a.at_name)
            i.i_attrs
      | Sem.E_struct s ->
          check ~what:"struct name" (last s.s_qname);
          List.iter
            (fun (f : Sem.field) -> check ~what:"member name" f.f_name)
            s.s_fields
      | Sem.E_except x ->
          check ~what:"exception name" (last x.x_qname);
          List.iter
            (fun (f : Sem.field) -> check ~what:"member name" f.f_name)
            x.x_fields
      | Sem.E_union u ->
          check ~what:"union name" (last u.u_qname);
          List.iter
            (fun (c : Sem.union_case) -> check ~what:"case name" c.uc_name)
            u.u_cases
      | Sem.E_enum en ->
          check ~what:"enum name" (last en.e_qname);
          List.iter (fun m -> check ~what:"enum member name" m) en.e_members
      | Sem.E_alias a -> check ~what:"typedef name" (last a.a_qname)
      | Sem.E_const c -> check ~what:"constant name" (last c.c_qname))
    (Sem.all_entities spec)

(* ---------------- W106: ambiguous diamond inheritance ----------------

   For each direct base, map every visible operation/attribute name to the
   ancestor interface that defines it. A name visible through two direct
   bases with *different* defining interfaces is ambiguous; the shared-
   diamond-root case (same definer along both paths) is fine. *)

let check_diamond reporter ~file spec =
  let loc = file_loc file in
  let definers_of_base bqn =
    (* name -> defining interface qname, innermost definition wins *)
    let tbl : (string, Sem.qname) Hashtbl.t = Hashtbl.create 16 in
    (match Sem.find_interface spec bqn with
    | None -> ()
    | Some b ->
        let line_of (i : Sem.interface) =
          List.iter
            (fun (o : Sem.operation) -> Hashtbl.replace tbl o.op_name i.i_qname)
            i.i_ops;
          List.iter
            (fun (a : Sem.attribute) -> Hashtbl.replace tbl a.at_name i.i_qname)
            i.i_attrs
        in
        List.iter line_of (Sem.ancestors spec b);
        line_of b);
    tbl
  in
  List.iter
    (fun (i : Sem.interface) ->
      match i.i_inherits with
      | [] | [ _ ] -> ()
      | bases ->
          let maps = List.map (fun b -> (b, definers_of_base b)) bases in
          let reported : (string, unit) Hashtbl.t = Hashtbl.create 4 in
          List.iteri
            (fun idx (b1, m1) ->
              List.iteri
                (fun jdx (b2, m2) ->
                  if jdx > idx then
                    Hashtbl.iter
                      (fun name def1 ->
                        match Hashtbl.find_opt m2 name with
                        | Some def2
                          when def1 <> def2 && not (Hashtbl.mem reported name) ->
                            Hashtbl.replace reported name ();
                            Diag.report reporter
                              (Diag.warning ~code:"W106" ~loc
                                 "interface %S inherits %S ambiguously: \
                                  defined by %S (via %S) and by %S (via %S)"
                                 (Sem.scoped_of_qname i.i_qname)
                                 name
                                 (Sem.scoped_of_qname def1)
                                 (Sem.scoped_of_qname b1)
                                 (Sem.scoped_of_qname def2)
                                 (Sem.scoped_of_qname b2))
                        | _ -> ())
                      m1)
                maps)
            maps)
    (Sem.all_interfaces spec)

(* ---------------- E010: repository-ID collisions ---------------- *)

let check_repo_ids reporter ~file spec =
  let loc = file_loc file in
  let seen : (string, Sem.qname) Hashtbl.t = Hashtbl.create 32 in
  List.iter
    (fun e ->
      let qn = Sem.entity_qname e in
      let id = Sem.repo_id spec qn in
      match Hashtbl.find_opt seen id with
      | Some prev when prev <> qn ->
          Diag.report reporter
            (Diag.make ~code:"E010" ~severity:Diag.Error ~loc
               (Printf.sprintf
                  "repository ID %S is produced by both %S and %S (check \
                   '#pragma prefix')"
                  id
                  (Sem.scoped_of_qname prev)
                  (Sem.scoped_of_qname qn)))
      | Some _ -> ()
      | None -> Hashtbl.add seen id qn)
    (Sem.all_entities spec)

(* ---------------- driver ---------------- *)

let default_passes = [ "W101"; "W103"; "W104"; "W105"; "W106"; "E010" ]

let check_spec ?(mappings = Mappings.Registry.all) reporter ~file spec =
  (* Resolver warnings (W107 etc.) surface through the same reporter. *)
  List.iter (Diag.report reporter) (List.rev spec.Sem.warnings);
  check_case_collisions reporter ~file spec;
  check_incopy reporter ~file spec;
  check_unused reporter ~file spec;
  check_keywords reporter ~file ~mappings spec;
  check_diamond reporter ~file spec;
  check_repo_ids reporter ~file spec

(* Parse + resolve with recovery + run every pass. Returns the resolved
   spec when the front-end got far enough to produce one. *)
let run_source ?mappings reporter ~filename src =
  Diag.with_reporter reporter (fun () ->
      match
        Diag.recover ~default:None (fun () ->
            Some (Idl.Parser.parse_string ~filename src))
      with
      | None -> None (* syntax error: already reported; nothing to lint *)
      | Some ast ->
          let spec = Est.Resolve.spec ast in
          check_spec ?mappings reporter ~file:filename spec;
          Some spec)

let run_file ?mappings reporter path =
  let src =
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  run_source ?mappings reporter ~filename:path src
