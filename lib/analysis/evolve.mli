(** Interface-evolution checker: diffs the current EST against an IR
    snapshot ({!Core.Repository}) and classifies differences.

    Wire-breaking (errors): [V301] removed interface/operation/attribute,
    [V302] changed signature (parameter modes/types/count, return type,
    oneway-ness, raises clause, attribute type/qualifier), [V303] changed
    repository ID, [V304] reordered surviving operations (the compact
    protocol encodings address operations by index). Benign additions are
    reported as [W310] warnings. Parameter renames are benign: names are
    not marshaled. *)

val diff_roots :
  Idl.Diag.reporter -> file:string -> old_root:Est.Node.t -> Est.Node.t -> unit
(** Diff two EST roots, matching interfaces by scoped name. [file] anchors
    the diagnostics. *)

val against :
  Idl.Diag.reporter -> ir_dir:string -> file:string -> Est.Node.t -> bool
(** Diff an EST against the snapshot stored for its [fileBase] unit in
    [ir_dir]. Returns [false] when the repository holds no snapshot for
    the unit (nothing was compared). *)

val wire_compatible : old_root:Est.Node.t -> Est.Node.t -> bool
(** The V301–V304 verdict as a boolean: [true] iff diffing [old_root]
    against the new root produces no wire-breaking error. Benign [W310]
    additions do not count against compatibility. *)

val codec_compat :
  snapshots:(int -> Est.Node.t option) ->
  name:string ->
  offered:int ->
  local:int ->
  bool
(** Evolution-model policy for [Orb.create ?codec_compat]: codec
    versions label interface snapshots ([snapshots v] returns the EST
    published under version [v]); an (offered, local) pair is
    compatible iff the versions are equal or the older snapshot is
    {!wire_compatible} with the newer. Versions with no snapshot are
    incompatible, so peers fall back to the base protocol rather than
    guess. *)
