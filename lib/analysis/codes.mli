(** The table of stable diagnostic codes.

    Families: [E0xx] front-end errors, [W1xx] lint findings, [T2xx]
    template-checker findings, [V3xx] evolution findings ([W310] = benign
    evolution), [C4xx] concurrency findings over the ORB's own sources
    ([idlc analyze-conc], see {!Conc}). [idlc lint --explain CODE] prints
    the long-form entry. *)

type info = {
  code : string;
  severity : Idl.Diag.severity;  (** Default severity. *)
  summary : string;  (** One line. *)
  explain : string;  (** Long-form rationale for [--explain]. *)
}

val all : info list
(** Every code [idlc] can emit, in family order. *)

val find : string -> info option
val is_known : string -> bool

val explain : string -> string option
(** The formatted [--explain] text for a code, or [None] if unknown. *)

val table : unit -> string
(** A one-line-per-code listing of all codes. *)
