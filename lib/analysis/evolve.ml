(** Interface-evolution checker: diffs the current EST against an IR
    snapshot ({!Core.Repository}) and classifies each difference as
    wire-breaking or benign.

    "Wire-breaking" is judged against the protocols in this repo (and the
    paper's Section 5 ESIOP variants): peers built from the snapshot
    marshal requests using operation signatures, dispatch by repository ID,
    and — for the compact encodings — address operations by index. So a
    removed or re-typed operation (V301/V302), a changed repository ID
    (V303), and a reordering of surviving operations (V304) all break
    deployed peers, while additions (W310) are invisible to them. *)

module Node = Est.Node
module Diag = Idl.Diag

let file_loc file = Idl.Loc.make ~file ~line:0 ~col:0

let prop n key = Node.prop_or n key ~default:""

(* Index a group's nodes by a key property, preserving order. *)
let index_by key nodes =
  List.map (fun n -> (prop n key, n)) nodes

(* The wire-relevant signature of a parameter / operation / attribute,
   rendered as a comparable string. Parameter names are excluded: they are
   not marshaled, so renaming one is benign. *)
let param_sig p = prop p "paramMode" ^ " " ^ prop p "type"

let op_sig op =
  let raises =
    List.map (fun r -> prop r "repoId") (Node.group op "raisesList")
  in
  (if prop op "isOneway" = "true" then "oneway " else "")
  ^ prop op "returnType"
  ^ " ("
  ^ String.concat ", " (List.map param_sig (Node.group op "paramList"))
  ^ ")"
  ^ match raises with [] -> "" | rs -> " raises " ^ String.concat ", " rs

let attr_sig at = prop at "attributeQualifier" ^ " " ^ prop at "attributeType"

let breaking reporter ~loc ~code fmt =
  Printf.ksprintf
    (fun message ->
      Diag.report reporter (Diag.make ~code ~severity:Diag.Error ~loc message))
    fmt

let benign reporter ~loc fmt =
  Printf.ksprintf
    (fun message ->
      Diag.report reporter
        (Diag.make ~code:"W310" ~severity:Diag.Warning ~loc message))
    fmt

(* Diff one interface's members of one kind (operations or attributes). *)
let diff_members reporter ~loc ~iface ~what ~key ~signature old_members new_members =
  let old_idx = index_by key old_members in
  let new_idx = index_by key new_members in
  List.iter
    (fun (name, old_m) ->
      match List.assoc_opt name new_idx with
      | None ->
          breaking reporter ~loc ~code:"V301"
            "interface %S: %s %S was removed (present in the snapshot)"
            iface what name
      | Some new_m ->
          if signature old_m <> signature new_m then
            breaking reporter ~loc ~code:"V302"
              "interface %S: %s %S changed its signature (snapshot: %s; now: %s)"
              iface what name (signature old_m) (signature new_m))
    old_idx;
  List.iter
    (fun (name, _) ->
      if List.assoc_opt name old_idx = None then
        benign reporter ~loc "interface %S: new %s %S (not in the snapshot)"
          iface what name)
    new_idx;
  (* Surviving operations must keep their relative order: the compact
     protocol encodings address operations by index. *)
  let survivors members other_idx =
    List.filter_map
      (fun (name, _) ->
        if List.assoc_opt name other_idx <> None then Some name else None)
      members
  in
  let old_order = survivors old_idx new_idx in
  let new_order = survivors new_idx old_idx in
  if what = "operation" && old_order <> new_order then
    breaking reporter ~loc ~code:"V304"
      "interface %S: surviving operations were reordered (snapshot: %s; now: %s)"
      iface
      (String.concat ", " old_order)
      (String.concat ", " new_order)

let diff_interface reporter ~loc old_i new_i =
  let iface = prop old_i "scopedName" in
  let old_id = prop old_i "repoId" and new_id = prop new_i "repoId" in
  if old_id <> new_id then
    breaking reporter ~loc ~code:"V303"
      "interface %S: repository ID changed from %S to %S" iface old_id new_id;
  diff_members reporter ~loc ~iface ~what:"operation" ~key:"methodName"
    ~signature:op_sig
    (Node.group old_i "methodList")
    (Node.group new_i "methodList");
  diff_members reporter ~loc ~iface ~what:"attribute" ~key:"attributeName"
    ~signature:attr_sig
    (Node.group old_i "attributeList")
    (Node.group new_i "attributeList")

(* Diff two EST roots. Interfaces are matched by scoped name across the
   flattened interfaceList (document order, recursing into modules). *)
let diff_roots reporter ~file ~old_root new_root =
  let loc = file_loc file in
  let old_ifaces = index_by "scopedName" (Node.group old_root "interfaceList") in
  let new_ifaces = index_by "scopedName" (Node.group new_root "interfaceList") in
  List.iter
    (fun (name, old_i) ->
      match List.assoc_opt name new_ifaces with
      | None ->
          breaking reporter ~loc ~code:"V301"
            "interface %S was removed (present in the snapshot)" name
      | Some new_i -> diff_interface reporter ~loc old_i new_i)
    old_ifaces;
  List.iter
    (fun (name, _) ->
      if List.assoc_opt name old_ifaces = None then
        benign reporter ~loc "new interface %S (not in the snapshot)" name)
    new_ifaces

(* The V301–V304 verdict as a boolean, for callers that need a yes/no
   rather than diagnostics: true iff no wire-breaking difference. Benign
   W310 additions do not count against compatibility. *)
let wire_compatible ~old_root new_root =
  let reporter = Diag.reporter () in
  diff_roots reporter ~file:"<compat>" ~old_root new_root;
  not (Diag.has_errors reporter)

(* Bridge to [Orb.create ?codec_compat]: interpret codec versions as
   labels of interface snapshots and judge an (offered, local) pair by
   the evolution model. Two equal versions are trivially compatible;
   otherwise the older snapshot must survive diffing against the newer
   with no V3xx error. Unknown versions are incompatible — the peers
   fall back to the base protocol rather than guess. *)
let codec_compat ~snapshots ~name:_ ~offered ~local =
  offered = local
  ||
  let lo, hi = if offered < local then (offered, local) else (local, offered) in
  match (snapshots lo, snapshots hi) with
  | Some old_root, Some new_root -> wire_compatible ~old_root new_root
  | _ -> false

(* Diff the current EST against the snapshot stored for its compilation
   unit in [ir_dir]. Returns [false] when the repository has no snapshot
   for the unit (nothing to compare — the caller decides whether that is
   worth mentioning). *)
let against reporter ~ir_dir ~file root =
  let unit_name = Node.prop_or root "fileBase" ~default:"out" in
  let repo = Core.Repository.open_ ~dir:ir_dir in
  match Core.Repository.load repo unit_name with
  | None -> false
  | Some old_root ->
      diff_roots reporter ~file ~old_root root;
      true
