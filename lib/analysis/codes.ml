(** The diagnostic-code table: every stable code `idlc` can emit, its
    default severity, a one-line summary, and the long-form rationale
    printed by [idlc lint --explain CODE].

    Code families:
    - [E0xx] — front-end errors (lexer, parser, resolver). Always errors.
    - [W1xx] — lint findings over the resolved spec. Warnings by default;
      promoted to errors under [--werror]; per-code [--disable]/[--enable].
    - [T2xx] — template static-checker findings.
    - [V3xx] — interface-evolution findings against an IR snapshot
      ([W310] marks benign evolution).
    - [C4xx] — concurrency findings over the ORB's own OCaml sources
      ([idlc analyze-conc], implemented in {!Conc}). *)

type info = {
  code : string;
  severity : Idl.Diag.severity;
  summary : string;
  explain : string;
}

let e code summary explain = { code; severity = Idl.Diag.Error; summary; explain }
let w code summary explain = { code; severity = Idl.Diag.Warning; summary; explain }

let all : info list =
  [
    e "E001" "lexical or syntax error"
      "The IDL source could not be tokenized or parsed. The compiler \
       aborts at the first syntax error (there is no parser recovery), so \
       fix it and re-run to see any later problems.";
    e "E002" "redefinition of a name"
      "A name was defined twice in the same scope (or a forward interface \
       declaration conflicts with a different kind of entity). CORBA IDL \
       scopes admit a single definition per identifier; the note attached \
       to the diagnostic points at the previous definition.";
    e "E003" "unresolved name"
      "A scoped name did not resolve in the current scope, any inherited \
       interface scope, or any enclosing scope. Also reported when an \
       interface was forward-declared, never defined, and then used in a \
       position that needs the definition.";
    e "E004" "invalid inheritance"
      "An interface inherits from something that is not a defined \
       interface: a non-interface entity, a forward-declared interface \
       with no definition, or itself through a definition cycle.";
    e "E005" "oneway constraint violation"
      "A oneway operation must have a void return type, only 'in' (or \
       'incopy') parameters, and no raises clause — there is no reply \
       message to carry results or exceptions (CORBA 2.0 §3.10; the wire \
       protocols in this repo enforce the same).";
    e "E006" "constant expression error"
      "A constant expression is ill-typed, overflows its declared type, \
       divides by zero, or shifts out of range. Constants are folded at \
       compile time, so the error is reported at the declaration.";
    e "E007" "invalid union"
      "A union has an invalid discriminator type (must be integer, char, \
       boolean or enum), duplicate case labels, or more than one default \
       case.";
    e "E008" "invalid use of void"
      "'void' is only a return type: it cannot be typedef'd and cannot \
       type a parameter, attribute, struct/exception member, union case, \
       or sequence element.";
    e "E009" "duplicate member"
      "Two members of one construct share a name: operation parameters, \
       struct/exception fields, enum members, union cases, inherited \
       interface lists, or an operation/attribute redefining an inherited \
       one (CORBA forbids overriding).";
    e "E010" "repository-ID collision"
      "Two distinct declarations map to the same OMG repository ID \
       (IDL:<prefix>/<scoped name>:1.0). This usually means a '#pragma \
       prefix' re-creates a path that also exists as real module nesting. \
       Colliding IDs break interface identity: object references, IR \
       lookups and dispatch all key on the repository ID.";
    e "E011" "wrong kind of entity referenced"
      "A name resolved, but to the wrong kind of entity for its position: \
       a raises clause naming a non-exception, a type position naming a \
       constant, a constant expression naming an interface, or a scoped \
       path traversing a non-scope.";
    e "E012" "invalid default parameter"
      "Default parameter values (the paper's HeidiRMI extension, §3.1) \
       are only allowed on 'in'/'incopy' parameters, and — as in C++ — \
       every parameter after the first defaulted one must also have a \
       default.";
    w "W101" "case-insensitive name collision"
      "Two names in the same scope differ only in character case. CORBA \
       identifier lookup is case-insensitive (IDL §3.2.3), so OMG IDL \
       rejects such pairs; many compilers accept them and then generate \
       broken code for case-insensitive targets. Rename one of them.";
    w "W103" "incopy applied to a non-interface type"
      "The 'incopy' mode (paper §3.1) means pass-by-value for object \
       references; for every other type it is identical to 'in'. Applying \
       it to a non-interface type is almost always a leftover from a type \
       change and has no effect.";
    w "W104" "unused declaration"
      "A type, constant or exception is declared but never referenced by \
       any operation, attribute, member, raises clause or other \
       declaration in the file. Interfaces and modules are entry points \
       and are never flagged. The check is conservative: if any reference \
       might use the name, it is not reported.";
    w "W105" "identifier collides with a target-language keyword"
      "The identifier is a reserved word in at least one mapping's target \
       language, so that mapping cannot emit it verbatim (the diagnostic \
       names the mappings). The paper's position is that mappings are \
       data; this check consults each registered mapping's reserved-word \
       table so custom mappings get the same protection.";
    w "W106" "ambiguous diamond inheritance"
      "An interface inherits the same operation or attribute name from \
       two unrelated base interfaces. References to the name through the \
       derived interface are ambiguous, and generated dispatch code picks \
       one arbitrarily. (Inheriting one definition along two paths of a \
       diamond is fine and not reported.)";
    w "W107" "forward-declared interface never defined"
      "An interface was forward-declared but no definition follows in the \
       file. References to it as an object-reference type still compile, \
       but no code is generated for it.";
    e "T201" "template syntax error"
      "The template failed to parse: unbalanced @foreach/@end or \
       @if/@else/@fi, an unknown directive, an unterminated ${...} \
       substitution, or a malformed condition.";
    e "T202" "unbound template variable"
      "A ${var} substitution names a property that no node kind on the \
       enclosing @foreach stack defines (checked against the EST property \
       environment — the Fig. 8 schema). At generation time this would \
       abort with an evaluation error mid-output; the checker finds it \
       without running the template.";
    e "T203" "unknown map function"
      "A '-map var Map::Fn' declaration or '${var:Map::Fn}' inline map \
       names a map function that no registered mapping provides.";
    e "T204" "unknown group in @foreach"
      "An @foreach names a child group that the current node kind does \
       not define (e.g. 'paramList' directly under an interface). The \
       loop body would silently run zero times at generation time.";
    e "T205" "@openfile with unbound variable"
      "An @openfile filename substitutes a variable that is not bound at \
       that point of the template, so generation would abort before \
       producing the file.";
    e "V301" "wire-breaking: removed"
      "An interface, operation or attribute present in the IR snapshot is \
       gone. Clients built against the snapshot will send requests the \
       server no longer dispatches.";
    e "V302" "wire-breaking: changed signature"
      "An operation or attribute changed its parameter types, modes or \
       count, return type, oneway-ness, raises clause, or attribute type. \
       Marshaled requests/replies from snapshot-era peers no longer match \
       the new signature.";
    e "V303" "wire-breaking: changed repository ID"
      "An interface's repository ID changed (renamed scope or a '#pragma \
       prefix' change). Repository IDs are the identity carried in object \
       references; existing references stop resolving.";
    e "V304" "wire-breaking: reordered operations"
      "The surviving operations of an interface appear in a different \
       order than in the snapshot. Protocols that address operations by \
       index (the paper's compact ESIOP-style encodings) dispatch to the \
       wrong method.";
    e "C401" "lock acquisition violates the rank order"
      "A Locked.with_lock nests inside another while the inner lock's \
       rank is not strictly below the outer's (the table is \
       Locked.Rank.all; higher ranks are outermost). Two threads taking \
       the same pair of locks in opposite orders deadlock; the rank \
       lattice makes cycles impossible by construction. The check is \
       syntactic and per-file — nesting hidden behind wrapper functions \
       is covered by the runtime checker (ORB_LOCK_CHECK=1) instead. \
       Fix by reordering the acquisitions, or by restructuring so the \
       inner work happens after the outer lock is released (collect \
       under the lock, act outside it).";
    e "C402" "blocking call while holding a lock"
      "A call that can park the thread — a blocking Unix syscall \
       (connect, accept, select, read, write, sleep, waitpid, ...), \
       Thread.delay/join, or a Locked.wait on a lock other than the \
       innermost one held — appears inside a with_lock scope. Every \
       other thread needing that lock stalls for the full duration, \
       and a wait on a foreign lock releases the wrong mutex, sleeping \
       with the held one still taken. Restructure as a locked step \
       function that returns a decision (`Poll remaining`) consumed by \
       an unlocked retry loop — the pattern Pool.submit and \
       Transport.Pipe.read_with use. Non-blocking teardown \
       (Unix.shutdown, Unix.close) is deliberately exempt.";
    w "C403" "raw threading primitive outside locked.ml"
      "Mutex, Condition or Thread.create is used directly. Raw \
       primitives bypass the rank table: the runtime checker cannot \
       see the acquisition and the C401 analysis cannot rank it. Use \
       Locked.create/with_lock/wait for locks and Locked.spawn for \
       threads (it also clears the spawned thread's rank stack and \
       contains stray exceptions). locked.ml itself is the one \
       sanctioned implementation site.";
    w "C404" "module-level mutable state mutated outside a lock"
      "A top-level ref, Hashtbl or Buffer in a concurrency-aware file \
       (one that references Locked/Thread/Atomic) is mutated outside \
       any with_lock scope. Module-level state is reachable from every \
       thread, so an unlocked := or Hashtbl.replace is a data race \
       under OCaml's memory model. Guard the mutation with the owning \
       lock, make the cell an Atomic.t, or replace the table with an \
       immutable map behind an Atomic.t updated by compare_and_set \
       (the shape Metrics.find_or_create uses).";
    w "C405" "atomic read-modify-write split into get and set"
      "An Atomic.set whose value expression reads the same atomic with \
       Atomic.get: between the read and the write another thread's \
       update is silently lost. Use Atomic.incr/fetch_and_add for \
       integers, or a compare_and_set retry loop for anything else \
       (see Metrics.atomic_add_float for the sanctioned shape).";
    e "C406" "lock created without a registered rank"
      "A Locked.create whose ~rank argument is not a constant from \
       Locked.Rank (the central rank table). Unranked locks cannot be \
       ordered against the rest of the lattice, so neither the static \
       C401 check nor the runtime checker can reason about them. Add \
       the lock to Locked.Rank.all at the right height (outermost = \
       highest) and reference it as ~rank:Locked.Rank.<name>.";
    w "C407" "raw domain primitive outside locked.ml"
      "Domain.spawn or Domain.DLS is used directly. Raw domain spawns \
       bypass Locked.spawn_domain, so the runtime rank checker never \
       clears the new domain's held-rank stack and stray exceptions \
       escape the domain body; raw DLS keys scatter per-domain state \
       the sanctioned wrappers (Locked.new_domain_local / \
       Locked.domain_local_get) keep auditable in one place. locked.ml \
       itself is the one sanctioned implementation site. Domain.join \
       and Domain.recommended_domain_count are deliberately exempt — \
       they synchronize with or size against domains but create none.";
    w "C408" "unguarded Hashtbl mutation in a domain-shared module"
      "A Hashtbl field is mutated outside any with_lock scope in a \
       module that spawns domains or uses domain-local state. Under \
       systhreads an unlocked probe-then-insert was merely sloppy — \
       the runtime lock serialized the resize — but once the module's \
       code runs on multiple domains, a concurrent resize during the \
       mutation is a data race under OCaml's memory model (torn bucket \
       array reads). Guard every mutation with the owning lock, or \
       replace the table with an immutable map behind an Atomic.t \
       updated by compare_and_set (the shape Metrics.find_or_create \
       uses). Helper functions documented as caller-holds-lock are \
       still flagged: in a domain-shared module the proof burden \
       belongs next to the mutation.";
    w "W310" "benign interface evolution"
      "An addition relative to the IR snapshot: a new interface, \
       operation, attribute or parameter default. Old clients are \
       unaffected; new features are invisible to them.";
  ]

let find code = List.find_opt (fun i -> i.code = code) all

let is_known code = find code <> None

let explain code =
  match find code with
  | None -> None
  | Some i -> Some (Printf.sprintf "%s: %s\n\n%s\n" i.code i.summary i.explain)

(* A terse one-line-per-code table (used by --explain with no argument). *)
let table () =
  all
  |> List.map (fun i ->
         Printf.sprintf "%-5s %-7s %s" i.code
           (match i.severity with Idl.Diag.Error -> "error" | _ -> "warning")
           i.summary)
  |> String.concat "\n"
