(** Static checker for code-generation templates.

    Validates a template against the EST schema — the node kinds
    {!Est.Build} produces and the properties/groups each kind defines
    (Fig. 8) — without evaluating it against any IDL. Codes:

    - [T201] template syntax error (from {!Template.Parse});
    - [T202] [${var}] that no kind on the enclosing [@foreach] stack
      defines (and is not a loop binding);
    - [T203] unknown map function in [-map] or [${var:Map::Fn}];
    - [T204] [@foreach] over a group the current node kind does not
      define — the body is then checked under a wildcard kind so one bad
      loop does not cascade;
    - [T205] [@openfile] whose name substitutes an unbound variable.

    [maps] is the registry map-function names are checked against; it
    defaults to the union of every built-in mapping's maps. *)

val check_ast :
  ?maps:Template.Maps.t ->
  Idl.Diag.reporter ->
  filename:string ->
  Template.Ast.t ->
  unit

val check_source :
  ?maps:Template.Maps.t ->
  Idl.Diag.reporter ->
  filename:string ->
  string ->
  bool
(** Parse ([T201] reported on failure) then {!check_ast}. Returns [true]
    when the template parsed. *)

val check_file :
  ?maps:Template.Maps.t -> Idl.Diag.reporter -> string -> bool
(** {!check_source} on a file's contents.
    @raise Sys_error if the file cannot be read. *)
