(** Static checker for code-generation templates.

    Validates a template against the EST property environment — the node
    kinds {!Est.Build} produces and the properties/groups each kind
    defines (the paper's Fig. 8 schema) — without evaluating it against
    any IDL. The evaluator ({!Template.Eval}) only discovers an unbound
    [${var}] or unknown map function when it reaches that line for some
    input, possibly after writing half an output file; the checker finds
    every such defect up front, which is what makes user-supplied
    templates (the paper's whole point) safe to install.

    Checks: T201 parse errors, T202 unbound variables, T203 unknown map
    functions, T204 unknown [@foreach] groups, T205 unbound variables in
    [@openfile] names. *)

module Diag = Idl.Diag

(* ---------------- The EST schema ----------------

   One row per node kind: the properties the kind defines and its child
   groups (group name -> child kind). Derived from Est.Build — if Build
   grows a property, add it here (test_lint locks the two in step for the
   shipped templates). *)

type kind_info = {
  props : string list;
  groups : (string * string) list;
}

(* Properties shared by every named entity node. *)
let named = [ "scopedName"; "flatName"; "repoId" ]

(* add_type_props with the given prefix ("" / "return" / "attribute"). *)
let typed prefix =
  let key base =
    if prefix = "" then base else prefix ^ String.capitalize_ascii base
  in
  [
    (if prefix = "" then "type" else prefix ^ "Type");
    key "typeName"; key "typeKind"; key "isVariable"; key "seqElemType";
  ]

(* Groups attach_members can create on a container node. *)
let entity_groups =
  [
    ("moduleList", "Module");
    ("interfaceList", "Interface");
    ("structList", "Struct");
    ("unionList", "Union");
    ("enumList", "Enum");
    ("aliasList", "Alias");
    ("constList", "Const");
    ("exceptionList", "Exception");
  ]

let schema : (string * kind_info) list =
  [
    ( "Root",
      {
        props = [ "fileBase"; "fileName" ];
        groups =
          entity_groups
          @ List.map
              (fun (g, k) -> ("top" ^ String.capitalize_ascii g, k))
              entity_groups;
      } );
    ( "Module",
      { props = ("moduleName" :: named); groups = entity_groups } );
    ( "Interface",
      {
        props = [ "interfaceName"; "Parent" ] @ named;
        groups =
          [
            ("inheritedList", "Inherit");
            ("allInheritedList", "Inherit");
            ("methodList", "Operation");
            ("allMethodList", "Operation");
            ("attributeList", "Attribute");
            ("allAttributeList", "Attribute");
          ]
          @ entity_groups;
      } );
    ("Inherit", { props = ("inheritedName" :: named); groups = [] });
    ( "Operation",
      {
        props = [ "methodName"; "isOneway" ] @ typed "return";
        groups = [ ("paramList", "Param"); ("raisesList", "Raise") ];
      } );
    ( "Param",
      { props = [ "paramName"; "paramMode"; "defaultParam" ] @ typed ""; groups = [] } );
    ("Raise", { props = ("exceptionName" :: named); groups = [] });
    ( "Attribute",
      {
        props = [ "attributeName"; "attributeQualifier" ] @ typed "attribute";
        groups = [];
      } );
    ( "Struct",
      {
        props = ("structName" :: named);
        groups = [ ("memberList", "Member") ];
      } );
    ("Member", { props = ("memberName" :: typed ""); groups = [] });
    ( "Union",
      {
        props = [ "unionName"; "discType"; "discTypeName" ] @ named;
        groups = [ ("caseList", "Case") ];
      } );
    ( "Case",
      {
        props = ("caseName" :: typed "");
        groups = [ ("labelList", "Label") ];
      } );
    ("Label", { props = [ "labelValue"; "isDefault" ]; groups = [] });
    ( "Enum",
      {
        props = ("enumName" :: named);
        groups = [ ("memberList", "EnumMember") ];
      } );
    ("EnumMember", { props = [ "memberName"; "memberIndex" ]; groups = [] });
    ("Alias", { props = (("aliasName" :: named) @ typed ""); groups = [] });
    ( "Const",
      { props = (("constName" :: named) @ [ "value" ]) @ typed ""; groups = [] } );
    ( "Exception",
      {
        props = ("exceptionName" :: named);
        groups = [ ("memberList", "Member") ];
      } );
  ]

(* The loop bindings Eval pushes with every @foreach frame. *)
let loop_bindings = [ "ifMore"; "index"; "count"; "isFirst"; "isLast" ]

(* The wildcard kind: pushed below an unknown group so one bad @foreach
   yields a single T204 rather than a cascade of T202/T204 in its body. *)
let wildcard = "?"

let kind_info kind = List.assoc_opt kind schema

let kind_defines kind var =
  kind = wildcard
  ||
  match kind_info kind with
  | None -> false
  | Some i -> List.mem var i.props

(* A frame: the node kind plus whether Eval's loop bindings exist there
   (true for every frame a @foreach pushed, false for the root frame). *)
type frame = { kind : string; in_loop : bool }

let var_bound stack var =
  List.exists
    (fun f -> (f.in_loop && List.mem var loop_bindings) || kind_defines f.kind var)
    stack

let stack_str stack =
  String.concat " > " (List.rev_map (fun f -> f.kind) stack)

(* ---------------- The checker ---------------- *)

let default_maps =
  lazy
    (List.fold_left
       (fun acc (m : Mappings.Mapping.t) ->
         Template.Maps.union acc m.Mappings.Mapping.maps)
       (Template.Maps.create ())
       Mappings.Registry.all)

let check_ast ?maps reporter ~filename (tmpl : Template.Ast.t) =
  let maps = match maps with Some m -> m | None -> Lazy.force default_maps in
  let loc line = Idl.Loc.make ~file:filename ~line ~col:0 in
  let err ~code ~line fmt =
    Printf.ksprintf
      (fun message ->
        Diag.report reporter
          (Diag.make ~code ~severity:Diag.Error ~loc:(loc line) message))
      fmt
  in
  let check_map_fn ~line ~var fn =
    if Template.Maps.find maps fn = None then
      err ~code:"T203" ~line "unknown map function %S for ${%s}" fn var
  in
  let check_var ?(code = "T202") stack ~line v =
    if not (var_bound stack v) then
      err ~code ~line "unbound variable ${%s} (node stack: %s)" v
        (stack_str stack)
  in
  let check_segments ?code stack ~line segments =
    List.iter
      (function
        | Template.Ast.Lit _ -> ()
        | Template.Ast.Var v -> check_var ?code stack ~line v
        | Template.Ast.Mapped (v, fn) ->
            check_var ?code stack ~line v;
            check_map_fn ~line ~var:v fn)
      segments
  in
  let check_cond stack ~line = function
    | Template.Ast.Nonempty v -> check_var stack ~line v
    | Template.Ast.Eq (v, rhs) | Template.Ast.Neq (v, rhs) -> (
        check_var stack ~line v;
        match rhs with
        | Template.Ast.O_var v2 -> check_var stack ~line v2
        | Template.Ast.O_lit _ -> ())
  in
  let rec walk stack items =
    List.iter
      (fun item ->
        match item with
        | Template.Ast.Text { segments; line; _ } ->
            check_segments stack ~line segments
        | Template.Ast.Openfile { segments; line } ->
            check_segments ~code:"T205" stack ~line segments
        | Template.Ast.If { cond; then_; else_; line } ->
            check_cond stack ~line cond;
            walk stack then_;
            walk stack else_
        | Template.Ast.Foreach { group; maps = decls; body; line; _ } ->
            List.iter (fun (var, fn) -> check_map_fn ~line ~var fn) decls;
            let top = List.hd stack in
            (* @foreach searches the current node only (no outward walk). *)
            let child_kind =
              if top.kind = wildcard then Some wildcard
              else
                match kind_info top.kind with
                | None -> Some wildcard
                | Some i -> List.assoc_opt group i.groups
            in
            let child_kind =
              match child_kind with
              | Some k -> k
              | None ->
                  err ~code:"T204" ~line
                    "unknown group %S in @foreach (node kind %S defines: %s)"
                    group top.kind
                    (match kind_info top.kind with
                    | Some { groups = _ :: _ as gs; _ } ->
                        String.concat ", " (List.map fst gs)
                    | _ -> "no groups");
                  wildcard
            in
            walk ({ kind = child_kind; in_loop = true } :: stack) body)
      items
  in
  walk [ { kind = "Root"; in_loop = false } ] tmpl.Template.Ast.items

(* Parse (T201 on failure) then check. Returns [true] when the template
   at least parsed. *)
let check_source ?maps reporter ~filename src =
  match Template.Parse.parse ~name:filename src with
  | tmpl ->
      check_ast ?maps reporter ~filename tmpl;
      true
  | exception Template.Parse.Template_error { line; message; _ } ->
      Diag.report reporter
        (Diag.make ~code:"T201" ~severity:Diag.Error
           ~loc:(Idl.Loc.make ~file:filename ~line ~col:0)
           (Printf.sprintf "template syntax error: %s" message));
      false

let check_file ?maps reporter path =
  let src =
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  check_source ?maps reporter ~filename:path src
