(** Concurrency analysis over the ORB's own OCaml sources (the C4xx
    family): a syntactic, per-file pass that checks the lock-rank
    discipline [Locked] documents, using the compiler's own parser.

    The checks mirror the runtime checker in [Locked] but run with no
    execution at all, so they also cover paths the test suite never
    drives:

    - [C401] nested [Locked.with_lock] acquisition that does not
      strictly descend the rank table ([Locked.Rank.all]);
    - [C402] a blocking call ([Unix] syscalls that can park the thread,
      [Thread.delay]/[join]) or a [Locked.wait] on a {e foreign} lock
      while a lock is held;
    - [C403] raw [Mutex]/[Condition]/[Thread.create] primitives outside
      [locked.ml] (the one sanctioned implementation site);
    - [C404] module-level mutable state ([ref]/[Hashtbl]/[Buffer])
      mutated outside any [with_lock] scope in a concurrency-aware file;
    - [C405] an [Atomic] read-modify-write written as separate
      [Atomic.get]/[Atomic.set] (racy; use [fetch_and_add] or a
      compare-and-set loop);
    - [C406] a [Locked.create] whose [~rank] is not a constant from the
      registered rank table.

    The pass is deliberately per-file and name-based: a lock is
    identified by the variable or record-field name it is bound to, and
    ranks resolve through [~rank:Locked.Rank.<x>] annotations seen in
    the same file. Wrapper functions hide nesting from it — the runtime
    checker covers those. Findings go to an {!Idl.Diag.reporter}, so
    [--lint-json], [--werror] and the 0/1/2 exit contract behave exactly
    as for [idlc lint]. *)

val codes : string list
(** The codes this pass can emit: C401..C406. *)

val check_file : Idl.Diag.reporter -> string -> unit
(** Analyze one [.ml] file. Parse failures are reported as an uncoded
    error diagnostic rather than raised. *)

val check_path : Idl.Diag.reporter -> string -> unit
(** Analyze a file, or recursively every [*.ml] under a directory
    (skipping [_build] and dot-directories). *)
