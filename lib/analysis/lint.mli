(** IDL lint passes over the resolved semantic model.

    Beyond the hard errors {!Est.Resolve} enforces, these passes check
    hygiene and portability rules whose violations only surface once
    mappings and protocols are user-supplied data (the paper's setting):

    - [W101] case-insensitive name collisions (CORBA lookup is
      case-insensitive even though this resolver is not);
    - [W103] [incopy] on non-interface types (no effect — paper §3.1);
    - [W104] unused declarations (conservative reference-graph check);
    - [W105] identifiers that are reserved words in a registered mapping's
      target language, consulting each mapping's reserved-word table;
    - [W106] ambiguous diamond inheritance (same member name from two
      unrelated bases);
    - [E010] repository-ID collisions ([#pragma prefix] re-creating a path
      that also exists as module nesting).

    All findings go to the given {!Idl.Diag.reporter}; Sem-level lints
    carry the file's location only (the semantic model is location-free by
    design, Fig. 8). *)

val default_passes : string list
(** The codes the spec-level passes can emit. *)

val check_spec :
  ?mappings:Mappings.Mapping.t list ->
  Idl.Diag.reporter ->
  file:string ->
  Est.Sem.spec ->
  unit
(** Run every pass over a resolved spec, first forwarding the resolver's
    own accumulated warnings ({!Est.Sem.spec.warnings}) to the reporter.
    [mappings] defaults to {!Mappings.Registry.all}. *)

val run_source :
  ?mappings:Mappings.Mapping.t list ->
  Idl.Diag.reporter ->
  filename:string ->
  string ->
  Est.Sem.spec option
(** Parse and resolve IDL source with error recovery (the reporter is
    installed around resolution, so all independent front-end errors are
    accumulated), then run {!check_spec}. Returns [None] when a syntax
    error prevented parsing — the error has already been reported. *)

val run_file :
  ?mappings:Mappings.Mapping.t list ->
  Idl.Diag.reporter ->
  string ->
  Est.Sem.spec option
(** {!run_source} on a file's contents.
    @raise Sys_error if the file cannot be read. *)
