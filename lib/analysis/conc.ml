(* The C4xx concurrency pass. See conc.mli for the contract.

   Implementation notes. The file is parsed with compiler-libs
   ([Parse.implementation]) and walked twice:

   - pass 1 collects, per file, (a) every binding of a [Locked.create]
     result to a let-variable or record field, resolving the [~rank]
     annotation against [Locked.Rank.all] (C406 fires here when it does
     not resolve), and (b) every module-level [ref]/[Hashtbl.create]/
     [Buffer.create] binding (the C404 candidates);

   - pass 2 walks expressions carrying a stack of locks syntactically
     held at that point ([Locked.with_lock l (fun () -> ...)] scopes,
     including the [@@] and [|>] spellings), and fires C401/C402/C404/
     C405 against it.

   Locks are identified by the last component of the expression they
   are read from ([t.lock] and [mx.mx_lock] are the locks named "lock"
   and "mx_lock") — the codebase convention of one distinct field name
   per rank makes this precise in practice; a name bound to two
   different ranks in one file is demoted to "unknown rank" rather than
   guessed. *)

let codes = [ "C401"; "C402"; "C403"; "C404"; "C405"; "C406"; "C407"; "C408" ]

(* ---------------- reporting ---------------- *)

let loc_of (l : Location.t) file =
  let p = l.Location.loc_start in
  Idl.Loc.make ~file ~line:p.Lexing.pos_lnum
    ~col:(p.Lexing.pos_cnum - p.Lexing.pos_bol + 1)

let severity_of code =
  match Codes.find code with
  | Some i -> i.Codes.severity
  | None -> Idl.Diag.Error

let report reporter ~code ~loc msg =
  Idl.Diag.report reporter
    (Idl.Diag.make ~code ~severity:(severity_of code) ~loc msg)

(* ---------------- expression views ---------------- *)

open Parsetree

(* [app_view e] flattens [e] into (function path, argument list),
   normalizing [f @@ x], [x |> f] and curried application chains. *)
let rec app_view e =
  match e.pexp_desc with
  | Pexp_ident { txt; _ } -> Some (Longident.flatten txt, [])
  | Pexp_apply
      ( { pexp_desc = Pexp_ident { txt = Longident.Lident "@@"; _ }; _ },
        [ (_, f); (_, x) ] ) -> (
      match app_view f with
      | Some (p, a) -> Some (p, a @ [ (Asttypes.Nolabel, x) ])
      | None -> None)
  | Pexp_apply
      ( { pexp_desc = Pexp_ident { txt = Longident.Lident "|>"; _ }; _ },
        [ (_, x); (_, f) ] ) -> (
      match app_view f with
      | Some (p, a) -> Some (p, a @ [ (Asttypes.Nolabel, x) ])
      | None -> None)
  | Pexp_apply (f, args) -> (
      match app_view f with Some (p, a) -> Some (p, a @ args) | None -> None)
  | _ -> None

let last = function [] -> None | l -> Some (List.nth l (List.length l - 1))

(* The name a lock travels under: the last path component of the
   variable or field it is read from. *)
let rec lock_key e =
  match e.pexp_desc with
  | Pexp_ident { txt; _ } -> last (Longident.flatten txt)
  | Pexp_field (_, { txt; _ }) -> last (Longident.flatten txt)
  | Pexp_constraint (e, _) -> lock_key e
  | _ -> None

let pos_arg n args =
  let positional =
    List.filter_map
      (function Asttypes.Nolabel, e -> Some e | _ -> None)
      args
  in
  List.nth_opt positional n

let labelled_arg name args =
  List.find_map
    (function
      | Asttypes.Labelled l, e when l = name -> Some e
      | Asttypes.Optional l, e when l = name -> Some e
      | _ -> None)
    args

(* ---------------- per-file analysis state ---------------- *)

type state = {
  file : string;
  reporter : Idl.Diag.reporter;
  is_locked_impl : bool;  (* locked.ml itself: C403/C404 exempt *)
  conc_aware : bool;  (* file references Locked/Thread/Mutex: gates C404 *)
  mutable domain_shared : bool;
      (* file spawns domains or uses domain-local state (detected from
         the AST in pass 1, not the raw source, so an analyzer or doc
         string merely *mentioning* the wrappers does not count):
         gates C408 *)
  ranks : (string, int) Hashtbl.t;  (* lock key -> rank; absent = unknown *)
  ambiguous : (string, unit) Hashtbl.t;  (* key bound to two ranks *)
  mutables : (string, unit) Hashtbl.t;  (* module-level ref/Hashtbl/Buffer *)
  shims : (string, string) Hashtbl.t;
      (* [let f .. g = Locked.with_lock l g] wrappers -> lock key, so the
         common per-module [with_mutex]/[with_lock] shims stay
         transparent to the scope tracking *)
  mutable held : (string * int option) list;  (* innermost first *)
}

let rank_value name = List.assoc_opt name Locked.Rank.all

(* The rank annotation of a [Locked.create] call: [Some (const, value)]
   when [~rank:...Rank.<const>] resolves in the table. *)
let rank_of_create args =
  match labelled_arg "rank" args with
  | None -> None
  | Some e -> (
      match e.pexp_desc with
      | Pexp_ident { txt; _ } -> (
          match last (Longident.flatten txt) with
          | Some const -> (
              match rank_value const with
              | Some v -> Some (const, Some v)
              | None -> Some (const, None))
          | None -> None)
      | _ -> Some ("<non-constant>", None))

let bind_lock st key rank =
  match Hashtbl.find_opt st.ranks key with
  | Some r when r <> rank -> Hashtbl.replace st.ambiguous key ()
  | _ -> Hashtbl.replace st.ranks key rank

(* ---------------- pass 1: bindings, C406 ---------------- *)

let scan_create st ~binding e =
  match app_view e with
  | Some ([ "Locked"; "create" ], args) -> (
      match rank_of_create args with
      | Some (_const, Some v) -> (
          match binding with
          | Some key -> bind_lock st key v
          | None -> ())
      | Some (const, None) ->
          report st.reporter ~code:"C406" ~loc:(loc_of e.pexp_loc st.file)
            (Printf.sprintf
               "lock created with unregistered rank %S: ~rank must be a \
                constant from Locked.Rank (see Locked.Rank.all)"
               const)
      | None ->
          report st.reporter ~code:"C406" ~loc:(loc_of e.pexp_loc st.file)
            "lock created without a ~rank annotation resolvable against \
             Locked.Rank")
  | _ -> ()

let is_mutable_init e =
  match app_view e with
  | Some ([ "ref" ], _ :: _) -> true
  | Some ([ "Hashtbl"; "create" ], _ :: _) -> true
  | Some ([ "Buffer"; "create" ], _ :: _) -> true
  | _ -> false

let rec peel_constraint e =
  match e.pexp_desc with Pexp_constraint (e, _) -> peel_constraint e | _ -> e

let rec pat_var p =
  match p.ppat_desc with
  | Ppat_var { txt; _ } -> Some txt
  | Ppat_constraint (p, _) -> pat_var p
  | _ -> None

(* Peel [fun a b -> body] into (body, parameter names). *)
let rec peel_fun e params =
  match e.pexp_desc with
  | Pexp_fun (Asttypes.Nolabel, None, p, body) ->
      peel_fun body (params @ [ pat_var p ])
  | _ -> (e, params)

let scan_shim st ~binding e =
  match binding with
  | None -> ()
  | Some fname -> (
      match peel_fun e [] with
      | body, (_ :: _ as params) -> (
          match (app_view body, last params) with
          | ( Some ([ "Locked"; "with_lock" ], [ (_, le); (_, fe) ]),
              Some (Some lastp) ) -> (
              match (fe.pexp_desc, lock_key le) with
              | Pexp_ident { txt = Longident.Lident f; _ }, Some key
                when f = lastp ->
                  Hashtbl.replace st.shims fname key
              | _ -> ())
          | _ -> ())
      | _ -> ())

(* pass 1 walks the whole AST for lock bindings (locks can be created
   inside functions), and only the structure spine for C404 candidates
   (module-level mutable state). *)
let pass1 st str =
  let it =
    {
      Ast_iterator.default_iterator with
      value_binding =
        (fun self vb ->
          let e = peel_constraint vb.pvb_expr in
          scan_create st ~binding:(pat_var vb.pvb_pat) e;
          scan_shim st ~binding:(pat_var vb.pvb_pat) e;
          Ast_iterator.default_iterator.value_binding self vb);
      expr =
        (fun self e ->
          (match e.pexp_desc with
          | Pexp_ident { txt; _ } -> (
              match Longident.flatten txt with
              | [ "Locked"; ("spawn_domain" | "new_domain_local" | "domain_local_get") ] ->
                  st.domain_shared <- true
              | _ -> ())
          | _ -> ());
          (match e.pexp_desc with
          | Pexp_record (fields, _) ->
              List.iter
                (fun ((lid : Longident.t Asttypes.loc), fe) ->
                  match last (Longident.flatten lid.Asttypes.txt) with
                  | Some key ->
                      scan_create st ~binding:(Some key) (peel_constraint fe)
                  | None -> ())
                fields
          | _ -> ());
          Ast_iterator.default_iterator.expr self e);
    }
  in
  it.Ast_iterator.structure it str;
  (* module-level mutable containers, including in nested modules *)
  let rec spine items =
    List.iter
      (fun item ->
        match item.pstr_desc with
        | Pstr_value (_, vbs) ->
            List.iter
              (fun vb ->
                match pat_var vb.pvb_pat with
                | Some v when is_mutable_init (peel_constraint vb.pvb_expr) ->
                    Hashtbl.replace st.mutables v ()
                | _ -> ())
              vbs
        | Pstr_module { pmb_expr = { pmod_desc = Pmod_structure s; _ }; _ } ->
            spine s
        | _ -> ())
      items
  in
  spine str

(* ---------------- pass 2: scoped checks ---------------- *)

(* Syscalls and waits that can park the carrier thread. Non-blocking
   teardown ([Unix.shutdown], [Unix.close]) and clock reads are
   deliberately absent. *)
let blocking_calls =
  [
    [ "Unix"; "connect" ]; [ "Unix"; "accept" ]; [ "Unix"; "select" ];
    [ "Unix"; "read" ]; [ "Unix"; "write" ]; [ "Unix"; "single_write" ];
    [ "Unix"; "recv" ]; [ "Unix"; "send" ]; [ "Unix"; "recvfrom" ];
    [ "Unix"; "sendto" ]; [ "Unix"; "sleep" ]; [ "Unix"; "sleepf" ];
    [ "Unix"; "system" ]; [ "Unix"; "wait" ]; [ "Unix"; "waitpid" ];
    [ "Thread"; "delay" ]; [ "Thread"; "join" ];
  ]

let mutators_first_arg =
  [
    ([ ":=" ], "assignment");
    ([ "incr" ], "increment");
    ([ "decr" ], "decrement");
    ([ "Hashtbl"; "replace" ], "Hashtbl.replace");
    ([ "Hashtbl"; "add" ], "Hashtbl.add");
    ([ "Hashtbl"; "remove" ], "Hashtbl.remove");
    ([ "Hashtbl"; "reset" ], "Hashtbl.reset");
    ([ "Hashtbl"; "clear" ], "Hashtbl.clear");
    ([ "Hashtbl"; "filter_map_inplace" ], "Hashtbl.filter_map_inplace");
    ([ "Buffer"; "add_string" ], "Buffer.add_string");
    ([ "Buffer"; "add_char" ], "Buffer.add_char");
    ([ "Buffer"; "add_substring" ], "Buffer.add_substring");
    ([ "Buffer"; "add_buffer" ], "Buffer.add_buffer");
    ([ "Buffer"; "clear" ], "Buffer.clear");
    ([ "Buffer"; "reset" ], "Buffer.reset");
    ([ "Buffer"; "truncate" ], "Buffer.truncate");
  ]

let contains_atomic_get_of key e =
  let found = ref false in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun self ex ->
          (match app_view ex with
          | Some ([ "Atomic"; "get" ], args) -> (
              match pos_arg 0 args with
              | Some a when lock_key a = Some key -> found := true
              | _ -> ())
          | _ -> ());
          Ast_iterator.default_iterator.expr self ex);
    }
  in
  it.Ast_iterator.expr it e;
  !found

let describe_held st =
  match st.held with
  | [] -> "no lock"
  | (k, r) :: _ ->
      Printf.sprintf "%S%s" k
        (match r with
        | Some v -> Printf.sprintf " (rank %d)" v
        | None -> " (unknown rank)")

let pass2 st str =
  let check_apply self e path args =
    match (path, args) with
    | [ "Locked"; "with_lock" ], _ -> (
        match (pos_arg 0 args, pos_arg 1 args) with
        | Some le, Some body ->
            let key =
              match lock_key le with Some k -> k | None -> "<expr>"
            in
            let rank =
              if Hashtbl.mem st.ambiguous key then None
              else Hashtbl.find_opt st.ranks key
            in
            (match (st.held, rank) with
            | (hk, Some hr) :: _, Some r when r >= hr ->
                report st.reporter ~code:"C401"
                  ~loc:(loc_of e.pexp_loc st.file)
                  (Printf.sprintf
                     "lock %S (rank %d) acquired while holding %S (rank %d): \
                      acquisition must strictly descend Locked.Rank"
                     key r hk hr)
            | _ -> ());
            self.Ast_iterator.expr self le;
            st.held <- (key, rank) :: st.held;
            Fun.protect
              ~finally:(fun () -> st.held <- List.tl st.held)
              (fun () -> self.Ast_iterator.expr self body);
            true
        | _ -> false)
    | [ "Locked"; "wait" ], _ -> (
        match (pos_arg 0 args, st.held) with
        | Some le, (hk, _) :: _ -> (
            match lock_key le with
            | Some k when k <> hk ->
                report st.reporter ~code:"C402"
                  ~loc:(loc_of e.pexp_loc st.file)
                  (Printf.sprintf
                     "Locked.wait on foreign lock %S while holding %s: a \
                      wait must target the innermost held lock"
                     k (describe_held st));
                false
            | _ -> false)
        | _ -> false)
    | [ "Atomic"; "set" ], _ -> (
        match (pos_arg 0 args, pos_arg 1 args) with
        | Some a, Some v -> (
            match lock_key a with
            | Some key when contains_atomic_get_of key v ->
                report st.reporter ~code:"C405"
                  ~loc:(loc_of e.pexp_loc st.file)
                  (Printf.sprintf
                     "read-modify-write of atomic %S as separate Atomic.get \
                      / Atomic.set: racy — use Atomic.fetch_and_add or a \
                      compare_and_set loop"
                     key);
                false
            | _ -> false)
        | _ -> false)
    | [ shim ], _ when Hashtbl.mem st.shims shim && pos_arg 0 args <> None ->
        (* A local with_lock wrapper: the last positional argument is the
           closure that runs under the shim's lock. *)
        let key = Hashtbl.find st.shims shim in
        let rank =
          if Hashtbl.mem st.ambiguous key then None
          else Hashtbl.find_opt st.ranks key
        in
        (match (st.held, rank) with
        | (hk, Some hr) :: _, Some r when r >= hr ->
            report st.reporter ~code:"C401" ~loc:(loc_of e.pexp_loc st.file)
              (Printf.sprintf
                 "lock %S (rank %d) acquired via %s while holding %S (rank                   %d): acquisition must strictly descend Locked.Rank"
                 key r shim hk hr)
        | _ -> ());
        let positional =
          List.filter_map
            (function Asttypes.Nolabel, e -> Some e | _ -> None)
            args
        in
        let body = List.nth positional (List.length positional - 1) in
        List.iter
          (fun a -> if a != body then self.Ast_iterator.expr self a)
          positional;
        st.held <- (key, rank) :: st.held;
        Fun.protect
          ~finally:(fun () -> st.held <- List.tl st.held)
          (fun () -> self.Ast_iterator.expr self body);
        true
    | _ ->
        (if st.held <> [] && List.mem path blocking_calls then
           report st.reporter ~code:"C402" ~loc:(loc_of e.pexp_loc st.file)
             (Printf.sprintf
                "blocking call %s while holding %s: park the thread only \
                 with every lock released"
                (String.concat "." path) (describe_held st)));
        (if
           st.conc_aware && (not st.is_locked_impl) && st.held = []
           && Hashtbl.length st.mutables > 0
         then
           match
             List.find_opt (fun (p, _) -> p = path) mutators_first_arg
           with
           | Some (_, what) -> (
               match pos_arg 0 args with
               | Some target -> (
                   match target.pexp_desc with
                   | Pexp_ident { txt = Longident.Lident v; _ }
                     when Hashtbl.mem st.mutables v ->
                       report st.reporter ~code:"C404"
                         ~loc:(loc_of e.pexp_loc st.file)
                         (Printf.sprintf
                            "module-level mutable %S mutated (%s) outside \
                             any Locked.with_lock scope"
                            v what)
                   | _ -> ())
               | None -> ())
           | None -> ());
        (if st.domain_shared && (not st.is_locked_impl) && st.held = [] then
           match
             List.find_opt
               (fun (p, _) ->
                 p = path
                 && match p with "Hashtbl" :: _ -> true | _ -> false)
               mutators_first_arg
           with
           | Some (_, what) -> (
               match pos_arg 0 args with
               | Some target -> (
                   match target.pexp_desc with
                   | Pexp_field (_, { txt; _ }) -> (
                       match last (Longident.flatten txt) with
                       | Some field ->
                           report st.reporter ~code:"C408"
                             ~loc:(loc_of e.pexp_loc st.file)
                             (Printf.sprintf
                                "Hashtbl field %S mutated (%s) outside any \
                                 Locked.with_lock scope in a domain-shared \
                                 module: a concurrent resize is a data race \
                                 across domains — lock the mutation or use \
                                 an atomic immutable map"
                                field what)
                       | None -> ())
                   | _ -> ())
               | None -> ())
           | None -> ());
        false
  in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun self e ->
          (* C403: raw primitives anywhere outside locked.ml. Reported
             at the identifier, so partial applications count too. *)
          (match e.pexp_desc with
          | Pexp_ident { txt; _ } when not st.is_locked_impl -> (
              match Longident.flatten txt with
              | ("Mutex" | "Condition") :: _ :: _ ->
                  report st.reporter ~code:"C403"
                    ~loc:(loc_of e.pexp_loc st.file)
                    (Printf.sprintf
                       "raw %s primitive outside locked.ml: use Locked"
                       (String.concat "." (Longident.flatten txt)))
              | [ "Thread"; "create" ] ->
                  report st.reporter ~code:"C403"
                    ~loc:(loc_of e.pexp_loc st.file)
                    "raw Thread.create outside locked.ml: use Locked.spawn \
                     so the rank checker tracks the thread"
              | [ "Domain"; "spawn" ] ->
                  report st.reporter ~code:"C407"
                    ~loc:(loc_of e.pexp_loc st.file)
                    "raw Domain.spawn outside locked.ml: use \
                     Locked.spawn_domain so the rank checker tracks the \
                     domain and its held-rank stack is cleared on exit"
              | "Domain" :: "DLS" :: _ :: _ ->
                  report st.reporter ~code:"C407"
                    ~loc:(loc_of e.pexp_loc st.file)
                    "raw Domain.DLS outside locked.ml: use \
                     Locked.new_domain_local / Locked.domain_local_get"
              | _ -> ())
          | _ -> ());
          let handled =
            match app_view e with
            | Some (path, args) -> check_apply self e path args
            | None -> false
          in
          if not handled then Ast_iterator.default_iterator.expr self e);
    }
  in
  it.Ast_iterator.structure it str

(* ---------------- drivers ---------------- *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let references_concurrency src =
  let mentions needle =
    let nlen = String.length needle and slen = String.length src in
    let rec go i =
      if i + nlen > slen then false
      else if String.sub src i nlen = needle then true
      else go (i + 1)
    in
    go 0
  in
  mentions "Locked." || mentions "Thread." || mentions "Mutex."
  || mentions "Atomic."

let check_file reporter path =
  let src = read_file path in
  match
    Parse.implementation (Lexing.from_string ~with_positions:true src)
  with
  | exception _ ->
      Idl.Diag.report reporter
        (Idl.Diag.make ~severity:Idl.Diag.Error
           ~loc:(Idl.Loc.make ~file:path ~line:1 ~col:1)
           "file does not parse as OCaml; concurrency analysis skipped")
  | str ->
      let st =
        {
          file = path;
          reporter;
          is_locked_impl = Filename.basename path = "locked.ml";
          conc_aware = references_concurrency src;
          domain_shared = false;
          ranks = Hashtbl.create 16;
          ambiguous = Hashtbl.create 4;
          mutables = Hashtbl.create 16;
          shims = Hashtbl.create 4;
          held = [];
        }
      in
      pass1 st str;
      pass2 st str

let rec check_path reporter path =
  if Sys.is_directory path then
    Sys.readdir path |> Array.to_list |> List.sort compare
    |> List.iter (fun entry ->
           if
             entry <> "_build" && entry <> ""
             && not (String.length entry > 0 && entry.[0] = '.')
           then
             let sub = Filename.concat path entry in
             if Sys.is_directory sub then check_path reporter sub
             else if Filename.check_suffix sub ".ml" then
               check_file reporter sub)
  else check_file reporter path
