(* Protocol envelope tests: the request/reply messages of both the text
   protocol and the GIOP-like binary protocol, plus framing. *)

module P = Orb.Protocol

let protocols =
  [
    P.text;
    Giop.protocol ();
    Giop.protocol ~order:Wire.Cdr_codec.Little_endian ();
    P.hcx;
  ]

let sample_target =
  Orb.Objref.make ~proto:"tcp" ~host:"galaxy.nec.com" ~port:1234 ~oid:"9876"
    ~type_id:"IDL:Heidi/A:1.0"

let sample_request payload =
  P.Request
    { P.req_id = 42; target = sample_target; operation = "f"; oneway = false;
      payload; trace_ctx = ""; budget_us = None; nego_offer = "" }

let check_message proto msg =
  let bytes = proto.P.encode_message msg in
  let back = proto.P.decode_message bytes in
  let render = function
    | P.Request r ->
        Printf.sprintf "req %d %s %s %b %S ctx=%S budget=%s" r.P.req_id
          (Orb.Objref.to_string r.P.target)
          r.P.operation r.P.oneway r.P.payload r.P.trace_ctx
          (match r.P.budget_us with
          | None -> "-"
          | Some b -> string_of_int b)
    | P.Reply r ->
        Printf.sprintf "rep %d %s %S" r.P.rep_id
          (match r.P.status with
          | P.Status_ok -> "ok"
          | P.Status_user_exception id -> "exn " ^ id
          | P.Status_system_error m -> "err " ^ m)
          r.P.payload
    | P.Locate_request { req_id; target } ->
        Printf.sprintf "locate %d %s" req_id (Orb.Objref.to_string target)
    | P.Locate_reply { rep_id; found; forward } ->
        Printf.sprintf "located %d %b fwd=%s" rep_id found
          (match forward with
          | None -> "-"
          | Some r -> Orb.Objref.to_string r)
    | P.Locate_forward { rep_id; target } ->
        Printf.sprintf "forward %d %s" rep_id (Orb.Objref.to_string target)
  in
  Alcotest.(check string) proto.P.name (render msg) (render back)

let test_request_roundtrip () =
  List.iter
    (fun proto ->
      let payload =
        let e = proto.P.codec.Wire.Codec.encoder () in
        e.Wire.Codec.put_long 7;
        e.Wire.Codec.put_string "arg";
        e.Wire.Codec.finish ()
      in
      check_message proto (sample_request payload);
      check_message proto (sample_request "");
      check_message proto
        (P.Request
           { P.req_id = 0; target = sample_target; operation = "_get_state";
             oneway = true; payload; trace_ctx = ""; budget_us = None; nego_offer = "" }))
    protocols

let multi_target =
  Orb.Objref.make_multi
    ~endpoints:
      [ ("tcp", "h1", 1234); ("tcp", "h2", 1234); ("mem", "local", 7) ]
    ~oid:"9876" ~type_id:"IDL:Heidi/A:1.0"

let test_locate_roundtrip () =
  List.iter
    (fun proto ->
      check_message proto (P.Locate_request { req_id = 5; target = sample_target });
      check_message proto (P.Locate_reply { rep_id = 5; found = true; forward = None });
      check_message proto (P.Locate_reply { rep_id = 6; found = false; forward = None });
      check_message proto
        (P.Locate_reply { rep_id = 7; found = true; forward = Some sample_target });
      check_message proto
        (P.Locate_reply { rep_id = 8; found = true; forward = Some multi_target });
      check_message proto (P.Locate_forward { rep_id = 9; target = sample_target });
      check_message proto (P.Locate_forward { rep_id = 10; target = multi_target }))
    protocols

let test_multi_endpoint_request_roundtrip () =
  (* A request whose target carries an endpoint set survives both
     codecs' envelopes. *)
  List.iter
    (fun proto ->
      check_message proto
        (P.Request
           { P.req_id = 42; target = multi_target; operation = "f";
             oneway = false; payload = "x"; trace_ctx = ""; budget_us = None; nego_offer = "" }))
    protocols

let test_malformed_forward_rejected () =
  (* A Locate_forward whose embedded reference is damaged must fail as a
     protocol error, not leak a Type_error or a bogus objref. *)
  List.iter
    (fun proto ->
      let e = proto.P.codec.Wire.Codec.encoder () in
      e.Wire.Codec.put_octet 4;
      e.Wire.Codec.put_ulong 1;
      e.Wire.Codec.put_string "@tcp:h";
      match proto.P.decode_message (e.Wire.Codec.finish ()) with
      | exception P.Protocol_error _ -> ()
      | _ -> Alcotest.failf "%s: malformed forward accepted" proto.P.name)
    protocols

let test_reply_roundtrip () =
  List.iter
    (fun proto ->
      check_message proto (P.Reply { P.rep_id = 1; status = P.Status_ok; payload = ""; nego_answer = "" });
      check_message proto
        (P.Reply
           { P.rep_id = 9999; status = P.Status_user_exception "IDL:E:1.0";
             payload = "xyz"; nego_answer = "" });
      check_message proto
        (P.Reply
           { P.rep_id = 3; status = P.Status_system_error "no object"; payload = "";
             nego_answer = "" }))
    protocols

let test_payload_encapsulation () =
  (* The payload travels as an opaque counted string: binary payload
     bytes survive embedding in the envelope of every protocol. *)
  let binary_payload = "\000\001\255\n\"raw\" \\bytes\000" in
  List.iter
    (fun proto ->
      match proto.P.decode_message (proto.P.encode_message (sample_request binary_payload)) with
      | P.Request r -> Alcotest.(check string) proto.P.name binary_payload r.P.payload
      | _ -> Alcotest.fail "wrong message kind")
    [ Giop.protocol (); Giop.protocol ~order:Wire.Cdr_codec.Little_endian () ]

let test_malformed_messages () =
  List.iter
    (fun proto ->
      List.iter
        (fun bytes ->
          match proto.P.decode_message bytes with
          | exception P.Protocol_error _ -> ()
          | exception Wire.Codec.Type_error _ ->
              Alcotest.fail "Type_error leaked through decode_message"
          | _ -> Alcotest.failf "%s: expected protocol error" proto.P.name)
        [ ""; "garbage"; "\042" ])
    protocols

let test_bad_target_rejected () =
  let proto = P.text in
  (* Hand-craft a request whose target reference is malformed. *)
  let e = proto.P.codec.Wire.Codec.encoder () in
  e.Wire.Codec.put_octet 0;
  e.Wire.Codec.put_ulong 1;
  e.Wire.Codec.put_bool false;
  e.Wire.Codec.put_string "not-a-reference";
  e.Wire.Codec.put_string "op";
  e.Wire.Codec.put_string "";
  match proto.P.decode_message (e.Wire.Codec.finish ()) with
  | exception P.Protocol_error _ -> ()
  | _ -> Alcotest.fail "malformed target accepted"

(* ---------------- service-context slot interop ---------------- *)

(* The trace context rides in a service-context slot appended after the
   payload and omitted when empty. These tests pin down both interop
   directions with peers that predate the slot. *)

let ctx_request ?budget_us ~trace_ctx () =
  { P.req_id = 42; target = sample_target; operation = "f"; oneway = false;
    payload = "pay\008load"; trace_ctx; budget_us; nego_offer = "" }

(* The request envelope exactly as pre-slot peers encoded it: every
   field up to and including the payload, nothing after. *)
let legacy_encode proto (r : P.request) =
  let e = proto.P.codec.Wire.Codec.encoder () in
  e.Wire.Codec.put_octet 0;
  e.Wire.Codec.put_ulong r.P.req_id;
  e.Wire.Codec.put_bool r.P.oneway;
  e.Wire.Codec.put_string (Orb.Objref.to_string r.P.target);
  e.Wire.Codec.put_string r.P.operation;
  e.Wire.Codec.put_string r.P.payload;
  e.Wire.Codec.finish ()

(* ... and the matching pre-slot decoder, which stops at the payload
   and never looks at trailing bytes. *)
let legacy_decode proto bytes =
  let d = proto.P.codec.Wire.Codec.decoder bytes in
  let tag = d.Wire.Codec.get_octet () in
  let req_id = d.Wire.Codec.get_ulong () in
  let oneway = d.Wire.Codec.get_bool () in
  let target = d.Wire.Codec.get_string () in
  let operation = d.Wire.Codec.get_string () in
  let payload = d.Wire.Codec.get_string () in
  (tag, req_id, oneway, target, operation, payload)

let test_trace_ctx_roundtrip () =
  List.iter
    (fun proto ->
      check_message proto
        (P.Request (ctx_request ~trace_ctx:"00112233445566778899aabbccddeeff-0123456789abcdef" ())))
    protocols

let test_old_peer_to_new_decoder () =
  (* Bytes from a pre-slot peer: the new decoder reads them as the
     empty context instead of failing at end-of-message. *)
  List.iter
    (fun proto ->
      let bytes = legacy_encode proto (ctx_request ~trace_ctx:"" ()) in
      match proto.P.decode_message bytes with
      | P.Request r ->
          Alcotest.(check string) (proto.P.name ^ " ctx") "" r.P.trace_ctx;
          Alcotest.(check string) (proto.P.name ^ " payload") "pay\008load" r.P.payload;
          Alcotest.(check string) (proto.P.name ^ " op") "f" r.P.operation
      | _ -> Alcotest.fail "wrong message kind")
    protocols

let test_new_peer_to_old_decoder () =
  (* Bytes WITH a context, read by the pre-slot decoder: every field it
     knows about decodes unchanged; the context is trailing bytes it
     never touches. *)
  List.iter
    (fun proto ->
      let bytes =
        proto.P.encode_message
          (P.Request (ctx_request ~trace_ctx:"deadbeefdeadbeefdeadbeefdeadbeef-cafebabecafebabe" ()))
      in
      let tag, req_id, oneway, target, operation, payload =
        legacy_decode proto bytes
      in
      Alcotest.(check int) (proto.P.name ^ " tag") 0 tag;
      Alcotest.(check int) (proto.P.name ^ " req_id") 42 req_id;
      Alcotest.(check bool) (proto.P.name ^ " oneway") false oneway;
      Alcotest.(check string) (proto.P.name ^ " target")
        (Orb.Objref.to_string sample_target) target;
      Alcotest.(check string) (proto.P.name ^ " op") "f" operation;
      Alcotest.(check string) (proto.P.name ^ " payload") "pay\008load" payload)
    protocols

let test_empty_ctx_is_byte_identical_to_legacy () =
  (* The compatibility invariant the whole scheme rests on: with no
     context, the new encoder's output is the old encoding, byte for
     byte — not merely decodable. *)
  List.iter
    (fun proto ->
      let r = ctx_request ~trace_ctx:"" () in
      Alcotest.(check string) proto.P.name (legacy_encode proto r)
        (proto.P.encode_message (P.Request r)))
    protocols

(* ---------------- deadline slot interop ---------------- *)

(* The deadline budget rides in a second trailing slot after the trace
   context; slots are positional, so a present budget forces the trace
   slot onto the wire even when empty. Pinned in both directions
   against "pre-budget" peers — the trace-ctx-era encoder/decoder. *)

(* The envelope exactly as trace-ctx-era (pre-budget) peers encoded it:
   legacy fields, then the context slot iff non-empty, never a budget. *)
let prebudget_encode proto (r : P.request) =
  let e = proto.P.codec.Wire.Codec.encoder () in
  e.Wire.Codec.put_octet 0;
  e.Wire.Codec.put_ulong r.P.req_id;
  e.Wire.Codec.put_bool r.P.oneway;
  e.Wire.Codec.put_string (Orb.Objref.to_string r.P.target);
  e.Wire.Codec.put_string r.P.operation;
  e.Wire.Codec.put_string r.P.payload;
  if r.P.trace_ctx <> "" then e.Wire.Codec.put_string r.P.trace_ctx;
  e.Wire.Codec.finish ()

(* ... and the matching pre-budget decoder: reads the context slot if
   bytes remain, then stops — a budget is trailing bytes it never
   touches. *)
let prebudget_decode proto bytes =
  let d = proto.P.codec.Wire.Codec.decoder bytes in
  let tag = d.Wire.Codec.get_octet () in
  let req_id = d.Wire.Codec.get_ulong () in
  let _oneway = d.Wire.Codec.get_bool () in
  let _target = d.Wire.Codec.get_string () in
  let operation = d.Wire.Codec.get_string () in
  let payload = d.Wire.Codec.get_string () in
  let trace_ctx =
    if d.Wire.Codec.at_end () then "" else d.Wire.Codec.get_string ()
  in
  (tag, req_id, operation, payload, trace_ctx)

let test_budget_roundtrip () =
  List.iter
    (fun proto ->
      (* With and without a context: the budget survives either way. *)
      check_message proto
        (P.Request (ctx_request ~budget_us:1_500_000 ~trace_ctx:"" ()));
      check_message proto
        (P.Request
           (ctx_request ~budget_us:250
              ~trace_ctx:"00112233445566778899aabbccddeeff-0123456789abcdef"
              ()));
      check_message proto
        (P.Request (ctx_request ~budget_us:0 ~trace_ctx:"" ())))
    protocols

let test_no_budget_is_byte_identical_to_prebudget () =
  (* A budget-capable encoder sending no budget produces the pre-budget
     encoding byte for byte — with and without a trace context. *)
  List.iter
    (fun proto ->
      List.iter
        (fun trace_ctx ->
          let r = ctx_request ~trace_ctx () in
          Alcotest.(check string)
            (proto.P.name ^ " ctx=" ^ trace_ctx)
            (prebudget_encode proto r)
            (proto.P.encode_message (P.Request r)))
        [ ""; "deadbeefdeadbeefdeadbeefdeadbeef-cafebabecafebabe" ])
    protocols

let test_prebudget_peer_to_new_decoder () =
  (* Bytes from a pre-budget peer: the new decoder reads them as "no
     deadline" instead of failing at end-of-message. *)
  List.iter
    (fun proto ->
      List.iter
        (fun trace_ctx ->
          let bytes = prebudget_encode proto (ctx_request ~trace_ctx ()) in
          match proto.P.decode_message bytes with
          | P.Request r ->
              Alcotest.(check (option int))
                (proto.P.name ^ " budget") None r.P.budget_us;
              Alcotest.(check string) (proto.P.name ^ " ctx") trace_ctx
                r.P.trace_ctx
          | _ -> Alcotest.fail "wrong message kind")
        [ ""; "deadbeefdeadbeefdeadbeefdeadbeef-cafebabecafebabe" ])
    protocols

let test_new_peer_to_prebudget_decoder () =
  (* Bytes WITH a budget, read by the pre-budget decoder: every field it
     knows about — including the trace context, which the budget forces
     onto the wire even when empty — decodes unchanged. *)
  List.iter
    (fun proto ->
      List.iter
        (fun trace_ctx ->
          let bytes =
            proto.P.encode_message
              (P.Request (ctx_request ~budget_us:750_000 ~trace_ctx ()))
          in
          let tag, req_id, operation, payload, ctx =
            prebudget_decode proto bytes
          in
          Alcotest.(check int) (proto.P.name ^ " tag") 0 tag;
          Alcotest.(check int) (proto.P.name ^ " req_id") 42 req_id;
          Alcotest.(check string) (proto.P.name ^ " op") "f" operation;
          Alcotest.(check string) (proto.P.name ^ " payload") "pay\008load"
            payload;
          Alcotest.(check string) (proto.P.name ^ " ctx") trace_ctx ctx)
        [ ""; "deadbeefdeadbeefdeadbeefdeadbeef-cafebabecafebabe" ])
    protocols

let test_hostile_budget_slots_rejected () =
  (* A damaged or hostile deadline slot must surface as Protocol_error
     (the recoverable "answer malformed-request and keep the
     connection" class), never a crash or a bogus deadline. *)
  List.iter
    (fun proto ->
      List.iter
        (fun hostile ->
          let e = proto.P.codec.Wire.Codec.encoder () in
          e.Wire.Codec.put_octet 0;
          e.Wire.Codec.put_ulong 7;
          e.Wire.Codec.put_bool false;
          e.Wire.Codec.put_string (Orb.Objref.to_string sample_target);
          e.Wire.Codec.put_string "f";
          e.Wire.Codec.put_string "payload";
          e.Wire.Codec.put_string "";  (* trace slot *)
          e.Wire.Codec.put_string hostile;
          match proto.P.decode_message (e.Wire.Codec.finish ()) with
          | exception P.Protocol_error _ -> ()
          | exception Wire.Codec.Type_error _ ->
              Alcotest.fail "Type_error leaked through decode_message"
          | _ ->
              Alcotest.failf "%s: hostile budget %S accepted" proto.P.name
                hostile)
        [ "-5"; "not-a-number"; "99999999999999999999999999999"; "1.5" ];
      (* The EMPTY slot is the one deliberate exception: the
         negotiation offer forces the budget position even when no
         deadline is set, so current decoders read [""] as [None]
         (peers that predate negotiation still reject it — see the
         interop tests). *)
      let e = proto.P.codec.Wire.Codec.encoder () in
      e.Wire.Codec.put_octet 0;
      e.Wire.Codec.put_ulong 7;
      e.Wire.Codec.put_bool false;
      e.Wire.Codec.put_string (Orb.Objref.to_string sample_target);
      e.Wire.Codec.put_string "f";
      e.Wire.Codec.put_string "payload";
      e.Wire.Codec.put_string "" (* trace slot *);
      e.Wire.Codec.put_string "" (* budget slot: forced empty *);
      match proto.P.decode_message (e.Wire.Codec.finish ()) with
      | P.Request r ->
          Alcotest.(check (option int))
            (proto.P.name ^ " empty budget decodes as None")
            None r.P.budget_us
      | _ -> Alcotest.failf "%s: empty budget slot did not decode" proto.P.name)
    protocols

(* ---------------- codec-negotiation slot interop ---------------- *)

(* The negotiation offer rides in a third trailing slot after the
   deadline budget; a present offer forces both earlier slots (the
   budget as the empty string when unset). Pinned in both directions
   against deadline-era peers. *)

(* The envelope exactly as deadline-era (pre-negotiation) peers decoded
   it: context slot if bytes remain, then a budget slot that must be a
   non-empty decimal — an empty budget is malformed to this decoder,
   which is precisely the signature the client's negotiation layer keys
   its re-send on. *)
let deadline_era_decode proto bytes =
  let d = proto.P.codec.Wire.Codec.decoder bytes in
  let tag = d.Wire.Codec.get_octet () in
  let req_id = d.Wire.Codec.get_ulong () in
  let _oneway = d.Wire.Codec.get_bool () in
  let _target = d.Wire.Codec.get_string () in
  let operation = d.Wire.Codec.get_string () in
  let payload = d.Wire.Codec.get_string () in
  let trace_ctx =
    if d.Wire.Codec.at_end () then "" else d.Wire.Codec.get_string ()
  in
  let budget_us =
    if d.Wire.Codec.at_end () then None
    else
      let s = d.Wire.Codec.get_string () in
      match int_of_string_opt s with
      | Some b when b >= 0 -> Some b
      | _ ->
          raise (P.Protocol_error (Printf.sprintf "malformed deadline slot %S" s))
  in
  (tag, req_id, operation, payload, trace_ctx, budget_us)

let nego_request ?budget_us ?(trace_ctx = "") ~offer () =
  { (ctx_request ?budget_us ~trace_ctx ()) with P.nego_offer = offer }

let test_nego_offer_roundtrip () =
  List.iter
    (fun proto ->
      List.iter
        (fun (budget_us, trace_ctx) ->
          let r = nego_request ?budget_us ~trace_ctx ~offer:"hcx/1,heidi-text/1" () in
          match proto.P.decode_message (proto.P.encode_message (P.Request r)) with
          | P.Request got ->
              Alcotest.(check string) (proto.P.name ^ " offer")
                "hcx/1,heidi-text/1" got.P.nego_offer;
              Alcotest.(check string) (proto.P.name ^ " ctx") trace_ctx
                got.P.trace_ctx;
              Alcotest.(check (option int)) (proto.P.name ^ " budget")
                budget_us got.P.budget_us;
              Alcotest.(check string) (proto.P.name ^ " payload") "pay\008load"
                got.P.payload
          | _ -> Alcotest.fail "wrong message kind")
        [ (None, ""); (Some 750_000, ""); (None, "cafe-babe"); (Some 1, "cafe-babe") ])
    protocols

let test_nego_answer_roundtrip () =
  List.iter
    (fun proto ->
      (match
         proto.P.decode_message
           (proto.P.encode_message
              (P.Reply
                 { P.rep_id = 4; status = P.Status_ok; payload = "result";
                   nego_answer = "hcx/1" }))
       with
      | P.Reply got ->
          Alcotest.(check string) (proto.P.name ^ " answer") "hcx/1"
            got.P.nego_answer;
          Alcotest.(check string) (proto.P.name ^ " payload") "result"
            got.P.payload
      | _ -> Alcotest.fail "wrong message kind");
      (* An answer-carrying reply read by a pre-negotiation reply
         decoder: every field it knows about decodes unchanged; the
         answer is trailing bytes it never touches. *)
      let bytes =
        proto.P.encode_message
          (P.Reply
             { P.rep_id = 9; status = P.Status_user_exception "IDL:E:1.0";
               payload = "xyz"; nego_answer = "hcx/1" })
      in
      let d = proto.P.codec.Wire.Codec.decoder bytes in
      Alcotest.(check int) (proto.P.name ^ " tag") 1 (d.Wire.Codec.get_octet ());
      Alcotest.(check int) (proto.P.name ^ " rep_id") 9 (d.Wire.Codec.get_ulong ());
      Alcotest.(check int) (proto.P.name ^ " status") 1 (d.Wire.Codec.get_octet ());
      Alcotest.(check string) (proto.P.name ^ " repo id") "IDL:E:1.0"
        (d.Wire.Codec.get_string ());
      Alcotest.(check string) (proto.P.name ^ " payload") "xyz"
        (d.Wire.Codec.get_string ()))
    protocols

(* The envelope exactly as deadline-era peers encoded it: legacy
   fields, the context slot iff needed, the budget slot iff set —
   never an offer. *)
let deadline_era_encode proto (r : P.request) =
  let e = proto.P.codec.Wire.Codec.encoder () in
  e.Wire.Codec.put_octet 0;
  e.Wire.Codec.put_ulong r.P.req_id;
  e.Wire.Codec.put_bool r.P.oneway;
  e.Wire.Codec.put_string (Orb.Objref.to_string r.P.target);
  e.Wire.Codec.put_string r.P.operation;
  e.Wire.Codec.put_string r.P.payload;
  (match r.P.budget_us with
  | None -> if r.P.trace_ctx <> "" then e.Wire.Codec.put_string r.P.trace_ctx
  | Some b ->
      e.Wire.Codec.put_string r.P.trace_ctx;
      e.Wire.Codec.put_string (string_of_int b));
  e.Wire.Codec.finish ()

let test_no_offer_is_byte_identical_to_prenego () =
  (* The backward-compatibility invariant: with no offer, the
     negotiation-era encoder produces the deadline-era encoding byte for
     byte, for every context/budget combination. *)
  List.iter
    (fun proto ->
      List.iter
        (fun (budget_us, trace_ctx) ->
          let r = ctx_request ?budget_us ~trace_ctx () in
          Alcotest.(check string)
            (Printf.sprintf "%s ctx=%S budget=%s" proto.P.name trace_ctx
               (match budget_us with None -> "-" | Some b -> string_of_int b))
            (deadline_era_encode proto r)
            (proto.P.encode_message (P.Request r)))
        [ (None, ""); (None, "cafe-babe"); (Some 750, ""); (Some 750, "cafe-babe") ])
    protocols

let test_offer_forces_slots () =
  (* A present offer forces the context and budget positions onto the
     wire — the budget as the empty string when unset — so the offer is
     always the third slot. *)
  List.iter
    (fun proto ->
      let bytes =
        proto.P.encode_message
          (P.Request (nego_request ~offer:"hcx/1" ()))
      in
      let d = proto.P.codec.Wire.Codec.decoder bytes in
      ignore (d.Wire.Codec.get_octet ());
      ignore (d.Wire.Codec.get_ulong ());
      ignore (d.Wire.Codec.get_bool ());
      ignore (d.Wire.Codec.get_string ());
      ignore (d.Wire.Codec.get_string ());
      ignore (d.Wire.Codec.get_string ());
      Alcotest.(check string) (proto.P.name ^ " forced ctx") ""
        (d.Wire.Codec.get_string ());
      Alcotest.(check string) (proto.P.name ^ " forced empty budget") ""
        (d.Wire.Codec.get_string ());
      Alcotest.(check string) (proto.P.name ^ " offer slot") "hcx/1"
        (d.Wire.Codec.get_string ());
      Alcotest.(check bool) (proto.P.name ^ " nothing after offer") true
        (d.Wire.Codec.at_end ()))
    protocols

let test_offer_to_deadline_era_decoder () =
  (* Offer-less messages decode fine on a deadline-era peer; an
     offer-carrying message with no budget trips its malformed-deadline
     check — recoverably, with the exact signature the client's
     negotiation layer re-sends on. A message with BOTH a budget and an
     offer decodes its known fields and only trips on the trailing
     offer, which that decoder never reads. *)
  List.iter
    (fun proto ->
      let plain = proto.P.encode_message (P.Request (ctx_request ~budget_us:500 ~trace_ctx:"" ())) in
      let _, _, _, _, _, budget = deadline_era_decode proto plain in
      Alcotest.(check (option int)) (proto.P.name ^ " plain budget") (Some 500) budget;
      let offered =
        proto.P.encode_message (P.Request (nego_request ~offer:"hcx/1" ()))
      in
      match deadline_era_decode proto offered with
      | exception P.Protocol_error m ->
          Alcotest.(check bool)
            (proto.P.name ^ " malformed-deadline signature")
            true
            (let needle = "malformed deadline slot" in
             let rec find i =
               i + String.length needle <= String.length m
               && (String.sub m i (String.length needle) = needle || find (i + 1))
             in
             find 0)
      | _ ->
          Alcotest.failf "%s: deadline-era peer accepted the forced-empty budget"
            proto.P.name)
    protocols

let test_hostile_nego_slots_rejected () =
  (* Oversized or charset-violating negotiation slots fail as
     recoverable protocol errors before any token is interpreted. *)
  List.iter
    (fun proto ->
      List.iter
        (fun hostile ->
          let e = proto.P.codec.Wire.Codec.encoder () in
          e.Wire.Codec.put_octet 0;
          e.Wire.Codec.put_ulong 7;
          e.Wire.Codec.put_bool false;
          e.Wire.Codec.put_string (Orb.Objref.to_string sample_target);
          e.Wire.Codec.put_string "f";
          e.Wire.Codec.put_string "payload";
          e.Wire.Codec.put_string "" (* trace slot *);
          e.Wire.Codec.put_string "" (* budget slot *);
          e.Wire.Codec.put_string hostile;
          match proto.P.decode_message (e.Wire.Codec.finish ()) with
          | exception P.Protocol_error _ -> ()
          | exception Wire.Codec.Type_error _ ->
              Alcotest.fail "Type_error leaked through decode_message"
          | _ ->
              Alcotest.failf "%s: hostile offer %S accepted" proto.P.name hostile)
        [
          String.make 300 'a';
          "HCX/1";
          "hcx/1; exec evil";
          "hcx/1\000";
          "h\xc3\xa1x/1";
        ])
    protocols

let test_nego_module () =
  Alcotest.(check string) "token" "hcx/1" (P.Nego.token P.hcx);
  Alcotest.(check string) "offer_of preserves preference order"
    "hcx/1,heidi-text/1"
    (P.Nego.offer_of [ P.hcx; P.text ]);
  Alcotest.(check (option (pair string int))) "parse" (Some ("hcx", 1))
    (P.Nego.parse_token "hcx/1");
  List.iter
    (fun bad ->
      Alcotest.(check (option (pair string int))) bad None (P.Nego.parse_token bad))
    [ "bogus"; "hcx/"; "/1"; "hcx/9x"; "hcx/-1"; "hcx/99999999999999999999" ];
  (* choose follows the client's preference order over the server's
     supported set, under the compatibility predicate. *)
  (match P.Nego.choose ~offer:"hcx/1" ~supported:[ P.hcx ] ~compatible:P.Nego.exact with
  | Some (p, tok) ->
      Alcotest.(check string) "chosen" "hcx" p.P.name;
      Alcotest.(check string) "answer token" "hcx/1" tok
  | None -> Alcotest.fail "no choice");
  (match
     P.Nego.choose ~offer:"giop-be/1,hcx/1"
       ~supported:[ P.hcx; Giop.protocol () ]
       ~compatible:P.Nego.exact
   with
  | Some (p, _) -> Alcotest.(check string) "client preference wins" "giop-be" p.P.name
  | None -> Alcotest.fail "no choice");
  (* Unknown tokens are skipped, not fatal. *)
  (match
     P.Nego.choose ~offer:"esiop/9,hcx/1" ~supported:[ P.hcx ]
       ~compatible:P.Nego.exact
   with
  | Some (p, _) -> Alcotest.(check string) "unknown skipped" "hcx" p.P.name
  | None -> Alcotest.fail "no choice");
  (* Version mismatch: vetoed under exact, allowed under a permissive
     predicate (the evolution-model hook). *)
  Alcotest.(check bool) "exact vetoes" true
    (P.Nego.choose ~offer:"hcx/2" ~supported:[ P.hcx ] ~compatible:P.Nego.exact
     = None);
  match
    P.Nego.choose ~offer:"hcx/2" ~supported:[ P.hcx ]
      ~compatible:(fun ~name:_ ~offered:_ ~local:_ -> true)
  with
  | Some (p, tok) ->
      Alcotest.(check string) "permissive accepts" "hcx" p.P.name;
      (* The answer echoes OUR version: the predicate vouched for the pair. *)
      Alcotest.(check string) "answer is local version" "hcx/1" tok
  | None -> Alcotest.fail "no choice"

(* ---------------- locate-reply forward slot interop ---------------- *)

(* The forward objref rides in a slot appended after the historical
   locate-reply fields and omitted when [None] — same compatibility
   scheme as the trace context, pinned in both directions. *)

(* A locate reply exactly as pre-forward peers encoded it. *)
let legacy_locate_encode proto ~rep_id ~found =
  let e = proto.P.codec.Wire.Codec.encoder () in
  e.Wire.Codec.put_octet 3;
  e.Wire.Codec.put_ulong rep_id;
  e.Wire.Codec.put_bool found;
  e.Wire.Codec.finish ()

(* ... and the matching pre-forward decoder, which never looks past
   the [found] flag. *)
let legacy_locate_decode proto bytes =
  let d = proto.P.codec.Wire.Codec.decoder bytes in
  let tag = d.Wire.Codec.get_octet () in
  let rep_id = d.Wire.Codec.get_ulong () in
  let found = d.Wire.Codec.get_bool () in
  (tag, rep_id, found)

let test_old_locate_peer_to_new_decoder () =
  List.iter
    (fun proto ->
      let bytes = legacy_locate_encode proto ~rep_id:7 ~found:true in
      match proto.P.decode_message bytes with
      | P.Locate_reply { rep_id; found; forward } ->
          Alcotest.(check int) (proto.P.name ^ " rep_id") 7 rep_id;
          Alcotest.(check bool) (proto.P.name ^ " found") true found;
          Alcotest.(check bool) (proto.P.name ^ " no forward") true (forward = None)
      | _ -> Alcotest.fail "wrong message kind")
    protocols

let test_new_locate_peer_to_old_decoder () =
  (* Bytes WITH a forward, read by the pre-forward decoder: the fields
     it knows about decode unchanged; the forward is trailing bytes. *)
  List.iter
    (fun proto ->
      let bytes =
        proto.P.encode_message
          (P.Locate_reply { rep_id = 9; found = true; forward = Some multi_target })
      in
      let tag, rep_id, found = legacy_locate_decode proto bytes in
      Alcotest.(check int) (proto.P.name ^ " tag") 3 tag;
      Alcotest.(check int) (proto.P.name ^ " rep_id") 9 rep_id;
      Alcotest.(check bool) (proto.P.name ^ " found") true found)
    protocols

let test_no_forward_is_byte_identical_to_legacy () =
  List.iter
    (fun proto ->
      Alcotest.(check string) proto.P.name
        (legacy_locate_encode proto ~rep_id:11 ~found:false)
        (proto.P.encode_message
           (P.Locate_reply { rep_id = 11; found = false; forward = None })))
    protocols

let test_text_message_is_a_line () =
  let bytes = P.text.P.encode_message (sample_request "l1 s\"x\"") in
  Alcotest.(check bool) "no newline" false (String.contains bytes '\n')

(* ---------------- framing through a channel ---------------- *)

let exchange_frames proto msgs =
  let listener = Orb.Transport.listen ~proto:"mem" ~host:"local" ~port:0 in
  let port = listener.Orb.Transport.bound_port in
  let received = ref [] in
  let server =
    Thread.create
      (fun () ->
        let chan = listener.Orb.Transport.accept () in
        let comm = Orb.Communicator.wrap proto chan in
        List.iter (fun _ -> received := Orb.Communicator.recv comm :: !received) msgs;
        Orb.Communicator.close comm)
      ()
  in
  let chan = Orb.Transport.connect ~proto:"mem" ~host:"local" ~port in
  let comm = Orb.Communicator.wrap proto chan in
  List.iter (fun m -> Orb.Communicator.send comm m) msgs;
  Thread.join server;
  Orb.Communicator.close comm;
  listener.Orb.Transport.shutdown ();
  List.rev !received

let test_framing_preserves_message_boundaries () =
  List.iter
    (fun proto ->
      let msgs =
        [
          sample_request "payload-1";
          P.Reply
            { P.rep_id = 1; status = P.Status_ok; payload = "payload-2";
              nego_answer = "" };
          sample_request "";
        ]
      in
      let got = exchange_frames proto msgs in
      Alcotest.(check int) (proto.P.name ^ " count") 3 (List.length got);
      List.iter2
        (fun want have ->
          let payload = function
            | P.Request r -> r.P.payload
            | P.Reply r -> r.P.payload
            | P.Locate_request _ | P.Locate_reply _ | P.Locate_forward _ -> ""
          in
          Alcotest.(check string) proto.P.name (payload want) (payload have))
        msgs got)
    protocols

let test_giop_frame_header () =
  let proto = Giop.protocol () in
  let listener = Orb.Transport.listen ~proto:"mem" ~host:"local" ~port:0 in
  let port = listener.Orb.Transport.bound_port in
  let t =
    Thread.create
      (fun () ->
        let chan = listener.Orb.Transport.accept () in
        let comm = Orb.Communicator.wrap proto chan in
        ignore (Orb.Communicator.send comm (sample_request "x"));
        Orb.Communicator.close comm)
      ()
  in
  let chan = Orb.Transport.connect ~proto:"mem" ~host:"local" ~port in
  let header = chan.Orb.Transport.read_line () in
  Thread.join t;
  Alcotest.(check string) "magic" Giop.magic (String.sub header 0 (String.length Giop.magic));
  Alcotest.(check int) "header length" (String.length Giop.magic + 8) (String.length header);
  chan.Orb.Transport.close ();
  listener.Orb.Transport.shutdown ()

let test_hcx_frame_header () =
  (* HCX framing on the wire: one magic byte, an LEB128 length varint,
     then exactly [length] body bytes that decode as the message. *)
  let proto = P.hcx in
  let listener = Orb.Transport.listen ~proto:"mem" ~host:"local" ~port:0 in
  let port = listener.Orb.Transport.bound_port in
  let msg = sample_request "frame-me" in
  let t =
    Thread.create
      (fun () ->
        let chan = listener.Orb.Transport.accept () in
        let comm = Orb.Communicator.wrap proto chan in
        Orb.Communicator.send comm msg;
        Orb.Communicator.close comm)
      ()
  in
  let chan = Orb.Transport.connect ~proto:"mem" ~host:"local" ~port in
  Alcotest.(check char) "magic byte" P.hcx_magic
    (chan.Orb.Transport.read_exact 1).[0];
  let len =
    let v = ref 0 and shift = ref 0 and continue = ref true in
    while !continue do
      let b = Char.code (chan.Orb.Transport.read_exact 1).[0] in
      v := !v lor ((b land 0x7f) lsl !shift);
      shift := !shift + 7;
      continue := b land 0x80 <> 0
    done;
    !v
  in
  let body = chan.Orb.Transport.read_exact len in
  Thread.join t;
  (match proto.P.decode_message body with
  | P.Request r -> Alcotest.(check string) "body decodes" "frame-me" r.P.payload
  | _ -> Alcotest.fail "wrong message kind");
  Alcotest.(check char) "body starts with the codec version byte" '\001'
    body.[0];
  chan.Orb.Transport.close ();
  listener.Orb.Transport.shutdown ()

let () =
  Alcotest.run "protocol"
    [
      ( "envelope",
        [
          Alcotest.test_case "request round-trip" `Quick test_request_roundtrip;
          Alcotest.test_case "reply round-trip" `Quick test_reply_roundtrip;
          Alcotest.test_case "locate round-trip" `Quick test_locate_roundtrip;
          Alcotest.test_case "multi-endpoint request round-trip" `Quick
            test_multi_endpoint_request_roundtrip;
          Alcotest.test_case "malformed forward rejected" `Quick
            test_malformed_forward_rejected;
          Alcotest.test_case "payload encapsulation" `Quick test_payload_encapsulation;
          Alcotest.test_case "malformed messages" `Quick test_malformed_messages;
          Alcotest.test_case "bad target rejected" `Quick test_bad_target_rejected;
          Alcotest.test_case "text message is one line" `Quick test_text_message_is_a_line;
        ] );
      ( "service context",
        [
          Alcotest.test_case "trace-context round-trip" `Quick test_trace_ctx_roundtrip;
          Alcotest.test_case "old peer -> new decoder" `Quick test_old_peer_to_new_decoder;
          Alcotest.test_case "new peer -> old decoder" `Quick test_new_peer_to_old_decoder;
          Alcotest.test_case "deadline budget round-trip" `Quick test_budget_roundtrip;
          Alcotest.test_case "no budget is the pre-budget encoding" `Quick
            test_no_budget_is_byte_identical_to_prebudget;
          Alcotest.test_case "pre-budget peer -> new decoder" `Quick
            test_prebudget_peer_to_new_decoder;
          Alcotest.test_case "new peer -> pre-budget decoder" `Quick
            test_new_peer_to_prebudget_decoder;
          Alcotest.test_case "hostile budget slots rejected" `Quick
            test_hostile_budget_slots_rejected;
          Alcotest.test_case "empty context is the legacy encoding" `Quick
            test_empty_ctx_is_byte_identical_to_legacy;
          Alcotest.test_case "old locate peer -> new decoder" `Quick
            test_old_locate_peer_to_new_decoder;
          Alcotest.test_case "new locate peer -> old decoder" `Quick
            test_new_locate_peer_to_old_decoder;
          Alcotest.test_case "no forward is the legacy encoding" `Quick
            test_no_forward_is_byte_identical_to_legacy;
        ] );
      ( "negotiation",
        [
          Alcotest.test_case "offer round-trip" `Quick test_nego_offer_roundtrip;
          Alcotest.test_case "answer round-trip + old decoder" `Quick
            test_nego_answer_roundtrip;
          Alcotest.test_case "no offer is the deadline-era encoding" `Quick
            test_no_offer_is_byte_identical_to_prenego;
          Alcotest.test_case "offer forces earlier slots" `Quick
            test_offer_forces_slots;
          Alcotest.test_case "offer -> deadline-era decoder" `Quick
            test_offer_to_deadline_era_decoder;
          Alcotest.test_case "hostile nego slots rejected" `Quick
            test_hostile_nego_slots_rejected;
          Alcotest.test_case "Nego module" `Quick test_nego_module;
        ] );
      ( "framing",
        [
          Alcotest.test_case "message boundaries" `Quick test_framing_preserves_message_boundaries;
          Alcotest.test_case "GIOP frame header" `Quick test_giop_frame_header;
          Alcotest.test_case "HCX frame header" `Quick test_hcx_frame_header;
        ] );
    ]
