(* Protocol envelope tests: the request/reply messages of both the text
   protocol and the GIOP-like binary protocol, plus framing. *)

module P = Orb.Protocol

let protocols =
  [
    P.text;
    Giop.protocol ();
    Giop.protocol ~order:Wire.Cdr_codec.Little_endian ();
  ]

let sample_target =
  Orb.Objref.make ~proto:"tcp" ~host:"galaxy.nec.com" ~port:1234 ~oid:"9876"
    ~type_id:"IDL:Heidi/A:1.0"

let sample_request payload =
  P.Request
    { P.req_id = 42; target = sample_target; operation = "f"; oneway = false; payload }

let check_message proto msg =
  let bytes = proto.P.encode_message msg in
  let back = proto.P.decode_message bytes in
  let render = function
    | P.Request r ->
        Printf.sprintf "req %d %s %s %b %S" r.P.req_id
          (Orb.Objref.to_string r.P.target)
          r.P.operation r.P.oneway r.P.payload
    | P.Reply r ->
        Printf.sprintf "rep %d %s %S" r.P.rep_id
          (match r.P.status with
          | P.Status_ok -> "ok"
          | P.Status_user_exception id -> "exn " ^ id
          | P.Status_system_error m -> "err " ^ m)
          r.P.payload
    | P.Locate_request { req_id; target } ->
        Printf.sprintf "locate %d %s" req_id (Orb.Objref.to_string target)
    | P.Locate_reply { rep_id; found } -> Printf.sprintf "located %d %b" rep_id found
  in
  Alcotest.(check string) proto.P.name (render msg) (render back)

let test_request_roundtrip () =
  List.iter
    (fun proto ->
      let payload =
        let e = proto.P.codec.Wire.Codec.encoder () in
        e.Wire.Codec.put_long 7;
        e.Wire.Codec.put_string "arg";
        e.Wire.Codec.finish ()
      in
      check_message proto (sample_request payload);
      check_message proto (sample_request "");
      check_message proto
        (P.Request
           { P.req_id = 0; target = sample_target; operation = "_get_state";
             oneway = true; payload }))
    protocols

let test_locate_roundtrip () =
  List.iter
    (fun proto ->
      check_message proto (P.Locate_request { req_id = 5; target = sample_target });
      check_message proto (P.Locate_reply { rep_id = 5; found = true });
      check_message proto (P.Locate_reply { rep_id = 6; found = false }))
    protocols

let test_reply_roundtrip () =
  List.iter
    (fun proto ->
      check_message proto (P.Reply { P.rep_id = 1; status = P.Status_ok; payload = "" });
      check_message proto
        (P.Reply
           { P.rep_id = 9999; status = P.Status_user_exception "IDL:E:1.0";
             payload = "xyz" });
      check_message proto
        (P.Reply
           { P.rep_id = 3; status = P.Status_system_error "no object"; payload = "" }))
    protocols

let test_payload_encapsulation () =
  (* The payload travels as an opaque counted string: binary payload
     bytes survive embedding in the envelope of every protocol. *)
  let binary_payload = "\000\001\255\n\"raw\" \\bytes\000" in
  List.iter
    (fun proto ->
      match proto.P.decode_message (proto.P.encode_message (sample_request binary_payload)) with
      | P.Request r -> Alcotest.(check string) proto.P.name binary_payload r.P.payload
      | _ -> Alcotest.fail "wrong message kind")
    [ Giop.protocol (); Giop.protocol ~order:Wire.Cdr_codec.Little_endian () ]

let test_malformed_messages () =
  List.iter
    (fun proto ->
      List.iter
        (fun bytes ->
          match proto.P.decode_message bytes with
          | exception P.Protocol_error _ -> ()
          | exception Wire.Codec.Type_error _ ->
              Alcotest.fail "Type_error leaked through decode_message"
          | _ -> Alcotest.failf "%s: expected protocol error" proto.P.name)
        [ ""; "garbage"; "\042" ])
    protocols

let test_bad_target_rejected () =
  let proto = P.text in
  (* Hand-craft a request whose target reference is malformed. *)
  let e = proto.P.codec.Wire.Codec.encoder () in
  e.Wire.Codec.put_octet 0;
  e.Wire.Codec.put_ulong 1;
  e.Wire.Codec.put_bool false;
  e.Wire.Codec.put_string "not-a-reference";
  e.Wire.Codec.put_string "op";
  e.Wire.Codec.put_string "";
  match proto.P.decode_message (e.Wire.Codec.finish ()) with
  | exception P.Protocol_error _ -> ()
  | _ -> Alcotest.fail "malformed target accepted"

let test_text_message_is_a_line () =
  let bytes = P.text.P.encode_message (sample_request "l1 s\"x\"") in
  Alcotest.(check bool) "no newline" false (String.contains bytes '\n')

(* ---------------- framing through a channel ---------------- *)

let exchange_frames proto msgs =
  let listener = Orb.Transport.listen ~proto:"mem" ~host:"local" ~port:0 in
  let port = listener.Orb.Transport.bound_port in
  let received = ref [] in
  let server =
    Thread.create
      (fun () ->
        let chan = listener.Orb.Transport.accept () in
        let comm = Orb.Communicator.wrap proto chan in
        List.iter (fun _ -> received := Orb.Communicator.recv comm :: !received) msgs;
        Orb.Communicator.close comm)
      ()
  in
  let chan = Orb.Transport.connect ~proto:"mem" ~host:"local" ~port in
  let comm = Orb.Communicator.wrap proto chan in
  List.iter (fun m -> Orb.Communicator.send comm m) msgs;
  Thread.join server;
  Orb.Communicator.close comm;
  listener.Orb.Transport.shutdown ();
  List.rev !received

let test_framing_preserves_message_boundaries () =
  List.iter
    (fun proto ->
      let msgs =
        [
          sample_request "payload-1";
          P.Reply { P.rep_id = 1; status = P.Status_ok; payload = "payload-2" };
          sample_request "";
        ]
      in
      let got = exchange_frames proto msgs in
      Alcotest.(check int) (proto.P.name ^ " count") 3 (List.length got);
      List.iter2
        (fun want have ->
          let payload = function
            | P.Request r -> r.P.payload
            | P.Reply r -> r.P.payload
            | P.Locate_request _ | P.Locate_reply _ -> ""
          in
          Alcotest.(check string) proto.P.name (payload want) (payload have))
        msgs got)
    protocols

let test_giop_frame_header () =
  let proto = Giop.protocol () in
  let listener = Orb.Transport.listen ~proto:"mem" ~host:"local" ~port:0 in
  let port = listener.Orb.Transport.bound_port in
  let t =
    Thread.create
      (fun () ->
        let chan = listener.Orb.Transport.accept () in
        let comm = Orb.Communicator.wrap proto chan in
        ignore (Orb.Communicator.send comm (sample_request "x"));
        Orb.Communicator.close comm)
      ()
  in
  let chan = Orb.Transport.connect ~proto:"mem" ~host:"local" ~port in
  let header = chan.Orb.Transport.read_line () in
  Thread.join t;
  Alcotest.(check string) "magic" Giop.magic (String.sub header 0 (String.length Giop.magic));
  Alcotest.(check int) "header length" (String.length Giop.magic + 8) (String.length header);
  chan.Orb.Transport.close ();
  listener.Orb.Transport.shutdown ()

let () =
  Alcotest.run "protocol"
    [
      ( "envelope",
        [
          Alcotest.test_case "request round-trip" `Quick test_request_roundtrip;
          Alcotest.test_case "reply round-trip" `Quick test_reply_roundtrip;
          Alcotest.test_case "locate round-trip" `Quick test_locate_roundtrip;
          Alcotest.test_case "payload encapsulation" `Quick test_payload_encapsulation;
          Alcotest.test_case "malformed messages" `Quick test_malformed_messages;
          Alcotest.test_case "bad target rejected" `Quick test_bad_target_rejected;
          Alcotest.test_case "text message is one line" `Quick test_text_message_is_a_line;
        ] );
      ( "framing",
        [
          Alcotest.test_case "message boundaries" `Quick test_framing_preserves_message_boundaries;
          Alcotest.test_case "GIOP frame header" `Quick test_giop_frame_header;
        ] );
    ]
