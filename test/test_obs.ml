(* Observability tests: span lifecycle, trace-context propagation across
   address spaces, wire-byte metrics, sinks, and the stock interceptor.
   The tcp test is the layer's acceptance criterion: a real two-process
   -style call yields a client span and a server span sharing one trace
   id, with all four client phase timings populated. *)

module Trace = Obs.Trace
module Metrics = Obs.Metrics

let echo_type = "IDL:Test/Echo:1.0"

let echo_skeleton () =
  Orb.Skeleton.create ~type_id:echo_type
    [
      ("echo", fun args results ->
          results.Wire.Codec.put_string ("echo:" ^ args.Wire.Codec.get_string ()));
      ("fail", fun _ _ ->
          raise
            (Orb.Skeleton.User_exception
               {
                 repo_id = "IDL:Test/Oops:1.0";
                 encode = (fun e -> e.Wire.Codec.put_string "why");
               }));
      ("noreply", fun args _ -> ignore (args.Wire.Codec.get_string ()));
    ]

let invoke_string client target ~op s =
  match Orb.invoke client target ~op (fun e -> e.Wire.Codec.put_string s) with
  | Some d -> d.Wire.Codec.get_string ()
  | None -> Alcotest.fail "expected a reply"

(* Spans travel from the server's dispatch thread to the test thread;
   poll the ring until the expected count arrives. *)
let await_spans ?(n = 1) read =
  let deadline = Unix.gettimeofday () +. 2.0 in
  let rec go () =
    let spans = read () in
    if List.length spans >= n || Unix.gettimeofday () > deadline then spans
    else (
      Thread.delay 0.01;
      go ())
  in
  go ()

(* ---------------- context codec ---------------- *)

let test_context_roundtrip () =
  let s = Trace.start_client ~operation:"f" ~endpoint:"mem:local:1" () in
  (match Trace.decode_context (Trace.encode_context s) with
  | Some (trace_id, span_id) ->
      Alcotest.(check string) "trace id" s.Trace.trace_id trace_id;
      Alcotest.(check string) "span id" s.Trace.span_id span_id
  | None -> Alcotest.fail "well-formed context did not decode");
  Alcotest.(check int) "trace id width" 16 (String.length s.Trace.trace_id);
  Alcotest.(check int) "span id width" 8 (String.length s.Trace.span_id)

let test_context_tolerance () =
  (* Propagation must never fail a call: every malformed input decodes
     to None (= start a fresh root), never an exception. *)
  List.iter
    (fun bad ->
      match Trace.decode_context bad with
      | None -> ()
      | Some _ -> Alcotest.failf "accepted malformed context %S" bad)
    [
      "";
      "-";
      "nohyphen";
      "0123456789abcdef";  (* missing span part *)
      "0123456789abcdef-";  (* empty span part *)
      "-00112233";  (* empty trace part *)
      "0123456789ABCDEF-00112233";  (* upper case is not ours *)
      "0123456789abcdeg-00112233";  (* non-hex *)
      "0123456789abcdef-00112233-extra";
      "x";
    ]

let test_ids_unique () =
  let ids = List.init 64 (fun _ -> Trace.new_span_id ()) in
  Alcotest.(check int) "no collisions in 64 draws" 64
    (List.length (List.sort_uniq compare ids))

let test_span_lifecycle () =
  let s = Trace.start_client ~operation:"f" ~endpoint:"e" () in
  Alcotest.(check bool) "unfinished" false (Trace.finished s);
  Alcotest.(check bool) "duration NaN while open" true
    (Float.is_nan (Trace.duration s));
  Trace.note s "k" "v";
  Trace.finish s Trace.Ok;
  Alcotest.(check bool) "finished" true (Trace.finished s);
  Alcotest.(check bool) "duration set" true (Trace.duration s >= 0.);
  (* JSON renders without raising and carries the ids. *)
  let json = Trace.to_json s in
  Tutil.check_contains ~what:"json trace id" json s.Trace.trace_id;
  Tutil.check_contains ~what:"json note" json "\"k\"";
  (* Server span joins the client's trace. *)
  let srv =
    Trace.start_server
      ?context:(Trace.decode_context (Trace.encode_context s))
      ~operation:"f" ~endpoint:"e" ()
  in
  Alcotest.(check string) "joined trace" s.Trace.trace_id srv.Trace.trace_id;
  Alcotest.(check (option string)) "parent" (Some s.Trace.span_id)
    srv.Trace.parent_id

(* ---------------- metrics ---------------- *)

let test_histogram_buckets () =
  let m = Metrics.create () in
  Metrics.observe m ~name:"h" 1.5e-6;  (* second bucket: (1e-6, 2e-6] *)
  Metrics.observe m ~name:"h" 0.003;
  Metrics.observe m ~name:"h" 0.003;
  Metrics.observe m ~name:"h" 100.0;  (* overflow *)
  Metrics.observe m ~name:"h" Float.nan;  (* dropped: untimed phase *)
  let snap = Metrics.snapshot m in
  match snap.Metrics.latencies with
  | [ h ] ->
      Alcotest.(check string) "name" "h" h.Metrics.name;
      Alcotest.(check int) "total excludes NaN" 4 h.Metrics.total;
      Alcotest.(check (float 1e-9)) "max" 100.0 h.Metrics.max_s;
      let count_at bound =
        try List.assoc bound h.Metrics.buckets with Not_found -> 0
      in
      Alcotest.(check int) "2us bucket" 1 (count_at 2e-6);
      Alcotest.(check int) "5ms bucket" 2 (count_at 0.005);
      Alcotest.(check int) "overflow bucket" 1 (count_at infinity);
      Alcotest.(check int) "bucket counts sum to total" h.Metrics.total
        (List.fold_left (fun acc (_, c) -> acc + c) 0 h.Metrics.buckets)
  | l -> Alcotest.failf "expected one histogram, got %d" (List.length l)

let test_byte_counters () =
  let m = Metrics.create () in
  Metrics.add_bytes m ~endpoint:"tcp:h:1" ~dir:`Out 10;
  Metrics.add_bytes m ~endpoint:"tcp:h:1" ~dir:`Out 5;
  Metrics.add_bytes m ~endpoint:"tcp:h:1" ~dir:`In 7;
  Metrics.add_bytes m ~endpoint:"tcp:h:2" ~dir:`In 1;
  let snap = Metrics.snapshot m in
  match snap.Metrics.endpoints with
  | [ a; b ] ->
      Alcotest.(check string) "sorted" "tcp:h:1" a.Metrics.endpoint;
      Alcotest.(check int) "out" 15 a.Metrics.bytes_out;
      Alcotest.(check int) "in" 7 a.Metrics.bytes_in;
      Alcotest.(check int) "writes" 2 a.Metrics.writes;
      Alcotest.(check int) "reads" 1 a.Metrics.reads;
      Alcotest.(check int) "other endpoint" 1 b.Metrics.bytes_in
  | l -> Alcotest.failf "expected two endpoints, got %d" (List.length l)

let test_snapshot_json () =
  let obs = Obs.create () in
  Obs.observe obs ~name:"invoke:echo" 0.004;
  Obs.add_bytes obs ~endpoint:"mem:local:9" ~dir:`Out 33;
  Obs.incr obs ~name:"req:echo";
  let json = Obs.snapshot_to_json (Obs.snapshot obs) in
  List.iter
    (fun frag -> Tutil.check_contains ~what:("json has " ^ frag) json frag)
    [
      "\"spans_emitted\""; "\"latencies\""; "\"invoke:echo\"";
      "\"endpoints\""; "\"mem:local:9\""; "\"bytes_out\": 33";
      "\"counters\""; "\"req:echo\"";
    ]

(* ---------------- sinks ---------------- *)

let finished_span op =
  let s = Trace.start_client ~operation:op ~endpoint:"e" () in
  Trace.finish s Trace.Ok;
  s

let test_ring_sink () =
  let sink, read = Obs.Sink.ring ~capacity:3 () in
  for i = 1 to 5 do
    sink.Obs.Sink.emit (finished_span (string_of_int i))
  done;
  let ops = List.map (fun s -> s.Trace.operation) (read ()) in
  (* Bounded: the two oldest were dropped; reader is oldest-first. *)
  Alcotest.(check (list string)) "ring keeps newest, in order"
    [ "3"; "4"; "5" ] ops

let test_sink_exceptions_swallowed () =
  let obs = Obs.create () in
  Obs.add_sink obs (Obs.Sink.make ~name:"bomb" (fun _ -> failwith "boom"));
  let sink, read = Obs.Sink.ring () in
  Obs.add_sink obs sink;
  Obs.emit obs (finished_span "x");
  Alcotest.(check int) "later sinks still run" 1 (List.length (read ()));
  Alcotest.(check int) "span counted" 1 (Obs.snapshot obs).Obs.spans_emitted;
  Alcotest.(check (list string)) "both sinks registered" [ "bomb"; "ring" ]
    (Obs.sink_names obs)

let test_disabled_is_inert () =
  let obs = Obs.create ~enabled:false () in
  let sink, read = Obs.Sink.ring () in
  Obs.add_sink obs sink;
  Obs.emit obs (finished_span "x");
  Obs.observe obs ~name:"h" 1.0;
  Obs.add_bytes obs ~endpoint:"e" ~dir:`In 1;
  Obs.incr obs ~name:"c";
  Alcotest.(check int) "no spans" 0 (List.length (read ()));
  let snap = Obs.snapshot obs in
  Alcotest.(check int) "no latencies" 0 (List.length snap.Obs.metrics.Metrics.latencies);
  Alcotest.(check int) "no endpoints" 0 (List.length snap.Obs.metrics.Metrics.endpoints);
  Alcotest.(check int) "no counters" 0 (List.length snap.Obs.metrics.Metrics.counters)

(* ---------------- end to end ---------------- *)

let with_traced_pair ~transport ~host f =
  let server_obs = Obs.create () in
  let client_obs = Obs.create () in
  let server = Orb.create ~transport ~host ~obs:server_obs () in
  Orb.start server;
  let client = Orb.create ~transport ~host ~obs:client_obs () in
  Fun.protect
    ~finally:(fun () ->
      Orb.shutdown client;
      Orb.shutdown server)
    (fun () -> f ~server ~client ~server_obs ~client_obs)

(* Acceptance criterion: a traced call over real TCP produces a client
   span and a server span sharing one trace id, parent-linked, with all
   four client phase timings populated. *)
let test_tcp_trace_propagation () =
  with_traced_pair ~transport:"tcp" ~host:"127.0.0.1"
    (fun ~server ~client ~server_obs ~client_obs ->
      let client_sink, client_spans = Obs.Sink.ring () in
      Obs.add_sink client_obs client_sink;
      let server_sink, server_spans = Obs.Sink.ring () in
      Obs.add_sink server_obs server_sink;
      let target = Orb.export server (echo_skeleton ()) in
      Alcotest.(check string) "call works" "echo:hi"
        (invoke_string client target ~op:"echo" "hi");
      let cs =
        match client_spans () with [ s ] -> s | l -> Alcotest.failf "client spans: %d" (List.length l)
      in
      let ss =
        match await_spans server_spans with
        | [ s ] -> s
        | l -> Alcotest.failf "server spans: %d" (List.length l)
      in
      Alcotest.(check string) "one trace" cs.Trace.trace_id ss.Trace.trace_id;
      Alcotest.(check (option string)) "parent link" (Some cs.Trace.span_id)
        ss.Trace.parent_id;
      Alcotest.(check bool) "client kind" true (cs.Trace.kind = Trace.Client);
      Alcotest.(check bool) "server kind" true (ss.Trace.kind = Trace.Server);
      Alcotest.(check string) "operation" "echo" cs.Trace.operation;
      Alcotest.(check bool) "outcomes ok" true
        (cs.Trace.outcome = Some Trace.Ok && ss.Trace.outcome = Some Trace.Ok);
      (* All four client phases were timed. *)
      List.iter
        (fun (name, v) ->
          Alcotest.(check bool) (name ^ " populated") false (Float.is_nan v))
        [
          ("marshal", cs.Trace.marshal_s);
          ("send", cs.Trace.send_s);
          ("wait", cs.Trace.wait_s);
          ("unmarshal", cs.Trace.unmarshal_s);
        ];
      Alcotest.(check bool) "req ids assigned" true
        (cs.Trace.req_id > 0 && cs.Trace.req_id = ss.Trace.req_id);
      (* Wire metrics flowed on both sides. *)
      (* Every metered byte is double-accounted: once under the plain
         endpoint label and once under a per-codec twin
         ([<codec>:<endpoint>]). The plain label holds the totals; the
         twin must mirror it exactly here, since all traffic travelled
         in the base codec. *)
      let bytes_of obs =
        let eps = (Obs.snapshot obs).Obs.metrics.Metrics.endpoints in
        match
          List.partition
            (fun e -> String.starts_with ~prefix:"tcp:" e.Metrics.endpoint)
            eps
        with
        | [ e ], [ twin ] ->
            Alcotest.(check string) "per-codec twin label"
              ("heidi-text:" ^ e.Metrics.endpoint)
              twin.Metrics.endpoint;
            Alcotest.(check int) "per-codec twin in" e.Metrics.bytes_in
              twin.Metrics.bytes_in;
            Alcotest.(check int) "per-codec twin out" e.Metrics.bytes_out
              twin.Metrics.bytes_out;
            (e.Metrics.bytes_in, e.Metrics.bytes_out)
        | l, l' -> Alcotest.failf "endpoints: %d + %d" (List.length l) (List.length l')
      in
      let cin, cout = bytes_of client_obs in
      Alcotest.(check bool) "client bytes counted" true (cin > 0 && cout > 0);
      (* Loopback conservation: what one side wrote the other read. The
         server's counters are bumped on its dispatch thread after the
         write syscall returns — the client can observe the reply a
         moment earlier, so poll like [await_spans] does. *)
      let sin_, sout =
        let deadline = Unix.gettimeofday () +. 2.0 in
        let rec go () =
          let (sin_, sout) = bytes_of server_obs in
          if (sin_ = cout && sout = cin) || Unix.gettimeofday () > deadline
          then (sin_, sout)
          else (
            Thread.delay 0.01;
            go ())
        in
        go ()
      in
      Alcotest.(check int) "client out = server in" cout sin_;
      Alcotest.(check int) "server out = client in" sout cin;
      (* Latency histograms were fed on both sides. *)
      let hist_names obs =
        List.map
          (fun h -> h.Metrics.name)
          (Obs.snapshot obs).Obs.metrics.Metrics.latencies
      in
      Alcotest.(check (list string)) "client histogram" [ "invoke:echo" ]
        (hist_names client_obs);
      Alcotest.(check (list string)) "server histogram" [ "dispatch:echo" ]
        (hist_names server_obs))

let test_outcomes_recorded () =
  with_traced_pair ~transport:"mem" ~host:"local"
    (fun ~server ~client ~server_obs:_ ~client_obs ->
      let sink, spans = Obs.Sink.ring () in
      Obs.add_sink client_obs sink;
      let target = Orb.export server (echo_skeleton ()) in
      (match Orb.invoke client target ~op:"fail" (fun _ -> ()) with
      | exception Orb.Remote_exception _ -> ()
      | _ -> Alcotest.fail "expected Remote_exception");
      (match Orb.invoke client target ~op:"nope" (fun _ -> ()) with
      | exception Orb.System_exception _ -> ()
      | _ -> Alcotest.fail "expected System_exception");
      ignore
        (Orb.invoke client target ~op:"noreply" ~oneway:true (fun e ->
             e.Wire.Codec.put_string "x"));
      match spans () with
      | [ s1; s2; s3 ] ->
          Alcotest.(check bool) "user exception outcome" true
            (s1.Trace.outcome = Some (Trace.User_exception "IDL:Test/Oops:1.0"));
          (match s2.Trace.outcome with
          | Some (Trace.System_error _) -> ()
          | o ->
              Alcotest.failf "system error outcome: %s"
                (match o with Some o -> Trace.outcome_to_string o | None -> "none"));
          Alcotest.(check bool) "oneway ok" true (s3.Trace.outcome = Some Trace.Ok);
          (* A oneway call never waits: the wait phase stays untimed. *)
          Alcotest.(check bool) "oneway wait untimed" true
            (Float.is_nan s3.Trace.wait_s)
      | l -> Alcotest.failf "expected 3 spans, got %d" (List.length l))

let test_locate_and_probe_emit_no_spans () =
  (* Control-plane traffic (locate; also the breaker's half-open probe,
     which shares the span-less path) must not pollute call traces. *)
  with_traced_pair ~transport:"mem" ~host:"local"
    (fun ~server ~client ~server_obs ~client_obs ->
      let csink, cspans = Obs.Sink.ring () in
      Obs.add_sink client_obs csink;
      let ssink, sspans = Obs.Sink.ring () in
      Obs.add_sink server_obs ssink;
      let target = Orb.export server (echo_skeleton ()) in
      Alcotest.(check bool) "located" true (Orb.locate client target);
      Alcotest.(check bool) "missing" false
        (Orb.locate client { target with Orb.Objref.oid = "none" });
      Thread.delay 0.05;
      Alcotest.(check int) "no client spans" 0 (List.length (cspans ()));
      Alcotest.(check int) "no server spans" 0 (List.length (sspans ()));
      (* ... but a traced call right after still produces its pair. *)
      Alcotest.(check string) "call works" "echo:x"
        (invoke_string client target ~op:"echo" "x");
      Alcotest.(check int) "client span" 1 (List.length (cspans ()));
      Alcotest.(check int) "server span" 1
        (List.length (await_spans sspans)))

let test_disabled_obs_sends_no_context () =
  (* An untraced client (the default) must put nothing in the
     service-context slot: the wire bytes stay legacy-identical. *)
  let server = Orb.create () in
  Orb.start server;
  let client = Orb.create () in
  let seen_ctx = ref (Some "unset") in
  Orb.Interceptor.add
    (Orb.server_interceptors server)
    (Orb.Interceptor.make "ctx-probe" ~on_request:(fun req ->
         seen_ctx := Some req.Orb.Protocol.trace_ctx;
         req));
  Fun.protect
    ~finally:(fun () ->
      Orb.shutdown client;
      Orb.shutdown server)
    (fun () ->
      let target = Orb.export server (echo_skeleton ()) in
      Alcotest.(check string) "call" "echo:x"
        (invoke_string client target ~op:"echo" "x");
      Alcotest.(check (option string)) "empty context on the wire" (Some "")
        !seen_ctx;
      (* And the disabled obs instance observed nothing. *)
      let snap = Obs.snapshot (Orb.obs client) in
      Alcotest.(check int) "no spans" 0 snap.Obs.spans_emitted;
      Alcotest.(check int) "no metrics" 0
        (List.length snap.Obs.metrics.Metrics.latencies))

let test_stock_interceptor_composes () =
  with_traced_pair ~transport:"mem" ~host:"local"
    (fun ~server ~client ~server_obs:_ ~client_obs ->
      (* The stock metrics interceptor next to a user interceptor. *)
      Orb.Interceptor.add (Orb.client_interceptors client)
        (Orb.Obs.interceptor client_obs);
      let user_counter, read_count = Orb.Interceptor.call_counter () in
      Orb.Interceptor.add (Orb.client_interceptors client) user_counter;
      let target = Orb.export server (echo_skeleton ()) in
      Alcotest.(check string) "call" "echo:x"
        (invoke_string client target ~op:"echo" "x");
      (match Orb.invoke client target ~op:"fail" (fun _ -> ()) with
      | exception Orb.Remote_exception _ -> ()
      | _ -> Alcotest.fail "expected Remote_exception");
      Alcotest.(check int) "user interceptor saw both" 2 (read_count ());
      let counters = (Obs.snapshot client_obs).Obs.metrics.Metrics.counters in
      let count name =
        try List.assoc name counters with Not_found -> 0
      in
      Alcotest.(check int) "req:echo" 1 (count "req:echo");
      Alcotest.(check int) "ok:echo" 1 (count "ok:echo");
      Alcotest.(check int) "req:fail" 1 (count "req:fail");
      Alcotest.(check int) "uexn:fail" 1 (count "uexn:fail"))

let test_retry_count_on_span () =
  (* A crash-restart under a retry policy: the surviving call's span
     records the extra attempt. *)
  let port = 47301 in
  let fresh_server () =
    let s = Orb.create ~transport:"mem" ~host:"local" ~port () in
    Orb.start s;
    (s, Orb.export s (echo_skeleton ()))
  in
  let obs = Obs.create () in
  let sink, spans = Obs.Sink.ring () in
  Obs.add_sink obs sink;
  let retry =
    { Orb.Retry.default with max_attempts = 3; base_delay = 0.005; jitter = 0. }
  in
  let client = Orb.create ~transport:"mem" ~host:"local" ~retry ~obs () in
  let server, target = fresh_server () in
  Alcotest.(check string) "before" "echo:a" (invoke_string client target ~op:"echo" "a");
  Orb.shutdown server;
  let server2, _ = fresh_server () in
  Alcotest.(check string) "survives" "echo:b" (invoke_string client target ~op:"echo" "b");
  (match spans () with
  | [ first; second ] ->
      Alcotest.(check int) "no retries on first" 0 first.Trace.retries;
      Alcotest.(check int) "one retry recorded" 1 second.Trace.retries
  | l -> Alcotest.failf "expected 2 spans, got %d" (List.length l));
  Orb.shutdown client;
  Orb.shutdown server2

let () =
  Alcotest.run "obs"
    [
      ( "context",
        [
          Alcotest.test_case "round-trip" `Quick test_context_roundtrip;
          Alcotest.test_case "tolerant decode" `Quick test_context_tolerance;
          Alcotest.test_case "id uniqueness" `Quick test_ids_unique;
          Alcotest.test_case "span lifecycle" `Quick test_span_lifecycle;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "histogram buckets" `Quick test_histogram_buckets;
          Alcotest.test_case "byte counters" `Quick test_byte_counters;
          Alcotest.test_case "snapshot json" `Quick test_snapshot_json;
        ] );
      ( "sinks",
        [
          Alcotest.test_case "ring buffer" `Quick test_ring_sink;
          Alcotest.test_case "sink exceptions swallowed" `Quick
            test_sink_exceptions_swallowed;
          Alcotest.test_case "disabled instance is inert" `Quick
            test_disabled_is_inert;
        ] );
      ( "end to end",
        [
          Alcotest.test_case "tcp trace propagation" `Quick
            test_tcp_trace_propagation;
          Alcotest.test_case "outcomes recorded" `Quick test_outcomes_recorded;
          Alcotest.test_case "locate/probe emit no spans" `Quick
            test_locate_and_probe_emit_no_spans;
          Alcotest.test_case "disabled obs sends no context" `Quick
            test_disabled_obs_sends_no_context;
          Alcotest.test_case "stock interceptor composes" `Quick
            test_stock_interceptor_composes;
          Alcotest.test_case "retry count on span" `Quick test_retry_count_on_span;
        ] );
    ]
