(* CORBA-prescribed C++ mapping tests: the Fig. 1 inheritance hierarchy
   (stub inherits interface; skeleton inherits interface + ServantBase;
   tie delegates) and Table 1/2 spellings in generated code. *)

let mapping = Option.get (Mappings.Registry.find "corba-cpp")

let src =
  {|module Heidi {
      enum Status { Start, Stop };
      typedef sequence<long> LongSeq;
      struct Point { long x; long y; };
      exception Bad { string why; };
      interface S { void ping(); };
      interface A : S {
        void f(in A a);
        long sum(in LongSeq xs);
        readonly attribute Status state;
        attribute long level;
      };
    };|}

let compile () = Core.Compiler.compile_string ~file_base:"A" ~mapping src
let header () = List.assoc "A.hh" (compile ()).Core.Compiler.files
let poa () = List.assoc "A_poa.hh" (compile ()).Core.Compiler.files

let test_namespace_and_types () =
  let h = header () in
  Tutil.check_contains ~what:"namespace" h "namespace Heidi {";
  Tutil.check_contains ~what:"CORBA long (Table 1)" h "CORBA::Long";
  Tutil.check_contains ~what:"enum" h "enum Status { Start, Stop };";
  Tutil.check_contains ~what:"struct" h "struct Point";
  Tutil.check_contains ~what:"user exception" h
    "class Bad : public CORBA::UserException";
  Tutil.check_contains ~what:"sequence class" h "class LongSeq";
  Tutil.check_contains ~what:"sequence elem" h "CORBA::Long& operator[](CORBA::ULong);"

let test_table2_declarations () =
  let h = header () in
  Tutil.check_contains ~what:"_ptr" h "typedef A* A_ptr;";
  Tutil.check_contains ~what:"_var" h "typedef ObjVar<A> A_var;";
  Tutil.check_contains ~what:"narrow" h "static A_ptr _narrow(CORBA::Object_ptr);"

let test_fig1_interface_hierarchy () =
  let h = header () in
  (* Inheritance-based model: A inherits S; roots inherit CORBA::Object. *)
  Tutil.check_contains ~what:"A inherits S" h "class A : virtual public Heidi::S";
  Tutil.check_contains ~what:"root base" h "class S : virtual public CORBA::Object";
  (* Interface-typed parameters use _ptr. *)
  Tutil.check_contains ~what:"param spelling" h "virtual void f(Heidi::A_ptr a) = 0;"

let test_fig1_skeleton_and_tie () =
  let p = poa () in
  (* Fig. 1: POA_A inherits the interface class and ServantBase. *)
  Tutil.check_contains ~what:"skeleton bases" p
    "class POA_A : virtual public Heidi::A,\n                 virtual public PortableServer::ServantBase";
  (* Fig. 1: the tie bridges to an unrelated implementation class. *)
  Tutil.check_contains ~what:"tie template" p "template <class T>";
  Tutil.check_contains ~what:"tie class" p "class POA_A_tie : public POA_A";
  Tutil.check_contains ~what:"tie delegation" p "_tied.f(a);";
  Tutil.check_contains ~what:"tie return" p "return _tied.sum(xs);"

let test_attribute_accessors () =
  let h = header () in
  (* CORBA-prescribed attribute mapping: overloaded accessor pair. *)
  Tutil.check_contains ~what:"getter" h "virtual Heidi::Status state() = 0;";
  Tutil.check_contains ~what:"rw getter" h "virtual CORBA::Long level() = 0;";
  Tutil.check_contains ~what:"rw setter" h "virtual void level(CORBA::Long) = 0;"

let test_contrast_with_heidi_mapping () =
  (* The same IDL through both mappings: CORBA types on one side, legacy
     Heidi types on the other — the paper's Table 1 in action. *)
  let heidi = Option.get (Mappings.Registry.find "heidi-cpp") in
  let h_result = Core.Compiler.compile_string ~file_base:"A" ~mapping:heidi src in
  let hh = List.assoc "A.hh" h_result.Core.Compiler.files in
  Tutil.check_not_contains ~what:"no CORBA types in heidi mapping" hh "CORBA::";
  Tutil.check_not_contains ~what:"no _ptr in heidi mapping" hh "_ptr";
  let ch = header () in
  Tutil.check_not_contains ~what:"no Hd types in corba mapping" ch "HdA";
  Tutil.check_not_contains ~what:"no XBool in corba mapping" ch "XBool"

let () =
  Alcotest.run "codegen-corba"
    [
      ( "header",
        [
          Alcotest.test_case "namespaces and data types" `Quick test_namespace_and_types;
          Alcotest.test_case "Table 2 declarations" `Quick test_table2_declarations;
          Alcotest.test_case "Fig. 1 interface hierarchy" `Quick test_fig1_interface_hierarchy;
          Alcotest.test_case "attribute accessors" `Quick test_attribute_accessors;
        ] );
      ( "skeletons",
        [
          Alcotest.test_case "Fig. 1 skeleton and tie" `Quick test_fig1_skeleton_and_tie;
          Alcotest.test_case "contrast with heidi mapping" `Quick test_contrast_with_heidi_mapping;
        ] );
    ]
