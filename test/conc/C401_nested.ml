(* Seeded C401: the inner acquisition climbs the rank table — pool (60)
   taken while holding metrics (20). Two threads doing this and the
   reverse order deadlock. *)

let metrics_lock =
  Locked.create ~name:"fixture.metrics" ~rank:Locked.Rank.metrics

let pool_lock = Locked.create ~name:"fixture.pool" ~rank:Locked.Rank.pool

let wrong () =
  Locked.with_lock metrics_lock (fun () ->
      Locked.with_lock pool_lock (fun () -> ()))
