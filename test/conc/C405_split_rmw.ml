(* Seeded C405: a read-modify-write spelled as separate Atomic.get and
   Atomic.set. Updates racing between the two are silently lost;
   Atomic.incr (or a compare_and_set loop) is the correct shape. *)

let counter = Atomic.make 0

let wrong () = Atomic.set counter (Atomic.get counter + 1)
