(* Seeded C408: a Hashtbl field mutated with no lock held, in a module
   whose work runs on spawned domains. Under systhreads the runtime
   lock made this merely sloppy; across domains a concurrent resize
   during the mutation is a data race. *)

type t = { lock : Locked.t; table : (string, int) Hashtbl.t }

let start t =
  ignore (Locked.spawn_domain "fixture.worker" (fun () -> ignore t))

let wrong t name = Hashtbl.replace t.table name 1

let locked_ok t name =
  Locked.with_lock t.lock (fun () -> Hashtbl.remove t.table name)
