(* Seeded C406: a lock whose rank is a bare literal instead of a
   constant from Locked.Rank — neither checker can place it in the
   lattice. *)

let lock = Locked.create ~name:"fixture.unranked" ~rank:99
