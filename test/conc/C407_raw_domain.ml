(* Seeded C407: a domain spawned with the raw primitive. The rank
   checker never clears its held-rank stack, and an exception escaping
   the body tears the domain down silently — [Locked.spawn_domain]
   handles both. *)

let wrong () = Domain.spawn (fun () -> ())
