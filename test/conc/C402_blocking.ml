(* Seeded C402: parking the thread with a lock held. Every other thread
   needing [lock] stalls for the full delay. *)

let lock = Locked.create ~name:"fixture.block" ~rank:Locked.Rank.pool

let wrong () = Locked.with_lock lock (fun () -> Thread.delay 0.01)
