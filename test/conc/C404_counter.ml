(* Seeded C404, the stats-counter shape: a module-level counter bumped
   on a hot path with no lock held — the racy pattern that moved the
   ORB's stats counters (timeouts, retries, served) to Atomic.t. *)

let lock = Locked.create ~name:"fixture.c404.counter" ~rank:Locked.Rank.metrics
let timeouts = ref 0

let count_timeout () = incr timeouts

let snapshot () = Locked.with_lock lock (fun () -> !timeouts)
