(* Seeded C403: a thread spawned with the raw primitive. The rank
   checker never learns about it, and an exception would kill the
   process silently — [Locked.spawn] handles both. *)

let wrong () = Thread.create (fun () -> ()) ()
