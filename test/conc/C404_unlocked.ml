(* Seeded C404: module-level mutable state written with no lock held,
   in a file that visibly does concurrency (it owns a ranked lock). *)

let lock = Locked.create ~name:"fixture.c404" ~rank:Locked.Rank.breaker
let hits : (string, int) Hashtbl.t = Hashtbl.create 8

let record name = Hashtbl.replace hits name 1

let locked_ok name =
  Locked.with_lock lock (fun () -> Hashtbl.remove hits name)
