(* Chaos soak harness: a seeded, time-bounded randomized driver that
   interleaves overload, transport faults, replica kill/restart, drains
   and deadline expiries over the faulty: transport, then asserts the
   system-wide invariants that no single scenario test can pin:

   - reply conservation: every call issued by every worker reaches a
     definite outcome (reply, declared error, or a classified exception)
     and the workers join — nothing hangs, nothing is silently dropped;
   - no zombie work: a servant never STARTS executing after its
     request's deadline budget has lapsed (each request carries its
     absolute lapse instant in the payload; the servant is a tripwire);
   - expiry shedding actually fires: across all replica incarnations
     the servers shed a non-zero number of expired requests;
   - no fd leak and no thread/domain leak once everything is shut down;
   - zero lock-rank violations (the suite runs with ORB_LOCK_CHECK=1).

   Deterministic short mode runs on every `dune runtest` (a few seconds,
   fixed seed); `dune build @soak` runs longer, and SOAK_SECONDS=n
   stretches the wall-clock budget without changing the scenario mix. *)

module F = Orb.Transport.Fault

let soak_type = "IDL:Soak/Tripwire:1.0"

(* ------------------------- invariants -------------------------- *)

let failures : string list ref = ref []
let fail_mutex = Mutex.create ()

let fail_invariant fmt =
  Printf.ksprintf
    (fun msg -> Mutex.protect fail_mutex (fun () -> failures := msg :: !failures))
    fmt

let count_fds () =
  match Sys.readdir "/proc/self/fd" with
  | entries -> Some (Array.length entries)
  | exception Sys_error _ -> None

let count_threads () =
  (* Domains are OS threads too, so this covers both worker domains and
     systhreads. *)
  match open_in "/proc/self/status" with
  | exception Sys_error _ -> None
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          let rec scan () =
            match input_line ic with
            | line ->
                if String.length line > 8 && String.sub line 0 8 = "Threads:"
                then
                  int_of_string_opt
                    (String.trim (String.sub line 8 (String.length line - 8)))
                else scan ()
            | exception End_of_file -> None
          in
          scan ())

(* ---------------------- tripwire servant ----------------------- *)

(* Each request's payload carries the client-computed absolute lapse
   instant (0.0 = no deadline) and a service time. The servant checks
   the clock the moment it starts: with the mem transport both ends
   share one clock, and the server-side expiry is anchored at receive
   time (>= send time), so a servant observed starting after the lapse
   instant plus a scheduling grace is work the shedding layer should
   have killed. *)
let zombie_runs = Atomic.make 0
let servant_runs = Atomic.make 0

(* Relative budgets are anchored where they are stamped, so time a
   request spends between stamping and the server's decode is slack the
   server cannot see. The soak keeps that slack bounded and small —
   Reject admission (readers never park, so decode is prompt) and fewer
   workers than the client mux in-flight cap (no client-side queueing)
   — and the grace absorbs what remains plus scheduling noise. *)
let zombie_grace = 0.05

let tripwire_skeleton () =
  Orb.Skeleton.create ~type_id:soak_type
    [
      ( "work",
        fun args results ->
          let lapse_at = float_of_string (args.Wire.Codec.get_string ()) in
          let sleep_us = args.Wire.Codec.get_long () in
          Atomic.incr servant_runs;
          (if lapse_at > 0.0 then
             let now = Unix.gettimeofday () in
             if now > lapse_at +. zombie_grace then begin
               Atomic.incr zombie_runs;
               fail_invariant
                 "zombie work: servant started %.1f ms after its budget lapsed"
                 ((now -. lapse_at) *. 1000.)
             end);
          if sleep_us > 0 then Thread.delay (float_of_int sleep_us /. 1e6);
          results.Wire.Codec.put_string "ok" );
    ]

(* ------------------------- replicas ---------------------------- *)

(* Two replicas behind one multi-endpoint reference, each with a small
   pool (2 workers, short queue, Reject admission so readers decode
   promptly) so that the overload phases actually queue work and tiny
   budgets lapse while queued. The chaos timeline kills one and restarts it on the same
   port, E12-style, so drains and failovers run concurrently with the
   fault plan. *)
let small_pool_policy () =
  {
    Orb.default_server_policy with
    pool =
      Some
        {
          Orb.Pool.workers = 2;
          queue_capacity = 8;
          admission = Orb.Pool.Reject;
          backend = Orb.Pool.Domains;
        };
  }

let start_replica ~port =
  let orb =
    Orb.create ~transport:"faulty:mem" ~host:"local" ~port
      ~server_policy:(small_pool_policy ()) ()
  in
  Orb.start orb;
  let r = Orb.export_named orb ~oid:"tripwire" (tripwire_skeleton ()) in
  (orb, r)

(* Server-side shed counters survive replica kills by being harvested
   into these accumulators just before each shutdown. *)
let acc_expired_pre = ref 0
let acc_expired_queue = ref 0
let acc_rejected = ref 0
let acc_served = ref 0

let harvest orb =
  let st = Orb.stats orb in
  acc_expired_pre := !acc_expired_pre + st.Orb.expired_pre_admission;
  acc_expired_queue := !acc_expired_queue + st.Orb.expired_in_queue;
  acc_rejected := !acc_rejected + st.Orb.rejected;
  acc_served := !acc_served + st.Orb.served

(* ------------------------ client workers ----------------------- *)

type tallies = {
  total : int Atomic.t;
  ok : int Atomic.t;
  timeout : int Atomic.t;
  system_err : int Atomic.t;
  transport_err : int Atomic.t;
  protocol_err : int Atomic.t;
  circuit_open : int Atomic.t;
  budget_exhausted : int Atomic.t;
  other : int Atomic.t;
}

let tallies () =
  {
    total = Atomic.make 0;
    ok = Atomic.make 0;
    timeout = Atomic.make 0;
    system_err = Atomic.make 0;
    transport_err = Atomic.make 0;
    protocol_err = Atomic.make 0;
    circuit_open = Atomic.make 0;
    budget_exhausted = Atomic.make 0;
    other = Atomic.make 0;
  }

let one_call client target t rng =
  (* The per-call mix: mostly ordinary calls, a steady stream of
     tiny-budget calls racing long queue waits (the expiry fodder), a
     few no-deadline calls (wire slot absent: old-peer shape), and
     heavy sleepers that keep the small pools saturated. *)
  let timeout, sleep_us =
    match Random.State.int rng 10 with
    | 0 | 1 -> (Some (0.010 +. Random.State.float rng 0.02), 20_000 + Random.State.int rng 30_000)
    | 2 -> (None, Random.State.int rng 500)
    | 3 -> (Some 1.0, 40_000 + Random.State.int rng 20_000)
    | _ -> (Some 0.5, Random.State.int rng 2_000)
  in
  let lapse_at =
    match timeout with
    | Some s -> Unix.gettimeofday () +. s
    | None -> 0.0
  in
  Atomic.incr t.total;
  match
    Orb.invoke client target ~op:"work" ?timeout (fun e ->
        e.Wire.Codec.put_string (Printf.sprintf "%.6f" lapse_at);
        e.Wire.Codec.put_long sleep_us)
  with
  | Some d ->
      let (_ : string) = d.Wire.Codec.get_string () in
      Atomic.incr t.ok
  | None -> Atomic.incr t.ok
  | exception Orb.Transport.Timeout _ -> Atomic.incr t.timeout
  | exception Orb.System_exception _ -> Atomic.incr t.system_err
  | exception Orb.Transport.Transport_error _ ->
      Atomic.incr t.transport_err;
      Thread.delay 0.001
  | exception Orb.Protocol.Protocol_error _ ->
      (* A fault-corrupted reply fails decode — a definite, permanent
         outcome for that call. *)
      Atomic.incr t.protocol_err
  | exception Orb.Breaker.Circuit_open _ ->
      (* Fast-fails are instant; pace them so a tripped breaker does
         not turn the closed loop into a busy spin. *)
      Atomic.incr t.circuit_open;
      Thread.delay 0.001
  | exception Orb.Retry.Budget_exhausted _ ->
      Atomic.incr t.budget_exhausted;
      Thread.delay 0.001
  | exception e ->
      Atomic.incr t.other;
      fail_invariant "unclassified exception escaped invoke: %s"
        (Printexc.to_string e)

(* --------------------------- driver ---------------------------- *)

let run ~seconds ~seed ~verbose =
  Orb.Transport.mem_reset ();
  F.clear ();
  let fds0 = count_fds () and threads0 = count_threads () in
  let replicas = Array.init 2 (fun _ -> ref (start_replica ~port:0)) in
  let target =
    Orb.Objref.make_multi
      ~endpoints:
        (Array.to_list
           (Array.map (fun rep -> Orb.Objref.endpoint (snd !rep)) replicas))
      ~oid:"tripwire" ~type_id:soak_type
  in
  let client =
    Orb.create ~transport:"faulty:mem" ~host:"local"
      ~retry:{ Orb.Retry.default with max_attempts = 3; base_delay = 0.002 }
      ~retry_budget:{ Orb.Retry.Budget.default_config with reserve = 20; cap = 60 }
      (* A loose breaker: the tiny-budget calls time out by design, and
         a hair-trigger threshold would fence off both replicas and
         starve the soak of real traffic. *)
      ~breaker:{ Orb.Breaker.failure_threshold = 25; reset_timeout = 0.1 }
      ()
  in
  let t = tallies () in
  let stop = Atomic.make false in
  let n_workers = 6 in
  let workers =
    List.init n_workers (fun i ->
        Thread.create
          (fun () ->
            let rng = Random.State.make [| seed; i |] in
            while not (Atomic.get stop) do
              one_call client target t rng
            done)
          ())
  in
  (* The chaos timeline: cycle calm -> fault-plan -> kill/restart
     phases until the wall-clock budget runs out. Per-phase fault plans
     are seeded from (seed, round) so a given seed replays the same
     scenario. *)
  let t0 = Unix.gettimeofday () in
  let t_end = t0 +. seconds in
  let phase_len = Float.max 0.4 (seconds /. 12.) in
  let round = ref 0 in
  (* set_plan/clear reset the fault statistics, so bank them first. *)
  let acc_injected = ref 0 in
  let bank_injected () = acc_injected := !acc_injected + F.injected_total () in
  while Unix.gettimeofday () < t_end do
    let budget = t_end -. Unix.gettimeofday () in
    let nap d = Thread.delay (Float.min d budget) in
    (match !round mod 3 with
    | 0 ->
        if verbose then Printf.printf "  [%4.1fs] calm\n%!" (Unix.gettimeofday () -. t0);
        bank_injected ();
        F.clear ();
        nap phase_len
    | 1 ->
        if verbose then Printf.printf "  [%4.1fs] faults on\n%!" (Unix.gettimeofday () -. t0);
        bank_injected ();
        F.set_plan
          (F.seeded ~seed:(seed + !round) ~refuse_connect:0.05 ~stall_read:0.03
             ~drop_read:0.04 ~corrupt_write:0.02 ());
        nap phase_len
    | _ ->
        let i = !round mod 2 in
        if verbose then
          Printf.printf "  [%4.1fs] kill/restart replica %d\n%!"
            (Unix.gettimeofday () -. t0) i;
        let victim_orb, victim_ref = !(replicas.(i)) in
        let _, _, victim_port = Orb.Objref.endpoint victim_ref in
        harvest victim_orb;
        Orb.shutdown ~drain_deadline:0.05 victim_orb;
        nap (phase_len /. 2.);
        replicas.(i) := start_replica ~port:victim_port;
        nap (phase_len /. 2.));
    incr round
  done;
  bank_injected ();
  F.clear ();
  Atomic.set stop true;
  (* Reply conservation, part one: the workers must come home. Every
     call path is deadline-bounded, so a worker stuck past the grace
     window means a call with no definite outcome. *)
  let joined = Atomic.make false in
  let watchdog =
    Thread.create
      (fun () ->
        let deadline = Unix.gettimeofday () +. 20.0 in
        while (not (Atomic.get joined)) && Unix.gettimeofday () < deadline do
          Thread.delay 0.1
        done;
        if not (Atomic.get joined) then begin
          prerr_endline
            "SOAK FAIL: workers did not join within 20s — a call hung \
             without a definite outcome";
          exit 2
        end)
      ()
  in
  List.iter Thread.join workers;
  Atomic.set joined true;
  Thread.join watchdog;
  let client_stats = Orb.stats client in
  Array.iter (fun rep -> harvest (fst !rep)) replicas;
  Orb.shutdown client;
  Array.iter (fun rep -> Orb.shutdown (fst !rep)) replicas;
  (* Settle: worker domains are joined by a detached reaper, so give
     thread/fd counts a bounded moment to converge. *)
  let settled = Unix.gettimeofday () +. 5.0 in
  let rec settle () =
    let fd_ok =
      match (fds0, count_fds ()) with
      | Some before, Some after -> after <= before + 2
      | _ -> true
    and thread_ok =
      match (threads0, count_threads ()) with
      | Some before, Some after -> after <= before + 2
      | _ -> true
    in
    if fd_ok && thread_ok then ()
    else if Unix.gettimeofday () < settled then begin
      Thread.delay 0.05;
      settle ()
    end
    else begin
      (match (fds0, count_fds ()) with
      | Some before, Some after when after > before + 2 ->
          fail_invariant "fd leak: %d open fds before, %d after shutdown"
            before after
      | _ -> ());
      match (threads0, count_threads ()) with
      | Some before, Some after when after > before + 2 ->
          fail_invariant
            "thread/domain leak: %d threads before, %d after shutdown" before
            after
      | _ -> ()
    end
  in
  settle ();
  (* Invariant: the chaos actually exercised expiry shedding. *)
  if !acc_expired_pre + !acc_expired_queue = 0 then
    fail_invariant
      "no expiries shed: the scenario mix never produced a lapsed budget";
  (* Invariant: budget exhaustion seen by a caller is visible in stats,
     and vice versa expected under this fault mix. *)
  if
    Atomic.get t.budget_exhausted > 0
    && client_stats.Orb.retry_budget_exhaustions = 0
  then
    fail_invariant
      "Budget_exhausted raised %d times but stats.retry_budget_exhaustions = 0"
      (Atomic.get t.budget_exhausted);
  (* Invariant: zero rank violations under the armed checker. *)
  (match Locked.violations () with
  | [] -> ()
  | vs ->
      fail_invariant "lock-rank violations recorded: %s"
        (String.concat "; " vs));
  (* Reply conservation, part two: the tallies partition the total. *)
  let accounted =
    Atomic.get t.ok + Atomic.get t.timeout + Atomic.get t.system_err
    + Atomic.get t.transport_err + Atomic.get t.protocol_err
    + Atomic.get t.circuit_open + Atomic.get t.budget_exhausted
    + Atomic.get t.other
  in
  if accounted <> Atomic.get t.total then
    fail_invariant "reply conservation: %d calls issued, %d accounted"
      (Atomic.get t.total) accounted;
  Printf.printf
    "soak: seed=%d seconds=%.1f rounds=%d\n\
    \  calls=%d ok=%d timeout=%d system_err=%d transport_err=%d \
     protocol_err=%d circuit_open=%d budget_exhausted=%d other=%d\n\
    \  servant_runs=%d zombie_runs=%d\n\
    \  shed: expired_pre_admission=%d expired_in_queue=%d rejected=%d \
     served=%d\n\
    \  client: retries=%d failovers=%d breaker_trips=%d \
     retry_budget_exhaustions=%d faults_injected=%d lock_check=%b\n"
    seed seconds !round (Atomic.get t.total) (Atomic.get t.ok)
    (Atomic.get t.timeout) (Atomic.get t.system_err)
    (Atomic.get t.transport_err) (Atomic.get t.protocol_err)
    (Atomic.get t.circuit_open) (Atomic.get t.budget_exhausted)
    (Atomic.get t.other)
    (Atomic.get servant_runs) (Atomic.get zombie_runs) !acc_expired_pre
    !acc_expired_queue !acc_rejected !acc_served client_stats.Orb.retries
    client_stats.Orb.failovers client_stats.Orb.breaker_trips
    client_stats.Orb.retry_budget_exhaustions !acc_injected
    (Locked.checking ());
  match !failures with
  | [] ->
      print_endline "SOAK OK";
      exit 0
  | fs ->
      List.iter (fun f -> Printf.eprintf "SOAK FAIL: %s\n" f) (List.rev fs);
      exit 1

let () =
  let seconds =
    ref
      (match Sys.getenv_opt "SOAK_SECONDS" with
      | Some s -> ( match float_of_string_opt s with Some f -> f | None -> 5.0)
      | None -> 5.0)
  in
  let seed = ref 42 in
  let verbose = ref false in
  Arg.parse
    [
      ("--seconds", Arg.Set_float seconds, "wall-clock budget (default 5, or SOAK_SECONDS)");
      ("--seed", Arg.Set_int seed, "scenario seed (default 42)");
      ("--verbose", Arg.Set verbose, "print the chaos timeline");
    ]
    (fun a -> raise (Arg.Bad ("unexpected argument " ^ a)))
    "soak [--seconds s] [--seed n] [--verbose]";
  run ~seconds:!seconds ~seed:!seed ~verbose:!verbose
