(* Replicated endpoints end-to-end (DESIGN.md "Replication and
   naming"): a three-replica mem-transport cluster behind one
   multi-endpoint reference. Kill a replica mid-flight and the
   collateral waiters must land on the survivors; once its breaker
   opens the endpoint is skipped outright; an ambiguous failure on an
   at-most-once operation is never re-sent; and a lapsed naming lease
   makes the resolver go back to the naming servant. *)

let sensor_type = "IDL:Failover/Sensor:1.0"
let oid = "sensor"

type replica = { orb : Orb.t; r : Orb.Objref.t; count : int ref }

(* One replica: counts every dispatched call, so the tests can assert
   both load spread and (for at-most-once) exactly-how-many-times. *)
let start_replica () =
  let orb = Orb.create ~transport:"mem" ~host:"local" () in
  Orb.start orb;
  let count = ref 0 in
  let m = Mutex.create () in
  let bump () = Mutex.protect m (fun () -> incr count) in
  let skel =
    Orb.Skeleton.create ~type_id:sensor_type
      [
        ( "get",
          fun _ results ->
            bump ();
            results.Wire.Codec.put_long 7 );
        ( "slow",
          fun _ results ->
            bump ();
            Thread.delay 0.08;
            results.Wire.Codec.put_long 7 );
        ( "bump_slow",
          fun _ results ->
            bump ();
            Thread.delay 0.3;
            results.Wire.Codec.put_long 7 );
      ]
  in
  let r = Orb.export_named orb ~oid skel in
  { orb; r; count }

let multi_ref replicas =
  Orb.Objref.make_multi
    ~endpoints:(List.map (fun rep -> Orb.Objref.endpoint rep.r) replicas)
    ~oid ~type_id:sensor_type

let ep_key rep =
  let proto, host, port = Orb.Objref.endpoint rep.r in
  Printf.sprintf "%s:%s:%d" proto host port

let get client target =
  match Orb.invoke client target ~op:"get" (fun _ -> ()) with
  | Some d -> d.Wire.Codec.get_long ()
  | None -> Alcotest.fail "get returned no reply"

let shutdown_all replicas = List.iter (fun rep -> Orb.shutdown rep.orb) replicas

(* ---------------- load spread ---------------- *)

let test_calls_spread_over_replicas () =
  let replicas = List.init 3 (fun _ -> start_replica ()) in
  let client = Orb.create ~transport:"mem" ~host:"local" () in
  let target = multi_ref replicas in
  for _ = 1 to 60 do
    Alcotest.(check int) "result" 7 (get client target)
  done;
  let counts = List.map (fun rep -> !(rep.count)) replicas in
  Alcotest.(check int) "total" 60 (List.fold_left ( + ) 0 counts);
  List.iteri
    (fun i c ->
      if c = 0 then
        Alcotest.failf "replica %d starved: spread %s" i
          (String.concat "/" (List.map string_of_int counts)))
    counts;
  Orb.shutdown client;
  shutdown_all replicas

(* ---------------- mid-flight replica death ---------------- *)

let test_midflight_death_lands_on_survivors () =
  let replicas = List.init 3 (fun _ -> start_replica ()) in
  let client =
    Orb.create ~transport:"mem" ~host:"local"
      ~retry:{ Orb.Retry.default with max_attempts = 4; base_delay = 0.005 }
      ~breaker:{ Orb.Breaker.default_config with failure_threshold = 1 }
      ()
  in
  let target = multi_ref replicas in
  (* Prime a connection to every replica so the kill hits cached,
     in-use connections, not fresh dials. *)
  for _ = 1 to 12 do
    ignore (get client target)
  done;
  let results = Array.make 8 `Pending in
  let threads =
    Array.init (Array.length results) (fun i ->
        Thread.create
          (fun () ->
            results.(i) <-
              (match
                 Orb.invoke client target ~op:"slow" (fun _ -> ())
               with
              | Some d -> `Ok (d.Wire.Codec.get_long ())
              | None -> `Err "no reply"
              | exception e -> `Err (Printexc.to_string e)))
          ())
  in
  (* Kill one replica while those calls are in flight. *)
  Thread.delay 0.02;
  let doomed = List.hd replicas in
  Orb.shutdown doomed.orb;
  Array.iter Thread.join threads;
  Array.iteri
    (fun i res ->
      match res with
      | `Ok 7 -> ()
      | `Ok n -> Alcotest.failf "waiter %d: corrupted result %d" i n
      | `Err m -> Alcotest.failf "waiter %d did not land on a survivor: %s" i m
      | `Pending -> Alcotest.failf "waiter %d never finished" i)
    results;
  (* And the cluster keeps serving without the dead replica. *)
  for _ = 1 to 10 do
    Alcotest.(check int) "after death" 7 (get client target)
  done;
  Orb.shutdown client;
  shutdown_all (List.tl replicas)

(* ---------------- breaker-open endpoints are skipped ---------------- *)

let test_breaker_open_endpoint_skipped () =
  let replicas = List.init 3 (fun _ -> start_replica ()) in
  let client =
    Orb.create ~transport:"mem" ~host:"local"
      ~retry:{ Orb.Retry.default with max_attempts = 4; base_delay = 0.005 }
      ~breaker:
        (* A long cool-down: the circuit must stay open for the whole
           assertion window, no half-open probes muddying the stats. *)
        { Orb.Breaker.failure_threshold = 1; reset_timeout = 60.0 }
      ()
  in
  let target = multi_ref replicas in
  let doomed = List.hd replicas in
  let doomed_key = ep_key doomed in
  Orb.shutdown doomed.orb;
  (* Call until the dead endpoint has been picked once and its breaker
     tripped (power-of-two-choices may dodge it for a while). *)
  let tripped = ref false in
  let budget = ref 100 in
  while (not !tripped) && !budget > 0 do
    decr budget;
    ignore (get client target);
    match List.assoc_opt doomed_key (Orb.stats client).Orb.breaker_states with
    | Some "open" -> tripped := true
    | _ -> ()
  done;
  Alcotest.(check bool) "breaker opened for dead endpoint" true !tripped;
  (* From here on the dead endpoint is invisible to selection: no new
     failovers, no new retries, every call lands first try. *)
  let before = Orb.stats client in
  for _ = 1 to 30 do
    Alcotest.(check int) "steady" 7 (get client target)
  done;
  let after = Orb.stats client in
  Alcotest.(check int) "no failovers once open" before.Orb.failovers
    after.Orb.failovers;
  Alcotest.(check int) "no retries once open" before.Orb.retries
    after.Orb.retries;
  Orb.shutdown client;
  shutdown_all (List.tl replicas)

(* ---------------- at-most-once: ambiguous failures ---------------- *)

let test_ambiguous_failure_never_resent () =
  let replicas = List.init 3 (fun _ -> start_replica ()) in
  let client =
    (* A generous retry budget ON PURPOSE: what must stop the re-send
       is the duplicate-safety taxonomy, not an exhausted budget. *)
    Orb.create ~transport:"mem" ~host:"local"
      ~retry:{ Orb.Retry.default with max_attempts = 5; base_delay = 0.005 }
      ()
  in
  let target = multi_ref replicas in
  (* Prime connections so the timed-out call rides a cached one — the
     most tempting case for a (wrong) resend. *)
  for _ = 1 to 6 do
    ignore (get client target)
  done;
  List.iter (fun rep -> rep.count := 0) replicas;
  (match
     Orb.invoke client target ~op:"bump_slow" ~timeout:0.05 (fun _ -> ())
   with
  | _ -> Alcotest.fail "expected a deadline failure"
  | exception Orb.Transport.Timeout _ -> ()
  | exception e ->
      Alcotest.failf "expected Timeout, got %s" (Printexc.to_string e));
  (* Let the dispatched handler finish, then count dispatches: the
     operation ran at most once, on exactly one replica — an ambiguous
     deadline failure is never re-sent, not even to another replica. *)
  Thread.delay 0.45;
  let total = List.fold_left (fun acc rep -> acc + !(rep.count)) 0 replicas in
  Alcotest.(check int) "dispatched exactly once" 1 total;
  Alcotest.(check int) "no retry burned" 0 (Orb.stats client).Orb.retries;
  Orb.shutdown client;
  shutdown_all replicas

(* ---------------- lease expiry and re-resolution ---------------- *)

let test_lease_expiry_triggers_reresolve () =
  let ns = Orb.create ~transport:"mem" ~host:"local" () in
  Orb.start ns;
  let _registry, nref = Orb.Naming.serve ns in
  let replicas = List.init 2 (fun _ -> start_replica ()) in
  let client = Orb.create ~transport:"mem" ~host:"local" () in
  List.iter
    (fun rep ->
      ignore (Orb.Naming.register client nref ~name:"s" rep.r ~ttl:0.3))
    replicas;
  let rs = Orb.Naming.resolver client nref ~name:"s" in
  let t1 = Orb.Naming.current rs in
  Alcotest.(check int) "one resolve" 1 (Orb.Naming.resolves rs);
  Alcotest.(check int) "both endpoints" 2
    (List.length (Orb.Objref.endpoints t1));
  (* Within the lease: served from cache. *)
  ignore (Orb.Naming.current rs);
  ignore (Orb.Naming.current rs);
  Alcotest.(check int) "cached within lease" 1 (Orb.Naming.resolves rs);
  (* Past the lease: the providers renewed meanwhile (that is the
     protocol — registration is renewal), and the client's next use
     goes back to the naming servant instead of its lapsed cache. *)
  Thread.delay 0.4;
  List.iter
    (fun rep ->
      ignore (Orb.Naming.register client nref ~name:"s" rep.r ~ttl:30.))
    replicas;
  ignore (Orb.Naming.current rs);
  Alcotest.(check int) "re-resolved after expiry" 2 (Orb.Naming.resolves rs);
  Orb.shutdown client;
  shutdown_all replicas;
  Orb.shutdown ns

let test_all_replicas_down_triggers_reresolve () =
  let ns = Orb.create ~transport:"mem" ~host:"local" () in
  Orb.start ns;
  let _registry, nref = Orb.Naming.serve ns in
  let old_rep = start_replica () in
  let client =
    Orb.create ~transport:"mem" ~host:"local" ~retry:Orb.Retry.none ()
  in
  ignore (Orb.Naming.register client nref ~name:"s" old_rep.r ~ttl:30.);
  let rs = Orb.Naming.resolver client nref ~name:"s" in
  Alcotest.(check int) "warm call" 7
    (match Orb.Naming.call client rs ~op:"get" (fun _ -> ()) with
    | Some d -> d.Wire.Codec.get_long ()
    | None -> -1);
  (* The registered replica dies and a replacement registers — long
     before the client's cached lease would have lapsed. *)
  Orb.shutdown old_rep.orb;
  Orb.Naming.unregister client nref ~name:"s" old_rep.r;
  let new_rep = start_replica () in
  ignore (Orb.Naming.register client nref ~name:"s" new_rep.r ~ttl:30.);
  (* The failure is duplicate-safe (nothing was dispatched), so the
     call path re-resolves and lands on the replacement. *)
  Alcotest.(check int) "call after re-resolve" 7
    (match Orb.Naming.call client rs ~op:"get" (fun _ -> ()) with
    | Some d -> d.Wire.Codec.get_long ()
    | None -> -1);
  Alcotest.(check int) "resolved twice" 2 (Orb.Naming.resolves rs);
  Alcotest.(check int) "replacement served it" 1 !(new_rep.count);
  Orb.shutdown client;
  Orb.shutdown new_rep.orb;
  Orb.shutdown ns

(* ---------------- old-format interop ---------------- *)

let test_old_format_reference_invokes_unchanged () =
  let rep = start_replica () in
  let client = Orb.create ~transport:"mem" ~host:"local" () in
  (* A pre-replication peer's reference string: single endpoint, no
     comma — parses and invokes exactly as before. *)
  let s = Orb.Objref.to_string rep.r in
  Alcotest.(check bool) "no comma" false (String.contains s ',');
  let parsed = Orb.Objref.of_string s in
  Alcotest.(check int) "invoke via reparsed ref" 7 (get client parsed);
  (* And a multi-endpoint reference narrowed to one replica prints the
     old grammar — what actually travels in every envelope. *)
  let proto, host, port = Orb.Objref.endpoint rep.r in
  let multi =
    Orb.Objref.make_multi
      ~endpoints:[ (proto, host, port); ("tcp", "ghost", 1) ]
      ~oid ~type_id:sensor_type
  in
  Alcotest.(check string) "narrowed view is the old grammar" s
    (Orb.Objref.to_string (Orb.Objref.at_endpoint multi (proto, host, port)));
  Orb.shutdown client;
  Orb.shutdown rep.orb

let () =
  Alcotest.run "failover"
    [
      ( "replication",
        [
          Alcotest.test_case "calls spread over replicas" `Quick
            test_calls_spread_over_replicas;
          Alcotest.test_case "mid-flight death lands on survivors" `Quick
            test_midflight_death_lands_on_survivors;
          Alcotest.test_case "breaker-open endpoint skipped" `Quick
            test_breaker_open_endpoint_skipped;
          Alcotest.test_case "ambiguous failure never re-sent" `Quick
            test_ambiguous_failure_never_resent;
        ] );
      ( "naming",
        [
          Alcotest.test_case "lease expiry triggers re-resolve" `Quick
            test_lease_expiry_triggers_reresolve;
          Alcotest.test_case "all replicas down triggers re-resolve" `Quick
            test_all_replicas_down_triggers_reresolve;
        ] );
      ( "interop",
        [
          Alcotest.test_case "old-format reference invokes unchanged" `Quick
            test_old_format_reference_invokes_unchanged;
        ] );
    ]
