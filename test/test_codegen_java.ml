(* Java mapping tests (paper Section 4.2): flattened inheritance in
   stubs and no default-parameter support. *)

let mapping = Option.get (Mappings.Registry.find "java")

let src =
  {|module Heidi {
      enum Status { Start, Stop };
      interface S { void ping(); };
      interface T { void tick(); };
      interface A : S, T {
        void p(in long l = 0);
        readonly attribute Status state;
      };
    };|}

let compile () = Core.Compiler.compile_string ~file_base:"A" ~mapping src
let file name = List.assoc name (compile ()).Core.Compiler.files

let test_interface_files () =
  let a = file "A.java" in
  (* Java interfaces keep multiple inheritance. *)
  Tutil.check_contains ~what:"extends" a "public interface A extends S, T";
  (* Section 4.2: no default parameters in the Java mapping — the
     defaulted IDL parameter becomes a plain one. *)
  Tutil.check_contains ~what:"no default" a "void p(int l);";
  Tutil.check_not_contains ~what:"really no default" a "l = 0";
  Tutil.check_contains ~what:"getter" a "Status getState();";
  Tutil.check_not_contains ~what:"readonly: no setter" a "setState"

let test_stub_flattening () =
  let stub = file "AStub.java" in
  (* Multiple super-classes are expanded: the stub extends only HdStub
     and re-implements every inherited operation. *)
  Tutil.check_contains ~what:"single base" stub
    "public class AStub\n    extends HdStub implements A";
  Tutil.check_contains ~what:"inherited ping re-implemented" stub
    "public void ping()";
  Tutil.check_contains ~what:"inherited tick re-implemented" stub
    "public void tick()";
  Tutil.check_contains ~what:"own method" stub "public void p(int l)";
  Tutil.check_contains ~what:"attribute call" stub "pbNewCall(\"_get_state\")"

let test_base_stubs_standalone () =
  let s = file "SStub.java" in
  Tutil.check_contains ~what:"S stub" s "public class SStub";
  Tutil.check_contains ~what:"S marshals" s "pbNewCall(\"ping\")"

let test_type_spellings () =
  let result =
    Core.Compiler.compile_string ~file_base:"t" ~mapping
      {|typedef sequence<string> Names;
        interface I {
          Names all();
          boolean ok(in double d, in long long q, in octet o);
        };|}
  in
  let i = List.assoc "I.java" result.Core.Compiler.files in
  Tutil.check_contains ~what:"typedef erased to array" i "String[] all();";
  Tutil.check_contains ~what:"prims" i "boolean ok(double d, long q, byte o);"

let () =
  Alcotest.run "codegen-java"
    [
      ( "java",
        [
          Alcotest.test_case "interfaces" `Quick test_interface_files;
          Alcotest.test_case "stub flattening (4.2)" `Quick test_stub_flattening;
          Alcotest.test_case "base stubs" `Quick test_base_stubs_standalone;
          Alcotest.test_case "type spellings" `Quick test_type_spellings;
        ] );
    ]
