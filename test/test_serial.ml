(* Pass-by-reference and incopy pass-by-value marshaling (Section 3.1). *)

let codecs =
  [
    Wire.Text_codec.codec;
    Wire.Cdr_codec.codec Wire.Cdr_codec.Big_endian;
  ]

let sample_ref =
  Orb.Objref.make ~proto:"mem" ~host:"local" ~port:3 ~oid:"17"
    ~type_id:"IDL:Heidi/S:1.0"

let through codec put get =
  let e = codec.Wire.Codec.encoder () in
  put e;
  get (codec.Wire.Codec.decoder (e.Wire.Codec.finish ()))

let test_byref_roundtrip () =
  List.iter
    (fun codec ->
      let got =
        through codec
          (fun e -> Orb.Serial.put_byref e (Some sample_ref))
          Orb.Serial.get_byref
      in
      Alcotest.(check bool) codec.Wire.Codec.name true
        (got = Some sample_ref))
    codecs

let test_nil_reference () =
  List.iter
    (fun codec ->
      let got =
        through codec (fun e -> Orb.Serial.put_byref e None) Orb.Serial.get_byref
      in
      Alcotest.(check bool) "nil" true (got = None))
    codecs

let test_byref_malformed () =
  let codec = Wire.Text_codec.codec in
  let e = codec.Wire.Codec.encoder () in
  e.Wire.Codec.put_string "not a reference";
  match Orb.Serial.get_byref (codec.Wire.Codec.decoder (e.Wire.Codec.finish ())) with
  | exception Wire.Codec.Type_error _ -> ()
  | _ -> Alcotest.fail "malformed reference accepted"

(* A toy serializable "document": state is a title and a body. *)
type doc = { title : string; body : string }

let put_doc (e : Wire.Codec.encoder) d =
  e.Wire.Codec.put_string d.title;
  e.Wire.Codec.put_string d.body

let get_doc (d : Wire.Codec.decoder) =
  let title = d.Wire.Codec.get_string () in
  let body = d.Wire.Codec.get_string () in
  { title; body }

let doc_type = "IDL:Docs/Doc:1.0"

let test_incopy_by_value () =
  List.iter
    (fun codec ->
      let registry = Orb.Serial.create_registry () in
      Orb.Serial.register_factory registry ~type_id:doc_type (fun d ->
          `Local (get_doc d));
      let doc = { title = "readme"; body = "hello" } in
      let got =
        through codec
          (fun e ->
            Orb.Serial.put_incopy e
              ~serializer:(Some (fun e -> put_doc e doc))
              ~type_id:doc_type
              ~byref:(fun () -> Alcotest.fail "byref must not be called"))
          (fun d ->
            Orb.Serial.get_incopy d ~registry ~of_ref:(fun r -> `Remote r))
      in
      match got with
      | `Local d ->
          Alcotest.(check string) "title" "readme" d.title;
          Alcotest.(check string) "body" "hello" d.body
      | `Remote _ -> Alcotest.fail "expected by-value arrival")
    codecs

let test_incopy_fallback_to_reference () =
  (* A non-serializable object falls back to pass-by-reference, "if
     possible" semantics (Section 3.1). *)
  List.iter
    (fun codec ->
      let registry = Orb.Serial.create_registry () in
      let got =
        through codec
          (fun e ->
            Orb.Serial.put_incopy e ~serializer:None ~type_id:doc_type
              ~byref:(fun () -> sample_ref))
          (fun d -> Orb.Serial.get_incopy d ~registry ~of_ref:(fun r -> `Remote r))
      in
      match got with
      | `Remote r -> Alcotest.(check bool) "same ref" true (Orb.Objref.equal r sample_ref)
      | `Local _ -> Alcotest.fail "expected by-reference arrival")
    codecs

let test_incopy_missing_factory () =
  let codec = Wire.Text_codec.codec in
  let registry = Orb.Serial.create_registry () in
  let e = codec.Wire.Codec.encoder () in
  Orb.Serial.put_incopy e
    ~serializer:(Some (fun e -> put_doc e { title = "t"; body = "b" }))
    ~type_id:"IDL:Unknown:1.0"
    ~byref:(fun () -> sample_ref);
  match
    Orb.Serial.get_incopy
      (codec.Wire.Codec.decoder (e.Wire.Codec.finish ()))
      ~registry
      ~of_ref:(fun _ -> `Remote)
  with
  | exception Wire.Codec.Type_error _ -> ()
  | _ -> Alcotest.fail "missing factory accepted"

let test_factory_registry () =
  let registry = Orb.Serial.create_registry () in
  Alcotest.(check bool) "absent" true
    (Orb.Serial.find_factory registry ~type_id:"x" = None);
  Orb.Serial.register_factory registry ~type_id:"x" (fun _ -> 1);
  Orb.Serial.register_factory registry ~type_id:"y" (fun _ -> 2);
  Alcotest.(check bool) "present" true
    (Option.is_some (Orb.Serial.find_factory registry ~type_id:"x"));
  (* Re-registration replaces. *)
  Orb.Serial.register_factory registry ~type_id:"x" (fun _ -> 3);
  let codec = Wire.Text_codec.codec in
  let d = codec.Wire.Codec.decoder "" in
  match Orb.Serial.find_factory registry ~type_id:"x" with
  | Some f -> Alcotest.(check int) "replaced" 3 (f d)
  | None -> Alcotest.fail "factory lost"

let () =
  Alcotest.run "serial"
    [
      ( "by-reference",
        [
          Alcotest.test_case "round-trip" `Quick test_byref_roundtrip;
          Alcotest.test_case "nil reference" `Quick test_nil_reference;
          Alcotest.test_case "malformed" `Quick test_byref_malformed;
        ] );
      ( "incopy",
        [
          Alcotest.test_case "by value" `Quick test_incopy_by_value;
          Alcotest.test_case "fallback to reference" `Quick test_incopy_fallback_to_reference;
          Alcotest.test_case "missing factory" `Quick test_incopy_missing_factory;
          Alcotest.test_case "factory registry" `Quick test_factory_registry;
        ] );
    ]
