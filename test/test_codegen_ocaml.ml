(* OCaml mapping tests, including the bootstrap golden test: regenerating
   examples/gen/heidi_rmi.ml from examples/idl/heidi.idl must reproduce
   the checked-in file byte for byte — the file the examples and the
   generated-runtime tests actually compile and run. *)

let mapping = Option.get (Mappings.Registry.find "ocaml")

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let test_checked_in_file_is_fresh () =
  let idl = read_file "../examples/idl/heidi.idl" in
  let result =
    Core.Compiler.compile_string ~filename:"heidi.idl" ~file_base:"heidi" ~mapping idl
  in
  let generated = List.assoc "heidi_rmi.ml" result.Core.Compiler.files in
  let checked_in = read_file "../examples/gen/heidi_rmi.ml" in
  Alcotest.(check string)
    "examples/gen/heidi_rmi.ml matches `idlc --mapping ocaml examples/idl/heidi.idl`"
    checked_in generated

let compile src =
  let result = Core.Compiler.compile_string ~file_base:"t" ~mapping src in
  List.assoc "t_rmi.ml" result.Core.Compiler.files

let test_enum_generation () =
  let ml = compile "enum Color { red, green, blue };" in
  Tutil.check_contains ~what:"type" ml "type color =\n  | Red\n  | Green\n  | Blue";
  Tutil.check_contains ~what:"to_int" ml "| Red -> 0";
  Tutil.check_contains ~what:"of_int" ml "| 2 -> Blue";
  Tutil.check_contains ~what:"put" ml "let put_color (e : encoder) v";
  Tutil.check_contains ~what:"wire as ulong" ml "e.put_ulong (color_to_int v)"

let test_struct_generation () =
  let ml = compile "struct P { long x; string label; };" in
  Tutil.check_contains ~what:"record" ml "type p = {\n  x : int;\n  label : string;\n}";
  Tutil.check_contains ~what:"put begin/end" ml "e.put_begin ();";
  Tutil.check_contains ~what:"get fields in order" ml
    "let x = get_long d in\n  let label = get_str d in"

let test_interface_generation () =
  let ml =
    compile
      {|interface S { void ping(); };
        interface A : S {
          long add(in long a, in long b);
          oneway void hint(in string h);
        };|}
  in
  Tutil.check_contains ~what:"module" ml "module A = struct";
  Tutil.check_contains ~what:"repo id" ml "let repo_id = \"IDL:A:1.0\"";
  (* Inherited operation appears in the flattened stub and impl. *)
  Tutil.check_contains ~what:"inherited stub fn" ml "let ping (_s : t)";
  Tutil.check_contains ~what:"impl record field" ml "add :";
  Tutil.check_contains ~what:"oneway" ml "~oneway:true";
  Tutil.check_contains ~what:"skeleton entry" ml "( \"add\",";
  Tutil.check_contains ~what:"result marshal" ml "put_long _res _r"

let test_exception_generation () =
  let ml = compile "exception Broke { string why; };" in
  Tutil.check_contains ~what:"members type" ml "type broke_members = {";
  Tutil.check_contains ~what:"ocaml exception" ml "exception Broke of broke_members";
  Tutil.check_contains ~what:"raise helper" ml "let raise_broke";
  Tutil.check_contains ~what:"decode helper" ml "let decode_broke"

let test_generated_code_is_valid_ocaml () =
  (* Syntax-check arbitrary generated output against the real compiler
     front-end (full typing is covered by the checked-in copy, which dune
     builds). *)
  let ml =
    compile
      {|module M {
          enum E { a, b };
          typedef sequence<long> Longs;
          struct S2 { E tag; Longs xs; };
          typedef sequence<S2> S2s;
          exception X { long code; };
          interface I {
            S2s crunch(in S2 seed, in E mode) raises (X);
            readonly attribute E mood;
          };
        };|}
  in
  let tmp = Filename.temp_file "gen" ".ml" in
  Fun.protect
    ~finally:(fun () -> Sys.remove tmp)
    (fun () ->
      let oc = open_out tmp in
      output_string oc ml;
      close_out oc;
      (* -stop-after parsing: no dependencies needed, pure syntax check. *)
      let rc =
        Sys.command
          (Printf.sprintf "ocamlfind ocamlc -stop-after parsing -impl %s 2>/dev/null"
             (Filename.quote tmp))
      in
      Alcotest.(check int) "ocamlc parses generated code" 0 rc)

let () =
  Alcotest.run "codegen-ocaml"
    [
      ( "golden",
        [
          Alcotest.test_case "checked-in generated file is fresh" `Quick
            test_checked_in_file_is_fresh;
        ] );
      ( "constructs",
        [
          Alcotest.test_case "enums" `Quick test_enum_generation;
          Alcotest.test_case "structs" `Quick test_struct_generation;
          Alcotest.test_case "interfaces" `Quick test_interface_generation;
          Alcotest.test_case "exceptions" `Quick test_exception_generation;
          Alcotest.test_case "output parses as OCaml" `Quick test_generated_code_is_valid_ocaml;
        ] );
    ]
