(* Golden test for the tcl mapping against the paper's Fig. 10. *)

let mapping = Option.get (Mappings.Registry.find "tcl")

let receiver_idl = "interface Receiver {\n  void print(in string text);\n};\n"

(* Fig. 10, verbatim apart from documented deltas (EXPERIMENTS.md):
   - the figure writes `$pb_connector_getRequestCall` (a typesetting
     artifact); we emit `$pb_connector_ getRequestCall`;
   - the figure compares with ≠; generated tcl uses `!=`;
   - the figure's skeleton omits an explicit reply for the void return;
     ours keeps the `# void return` comment in both classes. *)
let fig10_expected =
  {|if {[info vars "IDL:Receiver:1.0"] != ""} return
set IDL:Receiver:1.0 1
BOA::addIdlMapping ::Receiver "IDL:Receiver:1.0"

class ReceiverStub {
    inherit Stub
    constructor {ior connector} {
        Stub::constructor $ior $connector
    } {}
    public method print {text} {
        set c [$pb_connector_ getRequestCall $this "print" 0]
        $c insertString $text
        $c send
        # void return
        $c release
    }
}

class ReceiverSkel {
    inherit Skel
    constructor {implObj} {
        Skel::constructor $implObj
    } {}
    public method print {c} {
        set text [$c extractString]
        $pb_obj_ print $text
        # void return
    }
}|}

let compile src =
  Core.Compiler.compile_string ~file_base:"Receiver" ~mapping src

let test_fig10_golden () =
  let result = compile receiver_idl in
  let tcl = List.assoc "Receiver.tcl" result.Core.Compiler.files in
  (* Drop the generated banner, compare the body. *)
  let body =
    String.split_on_char '\n' tcl
    |> List.filter (fun l ->
           not (String.length l > 0 && l.[0] = '#')
           || Tutil.contains l "# void return")
    |> String.concat "\n"
  in
  Tutil.check_golden ~what:"Fig. 10" ~expected:fig10_expected ~actual:body

let test_return_values () =
  let result = compile "interface Calc { long add(in long a, in long b); };" in
  let tcl = List.assoc "Receiver.tcl" result.Core.Compiler.files in
  Tutil.check_contains ~what:"args" tcl "public method add {a b} {";
  Tutil.check_contains ~what:"inserts" tcl "$c insertLong $a";
  Tutil.check_contains ~what:"extract result" tcl "set r [$c extractLong]";
  Tutil.check_contains ~what:"return" tcl "return $r";
  Tutil.check_contains ~what:"skeleton reply" tcl "$c insertReply $r"

let test_inheritance () =
  let result =
    compile "interface S { void ping(); }; interface A : S { void f(); };"
  in
  let tcl = List.assoc "Receiver.tcl" result.Core.Compiler.files in
  Tutil.check_contains ~what:"stub inherit" tcl "inherit SStub";
  Tutil.check_contains ~what:"skel inherit" tcl "inherit SSkel"

let () =
  Alcotest.run "codegen-tcl"
    [
      ( "fig10",
        [
          Alcotest.test_case "golden (F10)" `Quick test_fig10_golden;
          Alcotest.test_case "return values" `Quick test_return_values;
          Alcotest.test_case "inheritance" `Quick test_inheritance;
        ] );
    ]
