(* Transport tests: the in-memory loopback and real TCP, through the same
   channel interface. *)

let with_pair ~proto f =
  let host = if proto = "tcp" then "127.0.0.1" else "local" in
  let listener = Orb.Transport.listen ~proto ~host ~port:0 in
  let accepted = ref None in
  let t =
    Thread.create
      (fun () -> accepted := Some (listener.Orb.Transport.accept ()))
      ()
  in
  let client =
    Orb.Transport.connect ~proto ~host ~port:listener.Orb.Transport.bound_port
  in
  Thread.join t;
  let server = Option.get !accepted in
  Fun.protect
    ~finally:(fun () ->
      client.Orb.Transport.close ();
      server.Orb.Transport.close ();
      listener.Orb.Transport.shutdown ())
    (fun () -> f ~client ~server)

let protos = [ "mem"; "tcp" ]

let test_line_reading () =
  List.iter
    (fun proto ->
      with_pair ~proto (fun ~client ~server ->
          client.Orb.Transport.write "first line\nsecond";
          client.Orb.Transport.write " line\nthird\n";
          Alcotest.(check string) "l1" "first line" (server.Orb.Transport.read_line ());
          Alcotest.(check string) "l2" "second line" (server.Orb.Transport.read_line ());
          Alcotest.(check string) "l3" "third" (server.Orb.Transport.read_line ())))
    protos

let test_exact_reading () =
  List.iter
    (fun proto ->
      with_pair ~proto (fun ~client ~server ->
          client.Orb.Transport.write "abcdefgh";
          Alcotest.(check string) "3" "abc" (server.Orb.Transport.read_exact 3);
          Alcotest.(check string) "5" "defgh" (server.Orb.Transport.read_exact 5)))
    protos

let test_mixed_line_and_exact () =
  (* GIOP framing interleaves both read modes. *)
  List.iter
    (fun proto ->
      with_pair ~proto (fun ~client ~server ->
          client.Orb.Transport.write "HDR00000003\nxyzrest\n";
          Alcotest.(check string) "header" "HDR00000003"
            (server.Orb.Transport.read_line ());
          Alcotest.(check string) "body" "xyz" (server.Orb.Transport.read_exact 3);
          Alcotest.(check string) "next line" "rest" (server.Orb.Transport.read_line ())))
    protos

let test_bidirectional () =
  List.iter
    (fun proto ->
      with_pair ~proto (fun ~client ~server ->
          client.Orb.Transport.write "ping\n";
          Alcotest.(check string) "ping" "ping" (server.Orb.Transport.read_line ());
          server.Orb.Transport.write "pong\n";
          Alcotest.(check string) "pong" "pong" (client.Orb.Transport.read_line ())))
    protos

let test_binary_safety () =
  List.iter
    (fun proto ->
      with_pair ~proto (fun ~client ~server ->
          let blob = String.init 256 Char.chr in
          client.Orb.Transport.write blob;
          Alcotest.(check string) "blob" blob (server.Orb.Transport.read_exact 256)))
    protos

let test_eof_on_close () =
  List.iter
    (fun proto ->
      with_pair ~proto (fun ~client ~server ->
          client.Orb.Transport.write "partial";
          client.Orb.Transport.close ();
          match server.Orb.Transport.read_line () with
          | exception Orb.Transport.Transport_error _ -> ()
          | line -> Alcotest.failf "expected EOF error, read %S" line))
    protos

let test_connect_failure () =
  (match Orb.Transport.connect ~proto:"mem" ~host:"local" ~port:59999 with
  | exception Orb.Transport.Transport_error _ -> ()
  | _ -> Alcotest.fail "mem connect to unbound port succeeded");
  match Orb.Transport.connect ~proto:"nope" ~host:"x" ~port:1 with
  | exception Orb.Transport.Transport_error _ -> ()
  | _ -> Alcotest.fail "unknown protocol accepted"

let test_mem_port_allocation () =
  let l1 = Orb.Transport.listen ~proto:"mem" ~host:"local" ~port:0 in
  let l2 = Orb.Transport.listen ~proto:"mem" ~host:"local" ~port:0 in
  Alcotest.(check bool) "distinct ports" true
    (l1.Orb.Transport.bound_port <> l2.Orb.Transport.bound_port);
  (match Orb.Transport.listen ~proto:"mem" ~host:"local" ~port:l1.Orb.Transport.bound_port with
  | exception Orb.Transport.Transport_error _ -> ()
  | _ -> Alcotest.fail "double bind succeeded");
  l1.Orb.Transport.shutdown ();
  l2.Orb.Transport.shutdown ();
  (* After shutdown the port is free again. *)
  let l3 = Orb.Transport.listen ~proto:"mem" ~host:"local" ~port:l1.Orb.Transport.bound_port in
  l3.Orb.Transport.shutdown ()

let test_listener_shutdown_wakes_accept () =
  let listener = Orb.Transport.listen ~proto:"mem" ~host:"local" ~port:0 in
  let result = ref `Pending in
  let t =
    Thread.create
      (fun () ->
        match listener.Orb.Transport.accept () with
        | _ -> result := `Accepted
        | exception Orb.Transport.Transport_error _ -> result := `Stopped)
      ()
  in
  Thread.delay 0.05;
  listener.Orb.Transport.shutdown ();
  Thread.join t;
  Alcotest.(check bool) "woken with error" true (!result = `Stopped)

let test_deadline_timeout () =
  (* With a deadline installed and no data coming, reads raise Timeout
     close to the deadline — on both transports. *)
  List.iter
    (fun proto ->
      with_pair ~proto (fun ~client ~server:_ ->
          client.Orb.Transport.set_deadline
            (Some (Unix.gettimeofday () +. 0.15));
          let t0 = Unix.gettimeofday () in
          (match client.Orb.Transport.read_line () with
          | exception Orb.Transport.Timeout _ -> ()
          | exception e ->
              Alcotest.failf "%s: expected Timeout, got %s" proto
                (Printexc.to_string e)
          | line -> Alcotest.failf "%s: unexpected line %S" proto line);
          let elapsed = Unix.gettimeofday () -. t0 in
          Alcotest.(check bool)
            (Printf.sprintf "%s: timed out near deadline (%.3fs)" proto elapsed)
            true
            (elapsed >= 0.1 && elapsed <= 0.5)))
    protos

let test_deadline_cleared () =
  (* Clearing the deadline restores plain blocking reads, and a
     deadline does not disturb data that arrives in time. *)
  List.iter
    (fun proto ->
      with_pair ~proto (fun ~client ~server ->
          server.Orb.Transport.set_deadline
            (Some (Unix.gettimeofday () +. 5.0));
          client.Orb.Transport.write "prompt\n";
          Alcotest.(check string) "read under deadline" "prompt"
            (server.Orb.Transport.read_line ());
          server.Orb.Transport.set_deadline None;
          client.Orb.Transport.write "after\n";
          Alcotest.(check string) "read after clearing" "after"
            (server.Orb.Transport.read_line ())))
    protos

let test_expired_deadline_fails_fast () =
  with_pair ~proto:"mem" (fun ~client ~server:_ ->
      client.Orb.Transport.set_deadline (Some (Unix.gettimeofday () -. 1.0));
      let t0 = Unix.gettimeofday () in
      (match client.Orb.Transport.read_exact 1 with
      | exception Orb.Transport.Timeout _ -> ()
      | _ -> Alcotest.fail "expected Timeout");
      Alcotest.(check bool) "no wait on expired deadline" true
        (Unix.gettimeofday () -. t0 < 0.05))

let test_faulty_passthrough () =
  (* With no plan installed, "faulty:mem" behaves exactly like "mem". *)
  Orb.Transport.Fault.clear ();
  with_pair ~proto:"faulty:mem" (fun ~client ~server ->
      client.Orb.Transport.write "ping\n";
      Alcotest.(check string) "ping" "ping" (server.Orb.Transport.read_line ());
      server.Orb.Transport.write "pong\n";
      Alcotest.(check string) "pong" "pong" (client.Orb.Transport.read_line ());
      Alcotest.(check int) "nothing injected" 0
        (Orb.Transport.Fault.injected_total ()))

let test_faulty_scripted_drop () =
  (* A scripted plan kills the very first server-side read. *)
  Orb.Transport.Fault.set_plan (fun { Orb.Transport.Fault.op; nth; _ } ->
      match op with
      | `Read when nth = 0 -> Some Orb.Transport.Fault.Drop_read
      | _ -> None);
  Fun.protect ~finally:Orb.Transport.Fault.clear (fun () ->
      with_pair ~proto:"faulty:mem" (fun ~client ~server:_ ->
          (match client.Orb.Transport.read_line () with
          | exception Orb.Transport.Transport_error _ -> ()
          | _ -> Alcotest.fail "expected dropped connection");
          Alcotest.(check (list (pair string int))) "ledger"
            [ ("drop_read", 1) ]
            (Orb.Transport.Fault.injected ())))

let test_multiple_connections () =
  let listener = Orb.Transport.listen ~proto:"mem" ~host:"local" ~port:0 in
  let port = listener.Orb.Transport.bound_port in
  let served = ref 0 in
  let server =
    Thread.create
      (fun () ->
        for _ = 1 to 3 do
          let chan = listener.Orb.Transport.accept () in
          let line = chan.Orb.Transport.read_line () in
          chan.Orb.Transport.write (line ^ "!\n");
          incr served;
          chan.Orb.Transport.close ()
        done)
      ()
  in
  List.iter
    (fun name ->
      let c = Orb.Transport.connect ~proto:"mem" ~host:"local" ~port in
      c.Orb.Transport.write (name ^ "\n");
      Alcotest.(check string) name (name ^ "!") (c.Orb.Transport.read_line ());
      c.Orb.Transport.close ())
    [ "a"; "b"; "c" ];
  Thread.join server;
  Alcotest.(check int) "served" 3 !served;
  listener.Orb.Transport.shutdown ()

let () =
  Alcotest.run "transport"
    [
      ( "channels",
        [
          Alcotest.test_case "line reading" `Quick test_line_reading;
          Alcotest.test_case "exact reading" `Quick test_exact_reading;
          Alcotest.test_case "mixed reads" `Quick test_mixed_line_and_exact;
          Alcotest.test_case "bidirectional" `Quick test_bidirectional;
          Alcotest.test_case "binary safety" `Quick test_binary_safety;
          Alcotest.test_case "EOF on close" `Quick test_eof_on_close;
        ] );
      ( "deadlines",
        [
          Alcotest.test_case "reads time out" `Quick test_deadline_timeout;
          Alcotest.test_case "deadline cleared" `Quick test_deadline_cleared;
          Alcotest.test_case "expired deadline" `Quick test_expired_deadline_fails_fast;
        ] );
      ( "fault injection",
        [
          Alcotest.test_case "passthrough" `Quick test_faulty_passthrough;
          Alcotest.test_case "scripted drop" `Quick test_faulty_scripted_drop;
        ] );
      ( "lifecycle",
        [
          Alcotest.test_case "connect failures" `Quick test_connect_failure;
          Alcotest.test_case "mem port allocation" `Quick test_mem_port_allocation;
          Alcotest.test_case "shutdown wakes accept" `Quick test_listener_shutdown_wakes_accept;
          Alcotest.test_case "sequential connections" `Quick test_multiple_connections;
        ] );
    ]
