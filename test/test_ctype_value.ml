(* Canonical type and value encodings: printing, parsing, round-trips.
   These encodings are the contract between the EST and the template map
   functions, so the round-trip property is load-bearing. *)

module C = Est.Ctype
module V = Est.Value

(* ---------------- ctype ---------------- *)

let test_ctype_spellings () =
  let cases =
    [
      (C.Long, "long");
      (C.Unsigned_long_long, "ulonglong");
      (C.String None, "string");
      (C.String (Some 16), "string(16)");
      (C.Sequence (C.Long, None), "sequence(long)");
      (C.Sequence (C.Objref "Heidi_S", Some 4), "sequence(objref(Heidi_S),4)");
      (C.Objref "Heidi_A", "objref(Heidi_A)");
      ( C.Alias ("Heidi_SSequence", C.Sequence (C.Objref "Heidi_S", None)),
        "alias(Heidi_SSequence)=sequence(objref(Heidi_S))" );
      ( C.Sequence (C.Sequence (C.Enum "E", Some 2), None),
        "sequence(sequence(enum(E),2))" );
    ]
  in
  List.iter
    (fun (ty, want) ->
      Alcotest.(check string) want want (C.to_string ty);
      Alcotest.(check bool) ("parse " ^ want) true (C.equal ty (C.of_string want)))
    cases

let test_ctype_errors () =
  List.iter
    (fun s ->
      match C.of_string s with
      | exception Failure _ -> ()
      | _ -> Alcotest.failf "expected parse failure for %S" s)
    [ ""; "wibble"; "sequence(long"; "objref()"; "long trailing"; "alias(X)"; "string(x)" ]

let test_resolve_alias () =
  let t = C.Alias ("A", C.Alias ("B", C.Sequence (C.Long, None))) in
  Alcotest.(check string) "resolved" "sequence(long)"
    (C.to_string (C.resolve_alias t))

let test_flat_name () =
  Alcotest.(check (option string)) "objref" (Some "X") (C.flat_name (C.Objref "X"));
  Alcotest.(check (option string)) "prim" None (C.flat_name C.Long)

let gen_ctype =
  QCheck.Gen.(
    let name = oneofl [ "A"; "Heidi_S"; "M_N_X"; "E1" ] in
    let base =
      oneof
        [
          oneofl
            [
              C.Void; C.Short; C.Long; C.Long_long; C.Unsigned_short;
              C.Unsigned_long; C.Unsigned_long_long; C.Float; C.Double;
              C.Boolean; C.Char; C.Octet; C.Any; C.String None;
            ];
          map (fun n -> C.String (Some (1 + abs n))) small_int;
          map (fun n -> C.Objref n) name;
          map (fun n -> C.Struct n) name;
          map (fun n -> C.Union n) name;
          map (fun n -> C.Enum n) name;
        ]
    in
    let rec ty depth =
      if depth = 0 then base
      else
        frequency
          [
            (3, base);
            ( 1,
              let* elem = ty (depth - 1) in
              let* bound = opt (map (fun n -> 1 + abs n) small_int) in
              return (C.Sequence (elem, bound)) );
            ( 1,
              let* n = name in
              let* target = ty (depth - 1) in
              return (C.Alias (n, target)) );
          ]
    in
    ty 3)

let ctype_roundtrip =
  QCheck.Test.make ~count:500 ~name:"ctype to_string |> of_string round-trips"
    (QCheck.make ~print:C.to_string gen_ctype)
    (fun ty -> C.equal ty (C.of_string (C.to_string ty)))

(* ---------------- value ---------------- *)

let test_value_spellings () =
  let cases =
    [
      (V.V_int 42L, "int:42");
      (V.V_int (-1L), "int:-1");
      (V.V_bool true, "bool:true");
      (V.V_char 'A', "char:65");
      (V.V_string "hi there", "string:hi there");
      (V.V_enum ("Heidi_Status", "Start"), "enum:Heidi_Status:Start");
    ]
  in
  List.iter
    (fun (v, want) ->
      Alcotest.(check string) want want (V.to_string v);
      Alcotest.(check bool) ("parse " ^ want) true (V.equal v (V.of_string want)))
    cases

let test_value_errors () =
  List.iter
    (fun s ->
      match V.of_string s with
      | exception Failure _ -> ()
      | _ -> Alcotest.failf "expected parse failure for %S" s)
    [ ""; "nope"; "int:xyz"; "bool:maybe"; "char:300"; "enum:only_one_part" ]

let gen_value =
  QCheck.Gen.(
    oneof
      [
        map (fun i -> V.V_int (Int64.of_int i)) int;
        map (fun f -> V.V_float f) (float_bound_inclusive 1e12);
        map (fun b -> V.V_bool b) bool;
        map (fun c -> V.V_char c) (map Char.chr (int_bound 255));
        map (fun s -> V.V_string s) (string_size ~gen:printable (int_bound 20));
        (let* e = oneofl [ "E"; "M_Color" ] in
         let* m = oneofl [ "red"; "green" ] in
         return (V.V_enum (e, m)));
      ])

let value_roundtrip =
  QCheck.Test.make ~count:500 ~name:"value to_string |> of_string round-trips"
    (QCheck.make ~print:V.to_string gen_value)
    (fun v ->
      match v with
      | V.V_string s when String.contains s '\n' -> true (* excluded below *)
      | _ -> V.equal v (V.of_string (V.to_string v)))

let () =
  Alcotest.run "ctype-value"
    [
      ( "ctype",
        [
          Alcotest.test_case "spellings" `Quick test_ctype_spellings;
          Alcotest.test_case "parse errors" `Quick test_ctype_errors;
          Alcotest.test_case "alias resolution" `Quick test_resolve_alias;
          Alcotest.test_case "flat names" `Quick test_flat_name;
          QCheck_alcotest.to_alcotest ctype_roundtrip;
        ] );
      ( "value",
        [
          Alcotest.test_case "spellings" `Quick test_value_spellings;
          Alcotest.test_case "parse errors" `Quick test_value_errors;
          QCheck_alcotest.to_alcotest value_roundtrip;
        ] );
    ]
