(* Deterministic wire-protocol fuzzer, run against a LIVE server.
   [test_fuzz.ml] already feeds random bytes to the decoders offline;
   this driver attacks the whole serving stack — framing, decode
   limits, admission, error replies — the way a hostile peer would:

     take a valid frame, mutate its body (truncate / bit-flip /
     length-inflate / token-swap / oversize), frame it honestly, write
     it to a real connection, then prove the server is still alive by
     completing a Locate_request on the same connection under a
     deadline (a hang is a failure, not a timeout to shrug off).

   Every mutation is derived from [Random.State.make [| seed; proto;
   i |]], so a failing iteration replays exactly with
   [--seed S --count N]. Low-probability frame-HEADER damage is also
   thrown at the binary protocol; there the connection is allowed (and
   expected) to close, and the prover reconnects — what must never
   happen is the server dying or wedging.

   Exit status 0 = server survived everything; 1 = a probe failed. *)

let usage = "fuzz_protocol [--count N] [--seed N] [--verbose]"

let count = ref 500 (* mutations per protocol *)
let seed = ref 42
let verbose = ref false

let () =
  Arg.parse
    [
      ("--count", Arg.Set_int count, "mutations per protocol (default 500)");
      ("--seed", Arg.Set_int seed, "PRNG seed (default 42)");
      ("--verbose", Arg.Set verbose, "log each mutation");
    ]
    (fun a -> raise (Arg.Bad ("unexpected argument " ^ a)))
    usage

let echo_skeleton () =
  Orb.Skeleton.create ~type_id:"IDL:Fuzz/Echo:1.0"
    [
      ( "echo",
        fun args results ->
          results.Wire.Codec.put_string ("echo:" ^ args.Wire.Codec.get_string ())
      );
    ]

(* Tight decode budget so the mutations actually cross the limits:
   hostile lengths, deep nesting and oversized frames must all be
   answerable without the server allocating what the frame claims. *)
let fuzz_limits =
  {
    Wire.Codec.max_frame_bytes = 8 * 1024;
    max_string_bytes = 1024;
    max_sequence_length = 256;
    max_nesting_depth = 8;
  }

let fuzz_policy =
  { Orb.default_server_policy with limits = fuzz_limits }

(* ------------------------------------------------------------------ *)
(* Mutations                                                           *)
(* ------------------------------------------------------------------ *)

type mutation =
  | Truncate
  | Bit_flip
  | Length_inflate
  | Token_swap
  | Oversize
  | Header_damage  (* binary framing only: damage the frame header *)
  | Budget_hostile  (* well-formed envelope, hostile deadline slot *)
  | Nego_hostile  (* well-formed envelope, hostile negotiation slot *)
  | Varint_overlong  (* varint framing only: 10-group length prefix *)
  | Varint_truncate  (* varint framing only: body cut mid-varint *)
  | Version_bogus  (* varint framing only: stomp the codec version byte *)

let mutation_name = function
  | Truncate -> "truncate"
  | Bit_flip -> "bit-flip"
  | Length_inflate -> "length-inflate"
  | Token_swap -> "token-swap"
  | Oversize -> "oversize"
  | Header_damage -> "header-damage"
  | Budget_hostile -> "budget-hostile"
  | Nego_hostile -> "nego-hostile"
  | Varint_overlong -> "varint-overlong"
  | Varint_truncate -> "varint-truncate"
  | Version_bogus -> "version-bogus"

(* The attacker's claim of a 4-billion-element payload: the decode
   limits must refuse it without allocating it. Text protocol: splice
   the digits into a [#len] token; binary: stomp 4 bytes with 0xff
   (reads back as ulong 4294967295 wherever a length lands). *)
let inflate_length ~binary rng body =
  let n = String.length body in
  if n = 0 then body
  else if binary then begin
    let b = Bytes.of_string body in
    let pos = Random.State.int rng n in
    for i = pos to min (n - 1) (pos + 3) do
      Bytes.set b i '\xff'
    done;
    Bytes.to_string b
  end
  else
    match String.index_opt body '#' with
    | Some _ ->
        (* Replace the digit run after some '#' with the hostile count. *)
        let hashes =
          List.filter (fun j -> body.[j] = '#') (List.init n Fun.id)
        in
        let i = List.nth hashes (Random.State.int rng (List.length hashes)) in
        let j = ref (i + 1) in
        while
          !j < n && (match body.[!j] with '0' .. '9' -> true | _ -> false)
        do
          incr j
        done;
        String.sub body 0 (i + 1)
        ^ "4294967295"
        ^ String.sub body !j (n - !j)
    | None -> body ^ "#4294967295"

let mutate ~binary rng m body =
  let n = String.length body in
  match m with
  | Truncate -> if n = 0 then body else String.sub body 0 (Random.State.int rng n)
  | Bit_flip ->
      if n = 0 then body
      else begin
        let b = Bytes.of_string body in
        for _ = 1 to 1 + Random.State.int rng 8 do
          let pos = Random.State.int rng n in
          let bit = Random.State.int rng 8 in
          Bytes.set b pos
            (Char.chr (Char.code (Bytes.get b pos) lxor (1 lsl bit)))
        done;
        Bytes.to_string b
      end
  | Length_inflate -> inflate_length ~binary rng body
  | Token_swap ->
      if n < 4 then body
      else begin
        (* Swap two equal-length slices: structurally plausible bytes in
           structurally wrong places. *)
        let len = 1 + Random.State.int rng (max 1 (n / 4)) in
        let a = Random.State.int rng (n - len + 1) in
        let b = Random.State.int rng (n - len + 1) in
        let lo, hi = (min a b, max a b) in
        if lo + len > hi then body
        else
          String.sub body 0 lo
          ^ String.sub body hi len
          ^ String.sub body (lo + len) (hi - lo - len)
          ^ String.sub body lo len
          ^ String.sub body (hi + len) (n - hi - len)
      end
  | Oversize ->
      (* Honest framing of a body past [max_frame_bytes]: the server
         must discard it in bounded chunks and answer, not buffer it. *)
      body ^ String.make (2 * fuzz_limits.Wire.Codec.max_frame_bytes) 'A'
  | Header_damage -> body (* handled at the framing layer *)
  | Budget_hostile | Nego_hostile ->
      body (* the bodies are purpose-built, not mutated *)
  | Varint_overlong -> body (* handled at the framing layer *)
  | Varint_truncate ->
      (* Cut at a random point and end on a continuation bit: some
         varint inside the body now promises bytes that never come. *)
      if n = 0 then body
      else String.sub body 0 (Random.State.int rng n) ^ "\xff"
  | Version_bogus ->
      (* The HCX envelope leads with its version byte: stomp it with a
         version nobody ships. *)
      if n = 0 then body
      else begin
        let b = Bytes.of_string body in
        Bytes.set b 0 (Char.chr (2 + Random.State.int rng 254));
        Bytes.to_string b
      end

(* ------------------------------------------------------------------ *)
(* Framing (mirrors Communicator.send, which refuses hostile bodies)   *)
(* ------------------------------------------------------------------ *)

let uvarint n =
  let buf = Buffer.create 4 in
  let n = ref n in
  while !n >= 0x80 do
    Buffer.add_char buf (Char.chr (!n land 0x7f lor 0x80));
    n := !n lsr 7
  done;
  Buffer.add_char buf (Char.chr !n);
  Buffer.contents buf

(* [style]: [`Honest] frames the (mutated) body truthfully so the
   stream stays synchronized; [`Damage] corrupts the frame header
   itself; [`Overlong] (varint framing) sends a length prefix of ten
   continuation groups — more than any honest encoder can produce, so
   the server must kill the connection rather than guess. *)
let frame proto ~style rng body =
  match proto.Orb.Protocol.framing with
  | Orb.Protocol.Line ->
      (* The terminating newline keeps the stream line-synchronized no
         matter what the mutation did (inner newlines just split the
         body into several hostile frames). *)
      body ^ "\n"
  | Orb.Protocol.Length_prefixed { header } -> (
      match style with
      | `Damage ->
          let h =
            Bytes.of_string
              (Printf.sprintf "%s%08x" header (String.length body))
          in
          let pos = Random.State.int rng (Bytes.length h) in
          Bytes.set h pos (Char.chr (Random.State.int rng 256));
          Bytes.to_string h ^ "\n" ^ body
      | `Honest | `Overlong ->
          (* Honest header for the (mutated) body, so the stream stays
             synchronized and the server can keep the connection. *)
          Printf.sprintf "%s%08x\n%s" header (String.length body) body)
  | Orb.Protocol.Varint_prefixed { magic } -> (
      match style with
      | `Damage ->
          let h =
            Bytes.of_string
              (String.make 1 magic ^ uvarint (String.length body))
          in
          let pos = Random.State.int rng (Bytes.length h) in
          Bytes.set h pos (Char.chr (Random.State.int rng 256));
          Bytes.to_string h ^ body
      | `Overlong -> String.make 1 magic ^ String.make 10 '\xff' ^ "\x01" ^ body
      | `Honest -> String.make 1 magic ^ uvarint (String.length body) ^ body)

(* ------------------------------------------------------------------ *)
(* The liveness prover                                                 *)
(* ------------------------------------------------------------------ *)

exception Probe_failed of string

(* One attacker connection: a raw channel for writing hostile frames
   plus a communicator over the same channel for well-formed traffic. *)
type attacker = { chan : Orb.Transport.channel; comm : Orb.Communicator.t }

let connect_proto proto ~port () =
  let chan = Orb.Transport.connect ~proto:"mem" ~host:"local" ~port in
  { chan; comm = Orb.Communicator.wrap proto chan }

(* Complete a Locate_request on [a] under [deadline] seconds: skip any
   error replies the server owed us for earlier hostile frames, accept
   only our locate reply. *)
let probe a target ~req_id ~deadline =
  Orb.Communicator.set_deadline a.comm (Some (Unix.gettimeofday () +. deadline));
  Fun.protect
    ~finally:(fun () ->
      try Orb.Communicator.set_deadline a.comm None with _ -> ())
    (fun () ->
      Orb.Communicator.send a.comm (Orb.Protocol.Locate_request { req_id; target });
      let rec await budget =
        if budget = 0 then failwith "probe: reply flood without locate reply";
        match Orb.Communicator.recv a.comm with
        | Orb.Protocol.Locate_reply { rep_id; found; _ } when rep_id = req_id ->
            if not found then failwith "probe: object vanished";
            ()
        | _ -> await (budget - 1)
      in
      await 64)

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)
(* ------------------------------------------------------------------ *)

type tally = {
  mutable sent : int;
  mutable reconnects : int;
  mutable error_replies : int;
}

let run_proto ~ptag (pname, proto) =
  let server =
    Orb.create ~protocol:proto ~transport:"mem" ~host:"local"
      ~server_policy:fuzz_policy ()
  in
  Orb.start server;
  let target = Orb.export server (echo_skeleton ()) in
  let client = Orb.create ~protocol:proto ~transport:"mem" ~host:"local" () in
  let port = Orb.port server in
  (* The well-formed end-to-end check: the server must not only answer
     probes but still dispatch real calls correctly. *)
  let check_echo tag =
    match
      Orb.invoke client target ~op:"echo" (fun e ->
          e.Wire.Codec.put_string tag)
    with
    | Some d ->
        let got = d.Wire.Codec.get_string () in
        if got <> "echo:" ^ tag then
          raise (Probe_failed (Printf.sprintf "echo corrupted: %S" got))
    | None -> raise (Probe_failed "echo returned no reply")
    | exception e ->
        raise
          (Probe_failed
             (Printf.sprintf "echo failed after fuzzing: %s"
                (Printexc.to_string e)))
  in
  check_echo "before";
  (* Baseline bodies the mutations start from: a request with a string
     + sequence payload (lengths for the inflater to find) and a locate
     request (minimal envelope). *)
  let payload =
    let e = proto.Orb.Protocol.codec.Wire.Codec.encoder () in
    e.Wire.Codec.put_string "hello fuzz";
    e.Wire.Codec.put_len 3;
    e.Wire.Codec.put_long 1;
    e.Wire.Codec.put_long 2;
    e.Wire.Codec.put_long 3;
    e.Wire.Codec.finish ()
  in
  let bases =
    [|
      proto.Orb.Protocol.encode_message
        (Orb.Protocol.Request
           {
             req_id = 7;
             target;
             operation = "echo";
             oneway = false;
             payload;
             trace_ctx = "";
             budget_us = None;
             nego_offer = "";
           });
      proto.Orb.Protocol.encode_message
        (Orb.Protocol.Locate_request { req_id = 9; target });
    |]
  in
  (* Hostile deadline slots on an otherwise well-formed envelope: a
     negative budget, a value past int range, garbage, an empty token,
     a float, and a slot truncated mid-value. The server must answer
     each with a malformed-request error (or at worst drop only this
     connection) — never crash, never accept a bogus deadline. *)
  let budget_bodies =
    let mk budget =
      let e = proto.Orb.Protocol.codec.Wire.Codec.encoder () in
      e.Wire.Codec.put_octet 0;
      e.Wire.Codec.put_ulong 11;
      e.Wire.Codec.put_bool false;
      e.Wire.Codec.put_string (Orb.Objref.to_string target);
      e.Wire.Codec.put_string "echo";
      e.Wire.Codec.put_string payload;
      e.Wire.Codec.put_string "" (* trace slot: positional, must precede *);
      e.Wire.Codec.put_string budget;
      e.Wire.Codec.finish ()
    in
    [|
      mk "-1";
      mk "-4611686018427387904";
      mk "99999999999999999999999999999";
      mk "NaN";
      mk "";
      mk "1e9";
      (let b = mk "123456789" in
       String.sub b 0 (String.length b - 2));
    |]
  in
  (* Hostile negotiation-offer slots on an otherwise well-formed
     envelope: past the 256-byte bound, charset violations, and junk
     that validates but names nothing. The server must answer each
     with a malformed-request error or dispatch it with the offer
     ignored — never crash, never switch codecs on garbage. *)
  let nego_bodies =
    let mk offer =
      let e = proto.Orb.Protocol.codec.Wire.Codec.encoder () in
      e.Wire.Codec.put_octet 0;
      e.Wire.Codec.put_ulong 13;
      e.Wire.Codec.put_bool false;
      e.Wire.Codec.put_string (Orb.Objref.to_string target);
      e.Wire.Codec.put_string "echo";
      e.Wire.Codec.put_string payload;
      e.Wire.Codec.put_string "" (* trace slot *);
      e.Wire.Codec.put_string "" (* budget slot, forced empty *);
      e.Wire.Codec.put_string offer;
      e.Wire.Codec.finish ()
    in
    [|
      mk (String.make 300 'a');
      mk "hcx/\001\002";
      mk "hcx/1,\"; exec evil";
      mk "////,,,,";
      mk "hcx/99999999999999999999";
    |]
  in
  let binary =
    match proto.Orb.Protocol.framing with
    | Orb.Protocol.Line -> false
    | Orb.Protocol.Length_prefixed _ | Orb.Protocol.Varint_prefixed _ -> true
  in
  let mutations =
    match proto.Orb.Protocol.framing with
    | Orb.Protocol.Line ->
        [| Truncate; Bit_flip; Length_inflate; Token_swap; Oversize;
           Budget_hostile; Nego_hostile |]
    | Orb.Protocol.Length_prefixed _ ->
        [|
          Truncate; Bit_flip; Length_inflate; Token_swap; Oversize;
          Header_damage; Budget_hostile; Nego_hostile;
        |]
    | Orb.Protocol.Varint_prefixed _ ->
        [|
          Truncate; Bit_flip; Length_inflate; Token_swap; Oversize;
          Header_damage; Budget_hostile; Nego_hostile; Varint_overlong;
          Varint_truncate; Version_bogus;
        |]
  in
  let tally = { sent = 0; reconnects = 0; error_replies = 0 } in
  let a = ref (connect_proto proto ~port ()) in
  let reconnect () =
    (try Orb.Communicator.close (!a).comm with _ -> ());
    tally.reconnects <- tally.reconnects + 1;
    a := connect_proto proto ~port ()
  in
  let before = Orb.stats server in
  for i = 0 to !count - 1 do
    let rng = Random.State.make [| !seed; ptag; i |] in
    let m = mutations.(Random.State.int rng (Array.length mutations)) in
    let body =
      match m with
      | Budget_hostile ->
          budget_bodies.(Random.State.int rng (Array.length budget_bodies))
      | Nego_hostile ->
          nego_bodies.(Random.State.int rng (Array.length nego_bodies))
      | _ -> bases.(Random.State.int rng (Array.length bases))
    in
    let style =
      match m with
      | Header_damage -> `Damage
      | Varint_overlong -> `Overlong
      | _ -> `Honest
    in
    let hostile = frame proto ~style rng (mutate ~binary rng m body) in
    if !verbose then
      Printf.printf "[%s %4d] %-14s %d bytes\n%!" pname i (mutation_name m)
        (String.length hostile);
    (match (!a).chan.Orb.Transport.write hostile with
    | () -> ()
    | exception _ ->
        (* The server closed this connection after earlier damage and
           the write noticed; start a fresh one and resend. *)
        reconnect ();
        (try (!a).chan.Orb.Transport.write hostile with _ -> reconnect ()));
    (* Liveness: the same connection must still answer (the server
       either replied with an error or consumed the frame), or — when
       the damage was fatal for the connection — a fresh connection
       must. A deadline expiry on the fresh connection is a wedged
       server: FAIL. The dirty-connection deadline is short: a damaged
       header can legitimately leave the server waiting for body bytes
       that never come (our probe gets eaten as body), and that costs
       this full deadline before the reconnect proves liveness. *)
    (match probe !a target ~req_id:(100_000 + i) ~deadline:0.4 with
    | () -> ()
    | exception _ ->
        reconnect ();
        (match probe !a target ~req_id:(200_000 + i) ~deadline:2.0 with
        | () -> ()
        | exception e ->
            raise
              (Probe_failed
                 (Printf.sprintf
                    "%s iteration %d (%s, seed %d): server unreachable on a \
                     fresh connection: %s"
                    pname i (mutation_name m) !seed (Printexc.to_string e)))));
    tally.sent <- tally.sent + 1;
    if i mod 50 = 49 then check_echo (Printf.sprintf "mid-%d" i)
  done;
  check_echo "after";
  let after = Orb.stats server in
  tally.error_replies <- after.Orb.served - before.Orb.served;
  Printf.printf
    "%-6s %5d hostile frames: survived (reconnects %d, rejected %d, served %d)\n%!"
    pname tally.sent tally.reconnects
    (after.Orb.rejected - before.Orb.rejected)
    (after.Orb.served - before.Orb.served);
  Orb.shutdown client;
  Orb.shutdown server

(* ------------------------------------------------------------------ *)
(* Client-mux fuzzing: hostile locate replies and forwards             *)
(* ------------------------------------------------------------------ *)

(* The stage above attacks the SERVER with hostile requests; this one
   attacks the CLIENT's reply demultiplexer with hostile locate-layer
   frames — the new surface the replication work opened up. A "replica"
   that answers every request with a damaged [Locate_forward] /
   [Locate_reply] (truncated forward objref, rep_id matching nothing)
   must cost the client exactly one connection: the tainted one. A call
   pipelined to a HEALTHY replica over its own connection at the same
   moment must complete untouched — the mux may never kill across
   connections. *)

type client_mutation =
  | Fwd_truncated_objref  (* Locate_forward whose target won't parse *)
  | Fwd_bogus_rep_id  (* well-formed forward for a rep_id nobody sent *)
  | Locreply_truncated_forward  (* Locate_reply, damaged forward slot *)
  | Locreply_bogus_rep_id  (* well-formed locate reply, orphan rep_id *)

let client_mutation_name = function
  | Fwd_truncated_objref -> "fwd-truncated-objref"
  | Fwd_bogus_rep_id -> "fwd-bogus-rep-id"
  | Locreply_truncated_forward -> "locreply-truncated-fwd"
  | Locreply_bogus_rep_id -> "locreply-bogus-rep-id"

let valid_forward_string =
  Orb.Objref.to_string
    (Orb.Objref.make ~proto:"tcp" ~host:"nowhere" ~port:1 ~oid:"1"
       ~type_id:"IDL:Fuzz/Echo:1.0")

let hostile_locate_body proto kind ~req_id =
  let e = proto.Orb.Protocol.codec.Wire.Codec.encoder () in
  (match kind with
  | Fwd_truncated_objref ->
      e.Wire.Codec.put_octet 4;
      e.Wire.Codec.put_ulong req_id;
      e.Wire.Codec.put_string "@tcp:h"
  | Fwd_bogus_rep_id ->
      e.Wire.Codec.put_octet 4;
      e.Wire.Codec.put_ulong (req_id + 555_000);
      e.Wire.Codec.put_string valid_forward_string
  | Locreply_truncated_forward ->
      e.Wire.Codec.put_octet 3;
      e.Wire.Codec.put_ulong req_id;
      e.Wire.Codec.put_bool true;
      e.Wire.Codec.put_string "@tcp"
  | Locreply_bogus_rep_id ->
      e.Wire.Codec.put_octet 3;
      e.Wire.Codec.put_ulong (req_id + 555_000);
      e.Wire.Codec.put_bool true);
  e.Wire.Codec.finish ()

(* A replica gone hostile: speaks honest framing, answers every request
   with the mutation currently selected by [kind]. *)
let start_hostile_replica proto kind =
  let listener = Orb.Transport.listen ~proto:"mem" ~host:"local" ~port:0 in
  let rng = Random.State.make [| !seed |] in
  let serve chan =
    let comm = Orb.Communicator.wrap proto chan in
    try
      while true do
        match Orb.Communicator.recv comm with
        | Orb.Protocol.Request { Orb.Protocol.req_id; _ }
        | Orb.Protocol.Locate_request { req_id; _ } ->
            chan.Orb.Transport.write
              (frame proto ~style:`Honest rng
                 (hostile_locate_body proto !kind ~req_id))
        | _ -> ()
      done
    with _ -> ( try chan.Orb.Transport.close () with _ -> ())
  in
  ignore
    (Thread.create
       (fun () ->
         try
           while true do
             let chan = listener.Orb.Transport.accept () in
             ignore (Thread.create serve chan)
           done
         with _ -> ())
       ());
  listener

let run_client_mux (pname, proto) =
  let healthy =
    Orb.create ~protocol:proto ~transport:"mem" ~host:"local" ()
  in
  Orb.start healthy;
  let healthy_target =
    Orb.export healthy
      (Orb.Skeleton.create ~type_id:"IDL:Fuzz/Echo:1.0"
         [
           ( "slow",
             fun _ results ->
               Thread.delay 0.02;
               results.Wire.Codec.put_string "slow-done" );
           ("echo", fun _ results -> results.Wire.Codec.put_string "ok");
         ])
  in
  let kind = ref Fwd_truncated_objref in
  let listener = start_hostile_replica proto kind in
  let hostile_target =
    Orb.Objref.make ~proto:"mem" ~host:"local"
      ~port:listener.Orb.Transport.bound_port ~oid:"666"
      ~type_id:"IDL:Fuzz/Echo:1.0"
  in
  (* No retries (each hostile exchange must surface) and a breaker that
     never opens (every iteration must reach the wire). *)
  let client =
    Orb.create ~protocol:proto ~transport:"mem" ~host:"local"
      ~retry:{ Orb.Retry.default with max_attempts = 1 }
      ~breaker:{ Orb.Breaker.default_config with failure_threshold = 1_000_000 }
      ()
  in
  let kinds =
    [|
      Fwd_truncated_objref; Fwd_bogus_rep_id; Locreply_truncated_forward;
      Locreply_bogus_rep_id;
    |]
  in
  let iters = max (Array.length kinds) (!count / 25) in
  for i = 0 to iters - 1 do
    kind := kinds.(i mod Array.length kinds);
    if !verbose then
      Printf.printf "[%s mux %3d] %s\n%!" pname i (client_mutation_name !kind);
    (* A call in flight on the healthy replica's connection while the
       tainted one dies: it must land, not become collateral damage. *)
    let slow_result = ref `Pending in
    let waiter =
      Thread.create
        (fun () ->
          slow_result :=
            match
              Orb.invoke client healthy_target ~op:"slow" (fun _ -> ())
            with
            | Some d -> `Got (d.Wire.Codec.get_string ())
            | None -> `Err "no reply"
            | exception e -> `Err (Printexc.to_string e))
        ()
    in
    Thread.delay 0.005;
    (match
       Orb.invoke client hostile_target ~op:"echo" ~timeout:5.0 (fun e ->
           e.Wire.Codec.put_string "x")
     with
    | _ ->
        raise
          (Probe_failed
             (Printf.sprintf "%s mux iteration %d (%s): hostile frame accepted"
                pname i (client_mutation_name !kind)))
    | exception (Probe_failed _ as e) -> raise e
    | exception _ -> ());
    Thread.join waiter;
    (match !slow_result with
    | `Got "slow-done" -> ()
    | `Got other ->
        raise
          (Probe_failed
             (Printf.sprintf "%s mux iteration %d: healthy reply corrupted: %S"
                pname i other))
    | `Pending | `Err _ ->
        raise
          (Probe_failed
             (Printf.sprintf
                "%s mux iteration %d (%s): call on the HEALTHY replica was \
                 collateral damage: %s"
                pname i (client_mutation_name !kind)
                (match !slow_result with `Err m -> m | _ -> "no result"))));
    (* And the healthy connection still pipelines fresh calls. *)
    match Orb.invoke client healthy_target ~op:"echo" (fun _ -> ()) with
    | Some d when d.Wire.Codec.get_string () = "ok" -> ()
    | _ ->
        raise
          (Probe_failed
             (Printf.sprintf "%s mux iteration %d: healthy replica unreachable"
                pname i))
  done;
  (* The client never tore down the healthy replica's connection: the
     server still holds exactly the one it accepted. *)
  let sc = (Orb.stats healthy).Orb.server_connections in
  if sc <> 1 then
    raise
      (Probe_failed
         (Printf.sprintf
            "%s: healthy replica holds %d connections, want 1 — the mux \
             killed across connections"
            pname sc));
  Printf.printf
    "%-6s %5d hostile locate frames: only tainted connections died\n%!" pname
    iters;
  listener.Orb.Transport.shutdown ();
  Orb.shutdown client;
  Orb.shutdown healthy

let () =
  let protos =
    [
      ("text", Orb.Protocol.text);
      ("giop", Giop.protocol ());
      ("hcx", Orb.Protocol.hcx);
    ]
  in
  match
    List.iteri (fun ptag p -> run_proto ~ptag:(ptag + 1) p) protos;
    List.iter run_client_mux protos
  with
  | () -> ()
  | exception Probe_failed msg ->
      prerr_endline ("FUZZ FAILURE: " ^ msg);
      exit 1
