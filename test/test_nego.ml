(* End-to-end codec negotiation: client and server ORBs converging on a
   compact encoding over a live connection, falling back when the peer
   cannot follow, and judging version skew with the IDL-evolution
   verdict (V301-V304) as the compatibility predicate. *)

module P = Orb.Protocol

let echo_type = "IDL:Test/Echo:1.0"

let echo_skeleton () =
  Orb.Skeleton.create ~type_id:echo_type
    [
      ("echo", fun args results ->
          results.Wire.Codec.put_string ("echo:" ^ args.Wire.Codec.get_string ()));
      ("noreply", fun args _ -> ignore (args.Wire.Codec.get_string ()));
    ]

let invoke_string client target ~op s =
  match Orb.invoke client target ~op (fun e -> e.Wire.Codec.put_string s) with
  | Some d -> d.Wire.Codec.get_string ()
  | None -> Alcotest.fail "expected a reply"

(* A second wire version of the compact codec, as a newer deployment
   would ship it: same implementation, bumped negotiation version. *)
let hcx_v2 =
  P.generic ~name:"hcx" ~version:2
    ~framing:(P.Varint_prefixed { magic = P.hcx_magic })
    Wire.Hcx_codec.codec

let with_pair ?(transport = "mem") ?(host = "local") ~server_codecs
    ?server_compat ~client_codecs ?client_compat f =
  let server =
    Orb.create ~transport ~host ~codecs:server_codecs
      ?codec_compat:server_compat ()
  in
  Orb.start server;
  let client =
    Orb.create ~transport ~host ~codecs:client_codecs
      ?codec_compat:client_compat ()
  in
  Fun.protect
    ~finally:(fun () ->
      Orb.shutdown client;
      Orb.shutdown server)
    (fun () -> f ~server ~client)

let check_stats name orb ~nego ~fallback =
  let st = Orb.stats orb in
  Alcotest.(check int) (name ^ " negotiations") nego st.Orb.codec_negotiations;
  Alcotest.(check int) (name ^ " fallbacks") fallback st.Orb.codec_fallbacks

let test_converge_on_hcx () =
  List.iter
    (fun (transport, host) ->
      with_pair ~transport ~host ~server_codecs:[ P.hcx ]
        ~client_codecs:[ P.hcx ] (fun ~server ~client ->
          let target = Orb.export server (echo_skeleton ()) in
          (* The first call carries the offer; every later call rides
             the negotiated encoding on the same connection. *)
          for i = 1 to 20 do
            Alcotest.(check string) (transport ^ " call")
              (Printf.sprintf "echo:%d" i)
              (invoke_string client target ~op:"echo" (string_of_int i))
          done;
          Alcotest.(check int) (transport ^ " one connection") 1
            (Orb.connections_opened client);
          check_stats (transport ^ " client") client ~nego:1 ~fallback:0;
          check_stats (transport ^ " server") server ~nego:1 ~fallback:0))
    [ ("mem", "local"); ("tcp", "127.0.0.1") ]

let test_concurrent_first_calls_negotiate_once () =
  (* Eight threads race the fresh connection: exactly one carries the
     offer, the rest hold behind the gate, and nothing is misframed. *)
  with_pair ~server_codecs:[ P.hcx ] ~client_codecs:[ P.hcx ]
    (fun ~server ~client ->
      let target = Orb.export server (echo_skeleton ()) in
      let results = Array.make 8 "" in
      let threads =
        List.init 8 (fun i ->
            Thread.create
              (fun () ->
                results.(i) <-
                  invoke_string client target ~op:"echo" (string_of_int i))
              ())
      in
      List.iter Thread.join threads;
      Array.iteri
        (fun i got ->
          Alcotest.(check string) "racing call" (Printf.sprintf "echo:%d" i) got)
        results;
      check_stats "client" client ~nego:1 ~fallback:0;
      check_stats "server" server ~nego:1 ~fallback:0)

let test_oneway_does_not_offer () =
  (* Oneways cannot carry an offer (there is no reply to answer on);
     the first two-way call negotiates instead. *)
  with_pair ~server_codecs:[ P.hcx ] ~client_codecs:[ P.hcx ]
    (fun ~server ~client ->
      let target = Orb.export server (echo_skeleton ()) in
      (match
         Orb.invoke client target ~op:"noreply" ~oneway:true (fun e ->
             e.Wire.Codec.put_string "fire-and-forget")
       with
      | None -> ()
      | Some _ -> Alcotest.fail "oneway returned a decoder");
      check_stats "client after oneway" client ~nego:0 ~fallback:0;
      Alcotest.(check string) "two-way negotiates" "echo:x"
        (invoke_string client target ~op:"echo" "x");
      check_stats "client" client ~nego:1 ~fallback:0;
      ignore server)

let test_server_without_codecs_falls_back () =
  (* A negotiation-aware server with nothing to offer: the reply has no
     answer slot, the client counts a fallback and stays on base. *)
  with_pair ~server_codecs:[] ~client_codecs:[ P.hcx ] (fun ~server ~client ->
      let target = Orb.export server (echo_skeleton ()) in
      Alcotest.(check string) "call works on base" "echo:x"
        (invoke_string client target ~op:"echo" "x");
      Alcotest.(check string) "later calls too" "echo:y"
        (invoke_string client target ~op:"echo" "y");
      check_stats "client" client ~nego:0 ~fallback:1;
      check_stats "server" server ~nego:0 ~fallback:0)

let test_no_common_codec_falls_back () =
  with_pair ~server_codecs:[ Giop.protocol () ] ~client_codecs:[ P.hcx ]
    (fun ~server ~client ->
      let target = Orb.export server (echo_skeleton ()) in
      Alcotest.(check string) "call works on base" "echo:x"
        (invoke_string client target ~op:"echo" "x");
      check_stats "client" client ~nego:0 ~fallback:1;
      check_stats "server" server ~nego:0 ~fallback:1)

let test_version_skew_exact_vetoes () =
  (* Default predicate: hcx/1 offered, hcx/2 local — no agreement. *)
  with_pair ~server_codecs:[ hcx_v2 ] ~client_codecs:[ P.hcx ]
    (fun ~server ~client ->
      let target = Orb.export server (echo_skeleton ()) in
      Alcotest.(check string) "call works on base" "echo:x"
        (invoke_string client target ~op:"echo" "x");
      check_stats "client" client ~nego:0 ~fallback:1;
      check_stats "server" server ~nego:0 ~fallback:1)

let test_version_skew_compat_converges () =
  (* The same skew under a predicate that vouches for the (1, 2) pair:
     old client and new server converge — the server answers its own
     version, the client vets it with the same predicate and keeps
     speaking its local implementation. *)
  let vouch ~name ~offered ~local =
    name = "hcx" && abs (offered - local) <= 1
  in
  with_pair ~server_codecs:[ hcx_v2 ] ~server_compat:vouch
    ~client_codecs:[ P.hcx ] ~client_compat:vouch (fun ~server ~client ->
      let target = Orb.export server (echo_skeleton ()) in
      for i = 1 to 5 do
        Alcotest.(check string) "skewed call"
          (Printf.sprintf "echo:%d" i)
          (invoke_string client target ~op:"echo" (string_of_int i))
      done;
      check_stats "client" client ~nego:1 ~fallback:0;
      check_stats "server" server ~nego:1 ~fallback:0)

let test_deadline_era_server_resend () =
  (* A hand-rolled pre-negotiation server: it rejects the offer's
     forced-empty budget slot exactly as deadline-era peers do —
     recoverably, without dispatching — and the client re-sends the
     same request once without the offer. *)
  let proto = P.text in
  let listener = Orb.Transport.listen ~proto:"mem" ~host:"local" ~port:0 in
  let port = listener.Orb.Transport.bound_port in
  let saw_offer = ref false and saw_resend_clean = ref false in
  let server =
    Thread.create
      (fun () ->
        let chan = listener.Orb.Transport.accept () in
        let comm = Orb.Communicator.wrap proto chan in
        (match Orb.Communicator.recv comm with
        | P.Request r ->
            saw_offer := r.P.nego_offer <> "";
            Orb.Communicator.send comm
              (P.Reply
                 {
                   P.rep_id = r.P.req_id;
                   status =
                     P.Status_system_error
                       "malformed request: malformed deadline slot \"\"";
                   payload = "";
                   nego_answer = "";
                 })
        | _ -> Alcotest.fail "expected the offering request");
        (match Orb.Communicator.recv comm with
        | P.Request r ->
            saw_resend_clean := r.P.nego_offer = "" && r.P.budget_us = None;
            let e = proto.P.codec.Wire.Codec.encoder () in
            e.Wire.Codec.put_string "echo:hi";
            Orb.Communicator.send comm
              (P.Reply
                 {
                   P.rep_id = r.P.req_id;
                   status = P.Status_ok;
                   payload = e.Wire.Codec.finish ();
                   nego_answer = "";
                 })
        | _ -> Alcotest.fail "expected the offer-less re-send");
        Orb.Communicator.close comm)
      ()
  in
  let client = Orb.create ~transport:"mem" ~host:"local" ~codecs:[ P.hcx ] () in
  let target =
    Orb.Objref.make ~proto:"mem" ~host:"local" ~port ~oid:"x"
      ~type_id:echo_type
  in
  Fun.protect
    ~finally:(fun () ->
      Orb.shutdown client;
      listener.Orb.Transport.shutdown ())
    (fun () ->
      Alcotest.(check string) "call survives the old peer" "echo:hi"
        (invoke_string client target ~op:"echo" "hi");
      Thread.join server;
      Alcotest.(check bool) "first request offered" true !saw_offer;
      Alcotest.(check bool) "re-send was offer-less and budget-less" true
        !saw_resend_clean;
      check_stats "client" client ~nego:0 ~fallback:1)

(* ---------------- the evolution model as the predicate ---------------- *)

(* Three published versions of the payload schema: v2 adds an operation
   to v1 (benign, W310), v3 removes one (wire-breaking, V301). *)
let snapshot ops =
  let root = Est.Node.create ~name:"root" ~kind:"specification" in
  let iface = Est.Node.create ~name:"Echo" ~kind:"interface" in
  Est.Node.add_prop iface "scopedName" "Echo";
  Est.Node.add_prop iface "repoId" echo_type;
  List.iter
    (fun op ->
      let m = Est.Node.create ~name:op ~kind:"operation" in
      Est.Node.add_prop m "methodName" op;
      Est.Node.add_prop m "returnType" "string";
      Est.Node.add_child iface ~group:"methodList" m)
    ops;
  Est.Node.add_child root ~group:"interfaceList" iface;
  root

let snapshots = function
  | 1 -> Some (snapshot [ "echo" ])
  | 2 -> Some (snapshot [ "echo"; "add" ])
  | 3 -> Some (snapshot [ "add" ])
  | _ -> None

let evolution_compat = Analysis.Evolve.codec_compat ~snapshots

let test_evolution_verdict_as_predicate () =
  (* Additions are compatible in both directions; removals and unknown
     versions veto the pair. *)
  Alcotest.(check bool) "same version" true
    (evolution_compat ~name:"hcx" ~offered:1 ~local:1);
  Alcotest.(check bool) "benign addition (old offered)" true
    (evolution_compat ~name:"hcx" ~offered:1 ~local:2);
  Alcotest.(check bool) "benign addition (new offered)" true
    (evolution_compat ~name:"hcx" ~offered:2 ~local:1);
  Alcotest.(check bool) "removal breaks (2 vs 3)" false
    (evolution_compat ~name:"hcx" ~offered:3 ~local:2);
  Alcotest.(check bool) "removal breaks (1 vs 3)" false
    (evolution_compat ~name:"hcx" ~offered:1 ~local:3);
  Alcotest.(check bool) "unknown version vetoed" false
    (evolution_compat ~name:"hcx" ~offered:9 ~local:1)

let test_evolution_verdict_end_to_end () =
  (* Wire it into live ORBs: a v1 client against a v2 server converges
     on hcx (the diff is a benign addition); against a v3 server the
     V301 verdict vetoes the pair and both fall back. *)
  with_pair ~server_codecs:[ hcx_v2 ] ~server_compat:evolution_compat
    ~client_codecs:[ P.hcx ] ~client_compat:evolution_compat
    (fun ~server ~client ->
      let target = Orb.export server (echo_skeleton ()) in
      Alcotest.(check string) "benign skew converges" "echo:x"
        (invoke_string client target ~op:"echo" "x");
      check_stats "client" client ~nego:1 ~fallback:0;
      check_stats "server" server ~nego:1 ~fallback:0);
  let hcx_v3 =
    P.generic ~name:"hcx" ~version:3
      ~framing:(P.Varint_prefixed { magic = P.hcx_magic })
      Wire.Hcx_codec.codec
  in
  with_pair ~server_codecs:[ hcx_v3 ] ~server_compat:evolution_compat
    ~client_codecs:[ P.hcx ] ~client_compat:evolution_compat
    (fun ~server ~client ->
      let target = Orb.export server (echo_skeleton ()) in
      Alcotest.(check string) "breaking skew falls back" "echo:x"
        (invoke_string client target ~op:"echo" "x");
      check_stats "client" client ~nego:0 ~fallback:1;
      check_stats "server" server ~nego:0 ~fallback:1)

let () =
  Alcotest.run "nego"
    [
      ( "convergence",
        [
          Alcotest.test_case "both sides speak hcx" `Quick test_converge_on_hcx;
          Alcotest.test_case "concurrent first calls negotiate once" `Quick
            test_concurrent_first_calls_negotiate_once;
          Alcotest.test_case "oneway does not offer" `Quick
            test_oneway_does_not_offer;
        ] );
      ( "fallback",
        [
          Alcotest.test_case "server without codecs" `Quick
            test_server_without_codecs_falls_back;
          Alcotest.test_case "no common codec" `Quick
            test_no_common_codec_falls_back;
          Alcotest.test_case "version skew under exact" `Quick
            test_version_skew_exact_vetoes;
          Alcotest.test_case "deadline-era peer: reject + re-send" `Quick
            test_deadline_era_server_resend;
        ] );
      ( "compatibility",
        [
          Alcotest.test_case "version skew under a vouching predicate" `Quick
            test_version_skew_compat_converges;
          Alcotest.test_case "evolution verdict as predicate" `Quick
            test_evolution_verdict_as_predicate;
          Alcotest.test_case "evolution verdict end to end" `Quick
            test_evolution_verdict_end_to_end;
        ] );
    ]
