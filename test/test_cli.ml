(* End-to-end tests of the idlc command-line tool: spawn the real binary
   and check its outputs and exit codes. *)

(* Under `dune runtest` the cwd is _build/default/test; under a direct
   `dune exec` it is the project root. *)
let resolve path =
  if Sys.file_exists path then path
  else Filename.concat "_build/default" (String.sub path 3 (String.length path - 3))

let idlc = resolve "../bin/idlc.exe"
let a_idl = resolve "../examples/idl/A.idl"

let run args =
  let out = Filename.temp_file "idlc_out" ".txt" in
  let err = Filename.temp_file "idlc_err" ".txt" in
  let cmd =
    Printf.sprintf "%s %s > %s 2> %s" idlc args (Filename.quote out)
      (Filename.quote err)
  in
  let code = Sys.command cmd in
  let read path =
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  let stdout_s = read out and stderr_s = read err in
  Sys.remove out;
  Sys.remove err;
  (code, stdout_s, stderr_s)

let test_list_mappings () =
  let code, out, _ = run "--list-mappings" in
  Alcotest.(check int) "exit 0" 0 code;
  List.iter
    (fun name -> Tutil.check_contains ~what:"mapping listed" out name)
    [ "heidi-cpp"; "corba-cpp"; "java"; "tcl"; "ocaml" ]

let test_compile_to_stdout () =
  let code, out, _ = run (a_idl ^ " --mapping heidi-cpp") in
  Alcotest.(check int) "exit 0" 0 code;
  Tutil.check_contains ~what:"file banner" out "===== A.hh =====";
  Tutil.check_contains ~what:"fig3 class" out "class HdA : virtual public HdS"

let test_compile_to_directory () =
  let dir = Filename.temp_file "idlc_dir" "" in
  Sys.remove dir;
  let code, out, _ = run (Printf.sprintf "%s -m tcl -o %s" a_idl (Filename.quote dir)) in
  Alcotest.(check int) "exit 0" 0 code;
  Tutil.check_contains ~what:"wrote message" out "wrote";
  Alcotest.(check bool) "file exists" true (Sys.file_exists (Filename.concat dir "A.tcl"));
  Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
  Sys.rmdir dir

let test_dump_est () =
  let code, out, _ = run (a_idl ^ " --dump-est") in
  Alcotest.(check int) "exit 0" 0 code;
  Tutil.check_contains ~what:"fig8 shape" out "Ast::New(\"A\", \"Interface\"";
  let code, out, _ = run (a_idl ^ " --dump-est-text") in
  Alcotest.(check int) "exit 0" 0 code;
  Tutil.check_contains ~what:"machine form" out "node \"Root\""

let test_reformat () =
  let code, out, _ = run (a_idl ^ " --reformat") in
  Alcotest.(check int) "exit 0" 0 code;
  Tutil.check_contains ~what:"pretty printed" out "interface A : S {"

let test_custom_template () =
  let tmpl = Filename.temp_file "t" ".tmpl" in
  let oc = open_out tmpl in
  output_string oc "@foreach interfaceList\ninterface ${interfaceName}\n@end interfaceList\n";
  close_out oc;
  let code, out, _ = run (Printf.sprintf "%s --template %s" a_idl (Filename.quote tmpl)) in
  Sys.remove tmpl;
  Alcotest.(check int) "exit 0" 0 code;
  Tutil.check_contains ~what:"custom output" out "interface S\ninterface A"

let test_error_exit_codes () =
  let bad = Filename.temp_file "bad" ".idl" in
  let oc = open_out bad in
  output_string oc "interface I : Nope { };";
  close_out oc;
  let code, _, err = run bad in
  Sys.remove bad;
  Alcotest.(check int) "semantic error -> exit 1" 1 code;
  Tutil.check_contains ~what:"diagnostic on stderr" err "unresolved name";
  let code, _, err = run "--mapping nosuch this-file-does-not-exist.idl" in
  Alcotest.(check int) "usage error -> exit 2" 2 code;
  ignore err

let test_ir_workflow () =
  let dir = Filename.temp_file "ir" "" in
  Sys.remove dir;
  let code, _, _ = run (Printf.sprintf "%s --ir %s -m tcl" a_idl (Filename.quote dir)) in
  Alcotest.(check int) "store+generate" 0 code;
  let code, out, _ = run (Printf.sprintf "--ir %s --ir-list" (Filename.quote dir)) in
  Alcotest.(check int) "list" 0 code;
  Tutil.check_contains ~what:"unit listed" out "A";
  Tutil.check_contains ~what:"interface listed" out "IDL:Heidi/A:1.0";
  let code, out, _ =
    run (Printf.sprintf "--ir %s --from-ir A -m java" (Filename.quote dir))
  in
  Alcotest.(check int) "generate from IR" 0 code;
  Tutil.check_contains ~what:"java from IR" out "public interface A extends S";
  Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
  Sys.rmdir dir

let write_temp suffix content =
  let path = Filename.temp_file "idlc_cli" suffix in
  let oc = open_out path in
  output_string oc content;
  close_out oc;
  path

let test_compile_warnings_on_stderr () =
  (* Resolver warnings surface in every compile mode (not just lint). *)
  let idl = write_temp ".idl" "interface Fwd;\ninterface I { void f(in Fwd x); };" in
  let code, _, err = run (idl ^ " -m tcl") in
  Alcotest.(check int) "warnings do not fail the build" 0 code;
  Tutil.check_contains ~what:"W107 on stderr" err "warning[W107]";
  (* ... and --werror makes them fatal. *)
  let code, _, err = run (idl ^ " -m tcl --werror") in
  Alcotest.(check int) "--werror -> exit 1" 1 code;
  Tutil.check_contains ~what:"promoted to error" err "error[W107]";
  Sys.remove idl

let test_lint_exit_codes () =
  let bad = write_temp ".idl" "interface A {\n  void f(in Nope1 x);\n  void g(in Nope2 y);\n};" in
  let code, _, err = run ("lint " ^ bad) in
  Alcotest.(check int) "lint errors -> exit 1" 1 code;
  (* Error recovery: both independent errors in one run. *)
  Tutil.check_contains ~what:"first error" err "Nope1";
  Tutil.check_contains ~what:"second error" err "Nope2";
  Sys.remove bad;
  let clean = write_temp ".idl" "interface I { void f(); };" in
  let code, _, _ = run ("lint " ^ clean) in
  Alcotest.(check int) "clean -> exit 0" 0 code;
  Sys.remove clean;
  let code, _, _ = run "lint" in
  Alcotest.(check int) "no files -> usage error 2" 2 code

let test_lint_json_and_explain () =
  let warn = write_temp ".idl" "struct Unused { long x; };\ninterface I { void f(); };" in
  let code, out, _ = run ("lint --lint-json " ^ warn) in
  Alcotest.(check int) "warnings only -> exit 0" 0 code;
  Tutil.check_contains ~what:"json code" out "\"code\":\"W104\"";
  Sys.remove warn;
  let code, out, _ = run "lint --explain E010" in
  Alcotest.(check int) "explain -> 0" 0 code;
  Tutil.check_contains ~what:"explains the pragma" out "pragma";
  let code, out, _ = run "lint --explain" in
  Alcotest.(check int) "bare explain lists table" 0 code;
  Tutil.check_contains ~what:"table has T202" out "T202";
  let code, _, _ = run "lint --explain NOPE" in
  Alcotest.(check int) "unknown code -> usage error 2" 2 code

let () =
  Alcotest.run "cli"
    [
      ( "idlc",
        [
          Alcotest.test_case "--list-mappings" `Quick test_list_mappings;
          Alcotest.test_case "compile to stdout" `Quick test_compile_to_stdout;
          Alcotest.test_case "compile to directory" `Quick test_compile_to_directory;
          Alcotest.test_case "--dump-est" `Quick test_dump_est;
          Alcotest.test_case "--reformat" `Quick test_reformat;
          Alcotest.test_case "--template" `Quick test_custom_template;
          Alcotest.test_case "error exit codes" `Quick test_error_exit_codes;
          Alcotest.test_case "interface repository workflow" `Quick test_ir_workflow;
          Alcotest.test_case "compile warnings on stderr" `Quick
            test_compile_warnings_on_stderr;
          Alcotest.test_case "lint exit codes" `Quick test_lint_exit_codes;
          Alcotest.test_case "lint json and explain" `Quick
            test_lint_json_and_explain;
        ] );
    ]
