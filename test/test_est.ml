(* EST construction and serialization tests (paper Figs. 7-8).

   The defining property of the enhanced syntax tree: children are
   grouped by kind regardless of interleaving in the source, with source
   order preserved within each group. *)

module N = Est.Node

let est_of src = Est.Build.of_spec (Est.Resolve.spec (Idl.Parser.parse_string src))

let fig3_idl =
  {|module Heidi {
      interface S;
      enum Status {Start, Stop};
      typedef sequence<S> SSequence;
      interface S { void ping(); };
      interface A : S {
        void f(in A a);
        void g(incopy S s);
        void p(in long l = 0);
        void q(in Status s = Heidi::Start);
        readonly attribute Status button;
        void s(in boolean b = TRUE);
        void t(in SSequence s);
      };
    };|}

let find_interface root name =
  match
    List.find_opt (fun n -> N.name n = name) (N.group root "interfaceList")
  with
  | Some n -> n
  | None -> Alcotest.failf "interface %s not in EST" name

(* Fig. 7: the attribute interleaved between methods q and s lands in its
   own group; the methods stay contiguous and ordered. *)
let test_grouping () =
  let root = est_of fig3_idl in
  let a = find_interface root "A" in
  Alcotest.(check (list string))
    "methods in source order" [ "f"; "g"; "p"; "q"; "s"; "t" ]
    (List.map N.name (N.group a "methodList"));
  Alcotest.(check (list string))
    "attributes grouped separately" [ "button" ]
    (List.map N.name (N.group a "attributeList"))

let test_root_flattening () =
  (* Fig. 9 iterates interfaceList at the root: module members must be
     visible there. *)
  let root = est_of fig3_idl in
  Alcotest.(check (list string))
    "flattened interfaces" [ "S"; "A" ]
    (List.map N.name (N.group root "interfaceList"));
  Alcotest.(check (list string))
    "modules" [ "Heidi" ]
    (List.map N.name (N.group root "moduleList"))

let test_node_sharing () =
  (* The same entity node is aliased between the module's local group and
     the root's flattened group. *)
  let root = est_of fig3_idl in
  let via_root = find_interface root "A" in
  let heidi = List.hd (N.group root "moduleList") in
  let via_module =
    List.find (fun n -> N.name n = "A") (N.group heidi "interfaceList")
  in
  Alcotest.(check bool) "physically shared" true (via_root == via_module)

let test_fig8_properties () =
  let root = est_of fig3_idl in
  let a = find_interface root "A" in
  Alcotest.(check (option string)) "repoId" (Some "IDL:Heidi/A:1.0") (N.prop a "repoId");
  Alcotest.(check (option string)) "Parent (Fig. 8)" (Some "Heidi_S") (N.prop a "Parent");
  Alcotest.(check (option string)) "flatName" (Some "Heidi_A") (N.prop a "flatName");
  let f = List.hd (N.group a "methodList") in
  Alcotest.(check (option string)) "returnType" (Some "void") (N.prop f "returnType");
  let param = List.hd (N.group f "paramList") in
  Alcotest.(check (option string)) "param type" (Some "objref(Heidi_A)") (N.prop param "type");
  Alcotest.(check (option string)) "param typeName (Fig. 8)" (Some "Heidi_A")
    (N.prop param "typeName");
  Alcotest.(check (option string)) "param mode" (Some "in") (N.prop param "paramMode");
  Alcotest.(check (option string)) "no default" (Some "") (N.prop param "defaultParam");
  let p_op = List.nth (N.group a "methodList") 2 in
  let p_param = List.hd (N.group p_op "paramList") in
  Alcotest.(check (option string)) "default value" (Some "int:0")
    (N.prop p_param "defaultParam");
  let g_op = List.nth (N.group a "methodList") 1 in
  let g_param = List.hd (N.group g_op "paramList") in
  Alcotest.(check (option string)) "incopy mode" (Some "incopy")
    (N.prop g_param "paramMode")

let test_alias_props () =
  let root = est_of fig3_idl in
  let heidi = List.hd (N.group root "moduleList") in
  let alias = List.hd (N.group heidi "aliasList") in
  Alcotest.(check (option string)) "type" (Some "sequence(objref(Heidi_S))")
    (N.prop alias "type");
  Alcotest.(check (option string)) "typeKind" (Some "sequence") (N.prop alias "typeKind");
  Alcotest.(check (option string)) "seqElemType" (Some "objref(Heidi_S)")
    (N.prop alias "seqElemType");
  Alcotest.(check (option string)) "IsVariable equivalent" (Some "true")
    (N.prop alias "isVariable")

let test_all_method_list () =
  let root = est_of fig3_idl in
  let a = find_interface root "A" in
  Alcotest.(check (list string))
    "allMethodList: inherited first" [ "ping"; "f"; "g"; "p"; "q"; "s"; "t" ]
    (List.map N.name (N.group a "allMethodList"));
  Alcotest.(check (list string))
    "inheritedList" [ "S" ]
    (List.map N.name (N.group a "inheritedList"))

let test_enum_members () =
  let root = est_of fig3_idl in
  let heidi = List.hd (N.group root "moduleList") in
  let status = List.hd (N.group heidi "enumList") in
  Alcotest.(check (list string)) "members" [ "Start"; "Stop" ]
    (List.map N.name (N.group status "memberList"));
  Alcotest.(check (option string)) "index" (Some "1")
    (N.prop (List.nth (N.group status "memberList") 1) "memberIndex")

(* ---------------- node primitives ---------------- *)

let test_node_ops () =
  let n = N.create ~name:"x" ~kind:"K" in
  N.add_prop n "a" "1";
  N.add_prop n "b" "2";
  N.add_prop n "a" "3" (* replace keeps position *);
  Alcotest.(check (list (pair string string))) "props" [ ("a", "3"); ("b", "2") ] (N.props n);
  let c1 = N.create ~name:"c1" ~kind:"C" and c2 = N.create ~name:"c2" ~kind:"C" in
  N.add_child n ~group:"g" c1;
  N.add_child n ~group:"g" c2;
  Alcotest.(check int) "group size" 2 (List.length (N.group n "g"));
  Alcotest.(check int) "tree size" 3 (N.size n);
  Alcotest.(check bool) "missing group" true (N.group n "nope" = [])

(* ---------------- dumps ---------------- *)

let test_perl_dump_shape () =
  let root = est_of fig3_idl in
  let perl = Est.Dump.to_perl root in
  List.iter
    (fun needle ->
      if
        not
          (Tutil.contains perl needle)
      then Alcotest.failf "perl dump is missing %S" needle)
    [
      "use Ast;";
      "Ast::New(\"Heidi\", \"Module\"";
      "Ast::New(\"A\", \"Interface\"";
      "AddProp(\"Parent\", \"Heidi_S\")";
      "AddProp(\"typeName\", \"Heidi_A\")";
      "# IDL:Heidi/A:1.0";
    ]

let test_text_roundtrip () =
  let root = est_of fig3_idl in
  let text = Est.Dump.to_text root in
  let back = Est.Dump.of_text text in
  Alcotest.(check bool) "equal" true (N.equal root back);
  (* Values with every awkward character survive. *)
  let n = N.create ~name:"weird \"name\"\n" ~kind:"K" in
  N.add_prop n "k ey" "v\\al\"ue\nwith\tstuff\001";
  let back2 = Est.Dump.of_text (Est.Dump.to_text n) in
  Alcotest.(check bool) "weird chars" true (N.equal n back2)

let test_text_errors () =
  List.iter
    (fun s ->
      match Est.Dump.of_text s with
      | exception Failure _ -> ()
      | _ -> Alcotest.failf "expected of_text failure for %S" s)
    [
      "";
      "node \"K\"";
      "node \"K\" \"n\" prop \"a\"";
      "node \"K\" \"n\" group \"g\" endnode";
      "node \"K\" \"n\" endnode trailing";
    ]

let () =
  Alcotest.run "est"
    [
      ( "grouping",
        [
          Alcotest.test_case "kind grouping (Fig. 7)" `Quick test_grouping;
          Alcotest.test_case "root flattening" `Quick test_root_flattening;
          Alcotest.test_case "node sharing" `Quick test_node_sharing;
          Alcotest.test_case "Fig. 8 properties" `Quick test_fig8_properties;
          Alcotest.test_case "alias/sequence properties" `Quick test_alias_props;
          Alcotest.test_case "allMethodList" `Quick test_all_method_list;
          Alcotest.test_case "enum members" `Quick test_enum_members;
        ] );
      ("node", [ Alcotest.test_case "primitives" `Quick test_node_ops ]);
      ( "dump",
        [
          Alcotest.test_case "perl rendering (Fig. 8)" `Quick test_perl_dump_shape;
          Alcotest.test_case "text round-trip" `Quick test_text_roundtrip;
          Alcotest.test_case "malformed text" `Quick test_text_errors;
        ] );
    ]
