(* Dispatch strategy tests (paper Section 2's optimization discussion):
   the three strategies must be observationally identical, differing only
   in cost (measured in bench §E1). *)

let strategies = Orb.Dispatch.all_strategies

let handlers_of_names names = List.map (fun n -> (n, "handler:" ^ n)) names

let test_basic_lookup () =
  let names = [ "f"; "g"; "set_levels"; "a_very_long_operation_name" ] in
  List.iter
    (fun strat ->
      let table = Orb.Dispatch.compile strat (handlers_of_names names) in
      List.iter
        (fun n ->
          Alcotest.(check (option string))
            (Orb.Dispatch.strategy_to_string strat ^ ":" ^ n)
            (Some ("handler:" ^ n))
            (Orb.Dispatch.lookup table n))
        names;
      Alcotest.(check (option string)) "miss" None (Orb.Dispatch.lookup table "nope");
      Alcotest.(check (option string)) "empty string" None (Orb.Dispatch.lookup table "");
      Alcotest.(check int) "size" 4 (Orb.Dispatch.size table))
    strategies

let test_first_binding_wins () =
  (* Duplicate names behave like a comparison chain: first wins. *)
  List.iter
    (fun strat ->
      let table = Orb.Dispatch.compile strat [ ("op", "first"); ("op", "second") ] in
      Alcotest.(check (option string)) "dup" (Some "first")
        (Orb.Dispatch.lookup table "op");
      Alcotest.(check int) "dedup size" 1 (Orb.Dispatch.size table))
    strategies

let test_empty_table () =
  List.iter
    (fun strat ->
      let table = Orb.Dispatch.compile strat [] in
      Alcotest.(check (option string)) "empty" None (Orb.Dispatch.lookup table "x"))
    strategies

let test_strategy_names () =
  List.iter
    (fun strat ->
      let name = Orb.Dispatch.strategy_to_string strat in
      Alcotest.(check (option string)) name (Some name)
        (Option.map Orb.Dispatch.strategy_to_string
           (Orb.Dispatch.strategy_of_string name)))
    strategies;
  Alcotest.(check bool) "unknown" true (Orb.Dispatch.strategy_of_string "quantum" = None)

(* Property: all strategies agree with an association list oracle. *)
let gen_names =
  QCheck.Gen.(
    list_size (int_range 0 40)
      (let* base = oneofl [ "op"; "get"; "set"; "dispatch"; "x" ] in
       let* n = int_bound 30 in
       return (Printf.sprintf "%s_%d" base n)))

let agreement_prop =
  QCheck.Test.make ~count:300 ~name:"strategies agree with assoc-list oracle"
    (QCheck.make
       ~print:(fun (names, probe) -> String.concat "," names ^ " ? " ^ probe)
       QCheck.Gen.(
         let* names = gen_names in
         let* probe =
           oneof
             [ oneofl [ "op_0"; "get_1"; "missing"; "" ];
               (match names with
               | [] -> return "none"
               | _ -> oneofl names) ]
         in
         return (names, probe)))
    (fun (names, probe) ->
      let handlers = handlers_of_names names in
      let oracle = List.assoc_opt probe handlers in
      List.for_all
        (fun strat ->
          Orb.Dispatch.lookup (Orb.Dispatch.compile strat handlers) probe = oracle)
        strategies)

(* Skeleton-level dispatch: delegation up the hierarchy in order
   (Section 3.1: "dispatching is delegated to each of the corresponding
   skeleton super-classes in order"). *)
let skel type_id names ~parents =
  Orb.Skeleton.create ~type_id ~parents
    (List.map (fun n -> (n, fun _ (_ : Wire.Codec.encoder) -> ignore n)) names)

let test_skeleton_delegation () =
  let s = skel "IDL:S:1.0" [ "ping" ] ~parents:[] in
  let t = skel "IDL:T:1.0" [ "tick" ] ~parents:[] in
  let a = skel "IDL:A:1.0" [ "f" ] ~parents:[ s; t ] in
  Alcotest.(check bool) "local" true (Option.is_some (Orb.Skeleton.dispatch a "f"));
  Alcotest.(check bool) "first parent" true (Option.is_some (Orb.Skeleton.dispatch a "ping"));
  Alcotest.(check bool) "second parent" true (Option.is_some (Orb.Skeleton.dispatch a "tick"));
  Alcotest.(check bool) "miss" true (Option.is_none (Orb.Skeleton.dispatch a "nope"));
  Alcotest.(check (list string)) "operation names, local first"
    [ "f"; "ping"; "tick" ]
    (Orb.Skeleton.operation_names a)

let test_skeleton_diamond () =
  let base = skel "IDL:Base:1.0" [ "shared" ] ~parents:[] in
  let left = skel "IDL:L:1.0" [ "l" ] ~parents:[ base ] in
  let right = skel "IDL:R:1.0" [ "r" ] ~parents:[ base ] in
  let bottom = skel "IDL:B:1.0" [ "b" ] ~parents:[ left; right ] in
  Alcotest.(check bool) "diamond reachable" true
    (Option.is_some (Orb.Skeleton.dispatch bottom "shared"));
  Alcotest.(check (list string)) "names deduplicated"
    [ "b"; "l"; "shared"; "r" ]
    (Orb.Skeleton.operation_names bottom)

let test_local_shadows_parent () =
  let parent =
    Orb.Skeleton.create ~type_id:"IDL:P:1.0"
      [ ("op", fun _ (r : Wire.Codec.encoder) -> r.Wire.Codec.put_string "parent") ]
  in
  let child =
    Orb.Skeleton.create ~type_id:"IDL:C:1.0" ~parents:[ parent ]
      [ ("op", fun _ (r : Wire.Codec.encoder) -> r.Wire.Codec.put_string "child") ]
  in
  let codec = Wire.Text_codec.codec in
  let e = codec.Wire.Codec.encoder () in
  (match Orb.Skeleton.dispatch child "op" with
  | Some h -> h (codec.Wire.Codec.decoder "") e
  | None -> Alcotest.fail "dispatch failed");
  let d = codec.Wire.Codec.decoder (e.Wire.Codec.finish ()) in
  Alcotest.(check string) "local wins" "child" (d.Wire.Codec.get_string ())

let () =
  Alcotest.run "dispatch"
    [
      ( "strategies",
        [
          Alcotest.test_case "basic lookup" `Quick test_basic_lookup;
          Alcotest.test_case "first binding wins" `Quick test_first_binding_wins;
          Alcotest.test_case "empty table" `Quick test_empty_table;
          Alcotest.test_case "strategy names" `Quick test_strategy_names;
          QCheck_alcotest.to_alcotest agreement_prop;
        ] );
      ( "skeleton delegation",
        [
          Alcotest.test_case "delegation order" `Quick test_skeleton_delegation;
          Alcotest.test_case "diamond inheritance" `Quick test_skeleton_diamond;
          Alcotest.test_case "local shadows parent" `Quick test_local_shadows_parent;
        ] );
    ]
