(* Semantic analysis tests: scoping, inheritance, constants, checks. *)

module S = Est.Sem
module C = Est.Ctype
module V = Est.Value

let analyze src = Est.Resolve.spec (Idl.Parser.parse_string src)

let expect_error name src =
  match analyze src with
  | exception Idl.Diag.Idl_error _ -> ()
  | _ -> Alcotest.failf "%s: expected a semantic error" name

let find_iface spec qn =
  match S.find_interface spec qn with
  | Some i -> i
  | None -> Alcotest.failf "interface %s not found" (String.concat "::" qn)

(* ---------------- resolution ---------------- *)

let test_repo_ids () =
  let spec = analyze "module Heidi { interface A { void f(); }; };" in
  let i = find_iface spec [ "Heidi"; "A" ] in
  Alcotest.(check string) "repo id" "IDL:Heidi/A:1.0" i.S.i_repo_id

let test_pragma_prefix () =
  (* #pragma prefix scopes the repository IDs of what follows. *)
  let spec =
    analyze
      {|interface Before { void f(); };
        #pragma prefix "nec.com"
        module Heidi {
          interface A { void g(); };
        };
        interface After { void h(); };|}
  in
  Alcotest.(check string) "before" "IDL:Before:1.0"
    (find_iface spec [ "Before" ]).S.i_repo_id;
  Alcotest.(check string) "inside module" "IDL:nec.com/Heidi/A:1.0"
    (find_iface spec [ "Heidi"; "A" ]).S.i_repo_id;
  Alcotest.(check string) "after" "IDL:nec.com/After:1.0"
    (find_iface spec [ "After" ]).S.i_repo_id

let test_pragma_prefix_scoped_to_module () =
  (* A pragma inside a module does not escape it. *)
  let spec =
    analyze
      {|module M {
          #pragma prefix "inner.org"
          interface I { void f(); };
        };
        interface Out { void g(); };|}
  in
  Alcotest.(check string) "inner" "IDL:inner.org/M/I:1.0"
    (find_iface spec [ "M"; "I" ]).S.i_repo_id;
  Alcotest.(check string) "outer unaffected" "IDL:Out:1.0"
    (find_iface spec [ "Out" ]).S.i_repo_id

let test_scoped_lookup () =
  (* Name resolution: current scope, then enclosing scopes. *)
  let spec =
    analyze
      {|module M {
          enum E { a, b };
          module N {
            interface I { void f(in E e); };
          };
        };|}
  in
  let i = find_iface spec [ "M"; "N"; "I" ] in
  match (List.hd i.S.i_ops).S.op_params with
  | [ { S.p_type = C.Enum "M_E"; _ } ] -> ()
  | _ -> Alcotest.fail "E did not resolve to M::E"

let test_absolute_names () =
  let spec =
    analyze
      {|enum E { x };
        module M {
          enum E { y };
          interface I { void f(in ::E a, in E b); };
        };|}
  in
  let i = find_iface spec [ "M"; "I" ] in
  match (List.hd i.S.i_ops).S.op_params with
  | [ { S.p_type = C.Enum "E"; _ }; { S.p_type = C.Enum "M_E"; _ } ] -> ()
  | _ -> Alcotest.fail "absolute / relative names resolved wrongly"

let test_module_reopening () =
  let spec =
    analyze
      {|module M { enum E { a }; };
        module M { interface I { void f(in E e); }; };|}
  in
  ignore (find_iface spec [ "M"; "I" ])

let test_inherited_scope_lookup () =
  (* Names from inherited interfaces are visible in the derived body. *)
  let spec =
    analyze
      {|interface Base { typedef long Money; };
        interface Derived : Base { void pay(in Money amount); };|}
  in
  let i = find_iface spec [ "Derived" ] in
  match (List.hd i.S.i_ops).S.op_params with
  | [ { S.p_type = C.Alias ("Base_Money", C.Long); _ } ] -> ()
  | _ -> Alcotest.fail "inherited typedef not visible"

let test_forward_interface_as_type () =
  let spec =
    analyze
      {|module H {
          interface S;
          typedef sequence<S> SSeq;
          interface S { void ping(); };
        };|}
  in
  match S.find spec [ "H"; "SSeq" ] with
  | Some (S.E_alias { a_target = C.Sequence (C.Objref "H_S", None); _ }) -> ()
  | _ -> Alcotest.fail "forward interface did not resolve in sequence"

let test_inheritance_closure () =
  let spec =
    analyze
      {|interface A { void fa(); };
        interface B : A { void fb(); };
        interface C : A { void fc(); };
        interface D : B, C { void fd(); };|}
  in
  let d = find_iface spec [ "D" ] in
  let ancestors = S.ancestors spec d in
  Alcotest.(check (list string))
    "ancestors (depth-first, deduplicated)" [ "A"; "B"; "C" ]
    (List.map (fun (i : S.interface) -> String.concat "::" i.S.i_qname) ancestors);
  Alcotest.(check (list string))
    "all operations, base first" [ "fa"; "fb"; "fc"; "fd" ]
    (List.map (fun (o : S.operation) -> o.S.op_name) (S.all_operations spec d))

let test_typedef_chains () =
  let spec =
    analyze
      {|typedef long T1;
        typedef T1 T2;
        typedef T2 T3;|}
  in
  match S.find spec [ "T3" ] with
  | Some (S.E_alias { a_target = C.Alias ("T2", C.Alias ("T1", C.Long)); _ }) -> ()
  | _ -> Alcotest.fail "typedef chain broken"

(* ---------------- constants ---------------- *)

let const_value spec name =
  match S.find spec [ name ] with
  | Some (S.E_const c) -> c.S.c_value
  | _ -> Alcotest.failf "constant %s not found" name

let test_const_arith () =
  let spec =
    analyze
      {|const long A = 2 + 3 * 4;
        const long B = (2 + 3) * 4;
        const long C = 1 << 10;
        const long D = 0xFF & 0x0F;
        const long E = 7 % 3;
        const long F = -5;
        const long G = ~0 & 0xFF;
        const double H = 1 / 2.0;
        const long I2 = A + B;|}
  in
  let check name want =
    Alcotest.(check string) name (V.to_string want) (V.to_string (const_value spec name))
  in
  check "A" (V.V_int 14L);
  check "B" (V.V_int 20L);
  check "C" (V.V_int 1024L);
  check "D" (V.V_int 15L);
  check "E" (V.V_int 1L);
  check "F" (V.V_int (-5L));
  check "G" (V.V_int 255L);
  check "H" (V.V_float 0.5);
  check "I2" (V.V_int 34L)

let test_const_enum_and_refs () =
  let spec =
    analyze
      {|module M {
          enum Color { red, green };
          const Color FAV = green;
          const long BASE = 10;
          const long DERIVED = BASE * 2;
        };|}
  in
  (match S.find spec [ "M"; "FAV" ] with
  | Some (S.E_const { c_value = V.V_enum ("M_Color", "green"); _ }) -> ()
  | _ -> Alcotest.fail "enum constant");
  match S.find spec [ "M"; "DERIVED" ] with
  | Some (S.E_const { c_value = V.V_int 20L; _ }) -> ()
  | _ -> Alcotest.fail "constant reference"

let test_default_param_values () =
  let spec =
    analyze
      {|module H {
          enum Status { Start, Stop };
          interface A {
            void p(in long l = 0);
            void q(in Status s = H::Start);
            void r(in boolean b = TRUE);
            void s(in string msg = "hi");
          };
        };|}
  in
  let i = find_iface spec [ "H"; "A" ] in
  let defaults =
    List.map
      (fun (o : S.operation) ->
        match (List.hd o.S.op_params).S.p_default with
        | Some v -> V.to_string v
        | None -> "<none>")
      i.S.i_ops
  in
  Alcotest.(check (list string)) "defaults"
    [ "int:0"; "enum:H_Status:Start"; "bool:true"; "string:hi" ]
    defaults

(* ---------------- error checks ---------------- *)

let test_errors () =
  expect_error "unresolved name" "interface I { void f(in Nope x); };";
  expect_error "duplicate definition" "enum E { a }; enum E { b };";
  expect_error "duplicate enum member in scope" "enum E { a }; enum F { a };";
  expect_error "inherit from non-interface" "enum E { a }; interface I : E { };";
  expect_error "inherit from undefined forward"
    "interface F; interface I : F { };";
  expect_error "inheritance cycle handled"
    "interface A : B { }; interface B : A { };";
  expect_error "duplicate op" "interface I { void f(); void f(in long x); };";
  expect_error "redefine inherited op"
    "interface A { void f(); }; interface B : A { void f(); };";
  expect_error "raises non-exception"
    "enum E { a }; interface I { void f() raises (E); };";
  expect_error "const range" "const short K = 70000;";
  expect_error "const type mismatch" "const long K = \"hi\";";
  expect_error "const div by zero" "const long K = 1 / 0;";
  expect_error "bad shift" "const long K = 1 << 64;";
  expect_error "default type mismatch"
    "interface I { void f(in long x = \"s\"); };";
  expect_error "default enum mismatch"
    "enum E { a }; enum F { b }; interface I { void f(in E x = b); };";
  expect_error "oneway out param already in parser" "interface I { oneway void f(out long x); };";
  expect_error "union bad discriminator"
    "union U switch (float) { case 1: long a; };";
  expect_error "union duplicate label"
    "union U switch (long) { case 1: long a; case 1: long b; };";
  expect_error "union two defaults"
    "union U switch (long) { default: long a; default: long b; };";
  expect_error "void struct member" "struct S { void v; };";
  expect_error "typedef void" "typedef void T;";
  expect_error "string bound overflow in const" "const string<2> K = \"abc\";"

let test_is_variable () =
  let spec =
    analyze
      {|struct Fixed { long a; double b; };
        struct Var { string s; };
        struct Nested { Fixed f; Var v; };|}
  in
  Alcotest.(check bool) "fixed" false (S.is_variable spec (C.Struct "Fixed"));
  Alcotest.(check bool) "var" true (S.is_variable spec (C.Struct "Var"));
  Alcotest.(check bool) "nested" true (S.is_variable spec (C.Struct "Nested"));
  Alcotest.(check bool) "long" false (S.is_variable spec C.Long);
  Alcotest.(check bool) "string" true (S.is_variable spec (C.String None))

let test_warnings_for_dangling_forward () =
  let spec = analyze "interface Never;" in
  Alcotest.(check bool) "warned" true (spec.S.warnings <> [])

let () =
  Alcotest.run "resolve"
    [
      ( "resolution",
        [
          Alcotest.test_case "repository ids" `Quick test_repo_ids;
          Alcotest.test_case "#pragma prefix" `Quick test_pragma_prefix;
          Alcotest.test_case "#pragma prefix module-scoped" `Quick
            test_pragma_prefix_scoped_to_module;
          Alcotest.test_case "scoped lookup" `Quick test_scoped_lookup;
          Alcotest.test_case "absolute names" `Quick test_absolute_names;
          Alcotest.test_case "module reopening" `Quick test_module_reopening;
          Alcotest.test_case "inherited scope lookup" `Quick test_inherited_scope_lookup;
          Alcotest.test_case "forward interface as type" `Quick test_forward_interface_as_type;
          Alcotest.test_case "inheritance closure" `Quick test_inheritance_closure;
          Alcotest.test_case "typedef chains" `Quick test_typedef_chains;
        ] );
      ( "constants",
        [
          Alcotest.test_case "arithmetic" `Quick test_const_arith;
          Alcotest.test_case "enum and const refs" `Quick test_const_enum_and_refs;
          Alcotest.test_case "default parameter values" `Quick test_default_param_values;
        ] );
      ( "checks",
        [
          Alcotest.test_case "semantic errors" `Quick test_errors;
          Alcotest.test_case "variable-length computation" `Quick test_is_variable;
          Alcotest.test_case "dangling forward warns" `Quick test_warnings_for_dangling_forward;
        ] );
    ]
