(* Fault-tolerance tests, driven by the deterministic fault-injection
   transport ("faulty:mem"): deadlines, the retry policy, the circuit
   breaker, and the error taxonomy. Every scenario runs under a fixed
   plan (scripted or seeded), so failures reproduce bit-for-bit. *)

module F = Orb.Transport.Fault

let echo_type = "IDL:Test/Echo:1.0"

let echo_skeleton () =
  Orb.Skeleton.create ~type_id:echo_type
    [
      ("echo", fun args results ->
          results.Wire.Codec.put_string ("echo:" ^ args.Wire.Codec.get_string ()));
    ]

(* Channel-side helpers: the client's channel talks TO the server, so
   its peer description reads "mem:<port>(server)"; the server-side
   accepted channel reads "mem:<port>(client)". *)
let toward_server peer = Tutil.contains peer "(server)"
let toward_client peer = Tutil.contains peer "(client)"

let no_jitter =
  { Orb.Retry.default with base_delay = 0.001; max_delay = 0.005; jitter = 0. }

(* A server on the faulty-mem transport plus a client configured by the
   caller; the plan is always cleared afterwards. *)
let with_faulty_server ?call_timeout ?retry ?retry_budget ?breaker f =
  let server = Orb.create ~transport:"faulty:mem" ~host:"local" () in
  Orb.start server;
  let target = Orb.export server (echo_skeleton ()) in
  let client =
    Orb.create ~transport:"mem" ~host:"local" ?call_timeout ?retry
      ?retry_budget ?breaker ()
  in
  Fun.protect
    ~finally:(fun () ->
      F.clear ();
      Orb.shutdown client;
      Orb.shutdown server)
    (fun () -> f ~server ~client ~target)

let invoke_echo client target s =
  match Orb.invoke client target ~op:"echo" (fun e -> e.Wire.Codec.put_string s) with
  | Some d -> d.Wire.Codec.get_string ()
  | None -> Alcotest.fail "expected a reply"

(* ---------------- deadlines ---------------- *)

let test_timeout_on_stalled_read () =
  (* Acceptance: a call against a read-stalling endpoint returns
     Transport.Timeout within the configured deadline (+-100ms), and
     the deadline miss is never retried. *)
  with_faulty_server ~call_timeout:0.3 ~retry:no_jitter
    (fun ~server:_ ~client ~target ->
      F.set_plan (fun { F.op; peer; _ } ->
          match op with
          | `Read when toward_server peer -> Some F.Stall_read
          | _ -> None);
      let t0 = Unix.gettimeofday () in
      (match invoke_echo client target "never" with
      | exception Orb.Transport.Timeout _ -> ()
      | exception e ->
          Alcotest.failf "expected Timeout, got %s" (Printexc.to_string e)
      | r -> Alcotest.failf "expected Timeout, got reply %S" r);
      let elapsed = Unix.gettimeofday () -. t0 in
      Alcotest.(check bool)
        (Printf.sprintf "deadline honoured (elapsed %.3fs)" elapsed)
        true
        (elapsed >= 0.25 && elapsed <= 0.6);
      let st = Orb.stats client in
      Alcotest.(check int) "timeout counted" 1 st.Orb.timeouts;
      Alcotest.(check int) "deadline miss not retried" 0 st.Orb.retries)

let test_per_call_timeout_overrides () =
  (* No ORB default, per-call timeout only; and a successful call is
     unaffected by the deadline machinery. *)
  with_faulty_server ~retry:no_jitter (fun ~server:_ ~client ~target ->
      Alcotest.(check string) "clean call" "echo:ok" (invoke_echo client target "ok");
      F.set_plan (fun { F.op; peer; _ } ->
          match op with
          | `Read when toward_server peer -> Some F.Stall_read
          | _ -> None);
      match
        Orb.invoke client target ~op:"echo" ~timeout:0.2 (fun e ->
            e.Wire.Codec.put_string "x")
      with
      | exception Orb.Transport.Timeout _ -> ()
      | _ -> Alcotest.fail "expected Timeout from per-call deadline")

(* ---------------- retries ---------------- *)

let test_retry_refused_connects () =
  with_faulty_server ~retry:{ no_jitter with max_attempts = 3 }
    (fun ~server:_ ~client ~target ->
      F.set_plan (fun { F.op; nth; _ } ->
          match op with
          | `Connect when nth < 2 -> Some F.Refuse_connect
          | _ -> None);
      Alcotest.(check string) "third attempt lands" "echo:hi"
        (invoke_echo client target "hi");
      let st = Orb.stats client in
      Alcotest.(check int) "two retries recorded" 2 st.Orb.retries;
      Alcotest.(check int) "one connection in the cache" 1 st.Orb.opened;
      Alcotest.(check (list (pair string int))) "injection ledger"
        [ ("refuse_connect", 2) ] (F.injected ()))

let test_retries_exhausted () =
  with_faulty_server ~retry:{ no_jitter with max_attempts = 3 }
    (fun ~server:_ ~client ~target ->
      F.set_plan (fun { F.op; _ } ->
          match op with `Connect -> Some F.Refuse_connect | _ -> None);
      (match invoke_echo client target "x" with
      | exception Orb.Transport.Transport_error _ -> ()
      | _ -> Alcotest.fail "expected Transport_error");
      Alcotest.(check int) "all attempts burned" 2 (Orb.stats client).Orb.retries;
      (* The endpoint entry must not be poisoned: once the fault plan
         lifts, the same client recovers immediately. *)
      F.clear ();
      Alcotest.(check string) "recovers after plan lifts" "echo:y"
        (invoke_echo client target "y"))

let test_truncated_reply_not_retried () =
  (* The reply dies mid-frame AFTER the request went out on a fresh
     connection: retrying could dispatch the request twice, so the
     failure must surface. *)
  with_faulty_server ~retry:{ no_jitter with max_attempts = 5 }
    (fun ~server:_ ~client ~target ->
      F.set_plan (fun { F.op; peer; _ } ->
          match op with
          | `Write when toward_client peer -> Some (F.Truncate_write 3)
          | _ -> None);
      (match invoke_echo client target "x" with
      | exception Orb.Transport.Transport_error _ -> ()
      | r -> Alcotest.failf "expected Transport_error, got %S" r);
      Alcotest.(check int) "no duplicate dispatch" 0 (Orb.stats client).Orb.retries;
      F.clear ();
      Alcotest.(check string) "fresh connection recovers" "echo:z"
        (invoke_echo client target "z");
      Alcotest.(check int) "reopened once" 2 (Orb.stats client).Orb.opened)

let test_corrupted_reply_is_protocol_error () =
  (* Byte 0 of the reply body is the message tag; flipping it must
     surface as Protocol_error (permanent — not retried). *)
  with_faulty_server ~retry:{ no_jitter with max_attempts = 5 }
    (fun ~server:_ ~client ~target ->
      F.set_plan (fun { F.op; peer; _ } ->
          match op with
          | `Write when toward_client peer -> Some (F.Corrupt_write 0)
          | _ -> None);
      (match invoke_echo client target "x" with
      | exception Orb.Protocol.Protocol_error _ -> ()
      | exception e ->
          Alcotest.failf "expected Protocol_error, got %s" (Printexc.to_string e)
      | r -> Alcotest.failf "expected Protocol_error, got %S" r);
      Alcotest.(check int) "corruption never retried" 0
        (Orb.stats client).Orb.retries)

let test_delayed_write_slows_but_succeeds () =
  with_faulty_server ~retry:no_jitter (fun ~server:_ ~client ~target ->
      F.set_plan (fun { F.op; nth; peer } ->
          match op with
          | `Write when nth = 0 && toward_server peer -> Some (F.Delay_write 0.08)
          | _ -> None);
      let t0 = Unix.gettimeofday () in
      Alcotest.(check string) "delayed call completes" "echo:slow"
        (invoke_echo client target "slow");
      Alcotest.(check bool) "delay was injected" true
        (Unix.gettimeofday () -. t0 >= 0.07);
      Alcotest.(check (list (pair string int))) "ledger" [ ("delay_write", 1) ]
        (F.injected ()))

(* ---------------- circuit breaker ---------------- *)

let breaker_cfg =
  { Orb.Breaker.failure_threshold = 3; reset_timeout = 0.2 }

let test_breaker_trips_and_recovers () =
  (* Acceptance: after the failure threshold the breaker fast-fails in
     <1ms without touching the network, until a half-open probe
     succeeds. *)
  with_faulty_server ~retry:Orb.Retry.none ~breaker:breaker_cfg
    (fun ~server:_ ~client ~target ->
      F.set_plan (fun { F.op; _ } ->
          match op with `Connect -> Some F.Refuse_connect | _ -> None);
      for _ = 1 to 3 do
        match invoke_echo client target "x" with
        | exception Orb.Transport.Transport_error _ -> ()
        | _ -> Alcotest.fail "expected Transport_error"
      done;
      Alcotest.(check (option string)) "circuit tripped" (Some "open")
        (Option.map Orb.Breaker.state_to_string (Orb.breaker_state client target));
      (* Tripped: fast-fail, no network, fast. *)
      let connects_before = F.injected_total () in
      let t0 = Unix.gettimeofday () in
      (match invoke_echo client target "x" with
      | exception Orb.Breaker.Circuit_open _ -> ()
      | exception e ->
          Alcotest.failf "expected Circuit_open, got %s" (Printexc.to_string e)
      | _ -> Alcotest.fail "expected Circuit_open");
      let elapsed = Unix.gettimeofday () -. t0 in
      Alcotest.(check bool)
        (Printf.sprintf "fast-fail is fast (%.6fs)" elapsed)
        true (elapsed < 0.005);
      Alcotest.(check int) "fast-fail touched no transport" connects_before
        (F.injected_total ());
      let st = Orb.stats client in
      Alcotest.(check int) "one trip" 1 st.Orb.breaker_trips;
      Alcotest.(check bool) "fast-fails counted" true (st.Orb.breaker_fast_fails >= 1);
      (* Endpoint heals; after the cool-down one probe (Locate_request)
         closes the circuit and real traffic flows again. *)
      F.clear ();
      Thread.delay 0.25;
      Alcotest.(check string) "probe reopens traffic" "echo:back"
        (invoke_echo client target "back");
      Alcotest.(check (option string)) "circuit closed" (Some "closed")
        (Option.map Orb.Breaker.state_to_string (Orb.breaker_state client target)))

let test_breaker_reprobe_failure_retrips () =
  with_faulty_server ~retry:Orb.Retry.none ~breaker:breaker_cfg
    (fun ~server:_ ~client ~target ->
      F.set_plan (fun { F.op; _ } ->
          match op with `Connect -> Some F.Refuse_connect | _ -> None);
      for _ = 1 to 3 do
        try ignore (invoke_echo client target "x")
        with Orb.Transport.Transport_error _ -> ()
      done;
      Thread.delay 0.25;
      (* Endpoint still dead: the half-open probe fails and re-trips. *)
      (match invoke_echo client target "x" with
      | exception Orb.Transport.Transport_error _ -> ()
      | _ -> Alcotest.fail "expected probe failure");
      Alcotest.(check (option string)) "re-tripped" (Some "open")
        (Option.map Orb.Breaker.state_to_string (Orb.breaker_state client target));
      Alcotest.(check int) "two trips" 2 (Orb.stats client).Orb.breaker_trips)

let test_breaker_ignores_application_errors () =
  (* A decoded system-error reply proves the peer is alive: it must not
     count toward tripping. *)
  with_faulty_server ~retry:Orb.Retry.none
    ~breaker:{ breaker_cfg with failure_threshold = 2 }
    (fun ~server:_ ~client ~target ->
      for _ = 1 to 4 do
        match Orb.invoke client target ~op:"nope" (fun _ -> ()) with
        | exception Orb.System_exception _ -> ()
        | _ -> Alcotest.fail "expected System_exception"
      done;
      Alcotest.(check (option string)) "still closed" (Some "closed")
        (Option.map Orb.Breaker.state_to_string (Orb.breaker_state client target));
      Alcotest.(check int) "no trips" 0 (Orb.stats client).Orb.breaker_trips)

(* ---------------- observability ---------------- *)

let test_failures_visible_to_interceptors () =
  with_faulty_server ~retry:{ no_jitter with max_attempts = 3 }
    (fun ~server:_ ~client ~target ->
      let fc, failures = Orb.Interceptor.failure_counter () in
      Orb.Interceptor.add (Orb.client_interceptors client) fc;
      F.set_plan (fun { F.op; _ } ->
          match op with `Connect -> Some F.Refuse_connect | _ -> None);
      (try ignore (invoke_echo client target "x")
       with Orb.Transport.Transport_error _ -> ());
      (* Every failed attempt is observable: 2 retried + 1 final. *)
      Alcotest.(check int) "three failures observed" 3 (failures ()))

(* ---------------- plan determinism ---------------- *)

let test_seeded_plan_is_deterministic () =
  let mk () =
    F.seeded ~seed:42 ~refuse_connect:0.3 ~stall_read:0.2 ~drop_read:0.2
      ~truncate_write:0.15 ~corrupt_write:0.15 ~delay_write:0.2 ()
  in
  let points =
    List.concat_map
      (fun op -> List.init 50 (fun nth -> { F.op; nth; peer = "p" }))
      [ `Connect; `Read; `Write ]
  in
  let run plan = List.map plan points in
  Alcotest.(check bool) "same seed, same schedule" true (run (mk ()) = run (mk ()));
  let other =
    F.seeded ~seed:43 ~refuse_connect:0.3 ~stall_read:0.2 ~drop_read:0.2
      ~truncate_write:0.15 ~corrupt_write:0.15 ~delay_write:0.2 ()
  in
  Alcotest.(check bool) "different seed, different schedule" false
    (run (mk ()) = run other);
  let some = List.filter Option.is_some (run (mk ())) in
  Alcotest.(check bool) "plan actually injects" true (List.length some > 10)

(* ---------------- retry policy unit tests ---------------- *)

let test_backoff_schedule () =
  let p =
    { Orb.Retry.max_attempts = 5; base_delay = 0.01; multiplier = 2.0;
      max_delay = 0.05; jitter = 0.; seed = 0 }
  in
  let d n = Orb.Retry.delay_for p ~attempt:n in
  Alcotest.(check (float 1e-9)) "attempt 1" 0.01 (d 1);
  Alcotest.(check (float 1e-9)) "attempt 2" 0.02 (d 2);
  Alcotest.(check (float 1e-9)) "attempt 3" 0.04 (d 3);
  Alcotest.(check (float 1e-9)) "capped" 0.05 (d 4);
  let j = { p with jitter = 0.5; seed = 7 } in
  Alcotest.(check (float 1e-9)) "jitter deterministic"
    (Orb.Retry.delay_for j ~attempt:2)
    (Orb.Retry.delay_for j ~attempt:2);
  let dj = Orb.Retry.delay_for j ~attempt:2 in
  Alcotest.(check bool) "jitter in band" true (dj >= 0.01 && dj <= 0.03)

let test_error_taxonomy () =
  Alcotest.(check bool) "transport error is transient" true
    (Orb.Retry.classify (Orb.Transport.Transport_error "x") = Orb.Retry.Transient);
  Alcotest.(check bool) "timeout is deadline" true
    (Orb.Retry.classify (Orb.Transport.Timeout "x") = Orb.Retry.Deadline);
  Alcotest.(check bool) "system error is permanent" true
    (Orb.Retry.classify (Failure "x") = Orb.Retry.Permanent);
  Alcotest.(check bool) "timeout not retryable" false
    (Orb.Retry.retryable Orb.Retry.default ~attempt:1 (Orb.Transport.Timeout "x"))

let test_retry_run_driver () =
  let attempts = ref 0 in
  let v =
    Orb.Retry.run ~sleep:(fun _ -> ())
      { Orb.Retry.default with max_attempts = 4 }
      (fun ~attempt ->
        incr attempts;
        if attempt < 3 then raise (Orb.Transport.Transport_error "flaky")
        else "ok")
  in
  Alcotest.(check string) "succeeds" "ok" v;
  Alcotest.(check int) "took three attempts" 3 !attempts;
  (* Permanent errors pass straight through. *)
  attempts := 0;
  (match
     Orb.Retry.run ~sleep:(fun _ -> ())
       { Orb.Retry.default with max_attempts = 4 }
       (fun ~attempt:_ ->
         incr attempts;
         failwith "bug")
   with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "expected Failure");
  Alcotest.(check int) "no retry of permanent" 1 !attempts

(* ---------------- retry budget ---------------- *)

let test_retry_budget_bucket () =
  let b =
    Orb.Retry.Budget.create
      ~config:{ Orb.Retry.Budget.ratio = 0.5; reserve = 2; cap = 5 }
      ()
  in
  Alcotest.(check int) "initial balance" 2 (Orb.Retry.Budget.balance b);
  Alcotest.(check bool) "withdraw 1" true (Orb.Retry.Budget.try_withdraw b);
  Alcotest.(check bool) "withdraw 2" true (Orb.Retry.Budget.try_withdraw b);
  Alcotest.(check bool) "empty refuses" false (Orb.Retry.Budget.try_withdraw b);
  Alcotest.(check int) "exhaustion counted" 1 (Orb.Retry.Budget.exhaustions b);
  (* Two successes at ratio 0.5 bank one whole retry credit. *)
  Orb.Retry.Budget.deposit b;
  Alcotest.(check bool) "half a credit refuses" false
    (Orb.Retry.Budget.try_withdraw b);
  Orb.Retry.Budget.deposit b;
  Alcotest.(check bool) "full credit withdraws" true
    (Orb.Retry.Budget.try_withdraw b);
  (* The cap bounds how much old success can bank. *)
  for _ = 1 to 100 do
    Orb.Retry.Budget.deposit b
  done;
  Alcotest.(check bool) "capped" true (Orb.Retry.Budget.balance b <= 5);
  Alcotest.(check bool) "exhaustion is permanent" true
    (Orb.Retry.classify (Orb.Retry.Budget_exhausted "x") = Orb.Retry.Permanent)

let test_retry_run_budget_and_deadline () =
  (* [Retry.run] with a one-credit budget: the first retry withdraws
     it, the second raises Budget_exhausted instead of retrying. *)
  let attempts = ref 0 in
  let b =
    Orb.Retry.Budget.create
      ~config:{ Orb.Retry.Budget.ratio = 0.; reserve = 1; cap = 1 }
      ()
  in
  (match
     Orb.Retry.run ~sleep:(fun _ -> ()) ~budget:b
       { Orb.Retry.default with max_attempts = 5 }
       (fun ~attempt:_ ->
         incr attempts;
         raise (Orb.Transport.Transport_error "down"))
   with
  | exception Orb.Retry.Budget_exhausted _ -> ()
  | _ -> Alcotest.fail "expected Budget_exhausted");
  Alcotest.(check int) "one retry then cut off" 2 !attempts;
  (* A deadline already in the past: the original error propagates
     without a retry and without sleeping. *)
  attempts := 0;
  (match
     Orb.Retry.run
       ~sleep:(fun _ -> Alcotest.fail "slept past the deadline")
       ~deadline:(Unix.gettimeofday () -. 1.)
       { Orb.Retry.default with max_attempts = 5 }
       (fun ~attempt:_ ->
         incr attempts;
         raise (Orb.Transport.Transport_error "down"))
   with
  | exception Orb.Transport.Transport_error _ -> ()
  | _ -> Alcotest.fail "expected the original error");
  Alcotest.(check int) "no attempt past deadline" 1 !attempts

let test_orb_retry_budget_exhaustion () =
  (* ORB-level: with a one-retry budget against a dead endpoint, the
     call fails loudly with Budget_exhausted — a Permanent error, never
     a silent stall — and the refusal is visible in stats. *)
  with_faulty_server
    ~retry:{ no_jitter with max_attempts = 5 }
    ~retry_budget:{ Orb.Retry.Budget.ratio = 0.; reserve = 1; cap = 1 }
    (fun ~server:_ ~client ~target ->
      F.set_plan (fun { F.op; _ } ->
          match op with `Connect -> Some F.Refuse_connect | _ -> None);
      let t0 = Unix.gettimeofday () in
      (match invoke_echo client target "x" with
      | exception Orb.Retry.Budget_exhausted m ->
          Alcotest.(check bool) "message names the last error" true
            (Tutil.contains m "budget")
      | exception e ->
          Alcotest.failf "expected Budget_exhausted, got %s"
            (Printexc.to_string e)
      | _ -> Alcotest.fail "expected Budget_exhausted");
      Alcotest.(check bool) "failed fast, no stall" true
        (Unix.gettimeofday () -. t0 < 1.0);
      let st = Orb.stats client in
      Alcotest.(check int) "one retry spent the budget" 1 st.Orb.retries;
      Alcotest.(check int) "exhaustion observable" 1
        st.Orb.retry_budget_exhaustions;
      Alcotest.(check int) "balance drained" 0 st.Orb.retry_budget_balance;
      (* Successes refill it: lift the faults, land calls, retry again. *)
      F.clear ();
      Alcotest.(check string) "recovers" "echo:y" (invoke_echo client target "y"))

(* ---------------- breaker unit tests ---------------- *)

let test_breaker_state_machine () =
  let b =
    Orb.Breaker.create
      ~config:{ Orb.Breaker.failure_threshold = 2; reset_timeout = 0.05 } ()
  in
  let k = "ep" in
  Alcotest.(check bool) "closed proceeds" true
    (Orb.Breaker.before_call b k = Orb.Breaker.Proceed);
  Orb.Breaker.failure b k;
  Alcotest.(check bool) "one failure stays closed" true
    (Orb.Breaker.state b k = Orb.Breaker.Closed);
  Orb.Breaker.failure b k;
  Alcotest.(check bool) "threshold trips" true
    (Orb.Breaker.state b k = Orb.Breaker.Open);
  Alcotest.(check bool) "open fast-fails" true
    (Orb.Breaker.before_call b k = Orb.Breaker.Fast_fail);
  Thread.delay 0.06;
  Alcotest.(check bool) "cool-down grants one probe" true
    (Orb.Breaker.before_call b k = Orb.Breaker.Probe);
  Alcotest.(check bool) "second caller fast-fails during probe" true
    (Orb.Breaker.before_call b k = Orb.Breaker.Fast_fail);
  Orb.Breaker.success b k;
  Alcotest.(check bool) "probe success closes" true
    (Orb.Breaker.state b k = Orb.Breaker.Closed);
  Alcotest.(check int) "one trip counted" 1 (Orb.Breaker.trips b);
  (* A success resets the consecutive-failure count. *)
  Orb.Breaker.failure b k;
  Orb.Breaker.success b k;
  Orb.Breaker.failure b k;
  Alcotest.(check bool) "non-consecutive failures do not trip" true
    (Orb.Breaker.state b k = Orb.Breaker.Closed)

let () =
  Alcotest.run "faults"
    [
      ( "deadlines",
        [
          Alcotest.test_case "timeout on stalled read" `Quick
            test_timeout_on_stalled_read;
          Alcotest.test_case "per-call timeout" `Quick test_per_call_timeout_overrides;
        ] );
      ( "retries",
        [
          Alcotest.test_case "refused connects retried" `Quick
            test_retry_refused_connects;
          Alcotest.test_case "retries exhausted" `Quick test_retries_exhausted;
          Alcotest.test_case "truncated reply not retried" `Quick
            test_truncated_reply_not_retried;
          Alcotest.test_case "corrupted reply is protocol error" `Quick
            test_corrupted_reply_is_protocol_error;
          Alcotest.test_case "delayed writes" `Quick
            test_delayed_write_slows_but_succeeds;
        ] );
      ( "retry budget",
        [
          Alcotest.test_case "token bucket" `Quick test_retry_budget_bucket;
          Alcotest.test_case "run driver: budget + deadline" `Quick
            test_retry_run_budget_and_deadline;
          Alcotest.test_case "exhaustion fails loudly" `Quick
            test_orb_retry_budget_exhaustion;
        ] );
      ( "breaker",
        [
          Alcotest.test_case "trips, fast-fails, recovers" `Quick
            test_breaker_trips_and_recovers;
          Alcotest.test_case "failed probe re-trips" `Quick
            test_breaker_reprobe_failure_retrips;
          Alcotest.test_case "application errors don't trip" `Quick
            test_breaker_ignores_application_errors;
          Alcotest.test_case "state machine" `Quick test_breaker_state_machine;
        ] );
      ( "observability",
        [
          Alcotest.test_case "failures hit interceptors" `Quick
            test_failures_visible_to_interceptors;
        ] );
      ( "policy",
        [
          Alcotest.test_case "seeded plan determinism" `Quick
            test_seeded_plan_is_deterministic;
          Alcotest.test_case "backoff schedule" `Quick test_backoff_schedule;
          Alcotest.test_case "error taxonomy" `Quick test_error_taxonomy;
          Alcotest.test_case "retry run driver" `Quick test_retry_run_driver;
        ] );
    ]
