(* Interceptor/filter tests (Section 5: Orbix filters, Visibroker
   interceptors — the expose-a-hook school of ORB customization). *)

module I = Orb.Interceptor
module P = Orb.Protocol

let sample_req =
  {
    P.req_id = 1;
    target =
      Orb.Objref.make ~proto:"mem" ~host:"local" ~port:1 ~oid:"1"
        ~type_id:"IDL:T:1.0";
    operation = "op";
    oneway = false;
    payload = "";
    trace_ctx = "";
    budget_us = None;
    nego_offer = "";
  }

let test_chain_ordering () =
  (* Requests run in registration order; replies in reverse (onion). *)
  let trace = ref [] in
  let mk name =
    I.make name
      ~on_request:(fun req ->
        trace := ("req:" ^ name) :: !trace;
        req)
      ~on_reply:(fun _ rep ->
        trace := ("rep:" ^ name) :: !trace;
        rep)
  in
  let chain = I.empty_chain () in
  I.add chain (mk "outer");
  I.add chain (mk "inner");
  Alcotest.(check (list string)) "names" [ "outer"; "inner" ] (I.names chain);
  let req = I.apply_request chain sample_req in
  let _ = I.apply_reply chain req { P.rep_id = 1; status = P.Status_ok; payload = ""; nego_answer = "" } in
  Alcotest.(check (list string)) "onion order"
    [ "req:outer"; "req:inner"; "rep:inner"; "rep:outer" ]
    (List.rev !trace)

let test_request_rewriting () =
  let chain = I.empty_chain () in
  I.add chain
    (I.make "renamer" ~on_request:(fun req -> { req with P.operation = "renamed" }));
  let req = I.apply_request chain sample_req in
  Alcotest.(check string) "rewritten" "renamed" req.P.operation

let test_reject () =
  let chain = I.empty_chain () in
  I.add chain (I.deny (fun ~op ~type_id:_ -> op = "shutdown") ~reason:"not allowed");
  (match I.apply_request chain { sample_req with P.operation = "shutdown" } with
  | exception I.Reject "not allowed" -> ()
  | _ -> Alcotest.fail "expected Reject");
  (* Non-matching operations pass. *)
  ignore (I.apply_request chain sample_req)

(* ------------- through a live ORB ------------- *)

let echo_skeleton () =
  Orb.Skeleton.create ~type_id:"IDL:Test/Echo:1.0"
    [
      ("echo", fun args results ->
          results.Wire.Codec.put_string (args.Wire.Codec.get_string ()));
      ("shutdown", fun _ _ -> Alcotest.fail "should never be dispatched");
    ]

let with_pair f =
  let server = Orb.create () in
  Orb.start server;
  let client = Orb.create () in
  Fun.protect
    ~finally:(fun () ->
      Orb.shutdown client;
      Orb.shutdown server)
    (fun () -> f ~server ~client)

let call client target ~op s =
  match Orb.invoke client target ~op (fun e -> e.Wire.Codec.put_string s) with
  | Some d -> d.Wire.Codec.get_string ()
  | None -> Alcotest.fail "no reply"

let test_server_side_filter () =
  with_pair (fun ~server ~client ->
      let counter, count = I.call_counter () in
      I.add (Orb.server_interceptors server) counter;
      I.add (Orb.server_interceptors server)
        (I.deny (fun ~op ~type_id:_ -> op = "shutdown") ~reason:"admin only");
      let target = Orb.export server (echo_skeleton ()) in
      Alcotest.(check string) "normal call passes" "hello"
        (call client target ~op:"echo" "hello");
      (* The filter rejects before the skeleton ever runs. *)
      (match call client target ~op:"shutdown" "x" with
      | exception Orb.System_exception m ->
          Tutil.check_contains ~what:"reject surfaces" m "admin only"
      | _ -> Alcotest.fail "expected rejection");
      Alcotest.(check int) "counted both" 2 (count ()))

let test_client_side_interceptor () =
  with_pair (fun ~server ~client ->
      let log = ref [] in
      I.add (Orb.client_interceptors client)
        (I.logger (fun line -> log := line :: !log));
      let target = Orb.export server (echo_skeleton ()) in
      Alcotest.(check string) "call works" "x" (call client target ~op:"echo" "x");
      let lines = List.rev !log in
      Alcotest.(check int) "two log lines" 2 (List.length lines);
      Tutil.check_contains ~what:"request logged" (List.nth lines 0) "-> echo";
      Tutil.check_contains ~what:"reply logged" (List.nth lines 1) "<- echo";
      (* Client-side reject propagates to the caller directly. *)
      I.add (Orb.client_interceptors client)
        (I.deny (fun ~op ~type_id:_ -> op = "echo") ~reason:"offline mode");
      match call client target ~op:"echo" "y" with
      | exception I.Reject "offline mode" -> ()
      | _ -> Alcotest.fail "expected client-side Reject")

let test_reply_rewriting () =
  with_pair (fun ~server ~client ->
      (* A server-side interceptor that masks system-error details. *)
      I.add (Orb.server_interceptors server)
        (I.make "mask-errors" ~on_reply:(fun _ rep ->
             match rep.P.status with
             | P.Status_system_error _ ->
                 { rep with P.status = P.Status_system_error "internal error" }
             | _ -> rep));
      let target = Orb.export server (echo_skeleton ()) in
      match Orb.invoke client target ~op:"nosuch" (fun _ -> ()) with
      | exception Orb.System_exception m ->
          Alcotest.(check string) "masked" "internal error" m
      | _ -> Alcotest.fail "expected a system exception")

let test_oneway_reject_is_silent () =
  with_pair (fun ~server ~client ->
      I.add (Orb.server_interceptors server)
        (I.deny (fun ~op ~type_id:_ -> op = "echo") ~reason:"no");
      let target = Orb.export server (echo_skeleton ()) in
      (* A rejected oneway produces no reply and no client error. *)
      Alcotest.(check bool) "no reply" true
        (Orb.invoke client target ~op:"echo" ~oneway:true (fun e ->
             e.Wire.Codec.put_string "x")
        = None))

let () =
  Alcotest.run "interceptor"
    [
      ( "chain",
        [
          Alcotest.test_case "onion ordering" `Quick test_chain_ordering;
          Alcotest.test_case "request rewriting" `Quick test_request_rewriting;
          Alcotest.test_case "reject" `Quick test_reject;
        ] );
      ( "live",
        [
          Alcotest.test_case "server-side filter" `Quick test_server_side_filter;
          Alcotest.test_case "client-side interceptor" `Quick test_client_side_interceptor;
          Alcotest.test_case "reply rewriting" `Quick test_reply_rewriting;
          Alcotest.test_case "rejected oneway is silent" `Quick test_oneway_reject_is_silent;
        ] );
    ]
