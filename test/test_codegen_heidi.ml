(* Golden tests for the HeidiRMI C++ mapping: Fig. 3 (the generated
   interface class header) and Fig. 2 (delegation-based skeletons). *)

let mapping = Option.get (Mappings.Registry.find "heidi-cpp")

let fig3_idl =
  {|module Heidi {
  interface S;
  enum Status {Start, Stop};
  typedef sequence<S> SSequence;
  interface S { void ping(); };
  interface A : S
  {
    void f(in A a);
    void g(incopy S s);
    void p(in long l = 0);
    void q(in Status s = Heidi::Start);
    readonly attribute Status button;
    void s(in boolean b = TRUE);
    void t(in SSequence s);
  };
};|}

let compile () =
  Core.Compiler.compile_string ~filename:"A.idl" ~file_base:"A" ~mapping fig3_idl

let file result name =
  match List.assoc_opt name result.Core.Compiler.files with
  | Some c -> c
  | None ->
      Alcotest.failf "no %s generated (have: %s)" name
        (String.concat ", " (List.map fst result.Core.Compiler.files))

(* Fig. 3, right-hand side. Deltas vs the paper's figure, documented in
   EXPERIMENTS.md: parameters are named, S's own declaration appears
   (the figure omits it), and the attribute getter has no `const`. *)
let fig3_expected_core =
  {|// IDL:Heidi/Status:1.0
enum HdStatus { Start, Stop };

// IDL:Heidi/SSequence:1.0
typedef HdList<HdS> HdSSequence;
typedef HdListIterator<HdS> HdSSequenceIter;

// IDL:Heidi/S:1.0
class HdS
{
public:
    virtual void ping() = 0;
    virtual ~HdS() { }
};

// IDL:Heidi/A:1.0
class HdA : virtual public HdS
{
public:
    virtual void f(HdA* a) = 0;
    virtual void g(HdS* s) = 0;
    virtual void p(long l = 0) = 0;
    virtual void q(HdStatus s = Start) = 0;
    virtual void s(XBool b = XTrue) = 0;
    virtual void t(HdSSequence* s) = 0;
    virtual HdStatus GetButton() = 0;
    virtual ~HdA() { }
};|}

let test_fig3_header () =
  let header = file (compile ()) "A.hh" in
  Tutil.check_contains ~what:"guard" header "#ifndef _A_hh_";
  List.iter
    (fun line -> Tutil.check_contains ~what:"Fig. 3 line" header line)
    (String.split_on_char '\n' fig3_expected_core |> List.filter (fun l -> l <> ""))

let test_fig3_exact_block () =
  (* The interface class A must match Fig. 3 as one contiguous block. *)
  let header = file (compile ()) "A.hh" in
  let want =
    "class HdA : virtual public HdS\n{\npublic:\n    virtual void f(HdA* a) = 0;\n\
    \    virtual void g(HdS* s) = 0;\n    virtual void p(long l = 0) = 0;\n\
    \    virtual void q(HdStatus s = Start) = 0;\n    virtual void s(XBool b = XTrue) = 0;\n\
    \    virtual void t(HdSSequence* s) = 0;\n    virtual HdStatus GetButton() = 0;\n\
    \    virtual ~HdA() { }\n};"
  in
  Tutil.check_contains ~what:"Fig. 3 class block" header want

let test_stub_structure () =
  let stubs = file (compile ()) "A_stub.hh" in
  (* Section 3.1: A_stub inherits functionality from S_stub and in
     addition implements the methods of interface A. *)
  Tutil.check_contains ~what:"stub inheritance" stubs
    "class HdA_stub : virtual public HdA, virtual public HdS_stub, virtual public HdStub";
  (* Fig. 4: Call created, parameters marshaled, invoked. *)
  Tutil.check_contains ~what:"call creation" stubs "HdCall* _c = pb_newCall(\"f\");";
  Tutil.check_contains ~what:"marshal objref" stubs "_c->insertObject(a);";
  Tutil.check_contains ~what:"incopy value" stubs "_c->insertValue(s);";
  Tutil.check_contains ~what:"invoke" stubs "_c->invoke();";
  Tutil.check_contains ~what:"attribute getter" stubs "pb_newCall(\"_get_button\")"

let test_skeleton_delegation_fig2 () =
  let skels = file (compile ()) "A_skel.hh" in
  (* Fig. 2: the skeleton holds a pointer to the implementation — a
     delegation relation, not inheritance from HdA. *)
  Tutil.check_contains ~what:"delegate member" skels "HdA* pb_obj_;";
  Tutil.check_not_contains ~what:"no interface inheritance" skels
    "class HdA_skel : public HdA";
  (* Skeletons mirror the IDL hierarchy: A_skel inherits S_skel. *)
  Tutil.check_contains ~what:"skeleton hierarchy" skels
    "class HdA_skel : public HdS_skel";
  (* Section 3.1: failed dispatch delegates up the hierarchy. *)
  Tutil.check_contains ~what:"delegation" skels
    "if (HdS_skel::dispatch(_c, _op)) return 1;";
  (* The baseline dispatch is a strcmp chain (Section 2). *)
  Tutil.check_contains ~what:"strcmp dispatch" skels "if (strcmp(_op, \"f\") == 0)";
  (* Root skeletons inherit the generic base and end dispatch with 0. *)
  Tutil.check_contains ~what:"root base" skels "class HdS_skel : public HdSkeleton";
  Tutil.check_contains ~what:"fallthrough" skels "return 0;"

let test_multiple_inheritance_dispatch_order () =
  let src =
    {|interface L { void l(); };
      interface R { void r(); };
      interface B : L, R { void b(); };|}
  in
  let result = Core.Compiler.compile_string ~file_base:"m" ~mapping src in
  let skels = List.assoc "m_skel.hh" result.Core.Compiler.files in
  (* "dispatching is delegated to each of the corresponding skeleton
     super-classes in order" — L before R. *)
  let l_pos = Tutil.find skels "if (HdL_skel::dispatch(_c, _op)) return 1;" in
  let r_pos = Tutil.find skels "if (HdR_skel::dispatch(_c, _op)) return 1;" in
  Alcotest.(check bool) "L delegated before R" true (l_pos < r_pos)

let test_structs_and_exceptions () =
  let src =
    {|module Heidi {
        struct Info { string name; long size; };
        exception Broke { string why; };
        interface I {
          Info info() raises (Broke);
        };
      };|}
  in
  let result = Core.Compiler.compile_string ~file_base:"x" ~mapping src in
  let header = List.assoc "x.hh" result.Core.Compiler.files in
  Tutil.check_contains ~what:"struct class" header
    "class HdInfo : public HdSerializable";
  Tutil.check_contains ~what:"struct member" header "HdString name;";
  Tutil.check_contains ~what:"exception class" header
    "class HdBroke : public HdException";
  Tutil.check_contains ~what:"exception id" header
    "return \"IDL:Heidi/Broke:1.0\";"

let () =
  Alcotest.run "codegen-heidi"
    [
      ( "fig3",
        [
          Alcotest.test_case "header content (F3)" `Quick test_fig3_header;
          Alcotest.test_case "interface class block (F3)" `Quick test_fig3_exact_block;
        ] );
      ( "stubs-skeletons",
        [
          Alcotest.test_case "stub structure (Fig. 4)" `Quick test_stub_structure;
          Alcotest.test_case "skeleton delegation (Fig. 2)" `Quick test_skeleton_delegation_fig2;
          Alcotest.test_case "multi-inheritance dispatch order" `Quick
            test_multiple_inheritance_dispatch_order;
          Alcotest.test_case "structs and exceptions" `Quick test_structs_and_exceptions;
        ] );
    ]
