(* Smart proxy tests (Section 5: Orbix smart proxies / Visibroker smart
   stubs): client-side caching of object state. *)

let with_pair f =
  let server = Orb.create () in
  Orb.start server;
  let client = Orb.create () in
  Fun.protect
    ~finally:(fun () ->
      Orb.shutdown client;
      Orb.shutdown server)
    (fun () -> f ~server ~client)

(* A counter servant that tracks how many remote calls actually land. *)
let counter_skeleton () =
  let value = ref 0 in
  let gets = ref 0 in
  ( Orb.Skeleton.create ~type_id:"IDL:Test/Counter:1.0"
      [
        ("get", fun _ results ->
            incr gets;
            results.Wire.Codec.put_long !value);
        ("add", fun args results ->
            value := !value + args.Wire.Codec.get_long ();
            results.Wire.Codec.put_long !value);
        ("describe", fun args results ->
            incr gets;
            let detail = args.Wire.Codec.get_string () in
            results.Wire.Codec.put_string (Printf.sprintf "counter(%s)=%d" detail !value));
      ],
    gets )

let get proxy =
  let d = Orb.Smart.call proxy ~op:"get" (fun _ -> ()) in
  d.Wire.Codec.get_long ()

let add proxy n =
  let d = Orb.Smart.call proxy ~op:"add" (fun e -> e.Wire.Codec.put_long n) in
  d.Wire.Codec.get_long ()

let test_caching_and_invalidation () =
  with_pair (fun ~server ~client ->
      let skel, gets = counter_skeleton () in
      let target = Orb.export server skel in
      let proxy = Orb.smart_proxy client ~invalidate_on:[ "add" ] target in
      Alcotest.(check int) "first get" 0 (get proxy);
      Alcotest.(check int) "cached get" 0 (get proxy);
      Alcotest.(check int) "cached get again" 0 (get proxy);
      Alcotest.(check int) "only one remote get" 1 !gets;
      (* A mutating call flushes the cache. *)
      Alcotest.(check int) "add" 5 (add proxy 5);
      Alcotest.(check int) "fresh get after write" 5 (get proxy);
      Alcotest.(check int) "cached again" 5 (get proxy);
      Alcotest.(check int) "two remote gets total" 2 !gets;
      Alcotest.(check int) "hits" 3 (Orb.Smart.hits proxy);
      Alcotest.(check int) "misses" 2 (Orb.Smart.misses proxy))

let test_distinct_arguments_miss () =
  with_pair (fun ~server ~client ->
      let skel, gets = counter_skeleton () in
      let target = Orb.export server skel in
      let proxy = Orb.smart_proxy client target in
      let describe detail =
        let d =
          Orb.Smart.call proxy ~op:"describe" (fun e -> e.Wire.Codec.put_string detail)
        in
        d.Wire.Codec.get_string ()
      in
      Alcotest.(check string) "a" "counter(a)=0" (describe "a");
      Alcotest.(check string) "b" "counter(b)=0" (describe "b");
      Alcotest.(check string) "a cached" "counter(a)=0" (describe "a");
      Alcotest.(check int) "two remote calls" 2 !gets)

let test_explicit_invalidate () =
  with_pair (fun ~server ~client ->
      let skel, gets = counter_skeleton () in
      let target = Orb.export server skel in
      let proxy = Orb.smart_proxy client target in
      ignore (get proxy);
      ignore (get proxy);
      Orb.Smart.invalidate proxy;
      ignore (get proxy);
      Alcotest.(check int) "invalidate forces refetch" 2 !gets)

let test_capacity_eviction () =
  with_pair (fun ~server ~client ->
      let skel, gets = counter_skeleton () in
      let target = Orb.export server skel in
      let proxy = Orb.smart_proxy client ~capacity:2 target in
      let describe detail =
        ignore
          (Orb.Smart.call proxy ~op:"describe" (fun e -> e.Wire.Codec.put_string detail))
      in
      describe "a";
      describe "b";
      describe "c" (* evicts "a" *);
      describe "a" (* miss again *);
      Alcotest.(check int) "eviction caused a refetch" 4 !gets)

let test_exceptions_not_cached () =
  with_pair (fun ~server ~client ->
      let fails = ref 0 in
      let skel =
        Orb.Skeleton.create ~type_id:"IDL:Test/Flaky:1.0"
          [
            ("flaky", fun _ results ->
                incr fails;
                if !fails = 1 then failwith "first call breaks"
                else results.Wire.Codec.put_bool true);
          ]
      in
      let target = Orb.export server skel in
      let proxy = Orb.smart_proxy client target in
      (match Orb.Smart.call proxy ~op:"flaky" (fun _ -> ()) with
      | exception Orb.System_exception _ -> ()
      | _ -> Alcotest.fail "expected failure");
      (* The failure was not cached: the retry reaches the servant. *)
      let d = Orb.Smart.call proxy ~op:"flaky" (fun _ -> ()) in
      Alcotest.(check bool) "retry succeeds" true (d.Wire.Codec.get_bool ());
      Alcotest.(check int) "two servant calls" 2 !fails)

let () =
  Alcotest.run "smart"
    [
      ( "smart proxies",
        [
          Alcotest.test_case "caching + invalidate_on" `Quick test_caching_and_invalidation;
          Alcotest.test_case "distinct arguments" `Quick test_distinct_arguments_miss;
          Alcotest.test_case "explicit invalidate" `Quick test_explicit_invalidate;
          Alcotest.test_case "capacity eviction" `Quick test_capacity_eviction;
          Alcotest.test_case "exceptions not cached" `Quick test_exceptions_not_cached;
        ] );
    ]
