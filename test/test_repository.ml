(* Interface Repository tests (Section 5: the OmniBroker IR integration —
   store the EST, generate later without reparsing). *)

let temp_dir () =
  let dir = Filename.temp_file "ir" "" in
  Sys.remove dir;
  dir

let fig3_idl =
  {|module Heidi {
      enum Status {Start, Stop};
      interface S { void ping(); };
      interface A : S { void f(in A a); };
    };|}

let est_of ?(file_base = "A") src =
  Core.Compiler.est_of_string ~file_base src

let test_store_load_roundtrip () =
  let repo = Core.Repository.open_ ~dir:(temp_dir ()) in
  let est = est_of fig3_idl in
  let name = Core.Repository.store repo est in
  Alcotest.(check string) "unit name" "A" name;
  match Core.Repository.load repo "A" with
  | Some back -> Alcotest.(check bool) "equal" true (Est.Node.equal est back)
  | None -> Alcotest.fail "unit lost"

let test_units_listing () =
  let repo = Core.Repository.open_ ~dir:(temp_dir ()) in
  ignore (Core.Repository.store repo (est_of ~file_base:"zeta" "enum E { a };"));
  ignore (Core.Repository.store repo (est_of ~file_base:"alpha" "enum F { b };"));
  Alcotest.(check (list string)) "sorted" [ "alpha"; "zeta" ]
    (Core.Repository.units repo);
  Core.Repository.remove repo "zeta";
  Alcotest.(check (list string)) "removed" [ "alpha" ] (Core.Repository.units repo);
  Alcotest.(check bool) "missing load" true (Core.Repository.load repo "zeta" = None)

let test_overwrite () =
  let repo = Core.Repository.open_ ~dir:(temp_dir ()) in
  ignore (Core.Repository.store repo (est_of "enum E { a };"));
  ignore (Core.Repository.store repo (est_of "enum E { a, b };"));
  match Core.Repository.load repo "A" with
  | Some est ->
      let enum = List.hd (Est.Node.group est "enumList") in
      Alcotest.(check int) "latest version" 2
        (List.length (Est.Node.group enum "memberList"))
  | None -> Alcotest.fail "unit lost"

let test_find_interface () =
  let repo = Core.Repository.open_ ~dir:(temp_dir ()) in
  ignore (Core.Repository.store repo (est_of fig3_idl));
  ignore
    (Core.Repository.store repo
       (est_of ~file_base:"R" "interface Receiver { void print(in string t); };"));
  (match Core.Repository.find_interface repo ~repo_id:"IDL:Heidi/A:1.0" with
  | Some (unit_name, iface) ->
      Alcotest.(check string) "unit" "A" unit_name;
      Alcotest.(check string) "iface" "A" (Est.Node.name iface)
  | None -> Alcotest.fail "interface not found");
  (match Core.Repository.find_interface repo ~repo_id:"IDL:Receiver:1.0" with
  | Some (unit_name, _) -> Alcotest.(check string) "unit" "R" unit_name
  | None -> Alcotest.fail "interface not found");
  Alcotest.(check bool) "missing" true
    (Core.Repository.find_interface repo ~repo_id:"IDL:No/Such:1.0" = None)

let test_generate_from_ir () =
  (* The Section 5 scenario end to end: stage 1 stores; much later,
     stage 2 generates from the IR without any IDL around. *)
  let repo = Core.Repository.open_ ~dir:(temp_dir ()) in
  ignore (Core.Repository.store repo (est_of fig3_idl));
  let est = Option.get (Core.Repository.load repo "A") in
  let mapping = Option.get (Mappings.Registry.find "heidi-cpp") in
  let result =
    Core.Compiler.generate ~maps:mapping.Mappings.Mapping.maps
      ~templates:mapping.Mappings.Mapping.templates est
  in
  Tutil.check_contains ~what:"generated from IR"
    (List.assoc "A.hh" result.Core.Compiler.files)
    "class HdA : virtual public HdS"

let test_store_requires_file_base () =
  let repo = Core.Repository.open_ ~dir:(temp_dir ()) in
  let bare = Est.Node.create ~name:"" ~kind:"Root" in
  match Core.Repository.store repo bare with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "stored an EST without a fileBase"

let () =
  Alcotest.run "repository"
    [
      ( "interface repository",
        [
          Alcotest.test_case "store/load round-trip" `Quick test_store_load_roundtrip;
          Alcotest.test_case "unit listing and removal" `Quick test_units_listing;
          Alcotest.test_case "overwrite keeps latest" `Quick test_overwrite;
          Alcotest.test_case "find interface by repo id" `Quick test_find_interface;
          Alcotest.test_case "generate from the IR" `Quick test_generate_from_ir;
          Alcotest.test_case "fileBase required" `Quick test_store_requires_file_base;
        ] );
    ]
