(* The concurrency subsystem's two checkers, tested against each other:
   the static C4xx pass (lib/analysis/conc.ml) over a seeded fixture
   corpus with golden diagnostics, and the runtime lock-rank checker in
   Locked against live inversions. *)

module Diag = Idl.Diag

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* ---------------- static pass: corpus goldens ---------------- *)

let corpus_dir = "conc"

let corpus_cases () =
  Sys.readdir corpus_dir |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".ml")
  |> List.sort compare

let test_corpus () =
  let cases = corpus_cases () in
  (* One fixture per C4xx code, plus the second C404 shape (the
     unlocked stats counter). *)
  Alcotest.(check int) "fixture count" 9 (List.length cases);
  List.iter
    (fun case ->
      let path = Filename.concat corpus_dir case in
      let reporter = Diag.reporter () in
      Analysis.Conc.check_file reporter path;
      let expected = read_file (Filename.chop_suffix path ".ml" ^ ".expected") in
      Alcotest.(check string) case expected (Diag.render_text reporter);
      (* Each fixture is named after its code and provokes exactly it. *)
      let code = String.sub case 0 4 in
      Alcotest.(check (list string))
        (case ^ " emits only " ^ code)
        [ code ]
        (List.map (fun d -> d.Diag.code) (Diag.diagnostics reporter)))
    cases

let test_corpus_codes_known () =
  List.iter
    (fun code ->
      Alcotest.(check bool) (code ^ " in table") true (Analysis.Codes.is_known code);
      match Analysis.Codes.explain code with
      | Some text ->
          Alcotest.(check bool) (code ^ " has rationale") true
            (String.length text > 80)
      | None -> Alcotest.fail (code ^ " has no --explain page"))
    Analysis.Conc.codes

(* The repository's own runtime must be clean: the same gate as
   `dune build @analyze`, asserted from the inside so a failure names
   the diagnostics. *)
let test_lib_clean () =
  let reporter = Diag.reporter () in
  Analysis.Conc.check_path reporter "../lib";
  Alcotest.(check string) "no findings over lib/" "" (Diag.render_text reporter)

let test_werror_and_json () =
  (* A warning-severity finding (C405) exits 0 normally, 1 under
     --werror; the JSON rendering carries the code. *)
  let path = Filename.concat corpus_dir "C405_split_rmw.ml" in
  let plain = Diag.reporter () in
  Analysis.Conc.check_file plain path;
  Alcotest.(check bool) "warning only" false (Diag.has_errors plain);
  Alcotest.(check int) "one warning" 1 (Diag.warning_count plain);
  let werror = Diag.reporter ~werror:true () in
  Analysis.Conc.check_file werror path;
  Alcotest.(check bool) "werror promotes" true (Diag.has_errors werror);
  let json = Diag.render_json plain in
  Alcotest.(check bool) "json has code" true
    (let needle = {|"C405"|} in
     let rec find i =
       i + String.length needle <= String.length json
       && (String.sub json i (String.length needle) = needle || find (i + 1))
     in
     find 0)

let test_disable () =
  let reporter = Diag.reporter () in
  Diag.set_enabled reporter "C404" false;
  Analysis.Conc.check_file reporter (Filename.concat corpus_dir "C404_unlocked.ml");
  Alcotest.(check int) "disabled code dropped" 0
    (List.length (Diag.diagnostics reporter))

let test_unparsable () =
  let tmp = Filename.temp_file "conc_bad" ".ml" in
  Fun.protect
    ~finally:(fun () -> Sys.remove tmp)
    (fun () ->
      let oc = open_out tmp in
      output_string oc "let = syntax error here";
      close_out oc;
      let reporter = Diag.reporter () in
      Analysis.Conc.check_file reporter tmp;
      Alcotest.(check bool) "parse failure reported, not raised" true
        (Diag.has_errors reporter))

(* ---------------- runtime checker ---------------- *)

(* These tests manage the global checking flag explicitly so they stay
   meaningful even if the suite's ORB_LOCK_CHECK environment changes. *)
let with_checking f =
  let was = Locked.checking () in
  Locked.set_checking true;
  Locked.reset_violations ();
  Fun.protect
    ~finally:(fun () ->
      Locked.reset_violations ();
      Locked.set_checking was)
    f

let test_runtime_inversion () =
  with_checking (fun () ->
      let outer = Locked.create ~name:"t.outer" ~rank:Locked.Rank.pool in
      let inner = Locked.create ~name:"t.inner" ~rank:Locked.Rank.metrics in
      (* Descending acquisition is the sanctioned order. *)
      Locked.with_lock outer (fun () ->
          Locked.with_lock inner (fun () -> ()));
      Alcotest.(check (list string)) "clean order: no violations" []
        (Locked.violations ());
      (* The seeded inversion: climbing the lattice must trip. *)
      (match
         Locked.with_lock inner (fun () ->
             Locked.with_lock outer (fun () -> ()))
       with
      | () -> Alcotest.fail "rank inversion not detected"
      | exception Locked.Rank_violation _ -> ());
      Alcotest.(check bool) "violation recorded" true
        (Locked.violations () <> []))

let test_runtime_equal_rank () =
  with_checking (fun () ->
      let a = Locked.create ~name:"t.eq.a" ~rank:Locked.Rank.breaker in
      let b = Locked.create ~name:"t.eq.b" ~rank:Locked.Rank.breaker in
      match Locked.with_lock a (fun () -> Locked.with_lock b (fun () -> ())) with
      | () -> Alcotest.fail "equal-rank acquisition not detected"
      | exception Locked.Rank_violation _ -> ())

let test_runtime_foreign_wait () =
  with_checking (fun () ->
      let a = Locked.create ~name:"t.fw.a" ~rank:Locked.Rank.pool in
      let b = Locked.create ~name:"t.fw.b" ~rank:Locked.Rank.metrics in
      match Locked.with_lock a (fun () -> Locked.wait b) with
      | () -> Alcotest.fail "foreign wait not detected"
      | exception Locked.Rank_violation _ -> ())

let test_runtime_reacquire_after_release () =
  with_checking (fun () ->
      let a = Locked.create ~name:"t.ra.a" ~rank:Locked.Rank.pool in
      let b = Locked.create ~name:"t.ra.b" ~rank:Locked.Rank.pool in
      (* Sequential same-rank acquisitions are fine: the stack empties
         between them. *)
      Locked.with_lock a (fun () -> ());
      Locked.with_lock b (fun () -> ());
      Alcotest.(check (list string)) "no violations" [] (Locked.violations ()))

let test_runtime_spawn_clean_stack () =
  with_checking (fun () ->
      let l = Locked.create ~name:"t.spawn" ~rank:Locked.Rank.metrics in
      let saw = Atomic.make false in
      let th =
        Locked.spawn "test.spawnee" (fun () ->
            Locked.with_lock l (fun () -> Atomic.set saw true))
      in
      Thread.join th;
      Alcotest.(check bool) "spawned thread ran under checker" true
        (Atomic.get saw);
      Alcotest.(check (list string)) "no violations" [] (Locked.violations ()))

let test_checker_off_by_default () =
  let was = Locked.checking () in
  Locked.set_checking false;
  Fun.protect
    ~finally:(fun () -> Locked.set_checking was)
    (fun () ->
      let outer = Locked.create ~name:"t.off.o" ~rank:Locked.Rank.pool in
      let inner = Locked.create ~name:"t.off.i" ~rank:Locked.Rank.metrics in
      (* With the checker off the inversion is not watched for — one
         boolean load and no bookkeeping on the acquisition path. *)
      Locked.with_lock inner (fun () -> Locked.with_lock outer (fun () -> ()));
      Alcotest.(check (list string)) "nothing recorded" [] (Locked.violations ()))

let test_rank_table_strictly_ordered () =
  (* The table is the single source of truth for both checkers: names
     unique, values unique, and the documented lattice order intact. *)
  let names = List.map fst Locked.Rank.all in
  let values = List.map snd Locked.Rank.all in
  Alcotest.(check int) "no duplicate names"
    (List.length names)
    (List.length (List.sort_uniq compare names));
  Alcotest.(check int) "no duplicate ranks"
    (List.length values)
    (List.length (List.sort_uniq compare values));
  Alcotest.(check bool) "nego outermost" true
    (List.for_all (fun v -> v <= Locked.Rank.nego) values);
  Alcotest.(check bool) "sinks innermost" true
    (List.for_all (fun v -> v >= Locked.Rank.sinks) values)

let () =
  Alcotest.run "conc"
    [
      ( "static",
        [
          Alcotest.test_case "corpus goldens" `Quick test_corpus;
          Alcotest.test_case "codes known + explained" `Quick
            test_corpus_codes_known;
          Alcotest.test_case "lib/ is clean" `Quick test_lib_clean;
          Alcotest.test_case "werror + json" `Quick test_werror_and_json;
          Alcotest.test_case "disable code" `Quick test_disable;
          Alcotest.test_case "unparsable input" `Quick test_unparsable;
        ] );
      ( "runtime",
        [
          Alcotest.test_case "inversion trips" `Quick test_runtime_inversion;
          Alcotest.test_case "equal rank trips" `Quick test_runtime_equal_rank;
          Alcotest.test_case "foreign wait trips" `Quick
            test_runtime_foreign_wait;
          Alcotest.test_case "sequential same rank ok" `Quick
            test_runtime_reacquire_after_release;
          Alcotest.test_case "spawn starts clean" `Quick
            test_runtime_spawn_clean_stack;
          Alcotest.test_case "off by default" `Quick
            test_checker_off_by_default;
          Alcotest.test_case "rank table well-formed" `Quick
            test_rank_table_strictly_ordered;
        ] );
    ]
