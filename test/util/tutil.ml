(* Shared helpers for the test suites. *)

(* Substring search (Boyer-Moore not needed at test sizes). *)
let contains haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  if nl = 0 then true
  else
    let rec scan i =
      if i + nl > hl then false
      else if String.sub haystack i nl = needle then true
      else scan (i + 1)
    in
    scan 0

let check_contains ~what haystack needle =
  if not (contains haystack needle) then
    Alcotest.failf "%s: expected to find %S in:\n%s" what needle haystack

let check_not_contains ~what haystack needle =
  if contains haystack needle then
    Alcotest.failf "%s: expected NOT to find %S in:\n%s" what needle haystack

(* Compare two texts ignoring trailing whitespace and blank-line runs —
   for golden tests against the paper's figures. *)
let normalize text =
  String.split_on_char '\n' text
  |> List.map (fun line ->
         let n = String.length line in
         let rec rstrip i =
           if i > 0 && (line.[i - 1] = ' ' || line.[i - 1] = '\t') then rstrip (i - 1)
           else i
         in
         String.sub line 0 (rstrip n))
  |> List.filter (fun l -> l <> "")
  |> String.concat "\n"

let check_golden ~what ~expected ~actual =
  Alcotest.(check string) what (normalize expected) (normalize actual)

(* Index of the first occurrence of [needle], or test failure. *)
let find haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec scan i =
    if i + nl > hl then
      Alcotest.failf "expected to find %S in:\n%s" needle haystack
    else if String.sub haystack i nl = needle then i
    else scan (i + 1)
  in
  scan 0
