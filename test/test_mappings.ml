(* Mapping-level tests: Table 1 (type mappings) and Table 2 (reference
   usages), map functions, and the mapping registry. *)

let map_fn (mapping : Mappings.Mapping.t) name =
  match Template.Maps.find mapping.Mappings.Mapping.maps name with
  | Some fn -> fn
  | None -> Alcotest.failf "mapping %s has no map function %s" mapping.Mappings.Mapping.name name

let heidi = Option.get (Mappings.Registry.find "heidi-cpp")
let corba = Option.get (Mappings.Registry.find "corba-cpp")

(* Table 1: IDL type -> prescribed C++ type vs alternate (Heidi) type. *)
let test_table1 () =
  let prescribed = map_fn corba "CORBA::MapType" in
  let alternate = map_fn heidi "CPP::MapType" in
  let rows =
    [
      ("long", "CORBA::Long", "long");
      ("boolean", "CORBA::Boolean", "XBool");
      ("float", "CORBA::Float", "float");
      ("short", "CORBA::Short", "short");
      ("double", "CORBA::Double", "double");
      ("octet", "CORBA::Octet", "XByte");
      ("char", "CORBA::Char", "char");
      ("string", "char*", "HdString");
    ]
  in
  List.iter
    (fun (idl, want_corba, want_heidi) ->
      Alcotest.(check string) ("prescribed " ^ idl) want_corba (prescribed idl);
      Alcotest.(check string) ("alternate " ^ idl) want_heidi (alternate idl))
    rows

(* Table 2: interface references. CORBA-prescribed A_var/A_ptr vs the
   legacy A / A* usages the Heidi mapping preserves. *)
let test_table2 () =
  let prescribed = map_fn corba "CORBA::MapType" in
  let alternate = map_fn heidi "CPP::MapType" in
  Alcotest.(check string) "prescribed objref" "A_ptr" (prescribed "objref(A)");
  Alcotest.(check string) "legacy objref" "HdA*" (alternate "objref(A)");
  (* The generated corba-cpp header also declares the _var type. *)
  let result =
    Core.Compiler.compile_string ~file_base:"t" ~mapping:corba
      "interface A { void f(in A x); };"
  in
  let header = List.assoc "t.hh" result.Core.Compiler.files in
  Tutil.check_contains ~what:"Table 2 _ptr" header "typedef A* A_ptr;";
  Tutil.check_contains ~what:"Table 2 _var" header "A_var;"

let test_hd_naming_convention () =
  let f = map_fn heidi "CPP::MapClassName" in
  Alcotest.(check string) "scoped" "HdA" (f "Heidi::A");
  Alcotest.(check string) "flat" "HdSSequence" (f "Heidi_SSequence");
  Alcotest.(check string) "top-level" "HdReceiver" (f "Receiver");
  Alcotest.(check string) "nested" "HdAVCamera" (f "Heidi::AV::Camera")

let test_heidi_type_map () =
  let f = map_fn heidi "CPP::MapType" in
  Alcotest.(check string) "sequence" "HdList<HdS>*" (f "sequence(objref(Heidi_S))");
  Alcotest.(check string) "alias of sequence" "HdSSequence*"
    (f "alias(Heidi_SSequence)=sequence(objref(Heidi_S))");
  Alcotest.(check string) "alias of long" "HdMoney" (f "alias(Heidi_Money)=long");
  Alcotest.(check string) "enum" "HdStatus" (f "enum(Heidi_Status)");
  Alcotest.(check string) "struct" "HdInfo*" (f "struct(Heidi_Info)");
  Alcotest.(check string) "nested sequence" "HdList<HdList<long>>*"
    (f "sequence(sequence(long))");
  Alcotest.(check string) "longlong" "long long" (f "longlong")

let test_heidi_defaults () =
  let f = map_fn heidi "CPP::MapDefault" in
  Alcotest.(check string) "int" "0" (f "int:0");
  Alcotest.(check string) "true" "XTrue" (f "bool:true");
  Alcotest.(check string) "false" "XFalse" (f "bool:false");
  Alcotest.(check string) "enum unqualified (Fig. 3)" "Start" (f "enum:Heidi_Status:Start");
  Alcotest.(check string) "string" "\"hi\"" (f "string:hi");
  Alcotest.(check string) "absent" "" (f "")

let test_corba_enum_const_scope () =
  let f = map_fn corba "CORBA::MapConst" in
  Alcotest.(check string) "member in enclosing scope" "Heidi::Start"
    (f "enum:Heidi_Status:Start");
  Alcotest.(check string) "top-level enum member" "Start" (f "enum:Status:Start")

let test_insert_extract_maps () =
  let ins = map_fn heidi "CPP::MapInsert" in
  Alcotest.(check string) "long" "insertLong" (ins "long");
  Alcotest.(check string) "bool" "insertBool" (ins "boolean");
  Alcotest.(check string) "objref" "insertObject" (ins "objref(X)");
  Alcotest.(check string) "seq" "insertList" (ins "sequence(long)");
  let ext = map_fn heidi "CPP::MapExtract" in
  Alcotest.(check string) "prim extract" "_c->extractLong()" (ext "long");
  Alcotest.(check string) "cast extract" "(HdX*) _c->extractObject()" (ext "objref(X)")

let test_java_maps () =
  let java = Option.get (Mappings.Registry.find "java") in
  let ty = map_fn java "Java::MapType" in
  Alcotest.(check string) "long->int" "int" (ty "long");
  Alcotest.(check string) "sequence->array" "int[]" (ty "sequence(long)");
  Alcotest.(check string) "alias erased" "int" (ty "alias(T)=long");
  Alcotest.(check string) "string" "String" (ty "string");
  Alcotest.(check string) "objref" "S" (ty "objref(Heidi_S)")

let test_ocaml_maps () =
  let ml = Option.get (Mappings.Registry.find "ocaml") in
  let ty = map_fn ml "OCaml::MapType" in
  Alcotest.(check string) "long" "int" (ty "long");
  Alcotest.(check string) "seq" "int list" (ty "sequence(long)");
  Alcotest.(check string) "objref" "Orb.Objref.t" (ty "objref(X)");
  Alcotest.(check string) "enum" "heidi_status" (ty "enum(Heidi_Status)");
  let putf = map_fn ml "OCaml::MapPut" in
  Alcotest.(check string) "put long" "put_long" (putf "long");
  Alcotest.(check string) "put named" "put_heidi_status" (putf "enum(Heidi_Status)");
  (* Anonymous sequences are a documented restriction. *)
  match putf "sequence(long)" with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "anonymous sequence accepted"

let test_registry () =
  Alcotest.(check (list string)) "names"
    [ "heidi-cpp"; "corba-cpp"; "java"; "tcl"; "ocaml" ]
    Mappings.Registry.names;
  Alcotest.(check bool) "find missing" true (Mappings.Registry.find "nope" = None);
  List.iter
    (fun (m : Mappings.Mapping.t) ->
      Alcotest.(check bool)
        (m.Mappings.Mapping.name ^ " has templates")
        true
        (Mappings.Mapping.template_names m <> []);
      (* Every template parses. *)
      List.iter
        (fun (tname, src) -> ignore (Template.Parse.parse ~name:tname src))
        m.Mappings.Mapping.templates)
    Mappings.Registry.all

let () =
  Alcotest.run "mappings"
    [
      ( "tables",
        [
          Alcotest.test_case "Table 1: type mappings" `Quick test_table1;
          Alcotest.test_case "Table 2: reference usages" `Quick test_table2;
        ] );
      ( "map functions",
        [
          Alcotest.test_case "Hd naming convention" `Quick test_hd_naming_convention;
          Alcotest.test_case "heidi type map" `Quick test_heidi_type_map;
          Alcotest.test_case "heidi defaults" `Quick test_heidi_defaults;
          Alcotest.test_case "corba const scoping" `Quick test_corba_enum_const_scope;
          Alcotest.test_case "insert/extract" `Quick test_insert_extract_maps;
          Alcotest.test_case "java maps" `Quick test_java_maps;
          Alcotest.test_case "ocaml maps" `Quick test_ocaml_maps;
        ] );
      ("registry", [ Alcotest.test_case "built-ins" `Quick test_registry ]);
    ]
