(* Bootstrap naming tests: resolving the first reference from an
   endpoint alone (Section 3.1's bootstrap port). *)

module B = Orb.Bootstrap

let echo_skeleton () =
  Orb.Skeleton.create ~type_id:"IDL:Test/Echo:1.0"
    [
      ("echo", fun args results ->
          results.Wire.Codec.put_string (args.Wire.Codec.get_string ()));
    ]

let with_server f =
  let server = Orb.create () in
  Orb.start server;
  let client = Orb.create () in
  Fun.protect
    ~finally:(fun () ->
      Orb.shutdown client;
      Orb.shutdown server)
    (fun () -> f ~server ~client)

let test_resolve_from_endpoint_alone () =
  with_server (fun ~server ~client ->
      let _ = B.serve server in
      let echo = Orb.export server (echo_skeleton ()) in
      B.bind server ~name:"echo-service" echo;
      (* The client constructs the bootstrap reference knowing only the
         server's endpoint. *)
      let boot = B.reference ~proto:"mem" ~host:"local" ~port:(Orb.port server) in
      let resolved = B.resolve client boot ~name:"echo-service" in
      Alcotest.(check bool) "same object" true (Orb.Objref.equal resolved echo);
      (* And the resolved reference works. *)
      match Orb.invoke client resolved ~op:"echo" (fun e -> e.Wire.Codec.put_string "hi") with
      | Some d -> Alcotest.(check string) "call through resolved ref" "hi" (d.Wire.Codec.get_string ())
      | None -> Alcotest.fail "no reply")

let test_remote_bind_and_list () =
  with_server (fun ~server ~client ->
      let boot = B.serve server in
      let e1 = Orb.export server (echo_skeleton ()) in
      let e2 = Orb.export server (echo_skeleton ()) in
      (* Remote bind through the wire interface. *)
      ignore
        (Orb.invoke client boot ~op:"bind" (fun e ->
             e.Wire.Codec.put_string "remote-bound";
             Orb.Serial.put_byref e (Some e1)));
      B.bind server ~name:"local-bound" e2;
      Alcotest.(check (list string)) "list" [ "local-bound"; "remote-bound" ]
        (B.list_names client boot);
      let r = B.resolve client boot ~name:"remote-bound" in
      Alcotest.(check bool) "remote-bound resolves" true (Orb.Objref.equal r e1))

let test_unbind_and_missing () =
  with_server (fun ~server ~client ->
      let boot = B.serve server in
      let e1 = Orb.export server (echo_skeleton ()) in
      B.bind server ~name:"gone" e1;
      ignore (B.resolve client boot ~name:"gone");
      B.unbind client boot ~name:"gone";
      (match B.resolve client boot ~name:"gone" with
      | exception Orb.System_exception m ->
          Tutil.check_contains ~what:"unbound error" m "not bound"
      | _ -> Alcotest.fail "expected resolution failure");
      Alcotest.(check (list string)) "empty" [] (B.list_names client boot))

let test_rebind_replaces () =
  with_server (fun ~server ~client ->
      let boot = B.serve server in
      let e1 = Orb.export server (echo_skeleton ()) in
      let e2 = Orb.export server (echo_skeleton ()) in
      B.bind server ~name:"svc" e1;
      B.bind server ~name:"svc" e2;
      Alcotest.(check bool) "latest wins" true
        (Orb.Objref.equal (B.resolve client boot ~name:"svc") e2))

let test_bind_before_serve_fails () =
  let orb = Orb.create () in
  let e = Orb.export orb (echo_skeleton ()) in
  (match B.bind orb ~name:"x" e with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "bind before serve accepted");
  Orb.shutdown orb

let test_well_known_reference_shape () =
  let r = B.reference ~proto:"tcp" ~host:"galaxy.nec.com" ~port:1234 in
  Alcotest.(check string) "stringified"
    "@tcp:galaxy.nec.com:1234#bootstrap#IDL:Heidi/Bootstrap:1.0"
    (Orb.Objref.to_string r)

let () =
  Alcotest.run "bootstrap"
    [
      ( "naming",
        [
          Alcotest.test_case "resolve from endpoint alone" `Quick
            test_resolve_from_endpoint_alone;
          Alcotest.test_case "remote bind and list" `Quick test_remote_bind_and_list;
          Alcotest.test_case "unbind and missing names" `Quick test_unbind_and_missing;
          Alcotest.test_case "rebind replaces" `Quick test_rebind_replaces;
          Alcotest.test_case "bind before serve" `Quick test_bind_before_serve_fails;
          Alcotest.test_case "well-known reference shape" `Quick
            test_well_known_reference_shape;
        ] );
    ]
