(* Schema check for bench artifacts (BENCH_obs.json / BENCH_overload.json
   / BENCH_mux.json), run from the [bench-smoke] alias. Dispatches on the
   "experiment" field.
   Validates structure and invariants — NOT the measured figures
   themselves, which are hardware- and load-dependent: the point of the
   smoke test is that the bench runs end-to-end and emits a well-formed,
   internally consistent artifact on every CI run.

   Hand-rolled recursive-descent JSON parser: the repo deliberately has
   no JSON dependency (lib/obs emits JSON via string combinators and
   never parses it), and this checker must not add one. *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

exception Bad of string

let parse (s : string) : json =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let fail msg = raise (Bad (Printf.sprintf "%s at byte %d" msg !pos)) in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
          advance ();
          match peek () with
          | Some 'n' ->
              Buffer.add_char buf '\n';
              advance ();
              go ()
          | Some 't' ->
              Buffer.add_char buf '\t';
              advance ();
              go ()
          | Some 'r' ->
              Buffer.add_char buf '\r';
              advance ();
              go ()
          | Some 'u' ->
              (* \uXXXX: decode to a raw byte for ASCII range; enough for
                 artifacts this repo emits (control chars only). *)
              advance ();
              if !pos + 4 > n then fail "bad \\u escape";
              let hex = String.sub s !pos 4 in
              pos := !pos + 4;
              (match int_of_string_opt ("0x" ^ hex) with
              | Some code when code < 128 -> Buffer.add_char buf (Char.chr code)
              | Some _ -> Buffer.add_char buf '?'
              | None -> fail "bad \\u escape");
              go ()
          | Some c ->
              Buffer.add_char buf c;
              advance ();
              go ()
          | None -> fail "unterminated escape")
      | Some c ->
          Buffer.add_char buf c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c -> num_char c | None -> false) do
      advance ()
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> Num f
    | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '{' -> parse_obj ()
    | Some '[' -> parse_arr ()
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> parse_number ()
    | _ -> fail "expected a JSON value"
  and parse_obj () =
    expect '{';
    skip_ws ();
    if peek () = Some '}' then begin
      advance ();
      Obj []
    end
    else begin
      let fields = ref [] in
      let rec go () =
        skip_ws ();
        let k = parse_string () in
        skip_ws ();
        expect ':';
        let v = parse_value () in
        fields := (k, v) :: !fields;
        skip_ws ();
        match peek () with
        | Some ',' ->
            advance ();
            go ()
        | Some '}' -> advance ()
        | _ -> fail "expected ',' or '}'"
      in
      go ();
      Obj (List.rev !fields)
    end
  and parse_arr () =
    expect '[';
    skip_ws ();
    if peek () = Some ']' then begin
      advance ();
      Arr []
    end
    else begin
      let items = ref [] in
      let rec go () =
        let v = parse_value () in
        items := v :: !items;
        skip_ws ();
        match peek () with
        | Some ',' ->
            advance ();
            go ()
        | Some ']' -> advance ()
        | _ -> fail "expected ',' or ']'"
      in
      go ();
      Arr (List.rev !items)
    end
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

(* ---------------- schema assertions ---------------- *)

let field obj name =
  match obj with
  | Obj fields -> (
      match List.assoc_opt name fields with
      | Some v -> v
      | None -> raise (Bad (Printf.sprintf "missing field %S" name)))
  | _ -> raise (Bad (Printf.sprintf "expected an object around %S" name))

let want_str obj name =
  match field obj name with
  | Str s -> s
  | _ -> raise (Bad (Printf.sprintf "field %S must be a string" name))

let want_num obj name =
  match field obj name with
  | Num f -> f
  | _ -> raise (Bad (Printf.sprintf "field %S must be a number" name))

let want_bool obj name =
  match field obj name with
  | Bool b -> b
  | _ -> raise (Bad (Printf.sprintf "field %S must be a bool" name))

let want_arr obj name =
  match field obj name with
  | Arr l -> l
  | _ -> raise (Bad (Printf.sprintf "field %S must be an array" name))

let check cond msg = if not cond then raise (Bad msg)

let is_hex s =
  s <> ""
  && String.for_all (function '0' .. '9' | 'a' .. 'f' -> true | _ -> false) s

(* ---------------- E9: observability overhead ---------------- *)

let check_e9 path root =
  ignore (want_str root "transport");
    ignore (want_str root "protocol");
    check (want_num root "calls" > 0.) "calls must be > 0";
    let off = want_num root "trace_off_ns_per_call" in
    let on = want_num root "trace_on_ns_per_call" in
    check (off > 0.) "trace_off_ns_per_call must be > 0";
    check (on > 0.) "trace_on_ns_per_call must be > 0";
    ignore (want_num root "overhead_pct");
    check (want_num root "client_spans" > 0.) "client_spans must be > 0";
    check (want_num root "server_spans" > 0.) "server_spans must be > 0";
    check (want_bool root "shared_trace_id")
      "client and server spans must share a trace id";
    (* The sample span is a real client span from the traced run: ids
       well-formed, all four phase timings populated (Jout renders an
       unset phase as null, which [want_num] rejects). *)
    let span = field root "sample_client_span" in
    check
      (is_hex (want_str span "trace_id")
      && String.length (want_str span "trace_id") = 16)
      "sample span trace_id must be 16 hex digits";
    check
      (is_hex (want_str span "span_id")
      && String.length (want_str span "span_id") = 8)
      "sample span span_id must be 8 hex digits";
    check (want_str span "kind" = "client") "sample span kind must be client";
    check (want_str span "operation" = "echo") "sample span operation must be echo";
    List.iter
      (fun phase ->
        check (want_num span phase >= 0.)
          (Printf.sprintf "sample span %s must be a non-negative number" phase))
      [ "marshal_s"; "send_s"; "wait_s"; "unmarshal_s" ];
    (* The embedded metrics snapshot must carry the traced run's data:
       at least the invoke histogram and one metered endpoint. *)
    let snap = field root "client_snapshot" in
    check
      (want_num snap "spans_emitted" > 0.)
      "client_snapshot.spans_emitted must be > 0";
    let metrics = field snap "metrics" in
    let latencies = want_arr metrics "latencies" in
    check (latencies <> []) "client_snapshot must include latency histograms";
    check
      (List.exists (fun h -> want_str h "name" = "invoke:echo") latencies)
      "client_snapshot must include the invoke:echo histogram";
    let endpoints = want_arr metrics "endpoints" in
    check (endpoints <> []) "client_snapshot must include endpoint byte counters";
    List.iter
      (fun e ->
        check
          (want_num e "bytes_out" > 0. && want_num e "bytes_in" > 0.)
          "metered endpoints must have traffic both ways")
      endpoints;
    Printf.printf "%s: schema OK (off %.0f ns, on %.0f ns, %d spans)\n" path off
      on
      (int_of_float (want_num root "client_spans"))

(* ---------------- E10: overload policy ---------------- *)

let check_e10 path root =
  ignore (want_str root "transport");
  ignore (want_str root "protocol");
  check (want_num root "duration_s" > 0.) "duration_s must be > 0";
  check (want_num root "service_ms" > 0.) "service_ms must be > 0";
  let cells = want_arr root "cells" in
  check (cells <> []) "cells must be non-empty";
  List.iter
    (fun cell ->
      ignore (want_str cell "server");
      check (want_num cell "clients" > 0.) "cell clients must be > 0";
      check (want_num cell "ok" >= 0.) "cell ok must be >= 0";
      check (want_num cell "rejected" >= 0.) "cell rejected must be >= 0";
      check (want_num cell "failed" = 0.)
        "cells must account for every call: failed must be 0";
      check (want_num cell "ok_per_s" >= 0.) "cell ok_per_s must be >= 0";
      List.iter
        (fun f ->
          check (want_num cell f >= 0.)
            (Printf.sprintf "cell %s must be >= 0" f))
        [ "p50_ms"; "p95_ms"; "max_ms" ])
    cells;
  (* Both serving models must appear, and the run must have completed
     real work under at least one configuration. *)
  let servers = List.map (fun c -> want_str c "server") cells in
  check
    (List.exists
       (fun s -> String.length s >= 4 && String.sub s 0 4 = "pool")
       servers)
    "cells must include a bounded-pool configuration";
  check
    (List.mem "thread-per-conn" servers)
    "cells must include the thread-per-connection configuration";
  check
    (List.exists (fun c -> want_num c "ok" > 0.) cells)
    "at least one cell must complete calls";
  Printf.printf "%s: schema OK (%d cells, %d ok calls total)\n" path
    (List.length cells)
    (int_of_float (List.fold_left (fun a c -> a +. want_num c "ok") 0. cells))

(* ---------------- E11: client connection multiplexing ---------------- *)

let check_e11 path root =
  ignore (want_str root "transport");
  check (want_num root "duration_s" > 0.) "duration_s must be > 0";
  check (want_num root "service_ms" > 0.) "service_ms must be > 0";
  let cells = want_arr root "cells" in
  check (cells <> []) "cells must be non-empty";
  List.iter
    (fun cell ->
      ignore (want_str cell "protocol");
      ignore (want_str cell "mode");
      check (want_num cell "max_in_flight" >= 1.) "max_in_flight must be >= 1";
      check (want_num cell "threads" > 0.) "cell threads must be > 0";
      check (want_num cell "ok" > 0.) "every cell must complete calls";
      check (want_num cell "failed" = 0.)
        "mux cells must not drop or fail calls: failed must be 0";
      check (want_num cell "ok_per_s" > 0.) "cell ok_per_s must be > 0";
      check (want_num cell "peak_in_flight" >= 0.) "peak_in_flight must be >= 0";
      (* The whole experiment is about sharing: every cell must have run
         over exactly one outbound connection. *)
      check (want_num cell "connections" = 1.)
        "each cell must share exactly one connection";
      (* The demux must actually pipeline when threads allow; the
         serialized client must never report demux in-flight counts. *)
      let mi = want_num cell "max_in_flight" and th = want_num cell "threads" in
      if mi > 1. && th > 1. then
        check (want_num cell "peak_in_flight" > 1.)
          "multiplexed cells with >1 thread must observe >1 in flight"
      else if mi = 1. then
        check (want_num cell "peak_in_flight" <= 1.)
          "serialized cells must not pipeline")
    cells;
  (* Both client modes over both codecs. *)
  let protos = List.sort_uniq compare (List.map (fun c -> want_str c "protocol") cells) in
  check (List.length protos >= 2) "cells must cover both codecs";
  List.iter
    (fun proto ->
      let mine = List.filter (fun c -> want_str c "protocol" = proto) cells in
      let modes = List.sort_uniq compare (List.map (fun c -> want_str c "mode") mine) in
      check (List.length modes >= 2)
        (Printf.sprintf "protocol %s must cover both client modes" proto);
      (* The acceptance invariant: at the highest thread count measured
         in both modes (>= 8), the multiplexed client must deliver at
         least 2x the serialized throughput. The servant sleeps for its
         service time, so the ratio is pipelining, not CPU luck. *)
      let by_mode pred = List.filter (fun c -> pred (want_num c "max_in_flight")) mine in
      let muxed = by_mode (fun m -> m > 1.) and serial = by_mode (fun m -> m = 1.) in
      let threads_of cs = List.map (fun c -> want_num c "threads") cs in
      let common =
        List.filter (fun t -> List.mem t (threads_of serial)) (threads_of muxed)
      in
      let high = List.filter (fun t -> t >= 8.) common in
      check (high <> [])
        (Printf.sprintf "protocol %s must include a cell with >= 8 threads" proto);
      let t = List.fold_left max 0. high in
      let find cs = List.find (fun c -> want_num c "threads" = t) cs in
      let m_ok = want_num (find muxed) "ok" and s_ok = want_num (find serial) "ok" in
      check
        (m_ok >= 2. *. s_ok)
        (Printf.sprintf
           "protocol %s: mux must be >= 2x serialized at %.0f threads (got %.0f vs %.0f)"
           proto t m_ok s_ok))
    protos;
  Printf.printf "%s: schema OK (%d cells, %d ok calls total)\n" path
    (List.length cells)
    (int_of_float (List.fold_left (fun a c -> a +. want_num c "ok") 0. cells))

(* ---------------- E12: replica kill/restart failover ---------------- *)

(* ---------------- E13: multicore dispatch ---------------- *)

let check_e13 path root =
  ignore (want_str root "transport");
  ignore (want_str root "protocol");
  check (want_num root "duration_s" > 0.) "duration_s must be > 0";
  check (want_num root "service_ms" > 0.) "service_ms must be > 0";
  check (want_num root "payload_kb" > 0.) "payload_kb must be > 0";
  let cores = want_num root "cores" in
  check (cores >= 1.) "cores must be >= 1";
  let cells = want_arr root "cells" in
  check (cells <> []) "cells must be non-empty";
  List.iter
    (fun cell ->
      let backend = want_str cell "backend" in
      check
        (backend = "domains" || backend = "systhreads")
        "cell backend must be domains or systhreads";
      check (want_num cell "workers" > 0.) "cell workers must be > 0";
      check (want_num cell "clients" > 0.) "cell clients must be > 0";
      check (want_num cell "ok" >= 0.) "cell ok must be >= 0";
      check (want_num cell "failed" = 0.)
        "cells must account for every call: failed must be 0";
      check (want_num cell "ok_per_s" >= 0.) "cell ok_per_s must be >= 0")
    cells;
  let ops backend workers =
    List.find_map
      (fun c ->
        if want_str c "backend" = backend && want_num c "workers" = workers
        then Some (want_num c "ok_per_s")
        else None)
      cells
  in
  (* Both backends must appear with a 1-worker baseline that did work. *)
  let d1 =
    match ops "domains" 1. with
    | Some v -> v
    | None -> raise (Bad "cells must include the 1-worker domains baseline")
  in
  check (d1 > 0.) "the 1-domain baseline must complete calls";
  check (ops "systhreads" 1. <> None)
    "cells must include the 1-worker systhreads control";
  (* The acceptance gate: 4 domains >= 2.5x the 1-domain arm — a claim
     about parallel hardware, so it only binds when the host actually
     has >= 4 cores. A 1-core CI box still verifies structure and
     conservation above; the committed BENCH_multicore.json from a
     multicore host carries the scaling evidence. *)
  (match ops "domains" 4. with
  | Some d4 when cores >= 4. ->
      check
        (d4 >= 2.5 *. d1)
        (Printf.sprintf
           "4-domain throughput must be >= 2.5x the 1-domain arm on a >= \
            4-core host (got %.2fx)"
           (d4 /. d1))
  | _ -> ());
  Printf.printf "%s: schema OK (%d cells, cores %d, 1-domain %.0f ok/s)\n" path
    (List.length cells) (int_of_float cores) d1

let check_e12 path root =
  ignore (want_str root "transport");
  let duration = want_num root "duration_s" in
  check (duration > 0.) "duration_s must be > 0";
  let bucket_s = want_num root "bucket_s" in
  check (bucket_s > 0.) "bucket_s must be > 0";
  check (want_num root "replicas" >= 3.) "replicas must be >= 3";
  check (want_num root "clients" > 0.) "clients must be > 0";
  let kill_at = want_num root "kill_at_s" in
  let restart_at = want_num root "restart_at_s" in
  check (kill_at > 0. && kill_at < restart_at && restart_at < duration)
    "timeline must order 0 < kill < restart < duration";
  check (want_num root "reset_timeout_s" > 0.) "reset_timeout_s must be > 0";
  let steady = want_num root "steady_ok_per_s" in
  check (steady > 0.) "steady_ok_per_s must be > 0";
  check (want_num root "recovery_ok_per_s" >= 0.)
    "recovery_ok_per_s must be >= 0";
  let ratio = want_num root "recovery_ratio" in
  (* The acceptance invariant: after a replica kill, throughput is back
     to >= 80% of steady state within one breaker half-open window. *)
  check (want_bool root "recovered_within_window")
    (Printf.sprintf
       "throughput must recover to >= 80%% of steady within one breaker \
        window (got %.0f%%)"
       (100. *. ratio));
  check (ratio >= 0.8) "recovery_ratio must agree with recovered_within_window";
  let ok_total = want_num root "ok_total" in
  let failed_total = want_num root "failed_total" in
  check (ok_total > 0.) "ok_total must be > 0";
  (* Bounded error rate: a replica kill may fail the calls caught on
     the dying connection, never a meaningful share of the run. *)
  check (failed_total <= 0.05 *. ok_total)
    (Printf.sprintf "failed_total must stay under 5%% of ok (got %.0f/%.0f)"
       failed_total ok_total);
  check (want_num root "failovers" >= 1.)
    "the kill must force at least one failover";
  List.iter
    (fun f ->
      check (want_num root f >= 0.) (Printf.sprintf "%s must be >= 0" f))
    [ "p95_steady_ms"; "p95_outage_ms"; "p95_after_restart_ms" ];
  check (want_num root "p95_steady_ms" > 0.) "p95_steady_ms must be > 0";
  let served = want_arr root "replica_served" in
  check
    (List.length served = int_of_float (want_num root "replicas"))
    "replica_served must have one entry per replica";
  List.iter
    (fun v ->
      match v with
      | Num f -> check (f > 0.) "every replica (incl. restarted) must serve"
      | _ -> raise (Bad "replica_served entries must be numbers"))
    served;
  let buckets = want_arr root "buckets" in
  check (List.length buckets >= 10) "buckets must cover the timeline";
  List.iter
    (fun b ->
      check (want_num b "t_s" >= 0.) "bucket t_s must be >= 0";
      check (want_num b "ok" >= 0.) "bucket ok must be >= 0";
      check (want_num b "failed" >= 0.) "bucket failed must be >= 0")
    buckets;
  (* Failures, if any, must be confined to the kill/restart transitions
     — no bucket outside those windows may fail calls. *)
  List.iter
    (fun b ->
      let t = want_num b "t_s" in
      let near at = t >= at -. bucket_s && t <= at +. (2. *. bucket_s) in
      if want_num b "failed" > 0. then
        check
          (near kill_at || near restart_at)
          (Printf.sprintf "failures outside the kill/restart windows (t=%.2fs)"
             t))
    buckets;
  Printf.printf "%s: schema OK (recovery %.0f%%, %d ok, %d failed)\n" path
    (100. *. ratio) (int_of_float ok_total) (int_of_float failed_total)

(* ---------------- E14: deadline propagation under saturation -------- *)

let check_e14 path root =
  ignore (want_str root "transport");
  check (want_num root "duration_s" > 0.) "duration_s must be > 0";
  check (want_num root "service_ms" > 0.) "service_ms must be > 0";
  check
    (want_num root "deadline_ms" > want_num root "service_ms")
    "deadline_ms must exceed service_ms";
  check (want_num root "capacity_per_s" > 0.) "capacity_per_s must be > 0";
  let cells = want_arr root "cells" in
  check (cells <> []) "cells must be non-empty";
  List.iter
    (fun cell ->
      let arm = want_str cell "propagation" in
      check (arm = "on" || arm = "off") "propagation must be on|off";
      check (want_num cell "multiplier" >= 1.) "multiplier must be >= 1";
      check (want_num cell "offered_per_s" > 0.) "offered_per_s must be > 0";
      List.iter
        (fun f ->
          check (want_num cell f >= 0.)
            (Printf.sprintf "cell %s must be >= 0" f))
        [
          "ok"; "timeout"; "shed"; "failed"; "goodput_per_s"; "executed";
          "expired_pre_admission"; "expired_in_queue"; "rejected";
        ];
      (* The off arm sends no budget slot, so the server can never shed
         on expiry there. *)
      if arm = "off" then begin
        check
          (want_num cell "expired_pre_admission" = 0.)
          "off-arm cells must not shed pre-admission";
        check
          (want_num cell "expired_in_queue" = 0.)
          "off-arm cells must not shed in queue"
      end)
    cells;
  let arm_cell arm m =
    List.find_opt
      (fun c -> want_str c "propagation" = arm && want_num c "multiplier" = m)
      cells
  in
  let multipliers =
    List.sort_uniq compare (List.map (fun c -> want_num c "multiplier") cells)
  in
  (* The experiment's claim: at deep saturation (>= 4x) propagation
     never loses goodput — shedding expired and doomed work frees the
     workers for requests that can still meet their deadline. *)
  let saturated = List.filter (fun m -> m >= 4.) multipliers in
  List.iter
    (fun m ->
      match (arm_cell "on" m, arm_cell "off" m) with
      | Some on, Some off ->
          check
            (want_num on "goodput_per_s" >= want_num off "goodput_per_s")
            (Printf.sprintf
               "at %gx saturation the propagation arm must not lose goodput"
               m);
          check
            (want_num on "expired_in_queue" > 0.)
            (Printf.sprintf "at %gx saturation the on arm must shed in queue"
               m)
      | _ -> raise (Bad (Printf.sprintf "missing arm at multiplier %g" m)))
    saturated;
  check (saturated <> []) "sweep must include a >= 4x saturation point";
  let goodput arm m =
    match arm_cell arm m with Some c -> want_num c "goodput_per_s" | None -> 0.
  in
  Printf.printf
    "%s: schema OK (%d cells; at %gx goodput on=%.0f/s off=%.0f/s)\n" path
    (List.length cells) (List.hd saturated)
    (goodput "on" (List.hd saturated))
    (goodput "off" (List.hd saturated))

(* ---------------- E15: codec sweep ---------------- *)

let check_e15 path root =
  ignore (want_str root "transport");
  check (want_num root "measure_s" > 0.) "measure_s must be > 0";
  let sizes =
    List.map
      (function
        | Num f -> f
        | _ -> raise (Bad "payload_sizes must be numbers"))
      (want_arr root "payload_sizes")
  in
  check (sizes <> []) "payload_sizes must be non-empty";
  let rows = want_arr root "rows" in
  check (rows <> []) "rows must be non-empty";
  List.iter
    (fun row ->
      ignore (want_str row "protocol");
      check (want_num row "payload_bytes" >= 0.) "payload_bytes must be >= 0";
      check (want_num row "bytes_per_call" > 0.) "bytes_per_call must be > 0";
      check (want_num row "ns_per_call" > 0.) "ns_per_call must be > 0";
      check (want_num row "calls_per_s" > 0.) "calls_per_s must be > 0";
      (* A round trip moves at least the payload there and an envelope
         back; a meter that missed the channel would report less. *)
      check
        (want_num row "bytes_per_call" > want_num row "payload_bytes")
        "bytes_per_call must exceed the payload itself")
    rows;
  let row proto size =
    List.find_opt
      (fun r -> want_str r "protocol" = proto && want_num r "payload_bytes" = size)
      rows
  in
  (* The compact-codec invariant: HCX moves strictly fewer bytes per
     call than heidi-text at EVERY payload size in the sweep. This is a
     structural property of the encodings (varints + byte-count framing
     vs text tokens + escaping), so it must hold at any quota. *)
  List.iter
    (fun size ->
      match (row "hcx" size, row "heidi-text" size) with
      | Some h, Some t ->
          check
            (want_num h "bytes_per_call" < want_num t "bytes_per_call")
            (Printf.sprintf
               "hcx bytes/call must be strictly below heidi-text at %g B" size)
      | _ ->
          raise
            (Bad (Printf.sprintf "missing hcx or heidi-text row at %g B" size)))
    sizes;
  let ratio size =
    match (row "hcx" size, row "heidi-text" size) with
    | Some h, Some t ->
        want_num t "bytes_per_call" /. want_num h "bytes_per_call"
    | _ -> 0.
  in
  Printf.printf "%s: schema OK (%d rows; text/hcx bytes ratio %.2fx at %g B)\n"
    path (List.length rows) (ratio (List.hd sizes)) (List.hd sizes)

let () =
  let path = if Array.length Sys.argv > 1 then Sys.argv.(1) else "BENCH_obs.json" in
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  try
    let root = parse text in
    match want_str root "experiment" with
    | "E9" -> check_e9 path root
    | "E10" -> check_e10 path root
    | "E11" -> check_e11 path root
    | "E12" -> check_e12 path root
    | "E13" -> check_e13 path root
    | "E14" -> check_e14 path root
    | "E15" -> check_e15 path root
    | other -> raise (Bad (Printf.sprintf "unknown experiment %S" other))
  with Bad msg ->
    Printf.eprintf "%s: schema check FAILED: %s\n" path msg;
    exit 1
